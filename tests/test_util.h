#pragma once

// Shared fixtures for the test suite:
//  * PairNet    — two hosts on one full-duplex link (socket mechanics).
//  * MiniFatTree — a FatTree with sinks on every host and a helper to
//                  launch a flow of any protocol (protocol behaviour).
//  * PacketTap  — observe (or selectively drop) traffic through a Port
//                 (now a library instrument, re-exported from
//                 net/packet_tap.h for existing test code).

#include <functional>
#include <memory>
#include <vector>

#include "core/transport_factory.h"
#include "net/packet_tap.h"
#include "topo/fat_tree.h"
#include "workload/apps.h"

namespace mmptcp::testing {

using mmptcp::PacketTap;

/// Two hosts joined by one full-duplex link.
struct PairNet {
  explicit PairNet(std::uint64_t rate_bps = 100'000'000,
                   Time delay = Time::micros(20),
                   QueueLimits queue = QueueLimits{0, 0},
                   std::uint64_t seed = 1)
      : sim(seed), net(sim), a(net.make_host("a", Addr{0x0a000001})),
        b(net.make_host("b", Addr{0x0a000002})) {
    net.connect(a, b, LinkSpec{rate_bps, delay, queue, LinkLayer::kOther});
  }

  Simulation sim;
  Network net;
  Host& a;
  Host& b;
  Metrics metrics;
};

/// FatTree + sinks + flow launcher.
struct MiniFatTree {
  explicit MiniFatTree(FatTreeConfig cfg = FatTreeConfig{},
                       std::uint64_t seed = 1,
                       TcpConfig server_tcp = TcpConfig{})
      : sim(seed), ft(sim, cfg),
        sinks(sim, metrics, ft.network(), 5001, server_tcp) {}

  /// Starts a flow from host `src` to host `dst` (indices).
  ClientFlow& flow(std::size_t src, std::size_t dst, TransportConfig cfg,
                   std::uint64_t bytes, bool long_flow = false) {
    cfg.oracle = &ft;
    flows.push_back(std::make_unique<ClientFlow>(
        sim, metrics, ft.host(src), ft.host(dst).addr(), cfg, bytes,
        long_flow));
    return *flows.back();
  }

  /// Runs until `until` sim time.
  void run(Time until) { sim.scheduler().run_until(until); }

  const FlowRecord& record(const ClientFlow& f) const {
    return metrics.record(f.flow_id());
  }

  Simulation sim;
  Metrics metrics;
  FatTree ft;
  SinkFarm sinks;
  std::vector<std::unique_ptr<ClientFlow>> flows;
};

}  // namespace mmptcp::testing
