#include "sim/time.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mmptcp {
namespace {

TEST(Time, UnitConstructorsAgree) {
  EXPECT_EQ(Time::seconds(1), Time::millis(1000));
  EXPECT_EQ(Time::millis(1), Time::micros(1000));
  EXPECT_EQ(Time::micros(1), Time::nanos(1000));
  EXPECT_EQ(Time::zero().ns(), 0);
}

TEST(Time, Arithmetic) {
  const Time a = Time::millis(3);
  const Time b = Time::millis(2);
  EXPECT_EQ((a + b).ns(), 5'000'000);
  EXPECT_EQ((a - b).ns(), 1'000'000);
  EXPECT_EQ((a * 4).ns(), 12'000'000);
  EXPECT_EQ((4 * a).ns(), 12'000'000);
  EXPECT_EQ((a / 3).ns(), 1'000'000);
  EXPECT_EQ(a / b, 1);  // integer ratio
  Time c = a;
  c += b;
  EXPECT_EQ(c, Time::millis(5));
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time::micros(1), Time::micros(2));
  EXPECT_LE(Time::micros(2), Time::micros(2));
  EXPECT_GT(Time::micros(3), Time::micros(2));
  EXPECT_NE(Time::micros(3), Time::micros(2));
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(Time::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Time::micros(2500).to_millis(), 2.5);
  EXPECT_DOUBLE_EQ(Time::nanos(3500).to_micros(), 3.5);
}

TEST(Time, FromSecondsRounds) {
  EXPECT_EQ(Time::from_seconds(1.5), Time::millis(1500));
  EXPECT_EQ(Time::from_seconds(0.0000000005).ns(), 1);  // rounds up from 0.5ns
}

TEST(Time, NegativeDetection) {
  EXPECT_TRUE((Time::zero() - Time::nanos(1)).is_negative());
  EXPECT_FALSE(Time::zero().is_negative());
  EXPECT_TRUE(Time::zero().is_zero());
}

TEST(Time, ToStringPicksUnit) {
  EXPECT_EQ(Time::seconds(2).to_string(), "2s");
  EXPECT_EQ(Time::millis(3).to_string(), "3ms");
  EXPECT_EQ(Time::micros(4).to_string(), "4us");
  EXPECT_EQ(Time::nanos(5).to_string(), "5ns");
}

TEST(TransmissionTime, ExactValues) {
  // 1500 bytes at 100 Mb/s = 120 us.
  EXPECT_EQ(transmission_time(1500, 100'000'000), Time::micros(120));
  // 1 byte at 1 Gb/s = 8 ns.
  EXPECT_EQ(transmission_time(1, 1'000'000'000), Time::nanos(8));
}

TEST(TransmissionTime, RoundsUpToOneNanosecond) {
  // 1 byte at 100 Gb/s = 0.08 ns -> rounds up to 1 ns.
  EXPECT_EQ(transmission_time(1, 100'000'000'000ULL), Time::nanos(1));
}

TEST(TransmissionTime, ZeroBytesZeroTime) {
  EXPECT_EQ(transmission_time(0, 1'000'000), Time::zero());
}

TEST(TransmissionTime, RejectsZeroRate) {
  EXPECT_THROW(transmission_time(100, 0), InvariantError);
}

TEST(TransmissionTime, NoOverflowOnHugeInputs) {
  // 1 TB at 1 kb/s: enormous but must not overflow the intermediate math.
  const Time t = transmission_time(1'000'000'000'000ULL, 1000);
  EXPECT_GT(t, Time::seconds(1'000'000));
}

}  // namespace
}  // namespace mmptcp
