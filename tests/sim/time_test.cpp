#include "sim/time.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mmptcp {
namespace {

TEST(Time, UnitConstructorsAgree) {
  EXPECT_EQ(Time::seconds(1), Time::millis(1000));
  EXPECT_EQ(Time::millis(1), Time::micros(1000));
  EXPECT_EQ(Time::micros(1), Time::nanos(1000));
  EXPECT_EQ(Time::zero().ns(), 0);
}

TEST(Time, Arithmetic) {
  const Time a = Time::millis(3);
  const Time b = Time::millis(2);
  EXPECT_EQ((a + b).ns(), 5'000'000);
  EXPECT_EQ((a - b).ns(), 1'000'000);
  EXPECT_EQ((a * 4).ns(), 12'000'000);
  EXPECT_EQ((4 * a).ns(), 12'000'000);
  EXPECT_EQ((a / 3).ns(), 1'000'000);
  EXPECT_EQ(a / b, 1);  // integer ratio
  Time c = a;
  c += b;
  EXPECT_EQ(c, Time::millis(5));
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time::micros(1), Time::micros(2));
  EXPECT_LE(Time::micros(2), Time::micros(2));
  EXPECT_GT(Time::micros(3), Time::micros(2));
  EXPECT_NE(Time::micros(3), Time::micros(2));
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(Time::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Time::micros(2500).to_millis(), 2.5);
  EXPECT_DOUBLE_EQ(Time::nanos(3500).to_micros(), 3.5);
}

TEST(Time, FromSecondsRounds) {
  EXPECT_EQ(Time::from_seconds(1.5), Time::millis(1500));
  EXPECT_EQ(Time::from_seconds(0.0000000005).ns(), 1);  // rounds up from 0.5ns
}

TEST(Time, NegativeDetection) {
  EXPECT_TRUE((Time::zero() - Time::nanos(1)).is_negative());
  EXPECT_FALSE(Time::zero().is_negative());
  EXPECT_TRUE(Time::zero().is_zero());
}

TEST(Time, ToStringPicksUnit) {
  EXPECT_EQ(Time::seconds(2).to_string(), "2s");
  EXPECT_EQ(Time::millis(3).to_string(), "3ms");
  EXPECT_EQ(Time::micros(4).to_string(), "4us");
  EXPECT_EQ(Time::nanos(5).to_string(), "5ns");
}

TEST(TransmissionTime, ExactValues) {
  // 1500 bytes at 100 Mb/s = 120 us.
  EXPECT_EQ(transmission_time(1500, 100'000'000), Time::micros(120));
  // 1 byte at 1 Gb/s = 8 ns.
  EXPECT_EQ(transmission_time(1, 1'000'000'000), Time::nanos(8));
}

TEST(TransmissionTime, RoundsUpToOneNanosecond) {
  // 1 byte at 100 Gb/s = 0.08 ns -> rounds up to 1 ns.
  EXPECT_EQ(transmission_time(1, 100'000'000'000ULL), Time::nanos(1));
}

TEST(TransmissionTime, ZeroBytesZeroTime) {
  EXPECT_EQ(transmission_time(0, 1'000'000), Time::zero());
}

TEST(TransmissionTime, RejectsZeroRate) {
  EXPECT_THROW(transmission_time(100, 0), InvariantError);
}

TEST(TransmissionTime, NoOverflowOnHugeInputs) {
  // 1 TB at 1 kb/s: enormous but must not overflow the intermediate math.
  const Time t = transmission_time(1'000'000'000'000ULL, 1000);
  EXPECT_GT(t, Time::seconds(1'000'000));
}

TEST(ParseDuration, AcceptsEveryUnit) {
  EXPECT_EQ(parse_duration("500ns"), Time::nanos(500));
  EXPECT_EQ(parse_duration("250us"), Time::micros(250));
  EXPECT_EQ(parse_duration("1.5ms"), Time::micros(1500));
  EXPECT_EQ(parse_duration("2s"), Time::seconds(2));
  EXPECT_EQ(parse_duration("0ms"), Time::zero());
}

TEST(ParseDuration, AcceptsScientificNotation) {
  EXPECT_EQ(parse_duration("1e3us"), Time::millis(1));
  EXPECT_EQ(parse_duration("2.5e-3s"), Time::micros(2500));
}

TEST(ParseDuration, RejectsNegative) {
  EXPECT_THROW(parse_duration("-5ms"), ConfigError);
  EXPECT_THROW(parse_duration("-0.001s"), ConfigError);
}

TEST(ParseDuration, RejectsOverflow) {
  // 1e12 s = 1e21 ns: past the 64-bit nanosecond clock (~292 years).
  EXPECT_THROW(parse_duration("1e12s"), ConfigError);
  EXPECT_THROW(parse_duration("1e30ms"), ConfigError);
  EXPECT_THROW(parse_duration("1e400s"), ConfigError);  // stod overflow
}

TEST(ParseDuration, RejectsMissingUnit) {
  EXPECT_THROW(parse_duration("123"), ConfigError);
  EXPECT_THROW(parse_duration("1.5"), ConfigError);
}

TEST(ParseDuration, RejectsGarbage) {
  EXPECT_THROW(parse_duration(""), ConfigError);
  EXPECT_THROW(parse_duration("abc"), ConfigError);
  EXPECT_THROW(parse_duration("ms"), ConfigError);
  EXPECT_THROW(parse_duration("12eee"), ConfigError);
  EXPECT_THROW(parse_duration("1.2.3ms"), ConfigError);
  EXPECT_THROW(parse_duration("5 ms"), ConfigError);
  EXPECT_THROW(parse_duration("5m"), ConfigError);   // minutes unsupported
  EXPECT_THROW(parse_duration("5sec"), ConfigError);
}

TEST(ParseDuration, ErrorsNameTheAcceptedUnits) {
  try {
    parse_duration("17");
    FAIL() << "unit-less duration must throw";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("ns, us, ms or s"),
              std::string::npos);
  }
  try {
    parse_duration("5sec");
    FAIL() << "bad unit must throw";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("valid: ns, us, ms, s"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace mmptcp
