#include "sim/event_fn.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>

namespace mmptcp {
namespace {

TEST(EventFn, DefaultIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, InvokesSmallCapture) {
  int count = 0;
  EventFn fn([&count] { ++count; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(count, 2);
}

TEST(EventFn, MoveTransfersOwnershipAndEmptiesSource) {
  int count = 0;
  EventFn a([&count] { ++count; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(count, 1);
}

TEST(EventFn, MoveOnlyCaptureWorks) {
  auto value = std::make_unique<int>(41);
  int seen = 0;
  EventFn fn([v = std::move(value), &seen] { seen = *v + 1; });
  fn();
  EXPECT_EQ(seen, 42);
}

TEST(EventFn, PacketSizedCaptureStaysInline) {
  // The whole point of the inline buffer: a Packet-plus-pointer capture.
  int out = 0;
  std::array<unsigned char, 80> payload{};  // sizeof(Packet)
  payload[0] = 7;
  auto closure = [payload, p = &out] { *p = payload[0]; };
  static_assert(sizeof(closure) <= EventFn::kInlineBytes,
                "a Packet plus a pointer must fit the inline buffer");
  EventFn fn(closure);
  EventFn moved(std::move(fn));
  moved();
  EXPECT_EQ(out, 7);
}

TEST(EventFn, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 32> big{};  // 256 bytes > kInlineBytes
  big[31] = 9;
  std::uint64_t seen = 0;
  EventFn fn([big, &seen] { seen = big[31]; });
  EventFn moved(std::move(fn));
  EXPECT_FALSE(static_cast<bool>(fn));
  moved();
  EXPECT_EQ(seen, 9u);
}

TEST(EventFn, DestructionReleasesCapture) {
  auto tracker = std::make_shared<int>(1);
  {
    EventFn fn([tracker] { (void)tracker; });
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(EventFn, AssignReplacesAndReleasesPrevious) {
  auto first = std::make_shared<int>(1);
  int second_runs = 0;
  EventFn fn([first] { (void)first; });
  EXPECT_EQ(first.use_count(), 2);
  fn = [&second_runs] { ++second_runs; };
  EXPECT_EQ(first.use_count(), 1);
  fn();
  EXPECT_EQ(second_runs, 1);
}

TEST(EventFn, MoveAssignReleasesPrevious) {
  auto held = std::make_shared<int>(1);
  EventFn fn([held] { (void)held; });
  fn = EventFn{};
  EXPECT_EQ(held.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(fn));
}

}  // namespace
}  // namespace mmptcp
