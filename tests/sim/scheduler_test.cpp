#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace mmptcp {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Time::millis(3), [&] { order.push_back(3); });
  s.schedule(Time::millis(1), [&] { order.push_back(1); });
  s.schedule(Time::millis(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Time::millis(3));
}

TEST(Scheduler, SameTimestampIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(Time::millis(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ClockAdvancesToEventTime) {
  Scheduler s;
  Time seen;
  s.schedule(Time::micros(250), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, Time::micros(250));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule(Time::millis(1), [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, CancelAfterExecutionIsNoop) {
  Scheduler s;
  const EventId id = s.schedule(Time::millis(1), [] {});
  s.run();
  s.cancel(id);  // must not disturb future events
  bool ran = false;
  s.schedule(Time::millis(1), [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler s;
  s.cancel(EventId{});
  s.cancel(EventId{9999});
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Time::millis(1), [&] { order.push_back(1); });
  s.schedule(Time::millis(10), [&] { order.push_back(10); });
  const auto ran = s.run_until(Time::millis(5));
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.now(), Time::millis(5));  // clock parked at the horizon
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10}));
}

TEST(Scheduler, RunUntilIncludesEventsAtHorizon) {
  Scheduler s;
  bool ran = false;
  s.schedule(Time::millis(5), [&] { ran = true; });
  s.run_until(Time::millis(5));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  std::vector<Time> at;
  s.schedule(Time::millis(1), [&] {
    at.push_back(s.now());
    s.schedule(Time::millis(1), [&] { at.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], Time::millis(1));
  EXPECT_EQ(at[1], Time::millis(2));
}

TEST(Scheduler, StopHaltsRun) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule(Time::millis(i), [&] {
      ++count;
      if (count == 3) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int count = 0;
  s.schedule(Time::millis(1), [&] { ++count; });
  s.schedule(Time::millis(2), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler s;
  s.schedule(Time::millis(5), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(Time::millis(1), [] {}), InvariantError);
  EXPECT_THROW(s.schedule(Time::millis(-1), [] {}), InvariantError);
}

TEST(Scheduler, EmptyCallbackRejected) {
  Scheduler s;
  EXPECT_THROW(s.schedule(Time::millis(1), Scheduler::Callback{}),
               InvariantError);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule(Time::millis(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.executed(), 5u);
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  Time last = Time::zero();
  bool monotone = true;
  for (int i = 0; i < 20000; ++i) {
    s.schedule(Time::nanos((i * 7919) % 100000), [&] {
      if (s.now() < last) monotone = false;
      last = s.now();
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(s.executed(), 20000u);
}

}  // namespace
}  // namespace mmptcp
