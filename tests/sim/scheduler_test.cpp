#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace mmptcp {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Time::millis(3), [&] { order.push_back(3); });
  s.schedule(Time::millis(1), [&] { order.push_back(1); });
  s.schedule(Time::millis(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Time::millis(3));
}

TEST(Scheduler, SameTimestampIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(Time::millis(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ClockAdvancesToEventTime) {
  Scheduler s;
  Time seen;
  s.schedule(Time::micros(250), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, Time::micros(250));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule(Time::millis(1), [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, CancelAfterExecutionIsNoop) {
  Scheduler s;
  const EventId id = s.schedule(Time::millis(1), [] {});
  s.run();
  s.cancel(id);  // must not disturb future events
  bool ran = false;
  s.schedule(Time::millis(1), [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, CancelInvalidIdIsNoop) {
  Scheduler s;
  s.cancel(EventId{});
  s.cancel(EventId{9999});
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Time::millis(1), [&] { order.push_back(1); });
  s.schedule(Time::millis(10), [&] { order.push_back(10); });
  const auto ran = s.run_until(Time::millis(5));
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.now(), Time::millis(5));  // clock parked at the horizon
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10}));
}

TEST(Scheduler, RunUntilIncludesEventsAtHorizon) {
  Scheduler s;
  bool ran = false;
  s.schedule(Time::millis(5), [&] { ran = true; });
  s.run_until(Time::millis(5));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  std::vector<Time> at;
  s.schedule(Time::millis(1), [&] {
    at.push_back(s.now());
    s.schedule(Time::millis(1), [&] { at.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], Time::millis(1));
  EXPECT_EQ(at[1], Time::millis(2));
}

TEST(Scheduler, StopHaltsRun) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule(Time::millis(i), [&] {
      ++count;
      if (count == 3) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int count = 0;
  s.schedule(Time::millis(1), [&] { ++count; });
  s.schedule(Time::millis(2), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

// Insertion guards are dchecks on the scheduling hot path: compiled
// out under NDEBUG, so only exercise them in debug builds.
#ifndef NDEBUG
TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler s;
  s.schedule(Time::millis(5), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(Time::millis(1), [] {}), InvariantError);
  EXPECT_THROW(s.schedule(Time::millis(-1), [] {}), InvariantError);
}

TEST(Scheduler, EmptyCallbackRejected) {
  Scheduler s;
  EXPECT_THROW(s.schedule(Time::millis(1), Scheduler::Callback{}),
               InvariantError);
}
#endif

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule(Time::millis(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.executed(), 5u);
}

// Regression for the lazy-cancellation leak: cancelling an id that
// already executed used to insert a tombstone that survived until the
// queue drained, making pending() under-report live events.  Eager
// cancellation keeps pending() exact in every such sequence.
TEST(Scheduler, CancelAfterExecuteKeepsPendingExact) {
  Scheduler s;
  const EventId first = s.schedule(Time::millis(1), [] {});
  s.schedule(Time::millis(10), [] {});
  s.step();  // runs `first`
  EXPECT_EQ(s.pending(), 1u);
  s.cancel(first);  // stale: must be a no-op, not a tombstone
  EXPECT_EQ(s.pending(), 1u);
  s.cancel(first);  // idempotent
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(s.pending(), 0u);
}

// A stale id must never hit an unrelated event that reused its slot.
TEST(Scheduler, StaleIdDoesNotCancelRecycledSlot) {
  Scheduler s;
  const EventId old_id = s.schedule(Time::millis(1), [] {});
  s.run();
  bool ran = false;
  s.schedule(Time::millis(1), [&] { ran = true; });  // may reuse the slot
  s.cancel(old_id);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(ran);
}

// Events on both sides of the wheel horizon must interleave in strict
// time order, including an event that sits in the overflow heap while
// its timestamp drifts inside the wheel's window as the clock advances.
TEST(Scheduler, WheelHeapBoundaryCrossing) {
  const Time horizon =
      Time::nanos(std::int64_t{1}
                  << (Scheduler::kTickShift + Scheduler::kWheelBits));
  Scheduler s;
  std::vector<int> order;
  s.schedule(horizon * 4, [&] { order.push_back(4); });        // heap
  s.schedule(horizon / 2, [&] { order.push_back(1); });        // wheel
  s.schedule(horizon * 2, [&] { order.push_back(3); });        // heap
  s.schedule(horizon - Time::nanos(1), [&] { order.push_back(2); });
  // Scheduled from inside an event: by then the heap events are within
  // the wheel window of the new now(), so both structures hold
  // overlapping times and the pop must merge them correctly.
  s.schedule(horizon / 4, [&] {
    order.push_back(0);
    s.schedule_at(horizon * 2 + Time::nanos(1), [&] { order.push_back(-3); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, -3, 4}));
  EXPECT_EQ(s.executed(), 6u);
}

// Same timestamp, different structures: an event scheduled far in
// advance (overflow heap) and one scheduled later for the same instant
// (wheel) must still run in insertion order.
TEST(Scheduler, SameTimestampFifoAcrossStructures) {
  const Time horizon =
      Time::nanos(std::int64_t{1}
                  << (Scheduler::kTickShift + Scheduler::kWheelBits));
  const Time target = horizon * 2;
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(target, [&] { order.push_back(0); });  // heap at insert
  s.schedule_at(target - horizon / 2, [&] {
    // now() is close enough that `target` lands in the wheel.
    s.schedule_at(target, [&] { order.push_back(1); });
    s.schedule_at(target, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Scheduler, EagerCancelStress) {
  Scheduler s;
  std::vector<int> ran;
  std::vector<EventId> ids;
  // Mix of wheel-near and heap-far events, all cancelled while pending.
  for (int i = 0; i < 2000; ++i) {
    const Time at = (i % 3 == 0) ? Time::millis(100 + i)   // heap
                                 : Time::nanos(500 + i);   // wheel
    ids.push_back(s.schedule_at(at, [&ran, i] { ran.push_back(i); }));
  }
  EXPECT_EQ(s.pending(), 2000u);
  for (int i = 0; i < 2000; i += 2) s.cancel(ids[i]);
  EXPECT_EQ(s.pending(), 1000u);
  // Double-cancel is a no-op and pending() stays exact.
  for (int i = 0; i < 2000; i += 2) s.cancel(ids[i]);
  EXPECT_EQ(s.pending(), 1000u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  ASSERT_EQ(ran.size(), 1000u);
  for (int i : ran) EXPECT_EQ(i % 2, 1);
  EXPECT_EQ(s.executed(), 1000u);
}

// Cancelling every pending event from inside a running event.
TEST(Scheduler, CancelFromWithinEvent) {
  Scheduler s;
  bool later_ran = false;
  const EventId near_id =
      s.schedule(Time::micros(10), [&] { later_ran = true; });
  const EventId far_id =
      s.schedule(Time::seconds(1), [&] { later_ran = true; });
  s.schedule(Time::micros(1), [&] {
    s.cancel(near_id);
    s.cancel(far_id);
    EXPECT_EQ(s.pending(), 0u);
  });
  s.run();
  EXPECT_FALSE(later_ran);
  EXPECT_EQ(s.executed(), 1u);
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  Time last = Time::zero();
  bool monotone = true;
  for (int i = 0; i < 20000; ++i) {
    s.schedule(Time::nanos((i * 7919) % 100000), [&] {
      if (s.now() < last) monotone = false;
      last = s.now();
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(s.executed(), 20000u);
}

}  // namespace
}  // namespace mmptcp
