#include "sim/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/simulation.h"

namespace mmptcp {
namespace {

// ------------------------------------------------- serial collapse

TEST(Engine, SerialCollapseMatchesRunUntil) {
  // No domains configured: run_until is the classic inclusive serial run
  // on the control scheduler, regardless of lookahead or worker count.
  Simulation sim(1);
  std::vector<int> order;
  sim.scheduler().schedule(Time::millis(1), [&] { order.push_back(1); });
  sim.scheduler().schedule(Time::millis(5), [&] { order.push_back(5); });
  sim.scheduler().schedule(Time::millis(5), [&] { order.push_back(50); });
  Engine engine(sim, Time::zero(), 4);
  engine.run_until(Time::millis(5));
  EXPECT_EQ(order, (std::vector<int>{1, 5, 50}));  // inclusive at until
  EXPECT_FALSE(engine.stopped());
}

TEST(Engine, SerialCollapseHonoursStop) {
  Simulation sim(1);
  bool late = false;
  sim.scheduler().schedule(Time::millis(1),
                           [&] { sim.scheduler().stop(); });
  sim.scheduler().schedule(Time::millis(2), [&] { late = true; });
  Engine engine(sim, Time::zero(), 1);
  engine.run_until(Time::millis(10));
  EXPECT_TRUE(engine.stopped());
  EXPECT_FALSE(late);
}

// ------------------------------------------------- windowed execution

struct DomainRig {
  DomainRig() {
    sim.configure_domains(2);
  }
  Simulation sim{1};
};

TEST(Engine, WindowedRunExecutesEveryDomainEvent) {
  DomainRig rig;
  int ran = 0;
  for (std::size_t d = 0; d < 2; ++d) {
    for (int i = 1; i <= 5; ++i) {
      rig.sim.domain_scheduler(d).schedule(Time::micros(100 * i),
                                           [&] { ++ran; });
    }
  }
  rig.sim.control_scheduler().schedule(Time::micros(250), [&] { ++ran; });
  Engine engine(rig.sim, Time::micros(120), 2);
  engine.run_until(Time::millis(10));
  EXPECT_EQ(ran, 11);
  // Windowed runs are exclusive at `until` and park every clock there.
  EXPECT_EQ(rig.sim.control_scheduler().now(), Time::millis(10));
  EXPECT_EQ(rig.sim.domain_scheduler(0).now(), Time::millis(10));
  EXPECT_EQ(rig.sim.domain_scheduler(1).now(), Time::millis(10));
}

TEST(Engine, EventExactlyAtUntilIsNotRunInWindowedMode) {
  DomainRig rig;
  bool ran = false;
  rig.sim.domain_scheduler(0).schedule(Time::millis(10), [&] { ran = true; });
  Engine engine(rig.sim, Time::micros(50), 1);
  engine.run_until(Time::millis(10));
  EXPECT_FALSE(ran);
  EXPECT_EQ(rig.sim.domain_scheduler(0).now(), Time::millis(10));
}

TEST(Engine, ControlWindowRunsBeforeDomainWindows) {
  // Same window, same timestamp: the control event must observe none of
  // the domain events of that window (control runs first, workers
  // parked — this is what makes control-side mutation race-free).
  DomainRig rig;
  int domain_ran = 0;
  int seen_at_control = -1;
  rig.sim.domain_scheduler(0).schedule(Time::micros(100),
                                       [&] { ++domain_ran; });
  rig.sim.domain_scheduler(1).schedule(Time::micros(100),
                                       [&] { ++domain_ran; });
  rig.sim.control_scheduler().schedule(Time::micros(100), [&] {
    seen_at_control = domain_ran;
  });
  Engine engine(rig.sim, Time::micros(500), 2);
  engine.run_until(Time::millis(1));
  EXPECT_EQ(domain_ran, 2);
  EXPECT_EQ(seen_at_control, 0);
}

TEST(Engine, ControlStopEndsWindowedRun) {
  DomainRig rig;
  bool late_domain = false;
  rig.sim.control_scheduler().schedule(Time::micros(100), [&] {
    rig.sim.control_scheduler().stop();
  });
  // Lies beyond the stopping window: must never run.
  rig.sim.domain_scheduler(0).schedule(Time::millis(5),
                                       [&] { late_domain = true; });
  Engine engine(rig.sim, Time::micros(200), 2);
  engine.run_until(Time::seconds(1));
  EXPECT_TRUE(engine.stopped());
  EXPECT_FALSE(late_domain);
}

TEST(Engine, BarrierHookBracketsEveryWindow) {
  DomainRig rig;
  int hooks = 0;
  int events = 0;
  // Three windows' worth of events, windows 200us wide.
  for (int i = 1; i <= 3; ++i) {
    rig.sim.domain_scheduler(0).schedule(Time::millis(i), [&] { ++events; });
  }
  Engine engine(rig.sim, Time::micros(200), 1);
  engine.set_barrier_hook([&] { ++hooks; });
  engine.run_until(Time::millis(10));
  EXPECT_EQ(events, 3);
  // One hook before each window plus the final drain: > window count.
  EXPECT_GE(hooks, 4);
}

TEST(Engine, HookInsertionLandsInLaterWindow) {
  // The barrier hook models the cross-domain flush: an insertion it makes
  // for a future timestamp must execute in its own window.
  DomainRig rig;
  bool injected_ran = false;
  bool injected = false;
  rig.sim.domain_scheduler(0).schedule(Time::micros(100), [] {});
  Engine engine(rig.sim, Time::micros(200), 2);
  engine.set_barrier_hook([&] {
    if (!injected) {
      injected = true;
      rig.sim.domain_scheduler(1).schedule_at(Time::millis(2),
                                              [&] { injected_ran = true; });
    }
  });
  engine.run_until(Time::millis(10));
  EXPECT_TRUE(injected_ran);
}

TEST(Engine, ManyTinyWindowsHammerTheClaimHandshake) {
  // Thousands of one-event-per-domain windows on a full worker pool:
  // maximises the chance that a worker is preempted across a barrier so
  // its next claim lands in a newer epoch (the stale-claim adoption
  // path in claim_and_run).  A skipped or double-run window shows up as
  // a wrong count; a broken handshake hangs the run.
  Simulation sim(3);
  sim.configure_domains(4);
  std::atomic<int> ran{0};
  constexpr int kWindows = 2000;
  for (std::size_t d = 0; d < 4; ++d) {
    for (int i = 1; i <= kWindows; ++i) {
      sim.domain_scheduler(d).schedule(Time::micros(10 * i), [&] { ++ran; });
    }
  }
  Engine engine(sim, Time::micros(10), 4);
  engine.run_until(Time::micros(10 * (kWindows + 1)));
  EXPECT_EQ(ran.load(), 4 * kWindows);
}

// ------------------------------------------------- quiet-domain skip

TEST(Engine, QuietDomainsAreSkippedNotClaimed) {
  // Only one of four domains ever has work: every mid-run window claims
  // just that domain and skips the other three.  The final window runs
  // every domain (to park all clocks at `until`), so the exact budget is
  // one claim per mid window plus four for the final one — and
  // claimed + skipped must account for every domain of every window.
  Simulation sim(1);
  sim.configure_domains(4);
  int ran = 0;
  constexpr int kEvents = 50;
  for (int i = 1; i <= kEvents; ++i) {
    sim.domain_scheduler(2).schedule(Time::micros(10 * i), [&] { ++ran; });
  }
  Engine engine(sim, Time::micros(10), 2);
  engine.run_until(Time::micros(10 * kEvents + 5));
  EXPECT_EQ(ran, kEvents);
  const EngineStats& s = engine.stats();
  EXPECT_GT(s.windows, 0u);
  EXPECT_GT(s.domains_skipped, 0u);
  EXPECT_EQ(s.domains_claimed + s.domains_skipped, s.windows * 4);
  EXPECT_EQ(s.domains_claimed, (s.windows - 1) + 4);
}

TEST(Engine, ParkedWorkersWakeAcrossManySparseWindows) {
  // Eight domains, four workers, but only one domain ever busy: the idle
  // workers blow through their spin/yield budget and park on the
  // condvar, then must observe every epoch publication.  A lost wakeup
  // hangs this test (the busy domain's window never gets claimed);
  // quiet-skip keeps the idle domains out of every claim list.
  Simulation sim(5);
  sim.configure_domains(8);
  std::atomic<int> ran{0};
  constexpr int kWindows = 3000;
  for (int i = 1; i <= kWindows; ++i) {
    sim.domain_scheduler(3).schedule(Time::micros(10 * i), [&] { ++ran; });
  }
  Engine engine(sim, Time::micros(10), 4);
  engine.run_until(Time::micros(10 * (kWindows + 1)));
  EXPECT_EQ(ran.load(), kWindows);
  EXPECT_GT(engine.stats().domains_skipped, 0u);
}

TEST(Engine, ManyDomainsPackIntoTheClaimWord) {
  // More domains than a typical worker pool (edge granularity yields
  // k^2/2 + k of them): counts and indices share the claim word's 16-bit
  // fields with the epoch above, and every event must still run exactly
  // once.
  Simulation sim(9);
  constexpr std::size_t kDomains = 24;
  sim.configure_domains(kDomains);
  std::atomic<int> ran{0};
  for (std::size_t d = 0; d < kDomains; ++d) {
    for (int i = 1; i <= 40; ++i) {
      sim.domain_scheduler(d).schedule(
          Time::micros(25 * i + static_cast<int>(d)), [&] { ++ran; });
    }
  }
  Engine engine(sim, Time::micros(50), 4);
  engine.run_until(Time::millis(2));
  EXPECT_EQ(ran.load(), int(kDomains) * 40);
  const EngineStats& s = engine.stats();
  EXPECT_EQ(s.domains_claimed + s.domains_skipped, s.windows * kDomains);
}

TEST(Engine, ResultsIndependentOfWorkerCount) {
  // The same event program must leave identical executed counts and
  // clocks at 1, 2 and 4 workers.
  auto run = [](unsigned workers) {
    Simulation sim(7);
    sim.configure_domains(4);
    for (std::size_t d = 0; d < 4; ++d) {
      for (int i = 1; i <= 20; ++i) {
        sim.domain_scheduler(d).schedule(Time::micros(37 * i + 11 * d),
                                         [] {});
      }
    }
    Engine engine(sim, Time::micros(100), workers);
    engine.run_until(Time::millis(5));
    return sim.total_executed();
  };
  const std::uint64_t one = run(1);
  EXPECT_EQ(one, 80u);
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(4), one);
}

}  // namespace
}  // namespace mmptcp
