#include "sim/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/simulation.h"

namespace mmptcp {
namespace {

// ------------------------------------------------- serial collapse

TEST(Engine, SerialCollapseMatchesRunUntil) {
  // No domains configured: run_until is the classic inclusive serial run
  // on the control scheduler, regardless of lookahead or worker count.
  Simulation sim(1);
  std::vector<int> order;
  sim.scheduler().schedule(Time::millis(1), [&] { order.push_back(1); });
  sim.scheduler().schedule(Time::millis(5), [&] { order.push_back(5); });
  sim.scheduler().schedule(Time::millis(5), [&] { order.push_back(50); });
  Engine engine(sim, Time::zero(), 4);
  engine.run_until(Time::millis(5));
  EXPECT_EQ(order, (std::vector<int>{1, 5, 50}));  // inclusive at until
  EXPECT_FALSE(engine.stopped());
}

TEST(Engine, SerialCollapseHonoursStop) {
  Simulation sim(1);
  bool late = false;
  sim.scheduler().schedule(Time::millis(1),
                           [&] { sim.scheduler().stop(); });
  sim.scheduler().schedule(Time::millis(2), [&] { late = true; });
  Engine engine(sim, Time::zero(), 1);
  engine.run_until(Time::millis(10));
  EXPECT_TRUE(engine.stopped());
  EXPECT_FALSE(late);
}

// ------------------------------------------------- windowed execution

struct DomainRig {
  DomainRig() {
    sim.configure_domains(2);
  }
  Simulation sim{1};
};

TEST(Engine, WindowedRunExecutesEveryDomainEvent) {
  DomainRig rig;
  int ran = 0;
  for (std::size_t d = 0; d < 2; ++d) {
    for (int i = 1; i <= 5; ++i) {
      rig.sim.domain_scheduler(d).schedule(Time::micros(100 * i),
                                           [&] { ++ran; });
    }
  }
  rig.sim.control_scheduler().schedule(Time::micros(250), [&] { ++ran; });
  Engine engine(rig.sim, Time::micros(120), 2);
  engine.run_until(Time::millis(10));
  EXPECT_EQ(ran, 11);
  // Windowed runs are exclusive at `until` and park every clock there.
  EXPECT_EQ(rig.sim.control_scheduler().now(), Time::millis(10));
  EXPECT_EQ(rig.sim.domain_scheduler(0).now(), Time::millis(10));
  EXPECT_EQ(rig.sim.domain_scheduler(1).now(), Time::millis(10));
}

TEST(Engine, EventExactlyAtUntilIsNotRunInWindowedMode) {
  DomainRig rig;
  bool ran = false;
  rig.sim.domain_scheduler(0).schedule(Time::millis(10), [&] { ran = true; });
  Engine engine(rig.sim, Time::micros(50), 1);
  engine.run_until(Time::millis(10));
  EXPECT_FALSE(ran);
  EXPECT_EQ(rig.sim.domain_scheduler(0).now(), Time::millis(10));
}

TEST(Engine, ControlWindowRunsBeforeDomainWindows) {
  // Same window, same timestamp: the control event must observe none of
  // the domain events of that window (control runs first, workers
  // parked — this is what makes control-side mutation race-free).
  DomainRig rig;
  int domain_ran = 0;
  int seen_at_control = -1;
  rig.sim.domain_scheduler(0).schedule(Time::micros(100),
                                       [&] { ++domain_ran; });
  rig.sim.domain_scheduler(1).schedule(Time::micros(100),
                                       [&] { ++domain_ran; });
  rig.sim.control_scheduler().schedule(Time::micros(100), [&] {
    seen_at_control = domain_ran;
  });
  Engine engine(rig.sim, Time::micros(500), 2);
  engine.run_until(Time::millis(1));
  EXPECT_EQ(domain_ran, 2);
  EXPECT_EQ(seen_at_control, 0);
}

TEST(Engine, ControlStopEndsWindowedRun) {
  DomainRig rig;
  bool late_domain = false;
  rig.sim.control_scheduler().schedule(Time::micros(100), [&] {
    rig.sim.control_scheduler().stop();
  });
  // Lies beyond the stopping window: must never run.
  rig.sim.domain_scheduler(0).schedule(Time::millis(5),
                                       [&] { late_domain = true; });
  Engine engine(rig.sim, Time::micros(200), 2);
  engine.run_until(Time::seconds(1));
  EXPECT_TRUE(engine.stopped());
  EXPECT_FALSE(late_domain);
}

TEST(Engine, BarrierHookBracketsEveryWindow) {
  DomainRig rig;
  int hooks = 0;
  int events = 0;
  // Three windows' worth of events, windows 200us wide.
  for (int i = 1; i <= 3; ++i) {
    rig.sim.domain_scheduler(0).schedule(Time::millis(i), [&] { ++events; });
  }
  Engine engine(rig.sim, Time::micros(200), 1);
  engine.set_barrier_hook([&] { ++hooks; });
  engine.run_until(Time::millis(10));
  EXPECT_EQ(events, 3);
  // One hook before each window plus the final drain: > window count.
  EXPECT_GE(hooks, 4);
}

TEST(Engine, HookInsertionLandsInLaterWindow) {
  // The barrier hook models the cross-domain flush: an insertion it makes
  // for a future timestamp must execute in its own window.
  DomainRig rig;
  bool injected_ran = false;
  bool injected = false;
  rig.sim.domain_scheduler(0).schedule(Time::micros(100), [] {});
  Engine engine(rig.sim, Time::micros(200), 2);
  engine.set_barrier_hook([&] {
    if (!injected) {
      injected = true;
      rig.sim.domain_scheduler(1).schedule_at(Time::millis(2),
                                              [&] { injected_ran = true; });
    }
  });
  engine.run_until(Time::millis(10));
  EXPECT_TRUE(injected_ran);
}

TEST(Engine, ManyTinyWindowsHammerTheClaimHandshake) {
  // Thousands of one-event-per-domain windows on a full worker pool:
  // maximises the chance that a worker is preempted across a barrier so
  // its next claim lands in a newer epoch (the stale-claim adoption
  // path in claim_and_run).  A skipped or double-run window shows up as
  // a wrong count; a broken handshake hangs the run.
  Simulation sim(3);
  sim.configure_domains(4);
  std::atomic<int> ran{0};
  constexpr int kWindows = 2000;
  for (std::size_t d = 0; d < 4; ++d) {
    for (int i = 1; i <= kWindows; ++i) {
      sim.domain_scheduler(d).schedule(Time::micros(10 * i), [&] { ++ran; });
    }
  }
  Engine engine(sim, Time::micros(10), 4);
  engine.run_until(Time::micros(10 * (kWindows + 1)));
  EXPECT_EQ(ran.load(), 4 * kWindows);
}

TEST(Engine, ResultsIndependentOfWorkerCount) {
  // The same event program must leave identical executed counts and
  // clocks at 1, 2 and 4 workers.
  auto run = [](unsigned workers) {
    Simulation sim(7);
    sim.configure_domains(4);
    for (std::size_t d = 0; d < 4; ++d) {
      for (int i = 1; i <= 20; ++i) {
        sim.domain_scheduler(d).schedule(Time::micros(37 * i + 11 * d),
                                         [] {});
      }
    }
    Engine engine(sim, Time::micros(100), workers);
    engine.run_until(Time::millis(5));
    return sim.total_executed();
  };
  const std::uint64_t one = run(1);
  EXPECT_EQ(one, 80u);
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(4), one);
}

}  // namespace
}  // namespace mmptcp
