#include "topo/fat_tree.h"

#include <gtest/gtest.h>

#include <set>

namespace mmptcp {
namespace {

FatTreeConfig cfg(std::uint32_t k, std::uint32_t oversub) {
  FatTreeConfig c;
  c.k = k;
  c.oversubscription = oversub;
  return c;
}

TEST(FatTree, CanonicalK4Counts) {
  Simulation sim(1);
  FatTree ft(sim, cfg(4, 1));
  EXPECT_EQ(ft.host_count(), 16u);           // k^3/4
  EXPECT_EQ(ft.pods(), 4u);
  EXPECT_EQ(ft.edges_per_pod(), 2u);
  EXPECT_EQ(ft.aggs_per_pod(), 2u);
  EXPECT_EQ(ft.core_count(), 4u);            // (k/2)^2
  EXPECT_EQ(ft.hosts_per_edge(), 2u);
  EXPECT_EQ(ft.network().switch_count(), 4u * 2 + 4u * 2 + 4u);
}

TEST(FatTree, OversubscriptionScalesHosts) {
  Simulation sim(1);
  FatTree ft(sim, cfg(4, 4));
  EXPECT_EQ(ft.hosts_per_edge(), 8u);
  EXPECT_EQ(ft.host_count(), 64u);
  // Switch population does not change with oversubscription.
  EXPECT_EQ(ft.network().switch_count(), 20u);
}

TEST(FatTree, PaperScaleTopology) {
  // The paper: k=8, 4:1 oversubscribed, 512 servers.
  Simulation sim(1);
  FatTree ft(sim, cfg(8, 4));
  EXPECT_EQ(ft.host_count(), 512u);
  EXPECT_EQ(ft.hosts_per_edge(), 16u);
  EXPECT_EQ(ft.core_count(), 16u);
  EXPECT_EQ(ft.network().switch_count(), 8u * 4 + 8u * 4 + 16u);
}

TEST(FatTree, PortCountsMatchRoles) {
  Simulation sim(1);
  FatTree ft(sim, cfg(4, 2));
  // Edge: hosts_per_edge down + k/2 up.
  EXPECT_EQ(ft.edge_switch(0, 0).port_count(), 4u + 2u);
  // Agg: k/2 down + k/2 up.
  EXPECT_EQ(ft.agg_switch(1, 1).port_count(), 4u);
  // Core: one port per pod.
  EXPECT_EQ(ft.core_switch(3).port_count(), 4u);
  // Host: single NIC.
  EXPECT_EQ(ft.host(0).port_count(), 1u);
}

TEST(FatTree, AddressesAreUniqueAndWellFormed) {
  Simulation sim(1);
  FatTree ft(sim, cfg(4, 2));
  std::set<std::uint32_t> seen;
  for (std::size_t i = 0; i < ft.host_count(); ++i) {
    const Addr a = ft.host(i).addr();
    EXPECT_TRUE(FatTreeAddr::is_host(a)) << a.to_string();
    EXPECT_TRUE(seen.insert(a.raw).second) << "duplicate " << a.to_string();
  }
}

TEST(FatTree, AddressPackingRoundTrips) {
  const Addr a = FatTreeAddr::host(3, 1, 7);
  EXPECT_EQ(FatTreeAddr::pod(a), 3u);
  EXPECT_EQ(FatTreeAddr::edge(a), 1u);
  EXPECT_EQ(FatTreeAddr::host_index(a), 7u);
  EXPECT_EQ(a.to_string(), "10.3.1.9");
}

TEST(FatTree, HostAtMatchesAddressing) {
  Simulation sim(1);
  FatTree ft(sim, cfg(4, 2));
  Host& h = ft.host_at(2, 1, 3);
  EXPECT_EQ(h.addr(), FatTreeAddr::host(2, 1, 3));
}

TEST(FatTree, PathCounts) {
  Simulation sim(1);
  FatTree ft(sim, cfg(8, 4));
  const Addr same = FatTreeAddr::host(0, 0, 0);
  EXPECT_EQ(ft.path_count(same, same), 0u);
  // Same edge: exactly one path (through the shared edge switch).
  EXPECT_EQ(ft.path_count(FatTreeAddr::host(0, 0, 0),
                          FatTreeAddr::host(0, 0, 1)),
            1u);
  // Same pod, different edge: k/2 paths (one per aggregation switch).
  EXPECT_EQ(ft.path_count(FatTreeAddr::host(0, 0, 0),
                          FatTreeAddr::host(0, 1, 0)),
            4u);
  // Different pods: (k/2)^2 paths (one per core switch).
  EXPECT_EQ(ft.path_count(FatTreeAddr::host(0, 0, 0),
                          FatTreeAddr::host(5, 2, 0)),
            16u);
}

TEST(FatTree, PathCountRejectsNonHostAddresses) {
  EXPECT_EQ(FatTree::path_count(Addr{0}, FatTreeAddr::host(0, 0, 0), 4), 0u);
}

TEST(FatTree, ConfigValidation) {
  Simulation sim(1);
  EXPECT_THROW(FatTree(sim, cfg(3, 1)), ConfigError);   // odd k
  EXPECT_THROW(FatTree(sim, cfg(2, 1)), ConfigError);   // too small
  EXPECT_THROW(FatTree(sim, cfg(4, 0)), ConfigError);   // zero oversub
  EXPECT_THROW(FatTree(sim, cfg(4, 200)), ConfigError); // address overflow
}

TEST(FatTree, LinkLayerTagging) {
  Simulation sim(1);
  FatTree ft(sim, cfg(4, 1));
  EXPECT_EQ(ft.host(0).port(0).layer(), LinkLayer::kHostEdge);
  Switch& edge = ft.edge_switch(0, 0);
  EXPECT_EQ(edge.port(0).layer(), LinkLayer::kHostEdge);       // down
  EXPECT_EQ(edge.port(ft.hosts_per_edge()).layer(), LinkLayer::kEdgeAgg);
  Switch& agg = ft.agg_switch(0, 0);
  EXPECT_EQ(agg.port(0).layer(), LinkLayer::kEdgeAgg);         // down
  EXPECT_EQ(agg.port(ft.k() / 2).layer(), LinkLayer::kAggCore);
  EXPECT_EQ(ft.core_switch(0).port(0).layer(), LinkLayer::kAggCore);
}

TEST(FatTree, SharedBufferOptionInstallsPools) {
  Simulation sim(1);
  FatTreeConfig c = cfg(4, 1);
  c.shared_buffer = true;
  c.shared_buffer_bytes = 1 << 20;
  FatTree ft(sim, c);
  EXPECT_NE(ft.edge_switch(0, 0).shared_buffer(), nullptr);
  EXPECT_EQ(ft.edge_switch(0, 0).shared_buffer()->capacity(), 1u << 20);
  // Default (no shared buffer) leaves ports independent.
  Simulation sim2(1);
  FatTree plain(sim2, cfg(4, 1));
  EXPECT_EQ(plain.edge_switch(0, 0).shared_buffer(), nullptr);
}

}  // namespace
}  // namespace mmptcp
