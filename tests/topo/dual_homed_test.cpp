#include "topo/dual_homed.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace mmptcp {
namespace {

DualHomedConfig cfg(std::uint32_t k, std::uint32_t oversub) {
  DualHomedConfig c;
  c.k = k;
  c.oversubscription = oversub;
  return c;
}

class CaptureEndpoint final : public Endpoint {
 public:
  void handle_packet(const Packet& pkt) override { packets.push_back(pkt); }
  std::vector<Packet> packets;
};

TEST(DualHomed, K4Structure) {
  Simulation sim(1);
  DualHomedFatTree dh(sim, cfg(4, 1));
  EXPECT_EQ(dh.pairs_per_pod(), 1u);
  EXPECT_EQ(dh.edges_per_pod(), 2u);
  EXPECT_EQ(dh.hosts_per_pair(), 2u);
  EXPECT_EQ(dh.host_count(), 8u);  // 4 pods x 1 pair x 2 hosts
  // Every host has two NICs.
  for (std::size_t i = 0; i < dh.host_count(); ++i) {
    EXPECT_EQ(dh.host(i).port_count(), 2u);
  }
  // Each edge serves every host of its pair.
  EXPECT_EQ(dh.edge_switch(0, 0).port_count(), 2u + 2u);
  EXPECT_EQ(dh.edge_switch(0, 1).port_count(), 2u + 2u);
}

TEST(DualHomed, RejectsNonMultipleOfFourK) {
  Simulation sim(1);
  EXPECT_THROW(DualHomedFatTree(sim, cfg(6, 1)), ConfigError);
}

TEST(DualHomed, PathCounts) {
  Simulation sim(1);
  DualHomedFatTree dh(sim, cfg(8, 1));
  const Addr a = FatTreeAddr::host(0, 0, 0);
  EXPECT_EQ(dh.path_count(a, a), 0u);
  // Same pair: both shared edges.
  EXPECT_EQ(dh.path_count(a, FatTreeAddr::host(0, 0, 1)), 2u);
  // Same pod, other pair: 2 src edges x k/2 aggs x 2 dst edges.
  EXPECT_EQ(dh.path_count(a, FatTreeAddr::host(0, 1, 0)), 16u);
  // Inter-pod: 2 x (k/2)^2 x 2.
  EXPECT_EQ(dh.path_count(a, FatTreeAddr::host(3, 1, 0)), 64u);
  // Dual homing multiplies the single-homed count by 4 inter-pod.
  EXPECT_EQ(dh.path_count(a, FatTreeAddr::host(3, 1, 0)),
            4 * FatTree::path_count(a, FatTreeAddr::host(3, 1, 0), 8));
}

TEST(DualHomed, AllPairsReachable) {
  Simulation sim(1);
  DualHomedFatTree dh(sim, cfg(4, 1));
  for (std::size_t s = 0; s < dh.host_count(); ++s) {
    for (std::size_t d = 0; d < dh.host_count(); ++d) {
      if (s == d) continue;
      CaptureEndpoint ep;
      dh.host(d).register_token(1, &ep);
      Packet p;
      p.src = dh.host(s).addr();
      p.dst = dh.host(d).addr();
      p.sport = static_cast<std::uint16_t>(1000 + s * 17 + d);
      p.token = 1;
      dh.host(s).send(p);
      sim.scheduler().run();
      dh.host(d).unregister_token(1);
      ASSERT_EQ(ep.packets.size(), 1u) << s << " -> " << d;
    }
  }
}

TEST(DualHomed, SprayUsesBothNics) {
  Simulation sim(1);
  DualHomedFatTree dh(sim, cfg(4, 1));
  Host& src = dh.host(0);
  CaptureEndpoint ep;
  dh.host(7).register_token(2, &ep);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Packet p;
    p.src = src.addr();
    p.dst = dh.host(7).addr();
    p.sport = static_cast<std::uint16_t>(49152 + rng.uniform(16384));
    p.token = 2;
    src.send(p);
  }
  sim.scheduler().run();
  EXPECT_EQ(ep.packets.size(), 200u);
  EXPECT_GT(src.port(0).counters().tx_packets, 30u);
  EXPECT_GT(src.port(1).counters().tx_packets, 30u);
}

TEST(DualHomed, DownRoutingBalancesAcrossPairMembers) {
  Simulation sim(1);
  DualHomedFatTree dh(sim, cfg(4, 1));
  // Traffic from many sources to one host should arrive via both edges of
  // its pair (aggregation switches ECMP between the two members).
  CaptureEndpoint ep;
  Host& dst = dh.host(0);  // pod 0, pair 0
  dst.register_token(3, &ep);
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const std::size_t s = 2 + rng.uniform(dh.host_count() - 2);  // other pods
    Packet p;
    p.src = dh.host(s).addr();
    p.dst = dst.addr();
    p.sport = static_cast<std::uint16_t>(rng.uniform(60000));
    p.token = 3;
    dh.host(s).send(p);
  }
  sim.scheduler().run();
  // Count what each pair member delivered to the host (its port 0 is
  // host 0's link in pair-member wiring order).
  const auto tx0 = dh.edge_switch(0, 0).port(0).counters().tx_packets;
  const auto tx1 = dh.edge_switch(0, 1).port(0).counters().tx_packets;
  EXPECT_GT(tx0, 50u);
  EXPECT_GT(tx1, 50u);
  EXPECT_EQ(tx0 + tx1, ep.packets.size());
}

}  // namespace
}  // namespace mmptcp
