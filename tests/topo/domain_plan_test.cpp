// Domain decomposition of the FatTree: the per-pod and per-edge plans,
// the node tagging they rely on, and the cross-domain accounting the
// Network derives from them.  Crossing is canonical: edge<->agg and
// agg<->core links are cross-domain at BOTH granularities, so the
// lookahead is min(edge<->agg, agg<->core delay) either way.

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/fat_tree.h"

namespace mmptcp {
namespace {

TEST(DomainPlan, OneDomainPerPod) {
  FatTreeConfig cfg;
  cfg.k = 4;
  const FatTreeDomainPlan plan = FatTree::domain_plan(cfg);
  EXPECT_EQ(plan.domains, 4u);
  EXPECT_EQ(plan.host_groups, 8u);
  EXPECT_EQ(plan.lookahead, cfg.link_delay);
}

TEST(DomainPlan, EdgeGranularityAddsFabricDomains) {
  // k^2/2 host-bearing domains plus one fabric domain per pod; the host
  // group count (the canonical unit) is identical at both granularities.
  FatTreeConfig cfg;
  cfg.k = 4;
  cfg.domain_granularity = DomainGranularity::kEdge;
  const FatTreeDomainPlan plan = FatTree::domain_plan(cfg);
  EXPECT_EQ(plan.domains, 12u);  // 8 host groups + 4 fabric
  EXPECT_EQ(plan.host_groups, 8u);
  EXPECT_EQ(plan.lookahead, cfg.link_delay);
}

TEST(DomainPlan, LookaheadIsTheMinCrossingDelayAtEveryGranularity) {
  // A longer spine does NOT widen the window: edge<->agg links cross
  // canonical units too, so the conservative lookahead stays at the
  // shorter of the two crossing delays — at either granularity, which
  // is what keeps the window schedule (and result bytes) identical.
  FatTreeConfig cfg;
  cfg.k = 8;
  cfg.core_link_delay = Time::micros(100);
  EXPECT_EQ(FatTree::domain_plan(cfg).lookahead, cfg.link_delay);
  cfg.domain_granularity = DomainGranularity::kEdge;
  EXPECT_EQ(FatTree::domain_plan(cfg).lookahead, cfg.link_delay);

  cfg.core_link_delay = Time::micros(5);  // spine shorter than the edge
  EXPECT_EQ(FatTree::domain_plan(cfg).lookahead, Time::micros(5));
}

TEST(DomainPlan, ZeroCrossDelayFallsBackToSerial) {
  // Conservative execution needs strictly positive lookahead; a fabric
  // with zero-delay links cannot be windowed.
  FatTreeConfig cfg;
  cfg.k = 4;
  cfg.link_delay = Time::zero();
  const FatTreeDomainPlan plan = FatTree::domain_plan(cfg);
  EXPECT_EQ(plan.domains, 1u);
  EXPECT_EQ(plan.lookahead, Time::zero());
}

TEST(DomainPlan, EveryNodeTaggedByPodRule) {
  // Hosts, edge and aggregation switches carry their pod's domain; core
  // switch c goes to domain c % k so the spine spreads evenly.  The
  // canonical domain is always the edge-level one.
  FatTreeConfig cfg;
  cfg.k = 4;
  cfg.oversubscription = 2;
  Simulation sim(1);
  FatTree ft(sim, cfg);
  const std::size_t groups = std::size_t(cfg.k) * (cfg.k / 2);
  for (std::uint32_t p = 0; p < ft.pods(); ++p) {
    for (std::uint32_t e = 0; e < ft.edges_per_pod(); ++e) {
      const std::size_t group = std::size_t(p) * ft.edges_per_pod() + e;
      EXPECT_EQ(ft.edge_switch(p, e).domain(), p);
      EXPECT_EQ(ft.edge_switch(p, e).canonical_domain(), group);
      for (std::uint32_t h = 0; h < ft.hosts_per_edge(); ++h) {
        EXPECT_EQ(ft.host_at(p, e, h).domain(), p);
        EXPECT_EQ(ft.host_at(p, e, h).canonical_domain(), group);
      }
    }
    for (std::uint32_t a = 0; a < ft.aggs_per_pod(); ++a) {
      EXPECT_EQ(ft.agg_switch(p, a).domain(), p);
      EXPECT_EQ(ft.agg_switch(p, a).canonical_domain(), groups + p);
    }
  }
  for (std::uint32_t c = 0; c < ft.core_count(); ++c) {
    EXPECT_EQ(ft.core_switch(c).domain(), c % cfg.k);
    EXPECT_EQ(ft.core_switch(c).canonical_domain(), groups + c % cfg.k);
  }
}

TEST(DomainPlan, EveryNodeTaggedByEdgeRule) {
  // Per-edge granularity: execution domain == canonical domain for every
  // node — each edge switch plus its hosts is its own domain, agg and
  // core switches share per-pod fabric domains after the host groups.
  FatTreeConfig cfg;
  cfg.k = 4;
  cfg.domain_granularity = DomainGranularity::kEdge;
  Simulation sim(1);
  FatTree ft(sim, cfg);
  const std::size_t groups = std::size_t(cfg.k) * (cfg.k / 2);
  for (std::uint32_t p = 0; p < ft.pods(); ++p) {
    for (std::uint32_t e = 0; e < ft.edges_per_pod(); ++e) {
      const std::size_t group = std::size_t(p) * ft.edges_per_pod() + e;
      EXPECT_EQ(ft.edge_switch(p, e).domain(), group);
      EXPECT_EQ(ft.edge_switch(p, e).canonical_domain(), group);
      for (std::uint32_t h = 0; h < ft.hosts_per_edge(); ++h) {
        EXPECT_EQ(ft.host_at(p, e, h).domain(), group);
      }
    }
    for (std::uint32_t a = 0; a < ft.aggs_per_pod(); ++a) {
      EXPECT_EQ(ft.agg_switch(p, a).domain(), groups + p);
    }
  }
  for (std::uint32_t c = 0; c < ft.core_count(); ++c) {
    EXPECT_EQ(ft.core_switch(c).domain(), groups + c % cfg.k);
  }
}

// Cross-domain channel census for k=4: every edge<->agg link crosses
// canonical units (k pods x (k/2)^2 links = 16); of the k x (k/2)^2 = 16
// agg<->core links, core c's link into pod c%k stays inside fabric unit
// c%k, so 12 cross.  Host<->edge links never cross.  28 links = 56
// channels.
constexpr std::size_t kExpectedCrossChannelsK4 = 2 * (16 + 12);

TEST(DomainPlan, FabricLinksCrossCanonicalUnitsAtPodGranularity) {
  FatTreeConfig cfg;
  cfg.k = 4;
  Simulation sim(1);
  sim.configure_domains(FatTree::domain_plan(cfg).domains);
  FatTree ft(sim, cfg);
  EXPECT_EQ(ft.network().cross_domain_channel_count(),
            kExpectedCrossChannelsK4);
  EXPECT_EQ(ft.network().min_cross_domain_delay(),
            std::min(cfg.link_delay, ft.core_delay()));
}

TEST(DomainPlan, CrossDomainCensusIsGranularityInvariant) {
  // The same channels cross at edge granularity — crossing keys on the
  // canonical structure, which both granularities share.
  FatTreeConfig cfg;
  cfg.k = 4;
  cfg.domain_granularity = DomainGranularity::kEdge;
  Simulation sim(1);
  sim.configure_domains(FatTree::domain_plan(cfg).domains);
  FatTree ft(sim, cfg);
  EXPECT_EQ(ft.network().cross_domain_channel_count(),
            kExpectedCrossChannelsK4);
  EXPECT_EQ(ft.network().min_cross_domain_delay(),
            std::min(cfg.link_delay, ft.core_delay()));
}

TEST(DomainPlan, UnconfiguredSimulationWiresEverythingSerial) {
  // Same topology, domains never configured: every node resolves to the
  // control scheduler and nothing registers as cross-domain.
  FatTreeConfig cfg;
  cfg.k = 4;
  Simulation sim(1);
  FatTree ft(sim, cfg);
  EXPECT_EQ(ft.network().cross_domain_channel_count(), 0u);
}

}  // namespace
}  // namespace mmptcp
