// Domain decomposition of the FatTree: the per-pod plan, the node
// tagging it relies on, and the cross-domain accounting the Network
// derives from it (lookahead = min agg<->core propagation delay).

#include <gtest/gtest.h>

#include "topo/fat_tree.h"

namespace mmptcp {
namespace {

TEST(DomainPlan, OneDomainPerPod) {
  FatTreeConfig cfg;
  cfg.k = 4;
  const FatTreeDomainPlan plan = FatTree::domain_plan(cfg);
  EXPECT_EQ(plan.domains, 4u);
  EXPECT_EQ(plan.lookahead, cfg.link_delay);
}

TEST(DomainPlan, CoreLinkDelayOverridesTheLookahead) {
  FatTreeConfig cfg;
  cfg.k = 8;
  cfg.core_link_delay = Time::micros(100);
  const FatTreeDomainPlan plan = FatTree::domain_plan(cfg);
  EXPECT_EQ(plan.domains, 8u);
  EXPECT_EQ(plan.lookahead, Time::micros(100));
}

TEST(DomainPlan, ZeroCrossDelayFallsBackToSerial) {
  // Conservative execution needs strictly positive lookahead; a fabric
  // with zero-delay core links cannot be windowed.
  FatTreeConfig cfg;
  cfg.k = 4;
  cfg.link_delay = Time::zero();
  const FatTreeDomainPlan plan = FatTree::domain_plan(cfg);
  EXPECT_EQ(plan.domains, 1u);
  EXPECT_EQ(plan.lookahead, Time::zero());
}

TEST(DomainPlan, EveryNodeTaggedByPodRule) {
  // Hosts, edge and aggregation switches carry their pod's domain; core
  // switch c goes to domain c % k so the spine spreads evenly.
  FatTreeConfig cfg;
  cfg.k = 4;
  cfg.oversubscription = 2;
  Simulation sim(1);
  FatTree ft(sim, cfg);
  for (std::uint32_t p = 0; p < ft.pods(); ++p) {
    for (std::uint32_t e = 0; e < ft.edges_per_pod(); ++e) {
      EXPECT_EQ(ft.edge_switch(p, e).domain(), p);
      for (std::uint32_t h = 0; h < ft.hosts_per_edge(); ++h) {
        EXPECT_EQ(ft.host_at(p, e, h).domain(), p);
      }
    }
    for (std::uint32_t a = 0; a < ft.aggs_per_pod(); ++a) {
      EXPECT_EQ(ft.agg_switch(p, a).domain(), p);
    }
  }
  for (std::uint32_t c = 0; c < ft.core_count(); ++c) {
    EXPECT_EQ(ft.core_switch(c).domain(), c % cfg.k);
  }
}

TEST(DomainPlan, OnlyAggCoreLinksCrossDomains) {
  // On a configured simulation, exactly the agg<->core links whose core
  // lives in another pod's domain become cross-domain channels.  Core c
  // serves one agg per pod and sits in domain c % k, so per core exactly
  // one of its k links stays domain-local.
  FatTreeConfig cfg;
  cfg.k = 4;
  Simulation sim(1);
  sim.configure_domains(FatTree::domain_plan(cfg).domains);
  FatTree ft(sim, cfg);
  const std::size_t core_links = std::size_t{cfg.k} * ft.core_count();
  const std::size_t crossing = core_links - ft.core_count();
  EXPECT_EQ(ft.network().cross_domain_channel_count(), 2 * crossing);
  EXPECT_EQ(ft.network().min_cross_domain_delay(), ft.core_delay());
}

TEST(DomainPlan, UnconfiguredSimulationWiresEverythingSerial) {
  // Same topology, domains never configured: every node resolves to the
  // control scheduler and nothing registers as cross-domain.
  FatTreeConfig cfg;
  cfg.k = 4;
  Simulation sim(1);
  FatTree ft(sim, cfg);
  EXPECT_EQ(ft.network().cross_domain_channel_count(), 0u);
}

}  // namespace
}  // namespace mmptcp
