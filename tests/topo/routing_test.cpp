// End-to-end routing behaviour on the FatTree: reachability, latency
// bounds, deterministic ECMP for a fixed tuple, and spray coverage with
// randomised source ports (the mechanism packet scatter relies on).

#include <gtest/gtest.h>

#include <set>

#include "topo/fat_tree.h"
#include "util/rng.h"

namespace mmptcp {
namespace {

/// Captures packets delivered to a host token.
class CaptureEndpoint final : public Endpoint {
 public:
  void handle_packet(const Packet& pkt) override { packets.push_back(pkt); }
  std::vector<Packet> packets;
};

struct RoutedFatTree {
  explicit RoutedFatTree(std::uint32_t k = 4, std::uint32_t oversub = 1)
      : sim(1), ft(sim, [&] {
          FatTreeConfig c;
          c.k = k;
          c.oversubscription = oversub;
          return c;
        }()) {}

  /// Sends one packet from host `src` to host `dst` with the given ports;
  /// returns whether it arrived (after draining the event queue).
  bool send_and_check(std::size_t src, std::size_t dst, std::uint16_t sport,
                      std::uint16_t dport) {
    CaptureEndpoint ep;
    Host& to = ft.host(dst);
    to.register_token(4242, &ep);
    Packet p;
    p.src = ft.host(src).addr();
    p.dst = to.addr();
    p.sport = sport;
    p.dport = dport;
    p.token = 4242;
    ft.host(src).send(p);
    sim.scheduler().run();
    to.unregister_token(4242);
    return ep.packets.size() == 1;
  }

  Simulation sim;
  FatTree ft;
};

TEST(Routing, AllPairsReachableOnK4) {
  RoutedFatTree rt(4, 1);
  const std::size_t n = rt.ft.host_count();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) continue;
      ASSERT_TRUE(rt.send_and_check(s, d, 1000, 5001))
          << "no route " << s << " -> " << d;
    }
  }
}

TEST(Routing, SampledPairsReachableOnOversubscribedK8) {
  RoutedFatTree rt(8, 4);
  Rng rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    const auto s = rng.uniform(rt.ft.host_count());
    auto d = rng.uniform(rt.ft.host_count());
    if (d == s) d = (d + 1) % rt.ft.host_count();
    ASSERT_TRUE(rt.send_and_check(s, d, std::uint16_t(1000 + trial), 5001));
  }
}

TEST(Routing, LatencyMatchesHopCount) {
  RoutedFatTree rt(4, 1);
  CaptureEndpoint ep;
  // Inter-pod: host->edge->agg->core->agg->edge->host = 6 links.
  Host& dst = rt.ft.host_at(3, 1, 1);
  dst.register_token(7, &ep);
  Packet p;
  p.src = rt.ft.host_at(0, 0, 0).addr();
  p.dst = dst.addr();
  p.token = 7;
  p.payload = 0;  // 40-byte segment
  rt.ft.host_at(0, 0, 0).send(p);
  rt.sim.scheduler().run();
  ASSERT_EQ(ep.packets.size(), 1u);
  // 6 hops x (serialisation 40B@100Mb/s = 3.2us + propagation 20us).
  const Time expect = 6 * (transmission_time(40, 100'000'000) +
                           Time::micros(20));
  EXPECT_EQ(rt.sim.now(), expect);
}

TEST(Routing, FixedTupleUsesSingleCorePath) {
  RoutedFatTree rt(4, 1);
  // Send 20 identical-tuple packets inter-pod; exactly one core switch
  // must carry all of them (ECMP is deterministic per tuple).
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rt.send_and_check(0, 15, 3333, 5001));
  }
  int cores_used = 0;
  for (std::uint32_t c = 0; c < rt.ft.core_count(); ++c) {
    std::uint64_t tx = 0;
    Switch& core = rt.ft.core_switch(c);
    for (std::size_t pp = 0; pp < core.port_count(); ++pp) {
      tx += core.port(pp).counters().tx_packets;
    }
    if (tx > 0) ++cores_used;
  }
  EXPECT_EQ(cores_used, 1);
}

TEST(Routing, RandomisedSourcePortsSprayAcrossAllCores) {
  RoutedFatTree rt(4, 1);
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(rt.send_and_check(
        0, 15, static_cast<std::uint16_t>(49152 + rng.uniform(16384)),
        5001));
  }
  // All four cores must have carried traffic (spray coverage).
  for (std::uint32_t c = 0; c < rt.ft.core_count(); ++c) {
    std::uint64_t tx = 0;
    Switch& core = rt.ft.core_switch(c);
    for (std::size_t pp = 0; pp < core.port_count(); ++pp) {
      tx += core.port(pp).counters().tx_packets;
    }
    EXPECT_GT(tx, 0u) << "core " << c << " never used";
  }
}

TEST(Routing, IntraPodTrafficNeverTouchesCore) {
  RoutedFatTree rt(4, 1);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    // Hosts 0..3 are pod 0 (2 edges x 2 hosts).
    ASSERT_TRUE(rt.send_and_check(
        0, 2, static_cast<std::uint16_t>(rng.uniform(60000)), 5001));
  }
  for (std::uint32_t c = 0; c < rt.ft.core_count(); ++c) {
    Switch& core = rt.ft.core_switch(c);
    for (std::size_t pp = 0; pp < core.port_count(); ++pp) {
      EXPECT_EQ(core.port(pp).counters().tx_packets, 0u);
    }
  }
}

TEST(Routing, SameEdgeTrafficStaysLocal) {
  RoutedFatTree rt(4, 1);
  ASSERT_TRUE(rt.send_and_check(0, 1, 1000, 5001));  // same edge
  Switch& agg0 = rt.ft.agg_switch(0, 0);
  Switch& agg1 = rt.ft.agg_switch(0, 1);
  for (std::size_t pp = 0; pp < agg0.port_count(); ++pp) {
    EXPECT_EQ(agg0.port(pp).counters().tx_packets, 0u);
    EXPECT_EQ(agg1.port(pp).counters().tx_packets, 0u);
  }
}

TEST(Routing, NonHostDestinationCountsUnroutable) {
  RoutedFatTree rt(4, 1);
  Packet p;
  p.src = rt.ft.host(0).addr();
  p.dst = Addr{0x7f000001};  // not a FatTree host address
  rt.ft.host(0).send(p);
  rt.sim.scheduler().run();
  EXPECT_EQ(rt.ft.edge_switch(0, 0).unroutable(), 1u);
}

}  // namespace
}  // namespace mmptcp
