// Packet-scatter subflow: per-packet source-port randomisation, sprayed
// ACK return path, PS flagging, and the topology-aware dup-ACK threshold.

#include "core/ps_subflow.h"

#include <gtest/gtest.h>

#include <set>

#include "../test_util.h"
#include "core/mmptcp_connection.h"

namespace mmptcp {
namespace {

using testing::MiniFatTree;
using testing::PacketTap;

TransportConfig ps_cfg() {
  TransportConfig cfg;
  cfg.protocol = Protocol::kPacketScatter;  // MMPTCP that never switches
  return cfg;
}

TEST(PsSubflow, RandomisesSourcePortPerPacket) {
  MiniFatTree net;
  PacketTap tap(net.ft.host(0).port(0));
  auto& flow = net.flow(0, 15, ps_cfg(), 70 * 1024);
  net.run(Time::seconds(10));
  ASSERT_TRUE(net.record(flow).is_complete());
  std::set<std::uint16_t> sports;
  std::uint64_t data_packets = 0;
  for (const Packet& p : tap.seen()) {
    if (p.payload == 0) continue;
    ++data_packets;
    sports.insert(p.sport);
    EXPECT_TRUE(p.has(pkt_flags::kPs));
    EXPECT_GE(p.sport, 49152);
  }
  ASSERT_GE(data_packets, 50u);  // 70 KB / 1400 B
  // With ~51 packets over 16k ports, collisions are rare: expect almost
  // one distinct port per packet.
  EXPECT_GE(sports.size(), data_packets - 5);
}

TEST(PsSubflow, AcksEchoTheSprayedPorts) {
  MiniFatTree net;
  PacketTap out_tap(net.ft.host(0).port(0));
  PacketTap back_tap(net.ft.host(15).port(0));
  auto& flow = net.flow(0, 15, ps_cfg(), 20 * 1400);
  net.run(Time::seconds(10));
  ASSERT_TRUE(net.record(flow).is_complete());
  // Collect the randomised data sports and the ACK dports: ACKs must go
  // back to the randomised ports (spraying the reverse path).
  std::set<std::uint16_t> data_sports, ack_dports;
  for (const Packet& p : out_tap.seen()) {
    if (p.payload > 0) data_sports.insert(p.sport);
  }
  for (const Packet& p : back_tap.seen()) {
    if (p.payload == 0 && !p.is_syn()) ack_dports.insert(p.dport);
  }
  EXPECT_GE(ack_dports.size(), 15u);
  for (const auto port : ack_dports) {
    EXPECT_TRUE(data_sports.count(port)) << "ACK to unknown port " << port;
  }
}

TEST(PsSubflow, SpraysAcrossAllCores) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, ps_cfg(), 200 * 1024);  // inter-pod
  net.run(Time::seconds(10));
  ASSERT_TRUE(net.record(flow).is_complete());
  for (std::uint32_t c = 0; c < net.ft.core_count(); ++c) {
    std::uint64_t tx = 0;
    Switch& core = net.ft.core_switch(c);
    for (std::size_t p = 0; p < core.port_count(); ++p) {
      tx += core.port(p).counters().tx_packets;
    }
    EXPECT_GT(tx, 0u) << "core " << c << " unused by packet scatter";
  }
}

TEST(PsSubflow, TopologyAwareThresholdFromOracle) {
  MiniFatTree net;  // k=4: inter-pod path count = 4
  TransportConfig cfg = ps_cfg();
  cfg.ps_dupack.kind = DupAckPolicyKind::kTopologyAware;
  auto& inter_pod = net.flow(0, 15, cfg, 1400);
  auto& same_edge = net.flow(2, 3, cfg, 1400);
  net.run(Time::millis(1));  // just construction; no need to finish
  const auto* ps1 = inter_pod.mmptcp()->ps_subflow();
  const auto* ps2 = same_edge.mmptcp()->ps_subflow();
  ASSERT_NE(ps1, nullptr);
  ASSERT_NE(ps2, nullptr);
  EXPECT_EQ(ps1->dupack_threshold(), 4u);  // (k/2)^2
  EXPECT_EQ(ps2->dupack_threshold(), 3u);  // 1 path, floored at 3
}

TEST(PsSubflow, CompletesDespiteReordering) {
  // Inter-pod spray reorders packets across 4 unequal-length queues; the
  // raised dup-ACK threshold must prevent RTOs on a clean network.
  MiniFatTree net;
  auto& flow = net.flow(0, 15, ps_cfg(), 500 * 1024);
  net.run(Time::seconds(20));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 500u * 1024u);
  EXPECT_EQ(rec.rto_count, 0u);
}

TEST(PsSubflow, NeverLeavesPsPhase) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, ps_cfg(), 2'000'000);  // way over threshold
  net.run(Time::seconds(30));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_FALSE(rec.switched_phase());
  EXPECT_EQ(flow.mmptcp()->subflow_count(), 1u);
}

}  // namespace
}  // namespace mmptcp
