#include "core/phase_policy.h"

#include <gtest/gtest.h>

namespace mmptcp {
namespace {

TEST(PhasePolicy, DataVolumeTriggersAtThreshold) {
  PhaseSwitchConfig cfg;
  cfg.kind = SwitchPolicyKind::kDataVolume;
  cfg.volume_bytes = 100'000;
  PhaseSwitchPolicy p(cfg);
  EXPECT_FALSE(p.trigger_on_volume(0));
  EXPECT_FALSE(p.trigger_on_volume(99'999));
  EXPECT_TRUE(p.trigger_on_volume(100'000));
  EXPECT_TRUE(p.trigger_on_volume(1'000'000));
}

TEST(PhasePolicy, DataVolumeIgnoresCongestion) {
  PhaseSwitchConfig cfg;
  cfg.kind = SwitchPolicyKind::kDataVolume;
  PhaseSwitchPolicy p(cfg);
  EXPECT_FALSE(p.trigger_on_congestion(CongestionEventKind::kFastRetransmit));
  EXPECT_FALSE(p.trigger_on_congestion(CongestionEventKind::kRto));
}

TEST(PhasePolicy, CongestionEventTriggersOnLossSignals) {
  PhaseSwitchConfig cfg;
  cfg.kind = SwitchPolicyKind::kCongestionEvent;
  PhaseSwitchPolicy p(cfg);
  EXPECT_TRUE(p.trigger_on_congestion(CongestionEventKind::kFastRetransmit));
  EXPECT_TRUE(p.trigger_on_congestion(CongestionEventKind::kRto));
  // SYN timeouts are pre-data: no subflows worth opening yet.
  EXPECT_FALSE(p.trigger_on_congestion(CongestionEventKind::kSynTimeout));
  EXPECT_FALSE(p.trigger_on_volume(std::uint64_t(1) << 40));
}

TEST(PhasePolicy, NeverMeansNever) {
  PhaseSwitchConfig cfg;
  cfg.kind = SwitchPolicyKind::kNever;
  PhaseSwitchPolicy p(cfg);
  EXPECT_FALSE(p.trigger_on_volume(std::uint64_t(1) << 40));
  EXPECT_FALSE(p.trigger_on_congestion(CongestionEventKind::kRto));
}

TEST(PhasePolicy, ZeroVolumeRejected) {
  PhaseSwitchConfig cfg;
  cfg.kind = SwitchPolicyKind::kDataVolume;
  cfg.volume_bytes = 0;
  EXPECT_THROW(PhaseSwitchPolicy{cfg}, ConfigError);
}

TEST(PhasePolicy, Names) {
  EXPECT_EQ(to_string(SwitchPolicyKind::kDataVolume), "data-volume");
  EXPECT_EQ(to_string(SwitchPolicyKind::kCongestionEvent),
            "congestion-event");
  EXPECT_EQ(to_string(SwitchPolicyKind::kNever), "never");
}

}  // namespace
}  // namespace mmptcp
