// MMPTCP end-to-end behaviour: phase switching, PS drain, and byte
// conservation across the switch.

#include "core/mmptcp_connection.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace mmptcp {
namespace {

using testing::MiniFatTree;

TransportConfig mmptcp_cfg(std::uint64_t volume = 256 * 1024,
                           std::uint32_t subflows = 4) {
  TransportConfig cfg;
  cfg.protocol = Protocol::kMmptcp;
  cfg.subflows = subflows;
  cfg.phase.kind = SwitchPolicyKind::kDataVolume;
  cfg.phase.volume_bytes = volume;
  return cfg;
}

TEST(Mmptcp, ShortFlowStaysInPsPhase) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, mmptcp_cfg(), 70 * 1024);
  net.run(Time::seconds(10));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 70u * 1024u);
  EXPECT_FALSE(rec.switched_phase());
  EXPECT_FALSE(flow.mmptcp()->switched());
  EXPECT_EQ(flow.mmptcp()->subflow_count(), 1u);
  EXPECT_EQ(rec.subflows_used, 1u);
}

TEST(Mmptcp, LargeFlowSwitchesAtVolumeThreshold) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, mmptcp_cfg(100 * 1024, 4), 500 * 1024);
  net.run(Time::seconds(30));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 500u * 1024u);
  ASSERT_TRUE(rec.switched_phase());
  MmptcpConnection* conn = flow.mmptcp();
  EXPECT_TRUE(conn->switched());
  EXPECT_EQ(conn->subflow_count(), 1u + 4u);
  // The switch happened when ~100 KB had been handed to the PS flow.
  EXPECT_GE(conn->data_next(), 100u * 1024u);
}

TEST(Mmptcp, PsFlowFreezesAndDrainsAfterSwitch) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, mmptcp_cfg(100 * 1024, 2), 400 * 1024);
  net.run(Time::seconds(30));
  MmptcpConnection* conn = flow.mmptcp();
  ASSERT_TRUE(conn->switched());
  const auto* ps = conn->ps_subflow();
  ASSERT_NE(ps, nullptr);
  EXPECT_TRUE(ps->stream_frozen());
  EXPECT_TRUE(ps->sender_drained());
  EXPECT_TRUE(conn->ps_drained());
}

TEST(Mmptcp, NoNewDataOnPsAfterSwitch) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, mmptcp_cfg(100 * 1024, 2), 400 * 1024);
  net.run(Time::seconds(30));
  MmptcpConnection* conn = flow.mmptcp();
  const auto* ps = conn->ps_subflow();
  ASSERT_TRUE(conn->switched());
  // Everything the PS flow ever sent maps below (threshold + one window),
  // far below the total: the tail travelled on the MPTCP subflows.
  EXPECT_LT(ps->high_water(), 200u * 1024u);
  EXPECT_TRUE(net.record(flow).is_complete());
}

TEST(Mmptcp, SwitchTimeRecordedInMetrics) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, mmptcp_cfg(70 * 1024, 2), 300 * 1024);
  net.run(Time::seconds(30));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.switched_phase());
  EXPECT_GT(rec.phase_switch_at, rec.start);
  EXPECT_LT(rec.phase_switch_at, rec.completed_at);
}

TEST(Mmptcp, CongestionEventPolicySwitchesOnFirstLoss) {
  MiniFatTree net;
  TransportConfig cfg = mmptcp_cfg();
  cfg.phase.kind = SwitchPolicyKind::kCongestionEvent;
  cfg.tcp.rto.min_rto = Time::millis(200);
  // Drop one early data packet to force a congestion event.
  std::uint64_t data_seen = 0;
  net.ft.host(0).port(0).set_drop_filter(
      [&data_seen](const Packet& pkt, std::uint64_t) {
        return pkt.payload > 0 && data_seen++ == 5;
      });
  auto& flow = net.flow(0, 15, cfg, 2'000'000);
  net.run(Time::seconds(30));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_TRUE(rec.switched_phase());
  EXPECT_TRUE(flow.mmptcp()->switched());
}

TEST(Mmptcp, CongestionEventPolicyWithoutLossNeverSwitches) {
  MiniFatTree net;
  TransportConfig cfg = mmptcp_cfg();
  cfg.phase.kind = SwitchPolicyKind::kCongestionEvent;
  auto& flow = net.flow(0, 15, cfg, 1'000'000);
  net.run(Time::seconds(30));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_FALSE(rec.switched_phase());
  EXPECT_EQ(rec.rto_count, 0u);
}

TEST(Mmptcp, ByteConservationAcrossThePhaseSwitch) {
  // The invariant the phase switch must not break: every connection-level
  // byte is delivered exactly once even though two different subflow
  // machineries carried the stream.
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    MiniFatTree net(FatTreeConfig{}, seed);
    auto& flow = net.flow(0, 15, mmptcp_cfg(64 * 1024, 3), 333'333);
    net.run(Time::seconds(30));
    const auto& rec = net.record(flow);
    ASSERT_TRUE(rec.is_complete()) << "seed " << seed;
    ASSERT_EQ(rec.delivered_bytes, 333'333u) << "seed " << seed;
  }
}

TEST(Mmptcp, ManualSwitchNow) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, mmptcp_cfg(1 << 30, 3), 0, /*long=*/true);
  net.run(Time::millis(100));
  MmptcpConnection* conn = flow.mmptcp();
  ASSERT_FALSE(conn->switched());
  conn->switch_now();
  EXPECT_TRUE(conn->switched());
  EXPECT_EQ(conn->subflow_count(), 4u);
  net.run(Time::millis(400));
  EXPECT_GT(net.record(flow).subflows_used, 1u);
  conn->switch_now();  // idempotent
  EXPECT_EQ(conn->subflow_count(), 4u);
}

TEST(Mmptcp, LongFlowThroughputSurvivesTheSwitch) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, mmptcp_cfg(256 * 1024, 4), 0, /*long=*/true);
  net.run(Time::seconds(3));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.switched_phase());
  // ~100 Mb/s access link for ~3 s: expect most of the capacity used.
  EXPECT_GT(rec.delivered_bytes, 20'000'000u);
}

}  // namespace
}  // namespace mmptcp
