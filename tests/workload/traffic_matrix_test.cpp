#include "workload/traffic_matrix.h"

#include <gtest/gtest.h>

#include <set>

namespace mmptcp {
namespace {

class PermutationSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PermutationSize, ValidPermutationWithNoFixedPoints) {
  Rng rng(GetParam() * 31 + 7);
  const auto pi = permutation_matrix(rng, GetParam());
  EXPECT_TRUE(is_valid_permutation(pi));
  for (std::size_t i = 0; i < pi.size(); ++i) EXPECT_NE(pi[i], i);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSize,
                         ::testing::Values(2, 3, 4, 5, 16, 17, 64, 513));

TEST(TrafficMatrix, DeterministicForSeed) {
  Rng a(5), b(5);
  EXPECT_EQ(permutation_matrix(a, 100), permutation_matrix(b, 100));
}

TEST(TrafficMatrix, DifferentSeedsDiffer) {
  Rng a(5), b(6);
  EXPECT_NE(permutation_matrix(a, 100), permutation_matrix(b, 100));
}

TEST(TrafficMatrix, RejectsTinyPopulations) {
  Rng rng(1);
  EXPECT_THROW(permutation_matrix(rng, 0), ConfigError);
  EXPECT_THROW(permutation_matrix(rng, 1), ConfigError);
}

TEST(TrafficMatrix, ValidatorCatchesBadInputs) {
  EXPECT_FALSE(is_valid_permutation({0, 1}));     // fixed points
  EXPECT_FALSE(is_valid_permutation({1, 1}));     // not a bijection
  EXPECT_FALSE(is_valid_permutation({2, 0}));     // out of range
  EXPECT_TRUE(is_valid_permutation({1, 0}));
}

TEST(TrafficMatrix, SampleWithoutReplacementUniqueAndInRange) {
  Rng rng(9);
  const auto sample = sample_without_replacement(rng, 100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(TrafficMatrix, SampleAllAndNone) {
  Rng rng(9);
  EXPECT_EQ(sample_without_replacement(rng, 5, 5).size(), 5u);
  EXPECT_TRUE(sample_without_replacement(rng, 5, 0).empty());
  EXPECT_THROW(sample_without_replacement(rng, 5, 6), ConfigError);
}

TEST(TrafficMatrix, SamplingIsUnbiased) {
  // Each index should be picked roughly count/n of the time.
  std::vector<int> hits(20, 0);
  for (std::uint64_t seed = 0; seed < 2000; ++seed) {
    Rng rng(seed);
    for (auto v : sample_without_replacement(rng, 20, 5)) ++hits[v];
  }
  for (int h : hits) EXPECT_NEAR(h, 500, 120);
}

}  // namespace
}  // namespace mmptcp
