// Domain-parallel Scenario execution: per-pod decomposition is always on
// for FatTree runs, sim_threads only picks the worker count, and the
// results are byte-identical at any value.

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace mmptcp {
namespace {

ScenarioConfig small(unsigned sim_threads) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.fat_tree.oversubscription = 2;
  cfg.transport.protocol = Protocol::kMmptcp;
  cfg.transport.subflows = 4;
  cfg.short_flow_count = 60;
  cfg.short_rate_per_host = 8.0;
  cfg.max_sim_time = Time::seconds(30);
  cfg.seed = 11;
  cfg.sim_threads = sim_threads;
  return cfg;
}

struct Digest {
  double fct_mean, fct_p99, fct_sd, goodput;
  double completion;
  std::uint64_t rtos, with_rto, spurious, events, flows;
  Time end;

  bool operator==(const Digest&) const = default;
};

Digest run_digest(unsigned sim_threads) {
  Scenario sc(small(sim_threads));
  sc.run();
  const Summary fct = sc.short_fct_ms();
  return Digest{fct.mean(),
                fct.percentile(99),
                fct.stddev(),
                sc.long_goodput_mbps().mean(),
                sc.short_completion_ratio(),
                sc.short_flow_rtos(),
                sc.short_flows_with_rto(),
                sc.total_spurious_retransmits(),
                sc.sim().total_executed(),
                sc.metrics().flow_count(),
                sc.end_time()};
}

TEST(ScenarioParallel, FatTreeRunsDecomposePerPod) {
  Scenario sc(small(1));
  sc.run();
  EXPECT_EQ(sc.domain_count(), 4u);
  EXPECT_EQ(sc.lookahead(), small(1).fat_tree.link_delay);
  EXPECT_EQ(sc.short_completion_ratio(), 1.0);
}

TEST(ScenarioParallel, ResultsAreIdenticalAtAnyThreadCount) {
  // Exact (bitwise) equality, not tolerance: decomposition and flush
  // order are fixed by the topology, workers only move windows between
  // cores.  This is the in-process half of the determinism grid; the
  // CTest-level half byte-compares the experiment CLI's main JSON.
  const Digest one = run_digest(1);
  EXPECT_EQ(run_digest(2), one);
  EXPECT_EQ(run_digest(4), one);
}

TEST(ScenarioParallel, NoDecompositionFallsBackToSerialWithNote) {
  // Zero link delay means zero cross-domain lookahead: the plan is
  // serial, the (loud) stderr note fires, and the run still completes.
  ScenarioConfig cfg = small(4);
  cfg.fat_tree.link_delay = Time::zero();
  Scenario sc(cfg);
  sc.run();
  EXPECT_EQ(sc.domain_count(), 1u);
  EXPECT_EQ(sc.lookahead(), Time::zero());
  EXPECT_EQ(sc.short_completion_ratio(), 1.0);
}

TEST(ScenarioParallel, DualHomedTopologyStaysSerial) {
  ScenarioConfig cfg = small(4);
  cfg.dual_homed = true;
  cfg.dual.k = 4;
  cfg.dual.oversubscription = 2;
  Scenario sc(cfg);
  sc.run();
  EXPECT_EQ(sc.domain_count(), 1u);
}

TEST(ScenarioParallel, FourThreadsBeatOneOnWideWindows) {
  // Wall-clock speedup needs real cores; the determinism tests above
  // cover correctness on any machine.
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  auto wall = [](unsigned sim_threads) {
    ScenarioConfig cfg = small(sim_threads);
    cfg.fat_tree.k = 8;
    cfg.fat_tree.core_link_delay = Time::micros(100);  // wide windows
    cfg.short_flow_count = 2000;
    const auto t0 = std::chrono::steady_clock::now();
    Scenario sc(cfg);
    sc.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const double serial = wall(1);
  const double parallel = wall(4);
  EXPECT_LT(parallel, serial);  // directional: threads must not hurt
}

}  // namespace
}  // namespace mmptcp
