// Domain-parallel Scenario execution: decomposition is always on for
// FatTree runs, sim_threads only picks the worker count and
// fat_tree.domain_granularity only picks the domain layout — the
// results are byte-identical at any combination of the two.

#include <algorithm>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace mmptcp {
namespace {

ScenarioConfig small(unsigned sim_threads,
                     DomainGranularity granularity = DomainGranularity::kPod) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.fat_tree.oversubscription = 2;
  cfg.fat_tree.domain_granularity = granularity;
  cfg.transport.protocol = Protocol::kMmptcp;
  cfg.transport.subflows = 4;
  cfg.short_flow_count = 60;
  cfg.short_rate_per_host = 8.0;
  cfg.max_sim_time = Time::seconds(30);
  cfg.seed = 11;
  cfg.sim_threads = sim_threads;
  return cfg;
}

struct Digest {
  double fct_mean, fct_p99, fct_sd, goodput;
  double completion;
  std::uint64_t rtos, with_rto, spurious, events, flows;
  Time end;

  bool operator==(const Digest&) const = default;
};

Digest digest_of(Scenario& sc) {
  const Summary fct = sc.short_fct_ms();
  return Digest{fct.mean(),
                fct.percentile(99),
                fct.stddev(),
                sc.long_goodput_mbps().mean(),
                sc.short_completion_ratio(),
                sc.short_flow_rtos(),
                sc.short_flows_with_rto(),
                sc.total_spurious_retransmits(),
                sc.sim().total_executed(),
                sc.metrics().flow_count(),
                sc.end_time()};
}

Digest run_digest(unsigned sim_threads,
                  DomainGranularity granularity = DomainGranularity::kPod) {
  Scenario sc(small(sim_threads, granularity));
  sc.run();
  return digest_of(sc);
}

TEST(ScenarioParallel, FatTreeRunsDecomposePerPod) {
  Scenario sc(small(1));
  sc.run();
  EXPECT_EQ(sc.domain_count(), 4u);
  EXPECT_EQ(sc.host_group_count(), 8u);
  EXPECT_EQ(sc.lookahead(), small(1).fat_tree.link_delay);
  EXPECT_EQ(sc.short_completion_ratio(), 1.0);
}

TEST(ScenarioParallel, EdgeGranularityDecomposesPerEdgeSwitch) {
  Scenario sc(small(1, DomainGranularity::kEdge));
  sc.run();
  EXPECT_EQ(sc.domain_count(), 12u);  // 8 host groups + 4 fabric domains
  EXPECT_EQ(sc.host_group_count(), 8u);
  // Same lookahead as per-pod: crossing is canonical, so the window
  // schedule does not depend on the granularity.
  EXPECT_EQ(sc.lookahead(), small(1).fat_tree.link_delay);
  EXPECT_EQ(sc.short_completion_ratio(), 1.0);
}

TEST(ScenarioParallel, ResultsAreIdenticalAtAnyThreadCount) {
  // Exact (bitwise) equality, not tolerance: decomposition and flush
  // order are fixed by the topology, workers only move windows between
  // cores.  This is the in-process half of the determinism grid; the
  // CTest-level half byte-compares the experiment CLI's main JSON.
  const Digest one = run_digest(1);
  EXPECT_EQ(run_digest(2), one);
  EXPECT_EQ(run_digest(4), one);
}

TEST(ScenarioParallel, ResultsAreIdenticalAcrossGranularities) {
  // The other axis of the determinism grid: per-edge decomposition (more,
  // thinner domains, different schedulers executing the same canonical
  // units) against the per-pod digest, at several worker counts.
  const Digest pod = run_digest(1);
  EXPECT_EQ(run_digest(1, DomainGranularity::kEdge), pod);
  EXPECT_EQ(run_digest(2, DomainGranularity::kEdge), pod);
  EXPECT_EQ(run_digest(4, DomainGranularity::kEdge), pod);
}

TEST(ScenarioParallel, SkewedHotspotBytesUnmovedBySchedulerOptimisations) {
  // Maximal skew for the scheduler optimisations: most shorts target one
  // rack, so at edge granularity the hot rack's domain dwarfs the rest
  // (cost-ordered claiming starts it first) and many racks go quiet for
  // whole windows (quiet-domain skip drops them).  Both are pure
  // scheduling: every digest byte must match the serial per-pod run.
  auto skewed = [](unsigned threads, DomainGranularity g) {
    ScenarioConfig cfg = small(threads, g);
    cfg.hotspot_fraction = 0.9;
    Scenario sc(cfg);
    sc.run();
    return digest_of(sc);
  };
  const Digest base = skewed(1, DomainGranularity::kPod);
  EXPECT_EQ(skewed(4, DomainGranularity::kPod), base);
  EXPECT_EQ(skewed(1, DomainGranularity::kEdge), base);
  EXPECT_EQ(skewed(4, DomainGranularity::kEdge), base);
}

TEST(ScenarioParallel, EngineTelemetryAccountsForEveryDomain) {
  ScenarioConfig cfg = small(2, DomainGranularity::kEdge);
  cfg.hotspot_fraction = 0.9;
  Scenario sc(cfg);
  sc.run();
  const EngineStats& es = sc.engine_stats();
  EXPECT_GT(es.windows, 0u);
  EXPECT_GT(es.wall_ns, 0u);
  // Skewed traffic at edge granularity must leave quiet racks unclaimed,
  // and claimed + skipped must cover every domain of every window.
  EXPECT_GT(es.domains_skipped, 0u);
  EXPECT_EQ(es.domains_claimed + es.domains_skipped,
            es.windows * sc.domain_count());
}

TEST(ScenarioParallel, AutoThreadsResolveToHardwareClampedToDomains) {
  // sim_threads == 0 means auto: all hardware threads, clamped (loudly)
  // to the domain count — a k=4 per-pod run can use at most 4 workers.
  Scenario sc(small(0));
  sc.run();
  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(sc.workers_used(), std::min(hc, 4u));
  EXPECT_EQ(sc.short_completion_ratio(), 1.0);
}

TEST(ScenarioParallel, NoDecompositionFallsBackToSerialWithNote) {
  // Zero link delay means zero cross-domain lookahead: the plan is
  // serial, the (loud) stderr note fires, and the run still completes.
  ScenarioConfig cfg = small(4);
  cfg.fat_tree.link_delay = Time::zero();
  Scenario sc(cfg);
  sc.run();
  EXPECT_EQ(sc.domain_count(), 1u);
  EXPECT_EQ(sc.lookahead(), Time::zero());
  EXPECT_EQ(sc.short_completion_ratio(), 1.0);
}

TEST(ScenarioParallel, DualHomedTopologyStaysSerial) {
  ScenarioConfig cfg = small(4);
  cfg.dual_homed = true;
  cfg.dual.k = 4;
  cfg.dual.oversubscription = 2;
  Scenario sc(cfg);
  sc.run();
  EXPECT_EQ(sc.domain_count(), 1u);
}

TEST(ScenarioParallel, FourThreadsBeatOneOnWideWindows) {
  // Wall-clock speedup needs real cores; the determinism tests above
  // cover correctness on any machine.
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  auto wall = [](unsigned sim_threads) {
    ScenarioConfig cfg = small(sim_threads);
    cfg.fat_tree.k = 8;
    cfg.short_flow_count = 2000;
    const auto t0 = std::chrono::steady_clock::now();
    Scenario sc(cfg);
    sc.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const double serial = wall(1);
  const double parallel = wall(4);
  EXPECT_LT(parallel, serial);  // directional: threads must not hurt
}

TEST(ScenarioParallel, EdgeGranularityKeepsPaceAtEightWorkers) {
  // Hardware-gated half of the granularity story: with 8+ real cores on
  // a k=8 run, per-pod granularity caps at 8 fat domains while per-edge
  // offers 40 thin ones — busiest-first claiming and quiet-rack skipping
  // must make the finer layout at least competitive (small slack absorbs
  // wall-clock noise), and the skip telemetry must actually engage.
  if (std::thread::hardware_concurrency() < 8) {
    GTEST_SKIP() << "needs >= 8 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  auto wall = [](DomainGranularity g, EngineStats* stats) {
    ScenarioConfig cfg = small(8, g);
    cfg.fat_tree.k = 8;
    cfg.short_flow_count = 2000;
    const auto t0 = std::chrono::steady_clock::now();
    Scenario sc(cfg);
    sc.run();
    if (stats != nullptr) *stats = sc.engine_stats();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const double pod = wall(DomainGranularity::kPod, nullptr);
  EngineStats es;
  const double edge = wall(DomainGranularity::kEdge, &es);
  EXPECT_GT(es.domains_skipped, 0u);
  EXPECT_LT(edge, pod * 1.15);
}

}  // namespace
}  // namespace mmptcp
