#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <set>

namespace mmptcp {
namespace {

ScenarioConfig small_scenario(Protocol proto, std::uint32_t shorts = 60) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.fat_tree.oversubscription = 2;
  cfg.transport.protocol = proto;
  cfg.transport.subflows = 4;
  cfg.short_flow_count = shorts;
  cfg.short_rate_per_host = 20.0;
  cfg.max_sim_time = Time::seconds(30);
  cfg.seed = 11;
  return cfg;
}

TEST(Scenario, RolePartitionIsExactAndDisjoint) {
  Scenario sc(small_scenario(Protocol::kTcp));
  EXPECT_EQ(sc.host_count(), 32u);
  EXPECT_EQ(sc.long_hosts().size(), 32u / 3);
  std::set<std::size_t> longs(sc.long_hosts().begin(),
                              sc.long_hosts().end());
  EXPECT_EQ(longs.size(), sc.long_hosts().size());
  EXPECT_TRUE(is_valid_permutation(sc.permutation()));
}

TEST(Scenario, AllShortFlowsComplete) {
  Scenario sc(small_scenario(Protocol::kTcp));
  sc.run();
  EXPECT_EQ(sc.shorts_started(), 60u);
  EXPECT_DOUBLE_EQ(sc.short_completion_ratio(), 1.0);
  EXPECT_EQ(sc.short_fct_ms().count(), 60u);
  // Stopped early once the shorts finished, not at the horizon.
  EXPECT_LT(sc.end_time(), Time::seconds(30));
}

TEST(Scenario, LongFlowsKeepRunningAndMoveBytes) {
  Scenario sc(small_scenario(Protocol::kTcp));
  sc.run();
  const Summary g = sc.long_goodput_mbps();
  EXPECT_EQ(g.count(), sc.long_hosts().size());
  EXPECT_GT(g.mean(), 1.0);  // they got some real bandwidth
}

TEST(Scenario, UtilizationWithinPhysicalBounds) {
  Scenario sc(small_scenario(Protocol::kTcp));
  sc.run();
  EXPECT_GT(sc.network_utilization(), 0.0);
  EXPECT_LE(sc.network_utilization(), 1.0);
}

TEST(Scenario, LayerStatsCoverAllThreeLayers) {
  Scenario sc(small_scenario(Protocol::kMmptcp));
  sc.run();
  const auto stats = sc.layer_stats();
  ASSERT_TRUE(stats.count(LinkLayer::kHostEdge));
  ASSERT_TRUE(stats.count(LinkLayer::kEdgeAgg));
  ASSERT_TRUE(stats.count(LinkLayer::kAggCore));
  EXPECT_GT(stats.at(LinkLayer::kAggCore).tx_packets, 0u);
}

TEST(Scenario, EveryShortFlowDeliversItsRequest) {
  Scenario sc(small_scenario(Protocol::kMmptcp));
  sc.run();
  for (const auto* rec : sc.metrics().flows(
           [](const FlowRecord& r) { return !r.long_flow; })) {
    EXPECT_TRUE(rec->is_complete());
    EXPECT_EQ(rec->delivered_bytes, rec->request_bytes);
  }
}

TEST(Scenario, HotspotRedirectsDestinations) {
  ScenarioConfig cfg = small_scenario(Protocol::kTcp, 40);
  cfg.hotspot_fraction = 1.0;  // every short flow goes to rack (0,0)
  cfg.start_long_flows = false;
  Scenario sc(cfg);
  sc.run();
  const std::size_t rack = 8;  // k=4, oversub=2 -> 4 hosts/edge... see below
  for (const auto* rec : sc.metrics().flows(
           [](const FlowRecord& r) { return !r.long_flow; })) {
    EXPECT_LT(FatTreeAddr::pod(rec->dst), 1u);    // pod 0
    EXPECT_EQ(FatTreeAddr::edge(rec->dst), 0u);   // edge 0
  }
  (void)rack;
}

TEST(Scenario, SizeDistributionOverridesFixedBytes) {
  ScenarioConfig cfg = small_scenario(Protocol::kTcp, 30);
  cfg.short_sizes = std::make_shared<UniformSize>(1000, 2000);
  Scenario sc(cfg);
  sc.run();
  for (const auto* rec : sc.metrics().flows(
           [](const FlowRecord& r) { return !r.long_flow; })) {
    EXPECT_GE(rec->request_bytes, 1000u);
    EXPECT_LE(rec->request_bytes, 2000u);
  }
}

TEST(Scenario, DualHomedTopologyRuns) {
  ScenarioConfig cfg = small_scenario(Protocol::kMmptcp, 30);
  cfg.dual_homed = true;
  cfg.dual.k = 4;
  cfg.dual.oversubscription = 2;
  Scenario sc(cfg);
  sc.run();
  EXPECT_DOUBLE_EQ(sc.short_completion_ratio(), 1.0);
}

TEST(Scenario, NoLongFlowsOptionLeavesOnlyShorts) {
  ScenarioConfig cfg = small_scenario(Protocol::kTcp, 30);
  cfg.start_long_flows = false;
  Scenario sc(cfg);
  sc.run();
  EXPECT_EQ(sc.metrics().flows([](const FlowRecord& r) {
    return r.long_flow;
  }).size(),
            0u);
  EXPECT_DOUBLE_EQ(sc.short_completion_ratio(), 1.0);
}

TEST(Scenario, MaxSimTimeBoundsTheRun) {
  ScenarioConfig cfg = small_scenario(Protocol::kTcp, 100000);  // unreachable
  cfg.max_sim_time = Time::millis(200);
  Scenario sc(cfg);
  sc.run();
  EXPECT_EQ(sc.end_time(), Time::millis(200));
  EXPECT_LT(sc.shorts_started(), 100000u);
}

}  // namespace
}  // namespace mmptcp
