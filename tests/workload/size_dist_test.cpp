#include "workload/size_dist.h"

#include <gtest/gtest.h>

namespace mmptcp {
namespace {

TEST(SizeDist, FixedAlwaysSame) {
  FixedSize d(70 * 1024);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 70u * 1024u);
  EXPECT_DOUBLE_EQ(d.mean_bytes(), 70.0 * 1024);
  EXPECT_THROW(FixedSize(0), ConfigError);
}

TEST(SizeDist, UniformStaysInBoundsAndMeanMatches) {
  UniformSize d(100, 200);
  Rng rng(2);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = d.sample(rng);
    ASSERT_GE(v, 100u);
    ASSERT_LE(v, 200u);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, d.mean_bytes(), 1.0);
  EXPECT_DOUBLE_EQ(d.mean_bytes(), 150.0);
  EXPECT_THROW(UniformSize(10, 5), ConfigError);
}

TEST(SizeDist, BoundedParetoStaysInBounds) {
  BoundedParetoSize d(1.2, 1000, 1'000'000);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const auto v = d.sample(rng);
    ASSERT_GE(v, 999u);  // floating point rounding at the boundary
    ASSERT_LE(v, 1'000'001u);
  }
}

TEST(SizeDist, BoundedParetoIsHeavyTailed) {
  BoundedParetoSize d(1.2, 1000, 1'000'000);
  Rng rng(4);
  int small = 0, large = 0;
  for (int i = 0; i < 100000; ++i) {
    const auto v = d.sample(rng);
    if (v < 3000) ++small;
    if (v > 100'000) ++large;
  }
  EXPECT_GT(small, 50000);  // most flows tiny
  EXPECT_GT(large, 200);    // but a real tail exists (P ~ 0.4%)
}

TEST(SizeDist, BoundedParetoEmpiricalMeanMatchesFormula) {
  BoundedParetoSize d(1.5, 1000, 500'000);
  Rng rng(5);
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
  EXPECT_NEAR(sum / n, d.mean_bytes(), d.mean_bytes() * 0.03);
}

TEST(SizeDist, EmpiricalInterpolatesBetweenKnots) {
  EmpiricalSize d({{0.0, 100}, {1.0, 200}});
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const auto v = d.sample(rng);
    ASSERT_GE(v, 100u);
    ASSERT_LE(v, 200u);
  }
  EXPECT_DOUBLE_EQ(d.mean_bytes(), 150.0);
}

TEST(SizeDist, EmpiricalValidation) {
  using K = EmpiricalSize::Knot;
  EXPECT_THROW(EmpiricalSize({K{0.0, 1}}), ConfigError);  // too few knots
  EXPECT_THROW(EmpiricalSize({K{0.1, 1}, K{1.0, 2}}), ConfigError);
  EXPECT_THROW(EmpiricalSize({K{0.0, 1}, K{0.9, 2}}), ConfigError);
  EXPECT_THROW(EmpiricalSize({K{0.0, 1}, K{0.0, 2}, K{1.0, 3}}),
               ConfigError);
  EXPECT_THROW(EmpiricalSize({K{0.0, 5}, K{0.5, 2}, K{1.0, 9}}),
               ConfigError);  // bytes decrease
}

TEST(SizeDist, WebSearchPresetShape) {
  const EmpiricalSize d = EmpiricalSize::web_search();
  Rng rng(7);
  int tiny = 0, huge = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = d.sample(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 30u * 1024 * 1024);
    if (v <= 10 * 1024) ++tiny;
    if (v >= 1024 * 1024) ++huge;
  }
  EXPECT_GT(tiny, n / 3);       // ~half of flows are small
  EXPECT_GT(huge, n / 100);     // a long tail of multi-MB flows
  EXPECT_GT(d.mean_bytes(), 100.0 * 1024);
}

}  // namespace
}  // namespace mmptcp
