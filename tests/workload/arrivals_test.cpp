#include "workload/arrivals.h"

#include <gtest/gtest.h>
#include <cmath>

namespace mmptcp {
namespace {

TEST(PoissonArrivals, GapsArePositive) {
  PoissonArrivals p(Rng(1), 100.0);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(p.next_gap(), Time::zero());
}

TEST(PoissonArrivals, MeanGapMatchesRate) {
  PoissonArrivals p(Rng(2), 50.0);  // mean gap 20 ms
  double total = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += p.next_gap().to_seconds();
  EXPECT_NEAR(total / n, 0.02, 0.001);
}

TEST(PoissonArrivals, CoefficientOfVariationNearOne) {
  // Exponential gaps have CV = 1 (distinguishes from uniform/fixed).
  PoissonArrivals p(Rng(3), 10.0);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = p.next_gap().to_seconds();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);
}

TEST(PoissonArrivals, DeterministicPerSeed) {
  PoissonArrivals a(Rng(7), 5.0), b(Rng(7), 5.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_gap(), b.next_gap());
}

TEST(PoissonArrivals, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonArrivals(Rng(1), 0.0), ConfigError);
  EXPECT_THROW(PoissonArrivals(Rng(1), -2.0), ConfigError);
}

}  // namespace
}  // namespace mmptcp
