#include "util/table.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mmptcp {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"proto", "fct"});
  t.add_row({"TCP", "12.5"});
  t.add_row({"MMPTCP", "9.1"});
  const auto out = t.to_string();
  EXPECT_NE(out.find("proto"), std::string::npos);
  EXPECT_NE(out.find("MMPTCP"), std::string::npos);
  // Every line in a column-aligned table starts its second column at the
  // same offset; check via the header underline length.
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), ConfigError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(std::int64_t(-5)), "-5");
  EXPECT_EQ(Table::num(std::uint64_t(7)), "7");
  EXPECT_EQ(Table::pct(0.034251, 2), "3.43%");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace mmptcp
