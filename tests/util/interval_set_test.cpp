#include "util/interval_set.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace mmptcp {
namespace {

TEST(IntervalSet, StartsEmpty) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.covered(), 0u);
  EXPECT_EQ(s.interval_count(), 0u);
  EXPECT_EQ(s.first_missing_after(0), 0u);
}

TEST(IntervalSet, SingleInsert) {
  IntervalSet s;
  EXPECT_EQ(s.insert(10, 20), 10u);
  EXPECT_EQ(s.covered(), 10u);
  EXPECT_TRUE(s.contains(10, 20));
  EXPECT_TRUE(s.contains(12, 15));
  EXPECT_FALSE(s.contains(9, 11));
  EXPECT_FALSE(s.contains(19, 21));
}

TEST(IntervalSet, EmptyRangeInsertIsNoop) {
  IntervalSet s;
  EXPECT_EQ(s.insert(5, 5), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.contains(5, 5));  // empty range is vacuously contained
}

TEST(IntervalSet, DisjointInsertsStaySeparate) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_EQ(s.covered(), 20u);
  EXPECT_FALSE(s.contains(0, 30));
  EXPECT_TRUE(s.intersects(5, 25));
  EXPECT_FALSE(s.intersects(10, 20));
}

TEST(IntervalSet, AdjacentInsertsCoalesce) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(10, 20);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.contains(0, 20));
}

TEST(IntervalSet, OverlappingInsertCountsOnlyNewUnits) {
  IntervalSet s;
  EXPECT_EQ(s.insert(0, 10), 10u);
  EXPECT_EQ(s.insert(5, 15), 5u);
  EXPECT_EQ(s.covered(), 15u);
  EXPECT_EQ(s.interval_count(), 1u);
}

TEST(IntervalSet, InsertBridgingManyIntervals) {
  IntervalSet s;
  s.insert(0, 2);
  s.insert(4, 6);
  s.insert(8, 10);
  EXPECT_EQ(s.insert(1, 9), 4u);  // fills [2,4) and [6,8)
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.contains(0, 10));
}

TEST(IntervalSet, FullyContainedInsertAddsNothing) {
  IntervalSet s;
  s.insert(0, 100);
  EXPECT_EQ(s.insert(10, 90), 0u);
  EXPECT_EQ(s.covered(), 100u);
}

TEST(IntervalSet, FirstMissingAfter) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  EXPECT_EQ(s.first_missing_after(0), 10u);
  EXPECT_EQ(s.first_missing_after(5), 10u);
  EXPECT_EQ(s.first_missing_after(10), 10u);
  EXPECT_EQ(s.first_missing_after(15), 15u);
  EXPECT_EQ(s.first_missing_after(20), 30u);
  EXPECT_EQ(s.first_missing_after(29), 30u);
  EXPECT_EQ(s.first_missing_after(30), 30u);
  EXPECT_EQ(s.first_missing_after(100), 100u);
}

TEST(IntervalSet, EraseMiddleSplits) {
  IntervalSet s;
  s.insert(0, 30);
  EXPECT_EQ(s.erase(10, 20), 10u);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_TRUE(s.contains(0, 10));
  EXPECT_TRUE(s.contains(20, 30));
  EXPECT_FALSE(s.intersects(10, 20));
  EXPECT_EQ(s.covered(), 20u);
}

TEST(IntervalSet, EraseAcrossSeveralIntervals) {
  IntervalSet s;
  s.insert(0, 5);
  s.insert(10, 15);
  s.insert(20, 25);
  EXPECT_EQ(s.erase(3, 22), 2u + 5u + 2u);
  EXPECT_TRUE(s.contains(0, 3));
  EXPECT_TRUE(s.contains(22, 25));
  EXPECT_EQ(s.covered(), 6u);
}

TEST(IntervalSet, EraseNothing) {
  IntervalSet s;
  s.insert(0, 10);
  EXPECT_EQ(s.erase(20, 30), 0u);
  EXPECT_EQ(s.erase(5, 5), 0u);
  EXPECT_EQ(s.covered(), 10u);
}

TEST(IntervalSet, ClearResets) {
  IntervalSet s;
  s.insert(0, 10);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.covered(), 0u);
}

TEST(IntervalSet, ToStringRendering) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 25);
  EXPECT_EQ(s.to_string(), "[0,10) [20,25)");
}

TEST(IntervalSet, InvalidRangesThrow) {
  IntervalSet s;
  EXPECT_THROW(s.insert(10, 5), InvariantError);
  EXPECT_THROW(s.contains(10, 5), InvariantError);
  EXPECT_THROW(s.erase(10, 5), InvariantError);
}

TEST(IntervalSet, LargeValuesNearUint64Max) {
  IntervalSet s;
  const std::uint64_t big = std::uint64_t(-1) - 100;
  s.insert(big, big + 50);
  EXPECT_TRUE(s.contains(big, big + 50));
  EXPECT_EQ(s.first_missing_after(big), big + 50);
}

// Property test: random inserts/erases agree with a unit-by-unit model.
class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, MatchesReferenceModel) {
  Rng rng(GetParam());
  IntervalSet s;
  std::set<std::uint64_t> model;
  constexpr std::uint64_t kSpace = 200;
  for (int step = 0; step < 400; ++step) {
    const std::uint64_t lo = rng.uniform(kSpace);
    const std::uint64_t hi = lo + rng.uniform(30);
    if (rng.bernoulli(0.7)) {
      const std::uint64_t added = s.insert(lo, hi);
      std::uint64_t model_added = 0;
      for (std::uint64_t u = lo; u < hi; ++u) {
        if (model.insert(u).second) ++model_added;
      }
      ASSERT_EQ(added, model_added) << "step " << step;
    } else {
      const std::uint64_t removed = s.erase(lo, hi);
      std::uint64_t model_removed = 0;
      for (std::uint64_t u = lo; u < hi; ++u) model_removed += model.erase(u);
      ASSERT_EQ(removed, model_removed) << "step " << step;
    }
    ASSERT_EQ(s.covered(), model.size());
    // Spot-check membership and first_missing_after.
    const std::uint64_t probe = rng.uniform(kSpace);
    ASSERT_EQ(s.contains(probe, probe + 1), model.count(probe) == 1);
    std::uint64_t expect_missing = probe;
    while (model.count(expect_missing) == 1) ++expect_missing;
    ASSERT_EQ(s.first_missing_after(probe), expect_missing);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mmptcp
