#include "util/summary.h"

#include <gtest/gtest.h>
#include <cmath>

#include "util/check.h"

namespace mmptcp {
namespace {

TEST(Summary, MeanAndStdDevExact) {
  Summary s;
  s.add_all({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev with n-1 = sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptySummaryBehaviour) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_THROW(s.min(), InvariantError);
  EXPECT_THROW(s.max(), InvariantError);
  EXPECT_THROW(s.percentile(50), InvariantError);
  EXPECT_EQ(s.to_string(), "n=0");
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.5);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  s.add_all({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(s.percentile(0), 10);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25);   // midway between 20 and 30
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5); // 0.75 of the way 10 -> 20
}

TEST(Summary, PercentileBoundsChecked) {
  Summary s;
  s.add(1);
  EXPECT_THROW(s.percentile(-1), InvariantError);
  EXPECT_THROW(s.percentile(101), InvariantError);
}

TEST(Summary, MinMax) {
  Summary s;
  s.add_all({5, -1, 7, 3});
  EXPECT_DOUBLE_EQ(s.min(), -1);
  EXPECT_DOUBLE_EQ(s.max(), 7);
}

TEST(Summary, CountAbove) {
  Summary s;
  s.add_all({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count_above(3), 2u);    // strictly greater
  EXPECT_EQ(s.count_above(0), 5u);
  EXPECT_EQ(s.count_above(5), 0u);
}

TEST(Summary, HistogramBinsAndClamping) {
  Summary s;
  s.add_all({-5, 0, 1, 5, 9, 15});
  const auto h = s.histogram(0, 10, 2);  // bins [0,5) and [5,10)
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // -5 clamped, 0, 1
  EXPECT_EQ(h[1], 3u);  // 5, 9, 15 clamped
}

TEST(Summary, HistogramValidation) {
  Summary s;
  EXPECT_THROW(s.histogram(0, 10, 0), InvariantError);
  EXPECT_THROW(s.histogram(10, 10, 2), InvariantError);
}

TEST(Summary, AddAfterQueryKeepsCorrectOrder) {
  Summary s;
  s.add_all({3, 1});
  EXPECT_DOUBLE_EQ(s.percentile(100), 3);
  s.add(10);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(100), 10);
  EXPECT_DOUBLE_EQ(s.min(), 1);
}

TEST(Summary, WelfordMatchesNaiveOnManySamples) {
  Summary s;
  double sum = 0, sq = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double v = std::sin(i) * 100 + i * 0.01;
    s.add(v);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = (sq - n * mean * mean) / (n - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-6);
}

}  // namespace
}  // namespace mmptcp
