#include "util/summary.h"

#include <gtest/gtest.h>
#include <cmath>

#include "util/check.h"

namespace mmptcp {
namespace {

TEST(Summary, MeanAndStdDevExact) {
  Summary s;
  s.add_all({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev with n-1 = sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptySummaryBehaviour) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_THROW(s.min(), InvariantError);
  EXPECT_THROW(s.max(), InvariantError);
  EXPECT_THROW(s.percentile(50), InvariantError);
  EXPECT_EQ(s.to_string(), "n=0");
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.5);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  s.add_all({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(s.percentile(0), 10);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25);   // midway between 20 and 30
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5); // 0.75 of the way 10 -> 20
}

TEST(Summary, PercentileBoundsChecked) {
  Summary s;
  s.add(1);
  EXPECT_THROW(s.percentile(-1), InvariantError);
  EXPECT_THROW(s.percentile(101), InvariantError);
}

TEST(Summary, MinMax) {
  Summary s;
  s.add_all({5, -1, 7, 3});
  EXPECT_DOUBLE_EQ(s.min(), -1);
  EXPECT_DOUBLE_EQ(s.max(), 7);
}

TEST(Summary, CountAbove) {
  Summary s;
  s.add_all({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count_above(3), 2u);    // strictly greater
  EXPECT_EQ(s.count_above(0), 5u);
  EXPECT_EQ(s.count_above(5), 0u);
}

TEST(Summary, HistogramBinsAndClamping) {
  Summary s;
  s.add_all({-5, 0, 1, 5, 9, 15});
  const auto h = s.histogram(0, 10, 2);  // bins [0,5) and [5,10)
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // -5 clamped, 0, 1
  EXPECT_EQ(h[1], 3u);  // 5, 9, 15 clamped
}

TEST(Summary, HistogramValidation) {
  Summary s;
  EXPECT_THROW(s.histogram(0, 10, 0), InvariantError);
  EXPECT_THROW(s.histogram(10, 10, 2), InvariantError);
}

TEST(Summary, AddAfterQueryKeepsCorrectOrder) {
  Summary s;
  s.add_all({3, 1});
  EXPECT_DOUBLE_EQ(s.percentile(100), 3);
  s.add(10);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(100), 10);
  EXPECT_DOUBLE_EQ(s.min(), 1);
}

TEST(Summary, P999IsTheTailOfTheTail) {
  Summary s;
  for (int i = 1; i <= 1000; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.p999(), s.percentile(99.9));
  EXPECT_GT(s.p999(), s.percentile(99));
  EXPECT_LE(s.p999(), s.max());
  EXPECT_NEAR(s.p999(), 999.001, 1e-9);  // interpolated rank 999.9 of 1..1000
}

TEST(Summary, MergeMatchesSingleShot) {
  Summary whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = std::sin(i) * 50 + 100;
    whole.add(v);
    (i < 300 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.sum(), whole.sum(), 1e-9);
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.stddev(), whole.stddev(), 1e-9);
  // Percentiles are exact: merge keeps every sample.
  EXPECT_DOUBLE_EQ(a.percentile(50), whole.percentile(50));
  EXPECT_DOUBLE_EQ(a.p999(), whole.p999());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Summary, MergeWithEmptySummaries) {
  Summary a, empty;
  a.add_all({1, 2, 3});
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  Summary b;
  b.merge(a);  // copy into empty
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_DOUBLE_EQ(b.stddev(), a.stddev());

  Summary c, d;
  c.merge(d);  // empty + empty stays empty
  EXPECT_EQ(c.count(), 0u);
}

TEST(Summary, MergeUnbalancedShards) {
  // One huge and one tiny shard: the parallel Welford combination must
  // not lose precision when counts are lopsided.
  Summary big, tiny, whole;
  for (int i = 0; i < 100'000; ++i) {
    const double v = 10 + 0.001 * (i % 97);
    big.add(v);
    whole.add(v);
  }
  tiny.add(1e6);
  whole.add(1e6);
  big.merge(tiny);
  EXPECT_EQ(big.count(), whole.count());
  EXPECT_NEAR(big.mean(), whole.mean(), whole.mean() * 1e-12);
  EXPECT_NEAR(big.stddev(), whole.stddev(), whole.stddev() * 1e-9);
}

TEST(Summary, WelfordMatchesNaiveOnManySamples) {
  Summary s;
  double sum = 0, sq = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double v = std::sin(i) * 100 + i * 0.01;
    s.add(v);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = (sq - n * mean * mean) / (n - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-6);
}

}  // namespace
}  // namespace mmptcp
