#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mmptcp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, ForkIsIndependentOfParentDrawCount) {
  // A fork taken at the same point yields the same child stream.
  Rng p1(9), p2(9);
  Rng c1 = p1.fork();
  Rng c2 = p2.fork();
  EXPECT_EQ(c1.next(), c2.next());
  // Parent and child streams differ.
  Rng p3(9);
  Rng c3 = p3.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (p3.next() == c3.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.uniform(17), 17u);
}

TEST(Rng, UniformOfOneIsZero) {
  Rng r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform(1), 0u);
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng r(3);
  EXPECT_THROW(r.uniform(0), InvariantError);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng r(11);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[r.uniform(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 10 * 0.1);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(17);
  const double mean = 4.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(mean);
  EXPECT_NEAR(sum / n, mean, 0.05 * mean);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng r(1);
  EXPECT_THROW(r.exponential(0.0), InvariantError);
  EXPECT_THROW(r.exponential(-1.0), InvariantError);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng r(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
  EXPECT_THROW(r.bernoulli(1.5), InvariantError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng r(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto before = v;
  r.shuffle(v);
  EXPECT_NE(v, before);
}

}  // namespace
}  // namespace mmptcp
