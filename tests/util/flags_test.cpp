#include "util/flags.h"

#include <gtest/gtest.h>
#include "util/check.h"

namespace mmptcp {
namespace {

TEST(Flags, EqualsForm) {
  Flags f({"--flows=200", "--rate=2.5", "--name=foo"});
  EXPECT_EQ(f.get_int("flows", 1), 200);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 1.0), 2.5);
  EXPECT_EQ(f.get_string("name", "bar"), "foo");
}

TEST(Flags, SpaceSeparatedForm) {
  Flags f({"--flows", "300", "--name", "x"});
  EXPECT_EQ(f.get_int("flows", 1), 300);
  EXPECT_EQ(f.get_string("name", ""), "x");
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags f({});
  EXPECT_EQ(f.get_int("flows", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 1.5), 1.5);
  EXPECT_EQ(f.get_string("name", "d"), "d");
  EXPECT_FALSE(f.get_bool("full", false));
}

TEST(Flags, BareBooleanIsTrue) {
  Flags f({"--full"});
  EXPECT_TRUE(f.get_bool("full", false));
}

TEST(Flags, ExplicitBooleans) {
  Flags f({"--a=true", "--b=false", "--c=1", "--d=no"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, BadValuesThrow) {
  Flags f({"--flows=abc", "--rate=xyz", "--full=maybe"});
  EXPECT_THROW(f.get_int("flows", 0), ConfigError);
  EXPECT_THROW(f.get_double("rate", 0), ConfigError);
  EXPECT_THROW(f.get_bool("full", false), ConfigError);
}

TEST(Flags, PositionalsReadable) {
  Flags f({"--tolerance=5", "base.json", "cand.json"});
  f.get_double("tolerance", 0);
  const auto& pos = f.positionals();
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], "base.json");
  EXPECT_EQ(pos[1], "cand.json");
  EXPECT_NO_THROW(f.check_unknown());
}

TEST(Flags, UnreadPositionalsRejectedByCheckUnknown) {
  Flags f({"stray"});
  EXPECT_THROW(f.check_unknown(), ConfigError);
}

TEST(Flags, PositionalDoesNotBindAfterEqualsForm) {
  // "--a=1 pos": pos is positional, not the value of --a.
  Flags f({"--a=1", "pos"});
  EXPECT_EQ(f.get_int("a", 0), 1);
  ASSERT_EQ(f.positionals().size(), 1u);
  EXPECT_EQ(f.positionals()[0], "pos");
}

TEST(Flags, UnknownFlagsDetected) {
  Flags f({"--known=1", "--unknown=2"});
  f.get_int("known", 0);
  const auto u = f.unknown();
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0], "unknown");
  EXPECT_THROW(f.check_unknown(), ConfigError);
}

TEST(Flags, CheckUnknownPassesWhenAllConsumed) {
  Flags f({"--a=1"});
  f.get_int("a", 0);
  EXPECT_NO_THROW(f.check_unknown());
}

TEST(Flags, HelpRequested) {
  Flags f({"--help"});
  EXPECT_TRUE(f.help_requested());
  EXPECT_FALSE(Flags({}).help_requested());
}

TEST(Flags, HelpListsDescribedFlags) {
  Flags f({});
  f.get_int("flows", 7, "number of flows");
  const auto text = f.help("prog");
  EXPECT_NE(text.find("--flows"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("number of flows"), std::string::npos);
}

TEST(Flags, NegativeNumbersAsValues) {
  Flags f({"--delta=-5"});
  EXPECT_EQ(f.get_int("delta", 0), -5);
}

}  // namespace
}  // namespace mmptcp
