#include "exp/analyze/analyze.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "exp/json.h"
#include "exp/runner.h"
#include "exp/sink.h"
#include "util/check.h"

namespace mmptcp::exp {
namespace {

std::string fresh_dir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// One synthetic run entry of the sweep document.
std::string run_json(const std::string& variant, std::uint64_t seed,
                     double fct, double rto_stall, double transfer) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(variant == "a" ? "variant=a/senders=4/seed=" +
                                         std::to_string(seed)
                                   : "variant=b/senders=4/seed=" +
                                         std::to_string(seed));
  w.key("params").begin_object();
  w.key("variant").value(variant);
  w.key("senders").value("4");
  w.end_object();
  w.key("seed").value(seed);
  w.key("ok").value(true);
  w.key("metrics").begin_object();
  w.key("mean_fct_ms").value(fct);
  w.key("p99_fct_ms").value(fct * 2);
  w.key("rtos").value(rto_stall > 0 ? 3.0 : 0.0);
  w.key("budget_handshake_ms").value(1.0);
  w.key("budget_rto_stall_ms").value(rto_stall);
  w.key("budget_fast_recovery_ms").value(0.5);
  w.key("budget_transfer_ms").value(transfer);
  w.key("budget_reorder_wait_ms").value(0.25);
  w.key("budget_ttfb_ms").value(0.75);
  w.end_object();
  w.end_object();
  return w.str();
}

/// A two-variant, two-seed synthetic sweep: "a" wins on every count.
std::string sweep_json() {
  std::string runs;
  runs += run_json("a", 1, 10, 0, 9) + ",";
  runs += run_json("a", 2, 12, 0, 11) + ",";
  runs += run_json("b", 1, 20, 8, 11) + ",";
  runs += run_json("b", 2, 24, 10, 13) + ",";
  // A failed run: must be counted in total but excluded everywhere else.
  runs += "{\"id\":\"variant=b/senders=4/seed=3\",\"params\":"
          "{\"variant\":\"b\",\"senders\":\"4\"},\"seed\":3,\"ok\":false,"
          "\"error\":\"boom\"}";
  return "{\"schema_version\":2,\"kind\":\"sweep\",\"experiment\":"
         "\"synthetic\",\"runs\":[" +
         runs + "]}\n";
}

TEST(Analyze, DecompositionAndVerdictFromSyntheticSweep) {
  const std::string dir = fresh_dir("analyze_synth");
  write_file(dir + "/results.json", sweep_json());

  const AnalysisReport report = analyze_results(dir + "/results.json", "");
  const JsonValue doc = json_parse(report.json, "report");
  EXPECT_EQ(doc.at("kind").as_string(), "analysis");
  EXPECT_EQ(doc.at("experiment").as_string(), "synthetic");
  EXPECT_EQ(doc.at("runs").at("total").as_number(), 5);
  EXPECT_EQ(doc.at("runs").at("ok").as_number(), 4);
  EXPECT_EQ(doc.at("runs").at("traced").as_number(), 0);

  const auto& rows = doc.at("decomposition").items();
  ASSERT_EQ(rows.size(), 2u);  // grouped across seeds
  EXPECT_EQ(rows[0].at("group").as_string(), "variant=a/senders=4");
  EXPECT_EQ(rows[0].at("runs").as_number(), 2);
  EXPECT_DOUBLE_EQ(rows[0].at("fct_ms").as_number(), 11.0);
  EXPECT_DOUBLE_EQ(rows[0].at("rto_stall_ms").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(rows[1].at("fct_ms").as_number(), 22.0);
  EXPECT_DOUBLE_EQ(rows[1].at("rto_stall_ms").as_number(), 9.0);
  // Shares are percentages of the additive budget.
  const double b_budget = 1.0 + 9.0 + 0.5 + 12.0;
  EXPECT_NEAR(rows[1].at("rto_stall_share_pct").as_number(),
              9.0 / b_budget * 100.0, 1e-9);

  const auto& verdicts = doc.at("verdicts").items();
  ASSERT_EQ(verdicts.size(), 1u);
  const JsonValue& v = verdicts[0];
  EXPECT_EQ(v.at("context").as_string(), "senders=4");
  EXPECT_EQ(v.at("axis").as_string(), "variant");
  EXPECT_EQ(v.at("winner").as_string(), "a");
  EXPECT_EQ(v.at("runner_up").as_string(), "b");
  EXPECT_DOUBLE_EQ(v.at("fct_delta_pct").as_number(), 50.0);
  EXPECT_DOUBLE_EQ(v.at("rto_stall_delta_ms").as_number(), -9.0);
  EXPECT_DOUBLE_EQ(v.at("transfer_delta_ms").as_number(), -2.0);
  ASSERT_EQ(v.at("ranking").items().size(), 2u);
  EXPECT_EQ(v.at("ranking").items()[0].at("value").as_string(), "a");
  // The narrative names the winner and the dominant component.
  EXPECT_NE(v.at("narrative").as_string().find("a wins"),
            std::string::npos);
  EXPECT_NE(v.at("narrative").as_string().find("RTO stall"),
            std::string::npos);
  EXPECT_NE(report.text.find("a wins"), std::string::npos);
}

TEST(Analyze, ReportBytesDoNotDependOnInputPaths) {
  const std::string dir1 = fresh_dir("analyze_path1");
  const std::string dir2 = fresh_dir("analyze_path2/deeper");
  write_file(dir1 + "/results.json", sweep_json());
  write_file(dir2 + "/other_name.json", sweep_json());
  const AnalysisReport a = analyze_results(dir1 + "/results.json", "");
  const AnalysisReport b = analyze_results(dir2 + "/other_name.json", "");
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.text, b.text);
}

TEST(Analyze, TraceJoinAggregatesBandsAndTimeline) {
  const std::string dir = fresh_dir("analyze_traced");
  write_file(dir + "/results.json", sweep_json());

  // Streams for variant=a seeds 1..2; variant=b stays untraced (the join
  // must tolerate sweeps whose traces are partial).
  const std::string header =
      "{\"kind\":\"trace\",\"schema_version\":1,\"experiment\":"
      "\"synthetic\",\"run\":\"x\",\"seed\":1,\"channels\":\"all\","
      "\"interval_ns\":1000000}\n";
  const std::string stream1 =
      header +
      // Cumulative counters rise; the per-port maximum (12 marks, 2
      // drops) is what attribution must count, not the sum of samples.
      "{\"t\":1000000,\"ch\":\"queue\",\"port\":\"edge0.E1/p2\","
      "\"depth\":5,\"bytes\":7500,\"marks\":4,\"drops\":0}\n"
      "{\"t\":2000000,\"ch\":\"queue\",\"port\":\"edge0.E1/p2\","
      "\"depth\":9,\"bytes\":13500,\"marks\":12,\"drops\":2}\n"
      "{\"t\":2000000,\"ch\":\"queue\",\"port\":\"agg0.A1/p0\","
      "\"depth\":3,\"bytes\":4500,\"marks\":0,\"drops\":0}\n"
      "{\"t\":1500000,\"ch\":\"queue\",\"port\":\"edge0.E1/p2\","
      "\"event\":\"mark\",\"depth\":21}\n"
      "{\"t\":1600000,\"ch\":\"queue\",\"port\":\"edge0.E1/p2\","
      "\"event\":\"drop\",\"depth\":33}\n"
      "{\"t\":15000000,\"ch\":\"retx\",\"flow\":7,\"sf\":0,"
      "\"event\":\"rto\"}\n"
      "{\"t\":15500000,\"ch\":\"retx\",\"flow\":8,\"sf\":1,"
      "\"event\":\"fast_rtx\"}\n"
      "{\"t\":203000000,\"ch\":\"retx\",\"flow\":9,\"sf\":-1,"
      "\"event\":\"syn_timeout\"}\n";
  const std::string stream2 =
      header +
      "{\"t\":1000000,\"ch\":\"queue\",\"port\":\"edge0.E1/p2\","
      "\"depth\":40,\"bytes\":60000,\"marks\":1,\"drops\":0}\n"
      "{\"t\":16000000,\"ch\":\"retx\",\"flow\":3,\"sf\":0,"
      "\"event\":\"rto\"}\n";
  write_file(
      dir + "/" + trace_file_name("synthetic", "variant=a/senders=4/seed=1"),
      stream1);
  write_file(
      dir + "/" + trace_file_name("synthetic", "variant=a/senders=4/seed=2"),
      stream2);

  const AnalysisReport report =
      analyze_results(dir + "/results.json", dir);
  const JsonValue doc = json_parse(report.json, "report");
  EXPECT_EQ(doc.at("runs").at("traced").as_number(), 2);

  const auto& queues = doc.at("queues").items();
  ASSERT_EQ(queues.size(), 2u);  // agg + edge for group a, sorted
  EXPECT_EQ(queues[0].at("group").as_string(), "variant=a/senders=4");
  EXPECT_EQ(queues[0].at("band").as_string(), "agg");
  EXPECT_EQ(queues[0].at("peak_depth_pkts").as_number(), 3);
  EXPECT_EQ(queues[1].at("band").as_string(), "edge");
  EXPECT_EQ(queues[1].at("ports").as_number(), 1);
  // Peak over both runs and event depths: max(9, 21, 33, 40) = 40.
  EXPECT_EQ(queues[1].at("peak_depth_pkts").as_number(), 40);
  EXPECT_EQ(queues[1].at("marks").as_number(), 13);  // 12 + 1, not 4+12+1
  EXPECT_EQ(queues[1].at("drops").as_number(), 2);
  EXPECT_EQ(queues[1].at("mark_events").as_number(), 1);
  EXPECT_EQ(queues[1].at("drop_events").as_number(), 1);

  const auto& timeline = doc.at("rto_timeline").items();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].at("bin_ms").as_number(), 10);
  EXPECT_EQ(timeline[0].at("rto").as_number(), 2);  // 15 ms and 16 ms
  EXPECT_EQ(timeline[0].at("fast_rtx").as_number(), 1);
  EXPECT_EQ(timeline[0].at("syn_timeout").as_number(), 0);
  EXPECT_EQ(timeline[1].at("bin_ms").as_number(), 200);
  EXPECT_EQ(timeline[1].at("syn_timeout").as_number(), 1);
}

TEST(Analyze, RejectsNonSweepDocuments) {
  const std::string dir = fresh_dir("analyze_bad");
  write_file(dir + "/bad.json", "{\"kind\":\"timing\"}\n");
  EXPECT_THROW(analyze_results(dir + "/bad.json", ""), ConfigError);
  EXPECT_THROW(analyze_results(dir + "/absent.json", ""), ConfigError);
}

}  // namespace
}  // namespace mmptcp::exp
