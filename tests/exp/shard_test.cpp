#include "exp/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/sink.h"
#include "stats/sketch.h"
#include "util/check.h"

namespace mmptcp::exp {
namespace {

/// Cheap synthetic spec with per-run sketches so merged documents carry a
/// non-trivial "aggregates" section.  Metrics are arithmetic in the grid
/// point, so whole-vs-merged comparisons are instant and exact.
ExperimentSpec sketch_spec() {
  ExperimentSpec spec;
  spec.name = "sketchy";
  spec.description = "arith with sketches";
  spec.axes = fixed_axes({{"x", {"1", "2", "3"}}, {"y", {"10", "20"}}});
  spec.seeds = {1, 2};
  spec.run = [](const RunContext& ctx) {
    RunOutcome o;
    const double base =
        ctx.params.get_int("x") * double(ctx.params.get_int("y"));
    o.set("product", base);
    o.set("seed_echo", double(ctx.seed));
    QuantileSketch s;
    for (int i = 0; i < 40; ++i) s.add(base + i + double(ctx.seed));
    o.set_sketch("lat_ms", std::move(s));
    return o;
  };
  return spec;
}

/// Runs shard i/N for every i and returns the N shard documents.
std::vector<ShardDoc> run_shards(const ExperimentSpec& spec, std::size_t n,
                                 std::size_t jobs) {
  const std::size_t total = expand(spec, Scale{}, SweepOptions{}).size();
  std::vector<ShardDoc> docs;
  for (std::size_t i = 0; i < n; ++i) {
    SweepOptions o;
    o.jobs = jobs;
    o.shard_index = i;
    o.shard_count = n;
    const auto records = run_sweep(spec, Scale{}, o);
    docs.push_back({"shard" + std::to_string(i),
                    to_shard_json(spec, Scale{}, records, i, n, total)});
  }
  return docs;
}

TEST(ShardSpec, ParsesWellFormedArguments) {
  EXPECT_EQ(parse_shard_spec("0/3").index, 0u);
  EXPECT_EQ(parse_shard_spec("0/3").count, 3u);
  EXPECT_EQ(parse_shard_spec("2/3").index, 2u);
  EXPECT_EQ(parse_shard_spec("0/1").count, 1u);
  EXPECT_EQ(parse_shard_spec("11/12").index, 11u);
}

TEST(ShardSpec, RejectsMalformedArgumentsWithAClearMessage) {
  const auto msg_of = [](const std::string& text) -> std::string {
    try {
      parse_shard_spec(text);
    } catch (const ConfigError& e) {
      return e.what();
    }
    return "";
  };
  for (const char* bad : {"abc", "3", "1/2/3", "-1/3", "a/3", "1/b", "/3",
                          "1/", "", " 1/3", "0x1/3"}) {
    const std::string msg = msg_of(bad);
    ASSERT_FALSE(msg.empty()) << "'" << bad << "' was accepted";
    // Every rejection names the offending argument and shows the shape.
    EXPECT_NE(msg.find("invalid --shard argument"), std::string::npos) << msg;
    EXPECT_NE(msg.find("i/N"), std::string::npos) << msg;
  }
  EXPECT_NE(msg_of("0/0").find("N must be >= 1"), std::string::npos);
  EXPECT_NE(msg_of("3/3").find("must be < shard count"), std::string::npos);
  EXPECT_NE(msg_of("7/3").find("must be < shard count"), std::string::npos);
}

TEST(Shard, PartitionCoversEveryRunExactlyOnce) {
  const ExperimentSpec spec = sketch_spec();
  const auto whole = expand(spec, Scale{}, SweepOptions{});
  ASSERT_EQ(whole.size(), 12u);
  for (std::size_t n : {1u, 2u, 3u, 5u, 12u}) {
    std::set<std::size_t> claimed;
    for (std::size_t i = 0; i < n; ++i) {
      SweepOptions o;
      o.shard_index = i;
      o.shard_count = n;
      for (const RunRecord& rec : expand(spec, Scale{}, o)) {
        // Each shard sees its slice of the FULL expansion: the global
        // index is preserved and maps back to the unsharded record.
        EXPECT_EQ(rec.index % n, i);
        EXPECT_EQ(rec.id, whole[rec.index].id);
        EXPECT_TRUE(claimed.insert(rec.index).second)
            << "run " << rec.index << " claimed twice at N=" << n;
      }
    }
    EXPECT_EQ(claimed.size(), whole.size()) << "N=" << n;
  }
}

TEST(Shard, MoreShardsThanRunsFailsLoudly) {
  // A shard set wider than the sweep would leave some shards writing
  // empty documents; refuse up front and say how to widen the sweep.
  SweepOptions o;
  o.shard_index = 0;
  o.shard_count = 13;  // sweep has 12 runs
  try {
    expand(sketch_spec(), Scale{}, o);
    FAIL() << "oversharded sweep was accepted";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cannot split 12 runs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("at most 12 shards"), std::string::npos) << msg;
  }
  o.shard_index = 5;
  o.shard_count = 3;  // index out of range
  EXPECT_THROW(expand(sketch_spec(), Scale{}, o), ConfigError);
}

TEST(Shard, MergedDocumentIsByteIdenticalToUnshardedSweep) {
  const ExperimentSpec spec = sketch_spec();
  // The reference document, at both job counts (they must agree anyway).
  SweepOptions serial;
  serial.jobs = 1;
  const std::string whole =
      to_json(spec, Scale{}, run_sweep(spec, Scale{}, serial));
  ASSERT_NE(whole.find("\"aggregates\":"), std::string::npos);
  ASSERT_NE(whole.find("\"lat_ms\":"), std::string::npos);

  for (std::size_t n : {2u, 3u}) {
    for (std::size_t jobs : {1u, 8u}) {
      const std::vector<ShardDoc> docs = run_shards(spec, n, jobs);
      EXPECT_EQ(merge_shard_docs(docs), whole)
          << "N=" << n << " jobs=" << jobs;
    }
  }
}

TEST(Shard, MergeIsInputOrderIndependent) {
  const std::vector<ShardDoc> docs = run_shards(sketch_spec(), 3, 2);
  const std::string merged = merge_shard_docs(docs);
  std::vector<ShardDoc> shuffled = {docs[2], docs[0], docs[1]};
  EXPECT_EQ(merge_shard_docs(shuffled), merged);
  std::vector<ShardDoc> reversed = {docs[2], docs[1], docs[0]};
  EXPECT_EQ(merge_timing_docs({}), "");
  EXPECT_EQ(merge_shard_docs(reversed), merged);
}

TEST(Shard, MergeRejectsIncompleteOrInconsistentSets) {
  const ExperimentSpec spec = sketch_spec();
  const std::vector<ShardDoc> docs = run_shards(spec, 3, 1);

  // Missing shards are named explicitly.
  try {
    merge_shard_docs({docs[0]});
    FAIL() << "incomplete shard set was accepted";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("merge needs all 3 shards"), std::string::npos) << msg;
    EXPECT_NE(msg.find("missing: 1/3, 2/3"), std::string::npos) << msg;
  }

  // Duplicates are refused even when the count looks right.
  try {
    merge_shard_docs({docs[0], docs[1], docs[1]});
    FAIL() << "duplicate shard was accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate shard 1/3"),
              std::string::npos)
        << e.what();
  }

  // A whole sweep document is not a shard; the message says what to do.
  const std::string whole =
      to_json(spec, Scale{}, run_sweep(spec, Scale{}, SweepOptions{}));
  try {
    merge_shard_docs({{"whole.json", whole}, docs[1], docs[2]});
    FAIL() << "whole document was accepted as a shard";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("kind is \"sweep\""), std::string::npos) << msg;
    EXPECT_NE(msg.find("--shard i/N"), std::string::npos) << msg;
  }

  // Shards of different invocations (here: different specs) do not mix.
  ExperimentSpec other = sketch_spec();
  other.name = "sketchy2";
  const std::vector<ShardDoc> foreign = run_shards(other, 3, 1);
  EXPECT_THROW(merge_shard_docs({docs[0], docs[1], foreign[2]}), ConfigError);
}

TEST(Shard, RunCostReordersClaimsWithoutChangingBytes) {
  // Longest-expected-first: with a run_cost hook, workers claim the
  // costly runs first so one straggler cannot serialise the tail...
  ExperimentSpec spec = sketch_spec();
  spec.seeds = {1};
  spec.run_cost = [](const ParamSet& p, const Scale&) {
    return double(p.get_int("x")) * double(p.get_int("y"));
  };
  SweepOptions o;
  o.jobs = 1;  // serial: completion order == claim order
  std::vector<std::string> completion_order;
  o.on_progress = [&](std::size_t, std::size_t, const std::string& id, bool) {
    completion_order.push_back(id);
  };
  const auto records = run_sweep(spec, Scale{}, o);
  ASSERT_EQ(completion_order.size(), 6u);
  EXPECT_EQ(completion_order.front(), "x=3/y=20/seed=1");  // cost 60
  EXPECT_EQ(completion_order.back(), "x=1/y=10/seed=1");   // cost 10

  // ...while the document stays in expansion order, byte-identical to
  // the same spec without the hook.
  ExperimentSpec plain = sketch_spec();
  plain.seeds = {1};
  const std::string reference =
      to_json(plain, Scale{}, run_sweep(plain, Scale{}, SweepOptions{}));
  EXPECT_EQ(to_json(spec, Scale{}, records), reference);
}

TEST(Shard, TimingSidecarsMergeIntoExpansionOrder) {
  ExperimentSpec spec;
  spec.name = "timed";
  spec.axes = fixed_axes({{"i", {"1", "2", "3", "4"}}});
  spec.run = [](const RunContext& ctx) {
    RunOutcome o;
    o.set("v", double(ctx.params.get_int("i")));
    o.set_timing("events_per_second", 100.0 * ctx.params.get_int("i"));
    return o;
  };
  const std::size_t total = expand(spec, Scale{}, SweepOptions{}).size();
  std::vector<ShardDoc> docs;
  for (std::size_t i = 0; i < 2; ++i) {
    SweepOptions o;
    o.shard_index = i;
    o.shard_count = 2;
    const auto records = run_sweep(spec, Scale{}, o);
    docs.push_back({"t" + std::to_string(i),
                    to_shard_timing_json(spec, records, i, 2, total)});
  }
  const std::string merged = merge_timing_docs({docs[1], docs[0]});
  EXPECT_NE(merged.find("\"kind\":\"timing\""), std::string::npos);
  // Runs come back in expansion order regardless of input order, with
  // the shard-only index stripped and the mean over all four runs.
  EXPECT_LT(merged.find("i=1/seed=1"), merged.find("i=2/seed=1"));
  EXPECT_LT(merged.find("i=2/seed=1"), merged.find("i=3/seed=1"));
  EXPECT_EQ(merged.find("\"index\""), std::string::npos);
  EXPECT_NE(merged.find("\"events_per_second_mean\":250"), std::string::npos);
  // Sweep shards are not timing shards and vice versa.
  EXPECT_THROW(merge_shard_docs({docs[0], docs[1]}), ConfigError);
}

}  // namespace
}  // namespace mmptcp::exp
