#include "exp/compare/compare.h"

#include <gtest/gtest.h>

#include "exp/compare/report.h"
#include "exp/json.h"
#include "exp/sink.h"
#include "util/check.h"

namespace mmptcp::exp {
namespace {

using Dir = MetricTolerance::Direction;

/// A spec with gate tolerances exercising every knob.
ExperimentSpec gate_spec() {
  ExperimentSpec spec;
  spec.name = "gate";
  spec.axes = fixed_axes({{"protocol", {"tcp", "mmptcp"}}});
  spec.run = [](const RunContext&) { return RunOutcome{}; };
  spec.tolerances = {
      {.pattern = "completion",
       .warn_pct = 1,
       .fail_pct = 5,
       .direction = Dir::kLowerIsWorse},
      {.pattern = "rtos", .abs_slack = 2, .direction = Dir::kHigherIsWorse},
      {.pattern = "*_ms",
       .warn_pct = 5,
       .fail_pct = 20,
       .direction = Dir::kHigherIsWorse},
      {.pattern = "events_per_second*",
       .warn_pct = 15,
       .fail_pct = 40,
       .direction = Dir::kLowerIsWorse},
  };
  return spec;
}

struct Row {
  std::string protocol;
  std::uint64_t seed = 1;
  double mean_ms = 100;
  double completion = 1.0;
  double rtos = 0;
};

std::vector<RunRecord> make_records(const std::vector<Row>& rows) {
  std::vector<RunRecord> out;
  for (const Row& row : rows) {
    RunRecord rec;
    rec.params.set("protocol", row.protocol);
    rec.seed = row.seed;
    rec.id = rec.params.id() + "/seed=" + std::to_string(row.seed);
    rec.outcome.set("mean_ms", row.mean_ms);
    rec.outcome.set("completion", row.completion);
    rec.outcome.set("rtos", row.rtos);
    out.push_back(std::move(rec));
  }
  return out;
}

SweepDoc doc_for(const std::vector<Row>& rows) {
  const std::string json = to_json(gate_spec(), Scale{}, make_records(rows));
  return parse_sweep_doc(json, "<test>");
}

/// Baseline grid: two protocols, one seed each.
std::vector<Row> base_rows() {
  return {{.protocol = "tcp"}, {.protocol = "mmptcp"}};
}

CompareOptions options_with(const Registry& reg) {
  CompareOptions o;
  o.registry = &reg;
  return o;
}

class CompareTest : public ::testing::Test {
 protected:
  CompareTest() { reg_.add(gate_spec()); }
  Registry reg_;
};

const MetricDiff* find_diff(const CompareReport& report,
                            const std::string& run_id,
                            const std::string& metric) {
  for (const MetricDiff& d : report.diffs) {
    if (d.run_id == run_id && d.metric == metric) return &d;
  }
  return nullptr;
}

TEST_F(CompareTest, IdenticalDocumentsAllPass) {
  const CompareReport report =
      compare_sweeps(doc_for(base_rows()), doc_for(base_rows()),
                     options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kPass);
  EXPECT_EQ(report.count(Verdict::kWarn), 0u);
  EXPECT_EQ(report.count(Verdict::kFail), 0u);
  EXPECT_EQ(report.diffs.size(), 6u);  // 2 runs x 3 metrics
  EXPECT_TRUE(report.findings.empty());
  EXPECT_NE(to_verdict_json(report).find("\"verdict\":\"PASS\""),
            std::string::npos);
}

TEST_F(CompareTest, ToleranceEdges) {
  auto cand = base_rows();
  // mean_ms tolerance: warn > 5%, fail > 20%, higher is worse.
  struct Case {
    double cand_ms;
    Verdict expected;
  } cases[] = {
      {104, Verdict::kPass},  // 4% < warn
      {105, Verdict::kPass},  // exactly warn threshold: not strictly above
      {106, Verdict::kWarn},  // 6% > warn
      {120, Verdict::kWarn},  // exactly fail threshold: still WARN
      {125, Verdict::kFail},  // 25% > fail
  };
  for (const Case& c : cases) {
    cand[0].mean_ms = c.cand_ms;
    const CompareReport report = compare_sweeps(
        doc_for(base_rows()), doc_for(cand), options_with(reg_));
    const MetricDiff* d = find_diff(report, "protocol=tcp/seed=1", "mean_ms");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->verdict, c.expected) << "cand mean_ms " << c.cand_ms;
  }
}

TEST_F(CompareTest, RegressionNamesRunAndMetric) {
  auto cand = base_rows();
  cand[1].mean_ms = 200;  // mmptcp run regresses 100%
  const CompareReport report = compare_sweeps(
      doc_for(base_rows()), doc_for(cand), options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kFail);
  const MetricDiff* d =
      find_diff(report, "protocol=mmptcp/seed=1", "mean_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->verdict, Verdict::kFail);
  EXPECT_DOUBLE_EQ(d->abs_delta, 100);
  EXPECT_DOUBLE_EQ(d->rel_delta_pct, 100);
  // The verdict JSON names the (run, metric) that regressed.
  const std::string json = to_verdict_json(report);
  EXPECT_NE(json.find("protocol=mmptcp/seed=1"), std::string::npos);
  EXPECT_NE(json.find("\"metric\":\"mean_ms\""), std::string::npos);
  // The tcp run is untouched and passes.
  EXPECT_EQ(find_diff(report, "protocol=tcp/seed=1", "mean_ms")->verdict,
            Verdict::kPass);
}

TEST_F(CompareTest, ImprovementsPassRegardlessOfMagnitude) {
  auto cand = base_rows();
  cand[0].mean_ms = 10;       // -90%, but lower is better
  cand[0].completion = 2.0;   // +100%, but higher is better
  const CompareReport report = compare_sweeps(
      doc_for(base_rows()), doc_for(cand), options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kPass);
  EXPECT_EQ(find_diff(report, "protocol=tcp/seed=1", "mean_ms")->note,
            "improved");
}

TEST_F(CompareTest, AbsoluteSlackShieldsNearZeroCounters) {
  auto cand = base_rows();
  cand[0].rtos = 2;  // baseline 0, within abs_slack 2
  CompareReport report = compare_sweeps(doc_for(base_rows()), doc_for(cand),
                                        options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kPass);

  cand[0].rtos = 3;  // beyond the slack: zero baseline cannot scale
  report = compare_sweeps(doc_for(base_rows()), doc_for(cand),
                          options_with(reg_));
  const MetricDiff* d = find_diff(report, "protocol=tcp/seed=1", "rtos");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->verdict, Verdict::kFail);
  EXPECT_NE(d->note.find("baseline is 0"), std::string::npos);
}

TEST_F(CompareTest, MissingAndExtraRunsFail) {
  auto shrunk = base_rows();
  shrunk.pop_back();
  // Candidate lost a run.
  CompareReport report = compare_sweeps(doc_for(base_rows()),
                                        doc_for(shrunk), options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kFail);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].run_id, "protocol=mmptcp/seed=1");
  EXPECT_EQ(report.findings[0].what, "run missing from candidate");

  // Candidate grew a run the baseline has never seen.
  report = compare_sweeps(doc_for(shrunk), doc_for(base_rows()),
                          options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kFail);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].run_id, "protocol=mmptcp/seed=1");
  EXPECT_EQ(report.findings[0].what, "run missing from baseline");
}

TEST_F(CompareTest, MetricNameMismatchFails) {
  const std::string base_json =
      to_json(gate_spec(), Scale{}, make_records(base_rows()));
  // Rename one metric in the candidate document.
  std::string cand_json = base_json;
  const std::string from = "\"rtos\":";
  const std::size_t at = cand_json.find(from);
  ASSERT_NE(at, std::string::npos);
  cand_json.replace(at, from.size(), "\"rtox\":");

  const CompareReport report = compare_sweeps(
      parse_sweep_doc(base_json, "<base>"),
      parse_sweep_doc(cand_json, "<cand>"), options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kFail);
  bool missing_from_cand = false, missing_from_base = false;
  for (const Finding& f : report.findings) {
    if (f.metric == "rtos" && f.what == "metric missing from candidate") {
      missing_from_cand = true;
      EXPECT_EQ(f.verdict, Verdict::kFail);
    }
    if (f.metric == "rtox" &&
        f.what.find("metric missing from baseline") != std::string::npos) {
      missing_from_base = true;
      EXPECT_EQ(f.verdict, Verdict::kWarn);
    }
  }
  EXPECT_TRUE(missing_from_cand);
  EXPECT_TRUE(missing_from_base);
}

TEST_F(CompareTest, SchemaVersionMismatchRejected) {
  const std::string base_json =
      to_json(gate_spec(), Scale{}, make_records(base_rows()));
  std::string stale = base_json;
  const std::string from =
      "\"schema_version\":" + std::to_string(kResultSchemaVersion);
  const std::size_t at = stale.find(from);
  ASSERT_NE(at, std::string::npos);
  stale.replace(at, from.size(), "\"schema_version\":1");

  const CompareReport report = compare_sweeps(
      parse_sweep_doc(stale, "<stale>"),
      parse_sweep_doc(base_json, "<cand>"), options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kFail);
  EXPECT_TRUE(report.diffs.empty());  // rejection: no metric diffing
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].what.find("schema_version mismatch"),
            std::string::npos);
}

TEST_F(CompareTest, KindAndExperimentMismatchRejected) {
  SweepDoc sweep = doc_for(base_rows());
  SweepDoc timing = sweep;
  timing.kind = "timing";
  CompareReport report = compare_sweeps(sweep, timing, options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kFail);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].what.find("kind mismatch"),
            std::string::npos);

  SweepDoc other = sweep;
  other.experiment = "something_else";
  report = compare_sweeps(sweep, other, options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kFail);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].what.find("experiment mismatch"),
            std::string::npos);
}

TEST_F(CompareTest, ComparingNothingFailsInsteadOfPassing) {
  // A --metrics glob that matches no metric must not green-light the
  // gate with an empty all-PASS report.
  CompareOptions options = options_with(reg_);
  options.metrics_glob = "no_such_metric";
  const CompareReport report = compare_sweeps(
      doc_for(base_rows()), doc_for(base_rows()), options);
  EXPECT_EQ(report.verdict(), Verdict::kFail);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].what.find("nothing was compared"),
            std::string::npos);
}

TEST_F(CompareTest, NonResultDocumentsRejected) {
  // Feeding a verdict JSON (or anything else) back in must not yield a
  // silent empty PASS.
  SweepDoc verdict = doc_for(base_rows());
  verdict.kind = "verdict";
  verdict.runs.clear();
  const CompareReport report =
      compare_sweeps(verdict, verdict, options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kFail);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].what.find("cannot compare documents of kind"),
            std::string::npos);
}

TEST_F(CompareTest, CandidateRunFailureIsAFinding) {
  std::vector<RunRecord> cand = make_records(base_rows());
  cand[0].outcome = RunOutcome::failure("boom");
  const SweepDoc cand_doc = parse_sweep_doc(
      to_json(gate_spec(), Scale{}, cand), "<cand>");
  const CompareReport report =
      compare_sweeps(doc_for(base_rows()), cand_doc, options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kFail);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].run_id, "protocol=tcp/seed=1");
  EXPECT_NE(report.findings[0].what.find("failed in candidate: boom"),
            std::string::npos);
}

TEST_F(CompareTest, MetricsGlobRestrictsTheDiff) {
  auto cand = base_rows();
  cand[0].completion = 0.5;  // would FAIL (lower is worse, -50%)
  CompareOptions options = options_with(reg_);
  options.metrics_glob = "*_ms";
  const CompareReport report = compare_sweeps(
      doc_for(base_rows()), doc_for(cand), options);
  EXPECT_EQ(report.verdict(), Verdict::kPass);
  EXPECT_EQ(report.diffs.size(), 2u);  // only mean_ms per run
}

TEST_F(CompareTest, ToleranceOverrideTightensTheGate) {
  auto cand = base_rows();
  cand[0].mean_ms = 104;  // 4%: passes spec tolerances
  CompareOptions options = options_with(reg_);
  options.tolerance_override_pct = 1;
  const CompareReport report = compare_sweeps(
      doc_for(base_rows()), doc_for(cand), options);
  const MetricDiff* d = find_diff(report, "protocol=tcp/seed=1", "mean_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->verdict, Verdict::kFail);
}

TEST_F(CompareTest, VerdictJsonIsDeterministic) {
  auto cand = base_rows();
  cand[0].mean_ms = 150;
  cand[1].completion = 0.5;
  const auto run = [&] {
    CompareReport report = compare_sweeps(doc_for(base_rows()),
                                          doc_for(cand), options_with(reg_));
    // Origins must not leak into the verdict bytes.
    report.baseline_origin = "/somewhere/a.json";
    report.candidate_origin = "/elsewhere/b.json";
    return to_verdict_json(report);
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_EQ(first.find("/somewhere"), std::string::npos);
  EXPECT_NE(first.find("\"verdict\":\"FAIL\""), std::string::npos);
  // Parseable by our own reader.
  EXPECT_NO_THROW(json_parse(first, "<verdict>"));
}

TEST_F(CompareTest, TimingSidecarComparesAggregateOnly) {
  const auto timing_doc = [&](double eps) {
    std::vector<RunRecord> records = make_records(base_rows());
    for (RunRecord& rec : records) {
      rec.outcome.set_timing("events_per_second", eps);
    }
    return parse_sweep_doc(to_timing_json(gate_spec(), records), "<timing>");
  };
  const SweepDoc base = timing_doc(1e6);
  EXPECT_EQ(base.kind, "timing");

  // -50% events/s: beyond fail 40%, lower is worse.
  CompareReport report =
      compare_sweeps(base, timing_doc(5e5), options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kFail);
  const MetricDiff* d =
      find_diff(report, "aggregate", "events_per_second_mean");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->verdict, Verdict::kFail);

  // +50% events/s is an improvement.
  report = compare_sweeps(base, timing_doc(1.5e6), options_with(reg_));
  EXPECT_EQ(report.verdict(), Verdict::kPass);
}

TEST(CompareGlob, Matching) {
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("*_ms", "mean_ms"));
  EXPECT_FALSE(glob_match("*_ms", "mean_msx"));
  EXPECT_TRUE(glob_match("band_*", "band_sub_100ms"));
  EXPECT_TRUE(glob_match("p?9_ms", "p99_ms"));
  EXPECT_FALSE(glob_match("p?9_ms", "p50_ms"));
  EXPECT_TRUE(glob_match("a*b*c", "axxbyyc"));
  EXPECT_FALSE(glob_match("a*b*c", "axxbyy"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("x\"y\\z\n");
  w.key("vals").begin_array().value(std::uint64_t{1}).value(2.5).end_array();
  w.key("ok").value(true);
  w.key("none").begin_object().end_object();
  w.end_object();

  const JsonValue v = json_parse(w.str(), "<roundtrip>");
  EXPECT_EQ(v.at("name").as_string(), "x\"y\\z\n");
  ASSERT_EQ(v.at("vals").items().size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("vals").items()[0].as_number(), 1);
  EXPECT_DOUBLE_EQ(v.at("vals").items()[1].as_number(), 2.5);
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_TRUE(v.at("none").members().empty());
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW(v.at("absent"), ConfigError);
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(json_parse("", "<t>"), ConfigError);
  EXPECT_THROW(json_parse("{", "<t>"), ConfigError);
  EXPECT_THROW(json_parse("{} trailing", "<t>"), ConfigError);
  EXPECT_THROW(json_parse("{\"a\":}", "<t>"), ConfigError);
  EXPECT_THROW(json_parse("[1,]", "<t>"), ConfigError);
  EXPECT_THROW(json_parse("\"unterminated", "<t>"), ConfigError);
  EXPECT_THROW(json_parse("{\"a\" 1}", "<t>"), ConfigError);
  EXPECT_THROW(json_parse("nul", "<t>"), ConfigError);
  EXPECT_THROW(json_parse("1.2.3", "<t>"), ConfigError);
  EXPECT_NO_THROW(json_parse("  [1, -2.5e3, null, \"\\u00e9\"] ", "<t>"));
}

TEST(JsonParse, NegativeAndScientificNumbers) {
  const JsonValue v = json_parse("[-5, 1e-3, 2.25E2]", "<t>");
  EXPECT_DOUBLE_EQ(v.items()[0].as_number(), -5);
  EXPECT_DOUBLE_EQ(v.items()[1].as_number(), 0.001);
  EXPECT_DOUBLE_EQ(v.items()[2].as_number(), 225);
}

}  // namespace
}  // namespace mmptcp::exp
