#include "exp/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "exp/registry.h"
#include "exp/sink.h"

namespace mmptcp::exp {
namespace {

/// Cheap synthetic spec: metrics derived arithmetically from the grid
/// point, so sweeps are instant and outcomes fully predictable.
ExperimentSpec synthetic_spec() {
  ExperimentSpec spec;
  spec.name = "synthetic";
  spec.description = "arith";
  spec.axes = fixed_axes({{"x", {"1", "2", "3"}}, {"y", {"10", "20"}}});
  spec.seeds = {1, 2};
  spec.run = [](const RunContext& ctx) {
    RunOutcome o;
    o.set("product", double(ctx.params.get_int("x") *
                            ctx.params.get_int("y")));
    o.set("seed_echo", double(ctx.seed));
    return o;
  };
  return spec;
}

TEST(Runner, ExpansionIsOrderedAxisMajorSeedsInnermost) {
  const auto records = expand(synthetic_spec(), Scale{}, SweepOptions{});
  ASSERT_EQ(records.size(), 12u);  // 3 * 2 * 2 seeds
  EXPECT_EQ(records[0].id, "x=1/y=10/seed=1");
  EXPECT_EQ(records[1].id, "x=1/y=10/seed=2");
  EXPECT_EQ(records[2].id, "x=1/y=20/seed=1");
  EXPECT_EQ(records[11].id, "x=3/y=20/seed=2");
}

TEST(Runner, SeedAndAxisOverrides) {
  SweepOptions options;
  options.seeds = {7};
  options.axis_overrides = {{"x", {"5"}}};
  const auto records = expand(synthetic_spec(), Scale{}, options);
  ASSERT_EQ(records.size(), 2u);  // 1 x-value * 2 y-values * 1 seed
  EXPECT_EQ(records[0].id, "x=5/y=10/seed=7");

  SweepOptions bad;
  bad.axis_overrides = {{"nope", {"1"}}};
  EXPECT_THROW(expand(synthetic_spec(), Scale{}, bad), ConfigError);
}

TEST(Runner, UnknownSetParameterNamesTheValidOnes) {
  // A typo in --set must fail loudly and tell the caller what is
  // sweepable, not silently run the default grid.
  SweepOptions bad;
  bad.axis_overrides = {{"protocl", {"tcp"}}};
  try {
    expand(synthetic_spec(), Scale{}, bad);
    FAIL() << "unknown --set parameter was accepted";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("protocl"), std::string::npos) << msg;
    EXPECT_NE(msg.find("valid --set parameters"), std::string::npos) << msg;
    EXPECT_NE(msg.find("x, y"), std::string::npos) << msg;
  }
}

TEST(Runner, ParallelSweepMatchesSerialByteForByte) {
  const ExperimentSpec spec = synthetic_spec();
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;
  const auto a = run_sweep(spec, Scale{}, serial);
  const auto b = run_sweep(spec, Scale{}, parallel);
  EXPECT_EQ(to_json(spec, Scale{}, a), to_json(spec, Scale{}, b));
}

TEST(Runner, ActuallyRunsConcurrently) {
  ExperimentSpec spec;
  spec.name = "concurrent";
  spec.axes = fixed_axes({{"i", {"1", "2", "3", "4"}}});
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  spec.run = [&](const RunContext&) {
    const int now = in_flight.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected &&
           !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    in_flight.fetch_sub(1);
    return RunOutcome{};
  };
  SweepOptions options;
  options.jobs = 4;
  run_sweep(spec, Scale{}, options);
  EXPECT_GT(peak.load(), 1);
}

TEST(Runner, FailureIsIsolated) {
  ExperimentSpec spec;
  spec.name = "flaky";
  spec.axes = fixed_axes({{"i", {"1", "2", "3"}}});
  spec.run = [](const RunContext& ctx) {
    if (ctx.params.get_int("i") == 2) throw std::runtime_error("boom");
    RunOutcome o;
    o.set("v", 1);
    return o;
  };
  const auto records = run_sweep(spec, Scale{}, SweepOptions{});
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].outcome.ok);
  EXPECT_FALSE(records[1].outcome.ok);
  EXPECT_EQ(records[1].outcome.error, "boom");
  EXPECT_TRUE(records[2].outcome.ok);

  // The failure shows up in both sinks instead of aborting the sweep.
  const std::string json = to_json(spec, Scale{}, records);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("boom"), std::string::npos);
  EXPECT_EQ(to_table(records).rows(), 3u);
}

TEST(Runner, ProgressReportsEveryRun) {
  const ExperimentSpec spec = synthetic_spec();
  SweepOptions options;
  options.jobs = 4;
  std::size_t calls = 0;
  std::size_t last_done = 0;
  options.on_progress = [&](std::size_t done, std::size_t total,
                            const std::string& id, bool ok) {
    ++calls;
    last_done = done;
    EXPECT_EQ(total, 12u);
    EXPECT_FALSE(id.empty());
    EXPECT_TRUE(ok);
  };
  run_sweep(spec, Scale{}, options);
  EXPECT_EQ(calls, 12u);
  EXPECT_EQ(last_done, 12u);
}

// The real thing, end to end: the registered "smoke" spec (a genuine
// k=4 FatTree simulation) is byte-identical at --jobs 1 and --jobs 8.
TEST(Runner, RegisteredSmokeSpecIsDeterministicAcrossJobCounts) {
  register_builtin_experiments();
  const ExperimentSpec* spec = Registry::global().find("smoke");
  ASSERT_NE(spec, nullptr);

  Scale scale;
  scale.shorts = 8;  // keep the test snappy; adjust_scale caps the rest

  SweepOptions serial;
  serial.jobs = 1;
  serial.seeds = {1, 2};
  SweepOptions parallel;
  parallel.jobs = 8;
  parallel.seeds = {1, 2};

  const auto a = run_sweep(*spec, scale, serial);
  const auto b = run_sweep(*spec, scale, parallel);
  const Scale shown = effective_scale(*spec, scale);
  const std::string ja = to_json(*spec, shown, a);
  EXPECT_EQ(ja, to_json(*spec, shown, b));

  // And the runs did real work: every short flow completed.
  for (const RunRecord& rec : a) {
    ASSERT_TRUE(rec.outcome.ok) << rec.id << ": " << rec.outcome.error;
    EXPECT_DOUBLE_EQ(rec.outcome.get("completion"), 1.0) << rec.id;
    EXPECT_GT(rec.outcome.get("events"), 0.0) << rec.id;
  }
}

// The event-core microbenchmark: pure scheduler/link churn must be
// byte-identical at any job count, like every other spec.
TEST(Runner, PerfMicroSpecIsDeterministicAcrossJobCounts) {
  register_builtin_experiments();
  const ExperimentSpec* spec = Registry::global().find("perf_micro");
  ASSERT_NE(spec, nullptr);

  SweepOptions serial;
  serial.jobs = 1;
  serial.seeds = {1, 2};
  SweepOptions parallel;
  parallel.jobs = 8;
  parallel.seeds = {1, 2};

  const auto a = run_sweep(*spec, Scale{}, serial);
  const auto b = run_sweep(*spec, Scale{}, parallel);
  EXPECT_EQ(to_json(*spec, Scale{}, a), to_json(*spec, Scale{}, b));

  for (const RunRecord& rec : a) {
    ASSERT_TRUE(rec.outcome.ok) << rec.id << ": " << rec.outcome.error;
    EXPECT_GT(rec.outcome.get("events"), 0.0) << rec.id;
    // Wall-clock throughput goes to the sidecar, never the main doc.
    bool has_eps = false;
    for (const auto& [name, value] : rec.outcome.metrics) {
      (void)value;
      if (name == "events_per_second") has_eps = true;
    }
    EXPECT_FALSE(has_eps) << rec.id;
  }
  const std::string timing = to_timing_json(*spec, a);
  EXPECT_NE(timing.find("events_per_second_mean"), std::string::npos);
}

TEST(Sink, TimingsGoToTheSidecarNotTheMainJson) {
  ExperimentSpec spec;
  spec.name = "timed";
  spec.axes = fixed_axes({{"i", {"1", "2"}}});
  spec.run = [](const RunContext& ctx) {
    RunOutcome o;
    o.set("v", double(ctx.params.get_int("i")));
    o.set_timing("events_per_second", 1e6);
    return o;
  };
  const auto records = run_sweep(spec, Scale{}, SweepOptions{});
  // Wall-clock metrics must not leak into the deterministic document.
  const std::string main_json = to_json(spec, Scale{}, records);
  EXPECT_EQ(main_json.find("events_per_second"), std::string::npos);
  const std::string timing = to_timing_json(spec, records);
  EXPECT_NE(timing.find("events_per_second"), std::string::npos);
  EXPECT_NE(timing.find("aggregate"), std::string::npos);
  EXPECT_NE(timing.find("events_per_second_mean"), std::string::npos);

  // Specs without timings produce no sidecar at all.
  const ExperimentSpec plain = synthetic_spec();
  EXPECT_TRUE(
      to_timing_json(plain, run_sweep(plain, Scale{}, SweepOptions{}))
          .empty());
}

TEST(Sink, AggregateTableAveragesOverSeeds) {
  const ExperimentSpec spec = synthetic_spec();
  const auto records = run_sweep(spec, Scale{}, SweepOptions{});
  const Table agg = to_aggregate_table(records);
  EXPECT_EQ(agg.rows(), 6u);  // one row per grid point, seeds folded
  // seed_echo mean over seeds {1,2} is 1.5 for every grid point.
  EXPECT_NE(agg.to_string().find("1.50"), std::string::npos);
}

}  // namespace
}  // namespace mmptcp::exp
