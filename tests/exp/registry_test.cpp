#include "exp/registry.h"

#include <gtest/gtest.h>

#include "exp/json.h"
#include "util/check.h"

namespace mmptcp::exp {
namespace {

ExperimentSpec trivial_spec(const std::string& name) {
  ExperimentSpec spec;
  spec.name = name;
  spec.axes = fixed_axes({});
  spec.run = [](const RunContext&) { return RunOutcome{}; };
  return spec;
}

TEST(Registry, AddFindMatch) {
  Registry r;
  r.add(trivial_spec("alpha"));
  r.add(trivial_spec("beta"));
  r.add(trivial_spec("alphabet"));

  EXPECT_NE(r.find("alpha"), nullptr);
  EXPECT_EQ(r.find("gamma"), nullptr);
  EXPECT_EQ(r.size(), 3u);

  // Exact name wins even when it is a substring of another.
  const auto exact = r.match("alpha");
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0]->name, "alpha");

  const auto sub = r.match("alph");
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0]->name, "alpha");     // sorted by name
  EXPECT_EQ(sub[1]->name, "alphabet");

  EXPECT_EQ(r.match("").size(), 3u);
  EXPECT_TRUE(r.match("zzz").empty());
}

TEST(Registry, RejectsDuplicatesAndInvalidSpecs) {
  Registry r;
  r.add(trivial_spec("a"));
  EXPECT_THROW(r.add(trivial_spec("a")), ConfigError);
  EXPECT_THROW(r.add(trivial_spec("")), ConfigError);

  ExperimentSpec no_run = trivial_spec("b");
  no_run.run = nullptr;
  EXPECT_THROW(r.add(no_run), ConfigError);

  ExperimentSpec no_seeds = trivial_spec("c");
  no_seeds.seeds.clear();
  EXPECT_THROW(r.add(no_seeds), ConfigError);
}

TEST(Registry, BuiltinCatalogHasThePaperExperiments) {
  const std::size_t count = register_builtin_experiments();
  EXPECT_GE(count, 8u);
  EXPECT_EQ(count, register_builtin_experiments());  // idempotent

  for (const char* name :
       {"fig1a", "fig1b", "fig1c", "incast", "hotspot", "load_sweep",
        "coexistence", "multihomed", "ablation_dupthresh",
        "ablation_switching", "text_summary", "smoke"}) {
    EXPECT_NE(Registry::global().find(name), nullptr) << name;
  }

  // "fig1" matches the whole figure family.
  EXPECT_EQ(Registry::global().match("fig1").size(), 3u);
}

TEST(Registry, BuiltinAxesExpand) {
  register_builtin_experiments();
  const Scale scale;
  for (const ExperimentSpec* spec : Registry::global().all()) {
    const auto points = cartesian(spec->axes(scale));
    EXPECT_GE(points.size(), 1u) << spec->name;
  }
  // Incast fan-in grows with the topology.
  const ExperimentSpec* incast = Registry::global().find("incast");
  Scale full;
  full.k = 8;
  EXPECT_GT(cartesian(incast->axes(full)).size(),
            cartesian(incast->axes(scale)).size());
}

TEST(Param, TypedAccessorsAndId) {
  ParamSet p;
  p.set("subflows", "8");
  p.set("rate", "2.5");
  p.set("on", "true");
  p.set("protocol", "mmptcp");
  EXPECT_EQ(p.get_int("subflows"), 8);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 2.5);
  EXPECT_TRUE(p.get_bool("on"));
  EXPECT_EQ(p.get_protocol("protocol"), Protocol::kMmptcp);
  EXPECT_EQ(p.id(), "subflows=8/rate=2.5/on=true/protocol=mmptcp");
  EXPECT_THROW(p.get("absent"), ConfigError);
  EXPECT_THROW(p.get_int("protocol"), ConfigError);
}

TEST(Param, Cartesian) {
  const auto points =
      cartesian({{"a", {"1", "2"}}, {"b", {"x", "y", "z"}}});
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].id(), "a=1/b=x");   // first axis varies slowest
  EXPECT_EQ(points[1].id(), "a=1/b=y");
  EXPECT_EQ(points[5].id(), "a=2/b=z");
  EXPECT_EQ(cartesian({}).size(), 1u);
  EXPECT_THROW(cartesian({{"empty", {}}}), ConfigError);
}

TEST(Param, SeedListParsing) {
  EXPECT_EQ(parse_seed_list("7"), (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(parse_seed_list("1,2,5"), (std::vector<std::uint64_t>{1, 2, 5}));
  EXPECT_EQ(parse_seed_list("3..6"),
            (std::vector<std::uint64_t>{3, 4, 5, 6}));
  EXPECT_THROW(parse_seed_list(""), ConfigError);
  EXPECT_THROW(parse_seed_list("5..2"), ConfigError);
  EXPECT_THROW(parse_seed_list("abc"), ConfigError);
}

TEST(Json, EscapingAndNumbers) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-3.0), "-3");
  EXPECT_EQ(json_number(2.5), "2.5");

  JsonWriter w;
  w.begin_object();
  w.key("name").value("x");
  w.key("vals").begin_array().value(std::uint64_t{1}).value(2.5).end_array();
  w.key("ok").value(true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"name":"x","vals":[1,2.5],"ok":true})");
}

}  // namespace
}  // namespace mmptcp::exp
