#include "stats/metrics.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mmptcp {
namespace {

TEST(Metrics, FlowIdsAreDense) {
  Metrics m;
  const auto& a = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100,
                                    false, Time::zero());
  const auto& b = m.on_flow_started(Protocol::kMptcp, Addr{1}, Addr{2}, 0,
                                    true, Time::millis(5));
  EXPECT_EQ(a.flow_id, 0u);
  EXPECT_EQ(b.flow_id, 1u);
  EXPECT_EQ(m.flow_count(), 2u);
  EXPECT_THROW(m.record(2), InvariantError);
}

TEST(Metrics, CompletionAndFct) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100, false,
                                Time::millis(10));
  EXPECT_FALSE(rec.is_complete());
  m.on_flow_completed(rec.flow_id, Time::millis(35));
  EXPECT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.fct(), Time::millis(25));
  EXPECT_THROW(m.on_flow_completed(rec.flow_id, Time::millis(40)),
               InvariantError);
}

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kMmptcp, Addr{1}, Addr{2}, 100,
                                false, Time::zero());
  m.on_rto(rec.flow_id);
  m.on_rto(rec.flow_id);
  m.on_fast_retransmit(rec.flow_id);
  m.on_spurious_retransmit(rec.flow_id);
  m.on_syn_timeout(rec.flow_id);
  m.on_data_packet_sent(rec.flow_id);
  m.on_delivered(rec.flow_id, 70);
  m.on_subflow_used(rec.flow_id);
  EXPECT_EQ(rec.rto_count, 2u);
  EXPECT_EQ(rec.fast_retransmits, 1u);
  EXPECT_EQ(rec.spurious_retransmits, 1u);
  EXPECT_EQ(rec.syn_timeouts, 1u);
  EXPECT_EQ(rec.packets_sent, 1u);
  EXPECT_EQ(rec.delivered_bytes, 70u);
  EXPECT_EQ(rec.subflows_used, 1u);
}

TEST(Metrics, PhaseSwitchRecordedOnce) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kMmptcp, Addr{1}, Addr{2}, 0, true,
                                Time::zero());
  EXPECT_FALSE(rec.switched_phase());
  m.on_phase_switch(rec.flow_id, Time::millis(3));
  EXPECT_TRUE(rec.switched_phase());
  EXPECT_EQ(rec.phase_switch_at, Time::millis(3));
  EXPECT_THROW(m.on_phase_switch(rec.flow_id, Time::millis(4)),
               InvariantError);
}

TEST(Metrics, ShortFlowFctFiltersProtocolAndCompletion) {
  Metrics m;
  auto& t1 = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100, false,
                               Time::zero());
  m.on_flow_completed(t1.flow_id, Time::millis(10));
  auto& t2 = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100, false,
                               Time::zero());
  (void)t2;  // never completes
  auto& mp = m.on_flow_started(Protocol::kMptcp, Addr{1}, Addr{2}, 100,
                               false, Time::zero());
  m.on_flow_completed(mp.flow_id, Time::millis(50));
  auto& lg = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 0, true,
                               Time::zero());
  m.on_flow_completed(lg.flow_id, Time::millis(99));  // long: excluded

  const Summary s = m.short_flow_fct_ms(Protocol::kTcp);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
  EXPECT_DOUBLE_EQ(m.short_flow_completion_ratio(Protocol::kTcp), 0.5);
}

TEST(Metrics, LongFlowGoodput) {
  Metrics m;
  auto& lg = m.on_flow_started(Protocol::kMptcp, Addr{1}, Addr{2}, 0, true,
                               Time::zero());
  m.on_delivered(lg.flow_id, 12'500'000);  // 100 Mbit
  const Summary g = m.long_flow_goodput_mbps(Protocol::kMptcp,
                                             Time::seconds(2));
  EXPECT_EQ(g.count(), 1u);
  EXPECT_NEAR(g.mean(), 50.0, 1e-9);  // 100 Mbit over 2 s
}

TEST(Metrics, FlowsFilter) {
  Metrics m;
  m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100, false,
                    Time::zero());
  m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 0, true, Time::zero());
  EXPECT_EQ(m.flows().size(), 2u);
  EXPECT_EQ(m.flows([](const FlowRecord& r) { return r.long_flow; }).size(),
            1u);
}

TEST(Metrics, TotalAggregatesField) {
  Metrics m;
  auto& a = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 1, false,
                              Time::zero());
  auto& b = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 1, false,
                              Time::zero());
  m.on_rto(a.flow_id);
  m.on_rto(b.flow_id);
  m.on_rto(b.flow_id);
  EXPECT_EQ(m.total([](const FlowRecord& r) -> std::uint64_t {
    return r.rto_count;
  }),
            3u);
}

TEST(Metrics, EmptyGoodputAndRatios) {
  Metrics m;
  EXPECT_EQ(m.long_flow_goodput_mbps(Protocol::kTcp, Time::seconds(1)).count(),
            0u);
  EXPECT_DOUBLE_EQ(m.short_flow_completion_ratio(Protocol::kTcp), 1.0);
}

TEST(Protocol, Names) {
  EXPECT_EQ(to_string(Protocol::kTcp), "TCP");
  EXPECT_EQ(to_string(Protocol::kMptcp), "MPTCP");
  EXPECT_EQ(to_string(Protocol::kPacketScatter), "PS");
  EXPECT_EQ(to_string(Protocol::kMmptcp), "MMPTCP");
}

}  // namespace
}  // namespace mmptcp
