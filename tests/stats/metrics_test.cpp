#include "stats/metrics.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mmptcp {
namespace {

TEST(Metrics, FlowIdsAreDense) {
  Metrics m;
  const auto& a = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100,
                                    false, Time::zero());
  const auto& b = m.on_flow_started(Protocol::kMptcp, Addr{1}, Addr{2}, 0,
                                    true, Time::millis(5));
  EXPECT_EQ(a.flow_id, 0u);
  EXPECT_EQ(b.flow_id, 1u);
  EXPECT_EQ(m.flow_count(), 2u);
  EXPECT_THROW(m.record(2), InvariantError);
}

TEST(Metrics, CompletionAndFct) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100, false,
                                Time::millis(10));
  EXPECT_FALSE(rec.is_complete());
  m.on_flow_completed(rec.flow_id, Time::millis(35));
  EXPECT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.fct(), Time::millis(25));
  EXPECT_THROW(m.on_flow_completed(rec.flow_id, Time::millis(40)),
               InvariantError);
}

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kMmptcp, Addr{1}, Addr{2}, 100,
                                false, Time::zero());
  m.on_rto(rec.flow_id);
  m.on_rto(rec.flow_id);
  m.on_fast_retransmit(rec.flow_id);
  m.on_spurious_retransmit(rec.flow_id);
  m.on_syn_timeout(rec.flow_id);
  m.on_data_packet_sent(rec.flow_id);
  m.on_delivered(rec.flow_id, 70, Time::millis(1));
  m.on_subflow_used(rec.flow_id);
  EXPECT_EQ(rec.rto_count, 2u);
  EXPECT_EQ(rec.fast_retransmits, 1u);
  EXPECT_EQ(rec.spurious_retransmits, 1u);
  EXPECT_EQ(rec.syn_timeouts, 1u);
  EXPECT_EQ(rec.packets_sent, 1u);
  EXPECT_EQ(rec.delivered_bytes, 70u);
  EXPECT_EQ(rec.subflows_used, 1u);
}

TEST(Metrics, PhaseSwitchRecordedOnce) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kMmptcp, Addr{1}, Addr{2}, 0, true,
                                Time::zero());
  EXPECT_FALSE(rec.switched_phase());
  m.on_phase_switch(rec.flow_id, Time::millis(3));
  EXPECT_TRUE(rec.switched_phase());
  EXPECT_EQ(rec.phase_switch_at, Time::millis(3));
  EXPECT_THROW(m.on_phase_switch(rec.flow_id, Time::millis(4)),
               InvariantError);
}

TEST(Metrics, ShortFlowFctFiltersProtocolAndCompletion) {
  Metrics m;
  auto& t1 = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100, false,
                               Time::zero());
  m.on_flow_completed(t1.flow_id, Time::millis(10));
  auto& t2 = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100, false,
                               Time::zero());
  (void)t2;  // never completes
  auto& mp = m.on_flow_started(Protocol::kMptcp, Addr{1}, Addr{2}, 100,
                               false, Time::zero());
  m.on_flow_completed(mp.flow_id, Time::millis(50));
  auto& lg = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 0, true,
                               Time::zero());
  m.on_flow_completed(lg.flow_id, Time::millis(99));  // long: excluded

  const Summary s = m.short_flow_fct_ms(Protocol::kTcp);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
  EXPECT_DOUBLE_EQ(m.short_flow_completion_ratio(Protocol::kTcp), 0.5);
}

TEST(Metrics, LongFlowGoodput) {
  Metrics m;
  auto& lg = m.on_flow_started(Protocol::kMptcp, Addr{1}, Addr{2}, 0, true,
                               Time::zero());
  m.on_delivered(lg.flow_id, 12'500'000, Time::seconds(1));  // 100 Mbit
  const Summary g = m.long_flow_goodput_mbps(Protocol::kMptcp,
                                             Time::seconds(2));
  EXPECT_EQ(g.count(), 1u);
  EXPECT_NEAR(g.mean(), 50.0, 1e-9);  // 100 Mbit over 2 s
}

TEST(Metrics, FlowsFilter) {
  Metrics m;
  m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100, false,
                    Time::zero());
  m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 0, true, Time::zero());
  EXPECT_EQ(m.flows().size(), 2u);
  EXPECT_EQ(m.flows([](const FlowRecord& r) { return r.long_flow; }).size(),
            1u);
}

TEST(Metrics, TotalAggregatesField) {
  Metrics m;
  auto& a = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 1, false,
                              Time::zero());
  auto& b = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 1, false,
                              Time::zero());
  m.on_rto(a.flow_id);
  m.on_rto(b.flow_id);
  m.on_rto(b.flow_id);
  EXPECT_EQ(m.total([](const FlowRecord& r) -> std::uint64_t {
    return r.rto_count;
  }),
            3u);
}

TEST(Metrics, EmptyGoodputAndRatios) {
  Metrics m;
  EXPECT_EQ(m.long_flow_goodput_mbps(Protocol::kTcp, Time::seconds(1)).count(),
            0u);
  EXPECT_DOUBLE_EQ(m.short_flow_completion_ratio(Protocol::kTcp), 1.0);
}

TEST(Protocol, Names) {
  EXPECT_EQ(to_string(Protocol::kTcp), "TCP");
  EXPECT_EQ(to_string(Protocol::kMptcp), "MPTCP");
  EXPECT_EQ(to_string(Protocol::kPacketScatter), "PS");
  EXPECT_EQ(to_string(Protocol::kMmptcp), "MMPTCP");
}

// ---- Flow-time budget state machine ------------------------------------

TEST(FlowBudget, HandshakeThenTransferPartitionsFct) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100,
                                false, Time::zero());
  m.on_flow_established(rec.flow_id, Time::millis(1));
  m.on_flow_completed(rec.flow_id, Time::millis(5));
  EXPECT_EQ(rec.t_handshake, Time::millis(1));
  EXPECT_EQ(rec.t_transfer, Time::millis(4));
  EXPECT_EQ(rec.t_rto_stall, Time::zero());
  EXPECT_EQ(rec.t_fast_recovery, Time::zero());
  EXPECT_EQ(rec.budget_total(), rec.fct());
}

TEST(FlowBudget, SynStallChargesRtoStallNotHandshake) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100,
                                false, Time::zero());
  // SYN timer armed at start, fires at 3 ms: the whole wait is stall.
  m.on_rto_stall(rec.flow_id, Time::zero(), Time::millis(3));
  m.on_flow_established(rec.flow_id, Time::millis(4));
  m.on_flow_completed(rec.flow_id, Time::millis(10));
  EXPECT_EQ(rec.t_rto_stall, Time::millis(3));
  EXPECT_EQ(rec.t_handshake, Time::millis(1));
  EXPECT_EQ(rec.t_transfer, Time::millis(6));
  EXPECT_EQ(rec.budget_total(), rec.fct());
}

TEST(FlowBudget, OverlappingStallsClampAndNeverDoubleCount) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kMptcp, Addr{1}, Addr{2}, 100,
                                false, Time::zero());
  m.on_flow_established(rec.flow_id, Time::millis(1));
  // Subflow A armed its timer at 2 ms, fires at 6 ms.
  m.on_rto_stall(rec.flow_id, Time::millis(2), Time::millis(6));
  // Subflow B armed at 4 ms (inside A's stall), fires at 8 ms: only the
  // [6, 8) remainder may be charged again.
  m.on_rto_stall(rec.flow_id, Time::millis(4), Time::millis(8));
  m.on_flow_completed(rec.flow_id, Time::millis(9));
  EXPECT_EQ(rec.t_rto_stall, Time::millis(6));
  EXPECT_EQ(rec.t_transfer, Time::millis(2));
  EXPECT_EQ(rec.t_handshake, Time::millis(1));
  EXPECT_EQ(rec.budget_total(), rec.fct());
}

TEST(FlowBudget, RecoveryDepthHandlesConcurrentSubflows) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kMptcp, Addr{1}, Addr{2}, 100,
                                false, Time::zero());
  m.on_flow_established(rec.flow_id, Time::millis(1));
  m.on_recovery_enter(rec.flow_id, Time::millis(2));    // depth 0 -> 1
  m.on_recovery_enter(rec.flow_id, Time::millis(3));    // depth 1 -> 2
  m.on_recovery_exit(rec.flow_id, Time::millis(4));     // depth 2 -> 1
  m.on_recovery_exit(rec.flow_id, Time::millis(6));     // depth 1 -> 0
  m.on_flow_completed(rec.flow_id, Time::millis(9));
  EXPECT_EQ(rec.t_fast_recovery, Time::millis(4));  // [2, 6)
  EXPECT_EQ(rec.t_transfer, Time::millis(4));       // [1, 2) + [6, 9)
  EXPECT_EQ(rec.budget_total(), rec.fct());
}

TEST(FlowBudget, CompletionFreezesTheBudget) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kTcp, Addr{1}, Addr{2}, 100,
                                false, Time::zero());
  m.on_flow_established(rec.flow_id, Time::millis(1));
  m.on_flow_completed(rec.flow_id, Time::millis(5));
  const Time total = rec.budget_total();
  // Late hooks (a straggler subflow timer, a stale recovery exit) are
  // no-ops after completion.
  m.on_rto_stall(rec.flow_id, Time::millis(5), Time::millis(7));
  m.on_recovery_enter(rec.flow_id, Time::millis(7));
  m.on_recovery_exit(rec.flow_id, Time::millis(8));
  m.on_flow_established(rec.flow_id, Time::millis(8));
  EXPECT_EQ(rec.budget_total(), total);
  EXPECT_EQ(rec.budget_total(), rec.fct());
}

TEST(FlowBudget, TtfbAndReorderWaitOverlays) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kMmptcp, Addr{1}, Addr{2}, 100,
                                false, Time::millis(1));
  EXPECT_FALSE(rec.saw_first_byte());
  m.on_delivered(rec.flow_id, 0, Time::millis(2));  // pure ACK: no byte
  EXPECT_FALSE(rec.saw_first_byte());
  m.on_delivered(rec.flow_id, 40, Time::millis(3));
  m.on_delivered(rec.flow_id, 60, Time::millis(4));
  EXPECT_TRUE(rec.saw_first_byte());
  EXPECT_EQ(rec.ttfb(), Time::millis(2));  // 3 ms - 1 ms start
  m.on_reorder_wait(rec.flow_id, Time::micros(300));
  m.on_reorder_wait(rec.flow_id, Time::micros(200));
  EXPECT_EQ(rec.t_reorder_wait, Time::micros(500));
}

TEST(FlowBudget, ShortFlowSketchesFeedPerProtocol) {
  Metrics m;
  auto& rec = m.on_flow_started(Protocol::kMmptcp, Addr{1}, Addr{2}, 100,
                                false, Time::zero());
  m.on_flow_established(rec.flow_id, Time::millis(1));
  m.on_phase_switch(rec.flow_id, Time::millis(2));
  m.on_flow_completed(rec.flow_id, Time::millis(4));
  auto& lg = m.on_flow_started(Protocol::kMmptcp, Addr{1}, Addr{2}, 0, true,
                               Time::zero());
  m.on_flow_completed(lg.flow_id, Time::millis(8));  // long flow: excluded

  const FlowSketches& s = m.short_flow_sketches(Protocol::kMmptcp);
  EXPECT_EQ(s.fct_ms.count(), 1u);
  EXPECT_DOUBLE_EQ(s.fct_ms.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.handshake_ms.mean(), 1.0);
  EXPECT_DOUBLE_EQ(s.transfer_ms.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.ps_phase_ms.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.mptcp_phase_ms.mean(), 2.0);
  // No flows of another protocol: empty fallback, not a throw.
  EXPECT_EQ(m.short_flow_sketches(Protocol::kTcp).fct_ms.count(), 0u);
}

}  // namespace
}  // namespace mmptcp
