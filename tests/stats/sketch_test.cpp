#include "stats/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "util/check.h"
#include "util/summary.h"

namespace mmptcp {
namespace {

TEST(QuantileSketch, EmptySketchIsInert) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.bucket_count(), 0u);
}

TEST(QuantileSketch, RejectsNonFiniteAndQuantileBounds) {
  QuantileSketch s;
  EXPECT_THROW(s.add(std::nan("")), InvariantError);
  EXPECT_THROW(s.add(std::numeric_limits<double>::infinity()),
               InvariantError);
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), InvariantError);
  EXPECT_THROW(s.quantile(1.1), InvariantError);
}

TEST(QuantileSketch, ZeroAndNegativeGoToTheZeroBucket) {
  QuantileSketch s;
  s.add(0.0);
  s.add(-2.5);
  s.add(4.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), -2.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  // Two of three samples are non-positive: the median reports the
  // zero-bucket representative, clamped to the true minimum.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), -2.5);
  EXPECT_NEAR(s.quantile(1.0), 4.0, 4.0 * 2 * QuantileSketch::relative_error());
}

TEST(QuantileSketch, MomentsAreExact) {
  QuantileSketch s;
  Summary exact;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
    exact.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.sum(), exact.sum());
  EXPECT_DOUBLE_EQ(s.mean(), exact.mean());
  EXPECT_NEAR(s.stddev(), exact.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(QuantileSketch, SerializeIsInsertionOrderIndependent) {
  // Integer values: every partial sum is exact, so even the moment
  // fields cannot differ between insertion orders.
  std::vector<double> values;
  for (int i = 1; i <= 500; ++i) values.push_back(i);
  QuantileSketch forward;
  for (double v : values) forward.add(v);
  std::reverse(values.begin(), values.end());
  QuantileSketch backward;
  for (double v : values) backward.add(v);
  EXPECT_EQ(forward.serialize(), backward.serialize());
}

TEST(QuantileSketch, SplitThenMergeIsByteIdenticalToSingleShot) {
  // Simulates the --jobs sharding: the same sample stream cut into
  // shards and merged in stream order must reproduce the single-shot
  // sketch exactly.  Integer-valued samples keep the sums exact.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> dist(1, 1 << 20);
  std::vector<double> values;
  for (int i = 0; i < 10'000; ++i) values.push_back(dist(rng));

  QuantileSketch whole;
  for (double v : values) whole.add(v);

  QuantileSketch merged;
  for (std::size_t begin = 0; begin < values.size(); begin += 1'000) {
    QuantileSketch shard;
    for (std::size_t i = begin; i < begin + 1'000; ++i) shard.add(values[i]);
    merged.merge(shard);
  }
  EXPECT_EQ(whole.serialize(), merged.serialize());
  EXPECT_DOUBLE_EQ(whole.quantile(0.5), merged.quantile(0.5));
  EXPECT_DOUBLE_EQ(whole.quantile(0.99), merged.quantile(0.99));
}

TEST(QuantileSketch, MergeEmptyAndIntoEmpty) {
  QuantileSketch a;
  QuantileSketch empty;
  a.add(3.0);
  const std::string before = a.serialize();
  a.merge(empty);
  EXPECT_EQ(a.serialize(), before);
  QuantileSketch b;
  b.merge(a);
  EXPECT_EQ(b.serialize(), before);
}

TEST(QuantileSketch, LognormalQuantilesWithinDocumentedError) {
  // The acceptance pin: on >= 100k short-flow-like samples, sketch p50
  // and p99 match the exact values within the documented relative error
  // (plus a whisker for the nearest-rank vs interpolated definitions).
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(1.0, 0.8);  // FCT-shaped tail
  QuantileSketch sketch;
  Summary exact;
  for (int i = 0; i < 100'000; ++i) {
    const double v = dist(rng);
    sketch.add(v);
    exact.add(v);
  }
  const double tol = QuantileSketch::relative_error() + 1e-3;
  EXPECT_LT(tol, 0.005);  // the class documents sub-0.5% error
  const double p50 = exact.percentile(50);
  const double p99 = exact.percentile(99);
  EXPECT_NEAR(sketch.quantile(0.5), p50, p50 * tol);
  EXPECT_NEAR(sketch.quantile(0.99), p99, p99 * tol);
  // Exact side-channels stay exact at this size too.
  EXPECT_DOUBLE_EQ(sketch.min(), exact.min());
  EXPECT_DOUBLE_EQ(sketch.max(), exact.max());
  EXPECT_NEAR(sketch.mean(), exact.mean(), exact.mean() * 1e-12);
}

TEST(QuantileSketch, DeserializeIsTheExactInverseOfSerialize) {
  // The --shard/--merge path ships sketches as text and re-merges them on
  // another machine; the round trip must be lossless down to the bit so
  // merged aggregates stay byte-identical to the unsharded run.
  std::mt19937_64 rng(11);
  std::lognormal_distribution<double> dist(0.5, 1.2);
  QuantileSketch original;
  original.add(0.0);    // zero bucket
  original.add(-1.25);  // negative, exercises min < 0
  for (int i = 0; i < 5'000; ++i) original.add(dist(rng));

  const std::string text = original.serialize();
  const QuantileSketch copy = QuantileSketch::deserialize(text);
  EXPECT_EQ(copy.serialize(), text);
  EXPECT_EQ(copy.count(), original.count());
  EXPECT_DOUBLE_EQ(copy.sum(), original.sum());
  EXPECT_DOUBLE_EQ(copy.min(), original.min());
  EXPECT_DOUBLE_EQ(copy.max(), original.max());
  EXPECT_DOUBLE_EQ(copy.stddev(), original.stddev());
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(copy.quantile(q), original.quantile(q)) << q;
  }

  // Merging a deserialized copy behaves exactly like merging the live
  // sketch — the shard-merge path in one assertion.
  QuantileSketch via_live;
  via_live.add(7.0);
  QuantileSketch via_text;
  via_text.add(7.0);
  via_live.merge(original);
  via_text.merge(copy);
  EXPECT_EQ(via_live.serialize(), via_text.serialize());
}

TEST(QuantileSketch, EmptySketchRoundTrips) {
  const QuantileSketch empty;
  const std::string text = empty.serialize();
  const QuantileSketch copy = QuantileSketch::deserialize(text);
  EXPECT_EQ(copy.count(), 0u);
  EXPECT_EQ(copy.serialize(), text);
}

TEST(QuantileSketch, DeserializeRejectsGarbage) {
  EXPECT_THROW(QuantileSketch::deserialize(""), InvariantError);
  EXPECT_THROW(QuantileSketch::deserialize("not a sketch"), InvariantError);
  EXPECT_THROW(QuantileSketch::deserialize("qsketch1 n=x"), InvariantError);
  // Truncated bucket list.
  QuantileSketch s;
  s.add(1.0);
  s.add(2.0);
  const std::string text = s.serialize();
  EXPECT_THROW(QuantileSketch::deserialize(text.substr(0, text.size() - 2)),
               InvariantError);
}

TEST(QuantileSketch, QuantileClampsToObservedRange) {
  QuantileSketch s;
  s.add(10.0);
  s.add(10.0);
  s.add(10.0);
  // A single-value stream must report that value at every quantile even
  // though the bucket midpoint is off by up to half a bucket.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

TEST(QuantileSketch, TinyAndHugeMagnitudes) {
  // Bucket indexing must stay monotone across octaves far from 1.0.
  QuantileSketch s;
  const std::vector<double> values = {1e-9, 2e-9, 3e-6, 0.5, 7.0,
                                      1e3,  5e7,  9e12};
  for (double v : values) s.add(v);
  double prev = 0;
  for (double q : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double v = s.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  const double tol = 2 * QuantileSketch::relative_error();
  EXPECT_NEAR(s.quantile(0.0), 1e-9, 1e-9 * tol);
  EXPECT_NEAR(s.quantile(1.0), 9e12, 9e12 * tol);
}

}  // namespace
}  // namespace mmptcp
