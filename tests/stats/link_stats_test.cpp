#include "stats/link_stats.h"

#include <gtest/gtest.h>

#include "topo/fat_tree.h"

namespace mmptcp {
namespace {

class NullEndpoint final : public Endpoint {
 public:
  void handle_packet(const Packet&) override {}
};

TEST(LinkStats, AggregatesByLayer) {
  Simulation sim(1);
  FatTreeConfig cfg;
  cfg.k = 4;
  FatTree ft(sim, cfg);
  NullEndpoint ep;
  ft.host(15).register_token(1, &ep);
  // Push some inter-pod traffic through the fabric.
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.src = ft.host(0).addr();
    p.dst = ft.host(15).addr();
    p.sport = static_cast<std::uint16_t>(1000 + i);
    p.token = 1;
    p.payload = 1400;
    ft.host(0).send(p);
  }
  sim.scheduler().run();

  const auto stats = collect_layer_stats(ft.network());
  ASSERT_TRUE(stats.count(LinkLayer::kHostEdge));
  ASSERT_TRUE(stats.count(LinkLayer::kEdgeAgg));
  ASSERT_TRUE(stats.count(LinkLayer::kAggCore));
  // Host->edge carries all 50; edge->agg and agg->core carry 50 total in
  // the up direction (plus 0 down drops).
  EXPECT_EQ(stats.at(LinkLayer::kHostEdge).tx_packets, 100u);  // up + down
  EXPECT_EQ(stats.at(LinkLayer::kEdgeAgg).tx_packets, 100u);
  EXPECT_EQ(stats.at(LinkLayer::kAggCore).tx_packets, 100u);
  EXPECT_EQ(stats.at(LinkLayer::kAggCore).dropped_packets, 0u);
  EXPECT_DOUBLE_EQ(stats.at(LinkLayer::kAggCore).loss_rate(), 0.0);
}

TEST(LinkStats, LossRateCountsDrops) {
  Simulation sim(1);
  FatTreeConfig cfg;
  cfg.k = 4;
  cfg.queue = QueueLimits{2, 0};  // tiny switch queues force drops
  FatTree ft(sim, cfg);
  NullEndpoint ep;
  ft.host(15).register_token(1, &ep);
  // Two senders converge on one destination: the fan-in overflows the
  // destination edge's 2-packet down-port queue.
  for (int i = 0; i < 200; ++i) {
    for (const std::size_t src : {std::size_t(0), std::size_t(2)}) {
      Packet p;
      p.src = ft.host(src).addr();
      p.dst = ft.host(15).addr();
      p.sport = 777;
      p.token = 1;
      p.payload = 1400;
      ft.host(src).send(p);
    }
  }
  sim.scheduler().run();
  const auto stats = collect_layer_stats(ft.network());
  std::uint64_t drops = 0;
  for (const auto& [layer, s] : stats) drops += s.dropped_packets;
  EXPECT_GT(drops, 0u);
}

TEST(LinkStats, UtilizationMath) {
  LayerStats s;
  s.tx_bytes = 12'500'000;  // 100 Mbit
  s.capacity_bps_sum = 100'000'000;
  EXPECT_NEAR(s.utilization(Time::seconds(2)), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.utilization(Time::zero()), 0.0);
}

TEST(LinkStats, LossRateGuardsEmpty) {
  LayerStats s;
  EXPECT_DOUBLE_EQ(s.loss_rate(), 0.0);
  s.offered_packets = 10;
  s.dropped_packets = 1;
  EXPECT_DOUBLE_EQ(s.loss_rate(), 0.1);
}

}  // namespace
}  // namespace mmptcp
