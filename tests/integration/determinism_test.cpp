// Bit-level reproducibility: identical seeds produce identical runs.

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace mmptcp {
namespace {

ScenarioConfig cfg(std::uint64_t seed) {
  ScenarioConfig c;
  c.fat_tree.k = 4;
  c.transport.protocol = Protocol::kMmptcp;
  c.transport.subflows = 4;
  c.short_flow_count = 50;
  c.short_rate_per_host = 20.0;
  c.max_sim_time = Time::seconds(30);
  c.seed = seed;
  return c;
}

std::vector<double> fcts(const Scenario& sc) {
  std::vector<double> out;
  for (const auto* rec : sc.metrics().flows(
           [](const FlowRecord& r) { return !r.long_flow; })) {
    out.push_back(rec->is_complete() ? rec->fct().to_seconds() : -1.0);
  }
  return out;
}

TEST(Determinism, SameSeedSameTrace) {
  Scenario a(cfg(42)), b(cfg(42));
  a.run();
  b.run();
  EXPECT_EQ(a.sim().scheduler().executed(), b.sim().scheduler().executed());
  EXPECT_EQ(a.end_time(), b.end_time());
  EXPECT_EQ(fcts(a), fcts(b));
  EXPECT_EQ(a.short_flow_rtos(), b.short_flow_rtos());
}

TEST(Determinism, DifferentSeedsDiverge) {
  Scenario a(cfg(1)), b(cfg(2));
  a.run();
  b.run();
  EXPECT_NE(fcts(a), fcts(b));
}

TEST(Determinism, ProtocolsDoNotShareRngStreams) {
  // Changing only the protocol must not crash or hang; runs stay
  // reproducible per (seed, protocol) pair.
  ScenarioConfig c1 = cfg(7);
  c1.transport.protocol = Protocol::kTcp;
  Scenario a(c1), b(c1);
  a.run();
  b.run();
  EXPECT_EQ(fcts(a), fcts(b));
}

}  // namespace
}  // namespace mmptcp
