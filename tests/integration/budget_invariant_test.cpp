// The flow-time budget's core invariant, end to end: for every flow a
// real simulation completes — any protocol, with or without losses,
// recoveries and timer stalls — the four budget buckets partition the
// flow's lifetime exactly, with no gap, overlap, or rounding drift:
//     t_handshake + t_rto_stall + t_fast_recovery + t_transfer == fct()
// to the nanosecond tick.

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace mmptcp {
namespace {

ScenarioConfig budget_scenario(Protocol proto) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.fat_tree.oversubscription = 2;
  cfg.transport.protocol = proto;
  cfg.transport.subflows = 4;
  cfg.short_flow_count = 50;
  cfg.short_rate_per_host = 20.0;
  cfg.max_sim_time = Time::seconds(30);
  cfg.seed = 11;
  if (proto == Protocol::kDctcp || proto == Protocol::kMmptcpDctcp) {
    cfg.fat_tree.qdisc.kind = QdiscKind::kEcnRed;
    cfg.fat_tree.qdisc.ecn_threshold_packets = 20;
  }
  return cfg;
}

void expect_budget_partitions_fct(Protocol proto) {
  Scenario sc(budget_scenario(proto));
  sc.run();
  std::size_t completed = 0;
  for (const FlowRecord* rec :
       sc.metrics().flows([](const FlowRecord& r) { return true; })) {
    if (!rec->is_complete()) continue;
    ++completed;
    EXPECT_EQ(rec->budget_total(), rec->fct())
        << to_string(proto) << " flow " << rec->flow_id << ": handshake "
        << rec->t_handshake.to_string() << " + stall "
        << rec->t_rto_stall.to_string() << " + recovery "
        << rec->t_fast_recovery.to_string() << " + transfer "
        << rec->t_transfer.to_string() << " != fct "
        << rec->fct().to_string();
    EXPECT_EQ(rec->budget_state, BudgetState::kDone);
    // Overlays stay within physical bounds.
    if (rec->saw_first_byte()) {
      EXPECT_GE(rec->ttfb(), Time::zero());
      EXPECT_LE(rec->ttfb(), rec->fct());
    }
    EXPECT_GE(rec->t_reorder_wait, Time::zero());
  }
  EXPECT_GT(completed, 0u) << to_string(proto);
}

TEST(BudgetInvariant, Tcp) {
  expect_budget_partitions_fct(Protocol::kTcp);
}

TEST(BudgetInvariant, Dctcp) {
  expect_budget_partitions_fct(Protocol::kDctcp);
}

TEST(BudgetInvariant, Mptcp) {
  expect_budget_partitions_fct(Protocol::kMptcp);
}

TEST(BudgetInvariant, Mmptcp) {
  expect_budget_partitions_fct(Protocol::kMmptcp);
}

TEST(BudgetInvariant, MmptcpDctcp) {
  expect_budget_partitions_fct(Protocol::kMmptcpDctcp);
}

}  // namespace
}  // namespace mmptcp
