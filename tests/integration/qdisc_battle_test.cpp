// End-to-end checks of the qdisc subsystem in the incast battle the
// experiment engine's `incast_ecn` spec runs at larger scale: DCTCP over
// an ECN-marking fabric keeps switch queues shallower than drop-tail
// TCP, and strict-priority bands let MMPTCP's PS-phase mice jump the
// elephants' standing queue.

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace mmptcp {
namespace {

IncastConfig battle_config() {
  IncastConfig cfg;
  cfg.senders = 8;
  cfg.long_senders = 2;
  cfg.short_start = Time::millis(300);  // elephants build their queue first
  cfg.max_sim_time = Time::seconds(15);
  cfg.seed = 3;
  return cfg;
}

TEST(QdiscBattle, DctcpKeepsQueuesShallowerThanDropTailTcp) {
  IncastConfig droptail = battle_config();
  droptail.transport.protocol = Protocol::kTcp;
  const IncastResult dt = run_incast(droptail);
  EXPECT_EQ(dt.ecn_marked, 0u);  // no marking qdisc, no ECN anywhere

  IncastConfig ecn = battle_config();
  ecn.transport.protocol = Protocol::kDctcp;
  ecn.fat_tree.qdisc.kind = QdiscKind::kEcnRed;
  ecn.fat_tree.qdisc.ecn_threshold_packets = 20;
  const IncastResult dc = run_incast(ecn);

  EXPECT_GT(dc.ecn_marked, 0u);  // ECT round-tripped through the fabric
  EXPECT_EQ(dc.completion_ratio, 1.0);
  EXPECT_LT(dc.peak_queue_packets, dt.peak_queue_packets);
  if (dt.completion_ratio == 1.0 && dt.fct_ms.count() > 0 &&
      dc.fct_ms.count() > 0) {
    EXPECT_LT(dc.fct_ms.mean(), dt.fct_ms.mean());
  }
}

TEST(QdiscBattle, PriorityBandsImproveShortFlowFctUnderMmptcp) {
  // Four elephants instead of battle_config's two: with only two, some
  // seeds leave the receiver downlink with no standing queue during the
  // burst and both qdiscs measure identical FCTs.
  IncastConfig droptail = battle_config();
  droptail.long_senders = 4;
  droptail.transport.protocol = Protocol::kMmptcp;
  const IncastResult dt = run_incast(droptail);

  IncastConfig prio = battle_config();
  prio.long_senders = 4;
  prio.transport.protocol = Protocol::kMmptcp;
  prio.fat_tree.qdisc.kind = QdiscKind::kPriority;
  prio.fat_tree.qdisc.bands = 2;
  prio.fat_tree.qdisc.classifier = PrioClassifierKind::kPsFlag;
  const IncastResult pr = run_incast(prio);

  ASSERT_GT(dt.fct_ms.count(), 0u);
  ASSERT_GT(pr.fct_ms.count(), 0u);
  EXPECT_EQ(pr.completion_ratio, 1.0);
  EXPECT_LT(pr.fct_ms.mean(), dt.fct_ms.mean());
}

/// The PR 5 acceptance point: at a fan-in past the drop-tail cap, the
/// ECN-aware MMPTCP (per-subflow DCTCP alpha on every subflow, scatter
/// flow included) must beat ECN-blind MMPTCP on mean short-flow FCT AND
/// peak queue on every gated seed, while the elephants keep goodput.
TEST(QdiscBattle, MmptcpDctcpWinsTheHighFanInBattleOnEverySeed) {
  for (std::uint64_t seed : {1u, 3u}) {
    IncastConfig blind = battle_config();
    blind.seed = seed;
    blind.senders = 24;
    blind.long_senders = 4;
    blind.transport.protocol = Protocol::kMmptcp;
    blind.transport.subflows = 8;
    // Marking fabric for both: non-ECT traffic just sees drop-tail.
    blind.fat_tree.qdisc.kind = QdiscKind::kEcnRed;
    blind.fat_tree.qdisc.ecn_threshold_packets = 20;
    const IncastResult bl = run_incast(blind);
    EXPECT_EQ(bl.ecn_marked, 0u) << "ECN-blind family must not set ECT";

    IncastConfig aware = blind;
    aware.transport.protocol = Protocol::kMmptcpDctcp;
    aware.transport.subflows = 2;  // the lean ECN pool the specs use
    const IncastResult aw = run_incast(aware);

    ASSERT_GT(bl.fct_ms.count(), 0u);
    ASSERT_GT(aw.fct_ms.count(), 0u);
    EXPECT_GT(aw.ecn_marked, 0u);
    EXPECT_EQ(aw.completion_ratio, 1.0);
    EXPECT_LT(aw.fct_ms.mean(), bl.fct_ms.mean()) << "seed " << seed;
    EXPECT_LT(aw.peak_queue_packets, bl.peak_queue_packets)
        << "seed " << seed;
    // The elephants win too: no RTO-silenced subflows, so their goodput
    // must not fall below the blind family's.
    ASSERT_GT(aw.long_goodput_mbps.count(), 0u);
    ASSERT_GT(bl.long_goodput_mbps.count(), 0u);
    EXPECT_GE(aw.long_goodput_mbps.mean(), bl.long_goodput_mbps.mean())
        << "seed " << seed;
  }
}

TEST(QdiscBattle, DelayedBurstStillCompletesWithoutElephants) {
  // short_start + the completion poll must compose with long_senders = 0.
  IncastConfig cfg;
  cfg.senders = 4;
  cfg.short_start = Time::millis(50);
  cfg.transport.protocol = Protocol::kTcp;
  const IncastResult res = run_incast(cfg);
  EXPECT_EQ(res.completion_ratio, 1.0);
  EXPECT_GT(res.makespan.to_millis(), 50.0);
}

}  // namespace
}  // namespace mmptcp
