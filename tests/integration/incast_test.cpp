// Burst (incast) tolerance — the paper's objective (3).

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace mmptcp {
namespace {

IncastConfig make(Protocol proto, std::uint32_t senders) {
  IncastConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.fat_tree.oversubscription = 4;  // 64 hosts
  cfg.transport.protocol = proto;
  cfg.transport.subflows = 4;
  cfg.senders = senders;
  cfg.bytes = 70 * 1024;
  return cfg;
}

TEST(Incast, AllProtocolsEventuallyDeliverEverything) {
  for (Protocol proto : {Protocol::kTcp, Protocol::kMptcp,
                         Protocol::kPacketScatter, Protocol::kMmptcp}) {
    const IncastResult r = run_incast(make(proto, 16));
    EXPECT_DOUBLE_EQ(r.completion_ratio, 1.0) << to_string(proto);
    EXPECT_EQ(r.fct_ms.count(), 16u) << to_string(proto);
  }
}

TEST(Incast, MakespanIsAtLeastTheSerialisationBound) {
  // 16 senders x 70 KB through one 100 Mb/s access link.
  const IncastResult r = run_incast(make(Protocol::kMmptcp, 16));
  const double bound_ms = 16.0 * 70 * 1024 * 8 / 100e6 * 1e3;
  EXPECT_GE(r.makespan.to_millis(), bound_ms * 0.9);
}

TEST(Incast, LargerFanInTakesLonger) {
  const IncastResult small = run_incast(make(Protocol::kMmptcp, 8));
  const IncastResult big = run_incast(make(Protocol::kMmptcp, 32));
  EXPECT_GT(big.makespan, small.makespan);
  EXPECT_DOUBLE_EQ(big.completion_ratio, 1.0);
}

TEST(Incast, MmptcpToleratesBurstsAtLeastAsWellAsMptcp) {
  const IncastResult mptcp = run_incast(make(Protocol::kMptcp, 32));
  const IncastResult mm = run_incast(make(Protocol::kMmptcp, 32));
  EXPECT_LE(mm.rtos + mm.syn_timeouts, mptcp.rtos + mptcp.syn_timeouts);
}

TEST(Incast, SendersOutsideReceiverRack) {
  // Sanity of the harness itself: sender count is bounded by topology.
  IncastConfig cfg = make(Protocol::kTcp, 1000);
  EXPECT_THROW(run_incast(cfg), ConfigError);
}

}  // namespace
}  // namespace mmptcp
