// Property tests under adversarial random loss: whatever the drop
// pattern, a completed flow delivered every byte exactly once, and flows
// complete whenever loss stops short of killing the connection.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "util/rng.h"

namespace mmptcp {
namespace {

using testing::MiniFatTree;

struct Param {
  Protocol proto;
  double loss;
  std::uint64_t seed;
};

class RandomLoss : public ::testing::TestWithParam<Param> {};

TEST_P(RandomLoss, CompletedFlowsConserveBytes) {
  const Param p = GetParam();
  MiniFatTree net(FatTreeConfig{}, p.seed);
  // Bernoulli loss on every host NIC: data drops on the senders' side,
  // ACK drops on the receivers' side.
  auto rng = std::make_shared<Rng>(p.seed * 7919 + 13);
  const double rate = p.loss;
  auto bernoulli_drop = [rng, rate](const Packet& pkt, std::uint64_t) {
    // Never drop SYNs: SYN give-up would legitimately fail the flow and
    // this property targets the data path.
    if (pkt.is_syn()) return false;
    return rng->bernoulli(rate);
  };
  for (std::size_t h = 0; h < net.ft.host_count(); ++h) {
    net.ft.host(h).port(0).set_drop_filter(bernoulli_drop);
  }

  TransportConfig cfg;
  cfg.protocol = p.proto;
  cfg.subflows = 4;
  cfg.tcp.rto.min_rto = Time::millis(100);
  cfg.tcp.rto.initial_rto = Time::millis(100);
  cfg.tcp.conn_timeout = Time::millis(200);

  std::vector<ClientFlow*> flows;
  for (int i = 0; i < 6; ++i) {
    flows.push_back(&net.flow(i, 15 - i, cfg, 40 * 1024 + i * 1317));
  }
  net.run(Time::seconds(120));

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const FlowRecord& rec = net.record(*flows[i]);
    ASSERT_TRUE(rec.is_complete())
        << to_string(p.proto) << " loss=" << p.loss << " flow " << i;
    ASSERT_EQ(rec.delivered_bytes, rec.request_bytes)
        << to_string(p.proto) << " loss=" << p.loss << " flow " << i;
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return to_string(info.param.proto) + "_loss" +
         std::to_string(int(info.param.loss * 100)) + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomLoss,
    ::testing::Values(Param{Protocol::kTcp, 0.01, 1},
                      Param{Protocol::kTcp, 0.05, 2},
                      Param{Protocol::kMptcp, 0.01, 3},
                      Param{Protocol::kMptcp, 0.05, 4},
                      Param{Protocol::kPacketScatter, 0.01, 5},
                      Param{Protocol::kPacketScatter, 0.05, 6},
                      Param{Protocol::kMmptcp, 0.01, 7},
                      Param{Protocol::kMmptcp, 0.05, 8},
                      Param{Protocol::kMmptcp, 0.10, 9}),
    param_name);

TEST(RandomLossReceiver, DuplicatesNeverDoubleCount) {
  // Heavy ACK loss forces many retransmissions of data the receiver
  // already holds; delivered_bytes must still match exactly.
  MiniFatTree net;
  auto rng = std::make_shared<Rng>(99);
  net.ft.host(15).port(0).set_drop_filter(
      [rng](const Packet& pkt, std::uint64_t) {
        return pkt.payload == 0 && !pkt.is_syn() && rng->bernoulli(0.3);
      });
  TransportConfig cfg;
  cfg.protocol = Protocol::kMmptcp;
  cfg.tcp.rto.min_rto = Time::millis(100);
  cfg.tcp.rto.initial_rto = Time::millis(100);
  auto& flow = net.flow(0, 15, cfg, 200 * 1024);
  net.run(Time::seconds(60));
  const FlowRecord& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 200u * 1024u);
  EXPECT_GT(rec.spurious_retransmits, 0u);  // the dup path was exercised
}

}  // namespace
}  // namespace mmptcp
