// Cross-module invariants: byte conservation, routing cleanliness and
// delivery exactness for every protocol under contention.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/scenario.h"

namespace mmptcp {
namespace {

class EveryProtocol : public ::testing::TestWithParam<Protocol> {};

TEST_P(EveryProtocol, ContendedMixDeliversEveryByteExactlyOnce) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.fat_tree.oversubscription = 2;
  cfg.transport.protocol = GetParam();
  cfg.transport.subflows = 4;
  cfg.short_flow_count = 80;
  cfg.short_rate_per_host = 20.0;
  // Generous horizon: a worst-case RTO backoff cascade (1+2+4+8+16+32 s)
  // must still fit before the deadline.
  cfg.max_sim_time = Time::seconds(200);
  cfg.seed = 5;
  Scenario sc(cfg);
  sc.run();
  EXPECT_EQ(sc.shorts_started(), 80u);
  for (const auto* rec : sc.metrics().flows(
           [](const FlowRecord& r) { return !r.long_flow; })) {
    ASSERT_TRUE(rec->is_complete())
        << to_string(GetParam()) << " flow " << rec->flow_id;
    ASSERT_EQ(rec->delivered_bytes, rec->request_bytes)
        << to_string(GetParam()) << " flow " << rec->flow_id;
  }
}

TEST_P(EveryProtocol, NoUnroutablePacketsEver) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.transport.protocol = GetParam();
  cfg.short_flow_count = 40;
  cfg.short_rate_per_host = 30.0;
  cfg.max_sim_time = Time::seconds(30);
  Scenario sc(cfg);
  sc.run();
  for (std::size_t i = 0; i < sc.network().switch_count(); ++i) {
    EXPECT_EQ(sc.network().node_switch(i).unroutable(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFour, EveryProtocol,
    ::testing::Values(Protocol::kTcp, Protocol::kMptcp,
                      Protocol::kPacketScatter, Protocol::kMmptcp),
    [](const ::testing::TestParamInfo<Protocol>& info) {
      return to_string(info.param);
    });

TEST(EndToEnd, MixedProtocolsCoexistOnOneFabric) {
  // The paper's deployment claim: MMPTCP coexists with TCP and MPTCP.
  testing::MiniFatTree net;
  TransportConfig tcp_cfg;
  tcp_cfg.protocol = Protocol::kTcp;
  TransportConfig mptcp_cfg;
  mptcp_cfg.protocol = Protocol::kMptcp;
  mptcp_cfg.subflows = 4;
  TransportConfig mm_cfg;
  mm_cfg.protocol = Protocol::kMmptcp;
  mm_cfg.subflows = 4;

  auto& f1 = net.flow(0, 15, tcp_cfg, 400 * 1024);
  auto& f2 = net.flow(1, 14, mptcp_cfg, 400 * 1024);
  auto& f3 = net.flow(2, 13, mm_cfg, 400 * 1024);
  net.run(Time::seconds(30));
  EXPECT_TRUE(net.record(f1).is_complete());
  EXPECT_TRUE(net.record(f2).is_complete());
  EXPECT_TRUE(net.record(f3).is_complete());
}

TEST(EndToEnd, SharedBottleneckIsSplitReasonably) {
  // Three flows of different protocols from the same edge to the same
  // destination edge: all should make progress (no starvation).
  testing::MiniFatTree net;
  TransportConfig tcp_cfg;
  tcp_cfg.protocol = Protocol::kTcp;
  TransportConfig mm_cfg;
  mm_cfg.protocol = Protocol::kMmptcp;
  mm_cfg.subflows = 4;
  auto& f1 = net.flow(0, 14, tcp_cfg, 0, /*long=*/true);
  auto& f2 = net.flow(1, 15, mm_cfg, 0, /*long=*/true);
  net.run(Time::seconds(3));
  const auto d1 = net.record(f1).delivered_bytes;
  const auto d2 = net.record(f2).delivered_bytes;
  EXPECT_GT(d1, 1'000'000u);
  EXPECT_GT(d2, 1'000'000u);
}

TEST(EndToEnd, DemuxMissesStayNegligible) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.transport.protocol = Protocol::kMmptcp;
  cfg.short_flow_count = 60;
  cfg.short_rate_per_host = 20.0;
  cfg.max_sim_time = Time::seconds(30);
  Scenario sc(cfg);
  sc.run();
  std::uint64_t misses = 0, delivered = 0;
  for (std::size_t i = 0; i < sc.host_count(); ++i) {
    misses += sc.network().host(i).demux_misses();
    delivered += sc.network().host(i).delivered_packets();
  }
  EXPECT_GT(delivered, 0u);
  // Late segments for GC'd endpoints are possible but must be rare.
  EXPECT_LT(double(misses), 0.001 * double(delivered) + 5.0);
}

}  // namespace
}  // namespace mmptcp
