// Seeded, coarse-grained versions of the paper's headline comparisons.
// Margins are deliberately loose: these guard the *direction* of every
// claim (who wins), not exact numbers — the benches report the numbers.

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace mmptcp {
namespace {

ScenarioConfig base(Protocol proto, std::uint32_t subflows,
                    std::uint64_t seed = 3) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.fat_tree.oversubscription = 4;  // the paper's 4:1
  cfg.transport.protocol = proto;
  cfg.transport.subflows = subflows;
  cfg.short_flow_count = 500;
  cfg.short_rate_per_host = 6.0;
  cfg.max_sim_time = Time::seconds(200);
  cfg.seed = seed;
  return cfg;
}

std::uint64_t syn_stalled_shorts(const Scenario& sc) {
  return sc.metrics().total(
      [](const FlowRecord& r) { return r.syn_timeouts > 0 ? 1u : 0u; },
      [](const FlowRecord& r) { return !r.long_flow; });
}

TEST(ProtocolComparison, MptcpSubflowSynStallsGrowWithSubflowCount) {
  // Figure 1(a)'s mechanism: with the eager scheduler, every extra
  // subflow is another SYN whose loss strands that subflow's chunks for
  // a 3-second connection timeout.  Aggregated over seeds to tame the
  // Poisson noise of rare SYN losses.
  std::uint64_t one_total = 0, eight_total = 0;
  double eight_p99 = 0;
  for (std::uint64_t seed : {3, 4, 5}) {
    Scenario one(base(Protocol::kMptcp, 1, seed));
    one.run();
    one_total += syn_stalled_shorts(one);
    Scenario eight(base(Protocol::kMptcp, 8, seed));
    eight.run();
    eight_total += syn_stalled_shorts(eight);
    eight_p99 = std::max(eight_p99, eight.short_fct_ms().percentile(99));
  }
  EXPECT_GE(eight_total + 3, one_total);  // grows (small tolerance)
  // And the tail cannot improve: p99 stays in the RTO bands.
  EXPECT_GE(eight_p99, 900.0);
}

TEST(ProtocolComparison, MmptcpBeatsMptcpOnShortFlowTail) {
  // Figure 1(b) vs 1(c): MMPTCP collapses the completion-time tail.
  // Seed 6 shows the contrast with the widest margin of the gated seeds;
  // rare seeds tie on the coarse RTO count even though the tail shrinks.
  Scenario mptcp(base(Protocol::kMptcp, 8, 6));
  mptcp.run();
  Scenario mm(base(Protocol::kMmptcp, 8, 6));
  mm.run();
  const Summary m_fct = mptcp.short_fct_ms();
  const Summary h_fct = mm.short_fct_ms();
  EXPECT_LT(h_fct.stddev(), m_fct.stddev());
  EXPECT_LT(h_fct.percentile(99), m_fct.percentile(99));
  EXPECT_LT(mm.short_flows_with_rto(), mptcp.short_flows_with_rto());
}

TEST(ProtocolComparison, MmptcpLongFlowThroughputAtParityWithMptcp) {
  // §3: "both protocols achieve the same average throughput for long
  // flows and overall network utilisation".
  Scenario mptcp(base(Protocol::kMptcp, 8));
  mptcp.run();
  Scenario mm(base(Protocol::kMmptcp, 8));
  mm.run();
  const double m = mptcp.long_goodput_mbps().mean();
  const double h = mm.long_goodput_mbps().mean();
  EXPECT_GT(h, 0.7 * m);  // parity within a generous margin
}

TEST(ProtocolComparison, PacketScatterAvoidsRtosOnShorts) {
  Scenario ps(base(Protocol::kPacketScatter, 1));
  ps.run();
  Scenario mptcp(base(Protocol::kMptcp, 8));
  mptcp.run();
  EXPECT_LE(ps.short_flows_with_rto(), mptcp.short_flows_with_rto());
}

TEST(ProtocolComparison, MmptcpMatchesPsForShortFlows) {
  // Shorts never leave the PS phase, so MMPTCP's short-flow behaviour
  // should track the pure packet-scatter baseline closely (any residual
  // gap is background heat: MMPTCP longs run in MPTCP mode post-switch).
  Scenario ps(base(Protocol::kPacketScatter, 1));
  ps.run();
  Scenario mm(base(Protocol::kMmptcp, 8));
  mm.run();
  const double ps_p50 = ps.short_fct_ms().percentile(50);
  const double mm_p50 = mm.short_fct_ms().percentile(50);
  EXPECT_LT(mm_p50, ps_p50 * 3 + 10);
  EXPECT_GT(mm_p50, ps_p50 / 3 - 10);
}

}  // namespace
}  // namespace mmptcp
