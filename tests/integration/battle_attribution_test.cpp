// The analysis pipeline against the real battle_ecn experiment: at the
// paper's fan-in-24 shock, ECN-aware MMPTCP wins the battle, and the
// report's decomposition attributes the margin over the multipath
// runner-up to reduced RTO stalls and reduced queueing (transfer) time.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "exp/analyze/analyze.h"
#include "exp/json.h"
#include "exp/registry.h"
#include "exp/runner.h"
#include "exp/sink.h"

namespace mmptcp::exp {
namespace {

const JsonValue* find_contender(const JsonValue& verdict,
                                const std::string& value) {
  for (const JsonValue& entry : verdict.at("ranking").items()) {
    if (entry.at("value").as_string() == value) return &entry;
  }
  return nullptr;
}

TEST(BattleAttribution, MmptcpDctcpWinsFanIn24OnStallAndQueueing) {
  register_builtin_experiments();
  const ExperimentSpec* spec = Registry::global().find("battle_ecn");
  ASSERT_NE(spec, nullptr);

  const std::string dir = ::testing::TempDir() + "battle_attr";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  SweepOptions options;
  options.seeds = {1};
  options.jobs = 4;
  options.out_dir = dir;
  const auto records = run_sweep(*spec, Scale{}, options);
  for (const RunRecord& rec : records) {
    ASSERT_TRUE(rec.outcome.ok) << rec.id << ": " << rec.outcome.error;
  }
  write_file(dir + "/BENCH_battle_ecn.json",
             to_json(*spec, effective_scale(*spec, Scale{}), records));

  const AnalysisReport report =
      analyze_results(dir + "/BENCH_battle_ecn.json", "");
  const JsonValue doc = json_parse(report.json, "report");
  const auto& verdicts = doc.at("verdicts").items();
  ASSERT_EQ(verdicts.size(), 1u);  // one context: the fan-in-24 shock
  const JsonValue& v = verdicts[0];
  EXPECT_EQ(v.at("axis").as_string(), "variant");
  EXPECT_NE(v.at("context").as_string().find("senders=24"),
            std::string::npos);
  EXPECT_EQ(v.at("winner").as_string(), "mmptcp-dctcp");

  // Attribution vs the multipath contender (mptcp-dctcp): the win comes
  // from eliminating RTO stalls and the queue-loss-induced head-of-line
  // reorder waits, exactly the paper's mechanism.
  const JsonValue* winner = find_contender(v, "mmptcp-dctcp");
  const JsonValue* mptcp = find_contender(v, "mptcp-dctcp");
  ASSERT_NE(winner, nullptr);
  ASSERT_NE(mptcp, nullptr);
  EXPECT_LT(winner->at("fct_ms").as_number(),
            mptcp->at("fct_ms").as_number());
  EXPECT_LT(winner->at("rto_stall_ms").as_number(),
            mptcp->at("rto_stall_ms").as_number());
  EXPECT_LT(winner->at("reorder_wait_ms").as_number(),
            mptcp->at("reorder_wait_ms").as_number());
  EXPECT_LT(winner->at("p99_ms").as_number(),
            mptcp->at("p99_ms").as_number());

  // Decomposition shares: the winner's budget is almost all productive
  // transfer; the multipath contender stalls away a large share.
  for (const JsonValue& row : doc.at("decomposition").items()) {
    const std::string& group = row.at("group").as_string();
    if (group.find("variant=mmptcp-dctcp/") == 0) {
      EXPECT_LT(row.at("rto_stall_share_pct").as_number(), 5.0);
      EXPECT_GT(row.at("transfer_share_pct").as_number(), 80.0);
    } else if (group.find("variant=mptcp-dctcp/") == 0) {
      EXPECT_GT(row.at("rto_stall_share_pct").as_number(), 20.0);
    }
  }

  // The narrative tells that story in words.
  const std::string& narrative = v.at("narrative").as_string();
  EXPECT_NE(narrative.find("mmptcp-dctcp wins"), std::string::npos);
  EXPECT_NE(narrative.find("RTO stall"), std::string::npos);
  EXPECT_NE(narrative.find("transfer/queueing"), std::string::npos);
}

}  // namespace
}  // namespace mmptcp::exp
