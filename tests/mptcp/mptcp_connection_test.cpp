// MPTCP connection behaviour on a real FatTree.

#include "mptcp/mptcp_connection.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace mmptcp {
namespace {

using testing::MiniFatTree;

TransportConfig mptcp_cfg(std::uint32_t subflows) {
  TransportConfig cfg;
  cfg.protocol = Protocol::kMptcp;
  cfg.subflows = subflows;
  return cfg;
}

TEST(MptcpConnection, ShortFlowCompletesAndDeliversExactly) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, mptcp_cfg(4), 70 * 1024);
  net.run(Time::seconds(20));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 70u * 1024u);
}

class SubflowCount : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SubflowCount, FlowCompletesWithNSubflows) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, mptcp_cfg(GetParam()), 200 * 1024);
  net.run(Time::seconds(30));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete()) << "subflows=" << GetParam();
  EXPECT_EQ(rec.delivered_bytes, 200u * 1024u);
  EXPECT_GE(rec.subflows_used, 1u);
  EXPECT_LE(rec.subflows_used, GetParam());
  EXPECT_EQ(flow.mptcp()->subflow_count(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(OneToEight, SubflowCount,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(MptcpConnection, LongFlowUsesAllSubflows) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, mptcp_cfg(4), 0, /*long_flow=*/true);
  net.run(Time::seconds(3));
  MptcpConnection* conn = flow.mptcp();
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(net.record(flow).subflows_used, 4u);
  for (std::size_t i = 0; i < conn->subflow_count(); ++i) {
    EXPECT_GT(conn->subflow(i).snd_una(), 0u) << "subflow " << i;
  }
  EXPECT_GT(net.record(flow).delivered_bytes, 1'000'000u);
}

TEST(MptcpConnection, MappingsPartitionTheStream) {
  // Receiver-side delivered bytes exactly equal the request: no byte is
  // delivered twice (connection-level reassembly dedupes) and none lost.
  MiniFatTree net;
  std::vector<ClientFlow*> flows;
  for (int i = 0; i < 8; ++i) {
    flows.push_back(&net.flow(i, 15 - i, mptcp_cfg(8), 150 * 1024));
  }
  net.run(Time::seconds(30));
  for (ClientFlow* f : flows) {
    const auto& rec = net.record(*f);
    ASSERT_TRUE(rec.is_complete());
    EXPECT_EQ(rec.delivered_bytes, 150u * 1024u);
  }
}

TEST(MptcpConnection, DataAckAdvancesSenderCompletion) {
  MiniFatTree net;
  auto& flow = net.flow(0, 12, mptcp_cfg(2), 50 * 1024);
  net.run(Time::seconds(20));
  MptcpConnection* conn = flow.mptcp();
  EXPECT_TRUE(conn->sender_complete());
  EXPECT_EQ(conn->data_una(), 50u * 1024u);
  EXPECT_EQ(conn->data_next(), 50u * 1024u);
}

TEST(MptcpConnection, ServerCreatesSubflowsOnJoin) {
  MiniFatTree net;
  auto& flow = net.flow(2, 13, mptcp_cfg(5), 0, /*long_flow=*/true);
  net.run(Time::seconds(2));
  (void)flow;
  // The server side of the connection must have materialised one subflow
  // socket per JOIN (plus the initial one).
  EXPECT_EQ(net.sinks.total_accepted(), 1u);
}

TEST(MptcpConnection, SubflowsShareOneToken) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, mptcp_cfg(4), 0, /*long_flow=*/true);
  net.run(Time::millis(500));
  MptcpConnection* conn = flow.mptcp();
  for (std::size_t i = 0; i < conn->subflow_count(); ++i) {
    EXPECT_EQ(conn->subflow(i).token(), conn->token());
  }
}

TEST(MptcpConnection, UncoupledModeRunsPlainNewRenoPerSubflow) {
  MiniFatTree net;
  TransportConfig cfg = mptcp_cfg(4);
  cfg.coupled = false;
  auto& flow = net.flow(0, 15, cfg, 300 * 1024);
  net.run(Time::seconds(20));
  EXPECT_TRUE(net.record(flow).is_complete());
}

TEST(MptcpConnection, ZeroByteFlowCompletes) {
  // DATA_FIN-only connection: total == 0 means nothing to map; the flow
  // can never complete at the receiver (no DATA_FIN carrier), so we use
  // 1 byte as the smallest meaningful MPTCP flow.
  MiniFatTree net;
  auto& flow = net.flow(0, 9, mptcp_cfg(2), 1);
  net.run(Time::seconds(5));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 1u);
}

TEST(MptcpConnection, ConfigValidation) {
  MiniFatTree net;
  TransportConfig cfg = mptcp_cfg(0);
  EXPECT_THROW(net.flow(0, 15, cfg, 1000), ConfigError);
}

}  // namespace
}  // namespace mmptcp
