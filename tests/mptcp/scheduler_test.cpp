// The data-to-subflow scheduler: eager round-robin (the paper-era model
// whose stall pathology drives Figure 1) vs the modern pull scheduler,
// and the connection-level window shared by all subflows.

#include <gtest/gtest.h>

#include "../test_util.h"

namespace mmptcp {
namespace {

using testing::MiniFatTree;

TransportConfig cfg(SchedulerKind sched, std::uint32_t subflows = 4) {
  TransportConfig c;
  c.protocol = Protocol::kMptcp;
  c.subflows = subflows;
  c.scheduler = sched;
  c.tcp.rto.min_rto = Time::millis(200);
  c.tcp.rto.initial_rto = Time::millis(200);
  c.tcp.conn_timeout = Time::millis(400);
  return c;
}

/// Drops every JOIN SYN (subflow > 0 never establishes).
void block_joins(Host& host) {
  host.port(0).set_drop_filter([](const Packet& pkt, std::uint64_t) {
    return pkt.is_syn() && pkt.has(pkt_flags::kJoin);
  });
}

TEST(Scheduler, EagerStallsOnAnUnconnectableSubflow) {
  // With joins blocked, chunks round-robined onto subflows 1..3 wait for
  // handshakes that never finish: the flow crawls on SYN-retry cadence.
  MiniFatTree net;
  block_joins(net.ft.host(0));
  auto& flow = net.flow(0, 15, cfg(SchedulerKind::kEagerRoundRobin),
                        100 * 1024);
  net.run(Time::seconds(2));
  EXPECT_FALSE(net.record(flow).is_complete());
}

TEST(Scheduler, PullRoutesAroundAnUnconnectableSubflow) {
  // The pull scheduler only hands chunks to subflows that ask: the
  // established subflow 0 carries the whole stream unharmed.
  MiniFatTree net;
  block_joins(net.ft.host(0));
  auto& flow = net.flow(0, 15, cfg(SchedulerKind::kPull), 100 * 1024);
  net.run(Time::seconds(2));
  const auto& rec = net.record(flow);
  EXPECT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 100u * 1024u);
  EXPECT_LT(rec.fct(), Time::millis(500));
}

TEST(Scheduler, EagerSpreadsChunksAcrossAllSubflows) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, cfg(SchedulerKind::kEagerRoundRobin, 4),
                        140 * 1024);  // 100+ chunks
  net.run(Time::seconds(10));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.subflows_used, 4u);
  // Round-robin assignment: every subflow moved a meaningful share.
  MptcpConnection* conn = flow.mptcp();
  for (std::size_t i = 0; i < conn->subflow_count(); ++i) {
    EXPECT_GT(conn->subflow(i).snd_una(), 10u * 1400u) << "subflow " << i;
  }
}

TEST(Scheduler, ConnectionWindowBoundsOutstandingData) {
  MiniFatTree net;
  TransportConfig c = cfg(SchedulerKind::kEagerRoundRobin, 4);
  auto& flow = net.flow(0, 15, c, 0, /*long_flow=*/true);
  net.run(Time::seconds(1));
  MptcpConnection* conn = flow.mptcp();
  // Invariant sampled after the run: assigned-but-unacked data never
  // exceeds the shared window.
  EXPECT_LE(conn->data_next() - conn->data_una(),
            conn->config().connection_window);
  EXPECT_GT(conn->data_una(), 0u);
}

TEST(Scheduler, SmallConnectionWindowThrottlesThroughput) {
  // A one-chunk shared window over a ~0.6 ms RTT path caps throughput
  // near 18 Mb/s;
  // the default 256 KB window does far better.
  MiniFatTree small_net;
  TransportConfig small_cfg = cfg(SchedulerKind::kEagerRoundRobin, 2);
  MptcpConfig mc = small_cfg.mptcp_config();
  mc.connection_window = 1400;  // one chunk in flight at a time
  auto conn = std::make_unique<MptcpConnection>(
      small_net.sim, small_net.metrics, small_net.ft.host(0),
      small_net.ft.host(15).addr(),
      small_net.metrics
          .on_flow_started(Protocol::kMptcp, small_net.ft.host(0).addr(),
                           small_net.ft.host(15).addr(), 0, true,
                           small_net.sim.now())
          .flow_id,
      mc);
  conn->connect_and_send(TcpSocket::kUnboundedBytes);
  small_net.run(Time::seconds(1));
  const auto throttled =
      small_net.metrics.record(conn->flow_id()).delivered_bytes;

  MiniFatTree big_net;
  auto& free_flow = big_net.flow(0, 15, cfg(SchedulerKind::kEagerRoundRobin, 2),
                                 0, /*long_flow=*/true);
  big_net.run(Time::seconds(1));
  const auto unthrottled = big_net.record(free_flow).delivered_bytes;

  EXPECT_LT(throttled, unthrottled / 2);
  EXPECT_GT(throttled, 0u);
}

TEST(Scheduler, ReinjectionRescuesEagerStalls) {
  // Eager scheduler + reinjection: chunks stranded on a dead subflow
  // migrate after its first RTO, so the flow completes quickly.
  MiniFatTree net;
  net.ft.host(0).port(0).set_drop_filter(
      [](const Packet& pkt, std::uint64_t) {
        return pkt.subflow == 1 && pkt.payload > 0;
      });
  TransportConfig c = cfg(SchedulerKind::kEagerRoundRobin, 4);
  c.reinject_on_rto = true;
  auto& flow = net.flow(0, 15, c, 100 * 1024);
  net.run(Time::seconds(10));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 100u * 1024u);
}

}  // namespace
}  // namespace mmptcp
