// ECN-aware coupled congestion control across the MPTCP family: every
// subflow of an mptcp-dctcp / mmptcp-dctcp connection (the packet-
// scatter flow included) must set ECT, carry its own DctcpReaction with
// an independent alpha, and keep the LIA/Reno increase policy of its
// loss-driven sibling.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/mmptcp_connection.h"
#include "tcp/dctcp.h"

namespace mmptcp {
namespace {

using testing::MiniFatTree;
using testing::PacketTap;

TransportConfig ecn_cfg(Protocol proto, std::uint32_t subflows) {
  TransportConfig cfg;
  cfg.protocol = proto;
  cfg.subflows = subflows;
  return cfg;
}

FatTreeConfig marking_fabric() {
  FatTreeConfig cfg;
  cfg.qdisc.kind = QdiscKind::kEcnRed;
  cfg.qdisc.ecn_threshold_packets = 20;
  return cfg;
}

const DctcpReaction* dctcp_of(const Subflow& sf) {
  return dynamic_cast<const DctcpReaction*>(
      &sf.congestion().reaction_policy());
}

TEST(MptcpEcn, EverySubflowGetsItsOwnDctcpReaction) {
  MiniFatTree net(marking_fabric());
  auto& flow = net.flow(0, 15, ecn_cfg(Protocol::kMptcpDctcp, 4), 200 * 1024);
  net.run(Time::seconds(30));
  MptcpConnection* conn = flow.mptcp();
  ASSERT_NE(conn, nullptr);
  ASSERT_EQ(conn->subflow_count(), 4u);
  std::vector<const DctcpReaction*> reactions;
  for (std::size_t i = 0; i < conn->subflow_count(); ++i) {
    const Subflow& sf = conn->subflow(i);
    EXPECT_TRUE(sf.congestion().ecn_capable()) << "subflow " << i;
    const DctcpReaction* r = dctcp_of(sf);
    ASSERT_NE(r, nullptr) << "subflow " << i;
    reactions.push_back(r);
  }
  // Distinct state machines, not a shared one.
  for (std::size_t i = 0; i < reactions.size(); ++i) {
    for (std::size_t j = i + 1; j < reactions.size(); ++j) {
      EXPECT_NE(reactions[i], reactions[j]);
    }
  }
  EXPECT_TRUE(net.record(flow).is_complete());
}

TEST(MptcpEcn, PerSubflowAlphaEvolvesIndependently) {
  // Two independent reactions fed different mark patterns diverge; this
  // is what "per-subflow alpha" buys over connection-shared state.
  DctcpConfig cfg;
  cfg.initial_alpha = 0.0;
  DctcpReaction clean(cfg);
  DctcpReaction congested(cfg);
  std::uint64_t una = 0;
  for (int w = 0; w < 8; ++w) {
    una += 10 * 1400;
    clean.on_ecn_feedback(10 * 1400, false, una, una + 10 * 1400, 10 * 1400,
                          1400);
    congested.on_ecn_feedback(10 * 1400, true, una, una + 10 * 1400,
                              10 * 1400, 1400);
  }
  EXPECT_DOUBLE_EQ(clean.alpha(), 0.0);
  EXPECT_GT(congested.alpha(), 0.3);
}

TEST(MptcpEcn, PlainMptcpSubflowsStayEcnBlind) {
  MiniFatTree net(marking_fabric());
  auto& flow = net.flow(0, 15, ecn_cfg(Protocol::kMptcp, 4), 100 * 1024);
  net.run(Time::seconds(20));
  MptcpConnection* conn = flow.mptcp();
  ASSERT_NE(conn, nullptr);
  for (std::size_t i = 0; i < conn->subflow_count(); ++i) {
    EXPECT_FALSE(conn->subflow(i).congestion().ecn_capable());
    EXPECT_EQ(dctcp_of(conn->subflow(i)), nullptr);
  }
}

TEST(MptcpEcn, MmptcpDctcpScatterFlowIsEcnCapableToo) {
  MiniFatTree net(marking_fabric());
  auto& flow =
      net.flow(0, 15, ecn_cfg(Protocol::kMmptcpDctcp, 4), 30 * 1024);
  net.run(Time::seconds(20));
  MmptcpConnection* conn = flow.mmptcp();
  ASSERT_NE(conn, nullptr);
  // A 30 KB short never leaves the scatter phase; its one subflow is the
  // PS flow and it must still run the DCTCP reaction.
  EXPECT_FALSE(conn->switched());
  ASSERT_GE(conn->subflow_count(), 1u);
  EXPECT_TRUE(conn->subflow(0).congestion().ecn_capable());
  EXPECT_NE(dctcp_of(conn->subflow(0)), nullptr);
  EXPECT_TRUE(net.record(flow).is_complete());
}

TEST(MptcpEcn, EctIsSetOnDataOfAllPhases) {
  // Tap the sender's host uplink and require ECT on every data segment:
  // scatter-phase packets before the switch, MPTCP subflow packets after.
  MiniFatTree net(marking_fabric());
  auto& flow =
      net.flow(0, 15, ecn_cfg(Protocol::kMmptcpDctcp, 4), 600 * 1024);
  PacketTap tap(net.ft.host(0).port(0));
  net.run(Time::seconds(30));
  MmptcpConnection* conn = flow.mmptcp();
  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(conn->switched());  // 600 KB crosses the volume threshold
  std::size_t data_seen = 0;
  for (const Packet& p : tap.seen()) {
    if (p.payload == 0) continue;  // SYNs and pure ACKs may stay Not-ECT
    ++data_seen;
    EXPECT_TRUE(p.ect()) << "data seq " << p.seq;
  }
  EXPECT_GT(data_seen, 100u);
  EXPECT_TRUE(net.record(flow).is_complete());
}

TEST(MptcpEcn, MarkedFabricActuallyCutsSubflowWindows) {
  // On a marking fabric a long mmptcp-dctcp flow must register ECN
  // reductions (the fabric round-trip works end to end).
  MiniFatTree net(marking_fabric());
  auto& flow = net.flow(0, 15, ecn_cfg(Protocol::kMmptcpDctcp, 2), 0,
                        /*long_flow=*/true);
  auto& competitor = net.flow(1, 15, ecn_cfg(Protocol::kMmptcpDctcp, 2), 0,
                              /*long_flow=*/true);
  (void)competitor;  // two elephants into one host force a standing queue
  net.run(Time::seconds(3));
  MmptcpConnection* conn = flow.mmptcp();
  ASSERT_NE(conn, nullptr);
  std::uint64_t reductions = 0;
  for (std::size_t i = 0; i < conn->subflow_count(); ++i) {
    if (const DctcpReaction* r = dctcp_of(conn->subflow(i))) {
      reductions += r->ecn_reductions();
    }
  }
  EXPECT_GT(reductions, 0u);
}

}  // namespace
}  // namespace mmptcp
