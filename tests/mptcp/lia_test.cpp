#include "mptcp/lia.h"

#include <gtest/gtest.h>
#include <cmath>

namespace mmptcp {
namespace {

TEST(LiaAlpha, OneOrZeroSubflowsGiveUnity) {
  EXPECT_DOUBLE_EQ(lia_alpha({}), 1.0);
  EXPECT_DOUBLE_EQ(lia_alpha({{10000, 0.01}}), 1.0);
}

TEST(LiaAlpha, SymmetricSubflowsGiveAlphaEqualsOneOverN) {
  // RFC 6356: for n identical subflows, alpha = total * (w/r^2) / (n*w/r)^2
  // = n*w * w/r^2 / (n^2 w^2 / r^2) = 1/n.
  const std::vector<LiaView> two{{10000, 0.01}, {10000, 0.01}};
  EXPECT_NEAR(lia_alpha(two), 0.5, 1e-9);
  const std::vector<LiaView> four{{10000, 0.01},
                                  {10000, 0.01},
                                  {10000, 0.01},
                                  {10000, 0.01}};
  EXPECT_NEAR(lia_alpha(four), 0.25, 1e-9);
}

TEST(LiaAlpha, HandComputedAsymmetricCase) {
  // w1=10 MSS over 10 ms; w2=20 MSS over 40 ms (window bytes arbitrary).
  const double w1 = 14000, r1 = 0.010;
  const double w2 = 28000, r2 = 0.040;
  const double best = std::max(w1 / (r1 * r1), w2 / (r2 * r2));
  const double sum = w1 / r1 + w2 / r2;
  const double expected = (w1 + w2) * best / (sum * sum);
  EXPECT_NEAR(lia_alpha({{14000, 0.010}, {28000, 0.040}}), expected, 1e-9);
}

TEST(LiaAlpha, IgnoresZeroWindowSubflows) {
  const std::vector<LiaView> views{{10000, 0.01}, {0, 0.01}};
  EXPECT_DOUBLE_EQ(lia_alpha(views), 1.0);  // only one usable subflow
}

TEST(LiaAlpha, ClampsPathologicallySmallRtt) {
  // rtt=0 must not produce NaN/inf.
  const double a = lia_alpha({{10000, 0.0}, {10000, 0.0}});
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_GT(a, 0.0);
}

TEST(LiaCc, BoundedByUncoupledNewRenoIncrease) {
  // RFC 6356 caps the per-ACK increase at the uncoupled NewReno value;
  // with a degenerate coupler the cap binds, so LIA == NewReno.
  LiaCoupler coupler;  // empty -> total=1, alpha=1; exercise LiaCc directly
  LiaCc lia(1000, 4, &coupler);
  NewRenoCc reno(1000, 4);
  // Leave slow start.
  lia.enter_recovery(20000);
  lia.exit_recovery();
  reno.enter_recovery(20000);
  reno.exit_recovery();
  ASSERT_EQ(lia.cwnd(), reno.cwnd());
  // With an empty coupler alpha=1 and total=1 -> the coupled term is huge,
  // so LIA takes the uncoupled bound: both grow identically (on_ack routes
  // to congestion avoidance because cwnd == ssthresh).
  lia.on_ack(1000);
  reno.on_ack(1000);
  EXPECT_EQ(lia.cwnd(), reno.cwnd());
}

TEST(LiaCoupler, TotalWindowFloorsAtOne) {
  LiaCoupler coupler;
  EXPECT_EQ(coupler.total_cwnd(), 1u);
  EXPECT_DOUBLE_EQ(coupler.alpha(), 1.0);
}

}  // namespace
}  // namespace mmptcp
