// The reinjection ablation: the paper's MPTCP model does NOT remap data
// stranded on a timed-out subflow (the root cause of Figure 1(b)'s
// multi-second completion times).  With reinjection enabled, a dead
// subflow's data migrates to its siblings after the first RTO.

#include <gtest/gtest.h>

#include "../test_util.h"

namespace mmptcp {
namespace {

using testing::MiniFatTree;

TransportConfig cfg_with(bool reinject) {
  TransportConfig cfg;
  cfg.protocol = Protocol::kMptcp;
  cfg.subflows = 4;
  cfg.reinject_on_rto = reinject;
  cfg.tcp.rto.min_rto = Time::millis(200);
  cfg.tcp.rto.initial_rto = Time::millis(200);
  return cfg;
}

/// Kills subflow `id` of every flow by dropping all its data packets at
/// the client NIC.
void kill_subflow(Host& host, std::uint8_t id) {
  host.port(0).set_drop_filter([id](const Packet& pkt, std::uint64_t) {
    return pkt.payload > 0 && pkt.subflow == id;
  });
}

TEST(Reinjection, WithoutItAFlowStrandedOnADeadSubflowNeverFinishes) {
  MiniFatTree net;
  kill_subflow(net.ft.host(0), 1);
  auto& flow = net.flow(0, 15, cfg_with(false), 100 * 1024);
  net.run(Time::seconds(15));
  // Subflow 1's mapped bytes can never be delivered: the connection is
  // permanently incomplete (this is what multi-RTO stalls look like with
  // an unlucky drop pattern).
  const auto& rec = net.record(flow);
  EXPECT_FALSE(rec.is_complete());
  EXPECT_GT(rec.rto_count, 2u);  // the dead subflow keeps backing off
  EXPECT_LT(rec.delivered_bytes, 100u * 1024u);
}

TEST(Reinjection, WithItTheFlowCompletesAfterOneRto) {
  MiniFatTree net;
  kill_subflow(net.ft.host(0), 1);
  auto& flow = net.flow(0, 15, cfg_with(true), 100 * 1024);
  net.run(Time::seconds(15));
  const auto& rec = net.record(flow);
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 100u * 1024u);
  EXPECT_GE(rec.rto_count, 1u);  // the trigger
  // Completion happens shortly after the first RTO (200 ms), not after a
  // long back-off cascade.
  EXPECT_LT(rec.fct(), Time::seconds(3));
}

TEST(Reinjection, QueueDrainsOnceSiblingsCatchUp) {
  MiniFatTree net;
  kill_subflow(net.ft.host(0), 1);
  auto& flow = net.flow(0, 15, cfg_with(true), 100 * 1024);
  net.run(Time::seconds(15));
  MptcpConnection* conn = flow.mptcp();
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->reinjection_queue_depth(), 0u);
  EXPECT_TRUE(conn->sender_complete());
}

TEST(Reinjection, HealthySubflowsNeverTriggerIt) {
  MiniFatTree net;
  auto& flow = net.flow(0, 15, cfg_with(true), 100 * 1024);
  net.run(Time::seconds(15));
  MptcpConnection* conn = flow.mptcp();
  EXPECT_TRUE(net.record(flow).is_complete());
  EXPECT_EQ(conn->reinjection_queue_depth(), 0u);
  EXPECT_EQ(net.record(flow).rto_count, 0u);
}

}  // namespace
}  // namespace mmptcp
