#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/registry.h"
#include "exp/runner.h"
#include "exp/sink.h"
#include "trace/trace.h"

// The flight recorder's core guarantee, end to end: a traced sweep's
// trace files are byte-identical at any worker-thread count, and tracing
// never perturbs the main results document.

namespace mmptcp::exp {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A one-grid-point slice of the registered incast_ecn spec, small
/// enough for a unit test: one variant, the small fan-in, short warmup.
SweepOptions reduced_incast(const std::string& out_dir) {
  SweepOptions options;
  options.seeds = {1};
  options.axis_overrides = {{"variant", {"mmptcp-dctcp"}},
                            {"senders", {"8"}},
                            {"long_senders", {"2"}},
                            {"warmup_ms", {"50"}}};
  options.out_dir = out_dir;
  return options;
}

std::string fresh_dir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(TraceDeterminism, TraceFilesAreByteIdenticalAcrossJobCounts) {
  register_builtin_experiments();
  const ExperimentSpec* spec = Registry::global().find("incast_ecn");
  ASSERT_NE(spec, nullptr);

  const std::string dir1 = fresh_dir("trace_j1");
  const std::string dir8 = fresh_dir("trace_j8");

  SweepOptions serial = reduced_incast(dir1);
  serial.jobs = 1;
  serial.trace_channels = kTraceAllChannels;
  serial.trace_dir = dir1;
  SweepOptions parallel = reduced_incast(dir8);
  parallel.jobs = 8;
  parallel.trace_channels = kTraceAllChannels;
  parallel.trace_dir = dir8;

  const auto a = run_sweep(*spec, Scale{}, serial);
  const auto b = run_sweep(*spec, Scale{}, parallel);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  ASSERT_TRUE(a[0].outcome.ok) << a[0].outcome.error;

  // Main results document: identical, as for any sweep.
  EXPECT_EQ(to_json(*spec, Scale{}, a), to_json(*spec, Scale{}, b));

  // Trace stream: same name, same bytes, regardless of --jobs.
  const std::string name = trace_file_name(spec->name, a[0].id);
  EXPECT_EQ(name, trace_file_name(spec->name, b[0].id));
  const std::string t1 = read_file(dir1 + "/" + name);
  const std::string t8 = read_file(dir8 + "/" + name);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t8);
  EXPECT_NE(t1.find("\"kind\":\"trace\""), std::string::npos);
  EXPECT_NE(t1.find("\"experiment\":\"incast_ecn\""), std::string::npos);
}

TEST(TraceDeterminism, TracingDoesNotPerturbTheMainResults) {
  register_builtin_experiments();
  const ExperimentSpec* spec = Registry::global().find("incast_ecn");
  ASSERT_NE(spec, nullptr);

  const std::string traced_dir = fresh_dir("trace_vs_plain");
  SweepOptions plain = reduced_incast(traced_dir);
  SweepOptions traced = reduced_incast(traced_dir);
  traced.trace_channels = kTraceAllChannels;
  traced.trace_dir = traced_dir;

  const auto untraced = run_sweep(*spec, Scale{}, plain);
  const auto with_trace = run_sweep(*spec, Scale{}, traced);

  // Trace emission is read-only and draws no randomness: the simulation
  // — and therefore the deterministic document — must not notice it.
  EXPECT_EQ(to_json(*spec, Scale{}, untraced),
            to_json(*spec, Scale{}, with_trace));

  // The recorder's volume telemetry lands in the timing sidecar (and
  // only there), and only for the traced sweep.
  const std::string plain_timing = to_timing_json(*spec, untraced);
  const std::string traced_timing = to_timing_json(*spec, with_trace);
  EXPECT_EQ(plain_timing.find("trace_lines"), std::string::npos);
  EXPECT_NE(traced_timing.find("trace_lines"), std::string::npos);
  EXPECT_NE(traced_timing.find("trace_bytes"), std::string::npos);
}

TEST(TraceDeterminism, TraceFileNamesAreFilesystemSafe) {
  EXPECT_EQ(trace_file_name("incast_ecn", "variant=tcp/senders=8/seed=1"),
            "TRACE_incast_ecn_variant_tcp_senders_8_seed_1.jsonl");
  EXPECT_EQ(trace_file_name("smoke", "seed=2"), "TRACE_smoke_seed_2.jsonl");
}

}  // namespace
}  // namespace mmptcp::exp
