#include "trace/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/packet_tap.h"
#include "net/queue.h"
#include "sim/simulation.h"
#include "trace/recorder.h"
#include "util/check.h"
#include "workload/scenario.h"

namespace mmptcp {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------- channels

TEST(TraceChannels, ParsesNamesAndLists) {
  EXPECT_EQ(parse_trace_channels("queue"), kTraceQueue);
  EXPECT_EQ(parse_trace_channels("queue,cwnd"), kTraceQueue | kTraceCwnd);
  EXPECT_EQ(parse_trace_channels("sched,retx,phase"),
            kTraceSched | kTraceRetx | kTracePhase);
  EXPECT_EQ(parse_trace_channels("all"), kTraceAllChannels);
}

TEST(TraceChannels, RoundTripsThroughCanonicalString) {
  const std::uint32_t mask = kTraceQueue | kTracePhase | kTraceSched;
  EXPECT_EQ(parse_trace_channels(trace_channels_to_string(mask)), mask);
  EXPECT_EQ(trace_channels_to_string(0), "");
}

TEST(TraceChannels, RejectsUnknownAndEmpty) {
  EXPECT_THROW(parse_trace_channels("qeue"), ConfigError);
  EXPECT_THROW(parse_trace_channels(""), ConfigError);
  EXPECT_THROW(parse_trace_channels("queue,,cwnd"), ConfigError);
}

// The sampler interval flag parses through parse_duration; units matter
// (a "1ms" default silently read as 1ns would melt the trace file).
TEST(TraceChannels, SamplerIntervalUnits) {
  EXPECT_EQ(parse_duration("1ms"), Time::millis(1));
  EXPECT_EQ(parse_duration("250us"), Time::micros(250));
  EXPECT_EQ(parse_duration("2s"), Time::seconds(2));
  EXPECT_EQ(parse_duration("100ns"), Time::nanos(100));
  EXPECT_EQ(parse_duration("1.5ms"), Time::micros(1500));
  EXPECT_THROW(parse_duration(""), ConfigError);
  EXPECT_THROW(parse_duration("12"), ConfigError);       // unit required
  EXPECT_THROW(parse_duration("5parsecs"), ConfigError);
  EXPECT_THROW(parse_duration("-1ms"), ConfigError);
}

// ---------------------------------------------------------------- recorder

TraceConfig test_config(const std::string& file, std::uint32_t channels) {
  TraceConfig cfg;
  cfg.channels = channels;
  cfg.path = ::testing::TempDir() + file;
  cfg.experiment = "unit";
  cfg.run_id = "seed=7";
  cfg.seed = 7;
  return cfg;
}

TEST(TraceRecorderTest, HeaderCarriesProvenanceAndCountsMatchTheFile) {
  const TraceConfig cfg =
      test_config("rec_header.jsonl", kTraceQueue | kTraceCwnd);
  TraceRecorder rec(cfg);
  EXPECT_TRUE(rec.wants(kTraceQueue));
  EXPECT_TRUE(rec.wants(kTraceCwnd));
  EXPECT_FALSE(rec.wants(kTraceSched));

  rec.queue_sample(Time::micros(5), "sw0-p1", 3, 4500, 0, 0);
  rec.queue_event(Time::micros(9), "sw0-p1", "drop", 100);
  rec.cwnd_sample(Time::micros(12), 42, 1, "ack", 14600, 29200, 0.5,
                  Time::micros(120));
  rec.close();

  const auto lines = read_lines(cfg.path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(rec.lines(), 4u);

  // Header: provenance + the enabled channel set, rendered canonically.
  EXPECT_TRUE(contains(lines[0], "\"kind\":\"trace\"")) << lines[0];
  EXPECT_TRUE(contains(lines[0], "\"schema_version\":1")) << lines[0];
  EXPECT_TRUE(contains(lines[0], "\"experiment\":\"unit\"")) << lines[0];
  EXPECT_TRUE(contains(lines[0], "\"run\":\"seed=7\"")) << lines[0];
  EXPECT_TRUE(contains(lines[0], "\"channels\":\"queue,cwnd\"")) << lines[0];

  // Records: fixed field order is part of the schema.
  EXPECT_EQ(lines[1],
            "{\"t\":5000,\"ch\":\"queue\",\"port\":\"sw0-p1\",\"depth\":3,"
            "\"bytes\":4500,\"marks\":0,\"drops\":0}");
  EXPECT_EQ(lines[2],
            "{\"t\":9000,\"ch\":\"queue\",\"port\":\"sw0-p1\","
            "\"event\":\"drop\",\"depth\":100}");

  // Byte telemetry equals what is actually on disk.
  std::uint64_t total = 0;
  for (const auto& l : lines) total += l.size() + 1;
  EXPECT_EQ(rec.bytes_written(), total);
}

TEST(TraceRecorderTest, AlphaFieldAppearsOnlyForEcnControllers) {
  const TraceConfig cfg = test_config("rec_alpha.jsonl", kTraceCwnd);
  TraceRecorder rec(cfg);
  rec.cwnd_sample(Time::zero(), 1, -1, "ack", 1460, 2920, std::nullopt,
                  Time::micros(100));
  rec.cwnd_sample(Time::zero(), 2, 0, "ack", 1460, 2920, 0.25,
                  Time::micros(100));
  rec.close();
  const auto lines = read_lines(cfg.path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_FALSE(contains(lines[1], "alpha")) << lines[1];
  EXPECT_TRUE(contains(lines[1], "\"sf\":-1")) << lines[1];  // single-path
  EXPECT_TRUE(contains(lines[2], "\"alpha\":0.25")) << lines[2];
}

TEST(TraceRecorderTest, RefusesDisabledConfigAndUnwritablePath) {
  TraceConfig off;  // no channels, no path
  EXPECT_THROW(TraceRecorder{off}, ConfigError);
  TraceConfig bad = test_config("x.jsonl", kTraceQueue);
  bad.path = "/nonexistent-dir-xyz/t.jsonl";
  EXPECT_THROW(TraceRecorder{bad}, ConfigError);
}

// ------------------------------------------------------------- port events

/// Swallows deliveries so a Port/Channel pair can run standalone.
class NullSink final : public Node {
 public:
  NullSink(Simulation& sim, NodeId id) : Node(sim, id, "null") {}
  void receive(Packet, std::size_t) override {}
};

Packet data_packet(std::uint32_t payload, bool ect = false) {
  Packet p;
  p.payload = payload;
  if (ect) p.ecn = ecn_bits::kEct;
  return p;
}

TEST(TracePort, OverflowDropEmitsQueueEvent) {
  const TraceConfig cfg = test_config("port_drop.jsonl", kTraceQueue);
  Simulation sim(1);
  TraceRecorder rec(cfg);
  sim.set_trace(&rec, rec.channels());  // before Port: the ctor caches it

  NullSink sink(sim, 0);
  Channel channel(sim.scheduler(), Time::micros(10));
  channel.attach_sink(&sink, 0);
  Port port(sim, sim.scheduler(), "edge0-up", 100'000'000, QueueLimits{2, 0}, &channel,
            LinkLayer::kEdgeAgg);
  for (int i = 0; i < 5; ++i) port.enqueue(data_packet(1460));
  sim.scheduler().run();
  rec.close();

  EXPECT_EQ(port.counters().dropped_packets, 2u);
  std::size_t drops = 0;
  for (const auto& line : read_lines(cfg.path)) {
    if (contains(line, "\"event\":\"drop\"")) {
      ++drops;
      EXPECT_TRUE(contains(line, "\"port\":\"edge0-up\"")) << line;
    }
  }
  EXPECT_EQ(drops, 2u);
}

TEST(TracePort, CeMarkEmitsQueueEvent) {
  const TraceConfig cfg = test_config("port_mark.jsonl", kTraceQueue);
  Simulation sim(1);
  TraceRecorder rec(cfg);
  sim.set_trace(&rec, rec.channels());

  NullSink sink(sim, 0);
  Channel channel(sim.scheduler(), Time::micros(10));
  channel.attach_sink(&sink, 0);
  QdiscConfig ecn;
  ecn.kind = QdiscKind::kEcnRed;
  ecn.ecn_threshold_packets = 1;
  Port port(sim, sim.scheduler(), "sw-ecn", 100'000'000, QueueLimits{100, 0}, &channel,
            LinkLayer::kEdgeAgg, nullptr, ecn);
  // Back-to-back ECT arrivals: the first serialises immediately, the
  // second sits alone (below K), the third meets a standing queue >= K
  // and gets CE-marked.
  for (int i = 0; i < 3; ++i) port.enqueue(data_packet(1460, true));
  sim.scheduler().run();
  rec.close();

  EXPECT_EQ(port.qdisc().marked_packets(), 1u);
  std::size_t marks = 0;
  for (const auto& line : read_lines(cfg.path)) {
    if (contains(line, "\"event\":\"mark\"")) ++marks;
  }
  EXPECT_EQ(marks, 1u);
}

// ------------------------------------------------------------ peak moment

TEST(QdiscPeak, TimestampRecordsFirstTimeThePeakWasReached) {
  Simulation sim(1);
  DropTailQueue q(QueueLimits{10, 0});
  q.set_clock(&sim.scheduler());
  sim.scheduler().schedule(Time::micros(10), [&] {
    q.try_push(data_packet(100));
    q.try_push(data_packet(100));  // peak 2, first reached at 10us
  });
  sim.scheduler().schedule(Time::micros(20), [&] {
    q.pop();
    q.try_push(data_packet(100));  // back at 2: NOT a new peak
  });
  sim.scheduler().schedule(Time::micros(30), [&] {
    q.try_push(data_packet(100));  // 3: new peak
  });
  sim.scheduler().run();
  EXPECT_EQ(q.peak_packets(), 3u);
  EXPECT_EQ(q.peak_at(), Time::micros(30));
}

TEST(QdiscPeak, UnclockedQueueReadsZero) {
  DropTailQueue q(QueueLimits{10, 0});
  q.try_push(data_packet(100));
  EXPECT_EQ(q.peak_packets(), 1u);
  EXPECT_EQ(q.peak_at(), Time::zero());
}

// ------------------------------------------------------------- packet tap

// PacketTap moved from the test suite into the library (net/packet_tap.h);
// make sure the promoted instrument still observes and still drops.
TEST(PacketTapLib, ObservesEveryOfferAndDropsByPredicate) {
  Simulation sim(1);
  NullSink sink(sim, 0);
  Channel channel(sim.scheduler(), Time::micros(10));
  channel.attach_sink(&sink, 0);
  Port port(sim, sim.scheduler(), "p", 100'000'000, QueueLimits{100, 0}, &channel,
            LinkLayer::kHostEdge);
  PacketTap tap(port, [](const Packet& pkt) { return pkt.payload == 2; });
  for (std::uint32_t payload = 1; payload <= 3; ++payload) {
    port.enqueue(data_packet(payload));
  }
  sim.scheduler().run();
  EXPECT_EQ(tap.count(), 3u);  // sees drops too
  EXPECT_EQ(tap.seen()[1].payload, 2u);
  EXPECT_EQ(port.counters().injected_drops, 1u);
  EXPECT_EQ(port.counters().tx_packets, 2u);
}

// ------------------------------------------------- end-to-end incast trace

TEST(TraceIncast, RecordsEveryChannelWithMonotonicTimestamps) {
  IncastConfig cfg;
  cfg.senders = 6;
  cfg.long_senders = 2;
  cfg.bytes = 30 * 1024;
  cfg.short_start = Time::millis(30);
  cfg.transport.protocol = Protocol::kMmptcpDctcp;
  cfg.transport.subflows = 2;
  // Switch well below the short-flow size so phase events are guaranteed.
  cfg.transport.phase.volume_bytes = 16 * 1024;
  cfg.fat_tree.qdisc.kind = QdiscKind::kEcnRed;
  cfg.fat_tree.qdisc.ecn_threshold_packets = 20;
  cfg.trace = test_config("incast_all.jsonl", kTraceAllChannels);
  cfg.trace.experiment = "incast_unit";

  const IncastResult res = run_incast(cfg);
  EXPECT_EQ(res.completion_ratio, 1.0);

  const auto lines = read_lines(cfg.trace.path);
  ASSERT_GT(lines.size(), 1u);
  // Run telemetry matches the file exactly.
  EXPECT_EQ(res.trace_lines, lines.size());
  std::uint64_t bytes = 0;
  for (const auto& l : lines) bytes += l.size() + 1;
  EXPECT_EQ(res.trace_bytes, bytes);

  bool queue = false, cwnd = false, phase = false, sched = false;
  bool subflow_sample = false, alpha = false;
  std::int64_t last_t = -1;
  std::map<std::string, std::string> last_queue_sample;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    queue = queue || contains(line, "\"ch\":\"queue\"");
    cwnd = cwnd || contains(line, "\"ch\":\"cwnd\"");
    phase = phase || contains(line, "\"ch\":\"phase\"");
    sched = sched || contains(line, "\"ch\":\"sched\"");
    subflow_sample = subflow_sample || contains(line, "\"sf\":0");
    alpha = alpha || contains(line, "\"alpha\":");

    // Timestamps never run backwards: emission follows simulated time.
    const auto t_pos = line.find("\"t\":");
    ASSERT_NE(t_pos, std::string::npos) << line;
    const std::int64_t t = std::stoll(line.substr(t_pos + 4));
    EXPECT_GE(t, last_t) << line;
    last_t = t;

    // Sampler snapshots are delta-compressed: two consecutive snapshots
    // of the same port always differ in some field besides the time.
    if (contains(line, "\"ch\":\"queue\"") && !contains(line, "event")) {
      const auto port_pos = line.find("\"port\":");
      const std::string rest = line.substr(port_pos);  // port + fields
      const auto port_end = rest.find(',');
      const std::string port = rest.substr(0, port_end);
      auto it = last_queue_sample.find(port);
      if (it != last_queue_sample.end()) {
        EXPECT_NE(it->second, rest) << "duplicate snapshot: " << line;
      }
      last_queue_sample[port] = rest;
    }
  }
  EXPECT_TRUE(queue);
  EXPECT_TRUE(cwnd);
  EXPECT_TRUE(phase);
  EXPECT_TRUE(sched);
  EXPECT_TRUE(subflow_sample);
  EXPECT_TRUE(alpha);
}

// A channel filter keeps every other channel out of the file entirely.
TEST(TraceIncast, ChannelFilterSuppressesUnselectedChannels) {
  IncastConfig cfg;
  cfg.senders = 4;
  cfg.bytes = 20 * 1024;
  cfg.transport.protocol = Protocol::kTcp;
  cfg.trace = test_config("incast_queue_only.jsonl", kTraceQueue);

  const IncastResult res = run_incast(cfg);
  EXPECT_GT(res.trace_lines, 0u);
  const auto lines = read_lines(cfg.trace.path);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_TRUE(contains(lines[i], "\"ch\":\"queue\"")) << lines[i];
  }
}

}  // namespace
}  // namespace mmptcp
