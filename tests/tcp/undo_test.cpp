// White-box test of the RR-TCP spurious-recovery undo: fabricated ACK
// streams drive one client socket through a fast retransmit that a DSACK
// then proves spurious; the window reduction must be reverted.

#include <gtest/gtest.h>

#include "../test_util.h"

namespace mmptcp {
namespace {

using testing::PairNet;

struct UndoRig {
  explicit UndoRig(bool undo_enabled) : pn() {
    TcpConfig cfg;
    cfg.undo_on_spurious = undo_enabled;
    auto& rec = pn.metrics.on_flow_started(Protocol::kTcp, pn.a.addr(),
                                           pn.b.addr(), 0, false,
                                           pn.sim.now());
    client = std::make_unique<TcpSocket>(
        pn.sim, pn.metrics, pn.a, SocketRole::kClient, pn.b.addr(), 1000,
        5001, pn.a.next_token(), rec.flow_id, cfg,
        std::make_unique<NewRenoCc>(cfg.mss, cfg.initial_cwnd_segments));
    client->connect_and_send(200 * 1400);
  }

  Packet ack(std::uint64_t ack_no, std::uint8_t flags = 0,
             std::uint64_t dsack = 0) {
    Packet p;
    p.src = pn.b.addr();
    p.dst = pn.a.addr();
    p.sport = 5001;
    p.dport = 1000;
    p.token = client->token();
    p.ack = ack_no;
    p.flags = flags;
    p.dsack_seq = dsack;
    return p;
  }

  /// Flushes transmissions without letting the RTO timer fire.
  void flush() { pn.sim.scheduler().run_until(pn.sim.now() + Time::millis(5)); }

  /// Establishes and grows the window by acking `segments` in order.
  void warm_up(int segments) {
    client->handle_packet(ack(0, pkt_flags::kSyn));  // fabricated SYN-ACK
    flush();
    for (int i = 1; i <= segments; ++i) {
      client->handle_packet(ack(std::uint64_t(i) * 1400));
      flush();
    }
  }

  PairNet pn;
  std::unique_ptr<TcpSocket> client;
};

TEST(SpuriousUndo, DsackRestoresTheWindow) {
  UndoRig rig(/*undo_enabled=*/true);
  rig.warm_up(10);
  const std::uint64_t before = rig.client->cwnd();
  // Three duplicate ACKs -> fast retransmit, window halves.
  for (int i = 0; i < 3; ++i) {
    rig.client->handle_packet(rig.ack(10 * 1400));
  }
  rig.flush();
  EXPECT_EQ(rig.client->local_fast_retransmits(), 1u);
  EXPECT_LT(rig.client->cwnd(), before);
  // A DSACK for the retransmitted segment proves it spurious.
  rig.client->handle_packet(
      rig.ack(11 * 1400, pkt_flags::kDsack, 10 * 1400));
  EXPECT_GE(rig.client->cwnd(), before);
  EXPECT_EQ(rig.client->local_spurious_retransmits(), 1u);
}

TEST(SpuriousUndo, DisabledConfigKeepsTheReduction) {
  UndoRig rig(/*undo_enabled=*/false);
  rig.warm_up(10);
  const std::uint64_t before = rig.client->cwnd();
  for (int i = 0; i < 3; ++i) {
    rig.client->handle_packet(rig.ack(10 * 1400));
  }
  rig.flush();
  rig.client->handle_packet(
      rig.ack(11 * 1400, pkt_flags::kDsack, 10 * 1400));
  // Spuriousness is still *counted* (policy feedback), but the window
  // reduction stands.
  EXPECT_EQ(rig.client->local_spurious_retransmits(), 1u);
  EXPECT_LT(rig.client->cwnd(), before);
}

TEST(SpuriousUndo, DsackForOtherSegmentsDoesNotUndo) {
  UndoRig rig(/*undo_enabled=*/true);
  rig.warm_up(10);
  const std::uint64_t before = rig.client->cwnd();
  for (int i = 0; i < 3; ++i) {
    rig.client->handle_packet(rig.ack(10 * 1400));
  }
  rig.flush();
  // DSACK for an unrelated (older) duplicate: not our retransmission.
  rig.client->handle_packet(rig.ack(11 * 1400, pkt_flags::kDsack, 3 * 1400));
  EXPECT_LT(rig.client->cwnd(), before);
}

TEST(SpuriousUndo, RtoClearsThePendingUndo) {
  UndoRig rig(/*undo_enabled=*/true);
  rig.warm_up(6);
  for (int i = 0; i < 3; ++i) {
    rig.client->handle_packet(rig.ack(6 * 1400));
  }
  rig.flush();
  EXPECT_EQ(rig.client->local_fast_retransmits(), 1u);
  // Let the retransmission timer fire (nothing acks it).
  rig.pn.sim.scheduler().run_until(rig.pn.sim.now() + Time::seconds(5));
  EXPECT_GE(rig.client->local_rto_count(), 1u);
  const std::uint64_t after_rto = rig.client->cwnd();
  // A late DSACK must NOT restore the pre-recovery window: the timeout
  // was real evidence of loss.
  rig.client->handle_packet(rig.ack(7 * 1400, pkt_flags::kDsack, 6 * 1400));
  EXPECT_LE(rig.client->cwnd(), after_rto + 2 * 1400);
}

}  // namespace
}  // namespace mmptcp
