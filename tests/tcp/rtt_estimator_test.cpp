#include "tcp/rtt_estimator.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mmptcp {
namespace {

RtoConfig cfg(Time min_rto = Time::millis(200),
              Time initial = Time::seconds(1),
              Time max_rto = Time::seconds(60)) {
  return RtoConfig{min_rto, initial, max_rto};
}

TEST(RttEstimator, InitialRtoBeforeAnySample) {
  RttEstimator est(cfg(Time::millis(200), Time::seconds(3)));
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), Time::seconds(3));
}

TEST(RttEstimator, FirstSampleSetsSrttAndVar) {
  RttEstimator est(cfg());
  est.add_sample(Time::millis(100));
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt(), Time::millis(100));
  EXPECT_EQ(est.rttvar(), Time::millis(50));
  // RTO = SRTT + 4 * RTTVAR = 300 ms.
  EXPECT_EQ(est.rto(), Time::millis(300));
}

TEST(RttEstimator, SmoothingFollowsRfc6298) {
  RttEstimator est(cfg());
  est.add_sample(Time::millis(100));
  est.add_sample(Time::millis(200));
  // RTTVAR = 3/4*50 + 1/4*|100-200| = 62.5ms; SRTT = 7/8*100 + 1/8*200.
  EXPECT_EQ(est.srtt(), Time::micros(112500));
  EXPECT_EQ(est.rttvar(), Time::micros(62500));
}

TEST(RttEstimator, MinRtoClamp) {
  RttEstimator est(cfg(Time::seconds(1)));
  est.add_sample(Time::millis(1));  // tiny RTT
  EXPECT_EQ(est.rto(), Time::seconds(1));
}

TEST(RttEstimator, MaxRtoClamp) {
  RttEstimator est(cfg(Time::millis(1), Time::seconds(1), Time::seconds(2)));
  est.add_sample(Time::seconds(10));
  EXPECT_EQ(est.rto(), Time::seconds(2));
}

TEST(RttEstimator, ConvergesOnStableRtt) {
  RttEstimator est(cfg(Time::millis(1)));
  for (int i = 0; i < 100; ++i) est.add_sample(Time::millis(10));
  EXPECT_EQ(est.srtt(), Time::millis(10));
  // Variance decays toward zero, so RTO approaches SRTT.
  EXPECT_LT(est.rto(), Time::millis(12));
  EXPECT_EQ(est.samples(), 100u);
}

TEST(RttEstimator, NegativeSampleRejected) {
  RttEstimator est(cfg());
  EXPECT_THROW(est.add_sample(Time::zero() - Time::nanos(1)), InvariantError);
}

}  // namespace
}  // namespace mmptcp
