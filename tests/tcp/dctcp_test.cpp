#include "tcp/dctcp.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mmptcp {
namespace {

// Feeds one fully-acknowledged observation window: `acked` bytes of which
// `marked` echoed ECE, then advances the stream so the update fires.
void feed_window(DctcpCc& cc, std::uint64_t& una, std::uint64_t acked,
                 std::uint64_t marked) {
  // Zero-byte call pins the window end to una + acked (no alpha effect).
  cc.on_ecn_feedback(0, false, una, una + acked);
  if (marked > 0) {
    cc.on_ecn_feedback(marked, true, una + marked, una + acked);
  }
  cc.on_ecn_feedback(acked - marked, false, una + acked, una + acked);
  una += acked;
}

TEST(DctcpCc, IsEcnCapable) {
  DctcpCc cc(1000, 10);
  EXPECT_TRUE(cc.ecn_capable());
  NewRenoCc reno(1000, 10);
  EXPECT_FALSE(reno.ecn_capable());
}

TEST(DctcpCc, AlphaStartsConservativeAndDecaysWhenUnmarked) {
  DctcpCc cc(1000, 10);
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
  std::uint64_t una = 0;
  for (int i = 0; i < 60; ++i) feed_window(cc, una, 1000, 0);
  EXPECT_LT(cc.alpha(), 0.05);
  EXPECT_EQ(cc.ecn_reductions(), 0u);
}

TEST(DctcpCc, AlphaTracksMarkedFraction) {
  // gain = 1: alpha equals the previous window's marked fraction exactly.
  DctcpCc cc(1000, 10, DctcpConfig{1.0, 0.0});
  std::uint64_t una = 0;
  feed_window(cc, una, 1000, 250);
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.25);
  feed_window(cc, una, 1000, 1000);
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
}

TEST(DctcpCc, ProportionalReductionOncePerWindow) {
  DctcpCc cc(1000, 10, DctcpConfig{1.0, 0.0});
  const std::uint64_t initial = cc.cwnd();  // 10 segments
  // Fully marked window: alpha -> 1, cwnd halves (NewReno-equivalent).
  cc.on_ecn_feedback(1000, true, 1000, 10'000);
  EXPECT_EQ(cc.ecn_reductions(), 1u);
  EXPECT_EQ(cc.cwnd(), initial / 2);
  EXPECT_EQ(cc.ssthresh(), initial / 2);
  // Further marks inside the same window do not reduce again.
  cc.on_ecn_feedback(1000, true, 2000, 10'000);
  cc.on_ecn_feedback(1000, true, 3000, 10'000);
  EXPECT_EQ(cc.ecn_reductions(), 1u);
  // The next window boundary reacts once more.
  cc.on_ecn_feedback(1000, true, 10'000, 15'000);
  EXPECT_EQ(cc.ecn_reductions(), 2u);
}

TEST(DctcpCc, MildMarkingCostsLessThanHalving) {
  DctcpCc cc(1000, 100, DctcpConfig{1.0, 0.0});
  const std::uint64_t initial = cc.cwnd();
  std::uint64_t una = 0;
  feed_window(cc, una, 10'000, 1000);  // 10% marked -> alpha 0.1
  EXPECT_DOUBLE_EQ(cc.alpha(), 0.1);
  EXPECT_EQ(cc.ecn_reductions(), 1u);
  // Reduction factor 1 - alpha/2 with alpha = 0.1: ~5%, far from half.
  EXPECT_GT(cc.cwnd(), initial * 9 / 10);
  EXPECT_LT(cc.cwnd(), initial);
}

TEST(DctcpCc, ReductionFloorsAtTwoSegments) {
  DctcpCc cc(1000, 2);  // cwnd = 2 MSS already
  cc.on_ecn_feedback(1000, true, 1000, 2000);
  EXPECT_EQ(cc.cwnd(), 2000u);
}

TEST(DctcpCc, UnmarkedWindowsLeaveWindowGrowthAlone) {
  DctcpCc cc(1000, 10);
  const std::uint64_t before = cc.cwnd();
  std::uint64_t una = 0;
  for (int i = 0; i < 5; ++i) feed_window(cc, una, 1000, 0);
  EXPECT_EQ(cc.cwnd(), before);  // feedback alone never grows the window
  cc.on_ack(1000);               // growth stays NewReno's job
  EXPECT_GT(cc.cwnd(), before);
}

TEST(DctcpCc, RejectsBadConfig) {
  EXPECT_THROW(DctcpCc(1000, 10, DctcpConfig{0.0, 1.0}), ConfigError);
  EXPECT_THROW(DctcpCc(1000, 10, DctcpConfig{1.5, 1.0}), ConfigError);
  EXPECT_THROW(DctcpCc(1000, 10, DctcpConfig{0.5, 2.0}), ConfigError);
}

}  // namespace
}  // namespace mmptcp
