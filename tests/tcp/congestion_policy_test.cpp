// The composable congestion layer must be arithmetic-for-arithmetic
// identical to the monolithic classes it replaced: sweep JSONs are
// byte-compared in CI, so even one-ULP drift in a cwnd trace would show
// up as a baseline diff.  The Legacy* classes below replicate the
// pre-refactor inheritance-lattice arithmetic verbatim and serve as the
// oracle for deterministic event scripts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mptcp/lia.h"
#include "tcp/congestion.h"
#include "tcp/dctcp.h"
#include "util/check.h"

namespace mmptcp {
namespace {

// ---------------------------------------------------------------------
// Pre-refactor oracle: CongestionControl as it looked when NewReno, LIA
// and DCTCP were sibling leaf classes overriding virtuals.
// ---------------------------------------------------------------------

class LegacyCc {
 public:
  LegacyCc(std::uint32_t mss, std::uint32_t iw)
      : mss_(mss), cwnd_(std::uint64_t(mss) * iw),
        ssthresh_(std::uint64_t(1) << 62) {}
  virtual ~LegacyCc() = default;

  std::uint64_t cwnd() const { return cwnd_; }
  std::uint64_t ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

  void on_ack(std::uint64_t acked) {
    if (in_slow_start()) {
      cwnd_ += std::min<std::uint64_t>(acked, mss_);
    } else {
      congestion_avoidance_increase(acked);
    }
  }
  void enter_recovery(std::uint64_t flight) {
    ssthresh_ = std::max<std::uint64_t>(flight / 2, 2 * std::uint64_t(mss_));
    cwnd_ = ssthresh_ + 3 * std::uint64_t(mss_);
  }
  void dupack_inflate() { cwnd_ += mss_; }
  void partial_ack(std::uint64_t acked) {
    const std::uint64_t room = cwnd_ > mss_ ? cwnd_ - mss_ : 0;
    cwnd_ -= std::min(acked, room);
    cwnd_ += mss_;
  }
  void exit_recovery() { cwnd_ = ssthresh_; }
  void on_rto(std::uint64_t flight) {
    ssthresh_ = std::max<std::uint64_t>(flight / 2, 2 * std::uint64_t(mss_));
    cwnd_ = mss_;
  }
  void undo_after_spurious(std::uint64_t pc, std::uint64_t ps) {
    cwnd_ = std::max<std::uint64_t>(pc, mss_);
    ssthresh_ = std::max<std::uint64_t>(ps, 2 * std::uint64_t(mss_));
  }
  virtual void on_ecn_feedback(std::uint64_t, bool, std::uint64_t,
                               std::uint64_t) {}

 protected:
  virtual void congestion_avoidance_increase(std::uint64_t acked) {
    const std::uint64_t inc = std::uint64_t(mss_) * mss_ * acked /
                              (cwnd_ * std::max<std::uint64_t>(mss_, 1));
    cwnd_ += std::max<std::uint64_t>(inc, 1);
  }
  std::uint32_t mss_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
};

class LegacyDctcp final : public LegacyCc {
 public:
  LegacyDctcp(std::uint32_t mss, std::uint32_t iw, double gain,
              double initial_alpha)
      : LegacyCc(mss, iw), gain_(gain), alpha_(initial_alpha) {}

  void on_ecn_feedback(std::uint64_t acked, bool ece, std::uint64_t snd_una,
                       std::uint64_t snd_nxt) override {
    acked_ += acked;
    if (ece) marked_ += acked;
    if (snd_una < window_end_) return;
    if (acked_ > 0) {
      const double fraction =
          static_cast<double>(marked_) / static_cast<double>(acked_);
      alpha_ = (1.0 - gain_) * alpha_ + gain_ * fraction;
      if (marked_ > 0) {
        const auto reduced = static_cast<std::uint64_t>(
            static_cast<double>(cwnd_) * (1.0 - alpha_ / 2.0));
        const std::uint64_t floor = 2 * std::uint64_t(mss_);
        cwnd_ = std::max(reduced, floor);
        ssthresh_ = std::max(reduced, floor);
      }
    }
    acked_ = 0;
    marked_ = 0;
    window_end_ = snd_nxt;
  }
  double alpha() const { return alpha_; }

 private:
  double gain_;
  double alpha_;
  std::uint64_t window_end_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t marked_ = 0;
};

/// LIA with the degenerate empty coupler (total=1, alpha=1), matching
/// how LiaCc behaves before any subflow registers.
class LegacyLiaUncoupled final : public LegacyCc {
 public:
  using LegacyCc::LegacyCc;

 protected:
  void congestion_avoidance_increase(std::uint64_t acked) override {
    const double total = 1.0;
    const double alpha = 1.0;
    const double own = static_cast<double>(cwnd_);
    const double m = static_cast<double>(mss_);
    const double coupled = alpha * static_cast<double>(acked) * m / total;
    const double uncoupled = static_cast<double>(acked) * m / own;
    const auto inc = static_cast<std::uint64_t>(std::min(coupled, uncoupled));
    cwnd_ += std::max<std::uint64_t>(inc, 1);
  }
};

// ---------------------------------------------------------------------
// Deterministic event scripts.
// ---------------------------------------------------------------------

constexpr std::uint32_t kMss = 1400;

/// Tiny deterministic LCG so the scripts mix sizes without <random>.
struct Lcg {
  std::uint64_t s = 42;
  std::uint64_t next(std::uint64_t bound) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return (s >> 33) % bound;
  }
};

#define EXPECT_SAME_WINDOW(nc, lc, step)                                  \
  do {                                                                    \
    EXPECT_EQ((nc).cwnd(), (lc).cwnd()) << "step " << (step);             \
    EXPECT_EQ((nc).ssthresh(), (lc).ssthresh()) << "step " << (step);     \
  } while (0)

/// Mixed lifetime: slow start, CA, recovery cycle, RTO, undo.
template <typename NewCc, typename OldCc>
void run_loss_script(NewCc& nc, OldCc& lc) {
  Lcg rng;
  int step = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t acked = 1 + rng.next(3 * kMss);
      nc.on_ack(acked);
      lc.on_ack(acked);
      EXPECT_SAME_WINDOW(nc, lc, ++step);
    }
    const std::uint64_t flight = nc.cwnd() / 2 + rng.next(nc.cwnd() + 1);
    nc.enter_recovery(flight);
    lc.enter_recovery(flight);
    EXPECT_SAME_WINDOW(nc, lc, ++step);
    for (int i = 0; i < 5; ++i) {
      nc.dupack_inflate();
      lc.dupack_inflate();
      const std::uint64_t part = 1 + rng.next(2 * kMss);
      nc.partial_ack(part);
      lc.partial_ack(part);
      EXPECT_SAME_WINDOW(nc, lc, ++step);
    }
    nc.exit_recovery();
    lc.exit_recovery();
    EXPECT_SAME_WINDOW(nc, lc, ++step);
    if (round == 1) {
      nc.on_rto(nc.cwnd());
      lc.on_rto(lc.cwnd());
      EXPECT_SAME_WINDOW(nc, lc, ++step);
    }
    if (round == 2) {
      nc.undo_after_spurious(37 * kMss, 19 * kMss);
      lc.undo_after_spurious(37 * kMss, 19 * kMss);
      EXPECT_SAME_WINDOW(nc, lc, ++step);
    }
  }
}

TEST(PolicySplitBitIdentity, NewRenoTraceMatchesLegacy) {
  NewRenoCc nc(kMss, 2);
  LegacyCc lc(kMss, 2);
  run_loss_script(nc, lc);
}

TEST(PolicySplitBitIdentity, LiaTraceMatchesLegacy) {
  LiaCoupler coupler;  // empty: total=1, alpha=1 — LiaCc's base state
  LiaCc nc(kMss, 2, &coupler);
  LegacyLiaUncoupled lc(kMss, 2);
  run_loss_script(nc, lc);
}

/// DCTCP: a full alternating marked/clean-window feedback history plus
/// the loss-event script must match, including alpha evolution.
TEST(PolicySplitBitIdentity, DctcpTraceMatchesLegacy) {
  for (const double initial_alpha : {1.0, 0.5, 0.0}) {
    DctcpCc nc(kMss, 10, DctcpConfig{1.0 / 16.0, initial_alpha});
    LegacyDctcp lc(kMss, 10, 1.0 / 16.0, initial_alpha);
    Lcg rng;
    std::uint64_t una = 0;
    int step = 0;
    for (int w = 0; w < 60; ++w) {
      // One observation window of ~10 segments, a varying fraction of
      // them ECE-echoed; the final ACK crosses window_end.
      const bool any_marks = w % 3 != 2;
      for (int seg = 0; seg < 10; ++seg) {
        const std::uint64_t acked = 1 + rng.next(kMss);
        const bool ece = any_marks && seg % (1 + int(rng.next(3))) == 0;
        una += acked;
        const std::uint64_t nxt = una + 12 * kMss;
        nc.on_ecn_feedback(acked, ece, una, nxt);
        lc.on_ecn_feedback(acked, ece, una, nxt);
        nc.on_ack(acked);
        lc.on_ack(acked);
        EXPECT_SAME_WINDOW(nc, lc, ++step);
      }
    }
    EXPECT_DOUBLE_EQ(nc.alpha(), lc.alpha()) << "alpha0=" << initial_alpha;
    run_loss_script(nc, lc);
  }
}

// ---------------------------------------------------------------------
// Composition: any increase pairs with any reaction.
// ---------------------------------------------------------------------

TEST(PolicyComposition, RenoPlusDctcpEqualsDctcpCc) {
  CongestionControl composed(kMss, 10, std::make_unique<RenoIncrease>(),
                             std::make_unique<DctcpReaction>(DctcpConfig{}));
  DctcpCc leaf(kMss, 10, DctcpConfig{});
  std::uint64_t una = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t acked = 1 + (i * 711) % kMss;
    una += acked;
    composed.on_ecn_feedback(acked, i % 4 == 0, una, una + 8 * kMss);
    leaf.on_ecn_feedback(acked, i % 4 == 0, una, una + 8 * kMss);
    composed.on_ack(acked);
    leaf.on_ack(acked);
    EXPECT_EQ(composed.cwnd(), leaf.cwnd()) << i;
    EXPECT_EQ(composed.ssthresh(), leaf.ssthresh()) << i;
  }
}

TEST(PolicyComposition, LiaIncreasePairsWithDctcpReaction) {
  // The pairing the old lattice could not express: coupled increase +
  // proportional ECN decrease.
  LiaCoupler coupler;
  CongestionControl cc(kMss, 10, std::make_unique<LiaIncrease>(&coupler),
                       std::make_unique<DctcpReaction>(DctcpConfig{}));
  EXPECT_TRUE(cc.ecn_capable());
  // A fully-marked first window cuts proportionally (alpha starts 1).
  const std::uint64_t before = cc.cwnd();
  cc.on_ecn_feedback(10 * kMss, true, 10 * kMss, 12 * kMss);
  EXPECT_LT(cc.cwnd(), before);
  EXPECT_EQ(cc.cwnd(), cc.ssthresh());
  // CA increase still runs (and is at least one byte).
  const std::uint64_t after_cut = cc.cwnd();
  cc.on_ack(kMss);
  EXPECT_GT(cc.cwnd(), after_cut);
}

TEST(PolicyComposition, EcnCapabilityComesFromTheReactionPolicy) {
  CongestionControl blind(kMss, 2, std::make_unique<RenoIncrease>(),
                          std::make_unique<NoEcnReaction>());
  CongestionControl aware(kMss, 2, std::make_unique<RenoIncrease>(),
                          std::make_unique<DctcpReaction>(DctcpConfig{}));
  EXPECT_FALSE(blind.ecn_capable());
  EXPECT_TRUE(aware.ecn_capable());
  // The blind reaction ignores feedback entirely.
  const std::uint64_t before = blind.cwnd();
  blind.on_ecn_feedback(4 * kMss, true, 4 * kMss, 8 * kMss);
  EXPECT_EQ(blind.cwnd(), before);
}

TEST(PolicyComposition, RejectsNullPolicies) {
  EXPECT_THROW(CongestionControl(kMss, 2, nullptr,
                                 std::make_unique<NoEcnReaction>()),
               InvariantError);
  EXPECT_THROW(CongestionControl(kMss, 2, std::make_unique<RenoIncrease>(),
                                 nullptr),
               InvariantError);
}

// ---------------------------------------------------------------------
// The new DCTCP knobs.
// ---------------------------------------------------------------------

TEST(DctcpKnobs, OneSegmentFloorCutsDeeperThanRfcDefault) {
  DctcpConfig one;
  one.min_cwnd_segments = 1;
  DctcpReaction deep(one);
  DctcpReaction rfc(DctcpConfig{});
  // alpha = 1: the proportional cut of a 3-MSS window lands at 1.5 MSS,
  // below the RFC floor but above the subflow floor.
  const auto cut_deep =
      deep.on_ecn_feedback(3 * kMss, true, 3 * kMss, 6 * kMss, 3 * kMss, kMss);
  const auto cut_rfc =
      rfc.on_ecn_feedback(3 * kMss, true, 3 * kMss, 6 * kMss, 3 * kMss, kMss);
  ASSERT_TRUE(cut_deep.has_value());
  ASSERT_TRUE(cut_rfc.has_value());
  EXPECT_EQ(cut_rfc->cwnd, 2 * std::uint64_t(kMss));
  EXPECT_LT(cut_deep->cwnd, cut_rfc->cwnd);
  EXPECT_GE(cut_deep->cwnd, std::uint64_t(kMss));
}

TEST(DctcpKnobs, SubSegmentCutsAreSkippedButAlphaStillLearns) {
  DctcpConfig cfg;
  cfg.initial_alpha = 0.0;
  cfg.min_cut_segments = 1;
  DctcpReaction r(cfg);
  // First marked window: alpha becomes one gain step (1/16); the cut
  // depth on a 10-MSS window is 10*alpha/2 < 1 MSS, so no cut applies.
  const auto cut = r.on_ecn_feedback(10 * kMss, true, 10 * kMss, 20 * kMss,
                                     10 * kMss, kMss);
  EXPECT_FALSE(cut.has_value());
  EXPECT_GT(r.alpha(), 0.0);
  EXPECT_EQ(r.ecn_reductions(), 0u);
  // Keep feeding fully-marked windows: alpha climbs until the depth
  // crosses one segment and a real cut fires.
  std::uint64_t una = 10 * kMss;
  bool cut_applied = false;
  for (int w = 0; w < 10 && !cut_applied; ++w) {
    una += 10 * kMss;
    cut_applied = r.on_ecn_feedback(10 * kMss, true, una, una + 10 * kMss,
                                    10 * kMss, kMss)
                      .has_value();
  }
  EXPECT_TRUE(cut_applied);
  EXPECT_EQ(r.ecn_reductions(), 1u);
}

TEST(DctcpKnobs, ZeroMinCutKeepsRfcBehaviour) {
  DctcpConfig cfg;
  cfg.initial_alpha = 0.0;  // min_cut_segments stays 0
  DctcpReaction r(cfg);
  const auto cut = r.on_ecn_feedback(10 * kMss, true, 10 * kMss, 20 * kMss,
                                     10 * kMss, kMss);
  ASSERT_TRUE(cut.has_value());  // any marked window reduces, RFC-style
  EXPECT_LT(cut->cwnd, 10 * std::uint64_t(kMss));
}

TEST(DctcpKnobs, RejectsZeroFloor) {
  DctcpConfig cfg;
  cfg.min_cwnd_segments = 0;
  EXPECT_THROW(DctcpReaction{cfg}, ConfigError);
}

// ---------------------------------------------------------------------
// LIA invariants at the policy level.
// ---------------------------------------------------------------------

TEST(LiaIncreaseInvariants, NeverExceedsUncoupledRenoBound) {
  LiaCoupler coupler;
  LiaIncrease lia(&coupler);
  for (std::uint64_t cwnd : {std::uint64_t(2) * kMss, std::uint64_t(40) * kMss,
                             std::uint64_t(400) * kMss}) {
    for (std::uint64_t acked : {std::uint64_t(1), std::uint64_t(kMss),
                                std::uint64_t(3) * kMss}) {
      const std::uint64_t inc = lia.ca_increment(acked, cwnd, kMss);
      // RFC 6356's per-ACK cap: acked * MSS / cwnd_i.
      const auto bound = static_cast<std::uint64_t>(
          static_cast<double>(acked) * kMss / static_cast<double>(cwnd));
      EXPECT_LE(inc, bound + 1) << "cwnd=" << cwnd << " acked=" << acked;
    }
  }
}

}  // namespace
}  // namespace mmptcp
