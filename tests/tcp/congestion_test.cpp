#include "tcp/congestion.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mmptcp {
namespace {

constexpr std::uint32_t kMss = 1000;

TEST(NewReno, InitialWindow) {
  NewRenoCc cc(kMss, 4);
  EXPECT_EQ(cc.cwnd(), 4000u);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(NewReno, SlowStartGrowsByAckedBytesCappedAtMss) {
  NewRenoCc cc(kMss, 2);
  cc.on_ack(kMss);
  EXPECT_EQ(cc.cwnd(), 3000u);
  cc.on_ack(400);  // partial segment acked
  EXPECT_EQ(cc.cwnd(), 3400u);
  cc.on_ack(5000);  // stretch ACK still capped at one MSS
  EXPECT_EQ(cc.cwnd(), 4400u);
}

TEST(NewReno, SlowStartDoublesPerWindow) {
  NewRenoCc cc(kMss, 2);
  // ACK a full window's worth, one MSS at a time: cwnd doubles.
  cc.on_ack(kMss);
  cc.on_ack(kMss);
  EXPECT_EQ(cc.cwnd(), 4000u);
}

TEST(NewReno, CongestionAvoidanceLinear) {
  NewRenoCc cc(kMss, 2);
  cc.enter_recovery(10 * kMss);  // ssthresh = 5 MSS
  cc.exit_recovery();            // cwnd = ssthresh = 5 MSS
  EXPECT_FALSE(cc.in_slow_start());
  const auto before = cc.cwnd();
  // One full window of ACKs grows the window by about one MSS.
  const int acks = static_cast<int>(before / kMss);
  for (int i = 0; i < acks; ++i) cc.on_ack(kMss);
  EXPECT_NEAR(double(cc.cwnd()), double(before + kMss), double(kMss) * 0.2);
}

TEST(NewReno, EnterRecoverySetsSsthreshAndInflates) {
  NewRenoCc cc(kMss, 10);
  cc.enter_recovery(10 * kMss);
  EXPECT_EQ(cc.ssthresh(), 5000u);
  EXPECT_EQ(cc.cwnd(), 5000u + 3 * kMss);
}

TEST(NewReno, SsthreshFloorsAtTwoMss) {
  NewRenoCc cc(kMss, 2);
  cc.enter_recovery(kMss);  // flight/2 would be 500
  EXPECT_EQ(cc.ssthresh(), 2 * kMss);
}

TEST(NewReno, DupackInflation) {
  NewRenoCc cc(kMss, 10);
  cc.enter_recovery(10 * kMss);
  const auto before = cc.cwnd();
  cc.dupack_inflate();
  EXPECT_EQ(cc.cwnd(), before + kMss);
}

TEST(NewReno, PartialAckDeflates) {
  NewRenoCc cc(kMss, 10);
  cc.enter_recovery(10 * kMss);  // cwnd = 8000
  cc.partial_ack(3 * kMss);
  EXPECT_EQ(cc.cwnd(), 8000u - 3000u + 1000u);
}

TEST(NewReno, PartialAckNeverBelowOneMss) {
  NewRenoCc cc(kMss, 2);
  cc.on_rto(2 * kMss);  // cwnd = 1 MSS
  cc.partial_ack(50 * kMss);
  EXPECT_GE(cc.cwnd(), kMss);
}

TEST(NewReno, ExitRecoveryCollapsesToSsthresh) {
  NewRenoCc cc(kMss, 10);
  cc.enter_recovery(10 * kMss);
  cc.dupack_inflate();
  cc.dupack_inflate();
  cc.exit_recovery();
  EXPECT_EQ(cc.cwnd(), cc.ssthresh());
}

TEST(NewReno, RtoResetsToOneMss) {
  NewRenoCc cc(kMss, 10);
  cc.on_rto(8 * kMss);
  EXPECT_EQ(cc.cwnd(), kMss);
  EXPECT_EQ(cc.ssthresh(), 4 * kMss);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(NewReno, InvalidConstruction) {
  EXPECT_THROW(NewRenoCc(0, 4), InvariantError);
  EXPECT_THROW(NewRenoCc(kMss, 0), InvariantError);
}

}  // namespace
}  // namespace mmptcp
