#include "tcp/dupack_policy.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace mmptcp {
namespace {

DupAckConfig make(DupAckPolicyKind kind) {
  DupAckConfig c;
  c.kind = kind;
  return c;
}

TEST(DupAckPolicy, StaticIsThree) {
  DupAckPolicy p(make(DupAckPolicyKind::kStatic), 16);
  EXPECT_EQ(p.threshold(), 3u);
  p.on_spurious_retransmit();
  p.on_rto();
  EXPECT_EQ(p.threshold(), 3u);  // static never moves
}

TEST(DupAckPolicy, StaticRespectsConfiguredValue) {
  DupAckConfig c = make(DupAckPolicyKind::kStatic);
  c.static_threshold = 7;
  DupAckPolicy p(c, 0);
  EXPECT_EQ(p.threshold(), 7u);
}

TEST(DupAckPolicy, TopologyAwareUsesPathCount) {
  // k=8 FatTree inter-pod: 16 paths -> threshold 16.
  DupAckPolicy p(make(DupAckPolicyKind::kTopologyAware), 16);
  EXPECT_EQ(p.threshold(), 16u);
}

TEST(DupAckPolicy, TopologyAwareFloorsAtMin) {
  // Same-edge: one path; threshold still at least 3.
  DupAckPolicy p(make(DupAckPolicyKind::kTopologyAware), 1);
  EXPECT_EQ(p.threshold(), 3u);
  DupAckPolicy unknown(make(DupAckPolicyKind::kTopologyAware), 0);
  EXPECT_EQ(unknown.threshold(), 3u);
}

TEST(DupAckPolicy, TopologyAwareBetaScales) {
  DupAckConfig c = make(DupAckPolicyKind::kTopologyAware);
  c.beta = 0.5;
  DupAckPolicy p(c, 16);
  EXPECT_EQ(p.threshold(), 8u);
  c.beta = 2.0;
  DupAckPolicy q(c, 16);
  EXPECT_EQ(q.threshold(), 32u);
}

TEST(DupAckPolicy, TopologyAwareCapsAtMax) {
  DupAckConfig c = make(DupAckPolicyKind::kTopologyAware);
  c.max_threshold = 20;
  DupAckPolicy p(c, 64);
  EXPECT_EQ(p.threshold(), 20u);
}

TEST(DupAckPolicy, AdaptiveStartsAtMinimum) {
  DupAckPolicy p(make(DupAckPolicyKind::kAdaptive), 16);
  EXPECT_EQ(p.threshold(), 3u);
}

TEST(DupAckPolicy, AdaptiveRaisesOnSpuriousRetransmit) {
  DupAckConfig c = make(DupAckPolicyKind::kAdaptive);
  c.adaptive_step = 2;
  DupAckPolicy p(c, 0);
  p.on_spurious_retransmit();
  EXPECT_EQ(p.threshold(), 5u);
  p.on_spurious_retransmit();
  EXPECT_EQ(p.threshold(), 7u);
}

TEST(DupAckPolicy, AdaptiveDecaysOnRto) {
  DupAckConfig c = make(DupAckPolicyKind::kAdaptive);
  DupAckPolicy p(c, 0);
  for (int i = 0; i < 10; ++i) p.on_spurious_retransmit();
  const auto high = p.threshold();
  p.on_rto();
  EXPECT_EQ(p.threshold(), std::max(high / 2, 3u));
}

TEST(DupAckPolicy, AdaptiveRespectsCeiling) {
  DupAckConfig c = make(DupAckPolicyKind::kAdaptive);
  c.max_threshold = 10;
  DupAckPolicy p(c, 0);
  for (int i = 0; i < 100; ++i) p.on_spurious_retransmit();
  EXPECT_EQ(p.threshold(), 10u);
}

TEST(DupAckPolicy, InvalidBoundsRejected) {
  DupAckConfig c = make(DupAckPolicyKind::kStatic);
  c.min_threshold = 5;
  c.max_threshold = 4;
  EXPECT_THROW(DupAckPolicy(c, 0), InvariantError);
  DupAckConfig z = make(DupAckPolicyKind::kStatic);
  z.min_threshold = 0;
  EXPECT_THROW(DupAckPolicy(z, 0), InvariantError);
}

}  // namespace
}  // namespace mmptcp
