// Loss recovery behaviour under deterministic, injected drops.

#include <gtest/gtest.h>

#include <initializer_list>
#include <memory>
#include <set>

#include "../test_util.h"

namespace mmptcp {
namespace {

using testing::PairNet;

/// Client socket + sink with an injectable drop filter on the client NIC.
struct LossRig {
  explicit LossRig(TcpConfig cfg = fast_config())
      : pn(), sink(pn.sim, pn.metrics, pn.b, 5001, cfg) {
    auto& rec = pn.metrics.on_flow_started(Protocol::kTcp, pn.a.addr(),
                                           pn.b.addr(), 0, false,
                                           pn.sim.now());
    flow_id = rec.flow_id;
    client = std::make_unique<TcpSocket>(
        pn.sim, pn.metrics, pn.a, SocketRole::kClient, pn.b.addr(),
        pn.a.ephemeral_port(), 5001, pn.a.next_token(), rec.flow_id, cfg,
        std::make_unique<NewRenoCc>(cfg.mss, cfg.initial_cwnd_segments));
  }

  /// Timer values scaled down so loss tests run in simulated milliseconds.
  static TcpConfig fast_config() {
    TcpConfig cfg;
    cfg.rto.min_rto = Time::millis(200);
    cfg.rto.initial_rto = Time::millis(200);
    cfg.conn_timeout = Time::millis(300);
    return cfg;
  }

  /// Drops the `n`-th (0-based) *data* packet offered to the client NIC.
  void drop_nth_data(std::initializer_list<std::uint64_t> ns) {
    auto targets = std::make_shared<std::set<std::uint64_t>>(ns);
    auto counter = std::make_shared<std::uint64_t>(0);
    pn.a.port(0).set_drop_filter(
        [targets, counter](const Packet& pkt, std::uint64_t) {
          if (pkt.payload == 0) return false;
          return targets->count((*counter)++) > 0;
        });
  }

  const FlowRecord& record() const { return pn.metrics.record(flow_id); }

  PairNet pn;
  Sink sink;
  std::unique_ptr<TcpSocket> client;
  std::uint32_t flow_id = 0;
};

TEST(TcpLoss, SingleLossInBigWindowUsesFastRetransmit) {
  LossRig rig;
  rig.drop_nth_data({20});  // mid-flow, window already large
  rig.client->connect_and_send(100 * 1400);
  rig.pn.sim.scheduler().run_until(Time::seconds(10));
  const auto& rec = rig.record();
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 100u * 1400u);
  EXPECT_EQ(rec.fast_retransmits, 1u);
  EXPECT_EQ(rec.rto_count, 0u);
  EXPECT_LT(rec.fct(), Time::millis(200));  // no RTO penalty
}

TEST(TcpLoss, LossWithTinyWindowForcesRto) {
  LossRig rig;
  // A 3-segment flow cannot generate 3 dup-ACKs after losing its second
  // segment — exactly the small-flow pathology from the paper.
  rig.drop_nth_data({1});
  rig.client->connect_and_send(3 * 1400);
  rig.pn.sim.scheduler().run_until(Time::seconds(10));
  const auto& rec = rig.record();
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 3u * 1400u);
  EXPECT_GE(rec.rto_count, 1u);
  EXPECT_EQ(rec.fast_retransmits, 0u);
  EXPECT_GE(rec.fct(), Time::millis(200));  // paid at least one min RTO
}

TEST(TcpLoss, SynLossRetriesAfterConnTimeout) {
  LossRig rig;
  bool first = true;
  rig.pn.a.port(0).set_drop_filter([&first](const Packet& pkt,
                                            std::uint64_t) {
    if (pkt.is_syn() && first) {
      first = false;
      return true;
    }
    return false;
  });
  rig.client->connect_and_send(1400);
  rig.pn.sim.scheduler().run_until(Time::seconds(10));
  const auto& rec = rig.record();
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.syn_timeouts, 1u);
  EXPECT_GE(rec.fct(), Time::millis(300));  // conn_timeout
}

TEST(TcpLoss, FinLossRecoveredByRto) {
  LossRig rig;
  bool first = true;
  rig.pn.a.port(0).set_drop_filter([&first](const Packet& pkt,
                                            std::uint64_t) {
    if (pkt.has(pkt_flags::kFin) && first) {
      first = false;
      return true;
    }
    return false;
  });
  rig.client->connect_and_send(1400);
  rig.pn.sim.scheduler().run_until(Time::seconds(10));
  const auto& rec = rig.record();
  ASSERT_TRUE(rec.is_complete());
  EXPECT_GE(rec.rto_count, 1u);
  EXPECT_TRUE(rig.client->sender_drained());
}

TEST(TcpLoss, RepeatedLossBacksOffExponentially) {
  LossRig rig;
  rig.drop_nth_data({0, 1, 2});  // first segment lost three times
  rig.client->connect_and_send(1400);
  rig.pn.sim.scheduler().run_until(Time::seconds(30));
  const auto& rec = rig.record();
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.rto_count, 3u);
  // Backoff: 200 + 400 + 800 ms before the fourth copy goes through.
  EXPECT_GE(rec.fct(), Time::millis(200 + 400 + 800));
}

TEST(TcpLoss, AckLossIsAbsorbedByCumulativeAcks) {
  LossRig rig;
  std::uint64_t acks_seen = 0;
  rig.pn.b.port(0).set_drop_filter([&acks_seen](const Packet& pkt,
                                                std::uint64_t) {
    if (pkt.payload == 0 && !pkt.is_syn()) {
      // Drop every third pure ACK.
      return (acks_seen++ % 3) == 0;
    }
    return false;
  });
  rig.client->connect_and_send(50 * 1400);
  rig.pn.sim.scheduler().run_until(Time::seconds(10));
  const auto& rec = rig.record();
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 50u * 1400u);
}

TEST(TcpLoss, HighDupAckThresholdFallsBackToRto) {
  TcpConfig cfg = LossRig::fast_config();
  cfg.dupack.static_threshold = 90;  // effectively disable fast retransmit
  LossRig rig(cfg);
  rig.drop_nth_data({20});
  rig.client->connect_and_send(100 * 1400);
  rig.pn.sim.scheduler().run_until(Time::seconds(10));
  const auto& rec = rig.record();
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.fast_retransmits, 0u);
  EXPECT_GE(rec.rto_count, 1u);
}

TEST(TcpLoss, LowerDupAckThresholdRecoversFaster) {
  TcpConfig cfg = LossRig::fast_config();
  cfg.dupack.static_threshold = 1;
  LossRig rig(cfg);
  rig.drop_nth_data({6});
  rig.client->connect_and_send(10 * 1400);
  rig.pn.sim.scheduler().run_until(Time::seconds(10));
  const auto& rec = rig.record();
  ASSERT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.fast_retransmits, 1u);
  EXPECT_EQ(rec.rto_count, 0u);
}

TEST(TcpLoss, GiveUpAfterMaxRetries) {
  TcpConfig cfg = LossRig::fast_config();
  cfg.max_data_retries = 2;
  LossRig rig(cfg);
  // Drop every data packet forever.
  rig.pn.a.port(0).set_drop_filter(
      [](const Packet& pkt, std::uint64_t) { return pkt.payload > 0; });
  rig.client->connect_and_send(1400);
  rig.pn.sim.scheduler().run_until(Time::seconds(30));
  EXPECT_FALSE(rig.record().is_complete());
  EXPECT_TRUE(rig.client->dead());
  EXPECT_EQ(rig.record().rto_count, 2u);
}

TEST(TcpLoss, ReceiverFlagsDuplicateWithDsack) {
  // Handcrafted duplicate segments: the second copy must come back with
  // the DSACK-equivalent flag set.
  PairNet pn;
  TcpConfig cfg;
  Metrics& metrics = pn.metrics;
  metrics.on_flow_started(Protocol::kTcp, pn.a.addr(), pn.b.addr(), 0, false,
                          pn.sim.now());
  Sink sink(pn.sim, metrics, pn.b, 5001, cfg);

  class AckCollector final : public Endpoint {
   public:
    void handle_packet(const Packet& pkt) override { acks.push_back(pkt); }
    std::vector<Packet> acks;
  };
  AckCollector collector;
  pn.a.register_token(99, &collector);

  auto send = [&](std::uint8_t flags, std::uint64_t seq,
                  std::uint32_t payload) {
    Packet p;
    p.src = pn.a.addr();
    p.dst = pn.b.addr();
    p.sport = 1234;
    p.dport = 5001;
    p.token = 99;
    p.flags = flags;
    p.seq = seq;
    p.payload = payload;
    pn.a.send(p);
    pn.sim.scheduler().run();
  };

  send(pkt_flags::kSyn, 0, 0);       // open the server side
  send(0, 0, 1400);                  // first copy
  send(0, 0, 1400);                  // duplicate
  ASSERT_GE(collector.acks.size(), 3u);
  const Packet& first_ack = collector.acks[1];
  const Packet& dup_ack = collector.acks[2];
  EXPECT_FALSE(first_ack.has(pkt_flags::kDsack));
  EXPECT_TRUE(dup_ack.has(pkt_flags::kDsack));
  EXPECT_EQ(dup_ack.ack, 1400u);
}

TEST(TcpLoss, SenderCountsSpuriousOnDsack) {
  // Force a retransmission whose original was merely delayed, not lost:
  // delay is emulated by dropping the ACKs of the original so the sender
  // times out and retransmits data the receiver already has.
  TcpConfig cfg = LossRig::fast_config();
  LossRig rig(cfg);
  std::uint64_t acks = 0;
  rig.pn.b.port(0).set_drop_filter([&acks](const Packet& pkt,
                                           std::uint64_t) {
    if (pkt.payload == 0 && !pkt.is_syn()) {
      // Swallow the first three ACKs entirely.
      return acks++ < 3;
    }
    return false;
  });
  rig.client->connect_and_send(2 * 1400);
  rig.pn.sim.scheduler().run_until(Time::seconds(10));
  const auto& rec = rig.record();
  ASSERT_TRUE(rec.is_complete());
  EXPECT_GE(rec.spurious_retransmits, 1u);
}

}  // namespace
}  // namespace mmptcp
