// TcpSocket mechanics on a clean (lossless) two-host link.

#include "tcp/tcp_socket.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace mmptcp {
namespace {

using testing::PairNet;

struct TcpPair {
  explicit TcpPair(PairNet& pn, TcpConfig cfg = TcpConfig{})
      : pn_(pn), sink(pn.sim, pn.metrics, pn.b, 5001, cfg) {
    auto& rec = pn.metrics.on_flow_started(Protocol::kTcp, pn.a.addr(),
                                           pn.b.addr(), 0, false,
                                           pn.sim.now());
    client = std::make_unique<TcpSocket>(
        pn.sim, pn.metrics, pn.a, SocketRole::kClient, pn.b.addr(),
        pn.a.ephemeral_port(), 5001, pn.a.next_token(), rec.flow_id, cfg,
        std::make_unique<NewRenoCc>(cfg.mss, cfg.initial_cwnd_segments));
    flow_id = rec.flow_id;
  }

  const FlowRecord& record() const { return pn_.metrics.record(flow_id); }

  PairNet& pn_;
  Sink sink;
  std::unique_ptr<TcpSocket> client;
  std::uint32_t flow_id = 0;
};

TEST(TcpSocket, HandshakeEstablishes) {
  PairNet pn;
  TcpPair tp(pn);
  tp.client->connect_and_send(1000);
  pn.sim.scheduler().run_until(Time::millis(10));
  EXPECT_TRUE(tp.client->established());
  EXPECT_EQ(tp.sink.accepted(), 1u);
}

TEST(TcpSocket, SmallFlowDeliversExactly) {
  PairNet pn;
  TcpPair tp(pn);
  tp.client->connect_and_send(5000);
  pn.sim.scheduler().run_until(Time::seconds(2));
  const auto& rec = tp.record();
  EXPECT_TRUE(rec.is_complete());
  EXPECT_EQ(rec.delivered_bytes, 5000u);
  EXPECT_EQ(rec.rto_count, 0u);
  EXPECT_EQ(rec.fast_retransmits, 0u);
  EXPECT_LT(rec.fct(), Time::millis(10));
  EXPECT_TRUE(tp.client->sender_drained());
}

TEST(TcpSocket, ZeroByteFlowCompletesViaFin) {
  PairNet pn;
  TcpPair tp(pn);
  tp.client->connect_and_send(0);
  pn.sim.scheduler().run_until(Time::seconds(1));
  EXPECT_TRUE(tp.record().is_complete());
  EXPECT_EQ(tp.record().delivered_bytes, 0u);
}

TEST(TcpSocket, OneByteFlow) {
  PairNet pn;
  TcpPair tp(pn);
  tp.client->connect_and_send(1);
  pn.sim.scheduler().run_until(Time::seconds(1));
  EXPECT_TRUE(tp.record().is_complete());
  EXPECT_EQ(tp.record().delivered_bytes, 1u);
}

TEST(TcpSocket, MssBoundarySizes) {
  for (std::uint64_t bytes : {std::uint64_t(1400), std::uint64_t(1401),
                              std::uint64_t(2799), std::uint64_t(2800)}) {
    PairNet pn;
    TcpPair tp(pn);
    tp.client->connect_and_send(bytes);
    pn.sim.scheduler().run_until(Time::seconds(1));
    EXPECT_TRUE(tp.record().is_complete()) << bytes;
    EXPECT_EQ(tp.record().delivered_bytes, bytes) << bytes;
  }
}

TEST(TcpSocket, LargeFlowApproachesLineRate) {
  PairNet pn;  // 100 Mb/s
  TcpPair tp(pn);
  tp.client->connect_and_send(1'000'000);
  pn.sim.scheduler().run_until(Time::seconds(5));
  const auto& rec = tp.record();
  ASSERT_TRUE(rec.is_complete());
  // Ideal: 1 MB at ~97 Mb/s goodput ~= 84 ms; allow slow start overhead.
  EXPECT_GT(rec.fct(), Time::millis(80));
  EXPECT_LT(rec.fct(), Time::millis(200));
  EXPECT_EQ(rec.rto_count, 0u);
}

TEST(TcpSocket, CwndGrowsInSlowStart) {
  PairNet pn;
  TcpConfig cfg;
  TcpPair tp(pn, cfg);
  const auto initial = std::uint64_t(cfg.mss) * cfg.initial_cwnd_segments;
  tp.client->connect_and_send(1'000'000);
  pn.sim.scheduler().run_until(Time::millis(10));
  EXPECT_GT(tp.client->cwnd(), initial);
}

TEST(TcpSocket, UnboundedFlowKeepsDelivering) {
  PairNet pn;
  TcpPair tp(pn);
  tp.client->connect_and_send(TcpSocket::kUnboundedBytes);
  pn.sim.scheduler().run_until(Time::millis(500));
  const auto& rec = tp.record();
  EXPECT_FALSE(rec.is_complete());
  // ~100 Mb/s for 0.5 s minus handshake/slow-start: several MB.
  EXPECT_GT(rec.delivered_bytes, 2'000'000u);
}

TEST(TcpSocket, FreezeStreamDrainsAndStops) {
  PairNet pn;
  TcpPair tp(pn);
  tp.client->connect_and_send(TcpSocket::kUnboundedBytes);
  pn.sim.scheduler().run_until(Time::millis(100));
  tp.client->freeze_stream();
  pn.sim.scheduler().run_until(Time::millis(200));
  EXPECT_TRUE(tp.client->sender_drained());
  const auto delivered = tp.record().delivered_bytes;
  pn.sim.scheduler().run_until(Time::millis(400));
  EXPECT_EQ(tp.record().delivered_bytes, delivered);  // nothing new
}

TEST(TcpSocket, PacketsSentCounted) {
  PairNet pn;
  TcpPair tp(pn);
  tp.client->connect_and_send(14000);  // exactly 10 segments
  pn.sim.scheduler().run_until(Time::seconds(1));
  EXPECT_EQ(tp.record().packets_sent, 10u);
}

TEST(TcpSocket, SubflowUsedCountsOneForPlainTcp) {
  PairNet pn;
  TcpPair tp(pn);
  tp.client->connect_and_send(1000);
  pn.sim.scheduler().run_until(Time::seconds(1));
  EXPECT_EQ(tp.record().subflows_used, 1u);
}

TEST(TcpSocket, TwoConcurrentFlowsBothComplete) {
  PairNet pn;
  TcpConfig cfg;
  Sink sink(pn.sim, pn.metrics, pn.b, 5001, cfg);
  std::vector<std::unique_ptr<TcpSocket>> clients;
  for (int i = 0; i < 2; ++i) {
    auto& rec = pn.metrics.on_flow_started(Protocol::kTcp, pn.a.addr(),
                                           pn.b.addr(), 0, false,
                                           pn.sim.now());
    clients.push_back(std::make_unique<TcpSocket>(
        pn.sim, pn.metrics, pn.a, SocketRole::kClient, pn.b.addr(),
        pn.a.ephemeral_port(), 5001, pn.a.next_token(), rec.flow_id, cfg,
        std::make_unique<NewRenoCc>(cfg.mss, cfg.initial_cwnd_segments)));
    clients.back()->connect_and_send(200'000);
  }
  pn.sim.scheduler().run_until(Time::seconds(5));
  EXPECT_TRUE(pn.metrics.record(0).is_complete());
  EXPECT_TRUE(pn.metrics.record(1).is_complete());
  EXPECT_EQ(pn.metrics.record(0).delivered_bytes, 200'000u);
  EXPECT_EQ(pn.metrics.record(1).delivered_bytes, 200'000u);
}

TEST(TcpSocket, SequentialFlowsReusePorts) {
  PairNet pn;
  TcpConfig cfg;
  Sink sink(pn.sim, pn.metrics, pn.b, 5001, cfg);
  for (int i = 0; i < 5; ++i) {
    auto& rec = pn.metrics.on_flow_started(Protocol::kTcp, pn.a.addr(),
                                           pn.b.addr(), 0, false,
                                           pn.sim.now());
    TcpSocket client(pn.sim, pn.metrics, pn.a, SocketRole::kClient,
                     pn.b.addr(), pn.a.ephemeral_port(), 5001,
                     pn.a.next_token(), rec.flow_id, cfg,
                     std::make_unique<NewRenoCc>(cfg.mss,
                                                 cfg.initial_cwnd_segments));
    client.connect_and_send(3000);
    pn.sim.scheduler().run_until(pn.sim.now() + Time::millis(100));
    EXPECT_TRUE(pn.metrics.record(rec.flow_id).is_complete()) << i;
  }
}

TEST(TcpSocket, ClientOnlyApisGuarded) {
  PairNet pn;
  TcpConfig cfg;
  TcpSocket server(pn.sim, pn.metrics, pn.b, SocketRole::kServer,
                   pn.a.addr(), 5001, 1000, 1, 0, cfg,
                   std::make_unique<NewRenoCc>(cfg.mss, 2));
  EXPECT_THROW(server.connect_and_send(10), InvariantError);
  TcpSocket client(pn.sim, pn.metrics, pn.a, SocketRole::kClient,
                   pn.b.addr(), 1000, 5001, 2, 0, cfg,
                   std::make_unique<NewRenoCc>(cfg.mss, 2));
  Packet syn;
  syn.flags = pkt_flags::kSyn;
  EXPECT_THROW(client.accept(syn), InvariantError);
}

}  // namespace
}  // namespace mmptcp
