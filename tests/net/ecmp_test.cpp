#include "net/ecmp.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace mmptcp {
namespace {

TEST(Ecmp, SelectStaysInRange) {
  for (std::uint16_t sport = 0; sport < 1000; ++sport) {
    const auto pick =
        ecmp_select(1, Addr{10}, Addr{20}, sport, 5001, 7);
    EXPECT_LT(pick, 7u);
  }
}

TEST(Ecmp, DeterministicForSameTuple) {
  const auto a = ecmp_select(42, Addr{1}, Addr{2}, 100, 200, 16);
  const auto b = ecmp_select(42, Addr{1}, Addr{2}, 100, 200, 16);
  EXPECT_EQ(a, b);
}

TEST(Ecmp, SaltDecorrelatesSwitches) {
  // Two switches with different salts must not make identical choices for
  // every flow (that would collapse the multipath fabric).
  int same = 0;
  for (std::uint16_t sport = 0; sport < 1000; ++sport) {
    const auto a = ecmp_select(1, Addr{1}, Addr{2}, sport, 5001, 4);
    const auto b = ecmp_select(2, Addr{1}, Addr{2}, sport, 5001, 4);
    if (a == b) ++same;
  }
  EXPECT_GT(same, 150);  // ~25% expected
  EXPECT_LT(same, 400);
}

TEST(Ecmp, SourcePortSpreadsFlows) {
  // Randomising the source port (packet scatter) must reach every path.
  std::vector<int> hits(16, 0);
  for (std::uint16_t sport = 49152; sport < 49152 + 2000; ++sport) {
    ++hits[ecmp_select(7, Addr{1}, Addr{2}, sport, 5001, 16)];
  }
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(Ecmp, RoughlyUniformAcrossBuckets) {
  constexpr int kBuckets = 8;
  constexpr int kTrials = 80000;
  std::vector<int> hits(kBuckets, 0);
  for (int i = 0; i < kTrials; ++i) {
    ++hits[ecmp_select(99, Addr{std::uint32_t(i)}, Addr{2},
                       std::uint16_t(i * 31), 5001, kBuckets)];
  }
  for (int h : hits) {
    EXPECT_NEAR(h, kTrials / kBuckets, kTrials / kBuckets * 0.1);
  }
}

#ifndef NDEBUG
TEST(Ecmp, ZeroCandidatesRejected) {
  // The guard is a dcheck on the hot path: compiled out under NDEBUG.
  EXPECT_THROW(ecmp_select(1, Addr{1}, Addr{2}, 1, 2, 0), InvariantError);
}
#endif

TEST(Ecmp, HashMixesAllInputs) {
  const auto base = ecmp_hash(1, Addr{1}, Addr{2}, 3, 4);
  EXPECT_NE(base, ecmp_hash(2, Addr{1}, Addr{2}, 3, 4));
  EXPECT_NE(base, ecmp_hash(1, Addr{9}, Addr{2}, 3, 4));
  EXPECT_NE(base, ecmp_hash(1, Addr{1}, Addr{9}, 3, 4));
  EXPECT_NE(base, ecmp_hash(1, Addr{1}, Addr{2}, 9, 4));
  EXPECT_NE(base, ecmp_hash(1, Addr{1}, Addr{2}, 3, 9));
}

}  // namespace
}  // namespace mmptcp
