#include "net/qdisc/qdisc.h"

#include <gtest/gtest.h>

#include "net/qdisc/ecn_red.h"
#include "net/qdisc/priority.h"
#include "net/queue.h"

namespace mmptcp {
namespace {

Packet data_packet(std::uint32_t payload, std::uint64_t data_seq = 0,
                   bool ect = false, bool ps = false) {
  Packet p;
  p.payload = payload;
  p.data_seq = data_seq;
  if (ect) p.ecn |= ecn_bits::kEct;
  if (ps) p.flags |= pkt_flags::kPs;
  return p;
}

// ---------------------------------------------------------------- EcnRed

TEST(EcnRedQueue, MarksEctArrivalsAtThreshold) {
  EcnRedQueue q({0, 0}, /*mark_threshold_packets=*/2);
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  // Queue now holds K=2: the next ECT arrival is marked.
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  EXPECT_EQ(q.marked_packets(), 1u);
  EXPECT_FALSE(q.pop()->ce());
  EXPECT_FALSE(q.pop()->ce());
  EXPECT_TRUE(q.pop()->ce());
}

TEST(EcnRedQueue, BelowThresholdNeverMarks) {
  EcnRedQueue q({0, 0}, 10);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  }
  EXPECT_EQ(q.marked_packets(), 0u);
  while (auto p = q.pop()) EXPECT_FALSE(p->ce());
}

TEST(EcnRedQueue, NonEctNeverMarkedOnlyDropped) {
  EcnRedQueue q({3, 0}, 1);
  ASSERT_TRUE(q.try_push(data_packet(100)));
  ASSERT_TRUE(q.try_push(data_packet(100)));
  ASSERT_TRUE(q.try_push(data_packet(100)));
  EXPECT_FALSE(q.try_push(data_packet(100)));  // drop-tail at the limit
  EXPECT_EQ(q.marked_packets(), 0u);
  while (auto p = q.pop()) EXPECT_FALSE(p->ce());
}

TEST(EcnRedQueue, MarkingIsInstantaneous) {
  // Occupancy dropping back below K stops marking: the threshold is on
  // the instantaneous queue, not an average (DCTCP's design point).
  EcnRedQueue q({0, 0}, 2);
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));  // marked
  q.pop();
  q.pop();
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));  // occupancy 1: clean
  EXPECT_EQ(q.marked_packets(), 1u);
}

TEST(EcnRedQueue, RejectsZeroThreshold) {
  EXPECT_THROW(EcnRedQueue({0, 0}, 0), ConfigError);
}

TEST(EcnRedQueue, ByteModeMarksBeforePacketThreshold) {
  // K = 100 packets (never reached) but 400 bytes: three 140-byte
  // packets put 420 bytes in the queue, so the fourth arrival marks.
  EcnRedQueue q({0, 0}, 100, nullptr, /*mark_threshold_bytes=*/400);
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  EXPECT_EQ(q.marked_packets(), 0u);  // found at most 280 bytes so far
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  EXPECT_EQ(q.marked_packets(), 1u);  // found 420 >= 400
  EXPECT_EQ(q.mark_threshold_bytes(), 400u);
}

TEST(EcnRedQueue, ByteModeIsInstantaneousToo) {
  EcnRedQueue q({0, 0}, 100, nullptr, 400);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  }
  EXPECT_EQ(q.marked_packets(), 1u);
  q.pop();
  q.pop();  // occupancy back to 280 bytes
  ASSERT_TRUE(q.try_push(data_packet(100, 0, true)));
  EXPECT_EQ(q.marked_packets(), 1u);  // clean again below the threshold
}

TEST(EcnRedQueue, ByteModeIgnoresNonEct) {
  EcnRedQueue q({0, 0}, 100, nullptr, 100);
  ASSERT_TRUE(q.try_push(data_packet(100, 0, /*ect=*/true)));
  ASSERT_TRUE(q.try_push(data_packet(100, 0, /*ect=*/false)));
  EXPECT_EQ(q.marked_packets(), 0u);  // non-ECT passes unmarked
  ASSERT_TRUE(q.try_push(data_packet(100, 0, /*ect=*/true)));
  EXPECT_EQ(q.marked_packets(), 1u);
  EXPECT_FALSE(q.pop()->ce());
  EXPECT_FALSE(q.pop()->ce());
  EXPECT_TRUE(q.pop()->ce());
}

TEST(EcnRedQueue, ZeroByteThresholdDisablesByteMode) {
  // Default configuration: only the packet threshold marks, no matter
  // how many bytes sit in the queue.
  EcnRedQueue q({0, 0}, 100, nullptr, 0);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(q.try_push(data_packet(1400, 0, true)));
  }
  EXPECT_EQ(q.marked_packets(), 0u);
}

// -------------------------------------------------------------- Priority

TEST(StrictPriorityQdisc, HighBandDequeuedFirst) {
  StrictPriorityQdisc q({0, 0}, 2,
                        StrictPriorityQdisc::ps_flag_classifier(2));
  ASSERT_TRUE(q.try_push(data_packet(100, 0, false, false)));  // elephant
  ASSERT_TRUE(q.try_push(data_packet(200, 0, false, true)));   // PS mouse
  ASSERT_TRUE(q.try_push(data_packet(300, 0, false, false)));  // elephant
  EXPECT_EQ(q.size_packets(), 3u);
  EXPECT_EQ(q.pop()->payload, 200u);  // the mouse jumps the queue
  EXPECT_EQ(q.pop()->payload, 100u);  // elephants stay FIFO
  EXPECT_EQ(q.pop()->payload, 300u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(StrictPriorityQdisc, PsFlagClassifierSendsControlHigh) {
  const auto classify = StrictPriorityQdisc::ps_flag_classifier(2);
  Packet ack;  // no payload: control
  EXPECT_EQ(classify(ack), 0u);
  EXPECT_EQ(classify(data_packet(100, 0, false, true)), 0u);
  EXPECT_EQ(classify(data_packet(100, 0, false, false)), 1u);
}

TEST(StrictPriorityQdisc, BytesSentClassifierBucketsByOffset) {
  const auto classify =
      StrictPriorityQdisc::bytes_sent_classifier(3, 1000);
  EXPECT_EQ(classify(data_packet(100, 0)), 0u);
  EXPECT_EQ(classify(data_packet(100, 999)), 0u);
  EXPECT_EQ(classify(data_packet(100, 1000)), 1u);
  EXPECT_EQ(classify(data_packet(100, 50'000)), 2u);  // clamped to last
  Packet ack;
  EXPECT_EQ(classify(ack), 0u);  // control stays high
}

TEST(StrictPriorityQdisc, LowBandCapLeavesRoomForMice) {
  // Elephants are capped at their share while mice may use the whole
  // port (priority dropping as well as priority scheduling); the total
  // never exceeds what the same limits give a drop-tail port.
  StrictPriorityQdisc q({4, 0}, 2,
                        StrictPriorityQdisc::ps_flag_classifier(2));
  EXPECT_EQ(q.band_limits().max_packets, 2u);
  ASSERT_TRUE(q.try_push(data_packet(100)));
  ASSERT_TRUE(q.try_push(data_packet(100)));
  EXPECT_FALSE(q.try_push(data_packet(100)));  // low band share full
  ASSERT_TRUE(q.try_push(data_packet(100, 0, false, true)));
  ASSERT_TRUE(q.try_push(data_packet(100, 0, false, true)));
  EXPECT_FALSE(q.try_push(data_packet(100, 0, false, true)));  // port full
  EXPECT_EQ(q.size_packets(), 4u);  // == the drop-tail port's limit
}

TEST(StrictPriorityQdisc, MiceMayFillTheWholePortWhenElephantsIdle) {
  StrictPriorityQdisc q({4, 0}, 2,
                        StrictPriorityQdisc::ps_flag_classifier(2));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(data_packet(100, 0, false, true)));
  }
  EXPECT_FALSE(q.try_push(data_packet(100, 0, false, true)));
  EXPECT_EQ(q.band_packets(0), 4u);  // not confined to a 2-packet share
}

TEST(StrictPriorityQdisc, BandShareNeverRoundsToZero) {
  StrictPriorityQdisc q({1, 10}, 4,
                        StrictPriorityQdisc::ps_flag_classifier(4));
  EXPECT_EQ(q.band_limits().max_packets, 1u);
  EXPECT_EQ(q.band_limits().max_bytes, 2u);
  // Unlimited stays unlimited per band.
  StrictPriorityQdisc open({0, 0}, 4,
                           StrictPriorityQdisc::ps_flag_classifier(4));
  EXPECT_EQ(open.band_limits().max_packets, 0u);
  EXPECT_EQ(open.band_limits().max_bytes, 0u);
}

TEST(StrictPriorityQdisc, ByteAccountingAcrossBands) {
  StrictPriorityQdisc q({0, 0}, 2,
                        StrictPriorityQdisc::ps_flag_classifier(2));
  q.try_push(data_packet(100));                  // 140 wire bytes, band 1
  q.try_push(data_packet(200, 0, false, true));  // 240 wire bytes, band 0
  EXPECT_EQ(q.size_bytes(), 380u);
  EXPECT_EQ(q.band_packets(0), 1u);
  EXPECT_EQ(q.band_packets(1), 1u);
  q.pop();
  EXPECT_EQ(q.size_bytes(), 140u);
  q.pop();
  EXPECT_EQ(q.size_bytes(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(StrictPriorityQdisc, SharedPoolCoversAllBands) {
  SharedBufferPool pool(300, 1000.0);
  StrictPriorityQdisc q({0, 0}, 2,
                        StrictPriorityQdisc::ps_flag_classifier(2), &pool);
  ASSERT_TRUE(q.try_push(data_packet(60)));                  // 100 bytes
  ASSERT_TRUE(q.try_push(data_packet(60, 0, false, true)));  // 100 bytes
  EXPECT_EQ(pool.used(), 200u);
  EXPECT_FALSE(q.try_push(data_packet(100)));  // 140 > 100 free
  q.pop();
  EXPECT_EQ(pool.used(), 100u);
  q.pop();
  EXPECT_EQ(pool.used(), 0u);
}

TEST(StrictPriorityQdisc, RejectsBadConfig) {
  EXPECT_THROW(StrictPriorityQdisc({0, 0}, 1,
                                   StrictPriorityQdisc::ps_flag_classifier(1)),
               ConfigError);
  EXPECT_THROW(StrictPriorityQdisc({0, 0}, 2, nullptr), ConfigError);
  EXPECT_THROW(StrictPriorityQdisc::bytes_sent_classifier(2, 0), ConfigError);
}

// --------------------------------------------------------------- factory

TEST(QdiscFactory, BuildsEachKind) {
  QdiscConfig cfg;
  auto dt = make_qdisc(cfg, {10, 0}, nullptr);
  EXPECT_NE(dynamic_cast<DropTailQueue*>(dt.get()), nullptr);

  cfg.kind = QdiscKind::kEcnRed;
  cfg.ecn_threshold_packets = 7;
  cfg.ecn_threshold_bytes = 9000;
  auto red = make_qdisc(cfg, {10, 0}, nullptr);
  auto* red_q = dynamic_cast<EcnRedQueue*>(red.get());
  ASSERT_NE(red_q, nullptr);
  EXPECT_EQ(red_q->mark_threshold_packets(), 7u);
  EXPECT_EQ(red_q->mark_threshold_bytes(), 9000u);

  cfg.kind = QdiscKind::kPriority;
  cfg.bands = 3;
  auto prio = make_qdisc(cfg, {10, 0}, nullptr);
  auto* prio_q = dynamic_cast<StrictPriorityQdisc*>(prio.get());
  ASSERT_NE(prio_q, nullptr);
  EXPECT_EQ(prio_q->band_count(), 3u);
}

TEST(QdiscFactory, KindStringsRoundTrip) {
  for (QdiscKind kind : {QdiscKind::kDropTail, QdiscKind::kEcnRed,
                         QdiscKind::kPriority}) {
    EXPECT_EQ(qdisc_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_EQ(qdisc_kind_from_string("red"), QdiscKind::kEcnRed);
  EXPECT_EQ(qdisc_kind_from_string("priority"), QdiscKind::kPriority);
  EXPECT_THROW(qdisc_kind_from_string("pfabric"), ConfigError);
}

TEST(Qdisc, PeakOccupancyTracksHighWater) {
  DropTailQueue q({0, 0});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(data_packet(100)));
  q.pop();
  q.pop();
  q.try_push(data_packet(100));
  EXPECT_EQ(q.peak_packets(), 5u);
  EXPECT_EQ(q.size_packets(), 4u);
}

}  // namespace
}  // namespace mmptcp
