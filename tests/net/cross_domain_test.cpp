// Cross-domain mailboxes: packets emitted toward another domain are
// buffered in the source domain's outbox during a window and inserted at
// the barrier in the canonical (arrival time, source domain, emission
// seq) order, so the destination's event sequence never depends on which
// worker ran which domain first.

#include <gtest/gtest.h>

#include <vector>

#include "net/node.h"
#include "sim/parallel.h"
#include "topo/network.h"

namespace mmptcp {
namespace {

/// Records arrivals with timestamps and payloads.
class Recorder final : public Node {
 public:
  Recorder(Simulation& sim, NodeId id) : Node(sim, id, "rec") {}

  void receive(Packet pkt, std::size_t) override {
    arrivals.push_back({sim().now(), pkt.flow_id});
  }

  struct Arrival {
    Time at;
    std::uint32_t tag;
  };
  std::vector<Arrival> arrivals;
};

/// Runs one domain's scheduler to empty with the ambient context pinned,
/// exactly as the engine's worker does for a window.
void run_domain(Simulation& sim, std::size_t d) {
  par::ScopedDomain pin(&sim.domain_scheduler(d), static_cast<int>(d));
  sim.domain_scheduler(d).run();
}

/// Equal-sized packets (fixed 960-byte payload = 1000 wire bytes) tagged
/// through flow_id so ties in arrival time are real ties.
Packet make_packet(std::uint32_t tag) {
  Packet p;
  p.payload = 960;
  p.flow_id = tag;
  return p;
}

/// Two source nodes (domains 0 and 1) feeding one destination (domain 2)
/// over identical links, on a 3-domain simulation.
struct Rig {
  Rig() : sim(1), net(sim) {
    sim.configure_domains(3);
    src0 = std::make_unique<Recorder>(sim, 0);
    src1 = std::make_unique<Recorder>(sim, 1);
    dst = std::make_unique<Recorder>(sim, 2);
    src0->set_domain(0);
    src1->set_domain(1);
    dst->set_domain(2);
    LinkSpec spec;
    spec.rate_bps = 100'000'000;
    spec.delay = Time::micros(10);
    net.connect(*src0, *dst, spec);
    net.connect(*src1, *dst, spec);
  }

  Simulation sim;
  Network net;
  std::unique_ptr<Recorder> src0, src1, dst;
};

TEST(CrossDomain, DeliveryIsHeldUntilTheFlush) {
  Rig rig;
  rig.src0->port(0).enqueue(make_packet(100));
  run_domain(rig.sim, 0);  // serialise + deliver into the outbox
  EXPECT_TRUE(rig.dst->arrivals.empty());
  EXPECT_EQ(rig.sim.domain_scheduler(2).pending(), 0u);
  rig.net.flush_cross_domain();
  EXPECT_EQ(rig.sim.domain_scheduler(2).pending(), 1u);
  run_domain(rig.sim, 2);
  ASSERT_EQ(rig.dst->arrivals.size(), 1u);
  // 1000 wire bytes at 100 Mb/s = 80 us serialisation, + 10 us wire.
  EXPECT_EQ(rig.dst->arrivals[0].at, Time::micros(90));
  EXPECT_EQ(rig.dst->arrivals[0].tag, 100u);
}

TEST(CrossDomain, TiedArrivalsOrderBySourceDomain) {
  // Identical links and send times: both packets arrive at the same
  // instant, and the flush must insert domain 0's first no matter that
  // domain 1's window ran (and posted) first here.
  Rig rig;
  rig.src1->port(0).enqueue(make_packet(111));
  run_domain(rig.sim, 1);
  rig.src0->port(0).enqueue(make_packet(100));
  run_domain(rig.sim, 0);
  rig.net.flush_cross_domain();
  run_domain(rig.sim, 2);
  ASSERT_EQ(rig.dst->arrivals.size(), 2u);
  EXPECT_EQ(rig.dst->arrivals[0].at, rig.dst->arrivals[1].at);
  EXPECT_EQ(rig.dst->arrivals[0].tag, 100u);
  EXPECT_EQ(rig.dst->arrivals[1].tag, 111u);
}

TEST(CrossDomain, EmissionOrderWithinOneDomainIsPreserved) {
  Rig rig;
  for (std::uint32_t i = 0; i < 4; ++i) {
    rig.src0->port(0).enqueue(make_packet(i));
  }
  run_domain(rig.sim, 0);
  rig.net.flush_cross_domain();
  run_domain(rig.sim, 2);
  ASSERT_EQ(rig.dst->arrivals.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.dst->arrivals[i].tag, i);
  }
}

TEST(CrossDomain, FlushDrainsTheOutboxes) {
  Rig rig;
  rig.src0->port(0).enqueue(make_packet(1));
  run_domain(rig.sim, 0);
  rig.net.flush_cross_domain();
  const std::size_t after_first = rig.sim.domain_scheduler(2).pending();
  rig.net.flush_cross_domain();  // second flush must insert nothing new
  EXPECT_EQ(rig.sim.domain_scheduler(2).pending(), after_first);
}

TEST(CrossDomainOutbox, SequenceNumbersFollowPostOrder) {
  CrossDomainOutbox box;
  box.post(Time::micros(5), nullptr, Packet{});
  box.post(Time::micros(3), nullptr, Packet{});
  box.post(Time::micros(3), nullptr, Packet{});
  ASSERT_EQ(box.entries().size(), 3u);
  EXPECT_EQ(box.entries()[0].seq, 0u);
  EXPECT_EQ(box.entries()[1].seq, 1u);
  EXPECT_EQ(box.entries()[2].seq, 2u);
  box.clear();
  EXPECT_TRUE(box.entries().empty());
}

}  // namespace
}  // namespace mmptcp
