#include "net/packet.h"

#include <gtest/gtest.h>

namespace mmptcp {
namespace {

TEST(Packet, BaseHeaderSize) {
  Packet p;
  EXPECT_EQ(p.size_bytes(), 40u);  // IP + TCP, no payload
}

TEST(Packet, PayloadAddsToWireSize) {
  Packet p;
  p.payload = 1400;
  EXPECT_EQ(p.size_bytes(), 1440u);
}

TEST(Packet, DssOptionAddsHeaderBytes) {
  Packet p;
  p.payload = 1400;
  p.flags |= pkt_flags::kDss;
  EXPECT_EQ(p.size_bytes(), 1460u);
}

TEST(Packet, FlagHelpers) {
  Packet p;
  EXPECT_FALSE(p.is_syn());
  EXPECT_FALSE(p.is_data());
  p.flags |= pkt_flags::kSyn;
  p.payload = 1;
  EXPECT_TRUE(p.is_syn());
  EXPECT_TRUE(p.is_data());
  EXPECT_TRUE(p.has(pkt_flags::kSyn));
  EXPECT_FALSE(p.has(pkt_flags::kFin));
}

TEST(Packet, FlagsAreDistinctBits) {
  const std::uint8_t all = pkt_flags::kSyn | pkt_flags::kFin |
                           pkt_flags::kJoin | pkt_flags::kDss |
                           pkt_flags::kPs | pkt_flags::kDataFin |
                           pkt_flags::kDsack;
  int bits = 0;
  for (int i = 0; i < 8; ++i) bits += (all >> i) & 1;
  EXPECT_EQ(bits, 7);
}

TEST(Packet, ToStringMentionsKeyFields) {
  Packet p;
  p.src = Addr{0x0a010203};
  p.dst = Addr{0x0a040506};
  p.sport = 1234;
  p.dport = 5001;
  p.seq = 42;
  p.payload = 100;
  p.flags = pkt_flags::kSyn | pkt_flags::kPs;
  const auto s = p.to_string();
  EXPECT_NE(s.find("10.1.2.3"), std::string::npos);
  EXPECT_NE(s.find("5001"), std::string::npos);
  EXPECT_NE(s.find("SYN"), std::string::npos);
  EXPECT_NE(s.find("PS"), std::string::npos);
  EXPECT_NE(s.find("seq=42"), std::string::npos);
}

TEST(Packet, EcnBitsDefaultClear) {
  Packet p;
  EXPECT_FALSE(p.ect());
  EXPECT_FALSE(p.ce());
  EXPECT_FALSE(p.ece());
}

TEST(Packet, EcnBitsRoundTrip) {
  Packet p;
  p.ecn |= ecn_bits::kEct;
  EXPECT_TRUE(p.ect());
  EXPECT_FALSE(p.ce());
  p.ecn |= ecn_bits::kCe;
  EXPECT_TRUE(p.ect());
  EXPECT_TRUE(p.ce());
  // A copy (the queue stores packets by value) preserves the codepoints.
  const Packet copy = p;
  EXPECT_TRUE(copy.ect());
  EXPECT_TRUE(copy.ce());
  Packet ack;
  ack.ecn |= ecn_bits::kEce;
  EXPECT_TRUE(ack.ece());
  EXPECT_FALSE(ack.ect());
}

TEST(Packet, EcnBitsAreDistinctAndFreeOfFlags) {
  const std::uint8_t all = ecn_bits::kEct | ecn_bits::kCe | ecn_bits::kEce;
  int bits = 0;
  for (int i = 0; i < 8; ++i) bits += (all >> i) & 1;
  EXPECT_EQ(bits, 3);
  // ECN lives in its own field: setting codepoints must not perturb
  // flags, the wire size, or flag helpers.
  Packet p;
  p.payload = 100;
  const auto size_before = p.size_bytes();
  p.ecn = all;
  EXPECT_EQ(p.flags, 0);
  EXPECT_EQ(p.size_bytes(), size_before);
  EXPECT_FALSE(p.is_syn());
}

TEST(Packet, ToStringMentionsEcn) {
  Packet p;
  p.ecn = ecn_bits::kEct | ecn_bits::kCe;
  const auto s = p.to_string();
  EXPECT_NE(s.find("ECT"), std::string::npos);
  EXPECT_NE(s.find("CE"), std::string::npos);
}

TEST(Addr, DottedRendering) {
  EXPECT_EQ((Addr{0x0a000102}.to_string()), "10.0.1.2");
}

TEST(Addr, Comparisons) {
  EXPECT_EQ((Addr{5}), (Addr{5}));
  EXPECT_NE((Addr{5}), (Addr{6}));
  EXPECT_LT((Addr{5}), (Addr{6}));
}

}  // namespace
}  // namespace mmptcp
