#include "net/link.h"

#include <gtest/gtest.h>

#include "net/node.h"
#include "sim/simulation.h"

namespace mmptcp {
namespace {

/// Records arrivals with timestamps.
class SinkNode final : public Node {
 public:
  SinkNode(Simulation& sim, NodeId id) : Node(sim, id, "sink") {}

  void receive(Packet pkt, std::size_t in_port) override {
    arrivals.push_back({sim().now(), pkt, in_port});
  }

  struct Arrival {
    Time at;
    Packet pkt;
    std::size_t in_port;
  };
  std::vector<Arrival> arrivals;
};

/// One port + channel feeding a SinkNode.
struct Rig {
  explicit Rig(std::uint64_t rate = 100'000'000,
               Time delay = Time::micros(10),
               QueueLimits limits = QueueLimits{100, 0})
      : sim(1), sink(sim, 0), channel(sim.scheduler(), delay),
        port(sim, sim.scheduler(), "p", rate, limits, &channel,
             LinkLayer::kHostEdge) {
    channel.attach_sink(&sink, 7);
  }

  Simulation sim;
  SinkNode sink;
  Channel channel;
  Port port;
};

Packet make_packet(std::uint32_t payload) {
  Packet p;
  p.payload = payload;
  return p;
}

TEST(Link, SinglePacketTiming) {
  Rig rig;  // 100 Mb/s, 10 us propagation
  rig.port.enqueue(make_packet(1460));  // 1500 wire bytes -> 120 us
  rig.sim.scheduler().run();
  ASSERT_EQ(rig.sink.arrivals.size(), 1u);
  EXPECT_EQ(rig.sink.arrivals[0].at, Time::micros(130));
  EXPECT_EQ(rig.sink.arrivals[0].in_port, 7u);
}

TEST(Link, BackToBackPacketsSerialise) {
  Rig rig;
  rig.port.enqueue(make_packet(1460));
  rig.port.enqueue(make_packet(1460));
  rig.sim.scheduler().run();
  ASSERT_EQ(rig.sink.arrivals.size(), 2u);
  EXPECT_EQ(rig.sink.arrivals[0].at, Time::micros(130));
  EXPECT_EQ(rig.sink.arrivals[1].at, Time::micros(250));  // +120 us
}

TEST(Link, FifoDeliveryOrder) {
  Rig rig;
  for (std::uint32_t i = 0; i < 5; ++i) rig.port.enqueue(make_packet(i));
  rig.sim.scheduler().run();
  ASSERT_EQ(rig.sink.arrivals.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rig.sink.arrivals[i].pkt.payload, i);
  }
}

TEST(Link, QueueOverflowDropsAndCounts) {
  Rig rig(100'000'000, Time::micros(10), QueueLimits{2, 0});
  // First packet starts transmitting immediately (leaves the queue), so
  // capacity 2 admits three packets in total before dropping.
  for (int i = 0; i < 5; ++i) rig.port.enqueue(make_packet(1000));
  rig.sim.scheduler().run();
  EXPECT_EQ(rig.sink.arrivals.size(), 3u);
  EXPECT_EQ(rig.port.counters().dropped_packets, 2u);
  EXPECT_EQ(rig.port.counters().enqueued_packets, 3u);
  EXPECT_EQ(rig.port.counters().tx_packets, 3u);
}

TEST(Link, CountersTrackBytes) {
  Rig rig;
  rig.port.enqueue(make_packet(960));  // 1000 wire bytes
  rig.sim.scheduler().run();
  EXPECT_EQ(rig.port.counters().tx_bytes, 1000u);
  EXPECT_EQ(rig.port.counters().enqueued_bytes, 1000u);
}

TEST(Link, DropFilterInjectsLoss) {
  Rig rig;
  rig.port.set_drop_filter([](const Packet&, std::uint64_t index) {
    return index == 1;  // drop the second packet offered
  });
  for (std::uint32_t i = 0; i < 3; ++i) rig.port.enqueue(make_packet(i));
  rig.sim.scheduler().run();
  ASSERT_EQ(rig.sink.arrivals.size(), 2u);
  EXPECT_EQ(rig.sink.arrivals[0].pkt.payload, 0u);
  EXPECT_EQ(rig.sink.arrivals[1].pkt.payload, 2u);
  EXPECT_EQ(rig.port.counters().injected_drops, 1u);
  EXPECT_EQ(rig.port.counters().dropped_packets, 1u);
}

TEST(Link, ZeroDelayChannelStillOrders) {
  Rig rig(100'000'000, Time::zero());
  rig.port.enqueue(make_packet(100));
  rig.port.enqueue(make_packet(200));
  rig.sim.scheduler().run();
  ASSERT_EQ(rig.sink.arrivals.size(), 2u);
  EXPECT_EQ(rig.sink.arrivals[0].pkt.payload, 100u);
}

TEST(Link, LayerTagPreserved) {
  Rig rig;
  EXPECT_EQ(rig.port.layer(), LinkLayer::kHostEdge);
  EXPECT_EQ(to_string(LinkLayer::kAggCore), "agg-core");
  EXPECT_EQ(to_string(LinkLayer::kEdgeAgg), "edge-agg");
}

TEST(Link, InvalidConstructionRejected) {
  Simulation sim(1);
  Channel ch(sim.scheduler(), Time::micros(1));
  EXPECT_THROW(Port(sim, sim.scheduler(), "p", 0, QueueLimits{}, &ch,
                    LinkLayer::kOther),
               InvariantError);
  EXPECT_THROW(Port(sim, sim.scheduler(), "p", 1000, QueueLimits{}, nullptr,
                    LinkLayer::kOther),
               InvariantError);
}

// The sink guard is a dcheck on the delivery hot path: compiled out
// under NDEBUG, so only exercise it in debug builds.
#ifndef NDEBUG
TEST(Link, ChannelRequiresAttachedSink) {
  Simulation sim(1);
  Channel ch(sim.scheduler(), Time::micros(1));
  EXPECT_THROW(ch.deliver(Packet{}), InvariantError);
}
#endif

}  // namespace
}  // namespace mmptcp
