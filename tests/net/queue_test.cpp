#include "net/queue.h"

#include <gtest/gtest.h>

namespace mmptcp {
namespace {

Packet make_packet(std::uint32_t payload) {
  Packet p;
  p.payload = payload;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q;
  for (std::uint32_t i = 1; i <= 3; ++i) {
    EXPECT_TRUE(q.try_push(make_packet(i * 100)));
  }
  EXPECT_EQ(q.pop()->payload, 100u);
  EXPECT_EQ(q.pop()->payload, 200u);
  EXPECT_EQ(q.pop()->payload, 300u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(DropTailQueue, PacketLimitDrops) {
  DropTailQueue q({2, 0});
  EXPECT_TRUE(q.try_push(make_packet(10)));
  EXPECT_TRUE(q.try_push(make_packet(10)));
  EXPECT_FALSE(q.try_push(make_packet(10)));
  EXPECT_EQ(q.size_packets(), 2u);
}

TEST(DropTailQueue, ByteLimitDrops) {
  DropTailQueue q({0, 100});
  EXPECT_TRUE(q.try_push(make_packet(20)));  // 60 wire bytes
  EXPECT_FALSE(q.try_push(make_packet(20))); // would exceed 100
  EXPECT_TRUE(q.try_push(make_packet(0)));   // 40 bytes fits exactly
  EXPECT_EQ(q.size_bytes(), 100u);
}

TEST(DropTailQueue, UnlimitedWhenBothZero) {
  DropTailQueue q({0, 0});
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(q.try_push(make_packet(1400)));
  EXPECT_EQ(q.size_packets(), 10000u);
}

TEST(DropTailQueue, ByteAccountingAcrossPops) {
  DropTailQueue q;
  q.try_push(make_packet(100));
  q.try_push(make_packet(200));
  EXPECT_EQ(q.size_bytes(), 140u + 240u);
  q.pop();
  EXPECT_EQ(q.size_bytes(), 240u);
  q.pop();
  EXPECT_EQ(q.size_bytes(), 0u);
}

TEST(SharedBufferPool, AdmitsUpToCapacity) {
  SharedBufferPool pool(1000, 1000.0);  // huge alpha: only capacity binds
  EXPECT_TRUE(pool.admits(0, 1000));
  pool.on_enqueue(900);
  EXPECT_TRUE(pool.admits(0, 100));
  EXPECT_FALSE(pool.admits(0, 101));
  pool.on_dequeue(900);
  EXPECT_EQ(pool.used(), 0u);
}

TEST(SharedBufferPool, DynamicThresholdLimitsHotPort) {
  // alpha=1: a port may hold at most as much as the remaining free space.
  SharedBufferPool pool(1000, 1.0);
  // Port already holding 600 with 400 free: threshold is 400 -> reject.
  pool.on_enqueue(600);
  EXPECT_FALSE(pool.admits(600, 1));
  // A fresh port (holding 0) may still enqueue.
  EXPECT_TRUE(pool.admits(0, 300));
}

TEST(SharedBufferPool, AccountingUnderflowCaught) {
  SharedBufferPool pool(100, 1.0);
  EXPECT_THROW(pool.on_dequeue(1), InvariantError);
}

TEST(SharedBufferPool, InvalidConfigRejected) {
  EXPECT_THROW(SharedBufferPool(0, 1.0), ConfigError);
  EXPECT_THROW(SharedBufferPool(100, 0.0), ConfigError);
}

TEST(DropTailQueue, SharedPoolGatesAdmission) {
  SharedBufferPool pool(200, 1000.0);
  DropTailQueue q1({0, 0}, &pool);
  DropTailQueue q2({0, 0}, &pool);
  EXPECT_TRUE(q1.try_push(make_packet(60)));   // 100 bytes
  EXPECT_TRUE(q2.try_push(make_packet(60)));   // pool now full (200)
  EXPECT_FALSE(q1.try_push(make_packet(0)));   // no room for 40 more
  q2.pop();                                    // frees 100
  EXPECT_TRUE(q1.try_push(make_packet(0)));
  EXPECT_EQ(pool.used(), 140u);
}

}  // namespace
}  // namespace mmptcp
