#include "net/queue.h"

#include <gtest/gtest.h>

namespace mmptcp {
namespace {

Packet make_packet(std::uint32_t payload) {
  Packet p;
  p.payload = payload;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q;
  for (std::uint32_t i = 1; i <= 3; ++i) {
    EXPECT_TRUE(q.try_push(make_packet(i * 100)));
  }
  EXPECT_EQ(q.pop()->payload, 100u);
  EXPECT_EQ(q.pop()->payload, 200u);
  EXPECT_EQ(q.pop()->payload, 300u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(DropTailQueue, PacketLimitDrops) {
  DropTailQueue q({2, 0});
  EXPECT_TRUE(q.try_push(make_packet(10)));
  EXPECT_TRUE(q.try_push(make_packet(10)));
  EXPECT_FALSE(q.try_push(make_packet(10)));
  EXPECT_EQ(q.size_packets(), 2u);
}

TEST(DropTailQueue, ByteLimitDrops) {
  DropTailQueue q({0, 100});
  EXPECT_TRUE(q.try_push(make_packet(20)));  // 60 wire bytes
  EXPECT_FALSE(q.try_push(make_packet(20))); // would exceed 100
  EXPECT_TRUE(q.try_push(make_packet(0)));   // 40 bytes fits exactly
  EXPECT_EQ(q.size_bytes(), 100u);
}

TEST(DropTailQueue, UnlimitedWhenBothZero) {
  DropTailQueue q({0, 0});
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(q.try_push(make_packet(1400)));
  EXPECT_EQ(q.size_packets(), 10000u);
}

TEST(DropTailQueue, ByteAccountingAcrossPops) {
  DropTailQueue q;
  q.try_push(make_packet(100));
  q.try_push(make_packet(200));
  EXPECT_EQ(q.size_bytes(), 140u + 240u);
  q.pop();
  EXPECT_EQ(q.size_bytes(), 240u);
  q.pop();
  EXPECT_EQ(q.size_bytes(), 0u);
}

TEST(SharedBufferPool, AdmitsUpToCapacity) {
  SharedBufferPool pool(1000, 1000.0);  // huge alpha: only capacity binds
  EXPECT_TRUE(pool.admits(0, 1000));
  pool.on_enqueue(900);
  EXPECT_TRUE(pool.admits(0, 100));
  EXPECT_FALSE(pool.admits(0, 101));
  pool.on_dequeue(900);
  EXPECT_EQ(pool.used(), 0u);
}

TEST(SharedBufferPool, DynamicThresholdLimitsHotPort) {
  // alpha=1: a port may hold at most as much as the remaining free space.
  SharedBufferPool pool(1000, 1.0);
  // Port already holding 600 with 400 free: threshold is 400 -> reject.
  pool.on_enqueue(600);
  EXPECT_FALSE(pool.admits(600, 1));
  // A fresh port (holding 0) may still enqueue.
  EXPECT_TRUE(pool.admits(0, 300));
}

TEST(SharedBufferPool, AccountingUnderflowCaught) {
  SharedBufferPool pool(100, 1.0);
  EXPECT_THROW(pool.on_dequeue(1), InvariantError);
}

TEST(SharedBufferPool, InvalidConfigRejected) {
  EXPECT_THROW(SharedBufferPool(0, 1.0), ConfigError);
  EXPECT_THROW(SharedBufferPool(100, 0.0), ConfigError);
}

TEST(SharedBufferPool, ExhaustedPoolRejectsEveryone) {
  SharedBufferPool pool(100, 1000.0);
  pool.on_enqueue(100);
  EXPECT_EQ(pool.used(), pool.capacity());
  // Even a port holding nothing is refused the smallest packet.
  EXPECT_FALSE(pool.admits(0, 1));
  pool.on_dequeue(1);
  EXPECT_TRUE(pool.admits(0, 1));
  EXPECT_FALSE(pool.admits(0, 2));
}

TEST(SharedBufferPool, TinyAlphaStarvesEvenAnEmptyPort) {
  // threshold = alpha * free: with alpha = 0.001 and 1000 free the
  // per-port budget is one byte, so a 40-byte ACK is refused although
  // the pool is empty — DT admission binds before capacity does.
  SharedBufferPool pool(1000, 0.001);
  EXPECT_FALSE(pool.admits(0, 40));
  EXPECT_TRUE(pool.admits(0, 1));
}

TEST(SharedBufferPool, HugeAlphaOnlyCapacityBinds) {
  SharedBufferPool pool(1000, 1e9);
  EXPECT_TRUE(pool.admits(999, 1));     // threshold astronomically high
  EXPECT_FALSE(pool.admits(0, 1001));   // capacity still absolute
  pool.on_enqueue(1000);
  EXPECT_FALSE(pool.admits(0, 1));
}

TEST(SharedBufferPool, ThresholdShrinksAsPoolFills) {
  // alpha = 0.5: a port may hold at most half the free space.
  SharedBufferPool pool(1000, 0.5);
  EXPECT_TRUE(pool.admits(0, 500));
  EXPECT_FALSE(pool.admits(0, 501));
  pool.on_enqueue(600);  // free = 400, threshold = 200
  EXPECT_TRUE(pool.admits(0, 200));
  EXPECT_FALSE(pool.admits(0, 201));
  EXPECT_FALSE(pool.admits(200, 1));  // port at its shrunken budget
}

TEST(SharedBufferPool, EnqueueDequeueAccountingIsSymmetric) {
  SharedBufferPool pool(10'000, 1.0);
  DropTailQueue q1({0, 0}, &pool);
  DropTailQueue q2({0, 0}, &pool);
  // Interleaved pushes and pops across two ports must return the pool to
  // exactly zero once both queues drain.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(q1.try_push(make_packet(100)));
    ASSERT_TRUE(q2.try_push(make_packet(300)));
    ASSERT_TRUE(q1.try_push(make_packet(0)));
    EXPECT_EQ(pool.used(), q1.size_bytes() + q2.size_bytes());
    q1.pop();
    EXPECT_EQ(pool.used(), q1.size_bytes() + q2.size_bytes());
  }
  while (q1.pop().has_value()) {
  }
  while (q2.pop().has_value()) {
  }
  EXPECT_EQ(pool.used(), 0u);
}

TEST(DropTailQueue, PoolRejectionLeavesAccountingUntouched) {
  SharedBufferPool pool(150, 1000.0);
  DropTailQueue q({0, 0}, &pool);
  ASSERT_TRUE(q.try_push(make_packet(60)));  // 100 bytes
  const std::uint64_t used = pool.used();
  EXPECT_FALSE(q.try_push(make_packet(60)));  // rejected: 100 > 50 free
  EXPECT_EQ(pool.used(), used);
  EXPECT_EQ(q.size_packets(), 1u);
  EXPECT_EQ(q.size_bytes(), 100u);
}

TEST(DropTailQueue, SharedPoolGatesAdmission) {
  SharedBufferPool pool(200, 1000.0);
  DropTailQueue q1({0, 0}, &pool);
  DropTailQueue q2({0, 0}, &pool);
  EXPECT_TRUE(q1.try_push(make_packet(60)));   // 100 bytes
  EXPECT_TRUE(q2.try_push(make_packet(60)));   // pool now full (200)
  EXPECT_FALSE(q1.try_push(make_packet(0)));   // no room for 40 more
  q2.pop();                                    // frees 100
  EXPECT_TRUE(q1.try_push(make_packet(0)));
  EXPECT_EQ(pool.used(), 140u);
}

}  // namespace
}  // namespace mmptcp
