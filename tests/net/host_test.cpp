#include "net/host.h"

#include <gtest/gtest.h>

#include <set>

#include "../test_util.h"

namespace mmptcp {
namespace {

using testing::PairNet;

/// Endpoint that records everything delivered to it.
class RecordingEndpoint final : public Endpoint {
 public:
  void handle_packet(const Packet& pkt) override { received.push_back(pkt); }
  std::vector<Packet> received;
};

Packet packet_between(const Host& from, const Host& to) {
  Packet p;
  p.src = from.addr();
  p.dst = to.addr();
  p.sport = 1000;
  p.dport = 5001;
  return p;
}

TEST(Host, DeliversByToken) {
  PairNet pn;
  RecordingEndpoint ep;
  pn.b.register_token(77, &ep);
  Packet p = packet_between(pn.a, pn.b);
  p.token = 77;
  pn.a.send(p);
  pn.sim.scheduler().run();
  ASSERT_EQ(ep.received.size(), 1u);
  EXPECT_EQ(ep.received[0].token, 77u);
  EXPECT_EQ(pn.b.delivered_packets(), 1u);
}

TEST(Host, SynGoesToListener) {
  PairNet pn;
  std::vector<Packet> accepted;
  pn.b.listen(5001, [&](const Packet& syn) { accepted.push_back(syn); });
  Packet p = packet_between(pn.a, pn.b);
  p.flags = pkt_flags::kSyn;
  p.token = 123;  // unknown token: must fall through to the listener
  pn.a.send(p);
  pn.sim.scheduler().run();
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].token, 123u);
}

TEST(Host, TokenTakesPrecedenceOverListener) {
  PairNet pn;
  RecordingEndpoint ep;
  pn.b.register_token(9, &ep);
  bool listener_hit = false;
  pn.b.listen(5001, [&](const Packet&) { listener_hit = true; });
  Packet p = packet_between(pn.a, pn.b);
  p.flags = pkt_flags::kSyn;
  p.token = 9;
  pn.a.send(p);
  pn.sim.scheduler().run();
  EXPECT_EQ(ep.received.size(), 1u);
  EXPECT_FALSE(listener_hit);
}

TEST(Host, UnmatchedPacketCountsAsDemuxMiss) {
  PairNet pn;
  Packet p = packet_between(pn.a, pn.b);
  p.token = 404;
  pn.a.send(p);
  pn.sim.scheduler().run();
  EXPECT_EQ(pn.b.demux_misses(), 1u);
  EXPECT_EQ(pn.b.delivered_packets(), 0u);
}

TEST(Host, NonSynForUnknownTokenNotGivenToListener) {
  PairNet pn;
  bool listener_hit = false;
  pn.b.listen(5001, [&](const Packet&) { listener_hit = true; });
  Packet p = packet_between(pn.a, pn.b);  // no SYN flag
  p.token = 5;
  pn.a.send(p);
  pn.sim.scheduler().run();
  EXPECT_FALSE(listener_hit);
  EXPECT_EQ(pn.b.demux_misses(), 1u);
}

TEST(Host, WrongDestinationDropped) {
  PairNet pn;
  RecordingEndpoint ep;
  pn.b.register_token(1, &ep);
  Packet p = packet_between(pn.a, pn.b);
  p.dst = Addr{0xdeadbeef};  // not b's address, but the direct link
  p.token = 1;               // delivers it to b anyway
  pn.a.send(p);
  pn.sim.scheduler().run();
  EXPECT_TRUE(ep.received.empty());
  EXPECT_EQ(pn.b.demux_misses(), 1u);
}

TEST(Host, UnregisterStopsDelivery) {
  PairNet pn;
  RecordingEndpoint ep;
  pn.b.register_token(8, &ep);
  pn.b.unregister_token(8);
  Packet p = packet_between(pn.a, pn.b);
  p.token = 8;
  pn.a.send(p);
  pn.sim.scheduler().run();
  EXPECT_TRUE(ep.received.empty());
}

TEST(Host, DuplicateTokenRegistrationRejected) {
  PairNet pn;
  RecordingEndpoint e1, e2;
  pn.a.register_token(5, &e1);
  EXPECT_THROW(pn.a.register_token(5, &e2), InvariantError);
}

TEST(Host, DuplicateListenerRejected) {
  PairNet pn;
  pn.a.listen(80, [](const Packet&) {});
  EXPECT_THROW(pn.a.listen(80, [](const Packet&) {}), InvariantError);
  pn.a.unlisten(80);
  EXPECT_NO_THROW(pn.a.listen(80, [](const Packet&) {}));
}

TEST(Host, TokensAreUniquePerHostAndAcrossHosts) {
  PairNet pn;
  std::set<std::uint32_t> tokens;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(tokens.insert(pn.a.next_token()).second);
    EXPECT_TRUE(tokens.insert(pn.b.next_token()).second);
  }
}

TEST(Host, EphemeralPortsAdvance) {
  PairNet pn;
  const auto p1 = pn.a.ephemeral_port();
  const auto p2 = pn.a.ephemeral_port();
  EXPECT_NE(p1, p2);
  EXPECT_GE(p1, 49152);
}

// The no-NIC guard is a dcheck on the send hot path: compiled out
// under NDEBUG, so only exercise it in debug builds.
#ifndef NDEBUG
TEST(Host, SendWithoutNicRejected) {
  Simulation sim(1);
  Network net(sim);
  Host& lonely = net.make_host("lonely", Addr{1});
  EXPECT_THROW(lonely.send(Packet{}), InvariantError);
}
#endif

}  // namespace
}  // namespace mmptcp
