// Discussion claim (§3): "we expect that MMPTCP will be readily
// deployable in existing data centres as it can coexist with other
// transport protocols ... Early results suggest that it could co-exist in
// harmony with them."
//
// Long flows of TCP, MPTCP and MMPTCP share one fabric under a
// permutation matrix; the table reports per-protocol goodput and Jain's
// fairness index across all long flows.

#include <cstdio>

#include "common.h"

using namespace mmptcp;
using namespace mmptcp::bench;

namespace {

double jain_index(const std::vector<double>& xs) {
  double sum = 0, sq = 0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Scale scale = parse_scale(flags);
  const auto secs = flags.get_int("secs", 5, "simulated seconds to run");
  const bool pull = flags.get_bool(
      "pull", false, "use the modern pull scheduler instead of eager-RR");
  if (flags.help_requested()) {
    std::fputs(flags.help(argv[0]).c_str(), stdout);
    return 0;
  }
  flags.check_unknown();
  print_preamble("coexistence",
                 "section 3: coexistence/fairness with TCP and MPTCP",
                 scale);

  Simulation sim(scale.seed);
  FatTreeConfig ftc;
  ftc.k = scale.k;
  ftc.oversubscription = scale.oversubscription;
  FatTree ft(sim, ftc);
  Metrics metrics;
  SinkFarm sinks(sim, metrics, ft.network(), 5001, TcpConfig{});

  Rng rng = sim.rng().fork();
  const auto perm = permutation_matrix(rng, ft.host_count());

  // One long flow per host, protocols interleaved round-robin.
  const Protocol protos[] = {Protocol::kTcp, Protocol::kMptcp,
                             Protocol::kMmptcp};
  std::vector<std::unique_ptr<ClientFlow>> flows;
  for (std::size_t h = 0; h < ft.host_count(); ++h) {
    TransportConfig cfg;
    cfg.protocol = protos[h % 3];
    cfg.subflows = scale.subflows;
    cfg.scheduler = pull ? SchedulerKind::kPull
                         : SchedulerKind::kEagerRoundRobin;
    cfg.oracle = &ft;
    flows.push_back(std::make_unique<ClientFlow>(
        sim, metrics, ft.host(h), ft.host(perm[h]).addr(), cfg,
        ClientFlow::kLongFlow, /*long_flow=*/true));
  }
  sim.scheduler().run_until(Time::seconds(secs));

  Table table({"protocol", "flows", "goodput_mean_mbps", "goodput_p5_mbps",
               "goodput_p95_mbps"});
  std::vector<double> all;
  for (Protocol proto : protos) {
    const Summary g = metrics.long_flow_goodput_mbps(proto, sim.now());
    for (double v : g.samples()) all.push_back(v);
    table.add_row({to_string(proto), Table::num(std::uint64_t(g.count())),
                   ms(g.mean()), ms(g.percentile(5)), ms(g.percentile(95))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Jain fairness index across all long flows: %.3f\n",
              jain_index(all));
  std::printf(
      "expected shape: no protocol starves.  MPTCP-family flows yield to "
      "TCP — LIA's do-no-harm coupling never takes more than TCP would on "
      "a shared bottleneck — so 'harmony' here means safe coexistence, "
      "not equal shares (--pull isolates the scheduler's contribution).\n");
  return 0;
}
