// Discussion claim (§3): MMPTCP "could co-exist in harmony" with other
// transports.  Long flows of TCP, MPTCP and MMPTCP share one fabric
// under a permutation matrix; reports per-protocol goodput and Jain's
// fairness index.
//
// Thin wrapper over the experiment engine: registered as "coexistence".
// The old --pull flag is now the "scheduler" axis
// (--set scheduler=pull); --secs is the "secs" axis.

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::run_registered_main("coexistence", argc, argv);
}
