#include "common.h"

#include <cstdio>
#include <cstdlib>

namespace mmptcp::bench {

Scale parse_scale(Flags& flags) {
  Scale s;
  const char* env = std::getenv("MMPTCP_BENCH_SCALE");
  const bool env_full = env != nullptr && std::string(env) == "full";
  s.full = flags.get_bool("full", env_full,
                          "paper scale: k=8 4:1 FatTree (512 hosts)");
  if (s.full) {
    s.k = 8;
    s.oversubscription = 4;
    s.shorts = 20000;
    s.rate_per_host = 10.0;
    s.max_sim_time = Time::seconds(600);
  }
  s.k = static_cast<std::uint32_t>(flags.get_int("k", s.k, "FatTree k"));
  s.oversubscription = static_cast<std::uint32_t>(flags.get_int(
      "oversub", s.oversubscription, "edge oversubscription ratio"));
  s.shorts = static_cast<std::uint32_t>(
      flags.get_int("shorts", s.shorts, "number of short flows"));
  s.rate_per_host = flags.get_double("rate", s.rate_per_host,
                                     "short-flow arrivals/s per host");
  s.short_bytes = static_cast<std::uint64_t>(flags.get_int(
      "short-bytes", static_cast<std::int64_t>(s.short_bytes),
      "short flow size in bytes"));
  s.subflows = static_cast<std::uint32_t>(
      flags.get_int("subflows", s.subflows, "MPTCP/MMPTCP subflow count"));
  s.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(s.seed), "RNG seed"));
  s.max_sim_time = Time::seconds(
      flags.get_int("max-sim-secs", s.max_sim_time.ns() / 1'000'000'000,
                    "simulated-time budget"));
  return s;
}

ScenarioConfig paper_scenario(const Scale& scale, Protocol proto,
                              std::uint32_t subflows) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = scale.k;
  cfg.fat_tree.oversubscription = scale.oversubscription;
  cfg.transport.protocol = proto;
  cfg.transport.subflows = subflows;
  cfg.short_flow_count = scale.shorts;
  cfg.short_rate_per_host = scale.rate_per_host;
  cfg.short_flow_bytes = scale.short_bytes;
  cfg.seed = scale.seed;
  cfg.max_sim_time = scale.max_sim_time;
  return cfg;
}

void print_preamble(const std::string& binary, const std::string& artefact,
                    const Scale& scale) {
  std::printf("== %s ==\n", binary.c_str());
  std::printf("reproduces: %s\n", artefact.c_str());
  std::printf(
      "scale: %s (k=%u, %u:1 oversubscribed, %u shorts of %llu B, "
      "%.1f arrivals/s/host, seed %llu)\n\n",
      scale.full ? "FULL (paper)" : "reduced (use --full for paper scale)",
      scale.k, scale.oversubscription, scale.shorts,
      static_cast<unsigned long long>(scale.short_bytes),
      scale.rate_per_host, static_cast<unsigned long long>(scale.seed));
}

RunResult run_scenario(const ScenarioConfig& cfg) {
  Scenario sc(cfg);
  sc.run();
  RunResult r;
  r.fct_ms = sc.short_fct_ms();
  r.long_goodput = sc.long_goodput_mbps();
  r.utilization = sc.network_utilization();
  r.completion = sc.short_completion_ratio();
  r.rtos = sc.short_flow_rtos();
  r.flows_with_rto = sc.short_flows_with_rto();
  r.spurious = sc.total_spurious_retransmits();
  const auto layers = sc.layer_stats();
  if (const auto it = layers.find(LinkLayer::kAggCore); it != layers.end()) {
    r.core_loss = it->second.loss_rate();
  }
  if (const auto it = layers.find(LinkLayer::kEdgeAgg); it != layers.end()) {
    r.agg_loss = it->second.loss_rate();
  }
  r.end_time = sc.end_time();
  return r;
}

std::string ms(double v) { return Table::num(v, 2); }

void scatter_report(const ScenarioConfig& cfg, const char* csv_path) {
  Scenario sc(cfg);
  sc.run();
  const Summary fct = sc.short_fct_ms();

  std::printf("short flows: %zu completed (%.2f%%)\n", fct.count(),
              sc.short_completion_ratio() * 100);
  if (fct.count() == 0) return;
  std::printf("FCT ms: mean=%.2f sd=%.2f p50=%.2f p90=%.2f p99=%.2f "
              "max=%.2f\n",
              fct.mean(), fct.stddev(), fct.percentile(50),
              fct.percentile(90), fct.percentile(99), fct.max());
  std::printf("flows with >=1 RTO/SYN-timeout: %llu; total RTOs: %llu\n\n",
              static_cast<unsigned long long>(sc.short_flows_with_rto()),
              static_cast<unsigned long long>(sc.short_flow_rtos()));

  Table bands({"band", "flows"});
  bands.add_row({"< 100 ms", Table::num(std::uint64_t(
                                 fct.count() - fct.count_above(100.0)))});
  const double edges[] = {100, 1000, 2000, 4000, 8000};
  const char* labels[] = {"100 ms - 1 s", "1 - 2 s", "2 - 4 s", "4 - 8 s"};
  for (int i = 0; i < 4; ++i) {
    bands.add_row({labels[i],
                   Table::num(std::uint64_t(fct.count_above(edges[i]) -
                                            fct.count_above(edges[i + 1])))});
  }
  bands.add_row({"> 8 s", Table::num(std::uint64_t(fct.count_above(8000)))});
  std::printf("%s\n", bands.to_string().c_str());

  const auto shorts = sc.metrics().flows(
      [](const FlowRecord& r) { return !r.long_flow && r.is_complete(); });
  const std::size_t step = shorts.size() > 20 ? shorts.size() / 20 : 1;
  Table series({"flow_id", "fct_ms", "rtos"});
  for (std::size_t i = 0; i < shorts.size(); i += step) {
    series.add_row({Table::num(std::uint64_t(shorts[i]->flow_id)),
                    ms(shorts[i]->fct().to_millis()),
                    Table::num(std::uint64_t(shorts[i]->rto_count +
                                             shorts[i]->syn_timeouts))});
  }
  std::printf("decimated series (full data -> %s):\n%s\n", csv_path,
              series.to_string().c_str());

  if (std::FILE* f = std::fopen(csv_path, "w")) {
    std::fputs("flow_id,fct_ms,rtos,syn_timeouts\n", f);
    for (const auto* rec : shorts) {
      std::fprintf(f, "%u,%.3f,%u,%u\n", rec->flow_id,
                   rec->fct().to_millis(), rec->rto_count,
                   rec->syn_timeouts);
    }
    std::fclose(f);
  }
}

}  // namespace mmptcp::bench
