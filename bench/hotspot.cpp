// Roadmap experiment (§3): "effect of hotspots" — a fraction of short
// flows is redirected at one rack, creating a persistent hotspot; packet
// scatter routes around the congested core/agg paths, single-path TCP
// cannot.

#include <cstdio>

#include "common.h"

using namespace mmptcp;
using namespace mmptcp::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Scale scale = parse_scale(flags);
  if (flags.help_requested()) {
    std::fputs(flags.help(argv[0]).c_str(), stdout);
    return 0;
  }
  flags.check_unknown();
  print_preamble("hotspot", "roadmap: hotspot tolerance", scale);

  Table table({"hotspot_fraction", "protocol", "mean_ms", "p99_ms",
               "flows_with_rto", "completion", "core_loss"});
  for (const double frac : {0.0, 0.2, 0.5}) {
    for (Protocol proto : {Protocol::kTcp, Protocol::kMptcp,
                           Protocol::kMmptcp}) {
      ScenarioConfig cfg = paper_scenario(scale, proto, scale.subflows);
      cfg.hotspot_fraction = frac;
      const RunResult r = run_scenario(cfg);
      table.add_row({Table::num(frac, 2), to_string(proto),
                     ms(r.fct_ms.mean()), ms(r.fct_ms.percentile(99)),
                     Table::num(r.flows_with_rto), Table::pct(r.completion),
                     Table::pct(r.core_loss, 3)});
    }
    std::printf("  [hotspot=%.2f done]\n", frac);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "expected shape: as the hotspot grows, MMPTCP's advantage over "
      "TCP/MPTCP on the non-hotspot flows widens (spraying avoids the "
      "hot paths).\n");
  return 0;
}
