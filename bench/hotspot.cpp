// Roadmap experiment (§3): "effect of hotspots" — a fraction of short
// flows is redirected at one rack; packet scatter routes around the
// congested core/agg paths, single-path TCP cannot.
//
// Thin wrapper over the experiment engine: registered as "hotspot".

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::run_registered_main("hotspot", argc, argv);
}
