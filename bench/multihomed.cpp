// Roadmap experiment (§3): "multi-homed network topologies as these are
// well-suited to MMPTCP.  The more parallel paths at the access layer,
// the higher the burst tolerance."  Compares the standard FatTree with
// the dual-homed variant (every host attached to both edge switches of a
// pair).

#include <cstdio>

#include "common.h"

using namespace mmptcp;
using namespace mmptcp::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Scale scale = parse_scale(flags);
  if (flags.help_requested()) {
    std::fputs(flags.help(argv[0]).c_str(), stdout);
    return 0;
  }
  flags.check_unknown();
  print_preamble("multihomed", "roadmap: multi-homed (dual-homed) FatTree",
                 scale);

  Table table({"topology", "protocol", "mean_ms", "sd_ms", "p99_ms",
               "flows_with_rto", "long_goodput_mbps", "utilization"});
  for (const bool dual : {false, true}) {
    for (Protocol proto : {Protocol::kMptcp, Protocol::kMmptcp}) {
      ScenarioConfig cfg = paper_scenario(scale, proto, scale.subflows);
      cfg.dual_homed = dual;
      cfg.dual.k = scale.k;
      cfg.dual.oversubscription = scale.oversubscription;
      const RunResult r = run_scenario(cfg);
      table.add_row({dual ? "dual-homed" : "single-homed", to_string(proto),
                     ms(r.fct_ms.mean()), ms(r.fct_ms.stddev()),
                     ms(r.fct_ms.percentile(99)),
                     Table::num(r.flows_with_rto),
                     ms(r.long_goodput.count() ? r.long_goodput.mean() : 0.0),
                     Table::pct(r.utilization)});
      std::printf("  [%s/%s done]\n", dual ? "dual" : "single",
                  to_string(proto).c_str());
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "expected shape: dual homing helps MMPTCP's short-flow tail more "
      "than MPTCP's (the PS phase sprays over twice the access paths), "
      "per the paper's burst-tolerance argument.\n");
  return 0;
}
