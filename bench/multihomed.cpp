// Roadmap experiment (§3): multi-homed topologies — the standard FatTree
// vs the dual-homed variant (every host attached to both edge switches
// of a pair).
//
// Thin wrapper over the experiment engine: registered as "multihomed".

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::run_registered_main("multihomed", argc, argv);
}
