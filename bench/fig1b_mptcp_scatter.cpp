// Figure 1(b): per-flow completion times of short flows under MPTCP with
// 8 subflows — the scatter whose RTO bands reach multiple seconds.
//
// Prints the distribution summary, the second-resolution band histogram
// (the visual signature of Figure 1b), a decimated flow-id/FCT series,
// and writes the full series to fig1b_flows.csv.

#include <cstdio>

#include "common.h"

using namespace mmptcp;
using namespace mmptcp::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Scale scale = parse_scale(flags);
  if (flags.help_requested()) {
    std::fputs(flags.help(argv[0]).c_str(), stdout);
    return 0;
  }
  flags.check_unknown();
  print_preamble("fig1b_mptcp_scatter",
                 "Figure 1(b): MPTCP (8 subflows) per-flow FCT scatter",
                 scale);
  scatter_report(paper_scenario(scale, Protocol::kMptcp, scale.subflows),
                 "fig1b_flows.csv");
  std::printf("expected shape: dense sub-second band plus multi-second RTO "
              "bands (paper: outliers up to ~10 s).\n");
  return 0;
}
