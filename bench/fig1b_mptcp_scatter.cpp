// Figure 1(b): per-flow completion times of short flows under MPTCP with
// 8 subflows — the scatter whose RTO bands reach multiple seconds.
//
// Thin wrapper over the experiment engine: registered as "fig1b"; the
// band histogram becomes metrics and the full per-flow series lands in
// fig1b_flows_seed<seed>.csv.

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::run_registered_main("fig1b", argc, argv);
}
