// Out-of-order handling study (§2 "Packet Scatter Phase"): static-3 vs
// topology-aware vs adaptive RR-TCP duplicate-ACK thresholds under
// packet scatter.
//
// Thin wrapper over the experiment engine: registered as
// "ablation_dupthresh".

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::run_registered_main("ablation_dupthresh", argc, argv);
}
