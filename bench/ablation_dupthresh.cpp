// Out-of-order handling study (§2 "Packet Scatter Phase"):
//
//   (1) dynamically assigning the duplicate-ACK threshold from
//       topology-specific information (the FatTree addressing scheme), vs
//   (2) an RR-TCP style adaptive threshold driven by DSACK-detected
//       spurious retransmissions, vs
//   the classic static threshold of 3 that packet scatter breaks.

#include <cstdio>

#include "common.h"

using namespace mmptcp;
using namespace mmptcp::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Scale scale = parse_scale(flags);
  if (flags.help_requested()) {
    std::fputs(flags.help(argv[0]).c_str(), stdout);
    return 0;
  }
  flags.check_unknown();
  print_preamble("ablation_dupthresh",
                 "section 2 'PS Phase' reordering-robustness study", scale);

  Table table({"dupack_policy", "spurious_rtx", "fast_rtx_flows",
               "flows_with_rto", "short_mean_ms", "short_sd_ms",
               "short_p99_ms"});
  struct Variant {
    const char* name;
    DupAckPolicyKind kind;
  };
  const Variant variants[] = {
      {"static-3 (classic TCP)", DupAckPolicyKind::kStatic},
      {"topology-aware (paper #1)", DupAckPolicyKind::kTopologyAware},
      {"adaptive RR-TCP (paper #2)", DupAckPolicyKind::kAdaptive},
  };
  for (const Variant& v : variants) {
    ScenarioConfig cfg = paper_scenario(scale, Protocol::kPacketScatter, 1);
    cfg.transport.ps_dupack.kind = v.kind;
    Scenario sc(cfg);
    sc.run();
    const Summary fct = sc.short_fct_ms();
    const auto fast_rtx_flows = sc.metrics().total(
        [](const FlowRecord& r) { return r.fast_retransmits > 0 ? 1u : 0u; },
        [](const FlowRecord& r) { return !r.long_flow; });
    table.add_row({v.name, Table::num(sc.total_spurious_retransmits()),
                   Table::num(fast_rtx_flows),
                   Table::num(sc.short_flows_with_rto()),
                   ms(fct.count() ? fct.mean() : 0),
                   ms(fct.count() ? fct.stddev() : 0),
                   ms(fct.count() ? fct.percentile(99) : 0)});
    std::printf("  [%s done]\n", v.name);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "expected shape: static-3 fires many spurious retransmissions from "
      "spray-induced reordering, but the DSACK undo makes them nearly "
      "free, so its FCTs stay best; raising the threshold "
      "(topology-aware, adaptive) trades spurious retransmissions for "
      "forgone recoveries that cost full RTOs — visible as a worse tail. "
      "This is the study the paper's section 2 calls for.\n");
  return 0;
}
