// Figure 1(a): mean and standard deviation of short-flow completion time
// under MPTCP as the number of subflows grows from 1 to 9.
//
// Thin wrapper over the experiment engine: the scenario lives in the
// registry as "fig1a" (src/exp/experiments.cpp).  Sweep knobs:
//   --jobs N --seeds 1..10 --set subflows=1,4,9 --full

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::run_registered_main("fig1a", argc, argv);
}
