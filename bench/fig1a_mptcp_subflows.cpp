// Figure 1(a): mean and standard deviation of short-flow completion time
// under MPTCP as the number of subflows grows from 1 to 9.
//
// Paper's reading: the mean rises mildly with subflow count (inset,
// ~80-140 ms) while the standard deviation explodes (to ~700 ms at 9
// subflows) because more and more short flows take an RTO: with 70 KB
// split over many subflows, each subflow's window is too small to recover
// losses via fast retransmission.

#include <cstdio>

#include "common.h"

using namespace mmptcp;
using namespace mmptcp::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Scale scale = parse_scale(flags);
  const auto max_subflows = static_cast<std::uint32_t>(
      flags.get_int("max-subflows", 9, "largest subflow count"));
  if (flags.help_requested()) {
    std::fputs(flags.help(argv[0]).c_str(), stdout);
    return 0;
  }
  flags.check_unknown();
  print_preamble("fig1a_mptcp_subflows",
                 "Figure 1(a): MPTCP short-flow FCT vs #subflows", scale);

  Table table({"subflows", "mean_ms", "stddev_ms", "p50_ms", "p99_ms",
               "max_ms", "flows_with_rto", "completion"});
  for (std::uint32_t n = 1; n <= max_subflows; ++n) {
    const ScenarioConfig cfg = paper_scenario(scale, Protocol::kMptcp, n);
    const RunResult r = run_scenario(cfg);
    table.add_row({Table::num(std::int64_t(n)), ms(r.fct_ms.mean()),
                   ms(r.fct_ms.stddev()), ms(r.fct_ms.percentile(50)),
                   ms(r.fct_ms.percentile(99)), ms(r.fct_ms.max()),
                   Table::num(r.flows_with_rto), Table::pct(r.completion)});
    std::printf("  [subflows=%u done]\n", n);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("paper series (approx. from Figure 1a): mean ~80->140 ms and "
              "stddev ~100->700 ms as subflows go 1->9\n");
  std::printf("expected shape: mean and stddev both rise with subflow "
              "count; flows_with_rto grows.\n");
  return 0;
}
