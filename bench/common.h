#pragma once

// Shared plumbing for the per-figure bench binaries.
//
// Every bench runs the paper's scenario at a laptop-friendly scale by
// default and switches to paper scale (k=8, 4:1, 512 hosts) with --full or
// MMPTCP_BENCH_SCALE=full.  Individual knobs (--k, --shorts, --rate,
// --seed, ...) can override either preset.

#include <string>

#include "util/flags.h"
#include "util/table.h"
#include "workload/scenario.h"

namespace mmptcp::bench {

/// Effective workload scale for one bench invocation.
struct Scale {
  bool full = false;
  std::uint32_t k = 4;
  std::uint32_t oversubscription = 4;
  std::uint32_t shorts = 1000;
  double rate_per_host = 8.0;
  std::uint64_t short_bytes = 70 * 1024;
  std::uint32_t subflows = 8;
  std::uint64_t seed = 1;
  Time max_sim_time = Time::seconds(120);
};

/// Reads the scale from flags + environment; registers the common flags.
Scale parse_scale(Flags& flags);

/// The paper's Figure-1 scenario at the given scale.
ScenarioConfig paper_scenario(const Scale& scale, Protocol proto,
                              std::uint32_t subflows);

/// Prints the bench banner (what paper artefact this regenerates).
void print_preamble(const std::string& binary, const std::string& artefact,
                    const Scale& scale);

/// Everything the tables report about one finished run.
struct RunResult {
  Summary fct_ms;           ///< short-flow completion times
  Summary long_goodput;     ///< Mb/s per long flow
  double utilization = 0;   ///< network-wide goodput / host capacity
  double completion = 0;    ///< fraction of shorts that completed
  std::uint64_t rtos = 0;   ///< RTOs + SYN timeouts across shorts
  std::uint64_t flows_with_rto = 0;
  std::uint64_t spurious = 0;
  double core_loss = 0;     ///< drop rate at the core layer
  double agg_loss = 0;      ///< drop rate at the aggregation layer
  Time end_time;
};

/// Builds, runs and summarises one scenario.
RunResult run_scenario(const ScenarioConfig& cfg);

/// Convenience: "12.34" with sane precision for milliseconds.
std::string ms(double v);

/// Runs `cfg` and prints the Figure-1(b)/(c) style scatter report: FCT
/// summary, second-resolution band histogram, decimated flow-id series;
/// dumps the full per-flow series to `csv_path`.
void scatter_report(const ScenarioConfig& cfg, const char* csv_path);

}  // namespace mmptcp::bench
