// Phase-switching study (§2 "Phase Switching"):
//
//  * Data-volume thresholds from 70 KB to 4 MB — the paper's claim is that
//    volume-based switching "does not exert any negative effects on the
//    throughput of long flows since the opening of multiple sub-flows
//    after switching can wrap up access link capacity in a few RTTs".
//  * The congestion-event trigger (switch at first fast-rtx/RTO).
//  * Never switching (pure packet scatter) and plain MPTCP as endpoints
//    of the design space.
//  * The reinjection ablation for MPTCP (why Figure 1(b) stalls happen).

#include <cstdio>

#include "common.h"

using namespace mmptcp;
using namespace mmptcp::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Scale scale = parse_scale(flags);
  if (flags.help_requested()) {
    std::fputs(flags.help(argv[0]).c_str(), stdout);
    return 0;
  }
  flags.check_unknown();
  print_preamble("ablation_switching",
                 "section 2 'Phase Switching' design study", scale);

  Table table({"variant", "short_mean_ms", "short_sd_ms", "short_p99_ms",
               "flows_with_rto", "long_goodput_mbps", "utilization"});
  auto add = [&table](const std::string& name, const RunResult& r) {
    table.add_row({name, ms(r.fct_ms.mean()), ms(r.fct_ms.stddev()),
                   ms(r.fct_ms.percentile(99)), Table::num(r.flows_with_rto),
                   ms(r.long_goodput.count() ? r.long_goodput.mean() : 0.0),
                   Table::pct(r.utilization)});
  };

  for (const std::uint64_t kb : {70, 128, 256, 512, 1024, 4096}) {
    ScenarioConfig cfg =
        paper_scenario(scale, Protocol::kMmptcp, scale.subflows);
    cfg.transport.phase.kind = SwitchPolicyKind::kDataVolume;
    cfg.transport.phase.volume_bytes = kb * 1024;
    add("volume " + std::to_string(kb) + "KB", run_scenario(cfg));
    std::printf("  [volume=%lluKB done]\n",
                static_cast<unsigned long long>(kb));
  }
  {
    ScenarioConfig cfg =
        paper_scenario(scale, Protocol::kMmptcp, scale.subflows);
    cfg.transport.phase.kind = SwitchPolicyKind::kCongestionEvent;
    add("congestion-event", run_scenario(cfg));
    std::printf("  [congestion-event done]\n");
  }
  add("never (pure PS)",
      run_scenario(paper_scenario(scale, Protocol::kPacketScatter, 1)));
  std::printf("  [never done]\n");
  add("MPTCP (no PS phase)",
      run_scenario(paper_scenario(scale, Protocol::kMptcp, scale.subflows)));
  std::printf("  [mptcp done]\n");
  {
    ScenarioConfig cfg =
        paper_scenario(scale, Protocol::kMptcp, scale.subflows);
    cfg.transport.reinject_on_rto = true;
    add("MPTCP + reinjection", run_scenario(cfg));
    std::printf("  [mptcp+reinjection done]\n");
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "expected shape: long-flow goodput roughly flat across volume "
      "thresholds (the paper's claim); short-flow tail degrades toward "
      "the MPTCP row as the threshold shrinks below the 70KB flow size.\n");
  return 0;
}
