// Phase-switching study (§2 "Phase Switching"): volume thresholds from
// 70 KB to 4 MB, the congestion-event trigger, pure packet scatter,
// plain MPTCP and the MPTCP reinjection ablation.
//
// Thin wrapper over the experiment engine: registered as
// "ablation_switching".

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::run_registered_main("ablation_switching", argc, argv);
}
