// Figure 1(c): per-flow completion times of short flows under MMPTCP
// (packet-scatter phase, then 8 subflows).
//
// Thin wrapper over the experiment engine: registered as "fig1c"; the
// band histogram becomes metrics and the full per-flow series lands in
// fig1c_flows_seed<seed>.csv.

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::run_registered_main("fig1c", argc, argv);
}
