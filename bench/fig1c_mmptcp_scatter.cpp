// Figure 1(c): per-flow completion times of short flows under MMPTCP
// (packet-scatter phase, then 8 subflows).
//
// The paper's reading: "the majority of short flows completed within
// 100ms"; mean 116 ms with standard deviation 101 ms (vs 126/425 for
// MPTCP) — the multi-second RTO bands of Figure 1(b) vanish because the
// single sprayed window recovers losses with fast retransmissions.

#include <cstdio>

#include "common.h"

using namespace mmptcp;
using namespace mmptcp::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Scale scale = parse_scale(flags);
  if (flags.help_requested()) {
    std::fputs(flags.help(argv[0]).c_str(), stdout);
    return 0;
  }
  flags.check_unknown();
  print_preamble(
      "fig1c_mmptcp_scatter",
      "Figure 1(c): MMPTCP (PS then 8 subflows) per-flow FCT scatter",
      scale);
  scatter_report(paper_scenario(scale, Protocol::kMmptcp, scale.subflows),
                 "fig1c_flows.csv");
  std::printf("expected shape: the RTO bands of Figure 1(b) collapse; "
              "majority of flows < 100 ms at paper scale "
              "(paper: mean 116 ms, sd 101 ms).\n");
  return 0;
}
