// Engine microbenchmarks (google-benchmark): the primitives whose cost
// bounds how large a topology/workload the simulator can handle.

#include <benchmark/benchmark.h>

#include "core/transport_factory.h"
#include "net/ecmp.h"
#include "topo/fat_tree.h"
#include "util/interval_set.h"
#include "workload/scenario.h"

namespace {

using namespace mmptcp;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    std::uint64_t sum = 0;
    for (int i = 0; i < batch; ++i) {
      sched.schedule(Time::nanos((i * 7919) % 65536),
                     [&sum, i] { sum += std::uint64_t(i); });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(16384);

void BM_EcmpHash(benchmark::State& state) {
  std::uint16_t sport = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ecmp_select(0x1234, Addr{0x0a000102}, Addr{0x0a030201}, ++sport,
                    5001, 16));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EcmpHash);

void BM_IntervalSetInOrderInsert(benchmark::State& state) {
  for (auto _ : state) {
    IntervalSet s;
    for (std::uint64_t i = 0; i < 1000; ++i) {
      s.insert(i * 1400, (i + 1) * 1400);
    }
    benchmark::DoNotOptimize(s.covered());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IntervalSetInOrderInsert);

void BM_IntervalSetReorderedInsert(benchmark::State& state) {
  for (auto _ : state) {
    IntervalSet s;
    // Even segments first, then odd: worst-case interval churn.
    for (std::uint64_t i = 0; i < 1000; i += 2) {
      s.insert(i * 1400, (i + 1) * 1400);
    }
    for (std::uint64_t i = 1; i < 1000; i += 2) {
      s.insert(i * 1400, (i + 1) * 1400);
    }
    benchmark::DoNotOptimize(s.covered());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IntervalSetReorderedInsert);

void BM_DropTailQueue(benchmark::State& state) {
  Packet p;
  p.payload = 1400;
  for (auto _ : state) {
    DropTailQueue q(QueueLimits{128, 0});
    for (int i = 0; i < 100; ++i) q.try_push(p);
    while (auto pkt = q.pop()) benchmark::DoNotOptimize(pkt->payload);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_DropTailQueue);

void BM_FatTreeConstruction(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim(1);
    FatTreeConfig cfg;
    cfg.k = k;
    cfg.oversubscription = 4;
    FatTree ft(sim, cfg);
    benchmark::DoNotOptimize(ft.host_count());
  }
}
BENCHMARK(BM_FatTreeConstruction)->Arg(4)->Arg(8);

// End-to-end: one 70 KB TCP flow across a k=4 FatTree; reports simulator
// event throughput.
void BM_EndToEndShortFlow(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    Simulation sim(1);
    FatTreeConfig cfg;
    cfg.k = 4;
    FatTree ft(sim, cfg);
    Metrics metrics;
    Sink sink(sim, metrics, ft.host(15), 5001, TcpConfig{});
    TransportConfig tc;
    tc.protocol = Protocol::kTcp;
    ClientFlow flow(sim, metrics, ft.host(0), ft.host(15).addr(), tc,
                    70 * 1024, false);
    sim.scheduler().run_until(Time::seconds(10));
    events += sim.scheduler().executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(events),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndShortFlow);

// Full contended mix on a small FatTree: the realistic events/second
// figure that bounds bench run times.
void BM_EndToEndContendedMix(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    ScenarioConfig cfg;
    cfg.fat_tree.k = 4;
    cfg.fat_tree.oversubscription = 2;
    cfg.transport.protocol = Protocol::kMmptcp;
    cfg.transport.subflows = 4;
    cfg.short_flow_count = 50;
    cfg.short_rate_per_host = 20.0;
    cfg.max_sim_time = Time::seconds(20);
    Scenario sc(cfg);
    sc.run();
    events += sc.sim().scheduler().executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(events),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndContendedMix)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
