// Roadmap experiment (§3): "effect of ... network loads" — short-flow FCT
// and long-flow goodput for all four transports as the short-flow arrival
// rate sweeps the fabric from lightly to heavily loaded.

#include <cstdio>

#include "common.h"

using namespace mmptcp;
using namespace mmptcp::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Scale scale = parse_scale(flags);
  if (flags.help_requested()) {
    std::fputs(flags.help(argv[0]).c_str(), stdout);
    return 0;
  }
  flags.check_unknown();
  // The sweep multiplies the base arrival rate; shrink the flow count per
  // point so the whole sweep stays fast.
  scale.shorts = scale.shorts / 2;
  print_preamble("load_sweep", "roadmap: network-load sweep", scale);

  Table table({"rate/host", "protocol", "mean_ms", "sd_ms", "p99_ms",
               "flows_with_rto", "long_goodput_mbps"});
  for (const double mult : {0.25, 0.5, 1.0, 2.0}) {
    for (Protocol proto : {Protocol::kTcp, Protocol::kMptcp,
                           Protocol::kPacketScatter, Protocol::kMmptcp}) {
      ScenarioConfig cfg = paper_scenario(scale, proto, scale.subflows);
      cfg.short_rate_per_host = scale.rate_per_host * mult;
      const RunResult r = run_scenario(cfg);
      table.add_row({Table::num(cfg.short_rate_per_host, 1),
                     to_string(proto), ms(r.fct_ms.mean()),
                     ms(r.fct_ms.stddev()), ms(r.fct_ms.percentile(99)),
                     Table::num(r.flows_with_rto),
                     ms(r.long_goodput.count() ? r.long_goodput.mean()
                                               : 0.0)});
    }
    std::printf("  [rate x%.2f done]\n", mult);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "expected shape: MMPTCP tracks PS on short-flow latency at every "
      "load while matching MPTCP on long-flow goodput; MPTCP's tail "
      "degrades fastest as load grows.\n");
  return 0;
}
