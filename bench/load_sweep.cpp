// Roadmap experiment (§3): "effect of ... network loads" — short-flow
// FCT and long-flow goodput for all four transports as the arrival rate
// sweeps the fabric from lightly to heavily loaded.
//
// Thin wrapper over the experiment engine: registered as "load_sweep".

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::run_registered_main("load_sweep", argc, argv);
}
