// The in-text summary numbers of §3 ("Discussion"): MPTCP vs MMPTCP on
// FCT, per-layer loss, long-flow goodput and network utilisation.
//
// Thin wrapper over the experiment engine: registered as "text_summary".

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::run_registered_main("text_summary", argc, argv);
}
