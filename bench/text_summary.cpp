// The in-text summary numbers of §3 ("Discussion"), reported as a table:
//
//   "The average flow completion time and the standard deviation for
//    MMPTCP and MPTCP are 116 milliseconds (standard deviation is 101)
//    and 126 milliseconds (standard deviation is 425), respectively. ...
//    with MMPTCP the average loss rate at the core and aggregation layers
//    are slightly lower compared to MPTCP and both protocols achieve the
//    same average throughput for long flows and overall network
//    utilisation."

#include <cstdio>

#include "common.h"

using namespace mmptcp;
using namespace mmptcp::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Scale scale = parse_scale(flags);
  if (flags.help_requested()) {
    std::fputs(flags.help(argv[0]).c_str(), stdout);
    return 0;
  }
  flags.check_unknown();
  print_preamble("text_summary",
                 "section 3 in-text comparison (the poster's 'table')",
                 scale);

  Table table({"protocol", "mean_fct_ms", "stddev_ms", "p99_ms",
               "flows_with_rto", "core_loss", "agg_loss",
               "long_goodput_mbps", "utilization", "completion"});
  for (Protocol proto : {Protocol::kMptcp, Protocol::kMmptcp}) {
    const RunResult r =
        run_scenario(paper_scenario(scale, proto, scale.subflows));
    table.add_row({to_string(proto), ms(r.fct_ms.mean()),
                   ms(r.fct_ms.stddev()), ms(r.fct_ms.percentile(99)),
                   Table::num(r.flows_with_rto), Table::pct(r.core_loss, 3),
                   Table::pct(r.agg_loss, 3),
                   ms(r.long_goodput.count() ? r.long_goodput.mean() : 0.0),
                   Table::pct(r.utilization), Table::pct(r.completion)});
    std::printf("  [%s done]\n", to_string(proto).c_str());
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "paper values: MMPTCP 116 ms (sd 101) vs MPTCP 126 ms (sd 425); "
      "MMPTCP core+agg loss slightly lower; long-flow goodput and "
      "utilisation at parity.\n"
      "expected shape: MMPTCP stddev and RTO count far below MPTCP's; "
      "means comparable; goodput/utilisation within a few percent.\n");
  return 0;
}
