// Objective (3) of the paper: "tolerance to sudden and high bursts of
// traffic".  N synchronized senders transmit 70 KB each to one receiver.
//
// Thin wrapper over the experiment engine: registered as "incast".
// The old --shared-buffer flag is now --set shared_buffer=1.

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::run_registered_main("incast", argc, argv);
}
