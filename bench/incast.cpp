// Objective (3) of the paper: "tolerance to sudden and high bursts of
// traffic".  N synchronized senders transmit 70 KB each to one receiver;
// the shared-memory-switch pathology behind TCP incast.

#include <cstdio>

#include "common.h"

using namespace mmptcp;
using namespace mmptcp::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Scale scale = parse_scale(flags);
  const bool shared_buffer = flags.get_bool(
      "shared-buffer", false, "model shared-memory switch buffers");
  if (flags.help_requested()) {
    std::fputs(flags.help(argv[0]).c_str(), stdout);
    return 0;
  }
  flags.check_unknown();
  print_preamble("incast", "objective (3): burst (incast) tolerance", scale);

  Table table({"senders", "protocol", "makespan_ms", "mean_fct_ms",
               "p99_fct_ms", "rtos", "syn_timeouts", "completion"});
  const std::uint32_t fan_in_max =
      scale.k == 4 ? 48u : 128u;  // bounded by hosts outside the rack
  for (std::uint32_t senders = 8; senders <= fan_in_max; senders *= 2) {
    for (Protocol proto : {Protocol::kTcp, Protocol::kMptcp,
                           Protocol::kPacketScatter, Protocol::kMmptcp}) {
      IncastConfig cfg;
      cfg.fat_tree.k = scale.k;
      cfg.fat_tree.oversubscription = scale.oversubscription;
      cfg.fat_tree.shared_buffer = shared_buffer;
      cfg.transport.protocol = proto;
      cfg.transport.subflows = scale.subflows;
      cfg.senders = senders;
      cfg.bytes = scale.short_bytes;
      cfg.seed = scale.seed;
      const IncastResult r = run_incast(cfg);
      table.add_row(
          {Table::num(std::uint64_t(senders)), to_string(proto),
           ms(r.makespan.to_millis()),
           ms(r.fct_ms.count() ? r.fct_ms.mean() : 0),
           ms(r.fct_ms.count() ? r.fct_ms.percentile(99) : 0),
           Table::num(r.rtos), Table::num(r.syn_timeouts),
           Table::pct(r.completion_ratio)});
    }
    std::printf("  [senders=%u done]\n", senders);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "expected shape: RTO counts grow with fan-in for MPTCP (many tiny "
      "windows); PS/MMPTCP tolerate larger bursts before the first "
      "timeout; everyone completes eventually.\n");
  return 0;
}
