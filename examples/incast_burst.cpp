// Burst tolerance (paper objective 3): a synchronized 32-to-1 incast of
// 70 KB responses — the classic partition/aggregate pattern that drives
// short TCP flows into retransmission timeouts.  Packet scatter absorbs
// the burst by spreading it over every path into the receiver's rack.

#include <cstdio>

#include "util/table.h"
#include "workload/scenario.h"

using namespace mmptcp;

int main() {
  Table table({"protocol", "makespan (ms)", "mean fct (ms)", "p99 fct (ms)",
               "RTOs", "SYN timeouts"});
  for (Protocol proto : {Protocol::kTcp, Protocol::kMptcp,
                         Protocol::kPacketScatter, Protocol::kMmptcp}) {
    IncastConfig cfg;
    cfg.fat_tree.k = 4;
    cfg.fat_tree.oversubscription = 4;  // 64 hosts
    cfg.transport.protocol = proto;
    cfg.transport.subflows = 4;
    cfg.senders = 32;
    cfg.bytes = 70 * 1024;
    const IncastResult r = run_incast(cfg);
    table.add_row({to_string(proto), Table::num(r.makespan.to_millis(), 1),
                   Table::num(r.fct_ms.mean(), 1),
                   Table::num(r.fct_ms.percentile(99), 1),
                   Table::num(r.rtos), Table::num(r.syn_timeouts)});
    std::printf("%s done\n", to_string(proto).c_str());
  }
  std::printf("\n32 senders x 70KB -> 1 receiver, k=4 FatTree @100Mb/s:\n\n");
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Lower-bound makespan (pure serialisation on the receiver "
              "link): %.1f ms\n", 32.0 * 70 * 1024 * 8 / 100e6 * 1e3);
  return 0;
}
