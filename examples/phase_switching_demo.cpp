// A microscope on one MMPTCP connection: watch a 2 MB transfer start in
// the packet-scatter phase, hit the data-volume threshold, open its MPTCP
// subflows, and drain the PS window — the paper's §2 life cycle, printed
// as a timeline.

#include <cstdio>

#include "workload/scenario.h"

using namespace mmptcp;

int main() {
  Simulation sim(99);
  FatTreeConfig ftc;
  ftc.k = 4;
  FatTree topo(sim, ftc);
  Metrics metrics;
  SinkFarm sinks(sim, metrics, topo.network(), 5001, TcpConfig{});

  TransportConfig cfg;
  cfg.protocol = Protocol::kMmptcp;
  cfg.subflows = 4;
  cfg.phase.kind = SwitchPolicyKind::kDataVolume;
  cfg.phase.volume_bytes = 300 * 1024;
  cfg.oracle = &topo;

  ClientFlow flow(sim, metrics, topo.host(0), topo.host(15).addr(), cfg,
                  2'000'000, /*long_flow=*/false);
  MmptcpConnection* conn = flow.mmptcp();

  std::printf("time        phase   subflows  data_mapped  delivered  "
              "ps_state\n");
  std::printf("---------------------------------------------------------"
              "--------\n");
  // Sample the connection every 10 ms until the flow completes.
  std::function<void()> sample = [&] {
    const FlowRecord& rec = metrics.record(flow.flow_id());
    const auto* ps = conn->ps_subflow();
    std::printf("%9s  %-6s  %8zu  %11llu  %9llu  %s\n",
                sim.now().to_string().c_str(),
                conn->switched() ? "MPTCP" : "PS", conn->subflow_count(),
                static_cast<unsigned long long>(conn->data_next()),
                static_cast<unsigned long long>(rec.delivered_bytes),
                ps == nullptr          ? "-"
                : ps->sender_drained() ? "drained"
                : ps->stream_frozen()  ? "draining"
                                       : "active");
    if (!rec.is_complete() && sim.now() < Time::seconds(30)) {
      sim.scheduler().schedule(Time::millis(10), sample);
    }
  };
  sim.scheduler().schedule(Time::millis(1), sample);
  sim.scheduler().run_until(Time::seconds(30));

  const FlowRecord& rec = metrics.record(flow.flow_id());
  std::printf("\nflow completed in %s\n", rec.fct().to_string().c_str());
  if (rec.switched_phase()) {
    std::printf("phase switch happened %s after start (threshold 300 KB)\n",
                (rec.phase_switch_at - rec.start).to_string().c_str());
  }
  std::printf("subflows that carried data: %u (1 PS + %u MPTCP)\n",
              rec.subflows_used, rec.subflows_used - 1);
  std::printf("sent %u data packets for %llu bytes delivered\n",
              rec.packets_sent,
              static_cast<unsigned long long>(rec.delivered_bytes));
  return 0;
}
