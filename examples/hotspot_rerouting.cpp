// Hotspot rerouting (paper roadmap): when a fraction of traffic piles
// onto one rack, single-path flows that hash onto the hot core links
// suffer; sprayed flows dodge them packet by packet.  This example makes
// the effect visible by printing per-core utilisation with and without
// packet scatter.

#include <cstdio>

#include "util/table.h"
#include "workload/scenario.h"

using namespace mmptcp;

namespace {

ScenarioConfig scenario(Protocol proto) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.fat_tree.oversubscription = 2;  // 32 hosts
  cfg.transport.protocol = proto;
  cfg.transport.subflows = 4;
  cfg.short_flow_count = 400;
  cfg.short_rate_per_host = 12.0;
  cfg.hotspot_fraction = 0.4;  // 40% of shorts hammer rack (0,0)
  cfg.seed = 7;
  cfg.max_sim_time = Time::seconds(60);
  return cfg;
}

std::uint64_t core_tx(Scenario& sc, std::uint32_t core) {
  std::uint64_t tx = 0;
  Switch& sw = sc.fat_tree()->core_switch(core);
  for (std::size_t p = 0; p < sw.port_count(); ++p) {
    tx += sw.port(p).counters().tx_bytes;
  }
  return tx;
}

}  // namespace

int main() {
  Table table({"protocol", "short mean (ms)", "short p99 (ms)",
               "shorts w/ RTO", "core min/max byte ratio"});
  for (Protocol proto : {Protocol::kTcp, Protocol::kMmptcp}) {
    std::printf("running %s with a 40%% hotspot...\n",
                to_string(proto).c_str());
    Scenario sc(scenario(proto));
    sc.run();
    std::uint64_t lo = std::uint64_t(-1), hi = 0;
    for (std::uint32_t c = 0; c < sc.fat_tree()->core_count(); ++c) {
      const auto tx = core_tx(sc, c);
      lo = std::min(lo, tx);
      hi = std::max(hi, tx);
    }
    const Summary fct = sc.short_fct_ms();
    table.add_row({to_string(proto), Table::num(fct.mean(), 1),
                   Table::num(fct.percentile(99), 1),
                   Table::num(sc.short_flows_with_rto()),
                   Table::num(hi ? double(lo) / double(hi) : 0.0, 2)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("A min/max core ratio near 1.0 means the load spread evenly "
              "over the core\n(packet scatter); small ratios mean some "
              "cores idled while others were hot.\n");
  return 0;
}
