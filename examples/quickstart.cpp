// Quickstart: the smallest complete use of the library.
//
// Builds a 16-host FatTree, installs sinks, runs one MMPTCP flow next to
// one TCP flow, and prints what happened.  Start here, then look at
// short_vs_long.cpp for the paper's full scenario.

#include <cstdio>

#include "workload/scenario.h"

using namespace mmptcp;

int main() {
  // 1. A simulation context: event queue + seeded deterministic RNG.
  Simulation sim(/*seed=*/42);

  // 2. A topology.  FatTreeConfig's defaults give a k=4 tree (16 hosts,
  //    100 Mb/s links, 20 us hops, 100-packet drop-tail queues).
  FatTree topo(sim, FatTreeConfig{});
  std::printf("built a k=%u FatTree: %zu hosts, %u cores\n", topo.k(),
              topo.host_count(), topo.core_count());

  // 3. Metrics registry + a sink (server) on every host.
  Metrics metrics;
  SinkFarm sinks(sim, metrics, topo.network(), /*port=*/5001, TcpConfig{});

  // 4. Transport configuration.  The oracle lets MMPTCP derive its
  //    dup-ACK threshold from the FatTree addressing scheme.
  TransportConfig mmptcp_cfg;
  mmptcp_cfg.protocol = Protocol::kMmptcp;
  mmptcp_cfg.subflows = 4;                       // MPTCP phase width
  mmptcp_cfg.phase.volume_bytes = 256 * 1024;    // PS -> MPTCP switch point
  mmptcp_cfg.oracle = &topo;

  TransportConfig tcp_cfg;
  tcp_cfg.protocol = Protocol::kTcp;

  // 5. Two flows: a 1 MB MMPTCP transfer (crosses pods, so the PS phase
  //    sprays over all four cores, then switches to 4 subflows) and a
  //    70 KB TCP short flow sharing part of the path.
  ClientFlow big(sim, metrics, topo.host(0), topo.host(15).addr(),
                 mmptcp_cfg, 1'000'000, /*long_flow=*/false);
  ClientFlow small(sim, metrics, topo.host(1), topo.host(14).addr(),
                   tcp_cfg, 70 * 1024, /*long_flow=*/false);

  // 6. Run.
  sim.scheduler().run_until(Time::seconds(30));

  // 7. Inspect results.
  const FlowRecord& big_rec = metrics.record(big.flow_id());
  const FlowRecord& small_rec = metrics.record(small.flow_id());
  std::printf("\nMMPTCP 1MB flow:  fct=%s  delivered=%llu bytes\n",
              big_rec.fct().to_string().c_str(),
              static_cast<unsigned long long>(big_rec.delivered_bytes));
  if (big_rec.switched_phase()) {
    std::printf("  switched PS->MPTCP at %s (used %u subflows)\n",
                (big_rec.phase_switch_at - big_rec.start).to_string().c_str(),
                big_rec.subflows_used);
  }
  std::printf("TCP 70KB flow:    fct=%s  delivered=%llu bytes\n",
              small_rec.fct().to_string().c_str(),
              static_cast<unsigned long long>(small_rec.delivered_bytes));
  std::printf("\nevents executed: %llu\n",
              static_cast<unsigned long long>(sim.scheduler().executed()));
  return 0;
}
