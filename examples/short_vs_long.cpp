// The paper's headline scenario, runnable in seconds: one third of hosts
// run long background flows, the rest send Poisson 70 KB shorts over a
// permutation traffic matrix on a 4:1 oversubscribed FatTree — once under
// MPTCP (8 subflows) and once under MMPTCP.  "A battle that both can
// win": shorts keep low latency AND longs keep high throughput.

#include <cstdio>

#include "util/table.h"
#include "workload/scenario.h"

using namespace mmptcp;

namespace {

ScenarioConfig scenario(Protocol proto) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = 4;
  cfg.fat_tree.oversubscription = 4;  // 64 hosts, 4:1 like the paper
  cfg.transport.protocol = proto;
  cfg.transport.subflows = 8;
  cfg.short_flow_count = 600;
  cfg.short_rate_per_host = 8.0;
  cfg.short_flow_bytes = 70 * 1024;
  cfg.seed = 2015;  // SIGCOMM '15
  cfg.max_sim_time = Time::seconds(120);
  return cfg;
}

}  // namespace

int main() {
  Table table({"protocol", "short mean (ms)", "short stddev", "short p99",
               "shorts with RTO", "long goodput (Mb/s)", "utilisation"});
  for (Protocol proto : {Protocol::kMptcp, Protocol::kMmptcp}) {
    std::printf("running %s...\n", to_string(proto).c_str());
    Scenario sc(scenario(proto));
    sc.run();
    const Summary fct = sc.short_fct_ms();
    const Summary goodput = sc.long_goodput_mbps();
    table.add_row({to_string(proto), Table::num(fct.mean(), 1),
                   Table::num(fct.stddev(), 1),
                   Table::num(fct.percentile(99), 1),
                   Table::num(sc.short_flows_with_rto()),
                   Table::num(goodput.mean(), 1),
                   Table::pct(sc.network_utilization(), 1)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("The paper's claim: MMPTCP keeps the short-flow tail small "
              "(low stddev, few RTOs)\nwhile matching MPTCP's long-flow "
              "throughput and utilisation.\n");
  return 0;
}
