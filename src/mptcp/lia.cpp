#include "mptcp/lia.h"

#include <algorithm>

#include "util/check.h"

namespace mmptcp {

double lia_alpha(const std::vector<LiaView>& views) {
  double best_ratio = 0.0;   // max_i cwnd_i / rtt_i^2
  double sum_rate = 0.0;     // sum_i cwnd_i / rtt_i
  double total = 0.0;
  std::size_t usable = 0;
  for (const LiaView& v : views) {
    if (v.cwnd_bytes == 0) continue;
    const double rtt = std::max(v.rtt_seconds, 1e-6);
    const double cwnd = static_cast<double>(v.cwnd_bytes);
    best_ratio = std::max(best_ratio, cwnd / (rtt * rtt));
    sum_rate += cwnd / rtt;
    total += cwnd;
    ++usable;
  }
  if (usable < 2 || sum_rate <= 0.0) return 1.0;
  return total * best_ratio / (sum_rate * sum_rate);
}

void LiaCoupler::add(const TcpSocket* subflow) {
  check(subflow != nullptr, "cannot couple a null subflow");
  subflows_.push_back(subflow);
}

std::uint64_t LiaCoupler::total_cwnd() const {
  std::uint64_t total = 0;
  for (const auto* sf : subflows_) {
    if (sf->established() && !sf->dead()) total += sf->cwnd();
  }
  return std::max<std::uint64_t>(total, 1);
}

double LiaCoupler::alpha() const {
  std::vector<LiaView> views;
  views.reserve(subflows_.size());
  for (const auto* sf : subflows_) {
    // Subflows without an RTT sample yet are still in their first window;
    // including them would let a spuriously tiny RTT dominate alpha.
    if (!sf->established() || sf->dead() || !(sf->srtt() > Time::zero())) {
      continue;
    }
    views.push_back(LiaView{sf->cwnd(), sf->srtt().to_seconds()});
  }
  return lia_alpha(views);
}

LiaIncrease::LiaIncrease(const LiaCoupler* coupler) : coupler_(coupler) {
  check(coupler != nullptr, "LIA increase needs a coupler");
}

std::uint64_t LiaIncrease::ca_increment(std::uint64_t acked,
                                        std::uint64_t cwnd,
                                        std::uint32_t mss) const {
  const double total = static_cast<double>(coupler_->total_cwnd());
  const double alpha = coupler_->alpha();
  const double own = static_cast<double>(cwnd);
  const double m = static_cast<double>(mss);
  const double coupled = alpha * static_cast<double>(acked) * m / total;
  const double uncoupled = static_cast<double>(acked) * m / own;
  return static_cast<std::uint64_t>(std::min(coupled, uncoupled));
}

LiaCc::LiaCc(std::uint32_t mss, std::uint32_t initial_cwnd_segments,
             const LiaCoupler* coupler)
    : CongestionControl(mss, initial_cwnd_segments,
                        std::make_unique<LiaIncrease>(coupler),
                        std::make_unique<NoEcnReaction>()) {}

}  // namespace mmptcp
