#include "mptcp/subflow.h"

#include "mptcp/mptcp_connection.h"

namespace mmptcp {

Subflow::Subflow(MptcpConnection& conn, std::uint8_t subflow_id,
                 SocketRole role, std::uint16_t local_port,
                 std::uint16_t peer_port, TcpConfig config,
                 std::unique_ptr<CongestionControl> cc, bool join,
                 std::uint32_t path_count)
    : TcpSocket(conn.sim_ref(), conn.metrics_ref(), conn.local_host(), role,
                conn.peer_addr(), local_port, peer_port, conn.token(),
                conn.flow_id(), config, std::move(cc), path_count),
      conn_(conn), subflow_id_(subflow_id), join_(join) {
  // Subflows end via the connection-level DATA_FIN, not a TCP FIN, and
  // share the connection's token-demux registration.
  disable_fin();
  disable_demux_registration();
  set_trace_subflow_id(subflow_id);
}

std::vector<Mapping> Subflow::outstanding_mappings() const {
  std::vector<Mapping> out;
  for (const auto& [seq, mapping] : mappings()) {
    if (seq + mapping.len > snd_una()) out.push_back(mapping);
  }
  return out;
}

std::optional<Mapping> Subflow::next_mapping(std::uint32_t max_len) {
  return conn_.allocate_mapping(*this, max_len);
}

void Subflow::decorate_data(Packet& pkt) {
  pkt.subflow = subflow_id_;
  pkt.flags |= pkt_flags::kDss;
  if (pkt.is_syn() && join_) pkt.flags |= pkt_flags::kJoin;
}

void Subflow::decorate_ack(Packet& pkt) {
  pkt.subflow = subflow_id_;
  pkt.flags |= pkt_flags::kDss;
  pkt.data_ack = conn_.data_rcv_nxt();
}

void Subflow::on_peer_ack(const Packet& pkt) {
  if (pkt.has(pkt_flags::kDss)) conn_.on_data_ack(pkt.data_ack);
}

void Subflow::on_data_segment(const Packet& pkt) {
  conn_.on_data_segment(pkt);
}

void Subflow::deliver_in_order(std::uint64_t /*newly*/) {
  // Delivery accounting happens at the connection level (on_data_segment).
}

void Subflow::on_reorder_release(Time /*wait*/) {
  // Subflow-level reordering is invisible to the application; reorder wait
  // is measured on the connection-level reassembly buffer instead.
}

void Subflow::stream_complete() {
  // Subflows carry no TCP FIN; connection-level DATA_FIN ends the flow.
}

void Subflow::on_established() { conn_.on_subflow_established(*this); }

void Subflow::on_congestion_event(CongestionEventKind kind) {
  conn_.on_subflow_congestion(*this, kind);
}

void Subflow::on_sender_drained() { conn_.on_subflow_drained(*this); }

}  // namespace mmptcp
