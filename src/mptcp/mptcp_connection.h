#pragma once

// MPTCP connection: a pool of subflows, a data-sequence mapping scheduler,
// connection-level reassembly with cumulative DATA_ACKs, and RFC 6356
// coupled congestion control.
//
// Scheduling is pull-based: a subflow with congestion-window space asks
// the connection for the next chunk of unmapped data; once mapped, a chunk
// belongs to that subflow (retransmissions stay on the same subflow).
// This mirrors the authors' WNS3 2014 ns-3 model, including its crucial
// default of *no* opportunistic reinjection: when a subflow with a tiny
// window loses a packet, the whole connection waits for that subflow's RTO
// — the mechanism behind Figure 1(a)/(b) of the paper.  Reinjection after
// a subflow RTO is available as an ablation (`reinject_on_rto`).

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "mptcp/lia.h"
#include "mptcp/subflow.h"
#include "tcp/dctcp.h"

namespace mmptcp {

/// How connection-level data is assigned to subflows.
enum class SchedulerKind : std::uint8_t {
  /// Chunks are committed round-robin across ALL planned subflows as soon
  /// as the connection window allows — before the subflows have even
  /// completed their handshakes.  This mirrors the authors' WNS3 2014
  /// ns-3 model (and that era's MPTCP implementations): data stranded on
  /// a slow, lossy or still-connecting subflow stalls the connection,
  /// which is the mechanism behind Figure 1(a)/(b).
  kEagerRoundRobin,
  /// Subflows pull data only when they have congestion-window space — a
  /// modern scheduler that sidesteps the stall pathology (ablation).
  kPull,
};

/// Connection-level configuration.
struct MptcpConfig {
  TcpConfig tcp{};                ///< per-subflow socket knobs
  std::uint32_t subflow_count = 8;
  bool coupled = true;            ///< LIA on (off = uncoupled NewReno)
  /// ECN-aware congestion control: every subflow (the packet-scatter
  /// flow included) sets ECT on data and runs a DCTCP proportional cut
  /// with its own per-subflow alpha; the increase policy (LIA coupling
  /// or Reno) is unchanged.  Pair with an ECN-marking fabric.
  bool ecn = false;
  DctcpConfig dctcp{};            ///< per-subflow alpha knobs (ecn only)
  SchedulerKind scheduler = SchedulerKind::kEagerRoundRobin;
  bool reinject_on_rto = false;   ///< remap a timed-out subflow's data
  std::uint16_t server_port = 5001;
  /// Connection-level window: bytes mapped but not yet cumulatively
  /// DATA_ACKed may not exceed this.  Models the *shared* receive buffer
  /// of real MPTCP — all subflows draw from one pool, so a connection
  /// cannot put subflow_count x per-subflow-window bytes in flight.
  std::uint64_t connection_window = 256 * 1024;
};

/// Client or server side of one MPTCP connection.
class MptcpConnection : public Endpoint {
 public:
  /// Client constructor.
  MptcpConnection(Simulation& sim, Metrics& metrics, Host& local, Addr peer,
                  std::uint32_t flow_id, MptcpConfig config);

  /// Server constructor (peer data taken from the first SYN).
  MptcpConnection(Simulation& sim, Metrics& metrics, Host& local,
                  const Packet& syn, MptcpConfig config);

  ~MptcpConnection() override;

  /// Client: opens the initial subflows and streams `bytes`.
  virtual void connect_and_send(std::uint64_t bytes);

  /// Server: processes the SYN that created this connection.
  void accept(const Packet& syn);

  /// Demultiplexes by subflow id (server side creates subflows on SYN).
  void handle_packet(const Packet& pkt) override;

  // ---- subflow callbacks ----
  std::optional<Mapping> allocate_mapping(Subflow& sf, std::uint32_t max_len);
  void on_data_ack(std::uint64_t data_ack);
  void on_data_segment(const Packet& pkt);
  void on_subflow_established(Subflow& sf);
  void on_subflow_congestion(Subflow& sf, CongestionEventKind kind);
  virtual void on_subflow_drained(Subflow& sf);
  std::uint64_t data_rcv_nxt() const { return data_rcv_nxt_; }

  // ---- introspection ----
  std::size_t subflow_count() const { return subflows_.size(); }
  Subflow& subflow(std::size_t i) { return *subflows_.at(i); }
  const Subflow& subflow(std::size_t i) const { return *subflows_.at(i); }
  std::uint64_t data_next() const { return data_next_; }
  std::uint64_t data_una() const { return data_una_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  bool sender_complete() const;
  bool receiver_complete() const { return receiver_complete_; }
  std::uint32_t flow_id() const { return flow_id_; }
  std::uint32_t token() const { return token_; }
  std::size_t reinjection_queue_depth() const { return reinject_q_.size(); }

  Simulation& sim_ref() { return sim_; }
  Metrics& metrics_ref() { return metrics_; }
  Host& local_host() { return local_; }
  Addr peer_addr() const { return peer_; }
  const MptcpConfig& config() const { return config_; }
  SocketRole role() const { return role_; }

 protected:
  /// Number of MP_JOIN subflows opened once the initial subflow's
  /// handshake completes (real MPTCP cannot join before the peer owns the
  /// token).  MMPTCP returns 0: its extra subflows open at the phase
  /// switch instead.
  virtual std::uint32_t join_count() const {
    return config_.subflow_count - 1;
  }

  /// Creates the subflow socket for `id` (MMPTCP overrides id 0 to build
  /// the packet-scatter subflow).
  virtual std::unique_ptr<Subflow> make_subflow(std::uint8_t id,
                                                SocketRole role,
                                                std::uint16_t local_port,
                                                std::uint16_t peer_port,
                                                bool join);

  /// Hook invoked before serving a mapping request (MMPTCP's data-volume
  /// phase switch checks the transmitted-bytes threshold here).
  virtual void before_allocate(Subflow& sf) { (void)sf; }

  /// Hook invoked on any subflow congestion event (MMPTCP's
  /// congestion-event phase switch listens here).
  virtual void note_congestion(Subflow& sf, CongestionEventKind kind) {
    (void)sf;
    (void)kind;
  }

  /// Subflow ids eligible for new chunk assignment at connect time
  /// (MMPTCP restricts this to the PS flow until the phase switch).
  virtual std::vector<std::uint8_t> initial_assignable() const;

  /// Replaces the assignable set (MMPTCP's phase switch); chunks already
  /// assigned to now-excluded subflows stay where they are unless the
  /// caller migrates them via requeue_assigned().
  void set_assignable(std::vector<std::uint8_t> ids);

  /// Moves subflow `id`'s *unsent* assigned chunks to the reinjection
  /// queue (served to any subflow).
  void requeue_assigned(std::uint8_t id);

  /// Creates + connects client subflows with ids [first, first+n).
  void open_client_subflows(std::uint8_t first, std::uint32_t n);

  /// Builds the congestion controller for a subflow by composing the
  /// window-increase policy (LIA coupling when `coupled_subflow`, Reno
  /// otherwise) with the connection's ECN reaction (a fresh per-subflow
  /// DctcpReaction when config().ecn, loss halving otherwise).
  std::unique_ptr<CongestionControl> make_cc(bool coupled_subflow);
  /// Same, with explicit DCTCP knobs (MMPTCP's packet-scatter flow runs
  /// a differently tuned reaction than the phase-two subflows).
  std::unique_ptr<CongestionControl> make_cc(bool coupled_subflow,
                                             const DctcpConfig& dctcp);

  LiaCoupler& coupler() { return coupler_; }
  void poke_all_subflows();

 private:
  Subflow* find_or_create_server_subflow(const Packet& pkt);
  Subflow* find_subflow(std::uint8_t id);
  void check_receiver_complete();
  /// kEagerRoundRobin: commits chunks to assignable subflows while the
  /// connection window has room.
  void refill_assignments();

  Simulation& sim_;
  Metrics& metrics_;
  Host& local_;
  SocketRole role_;
  Addr peer_;
  std::uint32_t token_;
  std::uint32_t flow_id_;
  MptcpConfig config_;
  bool registered_ = false;

  std::vector<std::unique_ptr<Subflow>> subflows_;
  LiaCoupler coupler_;

  bool joins_opened_ = false;

  // Sender-side data scheduling.
  std::uint64_t total_bytes_ = 0;
  std::uint64_t data_next_ = 0;  ///< next unmapped connection-level byte
  std::uint64_t data_una_ = 0;   ///< highest cumulative DATA_ACK seen
  std::deque<Mapping> reinject_q_;
  // Eager round-robin scheduler state.
  std::vector<std::uint8_t> assignable_;
  std::map<std::uint8_t, std::deque<Mapping>> assigned_;
  std::size_t rr_cursor_ = 0;

  // Receiver-side reassembly.
  IntervalSet data_rx_;
  std::uint64_t data_rcv_nxt_ = 0;
  std::uint64_t data_fin_total_ = std::uint64_t(-1);
  bool receiver_complete_ = false;
  // Connection-level head-of-line blocking episode (flow-time budget).
  bool ooo_pending_ = false;
  Time ooo_since_;
};

}  // namespace mmptcp
