#pragma once

// One MPTCP subflow: a TcpSocket whose stream is fed by the connection's
// data-sequence mapping scheduler and whose delivery events are forwarded
// to connection-level reassembly.  Subflows never send TCP FINs — the
// connection-level DATA_FIN (kDataFin on the last mapping) ends the flow.

#include "tcp/tcp_socket.h"

namespace mmptcp {

class MptcpConnection;

/// A subflow socket owned by an MptcpConnection.
class Subflow : public TcpSocket {
 public:
  Subflow(MptcpConnection& conn, std::uint8_t subflow_id, SocketRole role,
          std::uint16_t local_port, std::uint16_t peer_port,
          TcpConfig config, std::unique_ptr<CongestionControl> cc,
          bool join, std::uint32_t path_count = 0);

  std::uint8_t subflow_id() const { return subflow_id_; }

  /// Subflow-level sequence ranges sent but not yet acknowledged, with
  /// their data-sequence mappings (used for reinjection after an RTO).
  std::vector<Mapping> outstanding_mappings() const;

 protected:
  std::optional<Mapping> next_mapping(std::uint32_t max_len) override;
  void decorate_data(Packet& pkt) override;
  void decorate_ack(Packet& pkt) override;
  void on_peer_ack(const Packet& pkt) override;
  void on_data_segment(const Packet& pkt) override;
  void deliver_in_order(std::uint64_t newly) override;
  void on_reorder_release(Time wait) override;
  void stream_complete() override;
  void on_established() override;
  void on_congestion_event(CongestionEventKind kind) override;
  void on_sender_drained() override;

  MptcpConnection& connection() { return conn_; }

 private:
  MptcpConnection& conn_;
  std::uint8_t subflow_id_;
  bool join_;
};

}  // namespace mmptcp
