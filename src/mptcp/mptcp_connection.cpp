#include "mptcp/mptcp_connection.h"

#include <algorithm>
#include <iterator>

namespace mmptcp {

MptcpConnection::MptcpConnection(Simulation& sim, Metrics& metrics,
                                 Host& local, Addr peer,
                                 std::uint32_t flow_id, MptcpConfig config)
    : sim_(sim), metrics_(metrics), local_(local), role_(SocketRole::kClient),
      peer_(peer), token_(local.next_token()), flow_id_(flow_id),
      config_(config) {
  require(config_.subflow_count >= 1, "need at least one subflow");
  require(config_.subflow_count <= 64, "too many subflows");
}

MptcpConnection::MptcpConnection(Simulation& sim, Metrics& metrics,
                                 Host& local, const Packet& syn,
                                 MptcpConfig config)
    : sim_(sim), metrics_(metrics), local_(local), role_(SocketRole::kServer),
      peer_(syn.src), token_(syn.token), flow_id_(syn.flow_id),
      config_(config) {}

MptcpConnection::~MptcpConnection() {
  // Subflows must die before the demux entry so late timer events on them
  // are impossible once the token is gone.
  subflows_.clear();
  if (registered_) local_.unregister_token(token_);
}

void MptcpConnection::connect_and_send(std::uint64_t bytes) {
  check(role_ == SocketRole::kClient, "only clients connect");
  check(subflows_.empty(), "connect_and_send called twice");
  total_bytes_ = bytes;
  local_.register_token(token_, this);
  registered_ = true;
  assignable_ = initial_assignable();
  // Only the initial subflow connects now; MP_JOINs wait for its
  // handshake to hand the token to the peer (see on_subflow_established).
  open_client_subflows(0, 1);
}

std::vector<std::uint8_t> MptcpConnection::initial_assignable() const {
  std::vector<std::uint8_t> ids(config_.subflow_count);
  for (std::uint32_t i = 0; i < config_.subflow_count; ++i) {
    ids[i] = static_cast<std::uint8_t>(i);
  }
  return ids;
}

void MptcpConnection::set_assignable(std::vector<std::uint8_t> ids) {
  assignable_ = std::move(ids);
  rr_cursor_ = 0;
}

void MptcpConnection::requeue_assigned(std::uint8_t id) {
  auto it = assigned_.find(id);
  if (it == assigned_.end()) return;
  // Preserve sequence order at the front of the reinjection queue.
  while (!it->second.empty()) {
    reinject_q_.push_front(it->second.back());
    it->second.pop_back();
  }
  assigned_.erase(it);
}

Subflow* MptcpConnection::find_subflow(std::uint8_t id) {
  for (const auto& s : subflows_) {
    if (s->subflow_id() == id) return s.get();
  }
  return nullptr;
}

void MptcpConnection::refill_assignments() {
  if (config_.scheduler != SchedulerKind::kEagerRoundRobin ||
      role_ != SocketRole::kClient || assignable_.empty()) {
    return;
  }
  while (data_next_ < total_bytes_) {
    const std::uint64_t inflight = data_next_ - data_una_;
    if (inflight >= config_.connection_window) break;
    // Next assignable subflow in round-robin order, skipping frozen and
    // dead ones.  A subflow that has not even connected yet still
    // receives chunks — that eagerness is the point of this scheduler.
    bool found = false;
    std::uint8_t target_id = 0;
    for (std::size_t t = 0; t < assignable_.size(); ++t) {
      const std::size_t pos = (rr_cursor_ + t) % assignable_.size();
      const std::uint8_t id = assignable_[pos];
      Subflow* sf = find_subflow(id);
      if (sf != nullptr && (sf->stream_frozen() || sf->dead())) continue;
      found = true;
      target_id = id;
      rr_cursor_ = (pos + 1) % assignable_.size();
      break;
    }
    if (!found) break;
    const auto len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        std::min<std::uint64_t>(config_.tcp.mss, total_bytes_ - data_next_),
        config_.connection_window - inflight));
    if (len == 0) break;
    const bool last = total_bytes_ != TcpSocket::kUnboundedBytes &&
                      data_next_ + len == total_bytes_;
    assigned_[target_id].push_back(Mapping{data_next_, len, last});
    data_next_ += len;
    // No pokes here: callers pull right after, and window-unblocking
    // pokes happen in on_data_ack / on_subflow_established.
  }
}

void MptcpConnection::open_client_subflows(std::uint8_t first,
                                           std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::uint8_t>(first + i);
    auto sf = make_subflow(id, SocketRole::kClient, local_.ephemeral_port(),
                           config_.server_port, /*join=*/id != 0);
    Subflow* raw = sf.get();
    subflows_.push_back(std::move(sf));
    // kUnboundedBytes: subflows never self-terminate; the mapping
    // scheduler decides how much each carries.
    raw->connect_and_send(TcpSocket::kUnboundedBytes);
  }
}

std::unique_ptr<Subflow> MptcpConnection::make_subflow(
    std::uint8_t id, SocketRole role, std::uint16_t local_port,
    std::uint16_t peer_port, bool join) {
  return std::make_unique<Subflow>(*this, id, role, local_port, peer_port,
                                   config_.tcp, make_cc(config_.coupled),
                                   join);
}

std::unique_ptr<CongestionControl> MptcpConnection::make_cc(
    bool coupled_subflow) {
  return make_cc(coupled_subflow, config_.dctcp);
}

std::unique_ptr<CongestionControl> MptcpConnection::make_cc(
    bool coupled_subflow, const DctcpConfig& dctcp) {
  std::unique_ptr<WindowIncreasePolicy> increase;
  if (coupled_subflow) {
    increase = std::make_unique<LiaIncrease>(&coupler_);
  } else {
    increase = std::make_unique<RenoIncrease>();
  }
  std::unique_ptr<EcnReactionPolicy> reaction;
  if (config_.ecn) {
    // One DctcpReaction per subflow: each path estimates its own marked
    // fraction, so a congested path cuts deep while a clean sibling
    // keeps its window — the per-subflow alpha RFC 8257 + RFC 6356
    // composition wants.  Subflows floor at one segment, not RFC 8257's
    // single-path two: N subflows each flooring at 2 MSS would pin 2N
    // MSS onto a shared bottleneck (see DctcpConfig::min_cwnd_segments).
    DctcpConfig subflow_dctcp = dctcp;
    subflow_dctcp.min_cwnd_segments = 1;
    reaction = std::make_unique<DctcpReaction>(subflow_dctcp);
  } else {
    reaction = std::make_unique<NoEcnReaction>();
  }
  return std::make_unique<CongestionControl>(
      config_.tcp.mss, config_.tcp.initial_cwnd_segments,
      std::move(increase), std::move(reaction));
}

void MptcpConnection::accept(const Packet& syn) {
  check(role_ == SocketRole::kServer, "only servers accept");
  check(syn.is_syn(), "accept needs a SYN");
  local_.register_token(token_, this);
  registered_ = true;
  handle_packet(syn);
}

void MptcpConnection::handle_packet(const Packet& pkt) {
  Subflow* sf = nullptr;
  for (const auto& s : subflows_) {
    if (s->subflow_id() == pkt.subflow) {
      sf = s.get();
      break;
    }
  }
  if (sf == nullptr) {
    sf = find_or_create_server_subflow(pkt);
    if (sf == nullptr) return;  // stray non-SYN for an unknown subflow
  }
  sf->handle_packet(pkt);
}

Subflow* MptcpConnection::find_or_create_server_subflow(const Packet& pkt) {
  if (role_ != SocketRole::kServer || !pkt.is_syn()) return nullptr;
  auto sf = make_subflow(pkt.subflow, SocketRole::kServer, pkt.dport,
                         pkt.sport, pkt.has(pkt_flags::kJoin));
  Subflow* raw = sf.get();
  subflows_.push_back(std::move(sf));
  return raw;
}

std::optional<Mapping> MptcpConnection::allocate_mapping(
    Subflow& sf, std::uint32_t max_len) {
  before_allocate(sf);
  if (sf.stream_frozen() || sf.dead()) return std::nullopt;
  // Serve the reinjection queue first (data stranded on a timed-out or
  // deactivated subflow), skipping anything already acknowledged.
  while (!reinject_q_.empty()) {
    Mapping m = reinject_q_.front();
    if (m.data_seq + m.len <= data_una_) {
      reinject_q_.pop_front();
      continue;
    }
    if (m.len > max_len) return std::nullopt;  // retry when window opens
    reinject_q_.pop_front();
    return m;
  }
  if (config_.scheduler == SchedulerKind::kEagerRoundRobin) {
    refill_assignments();
    const auto it = assigned_.find(sf.subflow_id());
    if (it == assigned_.end() || it->second.empty()) return std::nullopt;
    if (it->second.front().len > max_len) return std::nullopt;
    const Mapping m = it->second.front();
    it->second.pop_front();
    return m;
  }
  // Pull scheduler: hand out the next unmapped chunk on demand.
  if (data_next_ >= total_bytes_) return std::nullopt;
  // Connection-level flow control: the shared receive buffer bounds the
  // total un-DATA_ACKed bytes across all subflows.
  const std::uint64_t conn_inflight = data_next_ - data_una_;
  if (conn_inflight >= config_.connection_window) return std::nullopt;
  const auto len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      std::min<std::uint64_t>(max_len, total_bytes_ - data_next_),
      config_.connection_window - conn_inflight));
  const bool last = total_bytes_ != TcpSocket::kUnboundedBytes &&
                    data_next_ + len == total_bytes_;
  const Mapping m{data_next_, len, last};
  data_next_ += len;
  return m;
}

void MptcpConnection::on_data_ack(std::uint64_t data_ack) {
  if (data_ack <= data_una_) return;
  const bool was_blocked =
      role_ == SocketRole::kClient &&
      data_next_ - data_una_ >= config_.connection_window;
  data_una_ = data_ack;
  // Subflows that stalled on the connection window can pull again.
  if (was_blocked) poke_all_subflows();
}

void MptcpConnection::on_data_segment(const Packet& pkt) {
  if (pkt.payload > 0) {
    const std::uint64_t newly =
        data_rx_.insert(pkt.data_seq, pkt.data_seq + pkt.payload);
    if (newly > 0) {
      const std::uint64_t old = data_rcv_nxt_;
      data_rcv_nxt_ = data_rx_.first_missing_after(data_rcv_nxt_);
      if (data_rcv_nxt_ > old) {
        metrics_.on_delivered(flow_id_, data_rcv_nxt_ - old, sim_.now());
      }
    }
    // Connection-level head-of-line blocking: data-sequence bytes beyond
    // data_rcv_nxt_ sit in the reassembly buffer until the hole fills —
    // the receiver-side cost of scattering/striping across paths.
    const bool blocked = !data_rx_.empty() &&
                         std::prev(data_rx_.end())->second > data_rcv_nxt_;
    if (blocked && !ooo_pending_) {
      ooo_pending_ = true;
      ooo_since_ = sim_.now();
    } else if (!blocked && ooo_pending_) {
      ooo_pending_ = false;
      metrics_.on_reorder_wait(flow_id_, sim_.now() - ooo_since_);
    }
  }
  if (pkt.has(pkt_flags::kDataFin)) {
    data_fin_total_ = pkt.data_seq + pkt.payload;
  }
  check_receiver_complete();
}

void MptcpConnection::check_receiver_complete() {
  if (receiver_complete_ || data_fin_total_ == std::uint64_t(-1)) return;
  if (data_rcv_nxt_ >= data_fin_total_) {
    receiver_complete_ = true;
    metrics_.on_flow_completed(flow_id_, sim_.now());
  }
}

bool MptcpConnection::sender_complete() const {
  return total_bytes_ != TcpSocket::kUnboundedBytes &&
         data_una_ >= total_bytes_;
}

void MptcpConnection::on_subflow_established(Subflow& sf) {
  if (role_ != SocketRole::kClient) return;
  if (config_.coupled) coupler_.add(&sf);
  sf.poke();
  if (sf.subflow_id() == 0 && !joins_opened_) {
    joins_opened_ = true;
    const std::uint32_t joins = join_count();
    if (joins > 0) open_client_subflows(1, joins);
  }
}

void MptcpConnection::on_subflow_congestion(Subflow& sf,
                                            CongestionEventKind kind) {
  if (kind == CongestionEventKind::kRto && config_.reinject_on_rto &&
      role_ == SocketRole::kClient) {
    // Make the timed-out subflow's stranded data eligible on its
    // siblings: both the chunks it already sent...
    for (const Mapping& m : sf.outstanding_mappings()) {
      if (m.data_seq + m.len <= data_una_) continue;
      const bool queued =
          std::any_of(reinject_q_.begin(), reinject_q_.end(),
                      [&m](const Mapping& q) {
                        return q.data_seq == m.data_seq && q.len == m.len;
                      });
      if (!queued) reinject_q_.push_back(m);
    }
    // ...and the ones still waiting in its assignment queue.
    requeue_assigned(sf.subflow_id());
    poke_all_subflows();
  }
  note_congestion(sf, kind);
}

void MptcpConnection::on_subflow_drained(Subflow& sf) { (void)sf; }

void MptcpConnection::poke_all_subflows() {
  for (const auto& s : subflows_) {
    if (s->established() && !s->dead() && !s->stream_frozen()) s->poke();
  }
}

}  // namespace mmptcp
