#pragma once

// RFC 6356 "Linked Increases Algorithm" (LIA) — MPTCP's coupled congestion
// control.  Each subflow runs normal slow start and loss response; only
// the congestion-avoidance increase is coupled:
//
//   per ACK of `acked` bytes on subflow i:
//     cwnd_i += min( alpha * acked * MSS / cwnd_total ,  acked * MSS / cwnd_i )
//
//   alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / ( sum_i(cwnd_i / rtt_i) )^2
//
// The coupler recomputes alpha on demand from live subflow state.

#include <memory>
#include <vector>

#include "tcp/congestion.h"
#include "tcp/tcp_socket.h"

namespace mmptcp {

/// Snapshot of one subflow's state as LIA sees it.
struct LiaView {
  std::uint64_t cwnd_bytes = 0;
  double rtt_seconds = 0.0;
};

/// RFC 6356 alpha over a set of subflow snapshots (pure; unit-testable).
/// Returns 1.0 when fewer than two usable subflows are present.
double lia_alpha(const std::vector<LiaView>& views);

/// Shared view over a connection's subflows; computes alpha and the total
/// window.  Subflows are registered once established.
class LiaCoupler {
 public:
  void add(const TcpSocket* subflow);

  /// Sum of cwnds of registered, established subflows (>= 1 to avoid /0).
  std::uint64_t total_cwnd() const;

  /// RFC 6356 aggressiveness factor; 1.0 when fewer than 2 usable subflows.
  double alpha() const;

  std::size_t size() const { return subflows_.size(); }

 private:
  std::vector<const TcpSocket*> subflows_;
};

/// RFC 6356 coupled increase for one subflow — a WindowIncreasePolicy,
/// so it composes with any ECN reaction (NoEcnReaction for classic LIA,
/// a per-subflow DctcpReaction for ECN-aware coupled MPTCP).
class LiaIncrease final : public WindowIncreasePolicy {
 public:
  explicit LiaIncrease(const LiaCoupler* coupler);

  std::uint64_t ca_increment(std::uint64_t acked, std::uint64_t cwnd,
                             std::uint32_t mss) const override;

 private:
  const LiaCoupler* coupler_;
};

/// Congestion controller for one LIA-coupled subflow (coupled increase,
/// loss halving, ECN-blind — the classic RFC 6356 configuration).
class LiaCc final : public CongestionControl {
 public:
  LiaCc(std::uint32_t mss, std::uint32_t initial_cwnd_segments,
        const LiaCoupler* coupler);
};

}  // namespace mmptcp
