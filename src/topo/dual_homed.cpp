#include "topo/dual_homed.h"

#include "net/ecmp.h"

namespace mmptcp {

namespace {

class DhEdgeRouter final : public Router {
 public:
  DhEdgeRouter(std::uint32_t pod, std::uint32_t pair, std::uint32_t uplinks,
               std::uint32_t hosts)
      : pod_(pod), pair_(pair), uplinks_(uplinks), hosts_(hosts) {}

  std::size_t route(const Switch& sw, const Packet& pkt) const override {
    if (!FatTreeAddr::is_host(pkt.dst)) return sw.port_count();
    if (FatTreeAddr::pod(pkt.dst) == pod_ &&
        FatTreeAddr::edge(pkt.dst) == pair_) {
      const std::uint32_t h = FatTreeAddr::host_index(pkt.dst);
      return h < hosts_ ? h : sw.port_count();
    }
    return hosts_ + ecmp_select(sw.salt(), pkt.src, pkt.dst, pkt.sport,
                                pkt.dport, uplinks_);
  }

 private:
  std::uint32_t pod_, pair_, uplinks_, hosts_;
};

class DhAggRouter final : public Router {
 public:
  DhAggRouter(std::uint32_t pod, std::uint32_t half_k, std::uint32_t pairs)
      : pod_(pod), half_k_(half_k), pairs_(pairs) {}

  std::size_t route(const Switch& sw, const Packet& pkt) const override {
    if (!FatTreeAddr::is_host(pkt.dst)) return sw.port_count();
    if (FatTreeAddr::pod(pkt.dst) == pod_) {
      const std::uint32_t g = FatTreeAddr::edge(pkt.dst);  // pair index
      if (g >= pairs_) return sw.port_count();
      // ECMP between the two members of the pair (down ports 2g, 2g+1).
      const std::size_t member =
          ecmp_select(sw.salt() ^ 0x00dd, pkt.src, pkt.dst, pkt.sport,
                      pkt.dport, 2);
      return 2 * g + member;
    }
    return half_k_ + ecmp_select(sw.salt(), pkt.src, pkt.dst, pkt.sport,
                                 pkt.dport, half_k_);
  }

 private:
  std::uint32_t pod_, half_k_, pairs_;
};

class DhCoreRouter final : public Router {
 public:
  explicit DhCoreRouter(std::uint32_t k) : k_(k) {}

  std::size_t route(const Switch& sw, const Packet& pkt) const override {
    if (!FatTreeAddr::is_host(pkt.dst)) return sw.port_count();
    const std::uint32_t p = FatTreeAddr::pod(pkt.dst);
    return p < k_ ? p : sw.port_count();
  }

 private:
  std::uint32_t k_;
};

}  // namespace

DualHomedFatTree::DualHomedFatTree(Simulation& sim, DualHomedConfig config)
    : config_(config), net_(sim) {
  require(config_.k >= 4 && config_.k % 4 == 0,
          "dual-homed FatTree k must be a multiple of 4");
  require(config_.oversubscription >= 1, "oversubscription must be >= 1");
  require(hosts_per_pair() <= 253, "too many hosts per pair for addressing");

  const std::uint32_t half = config_.k / 2;
  const std::uint32_t pairs = pairs_per_pod();
  const std::uint32_t hosts = hosts_per_pair();
  const LinkSpec host_link{config_.link_rate_bps, config_.link_delay,
                           config_.host_queue, LinkLayer::kHostEdge,
                           config_.queue, QdiscConfig{}, config_.qdisc};
  const LinkSpec agg_link{config_.link_rate_bps, config_.link_delay,
                          config_.queue, LinkLayer::kEdgeAgg, std::nullopt,
                          config_.qdisc, std::nullopt};
  const LinkSpec core_link{config_.link_rate_bps, config_.link_delay,
                           config_.queue, LinkLayer::kAggCore, std::nullopt,
                           config_.qdisc, std::nullopt};

  for (std::uint32_t p = 0; p < config_.k; ++p) {
    for (std::uint32_t g = 0; g < pairs; ++g) {
      for (std::uint32_t h = 0; h < hosts; ++h) {
        net_.make_host("dh" + std::to_string(p) + "." + std::to_string(g) +
                           "." + std::to_string(h),
                       FatTreeAddr::host(p, g, h));
      }
    }
  }

  edge_base_ = 0;
  for (std::uint32_t p = 0; p < config_.k; ++p) {
    for (std::uint32_t e = 0; e < half; ++e) {
      Switch& sw = net_.make_switch("dhedge" + std::to_string(p) + "." +
                                    std::to_string(e));
      sw.set_router(std::make_unique<DhEdgeRouter>(p, e / 2, half, hosts));
    }
  }
  agg_base_ = net_.switch_count();
  for (std::uint32_t p = 0; p < config_.k; ++p) {
    for (std::uint32_t a = 0; a < half; ++a) {
      Switch& sw = net_.make_switch("dhagg" + std::to_string(p) + "." +
                                    std::to_string(a));
      sw.set_router(std::make_unique<DhAggRouter>(p, half, pairs));
    }
  }
  core_base_ = net_.switch_count();
  for (std::uint32_t c = 0; c < core_count(); ++c) {
    Switch& sw = net_.make_switch("dhcore" + std::to_string(c));
    sw.set_router(std::make_unique<DhCoreRouter>(config_.k));
  }

  // Host <-> edge: each host connects to both members of its pair, in
  // member order, so edge ports [0, hosts) index hosts identically on both
  // members and each host's NIC 0 / NIC 1 go to member 0 / member 1.
  for (std::uint32_t p = 0; p < config_.k; ++p) {
    for (std::uint32_t g = 0; g < pairs; ++g) {
      for (std::uint32_t m = 0; m < 2; ++m) {
        for (std::uint32_t h = 0; h < hosts; ++h) {
          net_.connect(net_.host(host_index(p, g, h)),
                       edge_switch(p, 2 * g + m), host_link);
        }
      }
    }
  }
  for (std::uint32_t p = 0; p < config_.k; ++p) {
    for (std::uint32_t a = 0; a < half; ++a) {
      for (std::uint32_t e = 0; e < half; ++e) {
        net_.connect(edge_switch(p, e), agg_switch(p, a), agg_link);
      }
    }
  }
  for (std::uint32_t a = 0; a < half; ++a) {
    for (std::uint32_t j = 0; j < half; ++j) {
      const std::uint32_t c = a * half + j;
      for (std::uint32_t p = 0; p < config_.k; ++p) {
        net_.connect(agg_switch(p, a), core_switch(c), core_link);
      }
    }
  }
}

std::size_t DualHomedFatTree::host_index(std::uint32_t pod, std::uint32_t pair,
                                         std::uint32_t h) const {
  return (std::size_t(pod) * pairs_per_pod() + pair) * hosts_per_pair() + h;
}

Switch& DualHomedFatTree::edge_switch(std::uint32_t pod, std::uint32_t e) {
  return net_.node_switch(edge_base_ + std::size_t(pod) * edges_per_pod() + e);
}

Switch& DualHomedFatTree::agg_switch(std::uint32_t pod, std::uint32_t a) {
  return net_.node_switch(agg_base_ + std::size_t(pod) * edges_per_pod() + a);
}

Switch& DualHomedFatTree::core_switch(std::uint32_t c) {
  return net_.node_switch(core_base_ + c);
}

std::uint32_t DualHomedFatTree::path_count(Addr a, Addr b) const {
  if (!FatTreeAddr::is_host(a) || !FatTreeAddr::is_host(b)) return 0;
  if (a == b) return 0;
  const std::uint32_t half = config_.k / 2;
  if (FatTreeAddr::pod(a) != FatTreeAddr::pod(b)) return 4 * half * half;
  if (FatTreeAddr::edge(a) != FatTreeAddr::edge(b)) return 2 * config_.k;
  return 2;
}

}  // namespace mmptcp
