#pragma once

// k-ary FatTree (Al-Fares et al., SIGCOMM 2008) with an oversubscription
// knob — the paper's evaluation topology ("4:1 over-subscribed FatTree
// consisting of 512 servers" = k=8 with 16 hosts per edge switch).
//
// Layout for even k:
//   * k pods; each pod has k/2 edge and k/2 aggregation switches;
//   * every edge connects to every aggregation switch in its pod;
//   * (k/2)^2 core switches; aggregation switch a (in every pod) connects
//     to cores [a*k/2, (a+1)*k/2);
//   * each edge switch serves `oversubscription * k/2` hosts, so the
//     host:uplink capacity ratio at the edge is `oversubscription`:1.
//
// Addressing packs (pod, edge, host) into an IPv4-like value
// 10.pod.edge.(host+2); switches route *algorithmically* from the packed
// fields — downward hops are deterministic, upward hops use hash-based
// ECMP.  path_count() derives the number of equal-cost paths from the
// addresses alone, which is exactly the topology information the paper
// proposes end hosts exploit for the dynamic dup-ACK threshold.

#include <cstdint>

#include "topo/network.h"

namespace mmptcp {

/// Parallel decomposition granularity of a FatTree run.
///
///   * kPod: one domain per pod (hosts + edge + agg switches), core c in
///     domain c % k.  k domains — few, fat; best when per-domain load is
///     balanced.
///   * kEdge: one domain per edge switch (the switch plus its attached
///     hosts); agg switches join a per-pod "fabric" domain and core c
///     joins fabric domain c % k.  k^2/2 host-bearing domains + k fabric
///     domains — many, thin; more worker slots and cheap skipping of
///     quiet racks.
///
/// Both granularities share one lookahead — min(edge<->agg, agg<->core
/// delay) — because crossing is a property of the CANONICAL structure:
/// edge<->agg and agg<->core channels are barrier-flushed at either
/// granularity, so the window schedule and every delivery order are
/// granularity-invariant.  Results are therefore byte-identical across
/// granularities by construction: RNG streams and flow ids key on
/// host/topology indices, and canonical flush/grouping order keys on
/// Node::canonical_domain().
enum class DomainGranularity : std::uint8_t { kPod, kEdge };

/// FatTree construction parameters.
struct FatTreeConfig {
  std::uint32_t k = 4;                  ///< even, >= 4
  std::uint32_t oversubscription = 1;   ///< hosts per edge = this * k/2
  /// Parallel decomposition used when the run configures domains.  Pure
  /// execution knob: main results are byte-identical at either value.
  DomainGranularity domain_granularity = DomainGranularity::kPod;
  std::uint64_t link_rate_bps = 100'000'000;
  Time link_delay = Time::micros(20);
  /// Propagation delay of agg<->core links; zero means link_delay.  The
  /// conservative lookahead is min(link_delay, this): edge<->agg and
  /// agg<->core links both cross canonical parallel units.
  Time core_link_delay = Time::zero();
  QueueLimits queue{100, 0};
  /// Host egress queue.  Default unbounded: a real sender's NIC ring gets
  /// OS backpressure instead of dropping its own bursts; loss then happens
  /// where the paper studies it — at the shallow switch ports.
  QueueLimits host_queue{0, 0};
  bool shared_buffer = false;           ///< model shared-memory switches
  std::uint64_t shared_buffer_bytes = 0;  ///< 0 = ports * 100 * 1540
  double shared_buffer_alpha = 1.0;     ///< dynamic-threshold alpha
  /// Queueing discipline on every *switch* egress port (host NICs keep
  /// drop-tail: marking/priority model in-network mechanisms).
  QdiscConfig qdisc{};
};

/// Host address <-> (pod, edge, host) packing helpers.
struct FatTreeAddr {
  static constexpr std::uint32_t kPrefix = 10;

  static Addr host(std::uint32_t pod, std::uint32_t edge, std::uint32_t h) {
    return Addr{kPrefix << 24 | pod << 16 | edge << 8 | (h + 2)};
  }
  static bool is_host(Addr a) {
    return (a.raw >> 24) == kPrefix && (a.raw & 0xff) >= 2;
  }
  static std::uint32_t pod(Addr a) { return (a.raw >> 16) & 0xff; }
  static std::uint32_t edge(Addr a) { return (a.raw >> 8) & 0xff; }
  static std::uint32_t host_index(Addr a) { return (a.raw & 0xff) - 2; }
};

/// How a FatTree decomposes into parallel execution domains (see
/// DomainGranularity for the two layouts).  `host_groups` is the number
/// of edge-level host groups — the granularity-invariant unit that
/// metric shards and flow ownership key on, identical at either
/// granularity so results never depend on the one chosen.
struct FatTreeDomainPlan {
  std::size_t domains = 1;      ///< 1 = not partitionable, run serial
  Time lookahead = Time::zero();  ///< min cross-domain delay when > 1
  std::size_t host_groups = 1;  ///< edge-level groups (k^2/2 when > 1)
};

/// Builder/owner of a FatTree network.
class FatTree : public PathOracle {
 public:
  FatTree(Simulation& sim, FatTreeConfig config);

  /// The decomposition this config yields (at config.domain_granularity),
  /// computable before the topology is built (the simulation must
  /// configure its domains before any node is wired).  Returns a
  /// single-domain plan — the serial fallback — when the minimum
  /// cross-domain delay is zero: conservative execution needs strictly
  /// positive lookahead.
  static FatTreeDomainPlan domain_plan(const FatTreeConfig& config);

  /// Effective agg<->core propagation delay.
  Time core_delay() const {
    return config_.core_link_delay.is_zero() ? config_.link_delay
                                             : config_.core_link_delay;
  }

  Network& network() { return net_; }
  const FatTreeConfig& config() const { return config_; }

  std::uint32_t k() const { return config_.k; }
  std::uint32_t pods() const { return config_.k; }
  std::uint32_t edges_per_pod() const { return config_.k / 2; }
  std::uint32_t aggs_per_pod() const { return config_.k / 2; }
  std::uint32_t hosts_per_edge() const {
    return config_.oversubscription * config_.k / 2;
  }
  std::uint32_t core_count() const { return (config_.k / 2) * (config_.k / 2); }
  std::size_t host_count() const { return net_.host_count(); }

  Host& host(std::size_t i) { return net_.host(i); }
  Host& host_at(std::uint32_t pod, std::uint32_t edge, std::uint32_t h);
  Switch& edge_switch(std::uint32_t pod, std::uint32_t e);
  Switch& agg_switch(std::uint32_t pod, std::uint32_t a);
  Switch& core_switch(std::uint32_t c);

  /// Equal-cost path count between two host addresses:
  /// 0 (same host), 1 (same edge), k/2 (same pod), (k/2)^2 (inter-pod).
  std::uint32_t path_count(Addr a, Addr b) const override;

  /// Static version usable without an instance.
  static std::uint32_t path_count(Addr a, Addr b, std::uint32_t k);

 private:
  std::size_t host_index(std::uint32_t pod, std::uint32_t edge,
                         std::uint32_t h) const;

  FatTreeConfig config_;
  Network net_;
  // Switch indices into net_: edges then aggs (pod-major), then cores.
  std::size_t edge_base_ = 0, agg_base_ = 0, core_base_ = 0;
};

}  // namespace mmptcp
