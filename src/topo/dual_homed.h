#pragma once

// Dual-homed FatTree — the "multi-homed network topologies" the paper's
// roadmap singles out as well-suited to MMPTCP: every host attaches to the
// two edge switches of a pair, doubling the parallel paths at the access
// layer and therefore the burst tolerance of the packet-scatter phase.
//
// Structure: identical to FatTree above the edge layer.  Edge switches in
// a pod are grouped into pairs (2g, 2g+1); the hosts of pair g connect to
// *both* members.  Downward routing at aggregation switches ECMPs between
// the two pair members; hosts spread traffic across their two NICs by
// hashing the packet's ports (so sprayed packets use both NICs).
//
// Addressing: 10.pod.pair.(host+2) — the "edge" byte holds the pair index.

#include "topo/fat_tree.h"

namespace mmptcp {

/// Dual-homed FatTree construction parameters (k must be a multiple of 4
/// so the k/2 edges of a pod pair up evenly; hosts per pair =
/// oversubscription * k/2).
struct DualHomedConfig {
  std::uint32_t k = 4;
  std::uint32_t oversubscription = 1;
  std::uint64_t link_rate_bps = 100'000'000;
  Time link_delay = Time::micros(20);
  QueueLimits queue{100, 0};
  /// Host egress queue (see FatTreeConfig::host_queue).
  QueueLimits host_queue{0, 0};
  /// Queueing discipline on switch egress ports (see FatTreeConfig::qdisc).
  QdiscConfig qdisc{};
};

/// Builder/owner of a dual-homed FatTree network.
class DualHomedFatTree : public PathOracle {
 public:
  DualHomedFatTree(Simulation& sim, DualHomedConfig config);

  Network& network() { return net_; }
  const DualHomedConfig& config() const { return config_; }

  std::uint32_t pods() const { return config_.k; }
  std::uint32_t pairs_per_pod() const { return config_.k / 4; }
  std::uint32_t edges_per_pod() const { return config_.k / 2; }
  std::uint32_t hosts_per_pair() const {
    return config_.oversubscription * config_.k / 2;
  }
  std::uint32_t core_count() const { return (config_.k / 2) * (config_.k / 2); }
  std::size_t host_count() const { return net_.host_count(); }
  Host& host(std::size_t i) { return net_.host(i); }

  Switch& edge_switch(std::uint32_t pod, std::uint32_t e);
  Switch& agg_switch(std::uint32_t pod, std::uint32_t a);
  Switch& core_switch(std::uint32_t c);

  /// Equal-cost paths between host addresses: 2 (same pair), 2k (same
  /// pod), k^2 (inter-pod: 2 src edges x (k/2)^2 x 2 dst edges).
  std::uint32_t path_count(Addr a, Addr b) const override;

 private:
  std::size_t host_index(std::uint32_t pod, std::uint32_t pair,
                         std::uint32_t h) const;

  DualHomedConfig config_;
  Network net_;
  std::size_t edge_base_ = 0, agg_base_ = 0, core_base_ = 0;
};

}  // namespace mmptcp
