#include "topo/fat_tree.h"

#include <algorithm>

#include "net/ecmp.h"

namespace mmptcp {

namespace {

// Routing is algorithmic (two-level routing from the Al-Fares paper,
// collapsed to address arithmetic): downward hops are fully determined by
// the destination address; upward hops pick among uplinks with hash ECMP.

class EdgeRouter final : public Router {
 public:
  EdgeRouter(std::uint32_t pod, std::uint32_t edge, std::uint32_t uplinks,
             std::uint32_t hosts)
      : pod_(pod), edge_(edge), uplinks_(uplinks), hosts_(hosts) {}

  std::size_t route(const Switch& sw, const Packet& pkt) const override {
    if (!FatTreeAddr::is_host(pkt.dst)) return sw.port_count();
    if (FatTreeAddr::pod(pkt.dst) == pod_ &&
        FatTreeAddr::edge(pkt.dst) == edge_) {
      const std::uint32_t h = FatTreeAddr::host_index(pkt.dst);
      return h < hosts_ ? h : sw.port_count();
    }
    return hosts_ + ecmp_select(sw.salt(), pkt.src, pkt.dst, pkt.sport,
                                pkt.dport, uplinks_);
  }

 private:
  std::uint32_t pod_, edge_, uplinks_, hosts_;
};

class AggRouter final : public Router {
 public:
  AggRouter(std::uint32_t pod, std::uint32_t half_k)
      : pod_(pod), half_k_(half_k) {}

  std::size_t route(const Switch& sw, const Packet& pkt) const override {
    if (!FatTreeAddr::is_host(pkt.dst)) return sw.port_count();
    if (FatTreeAddr::pod(pkt.dst) == pod_) {
      const std::uint32_t e = FatTreeAddr::edge(pkt.dst);
      return e < half_k_ ? e : sw.port_count();
    }
    return half_k_ + ecmp_select(sw.salt(), pkt.src, pkt.dst, pkt.sport,
                                 pkt.dport, half_k_);
  }

 private:
  std::uint32_t pod_, half_k_;
};

class CoreRouter final : public Router {
 public:
  explicit CoreRouter(std::uint32_t k) : k_(k) {}

  std::size_t route(const Switch& sw, const Packet& pkt) const override {
    if (!FatTreeAddr::is_host(pkt.dst)) return sw.port_count();
    const std::uint32_t p = FatTreeAddr::pod(pkt.dst);
    return p < k_ ? p : sw.port_count();
  }

 private:
  std::uint32_t k_;
};

}  // namespace

FatTree::FatTree(Simulation& sim, FatTreeConfig config)
    : config_(config), net_(sim) {
  require(config_.k >= 4 && config_.k % 2 == 0,
          "FatTree k must be even and >= 4");
  require(config_.oversubscription >= 1, "oversubscription must be >= 1");
  require(config_.k <= 254, "FatTree k too large for addressing");
  require(hosts_per_edge() <= 253, "too many hosts per edge for addressing");

  const std::uint32_t half = config_.k / 2;
  const std::uint32_t hosts = hosts_per_edge();
  // Host->edge direction uses the (deep) host queue; edge->host keeps the
  // shallow switch queue, so last-hop incast drops are preserved.
  const LinkSpec host_link{config_.link_rate_bps, config_.link_delay,
                           config_.host_queue, LinkLayer::kHostEdge,
                           config_.queue, QdiscConfig{}, config_.qdisc};
  const LinkSpec agg_link{config_.link_rate_bps, config_.link_delay,
                          config_.queue, LinkLayer::kEdgeAgg, std::nullopt,
                          config_.qdisc, std::nullopt};
  const LinkSpec core_link{config_.link_rate_bps, core_delay(),
                           config_.queue, LinkLayer::kAggCore, std::nullopt,
                           config_.qdisc, std::nullopt};

  auto maybe_shared = [&](Switch& sw, std::size_t ports) {
    if (!config_.shared_buffer) return;
    const std::uint64_t bytes =
        config_.shared_buffer_bytes != 0
            ? config_.shared_buffer_bytes
            : std::uint64_t(ports) * 100 * 1540;
    sw.enable_shared_buffer(bytes, config_.shared_buffer_alpha);
  };

  // Domain tagging happens at creation, before any port is wired.
  // Harmless when the simulation never configured domains (everything
  // collapses to the control scheduler), mandatory before add_port()
  // when it did.
  //
  // Execution domains depend on the granularity: per-pod puts pod p in
  // domain p with core c joining domain c % k; per-edge gives every edge
  // switch and its hosts their own domain (p * k/2 + e) and groups agg +
  // core switches into per-pod fabric domains after the host groups.
  // The canonical id is always the edge-level one — flush ordering and
  // metric grouping key on it, so result bytes cannot depend on the
  // execution granularity chosen.
  const bool edge_grain =
      config_.domain_granularity == DomainGranularity::kEdge;
  const std::size_t groups = std::size_t(config_.k) * half;
  const auto host_group = [half](std::uint32_t p, std::uint32_t e) {
    return std::size_t(p) * half + e;
  };
  const auto fabric_domain = [groups](std::uint32_t p) { return groups + p; };

  // Hosts first so net_.host(i) is pod-major, edge-major, host-minor.
  for (std::uint32_t p = 0; p < config_.k; ++p) {
    for (std::uint32_t e = 0; e < half; ++e) {
      for (std::uint32_t h = 0; h < hosts; ++h) {
        const Addr a = FatTreeAddr::host(p, e, h);
        Host& hn = net_.make_host("h" + std::to_string(p) + "." +
                                      std::to_string(e) + "." +
                                      std::to_string(h),
                                  a);
        hn.set_domain(edge_grain ? host_group(p, e) : p);
        hn.set_canonical_domain(host_group(p, e));
      }
    }
  }

  edge_base_ = 0;
  for (std::uint32_t p = 0; p < config_.k; ++p) {
    for (std::uint32_t e = 0; e < half; ++e) {
      Switch& sw = net_.make_switch("edge" + std::to_string(p) + "." +
                                    std::to_string(e));
      sw.set_domain(edge_grain ? host_group(p, e) : p);
      sw.set_canonical_domain(host_group(p, e));
      maybe_shared(sw, hosts + half);
      sw.set_router(std::make_unique<EdgeRouter>(p, e, half, hosts));
    }
  }
  agg_base_ = net_.switch_count();
  for (std::uint32_t p = 0; p < config_.k; ++p) {
    for (std::uint32_t a = 0; a < half; ++a) {
      Switch& sw =
          net_.make_switch("agg" + std::to_string(p) + "." + std::to_string(a));
      sw.set_domain(edge_grain ? fabric_domain(p) : p);
      sw.set_canonical_domain(fabric_domain(p));
      maybe_shared(sw, config_.k);
      sw.set_router(std::make_unique<AggRouter>(p, half));
    }
  }
  core_base_ = net_.switch_count();
  for (std::uint32_t c = 0; c < core_count(); ++c) {
    Switch& sw = net_.make_switch("core" + std::to_string(c));
    sw.set_domain(edge_grain ? fabric_domain(c % config_.k)
                             : c % config_.k);
    sw.set_canonical_domain(fabric_domain(c % config_.k));
    maybe_shared(sw, config_.k);
    sw.set_router(std::make_unique<CoreRouter>(config_.k));
  }

  // Host <-> edge links: edge ports [0, hosts) point at hosts in order.
  for (std::uint32_t p = 0; p < config_.k; ++p) {
    for (std::uint32_t e = 0; e < half; ++e) {
      for (std::uint32_t h = 0; h < hosts; ++h) {
        net_.connect(net_.host(host_index(p, e, h)), edge_switch(p, e),
                     host_link);
      }
    }
  }
  // Edge <-> agg: edge port (hosts + a) -> agg a; agg port e -> edge e.
  for (std::uint32_t p = 0; p < config_.k; ++p) {
    for (std::uint32_t a = 0; a < half; ++a) {
      for (std::uint32_t e = 0; e < half; ++e) {
        net_.connect(edge_switch(p, e), agg_switch(p, a), agg_link);
      }
    }
  }
  // Loop order above is load-bearing: outer `a` gives every edge its
  // uplink ports in ascending agg order, inner `e` gives every agg its
  // down ports in ascending edge order — the routers index ports that way.
  //
  // Agg <-> core: agg a connects to cores [a*half, (a+1)*half); agg port
  // (half + j) -> core a*half+j; core port p -> pod p's agg a.
  for (std::uint32_t a = 0; a < half; ++a) {
    for (std::uint32_t j = 0; j < half; ++j) {
      const std::uint32_t c = a * half + j;
      for (std::uint32_t p = 0; p < config_.k; ++p) {
        net_.connect(agg_switch(p, a), core_switch(c), core_link);
      }
    }
  }
  // The inner loops give agg(p, a) its up-ports in ascending j order and
  // core c its ports in ascending pod order, matching the routers.
}

FatTreeDomainPlan FatTree::domain_plan(const FatTreeConfig& config) {
  FatTreeDomainPlan plan;
  const Time core = config.core_link_delay.is_zero() ? config.link_delay
                                                     : config.core_link_delay;
  // Edge<->agg and agg<->core links cross CANONICAL units at every
  // granularity (the Network outboxes them even when both ends share an
  // execution domain), so the lookahead — and with it the whole window
  // schedule — is the same min over both crossing delays regardless of
  // the granularity chosen.  That shared schedule is one of the pillars
  // of cross-granularity byte identity.
  const Time cross = std::min(config.link_delay, core);
  if (cross <= Time::zero()) return plan;  // zero lookahead: serial fallback
  const std::size_t groups = std::size_t(config.k) * (config.k / 2);
  plan.host_groups = groups;
  plan.lookahead = cross;
  plan.domains = config.domain_granularity == DomainGranularity::kEdge
                     ? groups + config.k  // host groups + per-pod fabric
                     : config.k;
  return plan;
}

std::size_t FatTree::host_index(std::uint32_t pod, std::uint32_t edge,
                                std::uint32_t h) const {
  return (std::size_t(pod) * edges_per_pod() + edge) * hosts_per_edge() + h;
}

Host& FatTree::host_at(std::uint32_t pod, std::uint32_t edge,
                       std::uint32_t h) {
  return net_.host(host_index(pod, edge, h));
}

Switch& FatTree::edge_switch(std::uint32_t pod, std::uint32_t e) {
  return net_.node_switch(edge_base_ + std::size_t(pod) * edges_per_pod() + e);
}

Switch& FatTree::agg_switch(std::uint32_t pod, std::uint32_t a) {
  return net_.node_switch(agg_base_ + std::size_t(pod) * aggs_per_pod() + a);
}

Switch& FatTree::core_switch(std::uint32_t c) {
  return net_.node_switch(core_base_ + c);
}

std::uint32_t FatTree::path_count(Addr a, Addr b) const {
  return path_count(a, b, config_.k);
}

std::uint32_t FatTree::path_count(Addr a, Addr b, std::uint32_t k) {
  if (!FatTreeAddr::is_host(a) || !FatTreeAddr::is_host(b)) return 0;
  if (a == b) return 0;
  const std::uint32_t half = k / 2;
  if (FatTreeAddr::pod(a) != FatTreeAddr::pod(b)) return half * half;
  if (FatTreeAddr::edge(a) != FatTreeAddr::edge(b)) return half;
  return 1;
}

}  // namespace mmptcp
