#include "topo/network.h"

#include <algorithm>
#include <cstdint>

#include "util/check.h"

namespace mmptcp {

Host& Network::make_host(std::string name, Addr addr) {
  hosts_.push_back(
      std::make_unique<Host>(sim_, next_id_++, std::move(name), addr));
  return *hosts_.back();
}

Switch& Network::make_switch(std::string name) {
  switches_.push_back(
      std::make_unique<Switch>(sim_, next_id_++, std::move(name)));
  return *switches_.back();
}

void Network::connect(Node& a, Node& b, const LinkSpec& spec) {
  auto pool_of = [](Node& n) -> SharedBufferPool* {
    if (auto* sw = dynamic_cast<Switch*>(&n)) return sw->shared_buffer();
    return nullptr;
  };
  // Arrivals run in the receiving node's domain.  The two directions of
  // one full-duplex link may therefore live in different schedulers.
  Scheduler& a_sched = sim_.domain_scheduler(a.domain());
  Scheduler& b_sched = sim_.domain_scheduler(b.domain());
  channels_.push_back(std::make_unique<Channel>(b_sched, spec.delay));
  Channel& ab = *channels_.back();
  channels_.push_back(std::make_unique<Channel>(a_sched, spec.delay));
  Channel& ba = *channels_.back();
  // Crossing is decided on CANONICAL domains, not execution schedulers:
  // a channel between two canonical units is outboxed and delivered in
  // the canonical barrier order even when both endpoints happen to share
  // an execution scheduler at the current granularity.  Same-instant
  // arrival ties at a queue then resolve identically at every
  // granularity — a direct insert here at one granularity and a flush
  // at another would order those ties differently and change results.
  // With domains unconfigured nothing ever crosses (pure serial path).
  if (sim_.num_domains() > 0 &&
      a.canonical_domain() != b.canonical_domain()) {
    ab.make_cross_domain(a_sched, &outbox(a.canonical_domain(), a.domain()));
    ba.make_cross_domain(b_sched, &outbox(b.canonical_domain(), b.domain()));
    cross_delay_min_ = std::min(cross_delay_min_, spec.delay);
    cross_channels_ += 2;
  }

  const std::size_t ap = a.add_port(spec.rate_bps, spec.queue, &ab,
                                    spec.layer, pool_of(a), spec.qdisc);
  const std::size_t bp =
      b.add_port(spec.rate_bps, spec.queue_b.value_or(spec.queue), &ba,
                 spec.layer, pool_of(b), spec.qdisc_b.value_or(spec.qdisc));
  ab.attach_sink(&b, bp);
  ba.attach_sink(&a, ap);
}

CrossDomainOutbox& Network::outbox(std::size_t canonical, std::size_t exec) {
  while (outboxes_.size() <= canonical) {
    outboxes_.push_back(std::make_unique<CrossDomainOutbox>());
    outbox_exec_.push_back(SIZE_MAX);
  }
  // A canonical unit split across execution domains would make its
  // outbox multi-writer within a window — a builder bug this
  // flush-ordering scheme cannot canonicalise, so fail loudly.
  if (outbox_exec_[canonical] == SIZE_MAX) {
    outbox_exec_[canonical] = exec;
  } else {
    check(outbox_exec_[canonical] == exec,
          "emitters of one canonical domain span execution domains");
  }
  return *outboxes_[canonical];
}

void Network::flush_cross_domain() {
  flush_scratch_.clear();
  for (std::size_t d = 0; d < outboxes_.size(); ++d) {
    for (CrossDomainOutbox::Entry& e : outboxes_[d]->entries()) {
      flush_scratch_.push_back(FlushRef{e.at, d, e.seq, &e});
    }
  }
  if (flush_scratch_.empty()) return;
  std::sort(flush_scratch_.begin(), flush_scratch_.end(),
            [](const FlushRef& x, const FlushRef& y) {
              if (x.at != y.at) return x.at < y.at;
              if (x.key != y.key) return x.key < y.key;
              return x.seq < y.seq;
            });
  for (const FlushRef& ref : flush_scratch_) {
    ref.entry->channel->deliver_at(ref.at, ref.entry->pkt);
  }
  for (const auto& box : outboxes_) box->clear();
}

std::uint64_t Network::unroutable_total() const {
  std::uint64_t sum = 0;
  for (const auto& s : switches_) sum += s->unroutable();
  return sum;
}

void Network::for_each_port(
    const std::function<void(const Node&, const Port&)>& fn) const {
  for (const auto& h : hosts_) {
    for (std::size_t i = 0; i < h->port_count(); ++i) fn(*h, h->port(i));
  }
  for (const auto& s : switches_) {
    for (std::size_t i = 0; i < s->port_count(); ++i) fn(*s, s->port(i));
  }
}

}  // namespace mmptcp
