#include "topo/network.h"

namespace mmptcp {

Host& Network::make_host(std::string name, Addr addr) {
  hosts_.push_back(
      std::make_unique<Host>(sim_, next_id_++, std::move(name), addr));
  return *hosts_.back();
}

Switch& Network::make_switch(std::string name) {
  switches_.push_back(
      std::make_unique<Switch>(sim_, next_id_++, std::move(name)));
  return *switches_.back();
}

void Network::connect(Node& a, Node& b, const LinkSpec& spec) {
  auto pool_of = [](Node& n) -> SharedBufferPool* {
    if (auto* sw = dynamic_cast<Switch*>(&n)) return sw->shared_buffer();
    return nullptr;
  };
  channels_.push_back(
      std::make_unique<Channel>(sim_.scheduler(), spec.delay));
  Channel& ab = *channels_.back();
  channels_.push_back(
      std::make_unique<Channel>(sim_.scheduler(), spec.delay));
  Channel& ba = *channels_.back();

  const std::size_t ap = a.add_port(spec.rate_bps, spec.queue, &ab,
                                    spec.layer, pool_of(a), spec.qdisc);
  const std::size_t bp =
      b.add_port(spec.rate_bps, spec.queue_b.value_or(spec.queue), &ba,
                 spec.layer, pool_of(b), spec.qdisc_b.value_or(spec.qdisc));
  ab.attach_sink(&b, bp);
  ba.attach_sink(&a, ap);
}

void Network::for_each_port(
    const std::function<void(const Node&, const Port&)>& fn) const {
  for (const auto& h : hosts_) {
    for (std::size_t i = 0; i < h->port_count(); ++i) fn(*h, h->port(i));
  }
  for (const auto& s : switches_) {
    for (std::size_t i = 0; i < s->port_count(); ++i) fn(*s, s->port(i));
  }
}

}  // namespace mmptcp
