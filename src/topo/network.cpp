#include "topo/network.h"

#include <algorithm>

namespace mmptcp {

Host& Network::make_host(std::string name, Addr addr) {
  hosts_.push_back(
      std::make_unique<Host>(sim_, next_id_++, std::move(name), addr));
  return *hosts_.back();
}

Switch& Network::make_switch(std::string name) {
  switches_.push_back(
      std::make_unique<Switch>(sim_, next_id_++, std::move(name)));
  return *switches_.back();
}

void Network::connect(Node& a, Node& b, const LinkSpec& spec) {
  auto pool_of = [](Node& n) -> SharedBufferPool* {
    if (auto* sw = dynamic_cast<Switch*>(&n)) return sw->shared_buffer();
    return nullptr;
  };
  // Arrivals run in the receiving node's domain.  The two directions of
  // one full-duplex link may therefore live in different schedulers.
  Scheduler& a_sched = sim_.domain_scheduler(a.domain());
  Scheduler& b_sched = sim_.domain_scheduler(b.domain());
  channels_.push_back(std::make_unique<Channel>(b_sched, spec.delay));
  Channel& ab = *channels_.back();
  channels_.push_back(std::make_unique<Channel>(a_sched, spec.delay));
  Channel& ba = *channels_.back();
  // Scheduler identity, not domain id: with domains unconfigured every
  // node resolves to the control scheduler and nothing ever crosses.
  if (&a_sched != &b_sched) {
    ab.make_cross_domain(a_sched, &outbox(a.domain()));
    ba.make_cross_domain(b_sched, &outbox(b.domain()));
    cross_delay_min_ = std::min(cross_delay_min_, spec.delay);
    cross_channels_ += 2;
  }

  const std::size_t ap = a.add_port(spec.rate_bps, spec.queue, &ab,
                                    spec.layer, pool_of(a), spec.qdisc);
  const std::size_t bp =
      b.add_port(spec.rate_bps, spec.queue_b.value_or(spec.queue), &ba,
                 spec.layer, pool_of(b), spec.qdisc_b.value_or(spec.qdisc));
  ab.attach_sink(&b, bp);
  ba.attach_sink(&a, ap);
}

CrossDomainOutbox& Network::outbox(std::size_t domain) {
  if (outboxes_.empty()) {
    outboxes_.reserve(sim_.num_domains());
    for (std::size_t d = 0; d < sim_.num_domains(); ++d) {
      outboxes_.push_back(std::make_unique<CrossDomainOutbox>());
    }
  }
  return *outboxes_.at(domain);
}

void Network::flush_cross_domain() {
  flush_scratch_.clear();
  for (std::size_t d = 0; d < outboxes_.size(); ++d) {
    for (CrossDomainOutbox::Entry& e : outboxes_[d]->entries()) {
      flush_scratch_.push_back(FlushRef{e.at, d, e.seq, &e});
    }
  }
  if (flush_scratch_.empty()) return;
  std::sort(flush_scratch_.begin(), flush_scratch_.end(),
            [](const FlushRef& x, const FlushRef& y) {
              if (x.at != y.at) return x.at < y.at;
              if (x.domain != y.domain) return x.domain < y.domain;
              return x.seq < y.seq;
            });
  for (const FlushRef& ref : flush_scratch_) {
    ref.entry->channel->deliver_at(ref.at, ref.entry->pkt);
  }
  for (const auto& box : outboxes_) box->clear();
}

std::uint64_t Network::unroutable_total() const {
  std::uint64_t sum = 0;
  for (const auto& s : switches_) sum += s->unroutable();
  return sum;
}

void Network::for_each_port(
    const std::function<void(const Node&, const Port&)>& fn) const {
  for (const auto& h : hosts_) {
    for (std::size_t i = 0; i < h->port_count(); ++i) fn(*h, h->port(i));
  }
  for (const auto& s : switches_) {
    for (std::size_t i = 0; i < s->port_count(); ++i) fn(*s, s->port(i));
  }
}

}  // namespace mmptcp
