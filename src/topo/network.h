#pragma once

// Network: the container that owns every node and channel of a topology.
//
// Topology builders (FatTree, DualHomedFatTree) create nodes through the
// factory methods and wire them with connect(), which builds the two
// unidirectional channels and egress ports of a full-duplex link.  Stats
// collection walks all ports through for_each_port().

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/host.h"
#include "net/switch.h"

namespace mmptcp {

/// Interface for topologies that can report equal-cost path counts
/// (consumed by MMPTCP's topology-aware dup-ACK threshold).
class PathOracle {
 public:
  virtual ~PathOracle() = default;
  /// Number of equal-cost paths between two host addresses (0 if equal).
  virtual std::uint32_t path_count(Addr a, Addr b) const = 0;
};

/// Parameters of one full-duplex link.  `queue` bounds the egress queue at
/// endpoint `a`; `queue_b` (if set) overrides the bound at endpoint `b` —
/// used for host<->switch links where the host side models OS
/// backpressure (unbounded) while the switch port stays shallow.
struct LinkSpec {
  std::uint64_t rate_bps = 100'000'000;
  Time delay = Time::micros(20);
  QueueLimits queue{};
  LinkLayer layer = LinkLayer::kOther;
  std::optional<QueueLimits> queue_b{};
  /// Queueing discipline at endpoint `a` (drop-tail by default) and an
  /// optional override at endpoint `b` — mirrors queue / queue_b.
  QdiscConfig qdisc{};
  std::optional<QdiscConfig> qdisc_b{};
};

/// Owns nodes and channels; provides wiring and iteration.
class Network {
 public:
  explicit Network(Simulation& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Creates a host with the given address.
  Host& make_host(std::string name, Addr addr);

  /// Creates a switch (router installed separately by the builder).
  Switch& make_switch(std::string name);

  /// Wires a full-duplex link a<->b; both directions share the spec.
  /// If an endpoint is a switch with a shared buffer enabled, its egress
  /// port draws from that switch's pool.  Each direction's channel
  /// inserts arrivals into the *receiving* node's domain scheduler; when
  /// the endpoints live in different CANONICAL domains (and the
  /// simulation has domains configured) the channel is routed through
  /// the emitting unit's outbox and registered as a cross-domain edge —
  /// even when both endpoints share an execution scheduler at the
  /// current granularity.  Crossing is a property of the canonical
  /// structure, never of the execution decomposition, so the delivery
  /// order of every packet (and with it every result byte) is identical
  /// across granularities.
  void connect(Node& a, Node& b, const LinkSpec& spec);

  /// Drains every canonical unit's outbox into the destination
  /// schedulers in the canonical (arrival time, source canonical domain,
  /// emission seq) order.  Called by the engine's barrier hook; cheap
  /// no-op when nothing crossed.
  void flush_cross_domain();

  /// Minimum propagation delay over cross-domain channels — the
  /// conservative lookahead.  Time::max() when no channel crosses.
  Time min_cross_domain_delay() const { return cross_delay_min_; }
  std::size_t cross_domain_channel_count() const { return cross_channels_; }

  /// Sum of Switch::unroutable() over all switches: packets whose route
  /// fell off the table.  Surfaced into results as a hard canary — any
  /// nonzero value means a routing bug silently vanished traffic.
  std::uint64_t unroutable_total() const;

  std::size_t host_count() const { return hosts_.size(); }
  std::size_t switch_count() const { return switches_.size(); }
  Host& host(std::size_t i) { return *hosts_.at(i); }
  const Host& host(std::size_t i) const { return *hosts_.at(i); }
  Switch& node_switch(std::size_t i) { return *switches_.at(i); }
  const Switch& node_switch(std::size_t i) const { return *switches_.at(i); }

  /// Invokes `fn` for every egress port in the network.
  void for_each_port(const std::function<void(const Node&, const Port&)>& fn) const;

  Simulation& sim() { return sim_; }

 private:
  /// Outbox of one canonical unit, grown on demand.  Also records (and
  /// on repeat calls re-checks) which execution domain owns the unit:
  /// a canonical unit must live wholly inside one execution domain or
  /// its outbox would be written by two workers in the same window.
  CrossDomainOutbox& outbox(std::size_t canonical, std::size_t exec);

  struct FlushRef {
    Time at;
    std::size_t key;  ///< emitting side's canonical domain
    std::uint64_t seq;
    CrossDomainOutbox::Entry* entry;
  };

  Simulation& sim_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Channel>> channels_;
  /// One outbox per emitting CANONICAL domain (not execution domain):
  /// the flush key is simply the index, and single-writer safety holds
  /// because every canonical unit executes inside exactly one domain.
  std::vector<std::unique_ptr<CrossDomainOutbox>> outboxes_;
  /// Execution domain owning each canonical unit's outbox (the
  /// single-writer invariant above); SIZE_MAX = no emitter yet.
  std::vector<std::size_t> outbox_exec_;
  std::vector<FlushRef> flush_scratch_;
  Time cross_delay_min_ = Time::max();
  std::size_t cross_channels_ = 0;
  NodeId next_id_ = 0;
};

}  // namespace mmptcp
