#include "stats/link_stats.h"

namespace mmptcp {

double LayerStats::utilization(Time duration) const {
  const double secs = duration.to_seconds();
  if (secs <= 0.0 || capacity_bps_sum == 0) return 0.0;
  return static_cast<double>(tx_bytes) * 8.0 /
         (static_cast<double>(capacity_bps_sum) * secs);
}

std::map<LinkLayer, LayerStats> collect_layer_stats(const Network& net) {
  std::map<LinkLayer, LayerStats> out;
  net.for_each_port([&out](const Node& /*node*/, const Port& port) {
    LayerStats& s = out[port.layer()];
    const PortCounters& c = port.counters();
    s.offered_packets += c.enqueued_packets + c.dropped_packets;
    s.enqueued_packets += c.enqueued_packets;
    s.tx_packets += c.tx_packets;
    s.tx_bytes += c.tx_bytes;
    s.dropped_packets += c.dropped_packets;
    s.port_count += 1;
    s.capacity_bps_sum += port.rate_bps();
  });
  return out;
}

}  // namespace mmptcp
