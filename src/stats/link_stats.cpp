#include "stats/link_stats.h"

#include <algorithm>

namespace mmptcp {

double LayerStats::utilization(Time duration) const {
  const double secs = duration.to_seconds();
  if (secs <= 0.0 || capacity_bps_sum == 0) return 0.0;
  return static_cast<double>(tx_bytes) * 8.0 /
         (static_cast<double>(capacity_bps_sum) * secs);
}

std::uint64_t total_marked_packets(const Network& net) {
  std::uint64_t marked = 0;
  net.for_each_port([&marked](const Node&, const Port& port) {
    marked += port.qdisc().marked_packets();
  });
  return marked;
}

PeakQueue peak_switch_queue(const Network& net) {
  PeakQueue peak;
  net.for_each_port([&peak](const Node& node, const Port& port) {
    if (dynamic_cast<const Switch*>(&node) == nullptr) return;
    // Strictly-greater keeps the FIRST port (in deterministic walk order)
    // to have reached the winning depth, and its timestamp with it.
    if (port.qdisc().peak_packets() > peak.packets) {
      peak.packets = port.qdisc().peak_packets();
      peak.at = port.qdisc().peak_at();
    }
  });
  return peak;
}

std::uint64_t peak_switch_queue_packets(const Network& net) {
  return peak_switch_queue(net).packets;
}

std::map<LinkLayer, LayerStats> collect_layer_stats(const Network& net) {
  std::map<LinkLayer, LayerStats> out;
  net.for_each_port([&out](const Node& /*node*/, const Port& port) {
    LayerStats& s = out[port.layer()];
    const PortCounters& c = port.counters();
    s.offered_packets += c.enqueued_packets + c.dropped_packets;
    s.enqueued_packets += c.enqueued_packets;
    s.tx_packets += c.tx_packets;
    s.tx_bytes += c.tx_bytes;
    s.dropped_packets += c.dropped_packets;
    s.marked_packets += port.qdisc().marked_packets();
    if (port.qdisc().peak_packets() > s.peak_queue_packets) {
      s.peak_queue_packets = port.qdisc().peak_packets();
      s.peak_queue_at = port.qdisc().peak_at();
    }
    s.port_count += 1;
    s.capacity_bps_sum += port.rate_bps();
  });
  for (std::size_t i = 0; i < net.switch_count(); ++i) {
    const Switch& sw = net.node_switch(i);
    if (sw.unroutable() == 0 || sw.port_count() == 0) continue;
    out[sw.port(0).layer()].unroutable_packets += sw.unroutable();
  }
  return out;
}

}  // namespace mmptcp
