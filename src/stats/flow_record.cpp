#include "stats/flow_record.h"

namespace mmptcp {

std::string to_string(Protocol p) {
  switch (p) {
    case Protocol::kTcp: return "TCP";
    case Protocol::kMptcp: return "MPTCP";
    case Protocol::kPacketScatter: return "PS";
    case Protocol::kMmptcp: return "MMPTCP";
    case Protocol::kDctcp: return "DCTCP";
    case Protocol::kMptcpDctcp: return "MPTCP-DCTCP";
    case Protocol::kMmptcpDctcp: return "MMPTCP-DCTCP";
  }
  return "?";
}

}  // namespace mmptcp
