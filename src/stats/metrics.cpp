#include "stats/metrics.h"

#include "util/check.h"

namespace mmptcp {

FlowRecord& Metrics::on_flow_started(Protocol proto, Addr src, Addr dst,
                                     std::uint64_t request_bytes,
                                     bool long_flow, Time now) {
  FlowRecord rec;
  rec.flow_id = static_cast<std::uint32_t>(flows_.size());
  rec.protocol = proto;
  rec.src = src;
  rec.dst = dst;
  rec.request_bytes = request_bytes;
  rec.long_flow = long_flow;
  rec.start = now;
  flows_.push_back(rec);
  return flows_.back();
}

FlowRecord& Metrics::record(std::uint32_t flow_id) {
  check(flow_id < flows_.size(), "unknown flow id");
  return flows_[flow_id];
}

const FlowRecord& Metrics::record(std::uint32_t flow_id) const {
  check(flow_id < flows_.size(), "unknown flow id");
  return flows_[flow_id];
}

void Metrics::on_delivered(std::uint32_t flow_id, std::uint64_t bytes) {
  record(flow_id).delivered_bytes += bytes;
}

void Metrics::on_flow_completed(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  check(!rec.is_complete(), "flow completed twice");
  rec.completed_at = now;
}

void Metrics::on_rto(std::uint32_t flow_id) { ++record(flow_id).rto_count; }

void Metrics::on_fast_retransmit(std::uint32_t flow_id) {
  ++record(flow_id).fast_retransmits;
}

void Metrics::on_spurious_retransmit(std::uint32_t flow_id) {
  ++record(flow_id).spurious_retransmits;
}

void Metrics::on_syn_timeout(std::uint32_t flow_id) {
  ++record(flow_id).syn_timeouts;
}

void Metrics::on_data_packet_sent(std::uint32_t flow_id) {
  ++record(flow_id).packets_sent;
}

void Metrics::on_phase_switch(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  check(!rec.switched_phase(), "flow switched phase twice");
  rec.phase_switch_at = now;
}

void Metrics::on_subflow_used(std::uint32_t flow_id) {
  ++record(flow_id).subflows_used;
}

std::vector<const FlowRecord*> Metrics::flows(
    const std::function<bool(const FlowRecord&)>& pred) const {
  std::vector<const FlowRecord*> out;
  for (const auto& rec : flows_) {
    if (!pred || pred(rec)) out.push_back(&rec);
  }
  return out;
}

Summary Metrics::short_flow_fct_ms(Protocol proto) const {
  Summary s;
  for (const auto& rec : flows_) {
    if (!rec.long_flow && rec.protocol == proto && rec.is_complete()) {
      s.add(rec.fct().to_millis());
    }
  }
  return s;
}

Summary Metrics::long_flow_goodput_mbps(Protocol proto, Time now) const {
  Summary s;
  for (const auto& rec : flows_) {
    if (!rec.long_flow || rec.protocol != proto) continue;
    const Time end = rec.is_complete() ? rec.completed_at : now;
    const double secs = (end - rec.start).to_seconds();
    if (secs <= 0) continue;
    s.add(static_cast<double>(rec.delivered_bytes) * 8.0 / 1e6 / secs);
  }
  return s;
}

double Metrics::short_flow_completion_ratio(Protocol proto) const {
  std::uint64_t total = 0, done = 0;
  for (const auto& rec : flows_) {
    if (rec.long_flow || rec.protocol != proto) continue;
    ++total;
    if (rec.is_complete()) ++done;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(done) / static_cast<double>(total);
}

std::uint64_t Metrics::total(
    const std::function<std::uint64_t(const FlowRecord&)>& field,
    const std::function<bool(const FlowRecord&)>& pred) const {
  std::uint64_t sum = 0;
  for (const auto& rec : flows_) {
    if (!pred || pred(rec)) sum += field(rec);
  }
  return sum;
}

}  // namespace mmptcp
