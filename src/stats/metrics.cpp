#include "stats/metrics.h"

#include "util/check.h"

namespace mmptcp {

namespace {

Time& open_bucket(FlowRecord& rec) {
  switch (rec.budget_state) {
    case BudgetState::kHandshake:
      return rec.t_handshake;
    case BudgetState::kFastRecovery:
      return rec.t_fast_recovery;
    default:
      return rec.t_transfer;
  }
}

}  // namespace

void FlowSketches::add(const FlowRecord& rec) {
  fct_ms.add(rec.fct().to_millis());
  handshake_ms.add(rec.t_handshake.to_millis());
  rto_stall_ms.add(rec.t_rto_stall.to_millis());
  fast_recovery_ms.add(rec.t_fast_recovery.to_millis());
  transfer_ms.add(rec.t_transfer.to_millis());
  reorder_wait_ms.add(rec.t_reorder_wait.to_millis());
  ttfb_ms.add(rec.saw_first_byte() ? rec.ttfb().to_millis() : 0.0);
  if (has_ps_phase(rec.protocol)) {
    ps_phase_ms.add(rec.ps_phase_time().to_millis());
    mptcp_phase_ms.add(rec.mptcp_phase_time().to_millis());
  }
}

void FlowSketches::merge(const FlowSketches& other) {
  fct_ms.merge(other.fct_ms);
  handshake_ms.merge(other.handshake_ms);
  rto_stall_ms.merge(other.rto_stall_ms);
  fast_recovery_ms.merge(other.fast_recovery_ms);
  transfer_ms.merge(other.transfer_ms);
  reorder_wait_ms.merge(other.reorder_wait_ms);
  ttfb_ms.merge(other.ttfb_ms);
  ps_phase_ms.merge(other.ps_phase_ms);
  mptcp_phase_ms.merge(other.mptcp_phase_ms);
}

FlowRecord& Metrics::on_flow_started(Protocol proto, Addr src, Addr dst,
                                     std::uint64_t request_bytes,
                                     bool long_flow, Time now) {
  if (!long_flow) ++short_started_;
  FlowRecord rec;
  rec.protocol = proto;
  rec.src = src;
  rec.dst = dst;
  rec.request_bytes = request_bytes;
  rec.long_flow = long_flow;
  rec.start = now;
  rec.budget_since = now;
  if (!free_slots_.empty()) {
    const std::uint32_t id = free_slots_.back();
    free_slots_.pop_back();
    rec.flow_id = id;
    flows_[id] = rec;
    return flows_[id];
  }
  rec.flow_id = static_cast<std::uint32_t>(flows_.size());
  flows_.push_back(rec);
  return flows_.back();
}

void Metrics::retire(std::uint32_t flow_id) {
  check(streaming_, "Metrics::retire without streaming mode");
  FlowRecord& rec = record(flow_id);
  check(!rec.long_flow && rec.is_complete() && !rec.retired,
        "retire needs a completed, unretired short flow");
  ++retired_.flows;
  retired_.delivered_bytes += rec.delivered_bytes;
  retired_.rtos += std::uint64_t(rec.rto_count) + rec.syn_timeouts;
  if (rec.rto_count + rec.syn_timeouts > 0) ++retired_.flows_with_rto;
  retired_.spurious += rec.spurious_retransmits;
  ++retired_by_proto_[rec.protocol];
  rec.retired = true;
  retire_queue_.emplace_back(rec.completed_at, flow_id);
}

void Metrics::recycle_before(Time cutoff) {
  while (!retire_queue_.empty() && retire_queue_.front().first < cutoff) {
    free_slots_.push_back(retire_queue_.front().second);
    retire_queue_.pop_front();
  }
}

std::uint64_t Metrics::retired_short_flows(Protocol proto) const {
  const auto it = retired_by_proto_.find(proto);
  return it == retired_by_proto_.end() ? 0 : it->second;
}

FlowRecord& Metrics::record(std::uint32_t flow_id) {
  check(flow_id < flows_.size(), "unknown flow id");
  return flows_[flow_id];
}

const FlowRecord& Metrics::record(std::uint32_t flow_id) const {
  check(flow_id < flows_.size(), "unknown flow id");
  return flows_[flow_id];
}

void Metrics::on_delivered(std::uint32_t flow_id, std::uint64_t bytes,
                           Time now) {
  FlowRecord& rec = record(flow_id);
  if (bytes > 0 && !rec.saw_first_byte()) rec.first_byte_at = now;
  rec.delivered_bytes += bytes;
}

void Metrics::on_flow_completed(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  check(!rec.is_complete(), "flow completed twice");
  rec.completed_at = now;
  close_budget_bucket(rec, now, BudgetState::kDone);
  if (!rec.long_flow) {
    ++short_completed_;
    short_sketches_[rec.protocol].add(rec);
  }
}

void Metrics::on_reorder_wait(std::uint32_t flow_id, Time wait) {
  record(flow_id).t_reorder_wait += wait;
}

void Metrics::close_budget_bucket(FlowRecord& rec, Time now,
                                  BudgetState next) {
  if (rec.budget_state == BudgetState::kDone) return;
  if (now > rec.budget_since) {
    open_bucket(rec) += now - rec.budget_since;
    rec.budget_since = now;
  }
  rec.budget_state = next;
}

void Metrics::on_flow_established(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  // Only the first subflow's handshake bounds the connect bucket; later
  // joins establish while the flow is already transferring.
  if (rec.budget_state == BudgetState::kHandshake) {
    close_budget_bucket(rec, now, BudgetState::kTransfer);
  }
}

void Metrics::on_recovery_enter(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  if (rec.budget_state == BudgetState::kDone) return;
  ++rec.recovery_depth;
  if (rec.recovery_depth == 1 &&
      rec.budget_state == BudgetState::kTransfer) {
    close_budget_bucket(rec, now, BudgetState::kFastRecovery);
  }
}

void Metrics::on_recovery_exit(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  if (rec.budget_state == BudgetState::kDone) return;
  if (rec.recovery_depth > 0) --rec.recovery_depth;
  if (rec.recovery_depth == 0 &&
      rec.budget_state == BudgetState::kFastRecovery) {
    close_budget_bucket(rec, now, BudgetState::kTransfer);
  }
}

void Metrics::on_rto_stall(std::uint32_t flow_id, Time stall_begin,
                           Time now) {
  FlowRecord& rec = record(flow_id);
  if (rec.budget_state == BudgetState::kDone) return;
  // Charge [budget_since, begin) to the open bucket and [begin, now) to
  // the stall; clamping `begin` to budget_since keeps the partition exact
  // when stalls overlap other attributed intervals.
  Time begin = stall_begin > rec.budget_since ? stall_begin : rec.budget_since;
  if (begin > now) begin = now;
  if (begin > rec.budget_since) {
    open_bucket(rec) += begin - rec.budget_since;
  }
  rec.t_rto_stall += now - begin;
  rec.budget_since = now;
}

void Metrics::on_rto(std::uint32_t flow_id) { ++record(flow_id).rto_count; }

void Metrics::on_fast_retransmit(std::uint32_t flow_id) {
  ++record(flow_id).fast_retransmits;
}

void Metrics::on_spurious_retransmit(std::uint32_t flow_id) {
  ++record(flow_id).spurious_retransmits;
}

void Metrics::on_syn_timeout(std::uint32_t flow_id) {
  ++record(flow_id).syn_timeouts;
}

void Metrics::on_data_packet_sent(std::uint32_t flow_id) {
  ++record(flow_id).packets_sent;
}

void Metrics::on_phase_switch(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  check(!rec.switched_phase(), "flow switched phase twice");
  rec.phase_switch_at = now;
}

void Metrics::on_subflow_used(std::uint32_t flow_id) {
  ++record(flow_id).subflows_used;
}

std::vector<const FlowRecord*> Metrics::flows(
    const std::function<bool(const FlowRecord&)>& pred) const {
  std::vector<const FlowRecord*> out;
  for (const auto& rec : flows_) {
    if (rec.retired) continue;  // folded into retired() already
    if (!pred || pred(rec)) out.push_back(&rec);
  }
  return out;
}

Summary Metrics::short_flow_fct_ms(Protocol proto) const {
  Summary s;
  for (const auto& rec : flows_) {
    if (rec.retired) continue;
    if (!rec.long_flow && rec.protocol == proto && rec.is_complete()) {
      s.add(rec.fct().to_millis());
    }
  }
  return s;
}

Summary Metrics::long_flow_goodput_mbps(Protocol proto, Time now) const {
  Summary s;
  for (const auto& rec : flows_) {
    if (!rec.long_flow || rec.protocol != proto) continue;
    const Time end = rec.is_complete() ? rec.completed_at : now;
    const double secs = (end - rec.start).to_seconds();
    if (secs <= 0) continue;
    s.add(static_cast<double>(rec.delivered_bytes) * 8.0 / 1e6 / secs);
  }
  return s;
}

double Metrics::short_flow_completion_ratio(Protocol proto) const {
  // Retired flows are by definition complete: they count in both terms.
  std::uint64_t total = retired_short_flows(proto);
  std::uint64_t done = total;
  for (const auto& rec : flows_) {
    if (rec.retired || rec.long_flow || rec.protocol != proto) continue;
    ++total;
    if (rec.is_complete()) ++done;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(done) / static_cast<double>(total);
}

const FlowSketches& Metrics::short_flow_sketches(Protocol proto) const {
  static const FlowSketches empty;
  const auto it = short_sketches_.find(proto);
  return it == short_sketches_.end() ? empty : it->second;
}

std::uint64_t Metrics::total(
    const std::function<std::uint64_t(const FlowRecord&)>& field,
    const std::function<bool(const FlowRecord&)>& pred) const {
  std::uint64_t sum = 0;
  for (const auto& rec : flows_) {
    if (rec.retired) continue;  // folded into retired() already
    if (!pred || pred(rec)) sum += field(rec);
  }
  return sum;
}

}  // namespace mmptcp
