#include "stats/metrics.h"

#include <algorithm>

#include "util/check.h"

namespace mmptcp {

namespace {

Time& open_bucket(FlowRecord& rec) {
  switch (rec.budget_state) {
    case BudgetState::kHandshake:
      return rec.t_handshake;
    case BudgetState::kFastRecovery:
      return rec.t_fast_recovery;
    default:
      return rec.t_transfer;
  }
}

}  // namespace

void FlowSketches::add(const FlowRecord& rec) {
  fct_ms.add(rec.fct().to_millis());
  handshake_ms.add(rec.t_handshake.to_millis());
  rto_stall_ms.add(rec.t_rto_stall.to_millis());
  fast_recovery_ms.add(rec.t_fast_recovery.to_millis());
  transfer_ms.add(rec.t_transfer.to_millis());
  reorder_wait_ms.add(rec.t_reorder_wait.to_millis());
  ttfb_ms.add(rec.saw_first_byte() ? rec.ttfb().to_millis() : 0.0);
  if (has_ps_phase(rec.protocol)) {
    ps_phase_ms.add(rec.ps_phase_time().to_millis());
    mptcp_phase_ms.add(rec.mptcp_phase_time().to_millis());
  }
}

void FlowSketches::merge(const FlowSketches& other) {
  fct_ms.merge(other.fct_ms);
  handshake_ms.merge(other.handshake_ms);
  rto_stall_ms.merge(other.rto_stall_ms);
  fast_recovery_ms.merge(other.fast_recovery_ms);
  transfer_ms.merge(other.transfer_ms);
  reorder_wait_ms.merge(other.reorder_wait_ms);
  ttfb_ms.merge(other.ttfb_ms);
  ps_phase_ms.merge(other.ps_phase_ms);
  mptcp_phase_ms.merge(other.mptcp_phase_ms);
}

void Metrics::configure_shards(std::size_t shards,
                               std::size_t journal_domains) {
  check(shards >= 1, "Metrics needs at least one shard");
  check(shards <= 0x3ff, "too many shards for the flow-id encoding");
  check(flow_count() == 0, "configure_shards after flows started");
  shards_.assign(shards, Shard{});
  journals_.assign(journal_domains == 0 ? shards : journal_domains,
                   std::vector<MetricOp>{});
}

FlowRecord& Metrics::on_flow_started(Protocol proto, Addr src, Addr dst,
                                     std::uint64_t request_bytes,
                                     bool long_flow, Time now) {
  // Allocate from the source host's *group* shard so ids never depend on
  // how concurrent windows interleave, nor on how groups pack into
  // execution domains.  The calling thread owns that shard: a flow
  // starts on its source host's scheduler, and a host group executes in
  // exactly one domain at any granularity.  Without a group mapping
  // (serial runs, incast) everything is shard 0.
  const std::uint32_t src_group = group_of_ ? group_of_(src) : 0;
  const std::uint32_t dst_group = group_of_ ? group_of_(dst) : 0;
  const std::size_t s = src_group < shards_.size() ? src_group : 0;
  Shard& shard = shards_[s];
  if (!long_flow) ++shard.short_started;
  FlowRecord rec;
  rec.protocol = proto;
  rec.src = src;
  rec.dst = dst;
  rec.src_group = src_group;
  rec.dst_group = dst_group;
  rec.request_bytes = request_bytes;
  rec.long_flow = long_flow;
  rec.start = now;
  rec.budget_since = now;
  if (!shard.free_slots.empty()) {
    const std::uint32_t local = shard.free_slots.back();
    shard.free_slots.pop_back();
    rec.flow_id = encode_id(s, local);
    shard.records[local] = rec;
    return shard.records[local];
  }
  const std::uint32_t local = static_cast<std::uint32_t>(shard.records.size());
  check(local <= kLocalMask, "per-shard flow-id space exhausted");
  rec.flow_id = encode_id(s, local);
  shard.records.push_back(rec);
  return shard.records.back();
}

void Metrics::retire(std::uint32_t flow_id) {
  check(streaming_, "Metrics::retire without streaming mode");
  FlowRecord& rec = record(flow_id);
  check(!rec.long_flow && rec.is_complete() && !rec.retired,
        "retire needs a completed, unretired short flow");
  ++retired_.flows;
  retired_.delivered_bytes += rec.delivered_bytes;
  retired_.rtos += std::uint64_t(rec.rto_count) + rec.syn_timeouts;
  if (rec.rto_count + rec.syn_timeouts > 0) ++retired_.flows_with_rto;
  retired_.spurious += rec.spurious_retransmits;
  ++retired_by_proto_[rec.protocol];
  rec.retired = true;
  retire_queue_.emplace_back(rec.completed_at, flow_id);
}

void Metrics::recycle_before(Time cutoff) {
  while (!retire_queue_.empty() && retire_queue_.front().first < cutoff) {
    const std::uint32_t id = retire_queue_.front().second;
    shards_[id >> kShardShift].free_slots.push_back(id & kLocalMask);
    retire_queue_.pop_front();
  }
}

std::uint64_t Metrics::retired_short_flows(Protocol proto) const {
  const auto it = retired_by_proto_.find(proto);
  return it == retired_by_proto_.end() ? 0 : it->second;
}

FlowRecord& Metrics::record(std::uint32_t flow_id) {
  const std::size_t s = flow_id >> kShardShift;
  const std::uint32_t local = flow_id & kLocalMask;
  check(s < shards_.size() && local < shards_[s].records.size(),
        "unknown flow id");
  return shards_[s].records[local];
}

const FlowRecord& Metrics::record(std::uint32_t flow_id) const {
  const std::size_t s = flow_id >> kShardShift;
  const std::uint32_t local = flow_id & kLocalMask;
  check(s < shards_.size() && local < shards_[s].records.size(),
        "unknown flow id");
  return shards_[s].records[local];
}

void Metrics::flush_journals() {
  flush_order_.clear();
  for (std::size_t d = 0; d < journals_.size(); ++d) {
    for (std::size_t i = 0; i < journals_[d].size(); ++i) {
      const MetricOp& op = journals_[d][i];
      // Group lookup happens here, single-threaded at the barrier, never
      // in journal(): reading the record from a worker would race with
      // another shard's push_back.  The record is guaranteed live — ops
      // journaled in window W flush at the W+1 barrier before any
      // control window can retire and recycle the slot.
      flush_order_.push_back(OpRef{op.at, op_group(record(op.flow), op.kind),
                                   static_cast<std::uint32_t>(d),
                                   static_cast<std::uint32_t>(i)});
    }
  }
  if (flush_order_.empty()) return;
  std::sort(flush_order_.begin(), flush_order_.end(),
            [](const OpRef& x, const OpRef& y) {
              if (x.at != y.at) return x.at < y.at;
              if (x.group != y.group) return x.group < y.group;
              if (x.idx != y.idx) return x.idx < y.idx;
              return x.domain < y.domain;
            });
  for (const OpRef& ref : flush_order_) apply(journals_[ref.domain][ref.idx]);
  for (auto& j : journals_) j.clear();
}

void Metrics::apply(const MetricOp& op) {
  using Kind = MetricOp::Kind;
  switch (op.kind) {
    case Kind::kDelivered:
      apply_delivered(op.flow, op.a, op.at);
      break;
    case Kind::kCompleted:
      apply_completed(op.flow, op.at);
      break;
    case Kind::kReorderWait:
      apply_reorder_wait(op.flow, op.t2);
      break;
    case Kind::kRto:
      ++record(op.flow).rto_count;
      break;
    case Kind::kFastRetransmit:
      ++record(op.flow).fast_retransmits;
      break;
    case Kind::kSpurious:
      ++record(op.flow).spurious_retransmits;
      break;
    case Kind::kSynTimeout:
      ++record(op.flow).syn_timeouts;
      break;
    case Kind::kDataSent:
      ++record(op.flow).packets_sent;
      break;
    case Kind::kPhaseSwitch:
      apply_phase_switch(op.flow, op.at);
      break;
    case Kind::kSubflowUsed:
      ++record(op.flow).subflows_used;
      break;
    case Kind::kEstablished:
      apply_established(op.flow, op.at);
      break;
    case Kind::kRecoveryEnter:
      apply_recovery_enter(op.flow, op.at);
      break;
    case Kind::kRecoveryExit:
      apply_recovery_exit(op.flow, op.at);
      break;
    case Kind::kRtoStall:
      apply_rto_stall(op.flow, op.t2, op.at);
      break;
  }
}

void Metrics::on_delivered(std::uint32_t flow_id, std::uint64_t bytes,
                           Time now) {
  if (journal(MetricOp::Kind::kDelivered, flow_id, Time::zero(), bytes)) return;
  apply_delivered(flow_id, bytes, now);
}

void Metrics::apply_delivered(std::uint32_t flow_id, std::uint64_t bytes,
                              Time now) {
  FlowRecord& rec = record(flow_id);
  if (bytes > 0 && !rec.saw_first_byte()) rec.first_byte_at = now;
  rec.delivered_bytes += bytes;
}

void Metrics::on_flow_completed(std::uint32_t flow_id, Time now) {
  if (journal(MetricOp::Kind::kCompleted, flow_id)) return;
  apply_completed(flow_id, now);
}

void Metrics::apply_completed(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  check(!rec.is_complete(), "flow completed twice");
  rec.completed_at = now;
  close_budget_bucket(rec, now, BudgetState::kDone);
  if (!rec.long_flow) {
    ++short_completed_;
    short_sketches_[rec.protocol].add(rec);
  }
}

void Metrics::on_reorder_wait(std::uint32_t flow_id, Time wait) {
  if (journal(MetricOp::Kind::kReorderWait, flow_id, wait)) return;
  apply_reorder_wait(flow_id, wait);
}

void Metrics::apply_reorder_wait(std::uint32_t flow_id, Time wait) {
  record(flow_id).t_reorder_wait += wait;
}

void Metrics::close_budget_bucket(FlowRecord& rec, Time now,
                                  BudgetState next) {
  if (rec.budget_state == BudgetState::kDone) return;
  if (now > rec.budget_since) {
    open_bucket(rec) += now - rec.budget_since;
    rec.budget_since = now;
  }
  rec.budget_state = next;
}

void Metrics::on_flow_established(std::uint32_t flow_id, Time now) {
  if (journal(MetricOp::Kind::kEstablished, flow_id)) return;
  apply_established(flow_id, now);
}

void Metrics::apply_established(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  // Only the first subflow's handshake bounds the connect bucket; later
  // joins establish while the flow is already transferring.
  if (rec.budget_state == BudgetState::kHandshake) {
    close_budget_bucket(rec, now, BudgetState::kTransfer);
  }
}

void Metrics::on_recovery_enter(std::uint32_t flow_id, Time now) {
  if (journal(MetricOp::Kind::kRecoveryEnter, flow_id)) return;
  apply_recovery_enter(flow_id, now);
}

void Metrics::apply_recovery_enter(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  if (rec.budget_state == BudgetState::kDone) return;
  ++rec.recovery_depth;
  if (rec.recovery_depth == 1 &&
      rec.budget_state == BudgetState::kTransfer) {
    close_budget_bucket(rec, now, BudgetState::kFastRecovery);
  }
}

void Metrics::on_recovery_exit(std::uint32_t flow_id, Time now) {
  if (journal(MetricOp::Kind::kRecoveryExit, flow_id)) return;
  apply_recovery_exit(flow_id, now);
}

void Metrics::apply_recovery_exit(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  if (rec.budget_state == BudgetState::kDone) return;
  if (rec.recovery_depth > 0) --rec.recovery_depth;
  if (rec.recovery_depth == 0 &&
      rec.budget_state == BudgetState::kFastRecovery) {
    close_budget_bucket(rec, now, BudgetState::kTransfer);
  }
}

void Metrics::on_rto_stall(std::uint32_t flow_id, Time stall_begin,
                           Time now) {
  if (journal(MetricOp::Kind::kRtoStall, flow_id, stall_begin)) return;
  apply_rto_stall(flow_id, stall_begin, now);
}

void Metrics::apply_rto_stall(std::uint32_t flow_id, Time stall_begin,
                              Time now) {
  FlowRecord& rec = record(flow_id);
  if (rec.budget_state == BudgetState::kDone) return;
  // Charge [budget_since, begin) to the open bucket and [begin, now) to
  // the stall; clamping `begin` to budget_since keeps the partition exact
  // when stalls overlap other attributed intervals.
  Time begin = stall_begin > rec.budget_since ? stall_begin : rec.budget_since;
  if (begin > now) begin = now;
  if (begin > rec.budget_since) {
    open_bucket(rec) += begin - rec.budget_since;
  }
  rec.t_rto_stall += now - begin;
  rec.budget_since = now;
}

void Metrics::on_rto(std::uint32_t flow_id) {
  if (journal(MetricOp::Kind::kRto, flow_id)) return;
  ++record(flow_id).rto_count;
}

void Metrics::on_fast_retransmit(std::uint32_t flow_id) {
  if (journal(MetricOp::Kind::kFastRetransmit, flow_id)) return;
  ++record(flow_id).fast_retransmits;
}

void Metrics::on_spurious_retransmit(std::uint32_t flow_id) {
  if (journal(MetricOp::Kind::kSpurious, flow_id)) return;
  ++record(flow_id).spurious_retransmits;
}

void Metrics::on_syn_timeout(std::uint32_t flow_id) {
  if (journal(MetricOp::Kind::kSynTimeout, flow_id)) return;
  ++record(flow_id).syn_timeouts;
}

void Metrics::on_data_packet_sent(std::uint32_t flow_id) {
  if (journal(MetricOp::Kind::kDataSent, flow_id)) return;
  ++record(flow_id).packets_sent;
}

void Metrics::on_phase_switch(std::uint32_t flow_id, Time now) {
  if (journal(MetricOp::Kind::kPhaseSwitch, flow_id)) return;
  apply_phase_switch(flow_id, now);
}

void Metrics::apply_phase_switch(std::uint32_t flow_id, Time now) {
  FlowRecord& rec = record(flow_id);
  check(!rec.switched_phase(), "flow switched phase twice");
  rec.phase_switch_at = now;
}

void Metrics::on_subflow_used(std::uint32_t flow_id) {
  if (journal(MetricOp::Kind::kSubflowUsed, flow_id)) return;
  ++record(flow_id).subflows_used;
}

std::vector<const FlowRecord*> Metrics::flows(
    const std::function<bool(const FlowRecord&)>& pred) const {
  std::vector<const FlowRecord*> out;
  for (const Shard& shard : shards_) {
    for (const auto& rec : shard.records) {
      if (rec.retired) continue;  // folded into retired() already
      if (!pred || pred(rec)) out.push_back(&rec);
    }
  }
  return out;
}

Summary Metrics::short_flow_fct_ms(Protocol proto) const {
  Summary s;
  for (const Shard& shard : shards_) {
    for (const auto& rec : shard.records) {
      if (rec.retired) continue;
      if (!rec.long_flow && rec.protocol == proto && rec.is_complete()) {
        s.add(rec.fct().to_millis());
      }
    }
  }
  return s;
}

Summary Metrics::long_flow_goodput_mbps(Protocol proto, Time now) const {
  Summary s;
  for (const Shard& shard : shards_) {
    for (const auto& rec : shard.records) {
      if (!rec.long_flow || rec.protocol != proto) continue;
      const Time end = rec.is_complete() ? rec.completed_at : now;
      const double secs = (end - rec.start).to_seconds();
      if (secs <= 0) continue;
      s.add(static_cast<double>(rec.delivered_bytes) * 8.0 / 1e6 / secs);
    }
  }
  return s;
}

double Metrics::short_flow_completion_ratio(Protocol proto) const {
  // Retired flows are by definition complete: they count in both terms.
  std::uint64_t total = retired_short_flows(proto);
  std::uint64_t done = total;
  for (const Shard& shard : shards_) {
    for (const auto& rec : shard.records) {
      if (rec.retired || rec.long_flow || rec.protocol != proto) continue;
      ++total;
      if (rec.is_complete()) ++done;
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(done) / static_cast<double>(total);
}

const FlowSketches& Metrics::short_flow_sketches(Protocol proto) const {
  static const FlowSketches empty;
  const auto it = short_sketches_.find(proto);
  return it == short_sketches_.end() ? empty : it->second;
}

std::uint64_t Metrics::total(
    const std::function<std::uint64_t(const FlowRecord&)>& field,
    const std::function<bool(const FlowRecord&)>& pred) const {
  std::uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    for (const auto& rec : shard.records) {
      if (rec.retired) continue;  // folded into retired() already
      if (!pred || pred(rec)) sum += field(rec);
    }
  }
  return sum;
}

}  // namespace mmptcp
