#pragma once

// Per-flow bookkeeping shared by all transports.
//
// Completion is recorded when the *receiver* has the whole byte stream
// (matching how flow completion time is normally measured in datacenter
// transport papers); RTO / retransmission counters are incremented by the
// sender-side machinery.

#include <cstdint>
#include <string>

#include "net/address.h"
#include "sim/time.h"

namespace mmptcp {

/// Transport protocol of a flow, as selected by the TransportFactory.
enum class Protocol : std::uint8_t {
  kTcp,            ///< single-path TCP NewReno
  kMptcp,          ///< MPTCP with N subflows from the start
  kPacketScatter,  ///< MMPTCP that never leaves the PS phase (baseline)
  kMmptcp,         ///< the paper's hybrid: PS phase then MPTCP phase
  kDctcp,          ///< single-path DCTCP (needs an ECN-marking qdisc)
  kMptcpDctcp,     ///< MPTCP with per-subflow DCTCP ECN reaction
  kMmptcpDctcp,    ///< MMPTCP, all subflows (PS included) ECN-aware
};

std::string to_string(Protocol p);

/// Everything we track about one flow.
struct FlowRecord {
  std::uint32_t flow_id = 0;
  Protocol protocol = Protocol::kTcp;
  Addr src;
  Addr dst;
  std::uint64_t request_bytes = 0;  ///< 0 = unbounded (long background flow)
  bool long_flow = false;

  Time start;                        ///< client initiated the connection
  Time completed_at = Time::max();   ///< receiver held all bytes
  std::uint64_t delivered_bytes = 0; ///< receiver-side in-order bytes

  std::uint32_t rto_count = 0;
  std::uint32_t fast_retransmits = 0;
  std::uint32_t spurious_retransmits = 0;
  std::uint32_t syn_timeouts = 0;
  std::uint32_t packets_sent = 0;     ///< data segments (incl. rtx)
  std::uint32_t subflows_used = 0;    ///< subflows that carried data
  Time phase_switch_at = Time::max(); ///< MMPTCP PS->MPTCP switch

  bool is_complete() const { return completed_at != Time::max(); }
  bool switched_phase() const { return phase_switch_at != Time::max(); }

  /// Flow completion time; only meaningful when is_complete().
  Time fct() const { return completed_at - start; }
};

}  // namespace mmptcp
