#pragma once

// Per-flow bookkeeping shared by all transports.
//
// Completion is recorded when the *receiver* has the whole byte stream
// (matching how flow completion time is normally measured in datacenter
// transport papers); RTO / retransmission counters are incremented by the
// sender-side machinery.

#include <cstdint>
#include <string>

#include "net/address.h"
#include "sim/time.h"

namespace mmptcp {

/// Transport protocol of a flow, as selected by the TransportFactory.
enum class Protocol : std::uint8_t {
  kTcp,            ///< single-path TCP NewReno
  kMptcp,          ///< MPTCP with N subflows from the start
  kPacketScatter,  ///< MMPTCP that never leaves the PS phase (baseline)
  kMmptcp,         ///< the paper's hybrid: PS phase then MPTCP phase
  kDctcp,          ///< single-path DCTCP (needs an ECN-marking qdisc)
  kMptcpDctcp,     ///< MPTCP with per-subflow DCTCP ECN reaction
  kMmptcpDctcp,    ///< MMPTCP, all subflows (PS included) ECN-aware
};

std::string to_string(Protocol p);

/// True for the protocols that start in the packet-scatter phase.
constexpr bool has_ps_phase(Protocol p) {
  return p == Protocol::kPacketScatter || p == Protocol::kMmptcp ||
         p == Protocol::kMmptcpDctcp;
}

/// Which budget bucket a flow's elapsed time is currently charged to.
/// Exactly one bucket is open at any instant, so for completed flows the
/// buckets partition [start, completed_at] with no gap or overlap.
enum class BudgetState : std::uint8_t {
  kHandshake,     ///< waiting for the first subflow's SYN-ACK
  kTransfer,      ///< nominal data transfer (includes queueing delay)
  kFastRecovery,  ///< at least one subflow in fast recovery
  kDone,          ///< flow completed; budget frozen
};

/// Everything we track about one flow.
struct FlowRecord {
  std::uint32_t flow_id = 0;
  Protocol protocol = Protocol::kTcp;
  Addr src;
  Addr dst;
  std::uint64_t request_bytes = 0;  ///< 0 = unbounded (long background flow)
  bool long_flow = false;
  /// Canonical (granularity-invariant, edge-level) host groups of the two
  /// endpoints, derived from the addresses at start (see
  /// Metrics::set_group_of).  Journaled mutations sort on these instead
  /// of the execution domain, so the canonical flush order — and every
  /// result byte — is identical across decomposition granularities.
  /// Written once at creation, read-only afterwards.
  std::uint32_t src_group = 0;
  std::uint32_t dst_group = 0;

  Time start;                        ///< client initiated the connection
  Time completed_at = Time::max();   ///< receiver held all bytes
  std::uint64_t delivered_bytes = 0; ///< receiver-side in-order bytes
  /// Folded into Metrics' retired aggregates (streaming mode); the slot
  /// is awaiting recycling and queries must skip it.
  bool retired = false;

  std::uint32_t rto_count = 0;
  std::uint32_t fast_retransmits = 0;
  std::uint32_t spurious_retransmits = 0;
  std::uint32_t syn_timeouts = 0;
  std::uint32_t packets_sent = 0;     ///< data segments (incl. rtx)
  std::uint32_t subflows_used = 0;    ///< subflows that carried data
  Time phase_switch_at = Time::max(); ///< MMPTCP PS->MPTCP switch

  // Flow-time budget: where the flow's wall-clock went.  The four Time
  // buckets are exclusive and, once the flow completes, sum exactly to
  // fct().  RTO stalls are attributed retroactively when the timer fires
  // (clamped to budget_since so overlapping subflow stalls never double
  // count); t_transfer absorbs everything not otherwise attributed, which
  // in an incast is dominated by queueing delay.
  Time t_handshake;      ///< connect/handshake time (minus timer stalls)
  Time t_rto_stall;      ///< idle in RTO/SYN timer waits (incl. handshake)
  Time t_fast_recovery;  ///< some subflow in dupack-triggered recovery
  Time t_transfer;       ///< the remainder: transmission + queueing
  BudgetState budget_state = BudgetState::kHandshake;
  Time budget_since;                 ///< when the open bucket was opened
  std::uint32_t recovery_depth = 0;  ///< subflows currently in recovery

  // Overlay timings: informational, NOT part of the additive partition.
  Time first_byte_at = Time::max();  ///< receiver got the first payload byte
  Time t_reorder_wait;  ///< receiver head-of-line blocking (scatter penalty)

  bool is_complete() const { return completed_at != Time::max(); }
  bool switched_phase() const { return phase_switch_at != Time::max(); }

  /// Flow completion time; only meaningful when is_complete().
  Time fct() const { return completed_at - start; }

  /// Sum of the budget buckets; equals fct() once complete.
  Time budget_total() const {
    return t_handshake + t_rto_stall + t_fast_recovery + t_transfer;
  }

  bool saw_first_byte() const { return first_byte_at != Time::max(); }
  /// Time to first byte at the receiver; only when saw_first_byte().
  Time ttfb() const { return first_byte_at - start; }

  /// Time spent in the packet-scatter phase (PS-capable protocols); the
  /// whole flow when the switch never happened.  Only once complete.
  Time ps_phase_time() const {
    return (switched_phase() ? phase_switch_at : completed_at) - start;
  }
  /// Time spent in the MPTCP phase after the switch; only once complete.
  Time mptcp_phase_time() const {
    return switched_phase() ? completed_at - phase_switch_at : Time::zero();
  }
};

}  // namespace mmptcp
