#pragma once

// Deterministic mergeable percentile sketch.
//
// A log-bucket histogram: positive values land in geometric buckets of
// ratio 2^(1/128), giving a worst-case relative quantile error of
// 2^(1/256) - 1 (~0.27%) while holding O(1) memory per metric (at most a
// few hundred occupied buckets for any realistic value range).  Bucket
// boundaries are derived exclusively from IEEE-exact operations (frexp,
// sqrt, multiply), so the sketch is byte-identical across hosts, across
// `--jobs` values, and under any split-then-merge sharding — unlike a
// t-digest, whose centroids depend on insertion order.
//
// count/sum/sum-of-squares/min/max are tracked exactly; only the
// quantiles are approximate.

#include <cstdint>
#include <map>
#include <string>

namespace mmptcp {

/// Streaming quantile sketch over non-negative samples (values <= 0 are
/// counted in a dedicated zero bucket).
class QuantileSketch {
 public:
  /// Worst-case relative error of quantile(): half a bucket width.
  static double relative_error();

  void add(double value);
  void merge(const QuantileSketch& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Exact mean (0 when empty).
  double mean() const;
  /// Sample (n-1) standard deviation from exact moments; 0 below 2 samples.
  double stddev() const;
  /// Exact extremes; 0 when empty.
  double min() const;
  double max() const;

  /// Approximate quantile, q in [0, 1]; 0 when empty.  The result is the
  /// geometric midpoint of the bucket holding the target rank, clamped to
  /// the exact [min, max] range.
  double quantile(double q) const;

  /// Canonical byte representation: identical sketches (by content, in any
  /// insertion or merge order) serialise to identical bytes.
  std::string serialize() const;

  /// Exact inverse of serialize(): the returned sketch is bit-identical to
  /// the serialised one (doubles round-trip through %.17g), so sharded
  /// sweeps can ship sketches as text and merge them without any drift.
  /// Throws ConfigError on malformed input.
  static QuantileSketch deserialize(const std::string& text);

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  static std::int32_t bucket_index(double value);
  static double bucket_midpoint(std::int32_t index);

  // Occupied buckets only, keyed by global bucket index (octave * 128 +
  // sub-bucket).  std::map iteration order is the canonical order.
  std::map<std::int32_t, std::uint64_t> buckets_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace mmptcp
