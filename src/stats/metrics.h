#pragma once

// Metrics registry: one per simulation run.
//
// Transports report events against a flow id; benches and tests query
// summaries.  Flow ids are dense indices into a deque so records have
// stable addresses and O(1) lookup.

#include <deque>
#include <functional>
#include <vector>

#include "stats/flow_record.h"
#include "util/summary.h"

namespace mmptcp {

/// Collects flow records and protocol event counters for one run.
class Metrics {
 public:
  /// Registers a new flow and returns its record (flow_id assigned).
  FlowRecord& on_flow_started(Protocol proto, Addr src, Addr dst,
                              std::uint64_t request_bytes, bool long_flow,
                              Time now);

  FlowRecord& record(std::uint32_t flow_id);
  const FlowRecord& record(std::uint32_t flow_id) const;

  /// Receiver-side events.
  void on_delivered(std::uint32_t flow_id, std::uint64_t bytes);
  void on_flow_completed(std::uint32_t flow_id, Time now);

  /// Sender-side events.
  void on_rto(std::uint32_t flow_id);
  void on_fast_retransmit(std::uint32_t flow_id);
  void on_spurious_retransmit(std::uint32_t flow_id);
  void on_syn_timeout(std::uint32_t flow_id);
  void on_data_packet_sent(std::uint32_t flow_id);
  void on_phase_switch(std::uint32_t flow_id, Time now);
  void on_subflow_used(std::uint32_t flow_id);

  std::size_t flow_count() const { return flows_.size(); }

  /// All records matching `pred` (nullptr = all).
  std::vector<const FlowRecord*> flows(
      const std::function<bool(const FlowRecord&)>& pred = nullptr) const;

  /// FCTs (milliseconds) of completed short flows of `proto`.
  Summary short_flow_fct_ms(Protocol proto) const;

  /// Goodput (Mbit/s) of long flows of `proto`, measured to `now`.
  Summary long_flow_goodput_mbps(Protocol proto, Time now) const;

  /// Completed short flows / total short flows for `proto`.
  double short_flow_completion_ratio(Protocol proto) const;

  /// Sum of a counter over flows matching `pred`.
  std::uint64_t total(
      const std::function<std::uint64_t(const FlowRecord&)>& field,
      const std::function<bool(const FlowRecord&)>& pred = nullptr) const;

 private:
  std::deque<FlowRecord> flows_;
};

}  // namespace mmptcp
