#pragma once

// Metrics registry: one per simulation run.
//
// Transports report events against a flow id; benches and tests query
// summaries.  Flow ids are shard-local dense indices (shard in the high
// 8 bits) into per-shard deques, so records have stable addresses and
// O(1) lookup.  With one shard — the default — ids are plain dense
// indices, exactly the classic behaviour.
//
// Parallel runs configure one shard per *canonical host group* (the
// granularity-invariant edge-level unit, see Node::canonical_domain)
// and one journal per execution domain.  Three rules then make
// concurrent mutation deterministic, race-free and independent of the
// decomposition granularity:
//   * on_flow_started allocates synchronously from the source host's
//     *group* shard (via set_group_of), so id assignment never depends
//     on cross-domain interleaving or on how groups pack into domains;
//   * every other mutator appends to the calling domain's journal
//     instead of touching the record (a flow's record is written from
//     both endpoints' domains — sender retransmit state, receiver
//     delivery — which may execute concurrently);
//   * flush_journals(), called at every window barrier, applies the
//     buffered ops in the canonical (time, group, append order) order
//     — the group being the relevant endpoint's host group, not the
//     journal's execution domain — which is identical at any worker
//     count and at any granularity.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sim/parallel.h"
#include "stats/flow_record.h"
#include "stats/sketch.h"
#include "util/summary.h"

namespace mmptcp {

/// Streaming sketches over completed short flows of one protocol: FCT and
/// its budget decomposition, all in milliseconds.  O(1) memory regardless
/// of flow count; mergeable across shards with byte-identical state.
struct FlowSketches {
  QuantileSketch fct_ms;
  QuantileSketch handshake_ms;
  QuantileSketch rto_stall_ms;
  QuantileSketch fast_recovery_ms;
  QuantileSketch transfer_ms;
  QuantileSketch reorder_wait_ms;
  QuantileSketch ttfb_ms;
  // PS-capable protocols only (zero elsewhere); ps + mptcp sum to fct.
  QuantileSketch ps_phase_ms;
  QuantileSketch mptcp_phase_ms;

  /// Folds a completed flow record into every component sketch.
  void add(const FlowRecord& rec);
  void merge(const FlowSketches& other);
};

/// Counters a retired short-flow record folds into before its slot is
/// recycled (streaming mode).  Everything the Scenario result helpers
/// still need once the record itself is gone.
struct RetiredTotals {
  std::uint64_t flows = 0;            ///< retired (completed) short flows
  std::uint64_t delivered_bytes = 0;
  std::uint64_t rtos = 0;             ///< rto_count + syn_timeouts
  std::uint64_t flows_with_rto = 0;
  std::uint64_t spurious = 0;
};

/// Collects flow records and protocol event counters for one run.
class Metrics {
 public:
  /// Flow id layout: shard (= canonical host group) in the high bits,
  /// dense local index below.  Up to 1024 shards, 4.2M live flows each;
  /// with one shard ids are plain dense indices.
  static constexpr unsigned kShardShift = 22;
  static constexpr std::uint32_t kLocalMask = (1u << kShardShift) - 1;

  /// Splits flow storage into `shards` shards (one per canonical host
  /// group) and journals into `journal_domains` buffers (one per
  /// execution domain).  Call before the first flow starts (parallel
  /// scenario setup).
  void configure_shards(std::size_t shards, std::size_t journal_domains = 0);
  std::size_t shard_count() const { return shards_.size(); }

  /// Maps a host address to its canonical host group; the scenario
  /// installs the topology's mapping before any flow starts.  Drives
  /// both shard selection (source group) and the canonical flush order.
  /// Unset (serial runs, incast) everything lands in group/shard 0.
  void set_group_of(std::function<std::uint32_t(Addr)> fn) {
    group_of_ = std::move(fn);
  }

  /// Applies every journaled mutation in canonical (time, group,
  /// append-order) order, where the group is the relevant endpoint's
  /// canonical host group (receiver's for delivery-side ops, sender's
  /// otherwise).  The engine's barrier hook calls this between windows;
  /// serial runs never journal, so it is a no-op for them.
  void flush_journals();

  /// Registers a new flow and returns its record (flow_id assigned).
  FlowRecord& on_flow_started(Protocol proto, Addr src, Addr dst,
                              std::uint64_t request_bytes, bool long_flow,
                              Time now);

  FlowRecord& record(std::uint32_t flow_id);
  const FlowRecord& record(std::uint32_t flow_id) const;

  /// Receiver-side events.
  void on_delivered(std::uint32_t flow_id, std::uint64_t bytes, Time now);
  void on_flow_completed(std::uint32_t flow_id, Time now);
  /// Receiver head-of-line blocking episode ended after `wait`.
  void on_reorder_wait(std::uint32_t flow_id, Time wait);

  /// Sender-side events.
  void on_rto(std::uint32_t flow_id);
  void on_fast_retransmit(std::uint32_t flow_id);
  void on_spurious_retransmit(std::uint32_t flow_id);
  void on_syn_timeout(std::uint32_t flow_id);
  void on_data_packet_sent(std::uint32_t flow_id);
  void on_phase_switch(std::uint32_t flow_id, Time now);
  void on_subflow_used(std::uint32_t flow_id);

  /// Budget transitions (see FlowRecord): the first subflow's handshake
  /// completed; a subflow entered/left fast recovery; a retransmission
  /// timer fired after stalling since `stall_begin` (charged retroactively,
  /// clamped so overlapping subflow stalls never double count).
  void on_flow_established(std::uint32_t flow_id, Time now);
  void on_recovery_enter(std::uint32_t flow_id, Time now);
  void on_recovery_exit(std::uint32_t flow_id, Time now);
  void on_rto_stall(std::uint32_t flow_id, Time stall_begin, Time now);

  std::size_t flow_count() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) n += s.records.size();
    return n;
  }

  // ---- streaming (million-flow) mode ----
  //
  // With streaming on, completed short flows can be *retired*: their
  // counters fold into RetiredTotals (the sketches already absorbed them
  // at completion) and, once the server endpoint is gone too, the record
  // slot is recycled for a future flow.  Memory then stays O(live flows)
  // instead of O(all flows).  Flow ids are never observable by the
  // simulation (ECMP hashes the 5-tuple), so recycling does not change
  // behaviour — results are byte-identical to the non-streaming run.
  void set_streaming(bool on) { streaming_ = on; }
  bool streaming() const { return streaming_; }

  /// Folds a completed short flow into the retired aggregates and queues
  /// its slot for recycling.  Call only when the client side is finished;
  /// the slot stays valid (marked retired) until recycle_before().
  void retire(std::uint32_t flow_id);

  /// Recycles retired slots whose flow completed before `cutoff`.  Call
  /// only after the server endpoints for those flows were destroyed
  /// (Sink::gc with the same cutoff) — afterwards the ids may be handed
  /// to new flows.
  void recycle_before(Time cutoff);

  const RetiredTotals& retired() const { return retired_; }
  /// Retired (completed) short flows of `proto`.
  std::uint64_t retired_short_flows(Protocol proto) const;

  /// Short flows ever started / completed, retired ones included.
  /// O(shards); the scenario stop condition uses these instead of
  /// scanning records.
  std::uint64_t short_flows_started() const {
    std::uint64_t n = 0;
    for (const Shard& s : shards_) n += s.short_started;
    return n;
  }
  std::uint64_t short_flows_completed() const { return short_completed_; }

  /// All records matching `pred` (nullptr = all).
  std::vector<const FlowRecord*> flows(
      const std::function<bool(const FlowRecord&)>& pred = nullptr) const;

  /// FCTs (milliseconds) of completed short flows of `proto`.
  Summary short_flow_fct_ms(Protocol proto) const;

  /// Goodput (Mbit/s) of long flows of `proto`, measured to `now`.
  Summary long_flow_goodput_mbps(Protocol proto, Time now) const;

  /// Completed short flows / total short flows for `proto`.
  double short_flow_completion_ratio(Protocol proto) const;

  /// Sum of a counter over flows matching `pred`.
  std::uint64_t total(
      const std::function<std::uint64_t(const FlowRecord&)>& field,
      const std::function<bool(const FlowRecord&)>& pred = nullptr) const;

  /// Streaming FCT/budget sketches over completed short flows of `proto`
  /// (an empty set of sketches when none completed).
  const FlowSketches& short_flow_sketches(Protocol proto) const;

 private:
  /// One canonical host group's flow storage (single shard when serial).
  struct Shard {
    std::deque<FlowRecord> records;
    std::vector<std::uint32_t> free_slots;  ///< recycled local indices
    std::uint64_t short_started = 0;
  };

  /// One buffered mutation.  `at` is the ambient event time when the op
  /// was journaled — the canonical primary sort key at flush.
  struct MetricOp {
    enum class Kind : std::uint8_t {
      kDelivered, kCompleted, kReorderWait, kRto, kFastRetransmit,
      kSpurious, kSynTimeout, kDataSent, kPhaseSwitch, kSubflowUsed,
      kEstablished, kRecoveryEnter, kRecoveryExit, kRtoStall,
    };
    Time at;
    Time t2;               ///< wait (ReorderWait) / stall_begin (RtoStall)
    std::uint64_t a = 0;   ///< bytes (Delivered)
    std::uint32_t flow = 0;
    Kind kind{};
  };

  static constexpr std::uint32_t encode_id(std::size_t shard,
                                           std::uint32_t local) {
    return static_cast<std::uint32_t>(shard << kShardShift) | local;
  }

  /// Buffers `op` when called from inside a domain window of a sharded
  /// run; returns false (caller applies immediately) otherwise.
  bool journal(MetricOp::Kind kind, std::uint32_t flow, Time t2 = Time::zero(),
               std::uint64_t a = 0) {
    const int d = par::current_domain();
    if (d < 0 || static_cast<std::size_t>(d) >= journals_.size()) return false;
    journals_[d].push_back(
        MetricOp{par::tls_scheduler->now(), t2, a, flow, kind});
    return true;
  }

  /// Position of one journaled op in the canonical flush order.  `group`
  /// is the sort key (granularity-invariant); `domain` locates the op in
  /// its journal.  Ops sharing (at, group) always come from one journal
  /// — a host group's events execute in exactly one domain — so the idx
  /// tie-break is well defined; the final domain tie-break only pins a
  /// total order for impossible inputs.
  struct OpRef {
    Time at;
    std::uint32_t group;
    std::uint32_t domain;
    std::uint32_t idx;  ///< append order within the domain's journal
  };

  /// Canonical group an op sorts under: the receiver's host group for
  /// delivery-side ops, the sender's for everything else.
  static std::uint32_t op_group(const FlowRecord& rec, MetricOp::Kind kind) {
    switch (kind) {
      case MetricOp::Kind::kDelivered:
      case MetricOp::Kind::kCompleted:
      case MetricOp::Kind::kReorderWait:
        return rec.dst_group;
      default:
        return rec.src_group;
    }
  }

  void apply(const MetricOp& op);

  void apply_delivered(std::uint32_t flow_id, std::uint64_t bytes, Time now);
  void apply_completed(std::uint32_t flow_id, Time now);
  void apply_reorder_wait(std::uint32_t flow_id, Time wait);
  void apply_established(std::uint32_t flow_id, Time now);
  void apply_recovery_enter(std::uint32_t flow_id, Time now);
  void apply_recovery_exit(std::uint32_t flow_id, Time now);
  void apply_rto_stall(std::uint32_t flow_id, Time stall_begin, Time now);
  void apply_phase_switch(std::uint32_t flow_id, Time now);

  /// Charges [budget_since, now) to the open bucket and opens `next`.
  static void close_budget_bucket(FlowRecord& rec, Time now, BudgetState next);

  std::vector<Shard> shards_{1};
  std::vector<std::vector<MetricOp>> journals_;  ///< one per domain
  std::vector<OpRef> flush_order_;               ///< scratch for flush
  std::function<std::uint32_t(Addr)> group_of_;  ///< host -> canonical group
  std::map<Protocol, FlowSketches> short_sketches_;

  bool streaming_ = false;
  RetiredTotals retired_;
  std::map<Protocol, std::uint64_t> retired_by_proto_;
  /// Retired slots not yet recyclable: (completed_at, flow_id), in
  /// retirement order (completion times are non-decreasing across
  /// periodic checks, so a prefix scan suffices).
  std::deque<std::pair<Time, std::uint32_t>> retire_queue_;
  std::uint64_t short_completed_ = 0;
};

}  // namespace mmptcp
