#pragma once

// Per-layer link statistics, aggregated from port counters.
//
// The paper reports "average loss rate at the core and aggregation
// layers"; these helpers classify every egress port by the layer tag its
// link was built with and aggregate drops, transmissions and utilisation.

#include <map>

#include "topo/network.h"

namespace mmptcp {

/// Aggregated counters for one layer of the hierarchy.
struct LayerStats {
  std::uint64_t offered_packets = 0;  ///< enqueued + dropped
  std::uint64_t enqueued_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t marked_packets = 0;      ///< CE-marked by this layer's qdiscs
  /// Packets dropped at this layer's switches because routing returned no
  /// valid port (attributed by the switch's down-facing port layer:
  /// edge -> host-edge, agg -> edge-agg, core -> agg-core).  A routing
  /// bug canary — must be zero in a healthy fabric.
  std::uint64_t unroutable_packets = 0;
  std::uint64_t peak_queue_packets = 0;  ///< max peak occupancy over ports
  Time peak_queue_at;                    ///< when that peak was first reached
  std::uint64_t port_count = 0;
  std::uint64_t capacity_bps_sum = 0;

  /// Fraction of offered packets that were dropped at this layer.
  double loss_rate() const {
    return offered_packets == 0
               ? 0.0
               : static_cast<double>(dropped_packets) /
                     static_cast<double>(offered_packets);
  }

  /// Fraction of this layer's capacity carried over `duration`.
  double utilization(Time duration) const;
};

/// Walks every port of `net` and aggregates by LinkLayer.
std::map<LinkLayer, LayerStats> collect_layer_stats(const Network& net);

/// CE marks set by every qdisc in the network.
std::uint64_t total_marked_packets(const Network& net);

/// Peak queue occupancy (packets) over *switch* egress ports — host NICs
/// are unbounded (OS-backpressured) and would swamp the signal — together
/// with the time the winning port first reached it.
struct PeakQueue {
  std::uint64_t packets = 0;
  Time at;
};
PeakQueue peak_switch_queue(const Network& net);

/// Peak-packets component of peak_switch_queue() (legacy convenience).
std::uint64_t peak_switch_queue_packets(const Network& net);

}  // namespace mmptcp
