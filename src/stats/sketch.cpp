#include "stats/sketch.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace mmptcp {

namespace {

constexpr int kSubBuckets = 128;  // buckets per octave

// Sub-bucket boundaries over one octave: boundary[j] ~= 2^(j/128) for
// j in [0, 128].  Built from sqrt/multiply only — both correctly rounded
// under IEEE 754 — so the table (and therefore every bucket decision) is
// bit-identical on any conforming host.
struct BucketTable {
  double boundary[kSubBuckets + 1];
  double midpoint[kSubBuckets];  // geometric midpoint of each sub-bucket

  BucketTable() {
    double ratio = 2.0;  // 2^(1/128) after 7 square roots
    for (int i = 0; i < 7; ++i) ratio = std::sqrt(ratio);
    const double half = std::sqrt(ratio);  // 2^(1/256)
    boundary[0] = 1.0;
    for (int j = 1; j <= kSubBuckets; ++j) {
      boundary[j] = boundary[j - 1] * ratio;
    }
    for (int j = 0; j < kSubBuckets; ++j) {
      midpoint[j] = boundary[j] * half;
    }
  }
};

const BucketTable& table() {
  static const BucketTable t;
  return t;
}

// Largest j with boundary[j] <= y, for y in [1, 2).
int sub_bucket(double y) {
  const BucketTable& t = table();
  int lo = 0, hi = kSubBuckets;
  while (hi - lo > 1) {
    const int mid = (lo + hi) / 2;
    if (t.boundary[mid] <= y) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

double QuantileSketch::relative_error() {
  // Half a bucket width: 2^(1/256) - 1.
  double half = 2.0;
  for (int i = 0; i < 8; ++i) half = std::sqrt(half);
  return half - 1.0;
}

std::int32_t QuantileSketch::bucket_index(double value) {
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp
  const double y = mantissa * 2.0;                  // y in [1, 2)
  return static_cast<std::int32_t>(exp - 1) * kSubBuckets + sub_bucket(y);
}

double QuantileSketch::bucket_midpoint(std::int32_t index) {
  const int octave =
      index >= 0 ? index / kSubBuckets : (index - kSubBuckets + 1) / kSubBuckets;
  const int sub = index - octave * kSubBuckets;
  return std::ldexp(table().midpoint[sub], octave);
}

void QuantileSketch::add(double value) {
  check(std::isfinite(value), "QuantileSketch::add on non-finite value");
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  if (value > 0) {
    ++buckets_[bucket_index(value)];
  } else {
    ++zero_count_;
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  zero_count_ += other.zero_count_;
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
}

double QuantileSketch::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double QuantileSketch::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double QuantileSketch::min() const { return count_ == 0 ? 0.0 : min_; }

double QuantileSketch::max() const { return count_ == 0 ? 0.0 : max_; }

double QuantileSketch::quantile(double q) const {
  check(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (count_ == 0) return 0.0;
  // Target rank, 1-based, matching the "nearest rank" definition.
  const std::uint64_t target =
      q <= 0.0 ? 1
               : static_cast<std::uint64_t>(
                     std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = zero_count_;
  if (target <= seen) return min_ < 0.0 ? min_ : 0.0;
  for (const auto& [index, n] : buckets_) {
    seen += n;
    if (seen >= target) {
      double v = bucket_midpoint(index);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;
}

std::string QuantileSketch::serialize() const {
  // Canonical text form; %.17g round-trips doubles exactly.
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "qsketch1 n=%llu zero=%llu sum=%.17g sumsq=%.17g min=%.17g "
                "max=%.17g buckets=",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(zero_count_), sum_, sum_sq_,
                min_, max_);
  std::string out = buf;
  bool first = true;
  for (const auto& [index, n] : buckets_) {
    std::snprintf(buf, sizeof buf, "%s%d:%llu", first ? "" : ",",
                  static_cast<int>(index), static_cast<unsigned long long>(n));
    out += buf;
    first = false;
  }
  return out;
}

namespace {

/// Reads "<key>=" at `pos` (advancing past it) or fails.
void expect_key(const std::string& text, std::size_t& pos, const char* key) {
  const std::size_t len = std::string(key).size();
  check(text.compare(pos, len, key) == 0 && pos + len < text.size() &&
            text[pos + len] == '=',
        std::string("QuantileSketch::deserialize: expected '") + key +
            "=' in: " + text.substr(0, 64));
  pos += len + 1;
}

std::uint64_t parse_u64(const std::string& text, std::size_t& pos) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str() + pos, &end, 10);
  check(end != text.c_str() + pos,
        "QuantileSketch::deserialize: expected integer");
  pos = static_cast<std::size_t>(end - text.c_str());
  return static_cast<std::uint64_t>(v);
}

double parse_f64(const std::string& text, std::size_t& pos) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str() + pos, &end);
  check(end != text.c_str() + pos,
        "QuantileSketch::deserialize: expected number");
  pos = static_cast<std::size_t>(end - text.c_str());
  return v;
}

void skip_space(const std::string& text, std::size_t& pos) {
  while (pos < text.size() && text[pos] == ' ') ++pos;
}

}  // namespace

QuantileSketch QuantileSketch::deserialize(const std::string& text) {
  check(text.compare(0, 9, "qsketch1 ") == 0,
        "QuantileSketch::deserialize: not a qsketch1 string: " +
            text.substr(0, 32));
  QuantileSketch s;
  std::size_t pos = 9;
  expect_key(text, pos, "n");
  s.count_ = parse_u64(text, pos);
  skip_space(text, pos);
  expect_key(text, pos, "zero");
  s.zero_count_ = parse_u64(text, pos);
  skip_space(text, pos);
  expect_key(text, pos, "sum");
  s.sum_ = parse_f64(text, pos);
  skip_space(text, pos);
  expect_key(text, pos, "sumsq");
  s.sum_sq_ = parse_f64(text, pos);
  skip_space(text, pos);
  expect_key(text, pos, "min");
  s.min_ = parse_f64(text, pos);
  skip_space(text, pos);
  expect_key(text, pos, "max");
  s.max_ = parse_f64(text, pos);
  skip_space(text, pos);
  expect_key(text, pos, "buckets");
  while (pos < text.size()) {
    char* end = nullptr;
    const long idx = std::strtol(text.c_str() + pos, &end, 10);
    check(end != text.c_str() + pos && *end == ':',
          "QuantileSketch::deserialize: malformed bucket list");
    pos = static_cast<std::size_t>(end - text.c_str()) + 1;
    const std::uint64_t n = parse_u64(text, pos);
    s.buckets_[static_cast<std::int32_t>(idx)] = n;
    if (pos < text.size()) {
      check(text[pos] == ',',
            "QuantileSketch::deserialize: malformed bucket separator");
      ++pos;
    }
  }
  return s;
}

}  // namespace mmptcp
