#pragma once

// MMPTCP — the paper's contribution.
//
// "Data transport takes place in two phases.  Initially, packets are
//  randomly scattered in the network under a single TCP congestion window
//  exploiting all available paths.  Most, if not all, short flows are
//  expected to complete before switching to the second phase, during
//  which, MMPTCP runs as standard MPTCP, efficiently handling long flows."
//
// Implementation: an MptcpConnection that starts with exactly one subflow
// — the PsSubflow — and, when the switching policy triggers, freezes it
// (no new data is mapped onto it; it drains and deactivates once its
// window empties) and opens the configured number of regular MPTCP
// subflows under LIA coupling.  Short flows complete inside the PS phase;
// long flows get MPTCP's multi-path throughput.

#include "core/phase_policy.h"
#include "core/ps_subflow.h"
#include "mptcp/mptcp_connection.h"
#include "topo/network.h"

namespace mmptcp {

/// MMPTCP connection configuration.
struct MmptcpConfig {
  MptcpConfig mptcp{};          ///< phase-two subflow pool + socket knobs
  PhaseSwitchConfig phase{};    ///< when to leave the PS phase
  /// Dup-ACK policy for the PS flow (reordering robustness, §2).  Default:
  /// static threshold 3 with the DSACK undo (undo_on_spurious) — our
  /// ablation (bench/ablation_dupthresh) finds that revertible spurious
  /// recoveries beat topology-raised thresholds, which forgo fast
  /// retransmissions and pay full RTOs instead.
  DupAckConfig ps_dupack{DupAckPolicyKind::kStatic, 3, 1.0, 2, 3, 90};
  /// Source of equal-cost path counts for the topology-aware threshold
  /// (may be null: the policy falls back to its minimum threshold).
  const PathOracle* oracle = nullptr;
  /// DCTCP knobs for the packet-scatter flow when mptcp.ecn is on — the
  /// hook for treating shorts differently from longs (DiffFlow-style):
  /// e.g. initial_alpha = 0 plus min_cut_segments = 1 lets a fresh
  /// short flow slow-start through a marked-but-shallow elephant queue
  /// while the EWMA learns the real marked fraction.  The default stays
  /// RFC-conservative: in high-fan-in incast the optimistic start
  /// overshoots the buffer before alpha can learn, and the conservative
  /// scatter flow is what wins the battle_ecn gate (no RTOs, tight
  /// p99).  Phase-two subflows use the mptcp.dctcp knobs instead.
  DctcpConfig ps_dctcp{};
};

/// Client side of one MMPTCP connection (servers use MptcpConnection —
/// the receive path is identical for the whole MPTCP family).
class MmptcpConnection final : public MptcpConnection {
 public:
  MmptcpConnection(Simulation& sim, Metrics& metrics, Host& local, Addr peer,
                   std::uint32_t flow_id, MmptcpConfig config);

  bool switched() const { return switched_; }
  bool ps_drained() const { return ps_drained_; }
  const PsSubflow* ps_subflow() const;
  const PhaseSwitchPolicy& policy() const { return policy_; }

  /// Forces the PS -> MPTCP switch (tests / manual control).
  void switch_now();

 protected:
  /// No MP_JOINs on establishment: phase two opens them at the switch.
  std::uint32_t join_count() const override { return 0; }
  /// Phase one assigns data to the PS flow only.
  std::vector<std::uint8_t> initial_assignable() const override {
    return {0};
  }
  std::unique_ptr<Subflow> make_subflow(std::uint8_t id, SocketRole role,
                                        std::uint16_t local_port,
                                        std::uint16_t peer_port,
                                        bool join) override;
  void before_allocate(Subflow& sf) override;
  void note_congestion(Subflow& sf, CongestionEventKind kind) override;
  void on_subflow_drained(Subflow& sf) override;

 private:
  MmptcpConfig mm_config_;
  PhaseSwitchPolicy policy_;
  bool switched_ = false;
  bool ps_drained_ = false;
};

}  // namespace mmptcp
