#include "core/phase_policy.h"

#include "util/check.h"

namespace mmptcp {

std::string to_string(SwitchPolicyKind kind) {
  switch (kind) {
    case SwitchPolicyKind::kDataVolume: return "data-volume";
    case SwitchPolicyKind::kCongestionEvent: return "congestion-event";
    case SwitchPolicyKind::kNever: return "never";
  }
  return "?";
}

PhaseSwitchPolicy::PhaseSwitchPolicy(PhaseSwitchConfig config)
    : config_(config) {
  require(config_.kind != SwitchPolicyKind::kDataVolume ||
              config_.volume_bytes > 0,
          "data-volume switching needs a positive threshold");
}

bool PhaseSwitchPolicy::trigger_on_volume(std::uint64_t mapped_bytes) const {
  return config_.kind == SwitchPolicyKind::kDataVolume &&
         mapped_bytes >= config_.volume_bytes;
}

bool PhaseSwitchPolicy::trigger_on_congestion(CongestionEventKind kind) const {
  return config_.kind == SwitchPolicyKind::kCongestionEvent &&
         (kind == CongestionEventKind::kFastRetransmit ||
          kind == CongestionEventKind::kRto);
}

}  // namespace mmptcp
