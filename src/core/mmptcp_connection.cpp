#include "core/mmptcp_connection.h"

#include "trace/recorder.h"

namespace mmptcp {

MmptcpConnection::MmptcpConnection(Simulation& sim, Metrics& metrics,
                                   Host& local, Addr peer,
                                   std::uint32_t flow_id, MmptcpConfig config)
    : MptcpConnection(sim, metrics, local, peer, flow_id, config.mptcp),
      mm_config_(config), policy_(config.phase) {}

const PsSubflow* MmptcpConnection::ps_subflow() const {
  if (subflow_count() == 0) return nullptr;
  return dynamic_cast<const PsSubflow*>(&subflow(0));
}

std::unique_ptr<Subflow> MmptcpConnection::make_subflow(
    std::uint8_t id, SocketRole role, std::uint16_t local_port,
    std::uint16_t peer_port, bool join) {
  if (id != 0) {
    return MptcpConnection::make_subflow(id, role, local_port, peer_port,
                                         join);
  }
  // The PS flow: single *uncoupled* window, reordering-robust dup-ACK
  // policy, per-packet source-port randomisation.
  TcpConfig cfg = config().tcp;
  cfg.dupack = mm_config_.ps_dupack;
  const std::uint32_t paths =
      mm_config_.oracle != nullptr
          ? mm_config_.oracle->path_count(local_host().addr(), peer_addr())
          : 0;
  // Fork off the host stream, not the master RNG: subflows are created
  // while domain windows execute in parallel, and per-host streams keep
  // the draw sequence deterministic without cross-domain sharing.
  return std::make_unique<PsSubflow>(
      *this, role, local_port, peer_port, cfg,
      make_cc(/*coupled=*/false, mm_config_.ps_dctcp), paths,
      local_host().rng().fork());
}

void MmptcpConnection::before_allocate(Subflow& sf) {
  if (switched_ || sf.subflow_id() != 0) return;
  // "Switching occurs when a certain amount of data has been
  // transmitted" — measured as bytes the PS flow has put on the wire.
  if (policy_.trigger_on_volume(sf.high_water())) switch_now();
}

void MmptcpConnection::note_congestion(Subflow& sf,
                                       CongestionEventKind kind) {
  if (switched_ || sf.subflow_id() != 0) return;
  if (policy_.trigger_on_congestion(kind)) switch_now();
}

void MmptcpConnection::switch_now() {
  check(role() == SocketRole::kClient, "only the sender switches phases");
  if (switched_) return;
  switched_ = true;
  metrics_ref().on_phase_switch(flow_id(), sim_ref().now());
  if (TraceRecorder* t = sim_ref().trace_for(kTracePhase)) {
    t->phase_switch(sim_ref().now(), flow_id(), subflow(0).high_water());
  }
  // "No more packets are put in the initial PS flow which is deactivated
  //  when its window gets emptied."
  subflow(0).freeze_stream();
  // Chunks queued on the PS flow but never sent migrate to the MPTCP
  // subflows; data already in the PS window drains normally.
  std::vector<std::uint8_t> phase_two;
  for (std::uint32_t i = 1; i <= config().subflow_count; ++i) {
    phase_two.push_back(static_cast<std::uint8_t>(i));
  }
  set_assignable(std::move(phase_two));
  requeue_assigned(0);
  open_client_subflows(1, config().subflow_count);
}

void MmptcpConnection::on_subflow_drained(Subflow& sf) {
  if (sf.subflow_id() == 0 && switched_) ps_drained_ = true;
  MptcpConnection::on_subflow_drained(sf);
}

}  // namespace mmptcp
