#pragma once

// Uniform entry point for all the transports the benches compare:
// TCP, MPTCP, pure packet scatter (MMPTCP that never switches), MMPTCP,
// DCTCP (single-path, proportional ECN response) and the ECN-aware
// MPTCP family variants mptcp-dctcp / mmptcp-dctcp (coupled or scatter
// increase + per-subflow DCTCP alpha).  Every ECN-capable transport
// needs an ECN-marking qdisc on the switches or it degenerates to its
// loss-driven sibling.
//
// ClientFlow owns the client-side protocol machinery for one flow; Sink
// listens on a host and builds the matching server side for every SYN it
// sees (MPTCP-family SYNs carry the kDss flag).  This mirrors the paper's
// deployment story: servers need no per-protocol configuration, and the
// protocols coexist on the same network.

#include <memory>
#include <vector>

#include "core/mmptcp_connection.h"

namespace mmptcp {

/// Everything needed to instantiate a flow of any protocol.
struct TransportConfig {
  Protocol protocol = Protocol::kMmptcp;
  TcpConfig tcp{};                 ///< socket knobs (all protocols)
  std::uint32_t subflows = 8;      ///< MPTCP / MMPTCP phase-2 subflows
  PhaseSwitchConfig phase{};       ///< MMPTCP switching policy
  /// PS-flow reordering policy (see MmptcpConfig::ps_dupack).
  DupAckConfig ps_dupack{DupAckPolicyKind::kStatic, 3, 1.0, 2, 3, 90};
  bool coupled = true;             ///< LIA coupling for MPTCP-family
  /// DCTCP alpha knobs, used by kDctcp and the *-dctcp MPTCP variants
  /// (per phase-two subflow for the MPTCP family).
  DctcpConfig dctcp{};
  /// DCTCP knobs for kMmptcpDctcp's packet-scatter flow — the
  /// shorts-vs-longs differentiation hook (see MmptcpConfig::ps_dctcp).
  DctcpConfig ps_dctcp{};
  SchedulerKind scheduler = SchedulerKind::kEagerRoundRobin;
  bool reinject_on_rto = false;    ///< MPTCP reinjection ablation
  const PathOracle* oracle = nullptr;
  std::uint16_t server_port = 5001;

  MptcpConfig mptcp_config() const;
  MmptcpConfig mmptcp_config() const;
};

/// Owning handle for one client-side flow (any protocol).
class ClientFlow {
 public:
  /// Registers the flow with `metrics` and starts the transfer.
  /// `bytes` is the request size; pass `kLongFlow` for an unbounded
  /// background flow.
  ClientFlow(Simulation& sim, Metrics& metrics, Host& src, Addr dst,
             const TransportConfig& config, std::uint64_t bytes,
             bool long_flow);
  static constexpr std::uint64_t kLongFlow = TcpSocket::kUnboundedBytes;

  std::uint32_t flow_id() const { return flow_id_; }
  Protocol protocol() const { return protocol_; }

  /// True once the sender has nothing left to do: every byte (and FIN /
  /// DATA_FIN) acknowledged, or the socket gave up.  Safe to destroy.
  bool finished() const;

  /// Underlying machinery (null when the protocol does not match).
  TcpSocket* tcp() { return tcp_.get(); }
  MptcpConnection* mptcp() { return conn_.get(); }
  MmptcpConnection* mmptcp() {
    return dynamic_cast<MmptcpConnection*>(conn_.get());
  }

 private:
  Protocol protocol_;
  std::uint32_t flow_id_;
  std::unique_ptr<TcpSocket> tcp_;
  std::unique_ptr<MptcpConnection> conn_;
};

/// Server-side acceptor: owns every server endpoint created on its port.
class Sink {
 public:
  Sink(Simulation& sim, Metrics& metrics, Host& host, std::uint16_t port,
       TcpConfig server_tcp);
  ~Sink();

  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  std::size_t accepted() const { return tcp_.size() + mptcp_.size(); }

  /// Destroys server endpoints whose flow completed before `before`
  /// (a TIME_WAIT-style linger keeps late retransmissions answerable).
  void gc(Time before);

 private:
  void on_syn(const Packet& syn);

  Simulation& sim_;
  Metrics& metrics_;
  Host& host_;
  std::uint16_t port_;
  TcpConfig server_tcp_;
  std::vector<std::unique_ptr<TcpSocket>> tcp_;
  std::vector<std::unique_ptr<MptcpConnection>> mptcp_;
};

}  // namespace mmptcp
