#include "core/transport_factory.h"

#include "tcp/dctcp.h"

namespace mmptcp {

MptcpConfig TransportConfig::mptcp_config() const {
  MptcpConfig cfg;
  cfg.tcp = tcp;
  cfg.subflow_count = subflows;
  cfg.coupled = coupled;
  cfg.ecn = protocol == Protocol::kMptcpDctcp ||
            protocol == Protocol::kMmptcpDctcp;
  cfg.dctcp = dctcp;
  cfg.scheduler = scheduler;
  cfg.reinject_on_rto = reinject_on_rto;
  cfg.server_port = server_port;
  return cfg;
}

MmptcpConfig TransportConfig::mmptcp_config() const {
  MmptcpConfig cfg;
  cfg.mptcp = mptcp_config();
  cfg.phase = phase;
  cfg.ps_dupack = ps_dupack;
  cfg.oracle = oracle;
  cfg.ps_dctcp = ps_dctcp;
  return cfg;
}

ClientFlow::ClientFlow(Simulation& sim, Metrics& metrics, Host& src, Addr dst,
                       const TransportConfig& config, std::uint64_t bytes,
                       bool long_flow)
    : protocol_(config.protocol) {
  const std::uint64_t request = long_flow ? kLongFlow : bytes;
  FlowRecord& rec = metrics.on_flow_started(
      config.protocol, src.addr(), dst, long_flow ? 0 : bytes, long_flow,
      sim.now());
  flow_id_ = rec.flow_id;
  sim.logger().child("transport").log(LogLevel::kInfo, [&] {
    return "flow " + std::to_string(flow_id_) + " (" +
           to_string(config.protocol) + (long_flow ? ", long" : "") +
           ") starting: " + std::to_string(long_flow ? 0 : bytes) +
           " B to " + dst.to_string();
  });
  switch (config.protocol) {
    case Protocol::kTcp:
    case Protocol::kDctcp: {
      std::unique_ptr<CongestionControl> cc;
      if (config.protocol == Protocol::kDctcp) {
        cc = std::make_unique<DctcpCc>(config.tcp.mss,
                                       config.tcp.initial_cwnd_segments,
                                       config.dctcp);
      } else {
        cc = std::make_unique<NewRenoCc>(config.tcp.mss,
                                         config.tcp.initial_cwnd_segments);
      }
      tcp_ = std::make_unique<TcpSocket>(
          sim, metrics, src, SocketRole::kClient, dst, src.ephemeral_port(),
          config.server_port, src.next_token(), flow_id_, config.tcp,
          std::move(cc));
      tcp_->connect_and_send(request);
      break;
    }
    case Protocol::kMptcp:
    case Protocol::kMptcpDctcp: {
      // mptcp_config() flips the per-subflow ECN reaction on for the
      // -dctcp variant; the connection machinery is identical.
      conn_ = std::make_unique<MptcpConnection>(sim, metrics, src, dst,
                                                flow_id_,
                                                config.mptcp_config());
      conn_->connect_and_send(request);
      break;
    }
    case Protocol::kPacketScatter: {
      MmptcpConfig cfg = config.mmptcp_config();
      cfg.phase.kind = SwitchPolicyKind::kNever;
      conn_ = std::make_unique<MmptcpConnection>(sim, metrics, src, dst,
                                                 flow_id_, cfg);
      conn_->connect_and_send(request);
      break;
    }
    case Protocol::kMmptcp:
    case Protocol::kMmptcpDctcp: {
      conn_ = std::make_unique<MmptcpConnection>(sim, metrics, src, dst,
                                                 flow_id_,
                                                 config.mmptcp_config());
      conn_->connect_and_send(request);
      break;
    }
  }
}

bool ClientFlow::finished() const {
  if (tcp_ != nullptr) return tcp_->sender_drained() || tcp_->dead();
  return conn_->sender_complete();
}

Sink::Sink(Simulation& sim, Metrics& metrics, Host& host, std::uint16_t port,
           TcpConfig server_tcp)
    : sim_(sim), metrics_(metrics), host_(host), port_(port),
      server_tcp_(server_tcp) {
  host_.listen(port_, [this](const Packet& syn) { on_syn(syn); });
}

Sink::~Sink() {
  // Server endpoints hold demux registrations on host_; drop them before
  // removing the listener.
  tcp_.clear();
  mptcp_.clear();
  host_.unlisten(port_);
}

void Sink::gc(Time before) {
  const auto done_before = [&](std::uint32_t flow_id) {
    const FlowRecord& rec = metrics_.record(flow_id);
    return rec.is_complete() && rec.completed_at < before;
  };
  std::erase_if(tcp_, [&](const std::unique_ptr<TcpSocket>& s) {
    return done_before(s->flow_id());
  });
  std::erase_if(mptcp_, [&](const std::unique_ptr<MptcpConnection>& c) {
    return done_before(c->flow_id());
  });
}

void Sink::on_syn(const Packet& syn) {
  if (syn.has(pkt_flags::kDss)) {
    MptcpConfig cfg;
    cfg.tcp = server_tcp_;
    cfg.server_port = port_;
    auto conn = std::make_unique<MptcpConnection>(sim_, metrics_, host_, syn,
                                                  cfg);
    conn->accept(syn);
    mptcp_.push_back(std::move(conn));
    return;
  }
  auto sock = std::make_unique<TcpSocket>(
      sim_, metrics_, host_, SocketRole::kServer, syn.src, syn.dport,
      syn.sport, syn.token, syn.flow_id, server_tcp_,
      std::make_unique<NewRenoCc>(server_tcp_.mss,
                                  server_tcp_.initial_cwnd_segments));
  sock->accept(syn);
  tcp_.push_back(std::move(sock));
}

}  // namespace mmptcp
