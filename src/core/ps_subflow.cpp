#include "core/ps_subflow.h"

namespace mmptcp {

PsSubflow::PsSubflow(MptcpConnection& conn, SocketRole role,
                     std::uint16_t local_port, std::uint16_t peer_port,
                     TcpConfig config, std::unique_ptr<CongestionControl> cc,
                     std::uint32_t path_count, Rng rng)
    : Subflow(conn, /*subflow_id=*/0, role, local_port, peer_port,
              std::move(config), std::move(cc), /*join=*/false, path_count),
      rng_(rng) {}

void PsSubflow::decorate_data(Packet& pkt) {
  Subflow::decorate_data(pkt);
  // A fresh source port per packet decorrelates the ECMP hash at every
  // switch; retransmissions get a new port too, steering them away from
  // whatever path lost the original.
  pkt.sport = static_cast<std::uint16_t>(49152 + rng_.uniform(16384));
  pkt.flags |= pkt_flags::kPs;
  ++ports_randomised_;
}

}  // namespace mmptcp
