#pragma once

// The Packet-Scatter subflow — phase one of MMPTCP.
//
// A single TCP congestion window whose packets are sprayed across all
// equal-cost paths: the subflow randomises its *source port on every
// packet*, so hash-based ECMP at each switch picks an independent path per
// packet (§2 "Packet Scatter Phase": scattering initiated at end hosts
// through source-port randomisation rather than at switches).  ACKs echo
// the randomised ports, spraying the reverse path too (implemented in
// TcpSocket::send_ack_reply).
//
// Reordering robustness comes from the socket's DupAckPolicy — either the
// topology-aware threshold computed from the FatTree addressing scheme or
// the RR-TCP-style adaptive threshold (both from §2).

#include "mptcp/subflow.h"
#include "util/rng.h"

namespace mmptcp {

/// Subflow 0 of an MMPTCP connection during the packet-scatter phase.
class PsSubflow final : public Subflow {
 public:
  PsSubflow(MptcpConnection& conn, SocketRole role, std::uint16_t local_port,
            std::uint16_t peer_port, TcpConfig config,
            std::unique_ptr<CongestionControl> cc, std::uint32_t path_count,
            Rng rng);

  /// Number of distinct source ports stamped so far (test observability).
  std::uint64_t ports_randomised() const { return ports_randomised_; }

 protected:
  void decorate_data(Packet& pkt) override;

 private:
  Rng rng_;
  std::uint64_t ports_randomised_ = 0;
};

}  // namespace mmptcp
