#pragma once

// Phase-switching policies (§2 "Phase Switching"):
//
//  * kDataVolume      — switch after a configurable number of bytes has
//                       been transmitted.  The paper's early evaluation
//                       found this does not hurt long flows: the new
//                       subflows wrap up the access-link capacity within a
//                       few RTTs.
//  * kCongestionEvent — switch when congestion is first inferred (a fast
//                       retransmission or an RTO on the PS flow).
//  * kNever           — never switch: the connection stays in packet
//                       scatter forever (the "PS" baseline discussed in
//                       [6] and used by the benches for comparison).

#include <cstdint>
#include <string>

#include "tcp/tcp_socket.h"

namespace mmptcp {

enum class SwitchPolicyKind : std::uint8_t {
  kDataVolume,
  kCongestionEvent,
  kNever,
};

std::string to_string(SwitchPolicyKind kind);

/// Configuration of MMPTCP's PS -> MPTCP switch.
struct PhaseSwitchConfig {
  SwitchPolicyKind kind = SwitchPolicyKind::kDataVolume;
  /// kDataVolume: switch once this many bytes have been handed to the PS
  /// flow.  The default comfortably exceeds the paper's 70 KB short flows,
  /// so shorts finish inside the PS phase.
  std::uint64_t volume_bytes = 256 * 1024;
};

/// Pure decision logic for the phase switch (stateless; easy to test).
class PhaseSwitchPolicy {
 public:
  explicit PhaseSwitchPolicy(PhaseSwitchConfig config);

  /// True when `mapped_bytes` handed to the PS flow warrants switching.
  bool trigger_on_volume(std::uint64_t mapped_bytes) const;

  /// True when a PS-flow congestion event warrants switching (SYN
  /// timeouts do not count: no data has flowed yet).
  bool trigger_on_congestion(CongestionEventKind kind) const;

  const PhaseSwitchConfig& config() const { return config_; }

 private:
  PhaseSwitchConfig config_;
};

}  // namespace mmptcp
