#include "tcp/dctcp.h"

#include <algorithm>

#include "util/check.h"

namespace mmptcp {

DctcpReaction::DctcpReaction(DctcpConfig config)
    : config_(config), alpha_(config.initial_alpha) {
  require(config.gain > 0.0 && config.gain <= 1.0,
          "DCTCP gain must be in (0, 1]");
  require(config.initial_alpha >= 0.0 && config.initial_alpha <= 1.0,
          "DCTCP initial alpha must be in [0, 1]");
  require(config.min_cwnd_segments >= 1,
          "DCTCP window floor must be at least one segment");
}

std::optional<WindowCut> DctcpReaction::on_ecn_feedback(
    std::uint64_t acked, bool ece, std::uint64_t snd_una,
    std::uint64_t snd_nxt, std::uint64_t cwnd, std::uint32_t mss) {
  acked_bytes_ += acked;
  if (ece) marked_bytes_ += acked;
  if (snd_una < window_end_) return std::nullopt;
  // One observation window (~1 RTT of data) fully acknowledged: fold the
  // marked fraction into alpha, react once, start the next window.
  std::optional<WindowCut> cut;
  if (acked_bytes_ > 0) {
    const double fraction = static_cast<double>(marked_bytes_) /
                            static_cast<double>(acked_bytes_);
    alpha_ = (1.0 - config_.gain) * alpha_ + config_.gain * fraction;
    if (marked_bytes_ > 0) {
      const auto reduced = static_cast<std::uint64_t>(
          static_cast<double>(cwnd) * (1.0 - alpha_ / 2.0));
      const std::uint64_t depth = cwnd > reduced ? cwnd - reduced : 0;
      if (depth >= std::uint64_t(config_.min_cut_segments) * mss) {
        const std::uint64_t floor =
            std::uint64_t(config_.min_cwnd_segments) * mss;
        cut = WindowCut{std::max(reduced, floor), std::max(reduced, floor)};
        ++reductions_;
      }
    }
  }
  acked_bytes_ = 0;
  marked_bytes_ = 0;
  window_end_ = snd_nxt;
  return cut;
}

DctcpCc::DctcpCc(std::uint32_t mss, std::uint32_t initial_cwnd_segments,
                 DctcpConfig config)
    : CongestionControl(mss, initial_cwnd_segments,
                        std::make_unique<RenoIncrease>(),
                        std::make_unique<DctcpReaction>(config)) {}

}  // namespace mmptcp
