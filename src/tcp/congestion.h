#pragma once

// Congestion control.
//
// The socket owns the NewReno recovery *mechanics* (dup-ACK counting,
// recover point, partial ACKs); the CongestionControl object owns the
// *window arithmetic*.  MPTCP's LIA plugs in by overriding the congestion
// avoidance increase only — slow start and loss responses are per-subflow,
// exactly as RFC 6356 specifies.

#include <cstdint>

#include "sim/time.h"

namespace mmptcp {

/// Window arithmetic for one (sub)flow.  All quantities in bytes.
class CongestionControl {
 public:
  CongestionControl(std::uint32_t mss, std::uint32_t initial_cwnd_segments);
  virtual ~CongestionControl() = default;

  std::uint64_t cwnd() const { return cwnd_; }
  std::uint64_t ssthresh() const { return ssthresh_; }
  std::uint32_t mss() const { return mss_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

  /// New cumulative ACK of `acked` bytes in normal (non-recovery) state.
  void on_ack(std::uint64_t acked);

  /// Entering fast recovery: ssthresh = max(flight/2, 2*MSS),
  /// cwnd = ssthresh + 3*MSS (RFC 6582).
  void enter_recovery(std::uint64_t flight);

  /// A further dup-ACK while in recovery inflates the window by one MSS.
  void dupack_inflate() { cwnd_ += mss_; }

  /// Partial ACK in recovery: deflate by the amount acked, add back one
  /// MSS, never below one MSS (RFC 6582 step 5).
  void partial_ack(std::uint64_t acked);

  /// Full ACK ends recovery: cwnd collapses to ssthresh.
  void exit_recovery() { cwnd_ = ssthresh_; }

  /// Retransmission timeout: ssthresh = max(flight/2, 2*MSS), cwnd = 1 MSS.
  void on_rto(std::uint64_t flight);

  /// RR-TCP style undo: a DSACK proved the loss inference wrong, so the
  /// window reduction is reverted to the saved pre-recovery state.
  void undo_after_spurious(std::uint64_t prior_cwnd,
                           std::uint64_t prior_ssthresh);

  /// True when the socket should set ECT on outgoing data segments and
  /// feed ECE echoes back through on_ecn_feedback (DCTCP overrides).
  virtual bool ecn_capable() const { return false; }

  /// ECN feedback from a cumulative ACK of `acked` new bytes; `ece` is
  /// the receiver's CE echo.  `snd_una`/`snd_nxt` delimit the sender's
  /// stream position so implementations can tell observation windows
  /// (RTTs) apart.  Default: ignore.
  virtual void on_ecn_feedback(std::uint64_t /*acked*/, bool /*ece*/,
                               std::uint64_t /*snd_una*/,
                               std::uint64_t /*snd_nxt*/) {}

 protected:
  /// Congestion-avoidance increase for `acked` bytes (NewReno default:
  /// one MSS per window, i.e. cwnd += MSS*acked/cwnd per ACK).
  virtual void congestion_avoidance_increase(std::uint64_t acked);

  void set_cwnd(std::uint64_t cwnd) { cwnd_ = cwnd; }
  void set_ssthresh(std::uint64_t ssthresh) { ssthresh_ = ssthresh; }

 private:
  std::uint32_t mss_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
};

/// Plain NewReno (used by single-path TCP and the packet-scatter phase).
class NewRenoCc final : public CongestionControl {
 public:
  using CongestionControl::CongestionControl;
};

}  // namespace mmptcp
