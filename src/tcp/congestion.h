#pragma once

// Congestion control, split into orthogonal composable policies.
//
// The socket owns the NewReno recovery *mechanics* (dup-ACK counting,
// recover point, partial ACKs); the CongestionControl object owns the
// *window arithmetic* and delegates the two axes that actually vary
// between transports to pluggable policies:
//
//   * WindowIncreasePolicy — how the window grows in congestion
//     avoidance.  RenoIncrease (one MSS per RTT) and LiaIncrease
//     (RFC 6356 coupling, mptcp/lia.h) ship today.  Slow start is
//     identical everywhere (RFC 5681 ABC) and stays in the base.
//   * EcnReactionPolicy — whether the flow is ECN-capable and how it
//     reacts to CE echoes, plus the multiplicative-decrease target on
//     loss.  NoEcnReaction (loss halving, ECN ignored) and
//     DctcpReaction (alpha EWMA, proportional cut, tcp/dctcp.h) ship
//     today.
//
// Any increase policy pairs with any reaction policy, so MPTCP's
// coupled increase can run DCTCP's proportional ECN response per
// subflow — the combination the ECN-blind inheritance lattice that
// preceded this layer could not express.

#include <cstdint>
#include <memory>
#include <optional>

#include "sim/time.h"

namespace mmptcp {

/// How the window grows on a new-data ACK in congestion avoidance.
class WindowIncreasePolicy {
 public:
  virtual ~WindowIncreasePolicy() = default;

  /// cwnd increment in bytes for `acked` newly acknowledged bytes at the
  /// current window.  The caller grows the window by at least one byte
  /// regardless, so policies may round down to zero freely.
  virtual std::uint64_t ca_increment(std::uint64_t acked, std::uint64_t cwnd,
                                     std::uint32_t mss) const = 0;
};

/// NewReno congestion avoidance: approximately one MSS per RTT.
class RenoIncrease final : public WindowIncreasePolicy {
 public:
  std::uint64_t ca_increment(std::uint64_t acked, std::uint64_t cwnd,
                             std::uint32_t mss) const override;
};

/// A window cut requested by an ECN reaction (applied to cwnd AND
/// ssthresh, mirroring RFC 8257's reduction).
struct WindowCut {
  std::uint64_t cwnd = 0;
  std::uint64_t ssthresh = 0;
};

/// ECN capability + CE-echo reaction + loss-decrease target.
class EcnReactionPolicy {
 public:
  virtual ~EcnReactionPolicy() = default;

  /// True when the socket should set ECT on outgoing data segments and
  /// feed ECE echoes back through on_ecn_feedback.
  virtual bool ecn_capable() const { return false; }

  /// Multiplicative-decrease target on a loss event (fast retransmit or
  /// RTO): classic halving, never below two segments.  RFC 8257 keeps
  /// this for DCTCP too, so both shipping policies share the default.
  virtual std::uint64_t loss_ssthresh(std::uint64_t flight,
                                      std::uint32_t mss) const;

  /// ECN feedback from a cumulative ACK of `acked` new bytes; `ece` is
  /// the receiver's CE echo.  `snd_una`/`snd_nxt` delimit the sender's
  /// stream position so implementations can tell observation windows
  /// (RTTs) apart.  Returns the window cut to apply, if any.
  virtual std::optional<WindowCut> on_ecn_feedback(
      std::uint64_t acked, bool ece, std::uint64_t snd_una,
      std::uint64_t snd_nxt, std::uint64_t cwnd, std::uint32_t mss);

  /// The policy's congestion estimate in [0, 1] when it maintains one
  /// (DCTCP's alpha); nullopt otherwise.  Observability only — the
  /// flight recorder's cwnd channel samples it alongside the window.
  virtual std::optional<double> ecn_alpha() const { return std::nullopt; }
};

/// Loss halving only; CE echoes are ignored and ECT is never set.
class NoEcnReaction final : public EcnReactionPolicy {};

/// Window arithmetic for one (sub)flow.  All quantities in bytes.
/// Concrete: behaviour is selected by the two injected policies, not by
/// subclassing (the convenience leaf types below only pick policies).
class CongestionControl {
 public:
  CongestionControl(std::uint32_t mss, std::uint32_t initial_cwnd_segments,
                    std::unique_ptr<WindowIncreasePolicy> increase,
                    std::unique_ptr<EcnReactionPolicy> reaction);
  virtual ~CongestionControl() = default;

  std::uint64_t cwnd() const { return cwnd_; }
  std::uint64_t ssthresh() const { return ssthresh_; }
  std::uint32_t mss() const { return mss_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

  /// New cumulative ACK of `acked` bytes in normal (non-recovery) state.
  void on_ack(std::uint64_t acked);

  /// Entering fast recovery: ssthresh = reaction's loss target,
  /// cwnd = ssthresh + 3*MSS (RFC 6582).
  void enter_recovery(std::uint64_t flight);

  /// A further dup-ACK while in recovery inflates the window by one MSS.
  void dupack_inflate() { cwnd_ += mss_; }

  /// Partial ACK in recovery: deflate by the amount acked, add back one
  /// MSS, never below one MSS (RFC 6582 step 5).
  void partial_ack(std::uint64_t acked);

  /// Full ACK ends recovery: cwnd collapses to ssthresh.
  void exit_recovery() { cwnd_ = ssthresh_; }

  /// Retransmission timeout: ssthresh = loss target, cwnd = 1 MSS.
  void on_rto(std::uint64_t flight);

  /// RR-TCP style undo: a DSACK proved the loss inference wrong, so the
  /// window reduction is reverted to the saved pre-recovery state.
  void undo_after_spurious(std::uint64_t prior_cwnd,
                           std::uint64_t prior_ssthresh);

  /// True when the socket should set ECT on outgoing data segments and
  /// feed ECE echoes back through on_ecn_feedback.
  bool ecn_capable() const { return reaction_->ecn_capable(); }

  /// ECN feedback from a cumulative ACK (delegated to the reaction
  /// policy; outside loss recovery only — the socket guarantees that).
  void on_ecn_feedback(std::uint64_t acked, bool ece, std::uint64_t snd_una,
                       std::uint64_t snd_nxt);

  /// The reaction policy's congestion estimate (DCTCP alpha), if any.
  std::optional<double> ecn_alpha() const { return reaction_->ecn_alpha(); }

  /// The installed policies (introspection: stats, tests).
  const WindowIncreasePolicy& increase_policy() const { return *increase_; }
  const EcnReactionPolicy& reaction_policy() const { return *reaction_; }

 private:
  std::uint32_t mss_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
  std::unique_ptr<WindowIncreasePolicy> increase_;
  std::unique_ptr<EcnReactionPolicy> reaction_;
};

/// Plain NewReno (used by single-path TCP and the packet-scatter phase):
/// Reno increase, loss halving, ECN-blind.
class NewRenoCc final : public CongestionControl {
 public:
  NewRenoCc(std::uint32_t mss, std::uint32_t initial_cwnd_segments);
};

}  // namespace mmptcp
