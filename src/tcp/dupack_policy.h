#pragma once

// Duplicate-ACK threshold policies — the paper's two proposals for making
// the packet-scatter phase robust to reordering (§2 "PS Phase"):
//
//  * kStatic          — classic TCP: three dup-ACKs (used by the baselines).
//  * kTopologyAware   — proposal (1): derive the threshold from the number
//                       of equal-cost paths between the endpoints, computed
//                       from the FatTree addressing scheme.
//  * kAdaptive        — proposal (2), RR-TCP style: start at 3 and raise
//                       the threshold whenever a retransmission is proven
//                       spurious by a DSACK-style duplicate notification;
//                       decay multiplicatively on RTO so the threshold can
//                       recover if paths become genuinely lossy.

#include <cstdint>

namespace mmptcp {

enum class DupAckPolicyKind : std::uint8_t {
  kStatic,
  kTopologyAware,
  kAdaptive,
};

/// Configuration for the dup-ACK threshold policy of one (sub)flow.
struct DupAckConfig {
  DupAckPolicyKind kind = DupAckPolicyKind::kStatic;
  std::uint32_t static_threshold = 3;
  /// kTopologyAware: threshold = clamp(ceil(beta * path_count)).
  double beta = 1.0;
  /// kAdaptive: additive increase per detected spurious retransmission.
  std::uint32_t adaptive_step = 2;
  std::uint32_t min_threshold = 3;
  std::uint32_t max_threshold = 90;
};

/// Stateful threshold tracker owned by each sending (sub)flow.
class DupAckPolicy {
 public:
  /// `path_count` is the equal-cost path count to the peer (only used by
  /// kTopologyAware; pass 0 when unknown, which falls back to the minimum).
  DupAckPolicy(DupAckConfig config, std::uint32_t path_count);

  std::uint32_t threshold() const { return threshold_; }

  /// A retransmission was proven spurious (DSACK-equivalent arrived).
  void on_spurious_retransmit();

  /// A retransmission timeout fired (adaptive policy decays).
  void on_rto();

 private:
  std::uint32_t clamp(std::uint64_t v) const;

  DupAckConfig config_;
  std::uint32_t threshold_;
};

}  // namespace mmptcp
