#pragma once

// Full-featured simulated TCP socket (NewReno), designed for subclassing:
// MPTCP subflows and MMPTCP's packet-scatter flow override the protected
// hooks to attach data-sequence mappings, randomise source ports, and
// forward delivery events to their owning connection.
//
// Model notes (documented divergences from a kernel TCP):
//  * Sequence numbers are 64-bit and start at zero; no wraparound handling.
//  * The handshake is SYN / SYN-ACK / ACK; SYNs and FINs do not consume
//    payload sequence space, but the FIN occupies one unit at the end of
//    the stream so its delivery is acknowledged like data.
//  * Demultiplexing is by connection token (MPTCP-style), so per-packet
//    source-port randomisation — the heart of packet scatter — is safe.
//  * The receiver ACKs every data segment (no delayed ACKs by default) and
//    flags fully-duplicate segments with a DSACK-equivalent bit, which the
//    sender uses to detect spurious retransmissions (RR-TCP, [9] in the
//    paper).
//  * Data flows client -> server; the server side generates only ACKs.

#include <cstdint>
#include <map>
#include <optional>

#include "net/host.h"
#include "stats/metrics.h"
#include "tcp/congestion.h"
#include "tcp/dupack_policy.h"
#include "tcp/rtt_estimator.h"
#include "util/interval_set.h"

namespace mmptcp {

class TraceRecorder;

/// Which side of the connection this socket is.
enum class SocketRole : std::uint8_t { kClient, kServer };

/// Congestion-related events surfaced to subclasses (MMPTCP's
/// congestion-event phase switch listens to these).
enum class CongestionEventKind : std::uint8_t {
  kFastRetransmit,
  kRto,
  kSynTimeout,
};

/// A data-sequence mapping: `len` connection-level bytes at `data_seq`.
struct Mapping {
  std::uint64_t data_seq = 0;
  std::uint32_t len = 0;
  bool last = false;  ///< carries the connection-level DATA_FIN
};

/// Socket tuning knobs (defaults mirror the ns-3 models of the paper's era).
struct TcpConfig {
  std::uint32_t mss = 1400;                ///< payload bytes per segment
  /// ns-3-era default.  Small initial windows are load-bearing for the
  /// paper's Figure 1(a): a 70 KB flow split over 8 subflows leaves each
  /// subflow's window so small that a single loss cannot gather three
  /// dup-ACKs and must wait out an RTO.
  std::uint32_t initial_cwnd_segments = 2;
  RtoConfig rto{};
  Time conn_timeout = Time::seconds(3);    ///< SYN retransmission base
  std::uint32_t max_syn_retries = 8;
  std::uint32_t max_data_retries = 16;
  DupAckConfig dupack{};
  /// Cap on unacknowledged bytes in flight — the socket-buffer /
  /// receive-window stand-in.  Far above the fabric's bandwidth-delay
  /// product, so it never limits throughput; it only stops a loss-free
  /// path from inflating cwnd (and the host queue) without bound.
  std::uint64_t send_window_limit = 256 * 1024;
  /// RR-TCP style undo: when a DSACK proves the last fast retransmission
  /// spurious (reordering, not loss), revert the window reduction.
  bool undo_on_spurious = true;
};

/// Simulated TCP endpoint; one instance per side per (sub)flow.
class TcpSocket : public Endpoint {
 public:
  /// `peer_port`/`local_port`: the nominal 4-tuple (subclasses may
  /// randomise the source port per packet).  `path_count` feeds the
  /// topology-aware dup-ACK policy (0 = unknown).
  TcpSocket(Simulation& sim, Metrics& metrics, Host& local, SocketRole role,
            Addr peer, std::uint16_t local_port, std::uint16_t peer_port,
            std::uint32_t token, std::uint32_t flow_id, TcpConfig config,
            std::unique_ptr<CongestionControl> cc,
            std::uint32_t path_count = 0);
  ~TcpSocket() override;

  /// Client: registers demux, sends SYN, then streams `bytes` payload
  /// (pass kUnboundedBytes for a long background flow).
  void connect_and_send(std::uint64_t bytes);
  static constexpr std::uint64_t kUnboundedBytes = std::uint64_t(1) << 62;

  /// Server: registers demux and processes the SYN that opened the flow.
  void accept(const Packet& syn);

  void handle_packet(const Packet& pkt) override;

  // ---- introspection (tests, stats, schedulers) ----
  bool established() const { return established_; }
  bool sender_drained() const { return sender_drained_; }
  bool receiver_complete() const { return receiver_complete_; }
  bool dead() const { return dead_; }
  std::uint64_t snd_una() const { return snd_una_; }
  std::uint64_t snd_nxt() const { return snd_nxt_; }
  std::uint64_t high_water() const { return high_water_; }
  std::uint64_t rcv_nxt() const { return rcv_nxt_; }
  std::uint64_t cwnd() const { return cc_->cwnd(); }
  std::uint64_t bytes_in_flight() const;
  std::uint32_t dup_ack_count() const { return dup_acks_; }
  std::uint32_t dupack_threshold() const { return dupack_policy_.threshold(); }
  Time srtt() const { return rtt_.has_sample() ? rtt_.srtt() : Time::zero(); }
  const CongestionControl& congestion() const { return *cc_; }
  std::uint32_t flow_id() const { return flow_id_; }
  std::uint32_t token() const { return token_; }
  SocketRole role() const { return role_; }
  Host& local_host() { return local_; }
  std::uint32_t local_rto_count() const { return rto_fires_; }
  std::uint32_t local_fast_retransmits() const { return fast_rtx_; }
  std::uint32_t local_spurious_retransmits() const { return spurious_; }

  /// Stops accepting new mappings forever (the stream may still drain);
  /// used to deactivate MMPTCP's PS flow after the phase switch.
  void freeze_stream();
  bool stream_frozen() const { return stream_frozen_; }

  /// Subclasses/connections call this when new data may be available.
  void poke() { try_send(); }

 protected:
  // ---- subclass hooks -------------------------------------------------
  /// Next chunk of stream data to transmit (default: the socket's own
  /// linear stream set by connect_and_send).  Returning nullopt pauses.
  virtual std::optional<Mapping> next_mapping(std::uint32_t max_len);

  /// Last chance to edit an outgoing data segment (DSS flags, PS source
  /// port randomisation...).
  virtual void decorate_data(Packet& pkt);

  /// Last chance to edit an outgoing ACK (attach connection-level
  /// data_ack).
  virtual void decorate_ack(Packet& pkt);

  /// Sender side: every arriving ACK, before normal processing.
  virtual void on_peer_ack(const Packet& pkt) { (void)pkt; }

  /// Receiver side: every arriving data segment (duplicates included);
  /// MPTCP forwards these to connection-level reassembly.
  virtual void on_data_segment(const Packet& pkt) { (void)pkt; }

  /// Receiver side: `newly` contiguous payload bytes became in-order.
  virtual void deliver_in_order(std::uint64_t newly);

  /// Receiver side: a head-of-line blocking episode ended — out-of-order
  /// bytes were held for `wait` before the hole filled.  The default
  /// reports receiver reorder wait to metrics; subflows override to a
  /// no-op (reassembly happens at the connection level).
  virtual void on_reorder_release(Time wait);

  /// Receiver side: FIN delivered, whole stream in order.
  virtual void stream_complete();

  /// Both sides: handshake completed.
  virtual void on_established() {}

  /// Sender side: congestion event (fast retransmit / RTO / SYN timeout).
  virtual void on_congestion_event(CongestionEventKind kind) { (void)kind; }

  /// Sender side: all mapped data (and FIN if any) acknowledged and no
  /// further data will ever be mapped (stream ended or frozen).
  virtual void on_sender_drained() {}

  /// Sender side: first data segment handed to the NIC.  The default
  /// counts this (sub)flow as "used" in the flow record.
  virtual void on_first_data_sent();

  Simulation& sim() { return sim_; }
  Metrics& metrics() { return metrics_; }
  const TcpConfig& config() const { return config_; }
  CongestionControl& cc() { return *cc_; }
  std::uint16_t local_port() const { return local_port_; }
  std::uint16_t peer_port() const { return peer_port_; }
  Addr peer() const { return peer_; }
  bool fin_enabled() const { return fin_enabled_; }
  /// Subflows that must not send a FIN (connection-level DATA_FIN is used)
  /// call this once before connect.
  void disable_fin() { fin_enabled_ = false; }
  /// Sent-but-live segment boundaries with their data-sequence mappings.
  const std::map<std::uint64_t, Mapping>& mappings() const {
    return mappings_;
  }
  /// Subflows call this before connecting: demultiplexing belongs to the
  /// owning connection, which already registered the shared token.
  void disable_demux_registration() { demux_registration_ = false; }

  /// Subflows tag their trace lines with the subflow index (the default
  /// -1 renders a single-path socket).
  void set_trace_subflow_id(std::uint8_t id) { trace_sf_ = id; }

 private:
  // ---- sender ----
  void try_send();
  void send_segment(const Mapping& mapping, std::uint64_t seq, bool rtx);
  void send_syn();
  void send_syn_ack();
  void send_pure_ack_for_handshake();
  void send_fin();
  void process_ack(const Packet& pkt);
  void enter_fast_retransmit();
  void retransmit_one(std::uint64_t seq);
  void maybe_sender_drained();
  // ---- receiver ----
  void process_data(const Packet& pkt);
  void send_ack_reply(const Packet& cause, bool dsack);
  // ---- timers ----
  Time current_rto() const;
  void arm_rto_if_needed();
  void restart_rto();
  void cancel_rto();
  void on_rto_timer(std::uint64_t generation);
  void handle_syn_timeout();
  void handle_data_timeout();
  void give_up();
  // ---- tracing ----
  /// Emits one cwnd-channel line (call only when trace_cwnd_ is set).
  void trace_cwnd_point(const char* event);

  Simulation& sim_;
  Metrics& metrics_;
  Host& local_;
  SocketRole role_;
  Addr peer_;
  std::uint16_t local_port_;
  std::uint16_t peer_port_;
  std::uint32_t token_;
  std::uint32_t flow_id_;
  TcpConfig config_;
  std::unique_ptr<CongestionControl> cc_;
  DupAckPolicy dupack_policy_;
  RttEstimator rtt_;

  // Flight-recorder channels, cached once at construction (null when the
  // channel is off or this is the ACK-only server side).
  TraceRecorder* trace_cwnd_ = nullptr;
  TraceRecorder* trace_retx_ = nullptr;
  int trace_sf_ = -1;  ///< subflow index in trace lines; -1 = single-path

  // Connection state.
  bool demux_registration_ = true;
  bool registered_ = false;
  bool syn_sent_ = false;
  bool established_ = false;
  bool dead_ = false;  ///< gave up after too many retries
  std::uint32_t syn_retries_ = 0;

  // Sender state (64-bit stream space, no wrap).
  std::uint64_t write_end_ = 0;     ///< own-stream size (default mapping)
  bool own_stream_ = false;         ///< connect_and_send() was used
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t high_water_ = 0;    ///< max(seq+len) ever sent
  std::uint64_t recover_ = 0;       ///< NewReno recovery point
  bool in_recovery_ = false;
  std::uint32_t dup_acks_ = 0;
  // Spurious-recovery undo state (RR-TCP): window snapshot at the last
  // fast retransmit, and the sequence whose DSACK would prove it wrong.
  bool undo_pending_ = false;
  std::uint64_t undo_seq_ = 0;
  std::uint64_t undo_cwnd_ = 0;
  std::uint64_t undo_ssthresh_ = 0;
  std::map<std::uint64_t, Mapping> mappings_;  ///< seq -> mapping
  bool fin_enabled_ = true;
  bool stream_ended_ = false;       ///< last mapping handed out
  std::uint64_t fin_seq_ = 0;       ///< sequence the FIN occupies
  bool fin_ever_sent_ = false;
  bool stream_frozen_ = false;
  bool sender_drained_ = false;
  bool first_data_sent_ = false;
  std::uint32_t consecutive_rtos_ = 0;
  std::uint32_t rto_fires_ = 0;
  std::uint32_t fast_rtx_ = 0;
  std::uint32_t spurious_ = 0;

  // Karn-compliant RTT timing of one segment at a time.
  bool timing_valid_ = false;
  std::uint64_t timed_end_ = 0;
  Time timed_sent_at_;

  // Receiver state.
  IntervalSet rx_ranges_;
  std::uint64_t rcv_nxt_ = 0;
  std::uint64_t delivered_payload_ = 0;
  bool fin_received_ = false;
  std::uint64_t fin_seq_rx_ = 0;
  bool receiver_complete_ = false;
  // Head-of-line blocking episode (flow-time attribution).
  bool ooo_pending_ = false;
  Time ooo_since_;

  // RTO timer (generation-checked lazy cancellation).
  EventId rto_event_{};
  std::uint64_t rto_generation_ = 0;
  bool rto_armed_ = false;
  Time rto_armed_at_;  ///< start of the current timer interval (stall base)
};

}  // namespace mmptcp
