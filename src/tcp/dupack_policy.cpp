#include "tcp/dupack_policy.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mmptcp {

DupAckPolicy::DupAckPolicy(DupAckConfig config, std::uint32_t path_count)
    : config_(config) {
  check(config_.min_threshold >= 1, "min dup-ACK threshold must be >= 1");
  check(config_.max_threshold >= config_.min_threshold,
        "max dup-ACK threshold below min");
  switch (config_.kind) {
    case DupAckPolicyKind::kStatic:
      threshold_ = clamp(config_.static_threshold);
      break;
    case DupAckPolicyKind::kTopologyAware:
      threshold_ = clamp(static_cast<std::uint64_t>(
          std::ceil(config_.beta * static_cast<double>(path_count))));
      break;
    case DupAckPolicyKind::kAdaptive:
      threshold_ = config_.min_threshold;
      break;
  }
}

std::uint32_t DupAckPolicy::clamp(std::uint64_t v) const {
  return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
      v, config_.min_threshold, config_.max_threshold));
}

void DupAckPolicy::on_spurious_retransmit() {
  if (config_.kind != DupAckPolicyKind::kAdaptive) return;
  threshold_ = clamp(std::uint64_t(threshold_) + config_.adaptive_step);
}

void DupAckPolicy::on_rto() {
  if (config_.kind != DupAckPolicyKind::kAdaptive) return;
  threshold_ = clamp(threshold_ / 2);
}

}  // namespace mmptcp
