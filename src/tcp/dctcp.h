#pragma once

// DCTCP congestion control (Alizadeh et al., SIGCOMM 2010 / RFC 8257).
//
// The switch marks CE on ECT packets above a threshold K (EcnRedQueue);
// the receiver echoes each segment's CE as ECE on its ACK (this
// simulator ACKs every segment, which is exactly the per-packet echo
// DCTCP wants); the sender maintains an EWMA `alpha` of the marked
// fraction per observation window (~1 RTT of data) and cuts cwnd
// *proportionally* to it — a window with few marks costs a small
// reduction instead of NewReno's half.  Loss handling keeps the NewReno
// mechanics unchanged, as RFC 8257 prescribes.
//
// The ECN reaction is a standalone EcnReactionPolicy, so it composes
// with any window-increase policy: DctcpCc below pairs it with Reno
// (single-path DCTCP); MptcpConnection::make_cc pairs a fresh
// DctcpReaction per subflow with LIA coupling (coupled ECN-aware MPTCP,
// one independent alpha per subflow).

#include "tcp/congestion.h"

namespace mmptcp {

/// DCTCP knobs (defaults from the paper / RFC 8257).
struct DctcpConfig {
  double gain = 1.0 / 16.0;    ///< alpha EWMA gain g
  double initial_alpha = 1.0;  ///< conservative start (RFC 8257 §4.2)
  /// Lower bound on the window after a proportional cut, in segments.
  /// RFC 8257's two-segment floor is a *single-path* safety margin: an
  /// N-subflow connection flooring every subflow at 2 MSS holds 2N MSS
  /// at a shared bottleneck — far more than the single DCTCP flow it
  /// competes with.  MptcpConnection::make_cc therefore floors subflows
  /// at one segment (aggregate floor ~N MSS, do-no-harm-ish) while
  /// single-path DctcpCc keeps the RFC default.
  std::uint32_t min_cwnd_segments = 2;
  /// Cuts shallower than this many segments are skipped outright: the
  /// window is left alone (and slow start, if active, continues) while
  /// alpha keeps learning.  Windows move in segment quanta, so a
  /// sub-segment reduction cannot change what the flow may send — but
  /// applying it would still collapse ssthresh and end slow start, a
  /// large response to a cosmetic cut.  0 = RFC 8257 behaviour (any
  /// marked window reduces), the default for single-path DCTCP;
  /// MMPTCP's scatter flow sets 1 so a fresh short flow is not knocked
  /// out of slow start by a near-zero alpha.
  std::uint32_t min_cut_segments = 0;
};

/// Per-flow DCTCP state machine: alpha EWMA over per-window marked
/// fractions, one proportional cut per observation window.
class DctcpReaction final : public EcnReactionPolicy {
 public:
  explicit DctcpReaction(DctcpConfig config = DctcpConfig{});

  bool ecn_capable() const override { return true; }
  std::optional<WindowCut> on_ecn_feedback(std::uint64_t acked, bool ece,
                                           std::uint64_t snd_una,
                                           std::uint64_t snd_nxt,
                                           std::uint64_t cwnd,
                                           std::uint32_t mss) override;

  double alpha() const { return alpha_; }
  std::optional<double> ecn_alpha() const override { return alpha_; }
  /// Proportional window reductions performed (one max per window).
  std::uint64_t ecn_reductions() const { return reductions_; }

 private:
  DctcpConfig config_;
  double alpha_;
  std::uint64_t window_end_ = 0;   ///< snd_nxt at the last alpha update
  std::uint64_t acked_bytes_ = 0;  ///< bytes acked this window
  std::uint64_t marked_bytes_ = 0; ///< of which ECE-marked
  std::uint64_t reductions_ = 0;
};

/// Single-path DCTCP: Reno increase + proportional ECN response.
class DctcpCc final : public CongestionControl {
 public:
  DctcpCc(std::uint32_t mss, std::uint32_t initial_cwnd_segments,
          DctcpConfig config = DctcpConfig{});

  double alpha() const { return dctcp().alpha(); }
  std::uint64_t ecn_reductions() const { return dctcp().ecn_reductions(); }

 private:
  const DctcpReaction& dctcp() const {
    return static_cast<const DctcpReaction&>(reaction_policy());
  }
};

}  // namespace mmptcp
