#pragma once

// DCTCP congestion control (Alizadeh et al., SIGCOMM 2010 / RFC 8257).
//
// The switch marks CE on ECT packets above an instantaneous threshold K
// (EcnRedQueue); the receiver echoes each segment's CE as ECE on its ACK
// (this simulator ACKs every segment, which is exactly the per-packet
// echo DCTCP wants); the sender maintains an EWMA `alpha` of the marked
// fraction per observation window (~1 RTT of data) and cuts cwnd
// *proportionally* to it — a window with few marks costs a small
// reduction instead of NewReno's half.  Loss handling is inherited from
// the NewReno mechanics unchanged, as RFC 8257 prescribes.

#include "tcp/congestion.h"

namespace mmptcp {

/// DCTCP knobs (defaults from the paper / RFC 8257).
struct DctcpConfig {
  double gain = 1.0 / 16.0;    ///< alpha EWMA gain g
  double initial_alpha = 1.0;  ///< conservative start (RFC 8257 §4.2)
};

/// DCTCP window arithmetic: NewReno plus proportional ECN response.
class DctcpCc final : public CongestionControl {
 public:
  DctcpCc(std::uint32_t mss, std::uint32_t initial_cwnd_segments,
          DctcpConfig config = DctcpConfig{});

  bool ecn_capable() const override { return true; }
  void on_ecn_feedback(std::uint64_t acked, bool ece, std::uint64_t snd_una,
                       std::uint64_t snd_nxt) override;

  double alpha() const { return alpha_; }
  /// Proportional window reductions performed (one max per window).
  std::uint64_t ecn_reductions() const { return reductions_; }

 private:
  DctcpConfig config_;
  double alpha_;
  std::uint64_t window_end_ = 0;   ///< snd_nxt at the last alpha update
  std::uint64_t acked_bytes_ = 0;  ///< bytes acked this window
  std::uint64_t marked_bytes_ = 0; ///< of which ECE-marked
  std::uint64_t reductions_ = 0;
};

}  // namespace mmptcp
