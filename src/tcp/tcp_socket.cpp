#include "tcp/tcp_socket.h"

#include <algorithm>
#include <iterator>

#include "trace/recorder.h"

namespace mmptcp {

TcpSocket::TcpSocket(Simulation& sim, Metrics& metrics, Host& local,
                     SocketRole role, Addr peer, std::uint16_t local_port,
                     std::uint16_t peer_port, std::uint32_t token,
                     std::uint32_t flow_id, TcpConfig config,
                     std::unique_ptr<CongestionControl> cc,
                     std::uint32_t path_count)
    : sim_(sim), metrics_(metrics), local_(local), role_(role), peer_(peer),
      local_port_(local_port), peer_port_(peer_port), token_(token),
      flow_id_(flow_id), config_(config), cc_(std::move(cc)),
      dupack_policy_(config.dupack, path_count), rtt_(config.rto) {
  check(cc_ != nullptr, "socket needs a congestion controller");
  if (role_ == SocketRole::kClient) {
    // Only the data sender has a window worth recording; the server side
    // never touches its controller.
    trace_cwnd_ = sim_.trace_for(kTraceCwnd);
    trace_retx_ = sim_.trace_for(kTraceRetx);
  }
}

void TcpSocket::trace_cwnd_point(const char* event) {
  trace_cwnd_->cwnd_sample(sim_.now(), flow_id_, trace_sf_, event, cc_->cwnd(),
                           cc_->ssthresh(), cc_->ecn_alpha(), srtt());
}

TcpSocket::~TcpSocket() {
  cancel_rto();
  if (registered_) local_.unregister_token(token_);
}

std::uint64_t TcpSocket::bytes_in_flight() const {
  return high_water_ - snd_una_;
}

void TcpSocket::connect_and_send(std::uint64_t bytes) {
  check(role_ == SocketRole::kClient, "only clients connect");
  check(!syn_sent_, "connect_and_send called twice");
  own_stream_ = true;
  write_end_ = bytes;
  if (bytes == 0) {
    stream_ended_ = true;
    fin_seq_ = 0;
  }
  if (demux_registration_) {
    local_.register_token(token_, this);
    registered_ = true;
  }
  send_syn();
}

void TcpSocket::accept(const Packet& syn) {
  check(role_ == SocketRole::kServer, "only servers accept");
  check(syn.is_syn(), "accept needs a SYN");
  local_.register_token(token_, this);
  registered_ = true;
  handle_packet(syn);
}

void TcpSocket::freeze_stream() {
  stream_frozen_ = true;
  maybe_sender_drained();
}

// ---------------------------------------------------------------------------
// Packet ingress
// ---------------------------------------------------------------------------

void TcpSocket::handle_packet(const Packet& pkt) {
  if (dead_) return;
  if (pkt.is_syn()) {
    if (role_ == SocketRole::kServer) {
      // First or duplicate SYN: (re)send the SYN-ACK.
      if (!established_) {
        established_ = true;
        on_established();
      }
      send_syn_ack();
    } else {
      // SYN-ACK for our SYN.
      if (!established_) {
        established_ = true;
        if (timing_valid_ && syn_retries_ == 0) {
          rtt_.add_sample(sim_.now() - timed_sent_at_);
        }
        timing_valid_ = false;
        cancel_rto();
        metrics_.on_flow_established(flow_id_, sim_.now());
        send_pure_ack_for_handshake();
        on_established();
        if (trace_cwnd_ != nullptr) trace_cwnd_point("established");
        try_send();
        maybe_sender_drained();
      } else {
        send_pure_ack_for_handshake();  // duplicate SYN-ACK
      }
    }
    return;
  }
  if (!established_) {
    // Server side: any non-SYN segment from the peer implies our SYN-ACK
    // arrived.
    established_ = true;
    on_established();
  }
  if (pkt.payload > 0 || pkt.has(pkt_flags::kFin)) {
    process_data(pkt);
  } else {
    process_ack(pkt);
  }
}

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

std::optional<Mapping> TcpSocket::next_mapping(std::uint32_t max_len) {
  if (!own_stream_ || snd_nxt_ >= write_end_) return std::nullopt;
  const std::uint32_t len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(max_len, write_end_ - snd_nxt_));
  return Mapping{snd_nxt_, len, snd_nxt_ + len == write_end_};
}

void TcpSocket::decorate_data(Packet& pkt) { (void)pkt; }
void TcpSocket::decorate_ack(Packet& pkt) { (void)pkt; }

void TcpSocket::on_first_data_sent() {
  metrics_.on_subflow_used(flow_id_);
}

void TcpSocket::deliver_in_order(std::uint64_t newly) {
  metrics_.on_delivered(flow_id_, newly, sim_.now());
}

void TcpSocket::on_reorder_release(Time wait) {
  metrics_.on_reorder_wait(flow_id_, wait);
}

void TcpSocket::stream_complete() {
  metrics_.on_flow_completed(flow_id_, sim_.now());
}

void TcpSocket::try_send() {
  if (dead_ || !established_) return;
  while (true) {
    const std::uint64_t in_flight = snd_nxt_ - snd_una_;
    // FIN position (first transmission or retransmission).
    if (fin_enabled_ && stream_ended_ && snd_nxt_ == fin_seq_) {
      if (in_flight + 1 > cc_->cwnd() && in_flight > 0) break;
      send_fin();
      snd_nxt_ = fin_seq_ + 1;
      high_water_ = std::max(high_water_, snd_nxt_);
      continue;
    }
    if (snd_nxt_ < high_water_) {
      // Retransmission region (after an RTO rolled snd_nxt back).
      const auto it = mappings_.find(snd_nxt_);
      check(it != mappings_.end(), "retransmit point not a segment boundary");
      const Mapping m = it->second;
      if (in_flight + m.len > cc_->cwnd() && in_flight > 0) break;
      send_segment(m, snd_nxt_, /*rtx=*/true);
      snd_nxt_ += m.len;
      continue;
    }
    // New data.
    if (stream_frozen_ || stream_ended_ || dead_) break;
    if (in_flight >= config_.send_window_limit) break;
    if (in_flight + config_.mss > cc_->cwnd() && in_flight > 0) break;
    const auto room = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        config_.mss,
        in_flight == 0 ? config_.mss : cc_->cwnd() - in_flight));
    const auto m = next_mapping(room);
    if (!m.has_value()) break;
    check(m->len > 0 && m->len <= config_.mss, "bad mapping length");
    mappings_.emplace(snd_nxt_, *m);
    if (m->last) {
      stream_ended_ = true;
      fin_seq_ = snd_nxt_ + m->len;
    }
    send_segment(*m, snd_nxt_, /*rtx=*/false);
    snd_nxt_ += m->len;
    high_water_ = std::max(high_water_, snd_nxt_);
  }
  arm_rto_if_needed();
}

void TcpSocket::send_segment(const Mapping& mapping, std::uint64_t seq,
                             bool rtx) {
  Packet p;
  p.src = local_.addr();
  p.dst = peer_;
  p.sport = local_port_;
  p.dport = peer_port_;
  p.token = token_;
  p.flow_id = flow_id_;
  p.seq = seq;
  p.ack = rcv_nxt_;
  p.payload = mapping.len;
  p.data_seq = mapping.data_seq;
  if (mapping.last) p.flags |= pkt_flags::kDataFin;
  if (cc_->ecn_capable()) p.ecn |= ecn_bits::kEct;
  decorate_data(p);
  if (!rtx && !timing_valid_) {
    timing_valid_ = true;
    timed_end_ = seq + mapping.len;
    timed_sent_at_ = sim_.now();
  }
  if (rtx && timing_valid_ && seq < timed_end_) {
    timing_valid_ = false;  // Karn: never time a retransmitted range
  }
  metrics_.on_data_packet_sent(flow_id_);
  if (!first_data_sent_) {
    first_data_sent_ = true;
    on_first_data_sent();
  }
  local_.send(p);
}

void TcpSocket::send_syn() {
  Packet p;
  p.src = local_.addr();
  p.dst = peer_;
  p.sport = local_port_;
  p.dport = peer_port_;
  p.token = token_;
  p.flow_id = flow_id_;
  p.flags = pkt_flags::kSyn;
  decorate_data(p);
  if (!syn_sent_) {
    syn_sent_ = true;
    timing_valid_ = true;
    timed_end_ = 0;
    timed_sent_at_ = sim_.now();
  }
  local_.send(p);
  arm_rto_if_needed();
}

void TcpSocket::send_syn_ack() {
  Packet p;
  p.src = local_.addr();
  p.dst = peer_;
  p.sport = local_port_;
  p.dport = peer_port_;
  p.token = token_;
  p.flow_id = flow_id_;
  p.flags = pkt_flags::kSyn;
  p.ack = rcv_nxt_;
  decorate_ack(p);
  local_.send(p);
}

void TcpSocket::send_pure_ack_for_handshake() {
  Packet p;
  p.src = local_.addr();
  p.dst = peer_;
  p.sport = local_port_;
  p.dport = peer_port_;
  p.token = token_;
  p.flow_id = flow_id_;
  p.ack = 0;
  local_.send(p);
}

void TcpSocket::send_fin() {
  Packet p;
  p.src = local_.addr();
  p.dst = peer_;
  p.sport = local_port_;
  p.dport = peer_port_;
  p.token = token_;
  p.flow_id = flow_id_;
  p.seq = fin_seq_;
  p.ack = rcv_nxt_;
  p.flags = pkt_flags::kFin;
  decorate_data(p);
  fin_ever_sent_ = true;
  local_.send(p);
}

void TcpSocket::process_ack(const Packet& pkt) {
  on_peer_ack(pkt);
  if (pkt.has(pkt_flags::kDsack)) {
    ++spurious_;
    metrics_.on_spurious_retransmit(flow_id_);
    dupack_policy_.on_spurious_retransmit();
    if (config_.undo_on_spurious && undo_pending_ &&
        pkt.dsack_seq == undo_seq_) {
      // The duplicate is our fast-retransmitted segment: the original was
      // merely reordered.  Revert the window reduction (RR-TCP).
      undo_pending_ = false;
      cc_->undo_after_spurious(undo_cwnd_, undo_ssthresh_);
      if (in_recovery_) {
        in_recovery_ = false;
        dup_acks_ = 0;
        metrics_.on_recovery_exit(flow_id_, sim_.now());
      }
      if (trace_cwnd_ != nullptr) trace_cwnd_point("undo");
    }
  }
  const std::uint64_t ack = pkt.ack;
  if (ack > snd_una_) {
    const std::uint64_t acked = ack - snd_una_;
    snd_una_ = ack;
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    consecutive_rtos_ = 0;
    if (timing_valid_ && snd_una_ >= timed_end_) {
      rtt_.add_sample(sim_.now() - timed_sent_at_);
      timing_valid_ = false;
    }
    // Drop mappings that are fully acknowledged.
    while (!mappings_.empty()) {
      const auto it = mappings_.begin();
      if (it->first + it->second.len > snd_una_) break;
      mappings_.erase(it);
    }
    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        in_recovery_ = false;
        dup_acks_ = 0;
        cc_->exit_recovery();
        metrics_.on_recovery_exit(flow_id_, sim_.now());
      } else {
        // Partial ACK: retransmit the next hole immediately (RFC 6582).
        cc_->partial_ack(acked);
        retransmit_one(snd_una_);
        restart_rto();
      }
    } else {
      dup_acks_ = 0;
      // DCTCP-style ECN response (no-op for non-ECN controllers); kept
      // out of loss recovery, which already owns the window there.
      cc_->on_ecn_feedback(acked, pkt.ece(), snd_una_, snd_nxt_);
      cc_->on_ack(acked);
    }
    if (trace_cwnd_ != nullptr) trace_cwnd_point("ack");
    if (bytes_in_flight() > 0) {
      restart_rto();
    } else {
      cancel_rto();
    }
    try_send();
    maybe_sender_drained();
    return;
  }
  if (ack == snd_una_ && high_water_ > snd_una_) {
    ++dup_acks_;
    if (in_recovery_) {
      cc_->dupack_inflate();
      try_send();
    } else if (dup_acks_ >= dupack_policy_.threshold()) {
      enter_fast_retransmit();
    }
  }
}

void TcpSocket::enter_fast_retransmit() {
  in_recovery_ = true;
  recover_ = high_water_;
  undo_pending_ = true;
  undo_seq_ = snd_una_;
  undo_cwnd_ = cc_->cwnd();
  undo_ssthresh_ = cc_->ssthresh();
  cc_->enter_recovery(bytes_in_flight());
  ++fast_rtx_;
  metrics_.on_fast_retransmit(flow_id_);
  metrics_.on_recovery_enter(flow_id_, sim_.now());
  if (trace_retx_ != nullptr) {
    trace_retx_->retx_event(sim_.now(), flow_id_, trace_sf_, "fast_rtx");
  }
  if (trace_cwnd_ != nullptr) trace_cwnd_point("fast_rtx");
  retransmit_one(snd_una_);
  restart_rto();
  on_congestion_event(CongestionEventKind::kFastRetransmit);
  try_send();
}

void TcpSocket::retransmit_one(std::uint64_t seq) {
  if (fin_enabled_ && stream_ended_ && seq == fin_seq_ && fin_ever_sent_) {
    send_fin();
    return;
  }
  const auto it = mappings_.find(seq);
  check(it != mappings_.end(), "retransmission of unknown segment");
  send_segment(it->second, seq, /*rtx=*/true);
}

void TcpSocket::maybe_sender_drained() {
  if (sender_drained_ || !established_) return;
  if (snd_una_ != high_water_) return;
  const bool fin_done =
      !fin_enabled_ || (fin_ever_sent_ && snd_una_ >= fin_seq_ + 1);
  if (stream_frozen_ || (stream_ended_ && fin_done)) {
    sender_drained_ = true;
    cancel_rto();
    on_sender_drained();
  }
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

void TcpSocket::process_data(const Packet& pkt) {
  on_data_segment(pkt);
  std::uint64_t added = 0;
  if (pkt.payload > 0) {
    added += rx_ranges_.insert(pkt.seq, pkt.seq + pkt.payload);
  }
  if (pkt.has(pkt_flags::kFin)) {
    const std::uint64_t fs = pkt.seq + pkt.payload;
    if (!fin_received_) {
      fin_received_ = true;
      fin_seq_rx_ = fs;
    }
    added += rx_ranges_.insert(fs, fs + 1);
  }
  const bool dup = (added == 0);
  const std::uint64_t old_nxt = rcv_nxt_;
  rcv_nxt_ = rx_ranges_.first_missing_after(rcv_nxt_);
  const std::uint64_t ceiling =
      fin_received_ ? fin_seq_rx_ : std::uint64_t(-1);
  const std::uint64_t newly =
      std::min(rcv_nxt_, ceiling) - std::min(old_nxt, ceiling);
  if (newly > 0) {
    delivered_payload_ += newly;
    deliver_in_order(newly);
  }
  // Head-of-line blocking: bytes beyond rcv_nxt_ are held in the reorder
  // buffer until the hole fills; the episode's duration is the receiver
  // reorder wait (packet scatter's main cost).
  const bool blocked = !rx_ranges_.empty() &&
                       std::prev(rx_ranges_.end())->second > rcv_nxt_;
  if (blocked && !ooo_pending_) {
    ooo_pending_ = true;
    ooo_since_ = sim_.now();
  } else if (!blocked && ooo_pending_) {
    ooo_pending_ = false;
    on_reorder_release(sim_.now() - ooo_since_);
  }
  send_ack_reply(pkt, dup);
  if (fin_received_ && rcv_nxt_ >= fin_seq_rx_ + 1 && !receiver_complete_) {
    receiver_complete_ = true;
    stream_complete();
  }
}

void TcpSocket::send_ack_reply(const Packet& cause, bool dsack) {
  Packet a;
  a.src = local_.addr();
  a.dst = cause.src;
  // Echo the (possibly randomised) ports so the reverse path of a sprayed
  // packet is sprayed as well.
  a.sport = cause.dport;
  a.dport = cause.sport;
  a.token = token_;
  a.flow_id = flow_id_;
  a.subflow = cause.subflow;
  a.ack = rcv_nxt_;
  if (dsack) {
    a.flags |= pkt_flags::kDsack;
    a.dsack_seq = cause.seq;
  }
  // Per-segment CE echo: with an ACK for every data segment this is
  // precisely the feedback loop DCTCP wants (RFC 8257 §3.2).
  if (cause.ce()) a.ecn |= ecn_bits::kEce;
  decorate_ack(a);
  local_.send(a);
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

Time TcpSocket::current_rto() const {
  Time base;
  std::uint32_t shifts;
  if (!established_) {
    base = config_.conn_timeout;
    shifts = syn_retries_;
  } else {
    base = rtt_.rto();
    shifts = consecutive_rtos_;
  }
  shifts = std::min<std::uint32_t>(shifts, 16);
  Time rto = base * (std::int64_t(1) << shifts);
  if (rto > config_.rto.max_rto) rto = config_.rto.max_rto;
  return rto;
}

void TcpSocket::arm_rto_if_needed() {
  if (rto_armed_ || dead_) return;
  const bool need = (syn_sent_ && !established_) ||
                    (established_ && bytes_in_flight() > 0);
  if (!need) return;
  rto_armed_ = true;
  rto_armed_at_ = sim_.now();
  const std::uint64_t gen = ++rto_generation_;
  rto_event_ = sim_.scheduler().schedule(
      current_rto(), [this, gen] { on_rto_timer(gen); });
}

void TcpSocket::restart_rto() {
  cancel_rto();
  arm_rto_if_needed();
}

void TcpSocket::cancel_rto() {
  if (!rto_armed_) return;
  sim_.scheduler().cancel(rto_event_);
  ++rto_generation_;
  rto_armed_ = false;
}

void TcpSocket::on_rto_timer(std::uint64_t generation) {
  if (generation != rto_generation_ || dead_) return;
  rto_armed_ = false;
  if (!established_) {
    handle_syn_timeout();
  } else {
    handle_data_timeout();
  }
}

void TcpSocket::handle_syn_timeout() {
  ++syn_retries_;
  if (syn_retries_ > config_.max_syn_retries) {
    give_up();
    return;
  }
  metrics_.on_syn_timeout(flow_id_);
  metrics_.on_rto_stall(flow_id_, rto_armed_at_, sim_.now());
  if (trace_retx_ != nullptr) {
    trace_retx_->retx_event(sim_.now(), flow_id_, trace_sf_, "syn_timeout");
  }
  on_congestion_event(CongestionEventKind::kSynTimeout);
  send_syn();
}

void TcpSocket::handle_data_timeout() {
  if (bytes_in_flight() == 0) return;  // stale timer
  ++rto_fires_;
  ++consecutive_rtos_;
  if (consecutive_rtos_ > config_.max_data_retries) {
    give_up();
    return;
  }
  metrics_.on_rto(flow_id_);
  metrics_.on_rto_stall(flow_id_, rto_armed_at_, sim_.now());
  if (in_recovery_) metrics_.on_recovery_exit(flow_id_, sim_.now());
  dupack_policy_.on_rto();
  cc_->on_rto(bytes_in_flight());
  if (trace_retx_ != nullptr) {
    trace_retx_->retx_event(sim_.now(), flow_id_, trace_sf_, "rto");
  }
  if (trace_cwnd_ != nullptr) trace_cwnd_point("rto");
  in_recovery_ = false;
  undo_pending_ = false;  // a timeout is strong evidence of genuine loss
  dup_acks_ = 0;
  recover_ = high_water_;
  timing_valid_ = false;
  snd_nxt_ = snd_una_;
  on_congestion_event(CongestionEventKind::kRto);
  try_send();
  arm_rto_if_needed();
}

void TcpSocket::give_up() {
  dead_ = true;
  cancel_rto();
}

}  // namespace mmptcp
