#include "tcp/rtt_estimator.h"

#include "util/check.h"

namespace mmptcp {

void RttEstimator::add_sample(Time rtt) {
  check(!rtt.is_negative(), "RTT sample cannot be negative");
  if (samples_ == 0) {
    srtt_ = rtt;
    rttvar_ = Time::nanos(rtt.ns() / 2);
  } else {
    const Time err = Time::nanos(std::abs((srtt_ - rtt).ns()));
    // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|; SRTT = 7/8 SRTT + 1/8 R.
    rttvar_ = Time::nanos((3 * rttvar_.ns() + err.ns()) / 4);
    srtt_ = Time::nanos((7 * srtt_.ns() + rtt.ns()) / 8);
  }
  ++samples_;
}

Time RttEstimator::rto() const {
  if (samples_ == 0) return config_.initial_rto;
  Time rto = srtt_ + 4 * rttvar_;
  if (rto < config_.min_rto) rto = config_.min_rto;
  if (rto > config_.max_rto) rto = config_.max_rto;
  return rto;
}

}  // namespace mmptcp
