#pragma once

// RFC 6298 RTT estimation and retransmission timeout computation.
//
// SRTT / RTTVAR smoothing with the standard gains (alpha = 1/8,
// beta = 1/4), RTO = SRTT + 4 * RTTVAR clamped into [min_rto, max_rto].
// Karn's algorithm (never sample retransmitted segments) is enforced by
// the socket, which owns the "timed segment" bookkeeping.

#include "sim/time.h"

namespace mmptcp {

/// Bounds and defaults for the retransmission timer.
struct RtoConfig {
  Time min_rto = Time::seconds(1);     ///< ns-3-era default (RFC 6298 floor)
  Time initial_rto = Time::seconds(1); ///< before the first RTT sample
  Time max_rto = Time::seconds(60);
};

/// Smoothed RTT estimator producing the base (un-backed-off) RTO.
class RttEstimator {
 public:
  explicit RttEstimator(RtoConfig config) : config_(config) {}

  /// Feeds one RTT measurement (must be non-negative).
  void add_sample(Time rtt);

  bool has_sample() const { return samples_ > 0; }
  Time srtt() const { return srtt_; }
  Time rttvar() const { return rttvar_; }
  std::uint64_t samples() const { return samples_; }

  /// Base RTO: initial_rto before any sample, else clamped SRTT + 4*RTTVAR.
  Time rto() const;

 private:
  RtoConfig config_;
  Time srtt_;
  Time rttvar_;
  std::uint64_t samples_ = 0;
};

}  // namespace mmptcp
