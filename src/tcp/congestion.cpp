#include "tcp/congestion.h"

#include <algorithm>

#include "util/check.h"

namespace mmptcp {

std::uint64_t RenoIncrease::ca_increment(std::uint64_t acked,
                                         std::uint64_t cwnd,
                                         std::uint32_t mss) const {
  // Approximately one MSS per RTT: MSS * MSS / cwnd per MSS acked.
  return std::uint64_t(mss) * mss * acked /
         (cwnd * std::max<std::uint64_t>(mss, 1));
}

std::uint64_t EcnReactionPolicy::loss_ssthresh(std::uint64_t flight,
                                               std::uint32_t mss) const {
  return std::max<std::uint64_t>(flight / 2, 2 * std::uint64_t(mss));
}

std::optional<WindowCut> EcnReactionPolicy::on_ecn_feedback(
    std::uint64_t /*acked*/, bool /*ece*/, std::uint64_t /*snd_una*/,
    std::uint64_t /*snd_nxt*/, std::uint64_t /*cwnd*/, std::uint32_t /*mss*/) {
  return std::nullopt;
}

CongestionControl::CongestionControl(
    std::uint32_t mss, std::uint32_t initial_cwnd_segments,
    std::unique_ptr<WindowIncreasePolicy> increase,
    std::unique_ptr<EcnReactionPolicy> reaction)
    : mss_(mss), cwnd_(std::uint64_t(mss) * initial_cwnd_segments),
      ssthresh_(std::uint64_t(1) << 62), increase_(std::move(increase)),
      reaction_(std::move(reaction)) {
  check(mss > 0, "MSS must be positive");
  check(initial_cwnd_segments > 0, "initial cwnd must be at least 1 segment");
  check(increase_ != nullptr, "congestion control needs an increase policy");
  check(reaction_ != nullptr, "congestion control needs a reaction policy");
}

void CongestionControl::on_ack(std::uint64_t acked) {
  if (in_slow_start()) {
    // RFC 5681 ABC: grow by min(acked, MSS) per ACK.
    cwnd_ += std::min<std::uint64_t>(acked, mss_);
  } else {
    const std::uint64_t inc = increase_->ca_increment(acked, cwnd_, mss_);
    cwnd_ += std::max<std::uint64_t>(inc, 1);
  }
}

void CongestionControl::enter_recovery(std::uint64_t flight) {
  ssthresh_ = reaction_->loss_ssthresh(flight, mss_);
  cwnd_ = ssthresh_ + 3 * std::uint64_t(mss_);
}

void CongestionControl::partial_ack(std::uint64_t acked) {
  // Deflate by the amount acked (but keep at least one MSS), then add one
  // MSS back for the retransmitted segment leaving the network.
  const std::uint64_t room = cwnd_ > mss_ ? cwnd_ - mss_ : 0;
  cwnd_ -= std::min(acked, room);
  cwnd_ += mss_;
}

void CongestionControl::undo_after_spurious(std::uint64_t prior_cwnd,
                                            std::uint64_t prior_ssthresh) {
  cwnd_ = std::max<std::uint64_t>(prior_cwnd, mss_);
  ssthresh_ = std::max<std::uint64_t>(prior_ssthresh, 2 * std::uint64_t(mss_));
}

void CongestionControl::on_rto(std::uint64_t flight) {
  ssthresh_ = reaction_->loss_ssthresh(flight, mss_);
  cwnd_ = mss_;
}

void CongestionControl::on_ecn_feedback(std::uint64_t acked, bool ece,
                                        std::uint64_t snd_una,
                                        std::uint64_t snd_nxt) {
  if (const auto cut =
          reaction_->on_ecn_feedback(acked, ece, snd_una, snd_nxt, cwnd_,
                                     mss_)) {
    cwnd_ = cut->cwnd;
    ssthresh_ = cut->ssthresh;
  }
}

NewRenoCc::NewRenoCc(std::uint32_t mss, std::uint32_t initial_cwnd_segments)
    : CongestionControl(mss, initial_cwnd_segments,
                        std::make_unique<RenoIncrease>(),
                        std::make_unique<NoEcnReaction>()) {}

}  // namespace mmptcp
