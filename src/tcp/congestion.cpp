#include "tcp/congestion.h"

#include <algorithm>

#include "util/check.h"

namespace mmptcp {

CongestionControl::CongestionControl(std::uint32_t mss,
                                     std::uint32_t initial_cwnd_segments)
    : mss_(mss), cwnd_(std::uint64_t(mss) * initial_cwnd_segments),
      ssthresh_(std::uint64_t(1) << 62) {
  check(mss > 0, "MSS must be positive");
  check(initial_cwnd_segments > 0, "initial cwnd must be at least 1 segment");
}

void CongestionControl::on_ack(std::uint64_t acked) {
  if (in_slow_start()) {
    // RFC 5681 ABC: grow by min(acked, MSS) per ACK.
    cwnd_ += std::min<std::uint64_t>(acked, mss_);
  } else {
    congestion_avoidance_increase(acked);
  }
}

void CongestionControl::congestion_avoidance_increase(std::uint64_t acked) {
  // Approximately one MSS per RTT: MSS * MSS / cwnd per MSS acked.
  const std::uint64_t inc = std::uint64_t(mss_) * mss_ * acked /
                            (cwnd_ * std::max<std::uint64_t>(mss_, 1));
  cwnd_ += std::max<std::uint64_t>(inc, 1);
}

void CongestionControl::enter_recovery(std::uint64_t flight) {
  ssthresh_ = std::max<std::uint64_t>(flight / 2, 2 * std::uint64_t(mss_));
  cwnd_ = ssthresh_ + 3 * std::uint64_t(mss_);
}

void CongestionControl::partial_ack(std::uint64_t acked) {
  // Deflate by the amount acked (but keep at least one MSS), then add one
  // MSS back for the retransmitted segment leaving the network.
  const std::uint64_t room = cwnd_ > mss_ ? cwnd_ - mss_ : 0;
  cwnd_ -= std::min(acked, room);
  cwnd_ += mss_;
}

void CongestionControl::undo_after_spurious(std::uint64_t prior_cwnd,
                                            std::uint64_t prior_ssthresh) {
  cwnd_ = std::max<std::uint64_t>(prior_cwnd, mss_);
  ssthresh_ = std::max<std::uint64_t>(prior_ssthresh, 2 * std::uint64_t(mss_));
}

void CongestionControl::on_rto(std::uint64_t flight) {
  ssthresh_ = std::max<std::uint64_t>(flight / 2, 2 * std::uint64_t(mss_));
  cwnd_ = mss_;
}

}  // namespace mmptcp
