#pragma once

// Parallel multi-seed sweep runner.
//
// expand() turns one spec into a deterministic, ordered job list (axes
// cartesian product x seed list); run_sweep() executes it on a fixed-size
// std::thread pool.  Workers claim jobs with an atomic cursor and write
// results into pre-allocated slots, so output order — and therefore the
// JSON the sink emits — is independent of thread count and scheduling.
// A throwing run is isolated: its record carries ok=false and the error
// text, and the sweep continues.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/spec.h"
#include "sim/time.h"

namespace mmptcp::exp {

/// Knobs of one sweep invocation.
struct SweepOptions {
  std::size_t jobs = 1;                 ///< worker threads (>= 1)
  /// Intra-run simulation threads handed to every run (--sim-threads;
  /// 0 = auto, i.e. all hardware threads).  When the effective value is
  /// > 1 the runner caps `jobs` so jobs x sim_threads stays within
  /// hardware concurrency; run outputs do not depend on either knob.
  unsigned sim_threads = 1;
  /// Domain decomposition granularity handed to every run
  /// (--sim-domains, "pod" or "edge"); never affects run outputs.
  std::string sim_domains = "pod";
  std::vector<std::uint64_t> seeds;     ///< override; empty = spec default
  std::string out_dir = ".";            ///< directory for run artifacts
  /// Shard selection (--shard i/N): of the full expansion, this invocation
  /// executes only runs whose global index satisfies
  /// `index % shard_count == shard_index`.  The default 0/1 runs
  /// everything.  expand() rejects shard_count > total runs (a shard would
  /// be empty) and shard_index >= shard_count.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Replaces the values of the named axes (from --set name=v1,v2).
  std::vector<Axis> axis_overrides;
  /// Progress callback (completed, total, run id, ok); called under a
  /// lock, possibly from worker threads.  Null disables reporting.
  std::function<void(std::size_t, std::size_t, const std::string&, bool)>
      on_progress;
  /// Flight recorder: channels to trace (0 = off), sampling interval,
  /// and where the per-run JSONL files go ("" = out_dir).
  std::uint32_t trace_channels = 0;
  Time trace_interval = Time::millis(1);
  std::string trace_dir;
  /// Component logger root handed to every run.
  Logger logger;
};

/// Name of the trace file one run writes: TRACE_<spec>_<run-id>.jsonl
/// with the id sanitised to filename-safe characters.
std::string trace_file_name(const std::string& spec_name,
                            const std::string& run_id);

/// One grid point of one experiment, with its outcome once executed.
struct RunRecord {
  std::string id;         ///< "subflows=3/seed=1" (stable, unique)
  ParamSet params;
  std::uint64_t seed = 0;
  /// Position in the FULL (unsharded) expansion.  Contiguous 0..total-1
  /// when shard_count == 1; the merge tool interleaves shard documents
  /// back into this order.
  std::size_t index = 0;
  RunOutcome outcome;
};

/// `scale` after the spec's adjust_scale hook (identity when absent).
Scale effective_scale(const ExperimentSpec& spec, Scale scale);

/// Number of runs the sweep would execute, without building the job
/// list (|cartesian(axes)| x |seeds|).
std::size_t sweep_size(const ExperimentSpec& spec, Scale scale,
                       const SweepOptions& options);

/// The sweep's job list in deterministic order (axis-major, seeds
/// innermost), outcomes not yet populated.  Applies the spec's
/// adjust_scale and the options' seed/axis overrides.
std::vector<RunRecord> expand(const ExperimentSpec& spec, Scale scale,
                              const SweepOptions& options);

/// Expands and executes the sweep; returns records in expansion order.
std::vector<RunRecord> run_sweep(const ExperimentSpec& spec, Scale scale,
                                 const SweepOptions& options);

}  // namespace mmptcp::exp
