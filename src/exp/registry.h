#pragma once

// Named catalog of experiment specs.
//
// The built-in catalog (every bench scenario of the paper) is installed
// by register_builtin_experiments(); tests may build private Registry
// instances.  Registry::global() is the process-wide catalog the
// mmptcp_exp CLI and the bench wrappers use.

#include <map>
#include <string>
#include <vector>

#include "exp/spec.h"

namespace mmptcp::exp {

/// Name -> spec catalog with substring filtering.
class Registry {
 public:
  /// Registers a spec; throws ConfigError on duplicate or empty name.
  void add(ExperimentSpec spec);

  /// Exact lookup; nullptr when absent.
  const ExperimentSpec* find(const std::string& name) const;

  /// Specs whose name contains `filter` (empty matches all), sorted by
  /// name.  An exact match returns just that spec.
  std::vector<const ExperimentSpec*> match(const std::string& filter) const;

  /// All specs sorted by name.
  std::vector<const ExperimentSpec*> all() const { return match(""); }

  std::size_t size() const { return specs_.size(); }

  /// The process-wide catalog.
  static Registry& global();

 private:
  std::map<std::string, ExperimentSpec> specs_;
};

/// Installs the built-in paper experiments into Registry::global().
/// Idempotent; returns the number of registered specs.
std::size_t register_builtin_experiments();

}  // namespace mmptcp::exp
