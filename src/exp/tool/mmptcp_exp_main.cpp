// The experiment-engine CLI: lists, filters and runs registered
// experiment specs with a parallel multi-seed sweep.
//
//   mmptcp_exp --list
//   mmptcp_exp --describe incast
//   mmptcp_exp --run fig1 --jobs 8 --seeds 1..10
//   mmptcp_exp --run incast --set "protocol=mmptcp;shared_buffer=1"

#include "exp/cli.h"

int main(int argc, char** argv) {
  return mmptcp::exp::exp_main(argc, argv);
}
