#pragma once

// Command-line front end of the experiment engine.
//
// exp_main() implements the `mmptcp_exp` binary: list, describe, filter
// and run registered experiments with a parallel multi-seed sweep.  The
// per-figure bench binaries are thin wrappers over run_registered_main(),
// which runs exactly one named spec with the same flag surface.

#include <string>

namespace mmptcp::exp {

/// The `mmptcp_exp` tool: --list | --describe <name> | --run <filter>,
/// with --jobs, --seeds, --set axis=v1,v2 and the common scale flags.
int exp_main(int argc, char** argv);

/// Runs one named registered experiment (bench wrapper entry point).
int run_registered_main(const std::string& name, int argc, char** argv);

}  // namespace mmptcp::exp
