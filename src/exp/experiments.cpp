// The built-in experiment catalog: every scenario the per-figure benches
// used to hard-code, expressed as declarative specs over the engine.
// Each run function executes ONE grid point in its own Simulation and
// returns named metrics; sweeping, seeding, parallelism and sinks are
// the engine's job.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "exp/perf_micro.h"
#include "exp/registry.h"
#include "util/check.h"
#include "util/rss.h"
#include "workload/traffic_matrix.h"

namespace mmptcp::exp {

namespace {

using Dir = MetricTolerance::Direction;

/// Appends the flow-time attribution metrics (all additive: they come
/// after every pre-existing metric, so old baseline values stay put).
/// FCT percentiles are sketch-derived — within QuantileSketch's ~0.3%
/// relative error of the exact values — and the budget components are
/// exact means over completed shorts.
void append_flow_time_metrics(RunOutcome& o, const FlowSketches& s) {
  o.set("fct_p50_ms", s.fct_ms.quantile(0.5));
  o.set("fct_p99_ms", s.fct_ms.quantile(0.99));
  o.set("fct_p999_ms", s.fct_ms.quantile(0.999));
  o.set("budget_handshake_ms", s.handshake_ms.mean());
  o.set("budget_rto_stall_ms", s.rto_stall_ms.mean());
  o.set("budget_fast_recovery_ms", s.fast_recovery_ms.mean());
  o.set("budget_transfer_ms", s.transfer_ms.mean());
  o.set("budget_reorder_wait_ms", s.reorder_wait_ms.mean());
  o.set("budget_ttfb_ms", s.ttfb_ms.mean());
  o.set("budget_rto_stall_p99_ms", s.rto_stall_ms.quantile(0.99));
  o.set("budget_ps_phase_ms", s.ps_phase_ms.mean());
  o.set("budget_mptcp_phase_ms", s.mptcp_phase_ms.mean());
  // The full FCT sketch rides along too: shard documents serialise it so
  // --merge can recompute whole-sweep percentiles (the "aggregates"
  // section) instead of settling for means of per-run percentiles.
  o.set_sketch("fct_ms", s.fct_ms);
}

/// Standard metric set of a Scenario-based run.  With exact_stats off the
/// classic FCT metrics fall back to the streaming sketch (documented in
/// bench/baselines/README.md; gated specs keep the exact path).
RunOutcome scenario_outcome(const RunResult& r) {
  RunOutcome o;
  const bool exact = r.fct_ms.count() > 0;
  const QuantileSketch& sk = r.short_sketches.fct_ms;
  o.set("mean_ms", exact ? r.fct_ms.mean() : sk.mean());
  o.set("stddev_ms", exact ? r.fct_ms.stddev() : sk.stddev());
  o.set("p50_ms", exact ? r.fct_ms.percentile(50) : sk.quantile(0.5));
  o.set("p99_ms", exact ? r.fct_ms.percentile(99) : sk.quantile(0.99));
  o.set("max_ms", exact ? r.fct_ms.max() : sk.max());
  o.set("flows_with_rto", double(r.flows_with_rto));
  o.set("rtos", double(r.rtos));
  o.set("spurious_rtx", double(r.spurious));
  o.set("completion", r.completion);
  o.set("long_goodput_mbps",
        r.long_goodput.count() ? r.long_goodput.mean() : 0);
  o.set("utilization", r.utilization);
  o.set("core_loss", r.core_loss);
  o.set("agg_loss", r.agg_loss);
  o.set("ecn_marked", double(r.ecn_marked));
  o.set("peak_queue_pkts", double(r.peak_queue_pkts));
  o.set("p999_ms", exact ? r.fct_ms.p999() : sk.quantile(0.999));
  // Routing-bug canary: nonzero means a switch silently dropped packets
  // whose route fell off the table.  Always zero in a healthy fabric.
  o.set("unroutable", double(r.unroutable));
  append_flow_time_metrics(o, r.short_sketches);
  return o;
}

ScenarioConfig point_scenario(const RunContext& ctx, Protocol proto,
                              std::uint32_t subflows) {
  ScenarioConfig cfg = paper_scenario(ctx.scale, proto, subflows);
  cfg.seed = ctx.seed;
  cfg.trace = ctx.trace;
  cfg.logger = ctx.logger;
  cfg.sim_threads = ctx.sim_threads;
  // Decomposition granularity is a pure scheduling knob (byte-identical
  // results either way); the CLI has already validated the string.
  cfg.fat_tree.domain_granularity = ctx.sim_domains == "edge"
                                        ? DomainGranularity::kEdge
                                        : DomainGranularity::kPod;
  return cfg;
}

/// Engine scheduling telemetry -> timing sidecar.  All zeros for serial
/// runs; machine- and knob-dependent, so never in the main JSON.
void append_engine_timings(RunOutcome& o, const Scenario& sc) {
  const EngineStats& es = sc.engine_stats();
  o.set_timing("windows", double(es.windows));
  o.set_timing("domains_claimed", double(es.domains_claimed));
  o.set_timing("domains_skipped", double(es.domains_skipped));
  o.set_timing("avg_active_domains",
               es.windows > 0
                   ? double(es.domains_claimed) / double(es.windows)
                   : 0);
  o.set_timing("barrier_wait_share",
               es.wall_ns > 0
                   ? double(es.barrier_wait_ns) / double(es.wall_ns)
                   : 0);
  o.set_timing("sim_workers", double(sc.workers_used()));
}

/// Figure-1(b)/(c) style scatter point: band histogram metrics plus a
/// per-flow CSV named after the experiment and seed.
RunOutcome scatter_outcome(const std::string& exp_name,
                           const RunContext& ctx, Protocol proto,
                           std::uint32_t subflows) {
  Scenario sc(point_scenario(ctx, proto, subflows));
  sc.run();
  const Summary fct = sc.short_fct_ms();

  RunOutcome o;
  o.set("completed", double(fct.count()));
  o.set("completion", sc.short_completion_ratio());
  o.set("mean_ms", fct.count() ? fct.mean() : 0);
  o.set("stddev_ms", fct.count() ? fct.stddev() : 0);
  o.set("p50_ms", fct.count() ? fct.percentile(50) : 0);
  o.set("p90_ms", fct.count() ? fct.percentile(90) : 0);
  o.set("p99_ms", fct.count() ? fct.percentile(99) : 0);
  o.set("max_ms", fct.count() ? fct.max() : 0);
  o.set("flows_with_rto", double(sc.short_flows_with_rto()));
  o.set("rtos", double(sc.short_flow_rtos()));
  // The visual signature of the figure: flows per latency band.
  o.set("band_sub_100ms", double(fct.count() - fct.count_above(100)));
  o.set("band_100ms_1s",
        double(fct.count_above(100) - fct.count_above(1000)));
  o.set("band_1s_2s", double(fct.count_above(1000) - fct.count_above(2000)));
  o.set("band_2s_4s", double(fct.count_above(2000) - fct.count_above(4000)));
  o.set("band_4s_8s", double(fct.count_above(4000) - fct.count_above(8000)));
  o.set("band_over_8s", double(fct.count_above(8000)));

  write_flow_csv(sc, ctx.out_dir + "/" + exp_name + "_flows_seed" +
                         std::to_string(ctx.seed) + ".csv");
  return o;
}

double jain_index(const std::vector<double>& xs) {
  double sum = 0, sq = 0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

void register_fig1(Registry& r) {
  r.add({
      .name = "fig1a",
      .artefact = "Figure 1(a): MPTCP short-flow FCT vs #subflows",
      .description = "mean/stddev of short-flow FCT under MPTCP as "
                     "subflows go 1..9",
      .notes = "expected shape: mean and stddev both rise with subflow "
               "count; flows_with_rto grows (paper: mean ~80->140 ms, "
               "stddev ~100->700 ms).",
      .axes = fixed_axes({{"subflows",
                           {"1", "2", "3", "4", "5", "6", "7", "8", "9"}}}),
      .run =
          [](const RunContext& ctx) {
            const auto n =
                static_cast<std::uint32_t>(ctx.params.get_int("subflows"));
            return scenario_outcome(
                run_scenario(point_scenario(ctx, Protocol::kMptcp, n)));
          },
  });

  r.add({
      .name = "fig1b",
      .artefact = "Figure 1(b): MPTCP (8 subflows) per-flow FCT scatter",
      .description = "per-flow FCT bands under MPTCP; full series in "
                     "fig1b_flows_seed<seed>.csv",
      .notes = "expected shape: dense sub-second band plus multi-second "
               "RTO bands (paper: outliers up to ~10 s).",
      .axes = fixed_axes({}),
      .run =
          [](const RunContext& ctx) {
            return scatter_outcome("fig1b", ctx, Protocol::kMptcp,
                                   ctx.scale.subflows);
          },
  });

  r.add({
      .name = "fig1c",
      .artefact = "Figure 1(c): MMPTCP (PS then 8 subflows) per-flow FCT "
                  "scatter",
      .description = "per-flow FCT bands under MMPTCP; full series in "
                     "fig1c_flows_seed<seed>.csv",
      .notes = "expected shape: the RTO bands of Figure 1(b) collapse; "
               "majority of flows < 100 ms at paper scale (paper: mean "
               "116 ms, sd 101 ms).",
      .axes = fixed_axes({}),
      .run =
          [](const RunContext& ctx) {
            return scatter_outcome("fig1c", ctx, Protocol::kMmptcp,
                                   ctx.scale.subflows);
          },
  });
}

void register_incast(Registry& r) {
  r.add({
      .name = "incast",
      .artefact = "objective (3): burst (incast) tolerance",
      .description = "N synchronized senders -> 1 receiver, all four "
                     "transports, fan-in doubling",
      .notes = "expected shape: RTO counts grow with fan-in for MPTCP "
               "(many tiny windows); PS/MMPTCP tolerate larger bursts "
               "before the first timeout; everyone completes eventually.",
      .axes =
          [](const Scale& scale) {
            // Fan-in is bounded by the hosts outside the receiver's rack.
            const std::uint32_t fan_in_max = scale.k == 4 ? 48u : 128u;
            Axis senders{"senders", {}};
            for (std::uint32_t n = 8; n <= fan_in_max; n *= 2) {
              senders.values.push_back(std::to_string(n));
            }
            return std::vector<Axis>{
                senders,
                {"protocol", {"tcp", "mptcp", "ps", "mmptcp"}},
                {"shared_buffer", {"0"}},
            };
          },
      .run =
          [](const RunContext& ctx) {
            IncastConfig cfg;
            cfg.fat_tree.k = ctx.scale.k;
            cfg.fat_tree.oversubscription = ctx.scale.oversubscription;
            cfg.fat_tree.shared_buffer = ctx.params.get_bool("shared_buffer");
            cfg.transport.protocol = ctx.params.get_protocol("protocol");
            cfg.transport.subflows = ctx.scale.subflows;
            cfg.senders =
                static_cast<std::uint32_t>(ctx.params.get_int("senders"));
            cfg.bytes = ctx.scale.short_bytes;
            cfg.seed = ctx.seed;
            cfg.trace = ctx.trace;
            cfg.logger = ctx.logger;
            const IncastResult res = run_incast(cfg);
            RunOutcome o;
            o.set("makespan_ms", res.makespan.to_millis());
            o.set("mean_fct_ms", res.fct_ms.count() ? res.fct_ms.mean() : 0);
            o.set("p99_fct_ms",
                  res.fct_ms.count() ? res.fct_ms.percentile(99) : 0);
            o.set("rtos", double(res.rtos));
            o.set("syn_timeouts", double(res.syn_timeouts));
            o.set("fast_rtx", double(res.fast_retransmits));
            o.set("completion", res.completion_ratio);
            o.set("p999_fct_ms", res.fct_ms.count() ? res.fct_ms.p999() : 0);
            append_flow_time_metrics(o, res.short_sketches);
            return o;
          },
      // Big fan-ins dominate the sweep's runtime: claim them first so a
      // 128-sender point is never the last job picked up.
      .run_cost = [](const ParamSet& p,
                     const Scale&) { return p.get_double("senders"); },
  });
}

void register_scenario_sweeps(Registry& r) {
  r.add({
      .name = "hotspot",
      .artefact = "roadmap: hotspot tolerance",
      .description = "fraction of shorts redirected at one rack; TCP vs "
                     "MPTCP vs MMPTCP",
      .notes = "expected shape: as the hotspot grows, MMPTCP's advantage "
               "over TCP/MPTCP on the non-hotspot flows widens (spraying "
               "avoids the hot paths).",
      .axes = fixed_axes({{"hotspot_fraction", {"0.00", "0.20", "0.50"}},
                          {"protocol", {"tcp", "mptcp", "mmptcp"}}}),
      .run =
          [](const RunContext& ctx) {
            ScenarioConfig cfg =
                point_scenario(ctx, ctx.params.get_protocol("protocol"),
                               ctx.scale.subflows);
            cfg.hotspot_fraction =
                ctx.params.get_double("hotspot_fraction");
            return scenario_outcome(run_scenario(cfg));
          },
  });

  r.add({
      .name = "load_sweep",
      .artefact = "roadmap: network-load sweep",
      .description = "short-flow FCT and long-flow goodput as arrival "
                     "rate sweeps 0.25x..2x for all four transports",
      .notes = "expected shape: MMPTCP tracks PS on short-flow latency at "
               "every load while matching MPTCP on long-flow goodput; "
               "MPTCP's tail degrades fastest as load grows.",
      .axes = fixed_axes(
          {{"rate_mult", {"0.25", "0.50", "1.00", "2.00"}},
           {"protocol", {"tcp", "mptcp", "ps", "mmptcp"}}}),
      // The sweep multiplies the base rate; shrink the per-point flow
      // count so the whole sweep stays fast.
      .run =
          [](const RunContext& ctx) {
            ScenarioConfig cfg =
                point_scenario(ctx, ctx.params.get_protocol("protocol"),
                               ctx.scale.subflows);
            cfg.short_rate_per_host =
                ctx.scale.rate_per_host * ctx.params.get_double("rate_mult");
            return scenario_outcome(run_scenario(cfg));
          },
      .adjust_scale = [](Scale& s) { s.shorts = s.shorts / 2; },
  });

  r.add({
      .name = "multihomed",
      .artefact = "roadmap: multi-homed (dual-homed) FatTree",
      .description = "single- vs dual-homed access layer for MPTCP and "
                     "MMPTCP",
      .notes = "expected shape: dual homing helps MMPTCP's short-flow "
               "tail more than MPTCP's (the PS phase sprays over twice "
               "the access paths).",
      .axes = fixed_axes({{"topology", {"single", "dual"}},
                          {"protocol", {"mptcp", "mmptcp"}}}),
      .run =
          [](const RunContext& ctx) {
            ScenarioConfig cfg =
                point_scenario(ctx, ctx.params.get_protocol("protocol"),
                               ctx.scale.subflows);
            if (ctx.params.get("topology") == "dual") {
              cfg.dual_homed = true;
              cfg.dual.k = ctx.scale.k;
              cfg.dual.oversubscription = ctx.scale.oversubscription;
            }
            return scenario_outcome(run_scenario(cfg));
          },
  });

  r.add({
      .name = "text_summary",
      .artefact = "section 3 in-text comparison (the poster's 'table')",
      .description = "MPTCP vs MMPTCP: FCT, loss per layer, goodput, "
                     "utilisation",
      .notes = "paper values: MMPTCP 116 ms (sd 101) vs MPTCP 126 ms "
               "(sd 425); MMPTCP core+agg loss slightly lower; long-flow "
               "goodput and utilisation at parity.",
      .axes = fixed_axes({{"protocol", {"mptcp", "mmptcp"}}}),
      .run =
          [](const RunContext& ctx) {
            return scenario_outcome(run_scenario(point_scenario(
                ctx, ctx.params.get_protocol("protocol"),
                ctx.scale.subflows)));
          },
  });
}

void register_ablations(Registry& r) {
  r.add({
      .name = "ablation_dupthresh",
      .artefact = "section 2 'PS Phase' reordering-robustness study",
      .description = "static-3 vs topology-aware vs adaptive RR-TCP "
                     "dup-ACK thresholds under packet scatter",
      .notes = "expected shape: static-3 fires many spurious "
               "retransmissions from spray-induced reordering, but the "
               "DSACK undo makes them nearly free; raising the threshold "
               "trades spurious retransmissions for forgone recoveries "
               "that cost full RTOs — visible as a worse tail.",
      .axes = fixed_axes(
          {{"dupack_policy", {"static-3", "topology-aware", "adaptive"}}}),
      .run =
          [](const RunContext& ctx) {
            ScenarioConfig cfg =
                point_scenario(ctx, Protocol::kPacketScatter, 1);
            const std::string& policy = ctx.params.get("dupack_policy");
            cfg.transport.ps_dupack.kind =
                policy == "static-3" ? DupAckPolicyKind::kStatic
                : policy == "topology-aware"
                    ? DupAckPolicyKind::kTopologyAware
                    : DupAckPolicyKind::kAdaptive;
            Scenario sc(cfg);
            sc.run();
            const Summary fct = sc.short_fct_ms();
            RunOutcome o;
            o.set("spurious_rtx", double(sc.total_spurious_retransmits()));
            o.set("fast_rtx_flows",
                  double(sc.metrics().total(
                      [](const FlowRecord& rec) {
                        return rec.fast_retransmits > 0 ? 1u : 0u;
                      },
                      [](const FlowRecord& rec) { return !rec.long_flow; })));
            o.set("flows_with_rto", double(sc.short_flows_with_rto()));
            o.set("mean_ms", fct.count() ? fct.mean() : 0);
            o.set("stddev_ms", fct.count() ? fct.stddev() : 0);
            o.set("p99_ms", fct.count() ? fct.percentile(99) : 0);
            o.set("completion", sc.short_completion_ratio());
            return o;
          },
  });

  r.add({
      .name = "ablation_switching",
      .artefact = "section 2 'Phase Switching' design study",
      .description = "volume thresholds 70KB..4MB, congestion-event "
                     "trigger, pure PS, MPTCP, MPTCP+reinjection",
      .notes = "expected shape: long-flow goodput roughly flat across "
               "volume thresholds (the paper's claim); short-flow tail "
               "degrades toward the MPTCP row as the threshold shrinks "
               "below the 70KB flow size.",
      .axes = fixed_axes({{"variant",
                           {"volume_70KB", "volume_128KB", "volume_256KB",
                            "volume_512KB", "volume_1024KB",
                            "volume_4096KB", "congestion_event", "pure_ps",
                            "mptcp", "mptcp_reinject"}}}),
      .run =
          [](const RunContext& ctx) {
            const std::string& variant = ctx.params.get("variant");
            if (variant == "pure_ps") {
              return scenario_outcome(run_scenario(
                  point_scenario(ctx, Protocol::kPacketScatter, 1)));
            }
            if (variant == "mptcp" || variant == "mptcp_reinject") {
              ScenarioConfig cfg = point_scenario(ctx, Protocol::kMptcp,
                                                  ctx.scale.subflows);
              cfg.transport.reinject_on_rto = variant == "mptcp_reinject";
              return scenario_outcome(run_scenario(cfg));
            }
            ScenarioConfig cfg =
                point_scenario(ctx, Protocol::kMmptcp, ctx.scale.subflows);
            if (variant == "congestion_event") {
              cfg.transport.phase.kind = SwitchPolicyKind::kCongestionEvent;
            } else {
              // "volume_<n>KB"
              cfg.transport.phase.kind = SwitchPolicyKind::kDataVolume;
              const std::string kb =
                  variant.substr(7, variant.size() - 7 - 2);
              cfg.transport.phase.volume_bytes =
                  std::strtoull(kb.c_str(), nullptr, 10) * 1024;
            }
            return scenario_outcome(run_scenario(cfg));
          },
  });
}

void register_coexistence(Registry& r) {
  r.add({
      .name = "coexistence",
      .artefact = "section 3: coexistence/fairness with TCP and MPTCP",
      .description = "long flows of TCP, MPTCP and MMPTCP share one "
                     "fabric; per-protocol goodput and Jain index",
      .notes = "expected shape: no protocol starves.  MPTCP-family flows "
               "yield to TCP — LIA's do-no-harm coupling never takes "
               "more than TCP would on a shared bottleneck — so "
               "'harmony' means safe coexistence, not equal shares.",
      .axes = fixed_axes({{"scheduler", {"eager-rr", "pull"}},
                          {"secs", {"5"}}}),
      .run =
          [](const RunContext& ctx) {
            Simulation sim(ctx.seed);
            FatTreeConfig ftc;
            ftc.k = ctx.scale.k;
            ftc.oversubscription = ctx.scale.oversubscription;
            FatTree ft(sim, ftc);
            Metrics metrics;
            SinkFarm sinks(sim, metrics, ft.network(), 5001, TcpConfig{});

            Rng rng = sim.rng().fork();
            const auto perm = permutation_matrix(rng, ft.host_count());

            // One long flow per host, protocols interleaved round-robin.
            const Protocol protos[] = {Protocol::kTcp, Protocol::kMptcp,
                                       Protocol::kMmptcp};
            std::vector<std::unique_ptr<ClientFlow>> flows;
            for (std::size_t h = 0; h < ft.host_count(); ++h) {
              TransportConfig cfg;
              cfg.protocol = protos[h % 3];
              cfg.subflows = ctx.scale.subflows;
              cfg.scheduler = ctx.params.get("scheduler") == "pull"
                                  ? SchedulerKind::kPull
                                  : SchedulerKind::kEagerRoundRobin;
              cfg.oracle = &ft;
              flows.push_back(std::make_unique<ClientFlow>(
                  sim, metrics, ft.host(h), ft.host(perm[h]).addr(), cfg,
                  ClientFlow::kLongFlow, /*long_flow=*/true));
            }
            sim.scheduler().run_until(
                Time::seconds(ctx.params.get_int("secs")));

            RunOutcome o;
            std::vector<double> all;
            for (Protocol proto : protos) {
              const Summary g =
                  metrics.long_flow_goodput_mbps(proto, sim.now());
              for (double v : g.samples()) all.push_back(v);
              const std::string prefix = protocol_axis_name(proto);
              o.set(prefix + "_flows", double(g.count()));
              o.set(prefix + "_goodput_mean_mbps",
                    g.count() ? g.mean() : 0);
              o.set(prefix + "_goodput_p5_mbps",
                    g.count() ? g.percentile(5) : 0);
              o.set(prefix + "_goodput_p95_mbps",
                    g.count() ? g.percentile(95) : 0);
            }
            o.set("jain_index", jain_index(all));
            return o;
          },
  });
}

void register_smoke(Registry& r) {
  r.add({
      .name = "smoke",
      .artefact = "engine self-check (not a paper artefact)",
      .description = "tiny MMPTCP run on a k=4 FatTree; seconds per "
                     "point, used by CTest and CI",
      .notes = "expected shape: all shorts complete in a lightly loaded "
               "fabric.",
      .axes = fixed_axes({{"protocol", {"tcp", "mmptcp"}}}),
      .run =
          [](const RunContext& ctx) {
            ScenarioConfig cfg = point_scenario(
                ctx, ctx.params.get_protocol("protocol"), 4);
            const auto wall_start = std::chrono::steady_clock::now();
            Scenario sc(cfg);
            sc.run();
            const double wall_secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
            const Summary fct = sc.short_fct_ms();
            RunOutcome o;
            o.set("completed", double(fct.count()));
            o.set("completion", sc.short_completion_ratio());
            o.set("mean_ms", fct.count() ? fct.mean() : 0);
            o.set("p99_ms", fct.count() ? fct.percentile(99) : 0);
            o.set("rtos", double(sc.short_flow_rtos()));
            // Control + all domain schedulers: the canary covers the
            // whole windowed execution, not just control events.
            const double events = double(sc.sim().total_executed());
            o.set("events", events);
            const std::uint64_t unroutable = sc.network().unroutable_total();
            check(unroutable == 0, "smoke run dropped unroutable packets");
            o.set("unroutable", double(unroutable));
            o.set("p999_ms", fct.count() ? fct.p999() : 0);
            append_flow_time_metrics(
                o, sc.metrics().short_flow_sketches(
                       cfg.transport.protocol));
            // Simulator throughput for per-PR trend tracking; sidecar
            // JSON only, so the main result stays deterministic.
            o.set_timing("events_per_second",
                         wall_secs > 0 ? events / wall_secs : 0);
            o.set_timing("wall_seconds", wall_secs);
            o.set_timing("sim_threads", double(ctx.sim_threads));
            append_engine_timings(o, sc);
            return o;
          },
      .adjust_scale =
          [](Scale& s) {
            // Hard-capped small so CTest smoke stays fast at any --full.
            s.k = 4;
            s.shorts = std::min<std::uint32_t>(s.shorts, 24);
            s.rate_per_host = 50.0;
            s.max_sim_time = Time::seconds(30);
          },
      // Gate thresholds for --compare.  Identical code gives identical
      // bytes, so the slack only absorbs cross-compiler FP drift; any
      // intentional behaviour change must refresh bench/baselines/.
      .tolerances =
          {
              {.pattern = "completed",
               .abs_slack = 0.5,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "completion",
               .warn_pct = 0.5,
               .fail_pct = 2,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "rtos",
               .abs_slack = 2,
               .direction = Dir::kHigherIsWorse},
              // Executed-event count: the determinism canary.  Any real
              // simulator change moves it and must refresh baselines.
              {.pattern = "events", .warn_pct = 0.5, .fail_pct = 5},
              // Hard canary: any unroutable packet is a routing bug.
              {.pattern = "unroutable",
               .warn_pct = 0,
               .fail_pct = 0,
               .abs_slack = 0,
               .direction = Dir::kHigherIsWorse},
              {.pattern = "*_ms",
               .warn_pct = 5,
               .fail_pct = 20,
               .abs_slack = 1,
               .direction = Dir::kHigherIsWorse},
              // Timing sidecar aggregates: host-dependent, so CI gates
              // them warn-only until several baselines accumulate.
              {.pattern = "events_per_second*",
               .warn_pct = 15,
               .fail_pct = 40,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "wall_seconds*",
               .warn_pct = 20,
               .fail_pct = 60,
               .direction = Dir::kHigherIsWorse},
              // Engine scheduling telemetry: deterministic per
              // granularity but not across granularities — compare
              // like-for-like sidecars only.
              {.pattern = "windows*", .warn_pct = 5, .fail_pct = 20},
              {.pattern = "domains_*", .warn_pct = 10, .fail_pct = 50},
              {.pattern = "avg_active*",
               .warn_pct = 10,
               .fail_pct = 50,
               .abs_slack = 0.5},
              {.pattern = "barrier_wait_share*",
               .warn_pct = 100,
               .fail_pct = 1000,
               .abs_slack = 0.2},
              {.pattern = "sim_workers*", .warn_pct = 100, .fail_pct = 1e9},
          },
  });
}

/// Qdisc for one grid point of the qdisc-comparing specs.
QdiscConfig point_qdisc(const RunContext& ctx, const std::string& kind) {
  QdiscConfig q;
  q.kind = qdisc_kind_from_string(kind);
  if (ctx.params.has("ecn_k")) {
    q.ecn_threshold_packets =
        static_cast<std::uint32_t>(ctx.params.get_int("ecn_k"));
  }
  if (ctx.params.has("ecn_k_bytes")) {
    q.ecn_threshold_bytes =
        static_cast<std::uint64_t>(ctx.params.get_int("ecn_k_bytes"));
  }
  if (ctx.params.has("bands")) {
    q.bands = static_cast<std::uint32_t>(ctx.params.get_int("bands"));
  }
  return q;
}

/// Shared incast-with-elephants grid point for the qdisc/ECN specs.
IncastConfig incast_battle_point(const RunContext& ctx) {
  IncastConfig cfg;
  cfg.fat_tree.k = ctx.scale.k;
  cfg.fat_tree.oversubscription = ctx.scale.oversubscription;
  cfg.senders = static_cast<std::uint32_t>(ctx.params.get_int("senders"));
  cfg.long_senders =
      static_cast<std::uint32_t>(ctx.params.get_int("long_senders"));
  cfg.short_start = Time::millis(ctx.params.get_int("warmup_ms"));
  cfg.bytes = ctx.scale.short_bytes;
  cfg.seed = ctx.seed;
  cfg.trace = ctx.trace;
  cfg.logger = ctx.logger;
  // Elephants never finish; bound the run for stragglers that exhaust
  // their SYN retries (drop-tail TCP does).
  cfg.max_sim_time = Time::seconds(15);
  return cfg;
}

/// Subflow pool for the ECN-aware MPTCP variants.  Loss-driven MPTCP
/// needs many subflows because discovering a path's state costs a loss;
/// on a marking fabric congestion is explicit, and every extra subflow
/// adds a floor window that sits in the shared queue (DCTCP cannot cut
/// below one segment per subflow).  A small pool keeps the multipath
/// gain while letting the marking threshold actually govern the queue.
std::uint32_t ecn_subflows(const RunContext& ctx) {
  return std::min<std::uint32_t>(ctx.scale.subflows, 2);
}

/// Runs one incast grid point under wall-clock timing: `fill` writes the
/// spec's metrics, then the shared events_per_second / wall_seconds
/// timing sidecar is attached (sidecar only — the main JSON must stay
/// host-independent).
template <typename Fill>
RunOutcome timed_incast(const IncastConfig& cfg, Fill&& fill) {
  const auto wall_start = std::chrono::steady_clock::now();
  const IncastResult res = run_incast(cfg);
  const double wall_secs = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();
  RunOutcome o;
  fill(o, res);
  o.set_timing("events_per_second",
               wall_secs > 0 ? double(res.events_executed) / wall_secs : 0);
  o.set_timing("wall_seconds", wall_secs);
  // Flight-recorder volume, when the run was traced.  Sidecar-only: the
  // main JSON must not differ between traced and untraced sweeps.
  if (res.trace_lines > 0) {
    o.set_timing("trace_lines", double(res.trace_lines));
    o.set_timing("trace_bytes", double(res.trace_bytes));
  }
  return o;
}

/// Applies a qdisc-spec transport variant name to an incast config.
/// Loss-driven protocols keep the fabric they name (drop-tail unless the
/// variant says otherwise); ECN-aware ones get the marking fabric.
void apply_incast_variant(IncastConfig& cfg, const RunContext& ctx,
                          const std::string& variant) {
  if (variant == "tcp") {
    cfg.transport.protocol = Protocol::kTcp;
  } else if (variant == "dctcp") {
    cfg.transport.protocol = Protocol::kDctcp;
    cfg.fat_tree.qdisc = point_qdisc(ctx, "ecn");
  } else if (variant == "mptcp-dctcp") {
    cfg.transport.protocol = Protocol::kMptcpDctcp;
    cfg.transport.subflows = ecn_subflows(ctx);
    cfg.fat_tree.qdisc = point_qdisc(ctx, "ecn");
  } else if (variant == "mmptcp-dctcp") {
    cfg.transport.protocol = Protocol::kMmptcpDctcp;
    cfg.transport.subflows = ecn_subflows(ctx);
    cfg.fat_tree.qdisc = point_qdisc(ctx, "ecn");
  } else if (variant == "mmptcp" || variant == "mmptcp-prio" ||
             variant == "mmptcp-ecn") {
    cfg.transport.protocol = Protocol::kMmptcp;
    cfg.transport.subflows = ctx.scale.subflows;
    if (variant == "mmptcp-prio") {
      cfg.fat_tree.qdisc = point_qdisc(ctx, "prio");
      cfg.fat_tree.qdisc.classifier = PrioClassifierKind::kPsFlag;
    } else if (variant == "mmptcp-ecn") {
      // ECN-blind transport on the marking fabric: the control showing
      // what the composable CC layer buys mmptcp-dctcp.
      cfg.fat_tree.qdisc = point_qdisc(ctx, "ecn");
    }
  } else {
    throw ConfigError("unknown incast variant: " + variant);
  }
}

void register_qdisc(Registry& r) {
  r.add({
      .name = "incast_ecn",
      .artefact = "roadmap: ECN/DCTCP and priority bands vs the incast "
                  "battle",
      .description = "burst of shorts + background elephants into one "
                     "receiver under drop-tail, ECN/DCTCP and "
                     "mice-priority qdiscs",
      .notes = "expected shape: dctcp holds peak_queue_pkts near ecn_k "
               "while tcp fills the drop-tail limit; mmptcp-prio beats "
               "plain mmptcp on short-flow FCT because PS packets jump "
               "the elephants' standing queue; mmptcp-dctcp beats plain "
               "mmptcp on both mean FCT and peak queue (per-subflow "
               "alpha keeps the elephants' standing queue at the mark "
               "point).  At senders=8 the blind burst is already "
               "drain-optimal (the shock RTO-silences the elephants), so "
               "mmptcp keeps the mean-FCT crown there and mmptcp-dctcp "
               "only wins the queue; at senders=24 the blind burst "
               "overflows the buffer and mmptcp-dctcp wins everything "
               "(~2x mean, ~6x p99, no RTOs).",
      // 8 mice vs 4 elephants: enough standing queue that the discipline
      // matters, few enough mice that their own collisions do not drown
      // the elephant effect in RTO noise.  24 mice: past the drop-tail
      // cap, where ECN-blind scatter starts paying in RTOs.
      .axes = fixed_axes({{"variant",
                           {"tcp", "dctcp", "mmptcp", "mmptcp-prio",
                            "mptcp-dctcp", "mmptcp-dctcp"}},
                          {"senders", {"8", "24"}},
                          {"long_senders", {"4"}},
                          {"warmup_ms", {"300"}},
                          {"ecn_k", {"20"}},
                          {"bands", {"2"}}}),
      .run =
          [](const RunContext& ctx) {
            IncastConfig cfg = incast_battle_point(ctx);
            apply_incast_variant(cfg, ctx, ctx.params.get("variant"));
            return timed_incast(cfg, [](RunOutcome& o,
                                        const IncastResult& res) {
              o.set("mean_fct_ms",
                    res.fct_ms.count() ? res.fct_ms.mean() : 0);
              o.set("p99_fct_ms",
                    res.fct_ms.count() ? res.fct_ms.percentile(99) : 0);
              o.set("makespan_ms", res.makespan.to_millis());
              o.set("rtos", double(res.rtos));
              o.set("syn_timeouts", double(res.syn_timeouts));
              o.set("completion", res.completion_ratio);
              o.set("peak_queue_pkts", double(res.peak_queue_packets));
              o.set("peak_queue_at_ms", res.peak_queue_at.to_millis());
              o.set("ecn_marked", double(res.ecn_marked));
              o.set("p999_fct_ms",
                    res.fct_ms.count() ? res.fct_ms.p999() : 0);
              append_flow_time_metrics(o, res.short_sketches);
            });
          },
      // Claim the 24-sender points before the 8-sender ones: the big
      // bursts run longest, and a straggler claimed last stretches the
      // whole sweep's tail.
      .run_cost = [](const ParamSet& p,
                     const Scale&) { return p.get_double("senders"); },
      // Gate thresholds for --compare: FCT/makespan may only degrade so
      // far; count metrics get absolute slack (they sit near zero where
      // relative deltas explode); improvements always pass.
      .tolerances =
          {
              {.pattern = "completion",
               .warn_pct = 1,
               .fail_pct = 5,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "rtos",
               .warn_pct = 25,
               .fail_pct = 100,
               .abs_slack = 3,
               .direction = Dir::kHigherIsWorse},
              {.pattern = "syn_timeouts",
               .abs_slack = 2,
               .direction = Dir::kHigherIsWorse},
              {.pattern = "peak_queue_pkts",
               .warn_pct = 10,
               .fail_pct = 30,
               .abs_slack = 4,
               .direction = Dir::kHigherIsWorse},
              {.pattern = "ecn_marked", .warn_pct = 15, .fail_pct = 50,
               .abs_slack = 10},
              // A timestamp, not a latency: must precede the *_ms entry
              // (whose higher-is-worse direction is wrong for it).  Wide
              // slack — WHEN the peak lands may legitimately move even
              // when the peak itself does not.
              {.pattern = "peak_queue_at_ms",
               .warn_pct = 25,
               .fail_pct = 1000,
               .abs_slack = 5,
               .direction = Dir::kBoth},
              {.pattern = "*_ms",
               .warn_pct = 8,
               .fail_pct = 25,
               .abs_slack = 2,
               .direction = Dir::kHigherIsWorse},
              // Timing sidecar aggregates (host-dependent; CI gates them
              // warn-only).
              {.pattern = "events_per_second*",
               .warn_pct = 15,
               .fail_pct = 40,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "wall_seconds*",
               .warn_pct = 20,
               .fail_pct = 60,
               .direction = Dir::kHigherIsWorse},
          },
  });

  r.add({
      .name = "battle_ecn",
      .artefact = "the paper's short-vs-long battle, refought on an "
                  "ECN-marking fabric",
      .description = "burst of shorts vs background elephants into one "
                     "receiver, every switch port marking at ecn_k: "
                     "ECN-blind mmptcp vs per-subflow-alpha mmptcp-dctcp "
                     "(plus dctcp / mptcp-dctcp references)",
      .notes = "expected shape: both can still win — mmptcp-dctcp keeps "
               "the elephants' standing queue at the mark point, so "
               "short-flow FCT (mean and tail) and peak_queue_pkts drop "
               "versus ECN-blind mmptcp while elephant goodput holds; "
               "mmptcp-ecn shows the marking fabric alone buys the "
               "ECN-blind family nothing.",
      .axes = fixed_axes({{"variant",
                           {"mmptcp-ecn", "mmptcp-dctcp", "mptcp-dctcp",
                            "dctcp"}},
                          {"senders", {"24"}},
                          {"long_senders", {"4"}},
                          {"warmup_ms", {"300"}},
                          {"ecn_k", {"20"}},
                          // Byte-mode marking threshold (0 = packet mode
                          // only); sweep with --set ecn_k_bytes=28000 for
                          // the K-in-bytes comparison.
                          {"ecn_k_bytes", {"0"}},
                          {"bands", {"2"}}}),
      .run =
          [](const RunContext& ctx) {
            IncastConfig cfg = incast_battle_point(ctx);
            apply_incast_variant(cfg, ctx, ctx.params.get("variant"));
            return timed_incast(cfg, [](RunOutcome& o,
                                        const IncastResult& res) {
              o.set("mean_fct_ms",
                    res.fct_ms.count() ? res.fct_ms.mean() : 0);
              o.set("p99_fct_ms",
                    res.fct_ms.count() ? res.fct_ms.percentile(99) : 0);
              o.set("makespan_ms", res.makespan.to_millis());
              o.set("rtos", double(res.rtos));
              o.set("completion", res.completion_ratio);
              o.set("long_goodput_mbps", res.long_goodput_mbps.count()
                                             ? res.long_goodput_mbps.mean()
                                             : 0);
              o.set("peak_queue_pkts", double(res.peak_queue_packets));
              o.set("peak_queue_at_ms", res.peak_queue_at.to_millis());
              o.set("ecn_marked", double(res.ecn_marked));
              o.set("p999_fct_ms",
                    res.fct_ms.count() ? res.fct_ms.p999() : 0);
              append_flow_time_metrics(o, res.short_sketches);
            });
          },
      // The battle's gated verdict: the short-flow tail, the elephants'
      // goodput and the standing queue may only degrade so far;
      // improvements always pass.
      .tolerances =
          {
              {.pattern = "completion",
               .warn_pct = 1,
               .fail_pct = 5,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "rtos",
               .warn_pct = 25,
               .fail_pct = 100,
               .abs_slack = 3,
               .direction = Dir::kHigherIsWorse},
              {.pattern = "long_goodput_mbps",
               .warn_pct = 8,
               .fail_pct = 20,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "peak_queue_pkts",
               .warn_pct = 10,
               .fail_pct = 30,
               .abs_slack = 4,
               .direction = Dir::kHigherIsWorse},
              {.pattern = "ecn_marked", .warn_pct = 15, .fail_pct = 50,
               .abs_slack = 10},
              // A timestamp, not a latency: must precede the *_ms entry
              // (whose higher-is-worse direction is wrong for it).  Wide
              // slack — WHEN the peak lands may legitimately move even
              // when the peak itself does not.
              {.pattern = "peak_queue_at_ms",
               .warn_pct = 25,
               .fail_pct = 1000,
               .abs_slack = 5,
               .direction = Dir::kBoth},
              {.pattern = "*_ms",
               .warn_pct = 8,
               .fail_pct = 25,
               .abs_slack = 2,
               .direction = Dir::kHigherIsWorse},
              // Timing sidecar aggregates (host-dependent; CI gates them
              // warn-only).
              {.pattern = "events_per_second*",
               .warn_pct = 15,
               .fail_pct = 40,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "wall_seconds*",
               .warn_pct = 20,
               .fail_pct = 60,
               .direction = Dir::kHigherIsWorse},
          },
  });

  r.add({
      .name = "load_sweep_qdisc",
      .artefact = "roadmap: queueing discipline x transport under the "
                  "paper workload",
      .description = "drop-tail vs ECN-marking vs strict-priority "
                     "(bytes-sent classifier) for TCP, DCTCP, MMPTCP and "
                     "the ECN-aware MPTCP family",
      .notes = "expected shape: ecn+dctcp cuts peak_queue_pkts and RTOs "
               "versus tcp+droptail; prio lifts every transport's "
               "short-flow tail by shielding young flows from elephant "
               "queues; mmptcp stays competitive without switch help; "
               "the *-dctcp MPTCP variants only separate from their "
               "loss-driven siblings under the ecn qdisc.",
      .axes = fixed_axes({{"protocol",
                           {"tcp", "dctcp", "mmptcp", "mptcp-dctcp",
                            "mmptcp-dctcp"}},
                          {"qdisc", {"droptail", "ecn", "prio"}},
                          {"ecn_k", {"20"}},
                          {"ecn_k_bytes", {"0"}},
                          {"bands", {"2"}}}),
      .run =
          [](const RunContext& ctx) {
            ScenarioConfig cfg =
                point_scenario(ctx, ctx.params.get_protocol("protocol"),
                               ctx.scale.subflows);
            cfg.fat_tree.qdisc = point_qdisc(ctx, ctx.params.get("qdisc"));
            // Young-flow protection that works for every transport, not
            // just the PS phase: band by stream offset.
            cfg.fat_tree.qdisc.classifier = PrioClassifierKind::kBytesSent;
            return scenario_outcome(run_scenario(cfg));
          },
      .adjust_scale = [](Scale& s) { s.shorts = s.shorts / 4; },
  });
}

void register_scale(Registry& r) {
  r.add({
      .name = "scale_sweep",
      .artefact = "roadmap: million-flow scaling (flat-memory streaming "
                  "stats)",
      .description = "MMPTCP shorts-only workload on a big FatTree with "
                     "exact_stats off; FCT from streaming sketches, peak "
                     "RSS and slot high-water mark prove memory stays "
                     "O(live flows)",
      .notes = "expected shape: peak_flow_slots plateaus at the live-flow "
               "window (arrival rate x linger), independent of the total "
               "short count — the 1M point holds peak RSS within 2x of "
               "the 100k point.  FCT metrics are sketch-derived (~0.3% "
               "relative error) and byte-identical to an exact_stats "
               "run's sketches.",
      .axes =
          [](const Scale& scale) {
            return std::vector<Axis>{
                {"shorts",
                 scale.full
                     ? std::vector<std::string>{"100000", "300000",
                                                "1000000"}
                     : std::vector<std::string>{"2000", "4000", "8000"}}};
          },
      .run =
          [](const RunContext& ctx) {
            ScenarioConfig cfg =
                point_scenario(ctx, Protocol::kMmptcp, ctx.scale.subflows);
            cfg.short_flow_count =
                static_cast<std::uint32_t>(ctx.params.get_int("shorts"));
            cfg.exact_stats = false;
            // Shorts only: background elephants would pin records (and
            // load) for the whole run, hiding the memory curve under
            // test.
            cfg.start_long_flows = false;
            // Completed shorts must leave memory while the run is still
            // going: a short server linger bounds live records at
            // (arrival rate x linger) instead of the full short count.
            cfg.server_linger = Time::seconds(1);
            // Longer spine delay, realistic for a big fabric.  (The
            // conservative lookahead is min(edge, spine delay), so this
            // no longer widens the window — it just keeps the workload
            // honest for the speedup numbers the gate summary prints.)
            cfg.fat_tree.core_link_delay = Time::micros(100);
            const auto wall_start = std::chrono::steady_clock::now();
            Scenario sc(cfg);
            sc.run();
            const double wall_secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
            const FlowSketches& s =
                sc.metrics().short_flow_sketches(Protocol::kMmptcp);
            RunOutcome o;
            o.set("completed", double(s.fct_ms.count()));
            o.set("completion", sc.short_completion_ratio());
            o.set("mean_ms", s.fct_ms.mean());
            o.set("p50_ms", s.fct_ms.quantile(0.5));
            o.set("p99_ms", s.fct_ms.quantile(0.99));
            o.set("p999_ms", s.fct_ms.quantile(0.999));
            o.set("max_ms", s.fct_ms.max());
            o.set("rtos", double(sc.short_flow_rtos()));
            const double events = double(sc.sim().total_executed());
            o.set("events", events);
            const std::uint64_t unroutable = sc.network().unroutable_total();
            check(unroutable == 0,
                  "scale_sweep run dropped unroutable packets");
            o.set("unroutable", double(unroutable));
            // Deterministic memory canary: record slots ever allocated =
            // high-water mark of concurrently live (unrecycled) flows.
            // Flat across the shorts axis == memory is O(live flows).
            o.set("peak_flow_slots", double(sc.metrics().flow_count()));
            append_flow_time_metrics(o, s);
            o.set_timing("events_per_second",
                         wall_secs > 0 ? events / wall_secs : 0);
            o.set_timing("wall_seconds", wall_secs);
            o.set_timing("sim_threads", double(ctx.sim_threads));
            append_engine_timings(o, sc);
            // Host-dependent twin of peak_flow_slots; cumulative across
            // the process, so per-point comparisons need one point per
            // invocation (--set shorts=<n>).
            o.set_timing("peak_rss_mb", peak_rss_mb());
            return o;
          },
      .adjust_scale =
          [](Scale& s) {
            // The roadmap scenario: k=16 (4096 hosts at 4:1) at paper
            // scale; a k=8 fabric keeps the reduced sweep CI-fast.  The
            // arrival rate must keep the workload STATIONARY — at 10/s
            // per host the oversubscribed uplinks run well under
            // capacity, so FCT (and with it the live-flow window) does
            // not grow with the total short count.  A hotter rate makes
            // queues and the live window grow for the whole run, which
            // is a congestion experiment, not a memory one.
            s.k = s.full ? 16 : 8;
            s.rate_per_host = 10.0;
          },
      .run_cost = [](const ParamSet& p,
                     const Scale&) { return p.get_double("shorts"); },
      .tolerances =
          {
              {.pattern = "completed",
               .abs_slack = 0.5,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "completion",
               .warn_pct = 0.5,
               .fail_pct = 2,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "rtos",
               .warn_pct = 25,
               .fail_pct = 100,
               .abs_slack = 3,
               .direction = Dir::kHigherIsWorse},
              // Determinism canaries: event count and slot high-water
              // mark move only when the simulator (or GC cadence)
              // genuinely changes — refresh baselines deliberately.
              {.pattern = "events", .warn_pct = 0.5, .fail_pct = 5},
              // Hard canary: any unroutable packet is a routing bug.
              {.pattern = "unroutable",
               .warn_pct = 0,
               .fail_pct = 0,
               .abs_slack = 0,
               .direction = Dir::kHigherIsWorse},
              {.pattern = "peak_flow_slots",
               .warn_pct = 2,
               .fail_pct = 10,
               .abs_slack = 64,
               .direction = Dir::kHigherIsWorse},
              {.pattern = "*_ms",
               .warn_pct = 5,
               .fail_pct = 20,
               .abs_slack = 1,
               .direction = Dir::kHigherIsWorse},
              // Timing sidecar aggregates: host-dependent, gated
              // warn-only in CI until several baselines accumulate.
              {.pattern = "events_per_second*",
               .warn_pct = 15,
               .fail_pct = 40,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "wall_seconds*",
               .warn_pct = 20,
               .fail_pct = 60,
               .direction = Dir::kHigherIsWorse},
              {.pattern = "peak_rss_mb*",
               .warn_pct = 25,
               .fail_pct = 100,
               .direction = Dir::kHigherIsWorse},
              // Engine scheduling telemetry: deterministic per
              // granularity but not across granularities — compare
              // like-for-like sidecars only.
              {.pattern = "windows*", .warn_pct = 5, .fail_pct = 20},
              {.pattern = "domains_*", .warn_pct = 10, .fail_pct = 50},
              {.pattern = "avg_active*",
               .warn_pct = 10,
               .fail_pct = 50,
               .abs_slack = 0.5},
              {.pattern = "barrier_wait_share*",
               .warn_pct = 100,
               .fail_pct = 1000,
               .abs_slack = 0.2},
              {.pattern = "sim_workers*", .warn_pct = 100, .fail_pct = 1e9},
          },
  });
}

}  // namespace

std::size_t register_builtin_experiments() {
  // Function-local static: thread-safe, idempotent registration.
  static const std::size_t count = [] {
    Registry& r = Registry::global();
    register_fig1(r);
    register_incast(r);
    register_scenario_sweeps(r);
    register_ablations(r);
    register_coexistence(r);
    register_qdisc(r);
    register_smoke(r);
    register_scale(r);
    register_perf_micro(r);
    return r.size();
  }();
  return count;
}

}  // namespace mmptcp::exp
