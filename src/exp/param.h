#pragma once

// Declarative sweep parameters for the experiment engine.
//
// An Axis names one swept dimension and its values; a grid point of a
// sweep is a ParamSet — an ordered name->value map with typed accessors.
// Values are stored as strings so axes of different types (protocol
// names, fractions, byte counts) compose in one cartesian product; the
// per-experiment run function parses what it needs.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stats/flow_record.h"

namespace mmptcp::exp {

/// One swept dimension: `name` takes each of `values` in turn.
struct Axis {
  std::string name;
  std::vector<std::string> values;
};

/// One grid point: ordered (axis name, value) pairs.
class ParamSet {
 public:
  void set(std::string name, std::string value);

  bool has(const std::string& name) const;
  /// Raw value; throws ConfigError when absent.
  const std::string& get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  /// Parses "tcp", "mptcp", "ps" / "packet-scatter", "mmptcp".
  Protocol get_protocol(const std::string& name) const;

  /// Canonical "a=1/b=x" rendering (stable run-point ids).
  std::string id() const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Protocol <-> string for axis values ("tcp", "mptcp", "ps", "mmptcp").
Protocol protocol_from_string(const std::string& s);
std::string protocol_axis_name(Protocol p);

/// Every combination of the axes' values, axis-major (first axis varies
/// slowest).  No axes -> one empty ParamSet.
std::vector<ParamSet> cartesian(const std::vector<Axis>& axes);

/// Parses a seed list: "7", "1,2,5" or an inclusive range "1..10".
std::vector<std::uint64_t> parse_seed_list(const std::string& text);

}  // namespace mmptcp::exp
