#pragma once

// perf_micro: the event-core hot-path microbenchmark spec.
//
// Pure scheduler + link churn with no transport or stats machinery, so
// the events_per_second timing sidecar tracks the simulator core alone
// — the number the CI regression gate watches for hot-path regressions.
// Registered from register_builtin_experiments().

#include "exp/registry.h"

namespace mmptcp::exp {

void register_perf_micro(Registry& r);

}  // namespace mmptcp::exp
