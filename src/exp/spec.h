#pragma once

// Declarative experiment specs.
//
// An ExperimentSpec names one of the paper's evaluations (a figure, an
// ablation, a roadmap scenario) as data: swept parameter axes, a default
// seed list, and a run function that executes ONE grid point inside its
// own Simulation.  The sweep runner expands axes x seeds into a job list
// and shards it across a thread pool; because every run builds its own
// Simulation from its own seed, results are identical at any job count.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/param.h"
#include "exp/paper.h"
#include "stats/sketch.h"
#include "trace/trace.h"
#include "util/logging.h"

namespace mmptcp::exp {

/// Inputs of one grid point.
struct RunContext {
  Scale scale;               ///< effective workload scale
  ParamSet params;           ///< this point's axis values
  std::uint64_t seed = 1;    ///< this point's RNG seed
  std::string out_dir = "."; ///< where run artifacts (CSVs) belong
  /// Flight-recorder config for this run; trace.enabled() is false when
  /// the sweep is untraced.  Specs copy it into their scenario config.
  TraceConfig trace;
  /// Component logger root (disabled unless --log-level was given).
  Logger logger;
  /// Worker threads for intra-run parallel event execution (--sim-threads;
  /// 0 = auto).  Specs copy it into their ScenarioConfig; results are
  /// byte-identical at any value (see sim/engine.h), only wall time
  /// changes.
  unsigned sim_threads = 1;
  /// Domain decomposition granularity for intra-run parallelism
  /// (--sim-domains): "pod" (k domains) or "edge" (one domain per edge
  /// switch plus per-pod fabric domains).  Results are byte-identical at
  /// either value; finer granularity exposes more parallelism.
  std::string sim_domains = "pod";
};

/// Outputs of one grid point: ordered metric name -> value.
struct RunOutcome {
  bool ok = true;
  std::string error;                                       ///< when !ok
  std::vector<std::pair<std::string, double>> metrics;
  /// Wall-clock-derived metrics (events/s, run duration).  Kept out of
  /// the main JSON — whose bytes must not depend on the host or thread
  /// count — and written to a BENCH_<name>.timing.json sidecar instead.
  std::vector<std::pair<std::string, double>> timings;
  /// Named quantile sketches over per-flow samples.  Deterministic, so
  /// they ride in the main JSON: the sink merges them per grid point into
  /// the document's "aggregates" section, and sharded sweeps serialise
  /// them so --merge can recombine shards byte-identically.
  std::vector<std::pair<std::string, QuantileSketch>> sketches;

  void set(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
  void set_timing(std::string name, double value) {
    timings.emplace_back(std::move(name), value);
  }
  void set_sketch(std::string name, QuantileSketch sketch) {
    sketches.emplace_back(std::move(name), std::move(sketch));
  }
  double get(const std::string& name) const;

  static RunOutcome failure(std::string message) {
    RunOutcome o;
    o.ok = false;
    o.error = std::move(message);
    return o;
  }
};

/// Gate thresholds for one metric (or a glob family of metrics) used
/// when two sweeps of an experiment are diffed (`mmptcp_exp --compare`).
/// Relative deltas strictly above warn_pct/fail_pct yield WARN/FAIL;
/// deltas whose magnitude is within abs_slack always PASS (shields
/// integer counters like `rtos` that sit at or near zero, where any
/// movement is a huge relative change).
struct MetricTolerance {
  /// Which movement direction is a regression; the other one PASSes.
  enum class Direction { kBoth, kHigherIsWorse, kLowerIsWorse };

  std::string pattern = "*";  ///< glob over metric names (* and ?)
  double warn_pct = 2.0;      ///< |relative delta| % above which -> WARN
  double fail_pct = 10.0;     ///< |relative delta| % above which -> FAIL
  double abs_slack = 1e-9;    ///< |absolute delta| at or below -> PASS
  Direction direction = Direction::kBoth;
};

/// One registered experiment.
struct ExperimentSpec {
  std::string name;         ///< registry key, e.g. "fig1a"
  std::string artefact;     ///< which paper artefact this regenerates
  std::string description;  ///< one-line summary for --list
  std::string notes;        ///< "expected shape" text printed after a run

  /// Swept axes; may depend on the scale (e.g. incast fan-in is bounded
  /// by host count).  Use fixed_axes() when there is no dependence.
  std::function<std::vector<Axis>(const Scale&)> axes;

  /// Library-level default seed list, used only when SweepOptions.seeds
  /// is empty.  The CLI always passes an explicit list derived from
  /// --seed/--seeds, so these are for programmatic run_sweep() callers.
  std::vector<std::uint64_t> seeds{1};

  /// Executes one grid point.  Must be thread-safe with respect to other
  /// grid points: build a fresh Simulation, never touch shared state.
  std::function<RunOutcome(const RunContext&)> run;

  /// Optional scale adjustment applied before expansion (e.g. load_sweep
  /// halves the per-point flow count so the whole sweep stays fast).
  std::function<void(Scale&)> adjust_scale;

  /// Optional relative cost estimate of one grid point (any monotone
  /// proxy for expected runtime; units are irrelevant).  When present the
  /// runner *claims* jobs longest-expected-first so a straggler cannot be
  /// picked up last and extend the sweep's tail — results are still
  /// written to expansion-order slots, so output bytes are unchanged.
  std::function<double(const ParamSet&, const Scale&)> run_cost;

  /// Per-metric regression tolerances consulted by the compare
  /// subsystem; first pattern that matches a metric name wins, and
  /// metrics matching no entry use MetricTolerance{} defaults.  Timing
  /// sidecar aggregates (e.g. "events_per_second_mean") are looked up
  /// through the same list.
  std::vector<MetricTolerance> tolerances;
};

/// Convenience for specs whose axes do not depend on the scale.
std::function<std::vector<Axis>(const Scale&)> fixed_axes(
    std::vector<Axis> axes);

}  // namespace mmptcp::exp
