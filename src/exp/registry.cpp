#include "exp/registry.h"

#include "util/check.h"

namespace mmptcp::exp {

void Registry::add(ExperimentSpec spec) {
  require(!spec.name.empty(), "experiment spec needs a name");
  require(static_cast<bool>(spec.run),
          "experiment " + spec.name + " has no run function");
  require(static_cast<bool>(spec.axes),
          "experiment " + spec.name + " has no axes function");
  require(!spec.seeds.empty(),
          "experiment " + spec.name + " has an empty seed list");
  const auto [it, inserted] = specs_.emplace(spec.name, std::move(spec));
  require(inserted, "duplicate experiment: " + it->first);
}

const ExperimentSpec* Registry::find(const std::string& name) const {
  const auto it = specs_.find(name);
  return it == specs_.end() ? nullptr : &it->second;
}

std::vector<const ExperimentSpec*> Registry::match(
    const std::string& filter) const {
  if (const ExperimentSpec* exact = find(filter); exact != nullptr) {
    return {exact};
  }
  std::vector<const ExperimentSpec*> out;
  for (const auto& [name, spec] : specs_) {  // std::map: sorted by name
    if (filter.empty() || name.find(filter) != std::string::npos) {
      out.push_back(&spec);
    }
  }
  return out;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace mmptcp::exp
