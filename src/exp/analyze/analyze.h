#pragma once

// Offline flow-time attribution: joins one sweep result document
// (BENCH_<spec>.json) with the per-run flight-recorder streams
// (TRACE_<spec>_<id>.jsonl) and produces a deterministic report that
// explains *where* each protocol's flow time went.
//
// The report has four sections:
//   - decomposition: per grid point, the FCT budget split (handshake /
//     RTO stall / fast recovery / transfer) with share percentages,
//     plus the reorder-wait and TTFB overlays.
//   - queues: per grid point and switch band (edge/agg/core), peak
//     occupancy and cumulative ECN-mark/drop attribution from the
//     queue trace channel.
//   - rto_timeline: retransmission-event counts (rto / syn_timeout /
//     fast_rtx) bucketed into fixed 10 ms bins of simulated time.
//   - verdicts: for sweeps with a competing axis ("variant" or
//     "protocol"), a ranked battle verdict per context with a
//     narrative that attributes the winner's margin to budget deltas.
//
// Determinism contract: the JSON report depends only on the bytes of
// the inputs — never on file paths, wall-clock time, the host, or the
// --jobs value that produced them.  Reports built from a --jobs 1 and
// a --jobs 8 sweep of the same experiment are byte-identical.  Trace
// files are joined by the runner's trace_file_name() convention; runs
// whose stream is absent are simply reported as untraced.

#include <string>

namespace mmptcp::exp {

/// A rendered analysis: human-readable text and the canonical JSON
/// document (single line + trailing newline, stable byte content).
struct AnalysisReport {
  std::string text;
  std::string json;
};

/// Analyses a sweep result document.  `trace_dir` is the directory
/// holding that sweep's TRACE_*.jsonl streams ("" = skip the trace
/// join; the queue and timeline sections come out empty).  Throws
/// ConfigError on unreadable/invalid results documents.
AnalysisReport analyze_results(const std::string& results_path,
                               const std::string& trace_dir);

}  // namespace mmptcp::exp
