#include "exp/analyze/analyze.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exp/json.h"
#include "exp/runner.h"
#include "exp/sink.h"
#include "util/check.h"
#include "util/table.h"

namespace mmptcp::exp {

namespace {

/// Width of one retransmission-timeline bucket (simulated time).
constexpr std::int64_t kTimelineBinMs = 10;

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

/// Streaming mean without storing samples (groups can span many seeds).
struct MeanAcc {
  double total = 0;
  std::size_t n = 0;
  void add(double v) {
    total += v;
    ++n;
  }
  double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
};

/// Queue attribution for one switch band, summed over a group's traced
/// runs.  marks/drops come from the cumulative sample counters (per-run
/// per-port maximum), mark_events/drop_events from discrete event lines.
struct BandStats {
  std::set<std::string> ports;
  std::uint64_t peak_depth = 0;
  std::uint64_t marks = 0;
  std::uint64_t drops = 0;
  std::uint64_t mark_events = 0;
  std::uint64_t drop_events = 0;
};

struct BinCounts {
  std::uint64_t rto = 0;
  std::uint64_t syn_timeout = 0;
  std::uint64_t fast_rtx = 0;
};

/// One grid point (params minus seed) with its per-seed aggregates.
struct GroupAgg {
  std::string key;  ///< "axis=v/axis=v" in document order; "(all)" if none
  std::vector<std::pair<std::string, std::string>> params;
  std::size_t runs = 0;    ///< ok runs aggregated
  std::size_t traced = 0;  ///< runs whose trace stream was joined
  MeanAcc fct, p50, p99, p999;
  MeanAcc handshake, rto_stall, fast_recovery, transfer;
  MeanAcc reorder_wait, ttfb;
  MeanAcc rtos, syn_timeouts;
  std::map<std::string, BandStats> bands;
  std::map<std::int64_t, BinCounts> timeline;
};

/// First metric present among `names`; false when none is.
bool find_metric(const std::map<std::string, double>& metrics,
                 std::initializer_list<const char*> names, double* out) {
  for (const char* name : names) {
    const auto it = metrics.find(name);
    if (it != metrics.end()) {
      *out = it->second;
      return true;
    }
  }
  return false;
}

void add_metric(MeanAcc& acc, const std::map<std::string, double>& metrics,
                std::initializer_list<const char*> names) {
  double v = 0;
  if (find_metric(metrics, names, &v)) acc.add(v);
}

/// Switch band of a port name: the alphabetic prefix before the first
/// digit ("edge3.E1/p2" -> "edge", "core0/p1" -> "core").
std::string port_band(const std::string& port) {
  std::string band;
  for (char c : port) {
    if (!std::isalpha(static_cast<unsigned char>(c))) break;
    band += c;
  }
  return band.empty() ? "other" : band;
}

/// Folds one run's trace stream into its group: per-port cumulative
/// counters are collapsed to their per-run maximum first so restarts of
/// the same port name across runs do not double-count.
void join_trace(const std::string& text, const std::string& origin,
                GroupAgg& group) {
  struct PortAgg {
    std::uint64_t peak = 0;
    std::uint64_t marks = 0;
    std::uint64_t drops = 0;
    std::uint64_t mark_events = 0;
    std::uint64_t drop_events = 0;
  };
  std::map<std::string, PortAgg> ports;

  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const JsonValue v = json_parse(line, origin);
    const JsonValue* ch = v.find("ch");
    if (ch == nullptr) continue;  // stream header / foreign line
    if (ch->as_string() == "queue") {
      PortAgg& p = ports[v.at("port").as_string()];
      const std::uint64_t depth =
          static_cast<std::uint64_t>(v.at("depth").as_number());
      p.peak = std::max(p.peak, depth);
      if (const JsonValue* event = v.find("event")) {
        if (event->as_string() == "mark") {
          ++p.mark_events;
        } else {
          ++p.drop_events;
        }
      } else {
        p.marks = std::max(
            p.marks, static_cast<std::uint64_t>(v.at("marks").as_number()));
        p.drops = std::max(
            p.drops, static_cast<std::uint64_t>(v.at("drops").as_number()));
      }
    } else if (ch->as_string() == "retx") {
      const std::int64_t t_ns =
          static_cast<std::int64_t>(v.at("t").as_number());
      const std::int64_t bin =
          t_ns / (kTimelineBinMs * 1'000'000) * kTimelineBinMs;
      BinCounts& counts = group.timeline[bin];
      const std::string& kind = v.at("event").as_string();
      if (kind == "rto") {
        ++counts.rto;
      } else if (kind == "syn_timeout") {
        ++counts.syn_timeout;
      } else if (kind == "fast_rtx") {
        ++counts.fast_rtx;
      }
    }
  }

  for (const auto& [name, p] : ports) {
    BandStats& band = group.bands[port_band(name)];
    band.ports.insert(name);
    band.peak_depth = std::max(band.peak_depth, p.peak);
    band.marks += p.marks;
    band.drops += p.drops;
    band.mark_events += p.mark_events;
    band.drop_events += p.drop_events;
  }
  ++group.traced;
}

/// One contending axis value inside a verdict context.
struct Contender {
  std::string value;
  const GroupAgg* group = nullptr;
};

struct VerdictContext {
  std::string context;  ///< params minus the battle axis; "(all)" if none
  std::vector<Contender> entries;
};

}  // namespace

AnalysisReport analyze_results(const std::string& results_path,
                               const std::string& trace_dir) {
  const JsonValue doc = json_parse(read_file(results_path), results_path);
  require(doc.is_object() && doc.find("kind") != nullptr &&
              doc.at("kind").as_string() == "sweep",
          "--analyze expects a sweep result document (kind=\"sweep\"): " +
              results_path);
  const std::string experiment = doc.at("experiment").as_string();
  const std::vector<JsonValue>& runs = doc.at("runs").items();

  // ---- Pass 1: group runs by grid point (params minus seed). ----
  std::vector<GroupAgg> groups;
  std::map<std::string, std::size_t> group_index;
  std::size_t total = runs.size();
  std::size_t ok_count = 0;
  std::size_t traced = 0;

  for (const JsonValue& run : runs) {
    if (!run.at("ok").as_bool()) continue;
    ++ok_count;

    std::vector<std::pair<std::string, std::string>> params;
    std::string key;
    for (const auto& [name, value] : run.at("params").members()) {
      params.emplace_back(name, value.as_string());
      if (!key.empty()) key += "/";
      key += name + "=" + value.as_string();
    }
    if (key.empty()) key = "(all)";

    const auto it = group_index.find(key);
    std::size_t idx;
    if (it == group_index.end()) {
      idx = groups.size();
      group_index.emplace(key, idx);
      groups.push_back({});
      groups.back().key = key;
      groups.back().params = std::move(params);
    } else {
      idx = it->second;
    }
    GroupAgg& g = groups[idx];
    ++g.runs;

    std::map<std::string, double> metrics;
    if (const JsonValue* m = run.find("metrics")) {
      for (const auto& [name, value] : m->members()) {
        metrics.emplace(name, value.as_number());
      }
    }
    add_metric(g.fct, metrics, {"mean_fct_ms", "mean_ms"});
    add_metric(g.p50, metrics, {"fct_p50_ms", "p50_ms"});
    add_metric(g.p99, metrics, {"p99_fct_ms", "p99_ms"});
    add_metric(g.p999, metrics, {"p999_fct_ms", "p999_ms"});
    add_metric(g.handshake, metrics, {"budget_handshake_ms"});
    add_metric(g.rto_stall, metrics, {"budget_rto_stall_ms"});
    add_metric(g.fast_recovery, metrics, {"budget_fast_recovery_ms"});
    add_metric(g.transfer, metrics, {"budget_transfer_ms"});
    add_metric(g.reorder_wait, metrics, {"budget_reorder_wait_ms"});
    add_metric(g.ttfb, metrics, {"budget_ttfb_ms"});
    add_metric(g.rtos, metrics, {"rtos"});
    add_metric(g.syn_timeouts, metrics, {"syn_timeouts"});

    // ---- Trace join (optional): one JSONL stream per run. ----
    if (!trace_dir.empty()) {
      const std::string path =
          trace_dir + "/" +
          trace_file_name(experiment, run.at("id").as_string());
      if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
        std::fclose(probe);
        join_trace(read_file(path), path, g);
        ++traced;
      }
    }
  }

  // ---- Battle verdicts: rank along the contending axis per context. ----
  const char* battle_axis = nullptr;
  for (const GroupAgg& g : groups) {
    for (const auto& [name, value] : g.params) {
      (void)value;
      if (name == "variant") battle_axis = "variant";
    }
  }
  if (battle_axis == nullptr) {
    for (const GroupAgg& g : groups) {
      for (const auto& [name, value] : g.params) {
        (void)value;
        if (name == "protocol") battle_axis = "protocol";
      }
    }
  }

  std::vector<VerdictContext> contexts;
  if (battle_axis != nullptr) {
    std::map<std::string, std::size_t> context_index;
    for (const GroupAgg& g : groups) {
      std::string axis_value;
      std::string context;
      for (const auto& [name, value] : g.params) {
        if (name == battle_axis) {
          axis_value = value;
          continue;
        }
        if (!context.empty()) context += "/";
        context += name + "=" + value;
      }
      if (axis_value.empty()) continue;  // group without the axis
      if (context.empty()) context = "(all)";
      const auto it = context_index.find(context);
      std::size_t idx;
      if (it == context_index.end()) {
        idx = contexts.size();
        context_index.emplace(context, idx);
        contexts.push_back({context, {}});
      } else {
        idx = it->second;
      }
      contexts[idx].entries.push_back({axis_value, &g});
    }
    // Rank: lowest mean FCT wins; names break exact ties so the order
    // never depends on container iteration details.
    for (VerdictContext& ctx : contexts) {
      std::sort(ctx.entries.begin(), ctx.entries.end(),
                [](const Contender& a, const Contender& b) {
                  const double fa = a.group->fct.mean();
                  const double fb = b.group->fct.mean();
                  if (fa != fb) return fa < fb;
                  return a.value < b.value;
                });
    }
  }

  // ---- Render: text. ----
  std::string text;
  text += "== analysis: " + experiment + " ==\n";
  text += "runs: " + std::to_string(total) + " total, " +
          std::to_string(ok_count) + " ok, " + std::to_string(traced) +
          " traced\n\n";

  text += "FCT decomposition (ms, mean per completed short flow):\n";
  {
    Table t({"group", "runs", "fct", "p99", "handshake", "rto_stall",
             "fast_rec", "transfer", "stall%", "xfer%", "reorder", "ttfb"});
    for (const GroupAgg& g : groups) {
      const double budget = g.handshake.mean() + g.rto_stall.mean() +
                            g.fast_recovery.mean() + g.transfer.mean();
      const double share = budget > 0 ? 100.0 / budget : 0.0;
      t.add_row({g.key, Table::num(std::uint64_t(g.runs)),
                 Table::num(g.fct.mean(), 3), Table::num(g.p99.mean(), 3),
                 Table::num(g.handshake.mean(), 3),
                 Table::num(g.rto_stall.mean(), 3),
                 Table::num(g.fast_recovery.mean(), 3),
                 Table::num(g.transfer.mean(), 3),
                 fmt(g.rto_stall.mean() * share, 1),
                 fmt(g.transfer.mean() * share, 1),
                 Table::num(g.reorder_wait.mean(), 3),
                 Table::num(g.ttfb.mean(), 3)});
    }
    text += t.to_string() + "\n";
  }

  if (traced > 0) {
    text += "queue attribution (per switch band, over traced runs):\n";
    Table t({"group", "band", "ports", "peak_pkts", "marks", "drops",
             "mark_ev", "drop_ev"});
    for (const GroupAgg& g : groups) {
      for (const auto& [band, s] : g.bands) {
        t.add_row({g.key, band, Table::num(std::uint64_t(s.ports.size())),
                   Table::num(s.peak_depth), Table::num(s.marks),
                   Table::num(s.drops), Table::num(s.mark_events),
                   Table::num(s.drop_events)});
      }
    }
    text += t.to_string() + "\n";

    text += "retransmission timeline (" + std::to_string(kTimelineBinMs) +
            " ms bins, over traced runs):\n";
    Table tl({"group", "bin_ms", "rto", "syn_timeout", "fast_rtx"});
    for (const GroupAgg& g : groups) {
      for (const auto& [bin, counts] : g.timeline) {
        tl.add_row({g.key, Table::num(bin), Table::num(counts.rto),
                    Table::num(counts.syn_timeout),
                    Table::num(counts.fast_rtx)});
      }
    }
    text += tl.to_string() + "\n";
  } else {
    text += "queue attribution / retransmission timeline: no trace "
            "streams joined (pass --trace-dir <dir> with TRACE_*.jsonl "
            "from a --trace run)\n\n";
  }

  // ---- Render: verdict narratives (shared by text and JSON). ----
  struct Verdict {
    const VerdictContext* ctx;
    std::string narrative;
  };
  std::vector<Verdict> verdicts;
  for (const VerdictContext& ctx : contexts) {
    if (ctx.entries.size() < 2) continue;
    const GroupAgg& win = *ctx.entries[0].group;
    const GroupAgg& run2 = *ctx.entries[1].group;
    const double margin_pct =
        run2.fct.mean() > 0
            ? (run2.fct.mean() - win.fct.mean()) / run2.fct.mean() * 100.0
            : 0.0;
    // Attribution: budget-component savings of the winner, largest first.
    std::vector<std::pair<std::string, double>> components = {
        {"RTO stall", run2.rto_stall.mean() - win.rto_stall.mean()},
        {"transfer/queueing", run2.transfer.mean() - win.transfer.mean()},
        {"handshake", run2.handshake.mean() - win.handshake.mean()},
        {"fast recovery",
         run2.fast_recovery.mean() - win.fast_recovery.mean()},
    };
    std::stable_sort(components.begin(), components.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    std::string attribution;
    for (const auto& [name, delta] : components) {
      if (!attribution.empty()) attribution += ", ";
      attribution += name + " " + fmt(-delta, 3) + " ms";
    }
    std::string narrative =
        ctx.entries[0].value + " wins [" + ctx.context + "]: mean FCT " +
        fmt(win.fct.mean(), 3) + " ms vs " + fmt(run2.fct.mean(), 3) +
        " ms for " + ctx.entries[1].value + " (" + fmt(margin_pct, 1) +
        "% faster). Attribution vs runner-up: " + attribution + "; p99 " +
        fmt(-(run2.p99.mean() - win.p99.mean()), 3) + " ms";
    if (win.rtos.n > 0 && run2.rtos.n > 0) {
      narrative += "; rtos " + fmt(win.rtos.mean(), 1) + " vs " +
                   fmt(run2.rtos.mean(), 1);
    }
    narrative += ".";
    verdicts.push_back({&ctx, std::move(narrative)});
  }

  if (!verdicts.empty()) {
    text += "battle verdicts (axis: " + std::string(battle_axis) + "):\n";
    for (const Verdict& v : verdicts) {
      text += "  " + v.narrative + "\n";
    }
    text += "\n";
  }

  // ---- Render: canonical JSON (no input paths, stable bytes). ----
  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(std::uint64_t{1});
  w.key("kind").value("analysis");
  w.key("experiment").value(experiment);
  w.key("runs").begin_object();
  w.key("total").value(std::uint64_t(total));
  w.key("ok").value(std::uint64_t(ok_count));
  w.key("traced").value(std::uint64_t(traced));
  w.end_object();

  w.key("decomposition").begin_array();
  for (const GroupAgg& g : groups) {
    const double budget = g.handshake.mean() + g.rto_stall.mean() +
                          g.fast_recovery.mean() + g.transfer.mean();
    const double share = budget > 0 ? 100.0 / budget : 0.0;
    w.begin_object();
    w.key("group").value(g.key);
    w.key("runs").value(std::uint64_t(g.runs));
    w.key("fct_ms").value(g.fct.mean());
    w.key("p50_ms").value(g.p50.mean());
    w.key("p99_ms").value(g.p99.mean());
    w.key("p999_ms").value(g.p999.mean());
    w.key("handshake_ms").value(g.handshake.mean());
    w.key("rto_stall_ms").value(g.rto_stall.mean());
    w.key("fast_recovery_ms").value(g.fast_recovery.mean());
    w.key("transfer_ms").value(g.transfer.mean());
    w.key("rto_stall_share_pct").value(g.rto_stall.mean() * share);
    w.key("transfer_share_pct").value(g.transfer.mean() * share);
    w.key("reorder_wait_ms").value(g.reorder_wait.mean());
    w.key("ttfb_ms").value(g.ttfb.mean());
    if (g.rtos.n > 0) w.key("rtos").value(g.rtos.mean());
    if (g.syn_timeouts.n > 0) {
      w.key("syn_timeouts").value(g.syn_timeouts.mean());
    }
    w.end_object();
  }
  w.end_array();

  w.key("queues").begin_array();
  for (const GroupAgg& g : groups) {
    for (const auto& [band, s] : g.bands) {
      w.begin_object();
      w.key("group").value(g.key);
      w.key("band").value(band);
      w.key("ports").value(std::uint64_t(s.ports.size()));
      w.key("peak_depth_pkts").value(s.peak_depth);
      w.key("marks").value(s.marks);
      w.key("drops").value(s.drops);
      w.key("mark_events").value(s.mark_events);
      w.key("drop_events").value(s.drop_events);
      w.end_object();
    }
  }
  w.end_array();

  w.key("rto_timeline").begin_array();
  for (const GroupAgg& g : groups) {
    for (const auto& [bin, counts] : g.timeline) {
      w.begin_object();
      w.key("group").value(g.key);
      w.key("bin_ms").value(bin);
      w.key("rto").value(counts.rto);
      w.key("syn_timeout").value(counts.syn_timeout);
      w.key("fast_rtx").value(counts.fast_rtx);
      w.end_object();
    }
  }
  w.end_array();

  w.key("verdicts").begin_array();
  for (const Verdict& v : verdicts) {
    const VerdictContext& ctx = *v.ctx;
    const GroupAgg& win = *ctx.entries[0].group;
    const GroupAgg& run2 = *ctx.entries[1].group;
    w.begin_object();
    w.key("context").value(ctx.context);
    w.key("axis").value(battle_axis);
    w.key("winner").value(ctx.entries[0].value);
    w.key("runner_up").value(ctx.entries[1].value);
    w.key("fct_ms").value(win.fct.mean());
    w.key("runner_up_fct_ms").value(run2.fct.mean());
    w.key("fct_delta_pct").value(
        run2.fct.mean() > 0
            ? (run2.fct.mean() - win.fct.mean()) / run2.fct.mean() * 100.0
            : 0.0);
    w.key("p99_delta_ms").value(win.p99.mean() - run2.p99.mean());
    w.key("handshake_delta_ms")
        .value(win.handshake.mean() - run2.handshake.mean());
    w.key("rto_stall_delta_ms")
        .value(win.rto_stall.mean() - run2.rto_stall.mean());
    w.key("fast_recovery_delta_ms")
        .value(win.fast_recovery.mean() - run2.fast_recovery.mean());
    w.key("transfer_delta_ms")
        .value(win.transfer.mean() - run2.transfer.mean());
    if (win.rtos.n > 0 && run2.rtos.n > 0) {
      w.key("rtos_delta").value(win.rtos.mean() - run2.rtos.mean());
    }
    w.key("ranking").begin_array();
    for (const Contender& c : ctx.entries) {
      w.begin_object();
      w.key("value").value(c.value);
      w.key("fct_ms").value(c.group->fct.mean());
      w.key("p99_ms").value(c.group->p99.mean());
      w.key("rto_stall_ms").value(c.group->rto_stall.mean());
      w.key("transfer_ms").value(c.group->transfer.mean());
      w.key("reorder_wait_ms").value(c.group->reorder_wait.mean());
      w.end_object();
    }
    w.end_array();
    w.key("narrative").value(v.narrative);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  AnalysisReport report;
  report.text = std::move(text);
  report.json = w.str() + "\n";
  return report;
}

}  // namespace mmptcp::exp
