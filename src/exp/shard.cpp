#include "exp/shard.h"

#include <algorithm>
#include <map>

#include "exp/json.h"
#include "exp/sink.h"
#include "stats/sketch.h"
#include "util/check.h"
#include "util/summary.h"

namespace mmptcp::exp {

namespace {

/// The grid point a run id belongs to: everything before the trailing
/// "/seed=N" (the runner appends the seed last), or "" when the spec
/// sweeps nothing and the id is just "seed=N".  Matches ParamSet::id()
/// on the unsharded path.
std::string group_of_run_id(const std::string& id) {
  const std::size_t pos = id.rfind("/seed=");
  return pos == std::string::npos ? "" : id.substr(0, pos);
}

std::size_t as_index(const JsonValue& v, const std::string& what) {
  const double n = v.as_number();
  require(n >= 0 && n == static_cast<double>(static_cast<std::size_t>(n)),
          what + " is not a non-negative integer");
  return static_cast<std::size_t>(n);
}

/// Everything that must agree across the shards of one sweep: the
/// document re-emitted without the per-shard members.  Byte equality
/// here means the headers (experiment, artefact, description, scale,
/// schema) are identical.
std::string header_fingerprint(const JsonValue& doc) {
  JsonWriter w;
  w.begin_object();
  for (const auto& [key, member] : doc.members()) {
    if (key == "shard" || key == "runs") continue;
    if (key == "kind") continue;  // checked separately with a clear message
    w.key(key);
    json_emit(member, w);
  }
  w.end_object();
  return w.str();
}

JsonValue parse_shard(const ShardDoc& shard, const char* expected_kind) {
  JsonValue doc = json_parse(shard.text, shard.origin);
  require(doc.is_object(), shard.origin + ": not a JSON object");
  const JsonValue* kind = doc.find("kind");
  require(kind != nullptr && kind->is_string(),
          shard.origin + ": document has no \"kind\"");
  if (kind->as_string() != expected_kind) {
    throw ConfigError(shard.origin + ": kind is \"" + kind->as_string() +
                      "\", expected \"" + expected_kind +
                      "\" — --merge takes the output of --shard i/N, not "
                      "whole sweep documents");
  }
  const std::size_t version =
      as_index(doc.at("schema_version"), shard.origin + ": schema_version");
  if (version != kResultSchemaVersion) {
    throw ConfigError(shard.origin + ": schema_version " +
                      std::to_string(version) + " != current " +
                      std::to_string(kResultSchemaVersion) +
                      "; re-run the shards with this binary");
  }
  return doc;
}

/// Validated shard metadata of one parsed document.
struct ShardMeta {
  std::size_t index = 0;
  std::size_t count = 0;
  std::size_t runs_total = 0;
};

ShardMeta shard_meta(const JsonValue& doc, const std::string& origin) {
  const JsonValue& shard = doc.at("shard");
  ShardMeta meta;
  meta.index = as_index(shard.at("index"), origin + ": shard.index");
  meta.count = as_index(shard.at("count"), origin + ": shard.count");
  meta.runs_total =
      as_index(shard.at("runs_total"), origin + ": shard.runs_total");
  require(meta.count >= 1, origin + ": shard.count must be >= 1");
  require(meta.index < meta.count,
          origin + ": shard.index out of range for shard.count");
  return meta;
}

/// Cross-checks one shard set: same experiment and shard geometry, every
/// shard present exactly once.  Returns the common geometry.
ShardMeta check_shard_set(const std::vector<JsonValue>& docs,
                          const std::vector<ShardDoc>& shards) {
  const ShardMeta first = shard_meta(docs.front(), shards.front().origin);
  const std::string& experiment = docs.front().at("experiment").as_string();
  std::vector<bool> seen(first.count, false);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const std::string& origin = shards[i].origin;
    const std::string& exp = docs[i].at("experiment").as_string();
    if (exp != experiment) {
      throw ConfigError(origin + ": experiment \"" + exp +
                        "\" does not match \"" + experiment + "\" (" +
                        shards.front().origin + ")");
    }
    const ShardMeta meta = shard_meta(docs[i], origin);
    require(meta.count == first.count && meta.runs_total == first.runs_total,
            origin + ": shard geometry (count/runs_total) differs from " +
                shards.front().origin);
    if (seen[meta.index]) {
      throw ConfigError(origin + ": duplicate shard " +
                        std::to_string(meta.index) + "/" +
                        std::to_string(meta.count));
    }
    seen[meta.index] = true;
  }
  if (docs.size() != first.count) {
    std::string missing;
    for (std::size_t i = 0; i < first.count; ++i) {
      if (!seen[i]) {
        if (!missing.empty()) missing += ", ";
        missing += std::to_string(i) + "/" + std::to_string(first.count);
      }
    }
    throw ConfigError("merge needs all " + std::to_string(first.count) +
                      " shards of the sweep; got " +
                      std::to_string(docs.size()) + " (missing: " + missing +
                      ")");
  }
  return first;
}

/// Runs of all shards, exactly covering expansion indices
/// 0..runs_total-1, returned in that order.
std::vector<const JsonValue*> collect_runs(
    const std::vector<JsonValue>& docs, const std::vector<ShardDoc>& shards,
    std::size_t runs_total) {
  std::vector<const JsonValue*> by_index(runs_total, nullptr);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    for (const JsonValue& run : docs[i].at("runs").items()) {
      const std::size_t idx =
          as_index(run.at("index"), shards[i].origin + ": run index");
      require(idx < runs_total, shards[i].origin + ": run index " +
                                    std::to_string(idx) +
                                    " is out of range for runs_total " +
                                    std::to_string(runs_total));
      if (by_index[idx] != nullptr) {
        throw ConfigError(shards[i].origin + ": run index " +
                          std::to_string(idx) +
                          " appears in more than one shard");
      }
      by_index[idx] = &run;
    }
  }
  std::size_t have = 0;
  for (const JsonValue* run : by_index) {
    if (run != nullptr) ++have;
  }
  if (have != runs_total) {
    throw ConfigError("shards cover only " + std::to_string(have) + " of " +
                      std::to_string(runs_total) +
                      " runs; the set is incomplete or was produced by "
                      "different invocations");
  }
  return by_index;
}

}  // namespace

ShardSpec parse_shard_spec(const std::string& text) {
  const auto fail = [&text](const std::string& why) -> ConfigError {
    return ConfigError("invalid --shard argument '" + text + "': " + why +
                       " (expected i/N with 0 <= i < N, e.g. --shard 0/3)");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) throw fail("missing '/'");
  const std::string index_text = text.substr(0, slash);
  const std::string count_text = text.substr(slash + 1);
  const auto digits = [](const std::string& s) {
    return !s.empty() &&
           std::all_of(s.begin(), s.end(),
                       [](char c) { return c >= '0' && c <= '9'; });
  };
  if (!digits(index_text) || !digits(count_text)) {
    throw fail("both i and N must be non-negative integers");
  }
  ShardSpec spec;
  spec.index = static_cast<std::size_t>(std::stoull(index_text));
  spec.count = static_cast<std::size_t>(std::stoull(count_text));
  if (spec.count == 0) throw fail("N must be >= 1");
  if (spec.index >= spec.count) {
    throw fail("shard index " + index_text + " must be < shard count " +
               count_text);
  }
  return spec;
}

std::string merge_shard_docs(const std::vector<ShardDoc>& shards) {
  require(!shards.empty(), "--merge needs at least one shard document");

  std::vector<JsonValue> docs;
  docs.reserve(shards.size());
  for (const ShardDoc& shard : shards) {
    docs.push_back(parse_shard(shard, "sweep_shard"));
  }

  const std::string fingerprint = header_fingerprint(docs.front());
  for (std::size_t i = 1; i < docs.size(); ++i) {
    if (header_fingerprint(docs[i]) != fingerprint) {
      throw ConfigError(shards[i].origin +
                        ": header (experiment/artefact/scale) differs from " +
                        shards.front().origin +
                        "; shards must come from identical invocations");
    }
  }

  const ShardMeta meta = check_shard_set(docs, shards);
  const std::vector<const JsonValue*> runs =
      collect_runs(docs, shards, meta.runs_total);

  // Re-emit: the first shard's members in document order with the
  // shard-only pieces removed, runs interleaved back into expansion
  // order, and "aggregates" recomputed from the serialised sketches.
  JsonWriter w;
  w.begin_object();
  for (const auto& [key, member] : docs.front().members()) {
    if (key == "shard") continue;
    if (key == "kind") {
      w.key("kind").value("sweep");
      continue;
    }
    if (key == "runs") {
      w.key("runs").begin_array();
      for (const JsonValue* run : runs) {
        w.begin_object();
        for (const auto& [k, v] : run->members()) {
          if (k == "index" || k == "sketches") continue;
          w.key(k);
          json_emit(v, w);
        }
        w.end_object();
      }
      w.end_array();
      continue;
    }
    w.key(key);
    json_emit(member, w);
  }

  std::vector<SketchRun> sketch_runs;
  for (const JsonValue* run : runs) {
    if (!run->at("ok").as_bool()) continue;
    SketchRun sr;
    sr.group = group_of_run_id(run->at("id").as_string());
    if (const JsonValue* sketches = run->find("sketches")) {
      for (const auto& [name, text] : sketches->members()) {
        sr.sketches.emplace_back(name,
                                 QuantileSketch::deserialize(text.as_string()));
      }
    }
    sketch_runs.push_back(std::move(sr));
  }
  append_aggregates_json(w, sketch_runs);

  w.end_object();
  return w.str() + "\n";
}

std::string merge_timing_docs(const std::vector<ShardDoc>& shards) {
  if (shards.empty()) return "";

  std::vector<JsonValue> docs;
  docs.reserve(shards.size());
  for (const ShardDoc& shard : shards) {
    docs.push_back(parse_shard(shard, "timing_shard"));
  }
  const std::string& experiment = docs.front().at("experiment").as_string();
  for (std::size_t i = 1; i < docs.size(); ++i) {
    require(docs[i].at("experiment").as_string() == experiment,
            shards[i].origin + ": experiment does not match " +
                shards.front().origin);
  }

  // Runs with timings across all shards, in expansion order.  Unlike the
  // main document, runs without timings are absent by design, so the set
  // need not cover every index — only be duplicate-free.
  std::map<std::size_t, const JsonValue*> by_index;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    for (const JsonValue& run : docs[i].at("runs").items()) {
      const std::size_t idx =
          as_index(run.at("index"), shards[i].origin + ": run index");
      if (!by_index.emplace(idx, &run).second) {
        throw ConfigError(shards[i].origin + ": run index " +
                          std::to_string(idx) +
                          " appears in more than one timing shard");
      }
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(kResultSchemaVersion);
  w.key("kind").value("timing");
  w.key("experiment").value(experiment);
  w.key("runs").begin_array();
  for (const auto& [idx, run] : by_index) {
    (void)idx;
    w.begin_object();
    for (const auto& [k, v] : run->members()) {
      if (k == "index") continue;
      w.key(k);
      json_emit(v, w);
    }
    w.end_object();
  }
  w.end_array();
  // Aggregate means recomputed over the merged run list, first-seen name
  // order — the same shape to_timing_json emits.
  std::vector<std::string> names;
  for (const auto& [idx, run] : by_index) {
    (void)idx;
    for (const auto& [k, v] : run->members()) {
      (void)v;
      if (k == "id" || k == "index") continue;
      if (std::find(names.begin(), names.end(), k) == names.end()) {
        names.push_back(k);
      }
    }
  }
  w.key("aggregate").begin_object();
  for (const std::string& name : names) {
    Summary s;
    for (const auto& [idx, run] : by_index) {
      (void)idx;
      if (const JsonValue* v = run->find(name)) s.add(v->as_number());
    }
    if (s.count()) w.key(name + "_mean").value(s.mean());
  }
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

}  // namespace mmptcp::exp
