#include "exp/param.h"

#include <cstdlib>

#include "util/check.h"

namespace mmptcp::exp {

void ParamSet::set(std::string name, std::string value) {
  for (auto& [n, v] : entries_) {
    if (n == name) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(value));
}

bool ParamSet::has(const std::string& name) const {
  for (const auto& [n, v] : entries_) {
    if (n == name) return true;
  }
  return false;
}

const std::string& ParamSet::get(const std::string& name) const {
  for (const auto& [n, v] : entries_) {
    if (n == name) return v;
  }
  throw ConfigError("unknown parameter: " + name);
}

std::int64_t ParamSet::get_int(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const std::int64_t out = std::strtoll(v.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && !v.empty(),
          "parameter " + name + " is not an integer: " + v);
  return out;
}

double ParamSet::get_double(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  require(end != nullptr && *end == '\0' && !v.empty(),
          "parameter " + name + " is not a number: " + v);
  return out;
}

bool ParamSet::get_bool(const std::string& name) const {
  const std::string& v = get(name);
  if (v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  throw ConfigError("parameter " + name + " is not a boolean: " + v);
}

Protocol ParamSet::get_protocol(const std::string& name) const {
  return protocol_from_string(get(name));
}

std::string ParamSet::id() const {
  std::string out;
  for (const auto& [n, v] : entries_) {
    if (!out.empty()) out += '/';
    out += n + "=" + v;
  }
  return out;
}

Protocol protocol_from_string(const std::string& s) {
  if (s == "tcp") return Protocol::kTcp;
  if (s == "mptcp") return Protocol::kMptcp;
  if (s == "ps" || s == "packet-scatter") return Protocol::kPacketScatter;
  if (s == "mmptcp") return Protocol::kMmptcp;
  if (s == "dctcp") return Protocol::kDctcp;
  if (s == "mptcp-dctcp") return Protocol::kMptcpDctcp;
  if (s == "mmptcp-dctcp") return Protocol::kMmptcpDctcp;
  throw ConfigError("unknown protocol: " + s);
}

std::string protocol_axis_name(Protocol p) {
  switch (p) {
    case Protocol::kTcp: return "tcp";
    case Protocol::kMptcp: return "mptcp";
    case Protocol::kPacketScatter: return "ps";
    case Protocol::kMmptcp: return "mmptcp";
    case Protocol::kDctcp: return "dctcp";
    case Protocol::kMptcpDctcp: return "mptcp-dctcp";
    case Protocol::kMmptcpDctcp: return "mmptcp-dctcp";
  }
  throw InvariantError("unhandled protocol");
}

std::vector<ParamSet> cartesian(const std::vector<Axis>& axes) {
  std::vector<ParamSet> out{ParamSet{}};
  for (const Axis& axis : axes) {
    require(!axis.values.empty(), "axis " + axis.name + " has no values");
    std::vector<ParamSet> next;
    next.reserve(out.size() * axis.values.size());
    for (const ParamSet& base : out) {
      for (const std::string& value : axis.values) {
        ParamSet p = base;
        p.set(axis.name, value);
        next.push_back(std::move(p));
      }
    }
    out = std::move(next);
  }
  return out;
}

namespace {

std::uint64_t parse_u64(const std::string& text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && !text.empty(),
          "bad seed value: " + text);
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::vector<std::uint64_t> parse_seed_list(const std::string& text) {
  require(!text.empty(), "empty seed list");
  std::vector<std::uint64_t> seeds;
  if (const auto dots = text.find(".."); dots != std::string::npos) {
    const std::uint64_t lo = parse_u64(text.substr(0, dots));
    const std::uint64_t hi = parse_u64(text.substr(dots + 2));
    require(lo <= hi, "seed range is inverted: " + text);
    require(hi - lo < 100000, "seed range too large: " + text);
    for (std::uint64_t s = lo; s <= hi; ++s) seeds.push_back(s);
    return seeds;
  }
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    seeds.push_back(parse_u64(text.substr(start, end - start)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return seeds;
}

}  // namespace mmptcp::exp
