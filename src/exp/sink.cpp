#include "exp/sink.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "exp/json.h"
#include "util/check.h"
#include "util/summary.h"

namespace mmptcp::exp {

namespace {

/// Metric names in first-seen order across all successful runs (failed
/// runs have none; metric sets are normally identical across runs).
std::vector<std::string> metric_names(const std::vector<RunRecord>& records) {
  std::vector<std::string> names;
  for (const RunRecord& rec : records) {
    if (!rec.outcome.ok) continue;
    for (const auto& [name, value] : rec.outcome.metrics) {
      bool known = false;
      for (const std::string& n : names) {
        if (n == name) {
          known = true;
          break;
        }
      }
      if (!known) names.push_back(name);
    }
  }
  return names;
}

std::vector<std::string> axis_names(const std::vector<RunRecord>& records) {
  std::vector<std::string> names;
  if (!records.empty()) {
    for (const auto& [n, v] : records.front().params.entries()) {
      names.push_back(n);
    }
  }
  return names;
}

/// Header shared by whole-sweep and shard documents; byte-equality of
/// this prefix is what lets --merge lift the header straight out of a
/// shard file.
void emit_header(JsonWriter& w, const char* kind, const ExperimentSpec& spec,
                 const Scale& scale) {
  w.key("schema_version").value(kResultSchemaVersion);
  w.key("kind").value(kind);
  w.key("experiment").value(spec.name);
  w.key("artefact").value(spec.artefact);
  w.key("description").value(spec.description);

  w.key("scale").begin_object();
  w.key("k").value(std::uint64_t(scale.k));
  w.key("oversubscription").value(std::uint64_t(scale.oversubscription));
  w.key("shorts").value(std::uint64_t(scale.shorts));
  w.key("rate_per_host").value(scale.rate_per_host);
  w.key("short_bytes").value(scale.short_bytes);
  w.key("subflows").value(std::uint64_t(scale.subflows));
  w.key("max_sim_secs").value(
      std::uint64_t(scale.max_sim_time.ns() / 1'000'000'000));
  w.end_object();
}

/// One run object inside "runs".  Shard documents additionally carry the
/// run's global expansion index and its serialised sketches (the whole
/// document folds sketches into "aggregates" instead).
void emit_run(JsonWriter& w, const RunRecord& rec, bool shard) {
  w.begin_object();
  w.key("id").value(rec.id);
  if (shard) w.key("index").value(std::uint64_t(rec.index));
  w.key("params").begin_object();
  for (const auto& [name, value] : rec.params.entries()) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("seed").value(rec.seed);
  w.key("ok").value(rec.outcome.ok);
  if (rec.outcome.ok) {
    w.key("metrics").begin_object();
    for (const auto& [name, value] : rec.outcome.metrics) {
      w.key(name).value(value);
    }
    w.end_object();
  } else {
    w.key("error").value(rec.outcome.error);
  }
  if (shard && rec.outcome.ok && !rec.outcome.sketches.empty()) {
    w.key("sketches").begin_object();
    for (const auto& [name, sketch] : rec.outcome.sketches) {
      w.key(name).value(sketch.serialize());
    }
    w.end_object();
  }
  w.end_object();
}

std::vector<SketchRun> sketch_runs(const std::vector<RunRecord>& records) {
  std::vector<SketchRun> runs;
  for (const RunRecord& rec : records) {
    if (!rec.outcome.ok) continue;
    runs.push_back(SketchRun{rec.params.id(), rec.outcome.sketches});
  }
  return runs;
}

}  // namespace

std::string to_json(const ExperimentSpec& spec, const Scale& scale,
                    const std::vector<RunRecord>& records) {
  JsonWriter w;
  w.begin_object();
  emit_header(w, "sweep", spec, scale);
  w.key("runs").begin_array();
  for (const RunRecord& rec : records) emit_run(w, rec, /*shard=*/false);
  w.end_array();
  append_aggregates_json(w, sketch_runs(records));
  w.end_object();
  return w.str() + "\n";
}

std::string to_shard_json(const ExperimentSpec& spec, const Scale& scale,
                          const std::vector<RunRecord>& records,
                          std::size_t shard_index, std::size_t shard_count,
                          std::size_t runs_total) {
  JsonWriter w;
  w.begin_object();
  emit_header(w, "sweep_shard", spec, scale);
  w.key("shard").begin_object();
  w.key("index").value(std::uint64_t(shard_index));
  w.key("count").value(std::uint64_t(shard_count));
  w.key("runs_total").value(std::uint64_t(runs_total));
  w.end_object();
  w.key("runs").begin_array();
  for (const RunRecord& rec : records) emit_run(w, rec, /*shard=*/true);
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

void append_aggregates_json(JsonWriter& w, const std::vector<SketchRun>& runs) {
  bool any = false;
  for (const SketchRun& run : runs) {
    if (!run.sketches.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return;

  // Grid points in first-seen order (== axis-major expansion order).
  std::vector<std::string> order;
  std::map<std::string, std::vector<const SketchRun*>> groups;
  for (const SketchRun& run : runs) {
    if (groups.find(run.group) == groups.end()) order.push_back(run.group);
    groups[run.group].push_back(&run);
  }

  w.key("aggregates").begin_array();
  for (const std::string& key : order) {
    const auto& group = groups[key];
    // Sketch names in first-seen order within the group.
    std::vector<std::string> names;
    for (const SketchRun* run : group) {
      for (const auto& [name, sketch] : run->sketches) {
        (void)sketch;
        if (std::find(names.begin(), names.end(), name) == names.end()) {
          names.push_back(name);
        }
      }
    }
    w.begin_object();
    w.key("id").value(key);
    w.key("runs").value(std::uint64_t(group.size()));
    w.key("sketches").begin_object();
    for (const std::string& name : names) {
      QuantileSketch merged;
      for (const SketchRun* run : group) {
        for (const auto& [n, sketch] : run->sketches) {
          if (n == name) merged.merge(sketch);
        }
      }
      w.key(name).begin_object();
      w.key("count").value(merged.count());
      w.key("mean").value(merged.mean());
      w.key("p50").value(merged.quantile(0.50));
      w.key("p99").value(merged.quantile(0.99));
      w.key("p999").value(merged.quantile(0.999));
      w.key("max").value(merged.max());
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
}

namespace {

std::string timing_json_impl(const ExperimentSpec& spec,
                             const std::vector<RunRecord>& records,
                             bool shard, std::size_t shard_index,
                             std::size_t shard_count,
                             std::size_t runs_total) {
  bool any = false;
  for (const RunRecord& rec : records) {
    if (!rec.outcome.timings.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return "";

  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(kResultSchemaVersion);
  w.key("kind").value(shard ? "timing_shard" : "timing");
  w.key("experiment").value(spec.name);
  if (shard) {
    w.key("shard").begin_object();
    w.key("index").value(std::uint64_t(shard_index));
    w.key("count").value(std::uint64_t(shard_count));
    w.key("runs_total").value(std::uint64_t(runs_total));
    w.end_object();
  }
  w.key("runs").begin_array();
  for (const RunRecord& rec : records) {
    if (rec.outcome.timings.empty()) continue;
    w.begin_object();
    w.key("id").value(rec.id);
    if (shard) w.key("index").value(std::uint64_t(rec.index));
    for (const auto& [name, value] : rec.outcome.timings) {
      w.key(name).value(value);
    }
    w.end_object();
  }
  w.end_array();
  // Per-metric mean across runs, first-seen name order.
  std::vector<std::string> names;
  for (const RunRecord& rec : records) {
    for (const auto& [name, value] : rec.outcome.timings) {
      (void)value;
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
  }
  w.key("aggregate").begin_object();
  for (const std::string& name : names) {
    Summary s;
    for (const RunRecord& rec : records) {
      for (const auto& [n, value] : rec.outcome.timings) {
        if (n == name) s.add(value);
      }
    }
    if (s.count()) w.key(name + "_mean").value(s.mean());
  }
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

}  // namespace

std::string to_timing_json(const ExperimentSpec& spec,
                           const std::vector<RunRecord>& records) {
  return timing_json_impl(spec, records, /*shard=*/false, 0, 1,
                          records.size());
}

std::string to_shard_timing_json(const ExperimentSpec& spec,
                                 const std::vector<RunRecord>& records,
                                 std::size_t shard_index,
                                 std::size_t shard_count,
                                 std::size_t runs_total) {
  return timing_json_impl(spec, records, /*shard=*/true, shard_index,
                          shard_count, runs_total);
}

Table to_table(const std::vector<RunRecord>& records) {
  const std::vector<std::string> axes = axis_names(records);
  const std::vector<std::string> metrics = metric_names(records);

  std::vector<std::string> headers = axes;
  headers.push_back("seed");
  for (const std::string& m : metrics) headers.push_back(m);
  headers.push_back("status");

  Table table(headers);
  for (const RunRecord& rec : records) {
    std::vector<std::string> row;
    for (const std::string& axis : axes) {
      row.push_back(rec.params.has(axis) ? rec.params.get(axis) : "");
    }
    row.push_back(Table::num(rec.seed));
    for (const std::string& m : metrics) {
      bool found = false;
      for (const auto& [name, value] : rec.outcome.metrics) {
        if (name == m) {
          row.push_back(Table::num(value, 2));
          found = true;
          break;
        }
      }
      if (!found) row.push_back("-");
    }
    row.push_back(rec.outcome.ok ? "ok" : "FAIL: " + rec.outcome.error);
    table.add_row(std::move(row));
  }
  return table;
}

Table to_aggregate_table(const std::vector<RunRecord>& records) {
  const std::vector<std::string> axes = axis_names(records);
  const std::vector<std::string> metrics = metric_names(records);

  // Group by grid point (params id), preserving first-seen order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<const RunRecord*>> groups;
  for (const RunRecord& rec : records) {
    const std::string key = rec.params.id();
    if (groups.find(key) == groups.end()) order.push_back(key);
    groups[key].push_back(&rec);
  }

  std::vector<std::string> headers = axes;
  headers.push_back("seeds");
  for (const std::string& m : metrics) {
    headers.push_back(m + "_mean");
    headers.push_back(m + "_sd");
  }

  Table table(headers);
  for (const std::string& key : order) {
    const auto& group = groups[key];
    std::vector<std::string> row;
    for (const std::string& axis : axes) {
      row.push_back(group.front()->params.has(axis)
                        ? group.front()->params.get(axis)
                        : "");
    }
    std::size_t ok_count = 0;
    for (const RunRecord* rec : group) {
      if (rec->outcome.ok) ++ok_count;
    }
    row.push_back(Table::num(std::uint64_t(ok_count)));
    for (const std::string& m : metrics) {
      Summary s;
      for (const RunRecord* rec : group) {
        if (!rec->outcome.ok) continue;
        for (const auto& [name, value] : rec->outcome.metrics) {
          if (name == m) {
            s.add(value);
            break;
          }
        }
      }
      row.push_back(s.count() ? Table::num(s.mean(), 2) : "-");
      row.push_back(s.count() ? Table::num(s.stddev(), 2) : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  require(f != nullptr, "cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  require(written == content.size(), "short write to " + path);
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  require(f != nullptr, "cannot open " + path + " for reading");
  std::string content;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    content.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  require(!failed, "read error on " + path);
  return content;
}

}  // namespace mmptcp::exp
