#include "exp/sink.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "exp/json.h"
#include "util/check.h"
#include "util/summary.h"

namespace mmptcp::exp {

namespace {

/// Metric names in first-seen order across all successful runs (failed
/// runs have none; metric sets are normally identical across runs).
std::vector<std::string> metric_names(const std::vector<RunRecord>& records) {
  std::vector<std::string> names;
  for (const RunRecord& rec : records) {
    if (!rec.outcome.ok) continue;
    for (const auto& [name, value] : rec.outcome.metrics) {
      bool known = false;
      for (const std::string& n : names) {
        if (n == name) {
          known = true;
          break;
        }
      }
      if (!known) names.push_back(name);
    }
  }
  return names;
}

std::vector<std::string> axis_names(const std::vector<RunRecord>& records) {
  std::vector<std::string> names;
  if (!records.empty()) {
    for (const auto& [n, v] : records.front().params.entries()) {
      names.push_back(n);
    }
  }
  return names;
}

}  // namespace

std::string to_json(const ExperimentSpec& spec, const Scale& scale,
                    const std::vector<RunRecord>& records) {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(kResultSchemaVersion);
  w.key("kind").value("sweep");
  w.key("experiment").value(spec.name);
  w.key("artefact").value(spec.artefact);
  w.key("description").value(spec.description);

  w.key("scale").begin_object();
  w.key("k").value(std::uint64_t(scale.k));
  w.key("oversubscription").value(std::uint64_t(scale.oversubscription));
  w.key("shorts").value(std::uint64_t(scale.shorts));
  w.key("rate_per_host").value(scale.rate_per_host);
  w.key("short_bytes").value(scale.short_bytes);
  w.key("subflows").value(std::uint64_t(scale.subflows));
  w.key("max_sim_secs").value(
      std::uint64_t(scale.max_sim_time.ns() / 1'000'000'000));
  w.end_object();

  w.key("runs").begin_array();
  for (const RunRecord& rec : records) {
    w.begin_object();
    w.key("id").value(rec.id);
    w.key("params").begin_object();
    for (const auto& [name, value] : rec.params.entries()) {
      w.key(name).value(value);
    }
    w.end_object();
    w.key("seed").value(rec.seed);
    w.key("ok").value(rec.outcome.ok);
    if (rec.outcome.ok) {
      w.key("metrics").begin_object();
      for (const auto& [name, value] : rec.outcome.metrics) {
        w.key(name).value(value);
      }
      w.end_object();
    } else {
      w.key("error").value(rec.outcome.error);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

std::string to_timing_json(const ExperimentSpec& spec,
                           const std::vector<RunRecord>& records) {
  bool any = false;
  for (const RunRecord& rec : records) {
    if (!rec.outcome.timings.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return "";

  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(kResultSchemaVersion);
  w.key("kind").value("timing");
  w.key("experiment").value(spec.name);
  w.key("runs").begin_array();
  for (const RunRecord& rec : records) {
    if (rec.outcome.timings.empty()) continue;
    w.begin_object();
    w.key("id").value(rec.id);
    for (const auto& [name, value] : rec.outcome.timings) {
      w.key(name).value(value);
    }
    w.end_object();
  }
  w.end_array();
  // Per-metric mean across runs, first-seen name order.
  std::vector<std::string> names;
  for (const RunRecord& rec : records) {
    for (const auto& [name, value] : rec.outcome.timings) {
      (void)value;
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
  }
  w.key("aggregate").begin_object();
  for (const std::string& name : names) {
    Summary s;
    for (const RunRecord& rec : records) {
      for (const auto& [n, value] : rec.outcome.timings) {
        if (n == name) s.add(value);
      }
    }
    if (s.count()) w.key(name + "_mean").value(s.mean());
  }
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

Table to_table(const std::vector<RunRecord>& records) {
  const std::vector<std::string> axes = axis_names(records);
  const std::vector<std::string> metrics = metric_names(records);

  std::vector<std::string> headers = axes;
  headers.push_back("seed");
  for (const std::string& m : metrics) headers.push_back(m);
  headers.push_back("status");

  Table table(headers);
  for (const RunRecord& rec : records) {
    std::vector<std::string> row;
    for (const std::string& axis : axes) {
      row.push_back(rec.params.has(axis) ? rec.params.get(axis) : "");
    }
    row.push_back(Table::num(rec.seed));
    for (const std::string& m : metrics) {
      bool found = false;
      for (const auto& [name, value] : rec.outcome.metrics) {
        if (name == m) {
          row.push_back(Table::num(value, 2));
          found = true;
          break;
        }
      }
      if (!found) row.push_back("-");
    }
    row.push_back(rec.outcome.ok ? "ok" : "FAIL: " + rec.outcome.error);
    table.add_row(std::move(row));
  }
  return table;
}

Table to_aggregate_table(const std::vector<RunRecord>& records) {
  const std::vector<std::string> axes = axis_names(records);
  const std::vector<std::string> metrics = metric_names(records);

  // Group by grid point (params id), preserving first-seen order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<const RunRecord*>> groups;
  for (const RunRecord& rec : records) {
    const std::string key = rec.params.id();
    if (groups.find(key) == groups.end()) order.push_back(key);
    groups[key].push_back(&rec);
  }

  std::vector<std::string> headers = axes;
  headers.push_back("seeds");
  for (const std::string& m : metrics) {
    headers.push_back(m + "_mean");
    headers.push_back(m + "_sd");
  }

  Table table(headers);
  for (const std::string& key : order) {
    const auto& group = groups[key];
    std::vector<std::string> row;
    for (const std::string& axis : axes) {
      row.push_back(group.front()->params.has(axis)
                        ? group.front()->params.get(axis)
                        : "");
    }
    std::size_t ok_count = 0;
    for (const RunRecord* rec : group) {
      if (rec->outcome.ok) ++ok_count;
    }
    row.push_back(Table::num(std::uint64_t(ok_count)));
    for (const std::string& m : metrics) {
      Summary s;
      for (const RunRecord* rec : group) {
        if (!rec->outcome.ok) continue;
        for (const auto& [name, value] : rec->outcome.metrics) {
          if (name == m) {
            s.add(value);
            break;
          }
        }
      }
      row.push_back(s.count() ? Table::num(s.mean(), 2) : "-");
      row.push_back(s.count() ? Table::num(s.stddev(), 2) : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  require(f != nullptr, "cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  require(written == content.size(), "short write to " + path);
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  require(f != nullptr, "cannot open " + path + " for reading");
  std::string content;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    content.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  require(!failed, "read error on " + path);
  return content;
}

}  // namespace mmptcp::exp
