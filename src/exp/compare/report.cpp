#include "exp/compare/report.h"

#include "exp/json.h"
#include "exp/sink.h"
#include "util/table.h"

namespace mmptcp::exp {

std::string to_text_report(const CompareReport& report) {
  std::string out;
  out += "== compare: " + report.experiment + " (" + report.kind + ") ==\n";
  out += "baseline:  " + report.baseline_origin + "\n";
  out += "candidate: " + report.candidate_origin + "\n\n";

  if (!report.diffs.empty()) {
    Table table({"run", "metric", "base", "cand", "delta", "rel%",
                 "verdict", "note"});
    for (const MetricDiff& d : report.diffs) {
      table.add_row({d.run_id, d.metric, Table::num(d.base, 4),
                     Table::num(d.cand, 4), Table::num(d.abs_delta, 4),
                     d.base != 0 ? Table::num(d.rel_delta_pct, 2) : "-",
                     verdict_name(d.verdict), d.note});
    }
    out += table.to_string() + "\n";
  }

  if (!report.findings.empty()) {
    out += "findings:\n";
    for (const Finding& f : report.findings) {
      out += "  [" + std::string(verdict_name(f.verdict)) + "] ";
      if (!f.run_id.empty()) out += f.run_id + " ";
      if (!f.metric.empty()) out += f.metric + " ";
      out += "- " + f.what + "\n";
    }
    out += "\n";
  }

  out += std::to_string(report.count(Verdict::kPass)) + " PASS, " +
         std::to_string(report.count(Verdict::kWarn)) + " WARN, " +
         std::to_string(report.count(Verdict::kFail)) + " FAIL -> " +
         verdict_name(report.verdict()) + "\n";
  return out;
}

std::string to_verdict_json(const CompareReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(kResultSchemaVersion);
  w.key("kind").value("verdict");
  w.key("experiment").value(report.experiment);
  w.key("compared_kind").value(report.kind);
  w.key("verdict").value(verdict_name(report.verdict()));
  w.key("counts").begin_object();
  w.key("pass").value(std::uint64_t(report.count(Verdict::kPass)));
  w.key("warn").value(std::uint64_t(report.count(Verdict::kWarn)));
  w.key("fail").value(std::uint64_t(report.count(Verdict::kFail)));
  w.end_object();

  w.key("regressions").begin_array();
  for (const MetricDiff& d : report.diffs) {
    if (d.verdict == Verdict::kPass) continue;
    w.begin_object();
    w.key("run").value(d.run_id);
    w.key("metric").value(d.metric);
    w.key("severity").value(verdict_name(d.verdict));
    w.key("base").value(d.base);
    w.key("cand").value(d.cand);
    w.key("delta").value(d.abs_delta);
    if (d.base != 0) w.key("rel_pct").value(d.rel_delta_pct);
    w.key("note").value(d.note);
    w.end_object();
  }
  w.end_array();

  w.key("findings").begin_array();
  for (const Finding& f : report.findings) {
    w.begin_object();
    w.key("severity").value(verdict_name(f.verdict));
    w.key("run").value(f.run_id);
    w.key("metric").value(f.metric);
    w.key("what").value(f.what);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

}  // namespace mmptcp::exp
