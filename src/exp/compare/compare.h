#pragma once

// Result-diffing engine: aligns two sweep documents (BENCH_<name>.json
// or BENCH_<name>.timing.json) run by run and metric by metric, grades
// every delta against the experiment's declared MetricTolerances, and
// produces a CompareReport the report layer renders as a text table and
// a machine-readable verdict JSON.
//
// Alignment key is the run id ("axis=v/.../seed=N"), i.e. exactly the
// (experiment, swept-axis values, seed) tuple — two sweeps of the same
// spec at the same scale align perfectly, and anything unmatched
// (missing run, extra run, renamed metric) is a structural finding, not
// a silent skip.  Everything here is deterministic: inputs in document
// order produce byte-identical reports.

#include <cstdint>
#include <string>
#include <vector>

#include "exp/registry.h"

namespace mmptcp::exp {

/// Severity of one compared metric or structural finding.
enum class Verdict { kPass, kWarn, kFail };

const char* verdict_name(Verdict v);

/// One run parsed back from a sweep document.
struct SweepRun {
  std::string id;
  bool ok = true;
  std::string error;
  std::vector<std::pair<std::string, double>> metrics;
};

/// A parsed result document (sweep JSON or timing sidecar).
struct SweepDoc {
  std::uint64_t schema_version = 1;  ///< documents predating the field
  std::string kind;                  ///< "sweep" or "timing"
  std::string experiment;
  std::vector<SweepRun> runs;
  /// Timing sidecars only: the per-metric means across runs.  Per-run
  /// wall-clock values are noise; the aggregate is the trend signal.
  std::vector<std::pair<std::string, double>> aggregate;
};

/// Parses a result document; `origin` labels error messages.
SweepDoc parse_sweep_doc(const std::string& json_text,
                         const std::string& origin);

/// read_file + parse_sweep_doc.
SweepDoc load_sweep_doc(const std::string& path);

/// Knobs of one comparison.
struct CompareOptions {
  /// Only metrics whose name matches this glob are diffed.
  std::string metrics_glob = "*";
  /// When >= 0, overrides every tolerance's fail_pct (and sets warn_pct
  /// to half of it); spec directions and abs_slack still apply.
  double tolerance_override_pct = -1;
  /// Spec catalog consulted for per-metric tolerances; nullptr (or an
  /// unknown experiment) falls back to MetricTolerance{} defaults.
  const Registry* registry = nullptr;
};

/// One aligned metric comparison.
struct MetricDiff {
  std::string run_id;  ///< "aggregate" for timing documents
  std::string metric;
  double base = 0;
  double cand = 0;
  double abs_delta = 0;      ///< cand - base
  double rel_delta_pct = 0;  ///< signed; 0 when base == 0 (see note)
  Verdict verdict = Verdict::kPass;
  std::string note;          ///< why it warned/failed, or "improved"
};

/// A structural problem: missing/extra run, renamed metric, failed run,
/// schema or experiment mismatch.
struct Finding {
  Verdict verdict = Verdict::kFail;
  std::string run_id;  ///< empty for document-level findings
  std::string metric;  ///< empty for run-level findings
  std::string what;
};

/// Full outcome of one comparison.
struct CompareReport {
  std::string experiment;
  std::string kind;  ///< "sweep" or "timing"
  /// Labels for the text report only; never emitted into the verdict
  /// JSON (whose bytes must not depend on where the inputs lived).
  std::string baseline_origin;
  std::string candidate_origin;

  std::vector<MetricDiff> diffs;    ///< document order
  std::vector<Finding> findings;    ///< document order

  Verdict verdict() const;                 ///< max severity overall
  std::size_t count(Verdict v) const;      ///< diffs + findings at `v`
};

/// Diffs candidate against baseline.  Structural mismatches that make a
/// metric-level diff meaningless (schema_version, kind or experiment
/// mismatch) short-circuit into a single FAIL finding.
CompareReport compare_sweeps(const SweepDoc& baseline, const SweepDoc& cand,
                             const CompareOptions& options = {});

/// Shell-style glob over `text`: '*' = any run, '?' = any one char.
bool glob_match(const std::string& pattern, const std::string& text);

}  // namespace mmptcp::exp
