#include "exp/compare/compare.h"

#include <cmath>
#include <cstdio>
#include <map>

#include "exp/json.h"
#include "exp/sink.h"
#include "util/check.h"

namespace mmptcp::exp {

namespace {

std::string fmt_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return std::string(buf) + "%";
}

std::vector<std::pair<std::string, double>> metric_pairs(
    const JsonValue& obj, const std::string& origin) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, value] : obj.members()) {
    require(value.is_number(),
            origin + ": metric '" + name + "' is not a number");
    out.emplace_back(name, value.as_number());
  }
  return out;
}

SweepRun parse_run(const JsonValue& run, const std::string& origin) {
  SweepRun r;
  r.id = run.at("id").as_string();
  const JsonValue* ok = run.find("ok");
  r.ok = ok == nullptr || ok->as_bool();
  if (!r.ok) {
    const JsonValue* error = run.find("error");
    r.error = error != nullptr ? error->as_string() : "unknown error";
    return r;
  }
  if (const JsonValue* metrics = run.find("metrics")) {
    r.metrics = metric_pairs(*metrics, origin + " run " + r.id);
  } else {
    // Timing sidecar rows inline their metrics next to "id".
    for (const auto& [name, value] : run.members()) {
      if (value.is_number()) r.metrics.emplace_back(name, value.as_number());
    }
  }
  return r;
}

/// First tolerance whose pattern matches `metric`, with the CLI
/// override applied; MetricTolerance{} defaults otherwise.
MetricTolerance tolerance_for(const std::vector<MetricTolerance>& tolerances,
                              const std::string& metric,
                              const CompareOptions& options) {
  MetricTolerance tol;
  for (const MetricTolerance& t : tolerances) {
    if (glob_match(t.pattern, metric)) {
      tol = t;
      break;
    }
  }
  if (options.tolerance_override_pct >= 0) {
    tol.fail_pct = options.tolerance_override_pct;
    tol.warn_pct = options.tolerance_override_pct / 2;
  }
  return tol;
}

MetricDiff diff_one(const std::string& run_id, const std::string& metric,
                    double base, double cand, const MetricTolerance& tol) {
  MetricDiff d;
  d.run_id = run_id;
  d.metric = metric;
  d.base = base;
  d.cand = cand;
  d.abs_delta = cand - base;
  d.rel_delta_pct =
      base != 0 ? d.abs_delta / std::fabs(base) * 100.0 : 0.0;

  if (std::fabs(d.abs_delta) <= tol.abs_slack) {
    return d;  // PASS: within absolute slack (covers the == case)
  }
  using Direction = MetricTolerance::Direction;
  if ((tol.direction == Direction::kHigherIsWorse && d.abs_delta < 0) ||
      (tol.direction == Direction::kLowerIsWorse && d.abs_delta > 0)) {
    d.note = "improved";
    return d;
  }
  if (base == 0) {
    d.verdict = Verdict::kFail;
    d.note = "baseline is 0 and |delta| exceeds abs_slack";
    return d;
  }
  const double magnitude_pct = std::fabs(d.rel_delta_pct);
  if (magnitude_pct > tol.fail_pct) {
    d.verdict = Verdict::kFail;
    d.note = fmt_pct(magnitude_pct) + " > fail tolerance " +
             fmt_pct(tol.fail_pct);
  } else if (magnitude_pct > tol.warn_pct) {
    d.verdict = Verdict::kWarn;
    d.note = fmt_pct(magnitude_pct) + " > warn tolerance " +
             fmt_pct(tol.warn_pct);
  }
  return d;
}

/// Diffs one aligned metric list (one run, or the timing aggregate).
void diff_metrics(const std::string& run_id,
                  const std::vector<std::pair<std::string, double>>& base,
                  const std::vector<std::pair<std::string, double>>& cand,
                  const std::vector<MetricTolerance>& tolerances,
                  const CompareOptions& options, CompareReport& report) {
  std::map<std::string, double> cand_by_name(cand.begin(), cand.end());
  for (const auto& [name, base_value] : base) {
    if (!glob_match(options.metrics_glob, name)) continue;
    const auto it = cand_by_name.find(name);
    if (it == cand_by_name.end()) {
      report.findings.push_back({Verdict::kFail, run_id, name,
                                 "metric missing from candidate"});
      continue;
    }
    report.diffs.push_back(
        diff_one(run_id, name, base_value, it->second,
                 tolerance_for(tolerances, name, options)));
  }
  std::map<std::string, bool> base_names;
  for (const auto& [name, value] : base) {
    (void)value;
    base_names[name] = true;
  }
  for (const auto& [name, value] : cand) {
    (void)value;
    if (!glob_match(options.metrics_glob, name)) continue;
    if (base_names.find(name) == base_names.end()) {
      report.findings.push_back(
          {Verdict::kWarn, run_id, name,
           "metric missing from baseline (new metric? refresh baselines)"});
    }
  }
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "PASS";
    case Verdict::kWarn: return "WARN";
    case Verdict::kFail: return "FAIL";
  }
  return "?";
}

bool glob_match(const std::string& pattern, const std::string& text) {
  std::size_t pi = 0, ti = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (ti < text.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '?' || pattern[pi] == text[ti])) {
      ++pi;
      ++ti;
    } else if (pi < pattern.size() && pattern[pi] == '*') {
      star = pi++;
      mark = ti;
    } else if (star != std::string::npos) {
      pi = star + 1;
      ti = ++mark;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '*') ++pi;
  return pi == pattern.size();
}

SweepDoc parse_sweep_doc(const std::string& json_text,
                         const std::string& origin) {
  const JsonValue root = json_parse(json_text, origin);
  require(root.is_object(), origin + ": result document is not an object");

  SweepDoc doc;
  if (const JsonValue* v = root.find("schema_version")) {
    doc.schema_version = static_cast<std::uint64_t>(v->as_number());
  }
  if (const JsonValue* v = root.find("kind")) {
    doc.kind = v->as_string();
  }
  // No "kind" member means a pre-versioning document; it keeps kind ""
  // and compare_sweeps rejects it on schema_version before kind ever
  // matters.
  doc.experiment = root.at("experiment").as_string();
  if (const JsonValue* runs = root.find("runs")) {
    for (const JsonValue& run : runs->items()) {
      doc.runs.push_back(parse_run(run, origin));
    }
  }
  if (const JsonValue* aggregate = root.find("aggregate")) {
    doc.aggregate = metric_pairs(*aggregate, origin + " aggregate");
  }
  return doc;
}

SweepDoc load_sweep_doc(const std::string& path) {
  return parse_sweep_doc(read_file(path), path);
}

Verdict CompareReport::verdict() const {
  Verdict worst = Verdict::kPass;
  for (const MetricDiff& d : diffs) {
    if (d.verdict > worst) worst = d.verdict;
  }
  for (const Finding& f : findings) {
    if (f.verdict > worst) worst = f.verdict;
  }
  return worst;
}

std::size_t CompareReport::count(Verdict v) const {
  std::size_t n = 0;
  for (const MetricDiff& d : diffs) {
    if (d.verdict == v) ++n;
  }
  for (const Finding& f : findings) {
    if (f.verdict == v) ++n;
  }
  return n;
}

CompareReport compare_sweeps(const SweepDoc& baseline, const SweepDoc& cand,
                             const CompareOptions& options) {
  CompareReport report;
  report.experiment = baseline.experiment;
  report.kind = baseline.kind;

  // Structural rejections: diffing across experiments, document kinds
  // or schema versions would grade apples against oranges.
  if (baseline.experiment != cand.experiment) {
    report.findings.push_back(
        {Verdict::kFail, "", "",
         "experiment mismatch: baseline '" + baseline.experiment +
             "' vs candidate '" + cand.experiment + "'"});
    return report;
  }
  // Schema before kind: a pre-versioning document parses with kind ""
  // and must be reported as stale, not as a kind clash.
  if (baseline.schema_version != cand.schema_version) {
    report.findings.push_back(
        {Verdict::kFail, "", "",
         "schema_version mismatch: baseline " +
             std::to_string(baseline.schema_version) + " vs candidate " +
             std::to_string(cand.schema_version) +
             " — refresh baselines (--update-baselines)"});
    return report;
  }
  if (baseline.schema_version != kResultSchemaVersion) {
    report.findings.push_back(
        {Verdict::kFail, "", "",
         "unsupported schema_version " +
             std::to_string(baseline.schema_version) +
             " (this binary reads version " +
             std::to_string(kResultSchemaVersion) + ")"});
    return report;
  }
  if (baseline.kind != cand.kind) {
    report.findings.push_back(
        {Verdict::kFail, "", "",
         "document kind mismatch: baseline '" + baseline.kind +
             "' vs candidate '" + cand.kind + "'"});
    return report;
  }
  if (baseline.kind != "sweep" && baseline.kind != "timing") {
    report.findings.push_back(
        {Verdict::kFail, "", "",
         "cannot compare documents of kind '" + baseline.kind +
             "' (expected a sweep JSON or a .timing.json sidecar)"});
    return report;
  }

  std::vector<MetricTolerance> tolerances;
  if (options.registry != nullptr) {
    if (const ExperimentSpec* spec =
            options.registry->find(baseline.experiment)) {
      tolerances = spec->tolerances;
    }
  }

  if (baseline.kind == "timing") {
    // Per-run wall-clock values are host noise; the trend signal is the
    // aggregate mean block.
    diff_metrics("aggregate", baseline.aggregate, cand.aggregate, tolerances,
                 options, report);
  } else {
    std::map<std::string, const SweepRun*> cand_by_id;
    for (const SweepRun& run : cand.runs) {
      cand_by_id[run.id] = &run;
    }
    std::map<std::string, bool> matched;
    for (const SweepRun& base_run : baseline.runs) {
      const auto it = cand_by_id.find(base_run.id);
      if (it == cand_by_id.end()) {
        report.findings.push_back(
            {Verdict::kFail, base_run.id, "", "run missing from candidate"});
        continue;
      }
      matched[base_run.id] = true;
      const SweepRun& cand_run = *it->second;
      if (base_run.ok && !cand_run.ok) {
        report.findings.push_back({Verdict::kFail, base_run.id, "",
                                   "run failed in candidate: " +
                                       cand_run.error});
        continue;
      }
      if (!base_run.ok && cand_run.ok) {
        report.findings.push_back(
            {Verdict::kWarn, base_run.id, "",
             "run failed in baseline but succeeds now — refresh baselines"});
        continue;
      }
      if (!base_run.ok && !cand_run.ok) {
        report.findings.push_back(
            {Verdict::kWarn, base_run.id, "", "run fails in both documents"});
        continue;
      }
      diff_metrics(base_run.id, base_run.metrics, cand_run.metrics,
                   tolerances, options, report);
    }
    for (const SweepRun& cand_run : cand.runs) {
      if (matched.find(cand_run.id) == matched.end()) {
        report.findings.push_back(
            {Verdict::kFail, cand_run.id, "", "run missing from baseline"});
      }
    }
  }

  // A gate that compared nothing must not green-light the build: empty
  // documents or a --metrics glob that matches no metric is a
  // misconfiguration, not a PASS.
  if (report.diffs.empty() && report.findings.empty()) {
    report.findings.push_back(
        {Verdict::kFail, "", "",
         "nothing was compared (empty documents, or --metrics matched no "
         "metric)"});
  }
  return report;
}

}  // namespace mmptcp::exp
