#pragma once

// Renderers for CompareReport: the human-readable text report the CLI
// prints, and the machine-readable verdict JSON the CI gate archives.
// The verdict JSON is deterministic — same report, same bytes — and
// deliberately carries no file paths, timestamps or host information.

#include <string>

#include "exp/compare/compare.h"

namespace mmptcp::exp {

/// Multi-section text report: header, per-metric diff table, structural
/// findings, and a one-line summary ("12 PASS, 1 WARN, 0 FAIL -> WARN").
std::string to_text_report(const CompareReport& report);

/// Compact verdict document (trailing newline):
///   {"schema_version":..,"kind":"verdict","experiment":..,
///    "compared_kind":"sweep","verdict":"FAIL",
///    "counts":{"pass":N,"warn":N,"fail":N},
///    "regressions":[{run,metric,severity,base,cand,delta,rel_pct,note}],
///    "findings":[{severity,run,metric,what}]}
/// `regressions` lists only WARN/FAIL metric diffs, in document order.
std::string to_verdict_json(const CompareReport& report);

}  // namespace mmptcp::exp
