#include "exp/spec.h"

#include "util/check.h"

namespace mmptcp::exp {

double RunOutcome::get(const std::string& name) const {
  for (const auto& [n, v] : metrics) {
    if (n == name) return v;
  }
  throw ConfigError("unknown metric: " + name);
}

std::function<std::vector<Axis>(const Scale&)> fixed_axes(
    std::vector<Axis> axes) {
  return [axes = std::move(axes)](const Scale&) { return axes; };
}

}  // namespace mmptcp::exp
