#include "exp/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>

#include "util/check.h"

namespace mmptcp::exp {

namespace {

std::vector<Axis> effective_axes(const ExperimentSpec& spec,
                                 const Scale& scale,
                                 const SweepOptions& options) {
  std::vector<Axis> axes = spec.axes(scale);
  for (const Axis& override_axis : options.axis_overrides) {
    bool found = false;
    for (Axis& axis : axes) {
      if (axis.name == override_axis.name) {
        axis.values = override_axis.values;
        found = true;
        break;
      }
    }
    if (!found) {
      // A typo in --set must not silently run the wrong sweep: name the
      // valid parameters so the caller can fix the invocation.
      std::string valid;
      for (const Axis& axis : axes) {
        if (!valid.empty()) valid += ", ";
        valid += axis.name;
      }
      throw ConfigError("experiment " + spec.name + " has no axis named '" +
                        override_axis.name + "' (valid --set parameters: " +
                        (valid.empty() ? "none — this experiment sweeps nothing"
                                       : valid) +
                        ")");
    }
  }
  return axes;
}

// Expansion with `scale` already adjusted by the spec.
std::vector<RunRecord> expand_adjusted(const ExperimentSpec& spec,
                                       const Scale& scale,
                                       const SweepOptions& options) {
  const std::vector<std::uint64_t>& seeds =
      options.seeds.empty() ? spec.seeds : options.seeds;
  require(!seeds.empty(), "empty seed list");

  require(options.shard_count >= 1, "--shard needs a shard count >= 1");
  if (options.shard_index >= options.shard_count) {
    throw ConfigError("shard index " + std::to_string(options.shard_index) +
                      " is out of range for " +
                      std::to_string(options.shard_count) +
                      " shards (valid: 0.." +
                      std::to_string(options.shard_count - 1) + ")");
  }

  std::vector<RunRecord> records;
  std::size_t index = 0;
  for (const ParamSet& point : cartesian(effective_axes(spec, scale, options))) {
    for (const std::uint64_t seed : seeds) {
      if (index % options.shard_count == options.shard_index) {
        RunRecord rec;
        rec.params = point;
        rec.seed = seed;
        rec.index = index;
        rec.id = point.entries().empty()
                     ? "seed=" + std::to_string(seed)
                     : point.id() + "/seed=" + std::to_string(seed);
        records.push_back(std::move(rec));
      }
      ++index;
    }
  }
  if (options.shard_count > index) {
    // More shards than runs would leave some shard with an empty document
    // the merge step cannot distinguish from a broken run.  Refuse.
    throw ConfigError("cannot split " + std::to_string(index) + " run" +
                      (index == 1 ? "" : "s") + " of experiment " + spec.name +
                      " into " + std::to_string(options.shard_count) +
                      " shards; use at most " + std::to_string(index) +
                      " shards or widen the sweep (--seeds/--set)");
  }
  return records;
}

// Job-claim order: identity (= expansion order) unless the spec estimates
// per-point cost, in which case expected-longest-first.  stable_sort keeps
// equal-cost runs in expansion order, so specs without cost variation and
// single-job sweeps behave exactly as before.
std::vector<std::size_t> claim_order(const ExperimentSpec& spec,
                                     const Scale& scale,
                                     const std::vector<RunRecord>& records) {
  std::vector<std::size_t> order(records.size());
  std::iota(order.begin(), order.end(), 0);
  if (!spec.run_cost) return order;
  std::vector<double> cost(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    cost[i] = spec.run_cost(records[i].params, scale);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cost[a] > cost[b];
                   });
  return order;
}

}  // namespace

std::string trace_file_name(const std::string& spec_name,
                            const std::string& run_id) {
  std::string id = run_id;
  for (char& c : id) {
    const bool safe = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    if (!safe) c = '_';
  }
  return "TRACE_" + spec_name + "_" + id + ".jsonl";
}

Scale effective_scale(const ExperimentSpec& spec, Scale scale) {
  if (spec.adjust_scale) spec.adjust_scale(scale);
  return scale;
}

std::size_t sweep_size(const ExperimentSpec& spec, Scale scale,
                       const SweepOptions& options) {
  if (spec.adjust_scale) spec.adjust_scale(scale);
  std::size_t points = 1;
  for (const Axis& axis : effective_axes(spec, scale, options)) {
    points *= axis.values.size();
  }
  const std::size_t seed_count =
      options.seeds.empty() ? spec.seeds.size() : options.seeds.size();
  return points * seed_count;
}

std::vector<RunRecord> expand(const ExperimentSpec& spec, Scale scale,
                              const SweepOptions& options) {
  if (spec.adjust_scale) spec.adjust_scale(scale);
  return expand_adjusted(spec, scale, options);
}

std::vector<RunRecord> run_sweep(const ExperimentSpec& spec, Scale scale,
                                 const SweepOptions& options) {
  if (spec.adjust_scale) spec.adjust_scale(scale);
  std::vector<RunRecord> records = expand_adjusted(spec, scale, options);
  const std::vector<std::size_t> order = claim_order(spec, scale, records);

  const std::size_t total = records.size();
  std::size_t jobs = std::max<std::size_t>(1, std::min(options.jobs, total));
  const std::size_t hc = std::max(1u, std::thread::hardware_concurrency());
  // --sim-threads 0 = auto resolves to all hardware threads per run.
  const unsigned eff_sim_threads =
      options.sim_threads == 0 ? static_cast<unsigned>(hc)
                               : options.sim_threads;
  if (eff_sim_threads > 1) {
    // Keep jobs x sim_threads within the machine: each run's engine
    // spins up sim_threads workers, so concurrent runs multiply.
    jobs = std::max<std::size_t>(1, std::min(jobs, hc / eff_sim_threads));
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> completed{0};
  std::mutex progress_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t pos = cursor.fetch_add(1);
      if (pos >= total) return;
      RunRecord& rec = records[order[pos]];
      RunContext ctx;
      ctx.scale = scale;
      ctx.scale.seed = rec.seed;
      ctx.params = rec.params;
      ctx.seed = rec.seed;
      ctx.out_dir = options.out_dir;
      ctx.logger = options.logger;
      ctx.sim_threads = options.sim_threads;
      ctx.sim_domains = options.sim_domains;
      if (options.trace_channels != 0) {
        ctx.trace.channels = options.trace_channels;
        ctx.trace.interval = options.trace_interval;
        ctx.trace.path =
            (options.trace_dir.empty() ? options.out_dir : options.trace_dir) +
            "/" + trace_file_name(spec.name, rec.id);
        ctx.trace.experiment = spec.name;
        ctx.trace.run_id = rec.id;
        ctx.trace.seed = rec.seed;
      }
      options.logger.child("runner").log(LogLevel::kDebug, [&] {
        return spec.name + ": starting " + rec.id;
      });
      try {
        rec.outcome = spec.run(ctx);
      } catch (const std::exception& e) {
        rec.outcome = RunOutcome::failure(e.what());
      } catch (...) {
        rec.outcome = RunOutcome::failure("unknown error");
      }
      const std::size_t done = completed.fetch_add(1) + 1;
      if (options.on_progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        options.on_progress(done, total, rec.id, rec.outcome.ok);
      }
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return records;
}

}  // namespace mmptcp::exp
