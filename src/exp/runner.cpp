#include "exp/runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "util/check.h"

namespace mmptcp::exp {

namespace {

std::vector<Axis> effective_axes(const ExperimentSpec& spec,
                                 const Scale& scale,
                                 const SweepOptions& options) {
  std::vector<Axis> axes = spec.axes(scale);
  for (const Axis& override_axis : options.axis_overrides) {
    bool found = false;
    for (Axis& axis : axes) {
      if (axis.name == override_axis.name) {
        axis.values = override_axis.values;
        found = true;
        break;
      }
    }
    if (!found) {
      // A typo in --set must not silently run the wrong sweep: name the
      // valid parameters so the caller can fix the invocation.
      std::string valid;
      for (const Axis& axis : axes) {
        if (!valid.empty()) valid += ", ";
        valid += axis.name;
      }
      throw ConfigError("experiment " + spec.name + " has no axis named '" +
                        override_axis.name + "' (valid --set parameters: " +
                        (valid.empty() ? "none — this experiment sweeps nothing"
                                       : valid) +
                        ")");
    }
  }
  return axes;
}

// Expansion with `scale` already adjusted by the spec.
std::vector<RunRecord> expand_adjusted(const ExperimentSpec& spec,
                                       const Scale& scale,
                                       const SweepOptions& options) {
  const std::vector<std::uint64_t>& seeds =
      options.seeds.empty() ? spec.seeds : options.seeds;
  require(!seeds.empty(), "empty seed list");

  std::vector<RunRecord> records;
  for (const ParamSet& point : cartesian(effective_axes(spec, scale, options))) {
    for (const std::uint64_t seed : seeds) {
      RunRecord rec;
      rec.params = point;
      rec.seed = seed;
      rec.id = point.entries().empty()
                   ? "seed=" + std::to_string(seed)
                   : point.id() + "/seed=" + std::to_string(seed);
      records.push_back(std::move(rec));
    }
  }
  return records;
}

}  // namespace

std::string trace_file_name(const std::string& spec_name,
                            const std::string& run_id) {
  std::string id = run_id;
  for (char& c : id) {
    const bool safe = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    if (!safe) c = '_';
  }
  return "TRACE_" + spec_name + "_" + id + ".jsonl";
}

Scale effective_scale(const ExperimentSpec& spec, Scale scale) {
  if (spec.adjust_scale) spec.adjust_scale(scale);
  return scale;
}

std::size_t sweep_size(const ExperimentSpec& spec, Scale scale,
                       const SweepOptions& options) {
  if (spec.adjust_scale) spec.adjust_scale(scale);
  std::size_t points = 1;
  for (const Axis& axis : effective_axes(spec, scale, options)) {
    points *= axis.values.size();
  }
  const std::size_t seed_count =
      options.seeds.empty() ? spec.seeds.size() : options.seeds.size();
  return points * seed_count;
}

std::vector<RunRecord> expand(const ExperimentSpec& spec, Scale scale,
                              const SweepOptions& options) {
  if (spec.adjust_scale) spec.adjust_scale(scale);
  return expand_adjusted(spec, scale, options);
}

std::vector<RunRecord> run_sweep(const ExperimentSpec& spec, Scale scale,
                                 const SweepOptions& options) {
  if (spec.adjust_scale) spec.adjust_scale(scale);
  std::vector<RunRecord> records = expand_adjusted(spec, scale, options);

  const std::size_t total = records.size();
  const std::size_t jobs =
      std::max<std::size_t>(1, std::min(options.jobs, total));

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> completed{0};
  std::mutex progress_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t index = cursor.fetch_add(1);
      if (index >= total) return;
      RunRecord& rec = records[index];
      RunContext ctx;
      ctx.scale = scale;
      ctx.scale.seed = rec.seed;
      ctx.params = rec.params;
      ctx.seed = rec.seed;
      ctx.out_dir = options.out_dir;
      ctx.logger = options.logger;
      if (options.trace_channels != 0) {
        ctx.trace.channels = options.trace_channels;
        ctx.trace.interval = options.trace_interval;
        ctx.trace.path =
            (options.trace_dir.empty() ? options.out_dir : options.trace_dir) +
            "/" + trace_file_name(spec.name, rec.id);
        ctx.trace.experiment = spec.name;
        ctx.trace.run_id = rec.id;
        ctx.trace.seed = rec.seed;
      }
      options.logger.child("runner").log(LogLevel::kDebug, [&] {
        return spec.name + ": starting " + rec.id;
      });
      try {
        rec.outcome = spec.run(ctx);
      } catch (const std::exception& e) {
        rec.outcome = RunOutcome::failure(e.what());
      } catch (...) {
        rec.outcome = RunOutcome::failure("unknown error");
      }
      const std::size_t done = completed.fetch_add(1) + 1;
      if (options.on_progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        options.on_progress(done, total, rec.id, rec.outcome.ok);
      }
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return records;
}

}  // namespace mmptcp::exp
