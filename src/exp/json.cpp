#include "exp/json.h"

#include <cmath>
#include <cstdio>

namespace mmptcp::exp {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  // Range check first: casting an out-of-range double to int64 is UB.
  if (std::fabs(v) < 1e15 &&
      v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma();
  out_ += '"' + json_escape(name) + "\":";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  comma();
  out_ += '"' + json_escape(s) + '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) {
  return value(std::string(s));
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ += json_number(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  need_comma_ = true;
  return *this;
}

}  // namespace mmptcp::exp
