#include "exp/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace mmptcp::exp {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  // Range check first: casting an out-of-range double to int64 is UB.
  if (std::fabs(v) < 1e15 &&
      v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma();
  out_ += '"' + json_escape(name) + "\":";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  comma();
  out_ += '"' + json_escape(s) + '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) {
  return value(std::string(s));
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ += json_number(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  comma();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

// ----------------------------------------------------------- JsonValue

bool JsonValue::as_bool() const {
  require(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  require(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  require(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  require(kind_ == Kind::kArray, "JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  require(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  require(v != nullptr, "JSON object has no member '" + key + "'");
  return *v;
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

void JsonValue::add_member(std::string key, JsonValue v) {
  require(kind_ == Kind::kObject, "add_member on a non-object JSON value");
  members_.emplace_back(std::move(key), std::move(v));
}

void JsonValue::add_item(JsonValue v) {
  require(kind_ == Kind::kArray, "add_item on a non-array JSON value");
  items_.push_back(std::move(v));
}

// -------------------------------------------------------------- parser

namespace {

/// Recursive-descent parser over a complete in-memory document.
class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    require(pos_ == text_.size(),
            origin_ + ": trailing characters after JSON document at offset " +
                std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ConfigError(origin_ + ": " + what + " at offset " +
                      std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        fail("invalid literal");
      default: return JsonValue::number(parse_number());
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      std::string key = parse_string();
      expect(':');
      obj.add_member(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.add_item(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // The writer only emits \u00XX (control characters); reject
          // anything wider rather than mis-decode it.
          if (code > 0xff) fail("unsupported \\u escape beyond Latin-1");
          out += static_cast<char>(code);
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
    fail("unterminated string");
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    const char* begin = token.c_str();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0') {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
    return v;
  }

  const std::string& text_;
  const std::string& origin_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text, const std::string& origin) {
  return JsonParser(text, origin).parse_document();
}

void json_emit(const JsonValue& v, JsonWriter& w) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      w.value_null();
      break;
    case JsonValue::Kind::kBool:
      w.value(v.as_bool());
      break;
    case JsonValue::Kind::kNumber:
      w.value(v.as_number());
      break;
    case JsonValue::Kind::kString:
      w.value(v.as_string());
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [key, member] : v.members()) {
        w.key(key);
        json_emit(member, w);
      }
      w.end_object();
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& item : v.items()) json_emit(item, w);
      w.end_array();
      break;
  }
}

}  // namespace mmptcp::exp
