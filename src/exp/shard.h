#pragma once

// Sharded sweeps: split one experiment's (grid point x seed) run set
// across machines and recombine the pieces.
//
// `--shard i/N` makes an invocation execute only the runs whose global
// expansion index is congruent to i mod N, and write a kind="sweep_shard"
// document carrying each run's index and serialised quantile sketches.
// `--merge` validates that all N shards of the same sweep are present,
// interleaves the runs back into expansion order, and re-emits the
// kind="sweep" document byte-identical to what a single unsharded
// invocation would have written: the header round-trips through the
// deterministic JSON parser/writer, run objects are re-emitted with the
// shard-only fields stripped, and the "aggregates" section is recomputed
// by merging the deserialised sketches in the same global order the
// unsharded sink uses.

#include <cstddef>
#include <string>
#include <vector>

namespace mmptcp::exp {

/// Parsed `--shard i/N` argument.
struct ShardSpec {
  std::size_t index = 0;  ///< this invocation's shard, 0-based
  std::size_t count = 1;  ///< total shards
};

/// Parses "i/N" (e.g. "0/3").  Throws ConfigError on anything else:
/// malformed text, N = 0, or i >= N.
ShardSpec parse_shard_spec(const std::string& text);

/// One shard document plus where it came from (for error messages).
struct ShardDoc {
  std::string origin;  ///< file path or test label
  std::string text;    ///< full document content
};

/// Merges all N kind="sweep_shard" documents of one sweep into the
/// kind="sweep" document the unsharded run would have produced,
/// byte-for-byte.  Throws ConfigError when the inputs are not a complete,
/// consistent shard set: wrong kind, mixed experiments or scales, stale
/// schema versions, duplicate or missing shards, or runs that do not
/// cover exactly 0..runs_total-1.
std::string merge_shard_docs(const std::vector<ShardDoc>& shards);

/// Merges kind="timing_shard" sidecars into a kind="timing" document
/// (runs in expansion order, aggregate means recomputed).  Only
/// structurally comparable to an unsharded sidecar — wall-clock values
/// legitimately differ run by run.  Shards whose runs reported no
/// timings have no sidecar; pass only the ones that exist.  Returns ""
/// when `shards` is empty.
std::string merge_timing_docs(const std::vector<ShardDoc>& shards);

}  // namespace mmptcp::exp
