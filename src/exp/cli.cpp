#include "exp/cli.h"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "exp/analyze/analyze.h"
#include "exp/compare/compare.h"
#include "exp/compare/report.h"
#include "exp/registry.h"
#include "exp/runner.h"
#include "exp/shard.h"
#include "exp/sink.h"
#include "sim/time.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace mmptcp::exp {

namespace {

/// Parses "--set a=1,2;b=x" into axis overrides.
std::vector<Axis> parse_axis_overrides(const std::string& text) {
  std::vector<Axis> out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t semi = text.find(';', start);
    const std::size_t end = semi == std::string::npos ? text.size() : semi;
    const std::string item = text.substr(start, end - start);
    const std::size_t eq = item.find('=');
    require(eq != std::string::npos && eq > 0,
            "--set expects axis=v1,v2[;axis2=...], got: " + item);
    Axis axis{item.substr(0, eq), {}};
    std::size_t vstart = eq + 1;
    while (vstart <= item.size()) {
      const std::size_t comma = item.find(',', vstart);
      const std::size_t vend =
          comma == std::string::npos ? item.size() : comma;
      axis.values.push_back(item.substr(vstart, vend - vstart));
      if (comma == std::string::npos) break;
      vstart = comma + 1;
    }
    require(!axis.values.empty(), "--set axis with no values: " + item);
    out.push_back(std::move(axis));
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return out;
}

struct CliOptions {
  Scale scale;
  SweepOptions sweep;
  std::string out_dir = ".";
  std::string baselines_dir;  ///< --update-baselines: also write here
  bool quiet = false;
  bool no_json = false;
};

/// Reads the engine + scale flags shared by mmptcp_exp and the wrappers.
CliOptions parse_cli(Flags& flags) {
  CliOptions o;
  o.scale = parse_scale(flags);
  o.sweep.jobs = static_cast<std::size_t>(
      flags.get_int("jobs", 1, "worker threads for the sweep"));
  require(o.sweep.jobs >= 1, "--jobs must be >= 1");
  const long long sim_threads = flags.get_int(
      "sim-threads", 1,
      "worker threads inside each run (domain-parallel event execution; "
      "0 = auto, i.e. all hardware threads clamped to the domain count; "
      "results are byte-identical at any value)");
  require(sim_threads >= 0, "--sim-threads must be >= 0 (0 = auto)");
  o.sweep.sim_threads = static_cast<unsigned>(sim_threads);
  o.sweep.sim_domains = flags.get_string(
      "sim-domains", "pod",
      "domain decomposition granularity: 'pod' (one domain per pod) or "
      "'edge' (one domain per edge switch + per-pod fabric domains); "
      "results are byte-identical at either value");
  require(o.sweep.sim_domains == "pod" || o.sweep.sim_domains == "edge",
          "--sim-domains must be 'pod' or 'edge', got '" +
              o.sweep.sim_domains + "'");
  const std::string seeds = flags.get_string(
      "seeds", "", "seed list: '7', '1,2,5' or '1..10' (default: --seed)");
  o.sweep.seeds = seeds.empty() ? std::vector<std::uint64_t>{o.scale.seed}
                                : parse_seed_list(seeds);
  const std::string overrides = flags.get_string(
      "set", "", "replace axis values: 'axis=v1,v2[;axis2=...]'");
  if (!overrides.empty()) {
    o.sweep.axis_overrides = parse_axis_overrides(overrides);
  }
  const std::string shard = flags.get_string(
      "shard", "",
      "run only shard i of N ('i/N'); writes BENCH_*.shard<i>of<N>.json "
      "for --merge");
  if (!shard.empty()) {
    const ShardSpec spec = parse_shard_spec(shard);
    o.sweep.shard_index = spec.index;
    o.sweep.shard_count = spec.count;
  }
  o.out_dir = flags.get_string("out", ".", "directory for BENCH_*.json");
  o.baselines_dir = flags.get_string(
      "update-baselines", "",
      "with --run: also write BENCH_*.json into this baseline directory");
  o.quiet = flags.get_bool("quiet", false, "suppress progress lines");
  o.no_json = flags.get_bool("no-json", false, "skip the JSON result file");
  const std::string trace = flags.get_string(
      "trace", "",
      "flight recorder channels: 'queue,cwnd,phase,retx,sched' or 'all'");
  const std::string trace_out = flags.get_string(
      "trace-out", "", "directory for TRACE_*.jsonl (default: --out)");
  const std::string trace_interval = flags.get_string(
      "trace-interval", "1ms", "queue/sched sampling period, e.g. 500us");
  const std::string log_level = flags.get_string(
      "log-level", "off", "stderr logging: off|error|warn|info|debug|trace");
  if (!trace.empty()) {
    if (o.sweep.sim_threads != 1) {
      // The scenario would force one worker anyway (the windowed schedule
      // — and the trace — is identical either way); fail loudly instead
      // of silently ignoring the requested parallelism.  0 (auto) counts:
      // it resolves to all hardware threads.
      throw ConfigError(
          "--trace cannot be combined with --sim-threads != 1: tracing "
          "runs the windowed schedule on one worker; drop one of the two");
    }
    o.sweep.trace_channels = parse_trace_channels(trace);
    o.sweep.trace_interval = parse_duration(trace_interval);
    if (o.sweep.trace_interval.ns() <= 0) {
      throw ConfigError("--trace-interval must be positive, got '" +
                        trace_interval + "'");
    }
    o.sweep.trace_dir = trace_out;
  }
  const LogLevel level = parse_log_level(log_level);
  if (level != LogLevel::kOff) {
    o.sweep.logger = make_stderr_logger(level);
  }
  return o;
}

void print_spec_preamble(const ExperimentSpec& spec, const Scale& scale,
                         std::size_t runs, std::size_t jobs) {
  std::printf("== %s ==\n", spec.name.c_str());
  std::printf("reproduces: %s\n", spec.artefact.c_str());
  std::printf(
      "scale: %s (k=%u, %u:1 oversubscribed, %u shorts of %llu B, "
      "%.1f arrivals/s/host)\n",
      scale.full ? "FULL (paper)" : "reduced (use --full for paper scale)",
      scale.k, scale.oversubscription, scale.shorts,
      static_cast<unsigned long long>(scale.short_bytes),
      scale.rate_per_host);
  std::printf("sweep: %zu runs on %zu thread(s)\n\n", runs, jobs);
}

/// Runs one spec end to end; returns the number of failed runs.
std::size_t run_one(const ExperimentSpec& spec, const CliOptions& cli) {
  SweepOptions sweep = cli.sweep;
  sweep.out_dir = cli.out_dir;
  const bool sharded = sweep.shard_count > 1;
  require(!sharded || cli.baselines_dir.empty(),
          "--update-baselines cannot be combined with --shard: merge the "
          "shards first (--merge ... --report), then refresh baselines from "
          "an unsharded run");
  const Scale scale = effective_scale(spec, cli.scale);
  const std::size_t total = sweep_size(spec, cli.scale, sweep);
  // Expansion validates the shard spec against the run count (and throws
  // a clear error instead of producing an empty document).
  const std::size_t mine =
      sharded ? expand(spec, cli.scale, sweep).size() : total;
  print_spec_preamble(spec, scale, mine,
                      std::max<std::size_t>(1, std::min(sweep.jobs, mine)));
  if (sharded) {
    std::printf("shard: %zu/%zu (%zu of %zu runs)\n\n", sweep.shard_index,
                sweep.shard_count, mine, total);
  }
  if (!cli.quiet) {
    sweep.on_progress = [](std::size_t done, std::size_t all,
                           const std::string& id, bool ok) {
      std::fprintf(stderr, "  [%zu/%zu] %s %s\n", done, all, id.c_str(),
                   ok ? "done" : "FAILED");
    };
  }

  const std::vector<RunRecord> records = run_sweep(spec, cli.scale, sweep);

  if (sweep.trace_channels != 0) {
    std::printf("traces: %s/TRACE_%s_*.jsonl (channels: %s)\n",
                (sweep.trace_dir.empty() ? cli.out_dir : sweep.trace_dir)
                    .c_str(),
                spec.name.c_str(),
                trace_channels_to_string(sweep.trace_channels).c_str());
  }
  std::printf("%s\n", to_table(records).to_string().c_str());
  if (sweep.seeds.size() > 1) {
    std::printf("aggregated over %zu seeds:\n%s\n", sweep.seeds.size(),
                to_aggregate_table(records).to_string().c_str());
  }
  if (!spec.notes.empty()) std::printf("%s\n", spec.notes.c_str());

  // --update-baselines works even under --no-json (the baseline copy is
  // the point of that invocation).
  if (!cli.no_json || !cli.baselines_dir.empty()) {
    const std::string stem =
        "BENCH_" + spec.name +
        (sharded ? ".shard" + std::to_string(sweep.shard_index) + "of" +
                       std::to_string(sweep.shard_count)
                 : "");
    const std::string json =
        sharded ? to_shard_json(spec, scale, records, sweep.shard_index,
                                sweep.shard_count, total)
                : to_json(spec, scale, records);
    // Wall-clock metrics (events/s) go in a sidecar so the main JSON
    // stays byte-identical across hosts and --jobs values.
    const std::string timing =
        sharded ? to_shard_timing_json(spec, records, sweep.shard_index,
                                       sweep.shard_count, total)
                : to_timing_json(spec, records);
    if (!cli.no_json) {
      const std::string path = cli.out_dir + "/" + stem + ".json";
      write_file(path, json);
      std::printf("json: %s\n", path.c_str());
      if (!timing.empty()) {
        const std::string tpath = cli.out_dir + "/" + stem + ".timing.json";
        write_file(tpath, timing);
        std::printf("timing json: %s\n", tpath.c_str());
      }
    }
    if (!cli.baselines_dir.empty()) {
      const std::string bpath =
          cli.baselines_dir + "/BENCH_" + spec.name + ".json";
      write_file(bpath, json);
      std::printf("baseline updated: %s\n", bpath.c_str());
      if (!timing.empty()) {
        const std::string btpath =
            cli.baselines_dir + "/BENCH_" + spec.name + ".timing.json";
        write_file(btpath, timing);
        std::printf("baseline updated: %s\n", btpath.c_str());
      }
    }
  }
  std::printf("\n");

  std::size_t failures = 0;
  for (const RunRecord& rec : records) {
    if (!rec.outcome.ok) ++failures;
  }
  return failures;
}

int list_experiments(const std::string& filter) {
  const auto specs = Registry::global().match(filter);
  Table table({"name", "artefact", "description"});
  for (const ExperimentSpec* spec : specs) {
    table.add_row({spec->name, spec->artefact, spec->description});
  }
  std::printf("%s\n%zu experiment(s). Run one with: mmptcp_exp --run "
              "<name> [--jobs N] [--seeds 1..10]\n",
              table.to_string().c_str(), specs.size());
  return 0;
}

/// --compare-mode flags, read up front so --help lists them too.
struct CompareCliOptions {
  std::string metrics_glob;
  double tolerance = -1;
  std::string report_path;
  bool warn_only = false;
};

CompareCliOptions parse_compare_cli(Flags& flags) {
  CompareCliOptions o;
  o.metrics_glob = flags.get_string(
      "metrics", "*", "with --compare: only diff metrics matching this glob");
  o.tolerance = flags.get_double(
      "tolerance", -1,
      "with --compare: override fail tolerance (%); warn at half of it");
  o.report_path = flags.get_string(
      "report", "", "with --compare: write the verdict JSON here");
  o.warn_only = flags.get_bool(
      "warn-only", false,
      "with --compare: report FAILs but exit 0 (trend-only gates)");
  return o;
}

/// `--compare baseline.json candidate.json`: diff two result documents
/// and gate on the verdict.  Returns 0 on PASS/WARN, 1 on FAIL (0 with
/// --warn-only), 2 on unusable inputs.
int compare_documents(const std::string& baseline_path,
                      const CompareCliOptions& copts, Flags& flags) {
  const std::vector<std::string>& positionals = flags.positionals();
  require(positionals.size() == 1,
          "--compare expects exactly two documents: --compare "
          "baseline.json candidate.json");
  const std::string candidate_path = positionals.front();
  flags.check_unknown();

  CompareOptions options;
  options.metrics_glob = copts.metrics_glob;
  options.tolerance_override_pct = copts.tolerance;
  options.registry = &Registry::global();

  CompareReport report = compare_sweeps(load_sweep_doc(baseline_path),
                                        load_sweep_doc(candidate_path),
                                        options);
  report.baseline_origin = baseline_path;
  report.candidate_origin = candidate_path;

  std::fputs(to_text_report(report).c_str(), stdout);
  if (!copts.report_path.empty()) {
    write_file(copts.report_path, to_verdict_json(report));
    std::printf("verdict json: %s\n", copts.report_path.c_str());
  }
  if (report.verdict() == Verdict::kFail) {
    std::fprintf(stderr, "%s: regression detected%s\n",
                 report.experiment.c_str(),
                 copts.warn_only ? " (ignored: --warn-only)" : "");
    return copts.warn_only ? 0 : 1;
  }
  return 0;
}

/// "x.json" -> "x.timing.json" (the sidecar naming both the sharded and
/// unsharded writers use).
std::string timing_sibling(const std::string& path) {
  const std::string suffix = ".json";
  if (path.size() > suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return path.substr(0, path.size() - suffix.size()) + ".timing.json";
  }
  return path + ".timing.json";
}

bool try_read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  *out = read_file(path);
  return true;
}

/// `--merge shard0.json shard1.json ... --report merged.json`: recombine
/// one sweep's shard documents into the unsharded result (byte-identical
/// to a single-machine run) plus a merged timing sidecar next to the
/// report.  Returns 0 on success, 2 on unusable inputs.
int merge_documents(const std::string& first_path,
                    const CompareCliOptions& copts, Flags& flags) {
  std::vector<std::string> paths{first_path};
  for (const std::string& p : flags.positionals()) paths.push_back(p);
  flags.check_unknown();
  require(!copts.report_path.empty(),
          "--merge needs --report <merged.json> for the output path");

  std::vector<ShardDoc> docs;
  docs.reserve(paths.size());
  for (const std::string& path : paths) {
    docs.push_back(ShardDoc{path, read_file(path)});
  }
  write_file(copts.report_path, merge_shard_docs(docs));
  std::printf("merged json: %s\n", copts.report_path.c_str());

  // Timing sidecars are optional (a shard whose runs reported no
  // wall-clock metrics writes none); merge whichever exist.
  std::vector<ShardDoc> timing_docs;
  for (const std::string& path : paths) {
    const std::string tpath = timing_sibling(path);
    std::string text;
    if (try_read_file(tpath, &text)) {
      timing_docs.push_back(ShardDoc{tpath, std::move(text)});
    }
  }
  const std::string timing = merge_timing_docs(timing_docs);
  if (!timing.empty()) {
    const std::string tpath = timing_sibling(copts.report_path);
    write_file(tpath, timing);
    std::printf("merged timing json: %s\n", tpath.c_str());
  }
  return 0;
}

/// `--analyze results.json`: flow-time attribution report (optionally
/// joined with TRACE_*.jsonl streams from --trace-dir).
int analyze_document(const std::string& results_path,
                     const std::string& trace_dir,
                     const std::string& report_path) {
  const AnalysisReport report = analyze_results(results_path, trace_dir);
  std::fputs(report.text.c_str(), stdout);
  if (!report_path.empty()) {
    write_file(report_path, report.json);
    std::printf("report json: %s\n", report_path.c_str());
  }
  return 0;
}

const char* direction_name(MetricTolerance::Direction d) {
  switch (d) {
    case MetricTolerance::Direction::kHigherIsWorse:
      return "higher-is-worse";
    case MetricTolerance::Direction::kLowerIsWorse:
      return "lower-is-worse";
    default:
      return "both";
  }
}

int describe_experiment(const std::string& name, const Scale& scale) {
  const ExperimentSpec* spec = Registry::global().find(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown experiment: %s (try --list)\n",
                 name.c_str());
    return 2;
  }
  std::printf("%s — %s\n%s\n\n", spec->name.c_str(),
              spec->artefact.c_str(), spec->description.c_str());
  Scale adjusted = scale;
  if (spec->adjust_scale) spec->adjust_scale(adjusted);
  Table axes({"axis", "values"});
  for (const Axis& axis : spec->axes(adjusted)) {
    std::string values;
    for (const std::string& v : axis.values) {
      if (!values.empty()) values += ", ";
      values += v;
    }
    axes.add_row({axis.name, values});
  }
  std::printf("%s\n", axes.to_string().c_str());
  std::printf("runs per seed: %zu (seed list comes from --seed/--seeds)\n",
              cartesian(spec->axes(adjusted)).size());
  if (!spec->tolerances.empty()) {
    std::printf("\nregression tolerances (--compare gates; first matching "
                "pattern wins):\n");
    Table tol({"pattern", "warn%", "fail%", "abs_slack", "direction"});
    for (const MetricTolerance& t : spec->tolerances) {
      tol.add_row({t.pattern, Table::num(t.warn_pct, 2),
                   Table::num(t.fail_pct, 2), Table::num(t.abs_slack, 4),
                   direction_name(t.direction)});
    }
    std::printf("%s", tol.to_string().c_str());
    std::printf("unlisted metrics gate at the defaults: warn %.2f%%, fail "
                "%.2f%%, direction both\n",
                MetricTolerance{}.warn_pct, MetricTolerance{}.fail_pct);
  }
  if (!spec->notes.empty()) std::printf("\n%s\n", spec->notes.c_str());
  return 0;
}

}  // namespace

int exp_main(int argc, char** argv) {
  try {
    register_builtin_experiments();
    Flags flags(argc, argv);
    const bool list = flags.get_bool("list", false, "list experiments");
    const std::string describe =
        flags.get_string("describe", "", "show one experiment's axes");
    const std::string run = flags.get_string(
        "run", "", "run experiments matching this name/substring");
    const std::string compare = flags.get_string(
        "compare", "",
        "diff this baseline result JSON against a candidate "
        "(--compare base.json cand.json)");
    const std::string merge = flags.get_string(
        "merge", "",
        "recombine shard documents into the unsharded sweep result "
        "(--merge shard0.json shard1.json ... --report merged.json)");
    const std::string analyze = flags.get_string(
        "analyze", "",
        "flow-time attribution report for this sweep result JSON "
        "(--analyze BENCH_x.json [--trace-dir d] [--report out.json])");
    const std::string trace_dir = flags.get_string(
        "trace-dir", "",
        "with --analyze: directory holding the sweep's TRACE_*.jsonl");
    const std::string filter = flags.get_string(
        "filter", "", "with --list: only names containing this");
    const CompareCliOptions copts = parse_compare_cli(flags);
    CliOptions cli = parse_cli(flags);
    if (flags.help_requested()) {
      std::fputs(flags.help(argv[0]).c_str(), stdout);
      return 0;
    }
    if (!compare.empty()) {
      // compare_documents reads the positional candidate path before
      // check_unknown.
      return compare_documents(compare, copts, flags);
    }
    if (!merge.empty()) {
      // merge_documents reads the positional shard paths before
      // check_unknown.
      return merge_documents(merge, copts, flags);
    }
    flags.check_unknown();

    if (!analyze.empty()) {
      return analyze_document(analyze, trace_dir, copts.report_path);
    }

    if (list) return list_experiments(filter);
    if (!describe.empty()) return describe_experiment(describe, cli.scale);
    if (run.empty()) {
      std::fputs("nothing to do: pass --list, --describe <name> or "
                 "--run <filter> (see --help)\n",
                 stderr);
      return 2;
    }

    const auto specs = Registry::global().match(run);
    if (specs.empty()) {
      std::fprintf(stderr, "no experiment matches '%s' (try --list)\n",
                   run.c_str());
      return 2;
    }
    std::size_t failures = 0;
    for (const ExperimentSpec* spec : specs) {
      failures += run_one(*spec, cli);
    }
    if (failures > 0) {
      std::fprintf(stderr, "%zu run(s) failed\n", failures);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

int run_registered_main(const std::string& name, int argc, char** argv) {
  try {
    register_builtin_experiments();
    Flags flags(argc, argv);
    CliOptions cli = parse_cli(flags);
    if (flags.help_requested()) {
      std::fputs(flags.help(argv[0]).c_str(), stdout);
      return 0;
    }
    flags.check_unknown();

    const ExperimentSpec* spec = Registry::global().find(name);
    check(spec != nullptr, "bench wrapper names unknown spec: " + name);
    return run_one(*spec, cli) == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

}  // namespace mmptcp::exp
