#pragma once

// Minimal deterministic JSON emission for the result sink.
//
// The writer produces the same bytes for the same values on every
// platform and at every thread count: keys are emitted in insertion
// order, doubles with a fixed shortest-round-trip format, and there is
// no timestamp or host information anywhere in the output.

#include <cstdint>
#include <string>

namespace mmptcp::exp {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string json_escape(const std::string& s);

/// Canonical number rendering: integers without a decimal point,
/// everything else via shortest round-trip ("%.17g" trimmed).
std::string json_number(double v);

/// Streaming writer for objects/arrays; produces compact single-line
/// output with deterministic byte content.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a named member inside an object (call before a value/open).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool b);

  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace mmptcp::exp
