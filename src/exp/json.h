#pragma once

// Minimal deterministic JSON emission and parsing for the result sink
// and the compare subsystem.
//
// The writer produces the same bytes for the same values on every
// platform and at every thread count: keys are emitted in insertion
// order, doubles with a fixed shortest-round-trip format, and there is
// no timestamp or host information anywhere in the output.  The parser
// reads those documents back (plus anything else in the JSON grammar,
// minus \uXXXX escapes beyond Latin-1) with object members kept in
// document order, so parse -> re-emit round-trips byte-identically.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mmptcp::exp {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string json_escape(const std::string& s);

/// Canonical number rendering: integers without a decimal point,
/// everything else via shortest round-trip ("%.17g" trimmed).
std::string json_number(double v);

/// Streaming writer for objects/arrays; produces compact single-line
/// output with deterministic byte content.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a named member inside an object (call before a value/open).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool b);
  JsonWriter& value_null();

  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  bool need_comma_ = false;
};

/// Parsed JSON value.  Object members preserve document order (the
/// writer emits insertion order, and the compare subsystem's verdicts
/// must not depend on a hash seed or locale).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Typed accessors; throw ConfigError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws ConfigError when absent.
  const JsonValue& at(const std::string& key) const;

  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue object();
  static JsonValue array();

  /// Builders (valid on kObject / kArray respectively).
  void add_member(std::string key, JsonValue v);
  void add_item(JsonValue v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> items_;
};

/// Parses one JSON document; throws ConfigError (with `origin` in the
/// message) on syntax errors or trailing garbage.
JsonValue json_parse(const std::string& text,
                     const std::string& origin = "<json>");

/// Re-emits a parsed value through `w`.  For documents our writer
/// produced this is byte-identical to the original text (members keep
/// document order, and json_number is a fixed point on its own output),
/// which is what lets the shard merge tool rebuild an unsharded sweep
/// document exactly.
void json_emit(const JsonValue& v, JsonWriter& w);

}  // namespace mmptcp::exp
