#include "exp/perf_micro.h"

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "sim/simulation.h"

namespace mmptcp::exp {

namespace {

using Dir = MetricTolerance::Direction;

/// Deterministic 64-bit LCG (identical on every platform, unlike
/// std::minstd_rand's distribution helpers).
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

/// Node that forwards every arrival straight out its only egress port,
/// so injected packets circulate a ring forever: the Port/Channel/
/// Scheduler hot path with zero transport or stats machinery on top.
class Reflector final : public Node {
 public:
  using Node::Node;

  void receive(Packet pkt, std::size_t /*in_port*/) override {
    ++received_;
    port(0).enqueue(pkt);
  }

  std::uint64_t received() const { return received_; }

 private:
  std::uint64_t received_ = 0;
};

/// Ring of reflectors saturating every port: measures the link
/// serialisation -> channel propagation -> delivery event cycle.
RunOutcome run_link_churn(const RunContext& ctx) {
  constexpr std::size_t kNodes = 16;
  constexpr std::uint32_t kPacketsPerNode = 8;

  Simulation sim(ctx.seed);
  std::vector<std::unique_ptr<Reflector>> nodes;
  std::vector<std::unique_ptr<Channel>> channels;
  nodes.reserve(kNodes);
  channels.reserve(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<Reflector>(
        sim, static_cast<NodeId>(i), "r" + std::to_string(i)));
    channels.push_back(
        std::make_unique<Channel>(sim.scheduler(), Time::micros(5)));
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    channels[i]->attach_sink(nodes[(i + 1) % kNodes].get(), 0);
    // Unlimited queue: the ring is closed, so occupancy is bounded by
    // the injected packet count and nothing ever drops.
    nodes[i]->add_port(1'000'000'000, QueueLimits{.max_packets = 0},
                       channels[i].get(), LinkLayer::kOther);
  }

  Lcg rng{ctx.seed * 0x9E3779B97F4A7C15ULL + 1};
  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::uint32_t j = 0; j < kPacketsPerNode; ++j) {
      Packet pkt;
      pkt.payload = 100 + static_cast<std::uint32_t>(rng.next() % 1400);
      pkt.sport = static_cast<std::uint16_t>(j);
      pkt.dport = static_cast<std::uint16_t>(i);
      nodes[i]->port(0).enqueue(pkt);
    }
  }
  sim.scheduler().run_until(Time::millis(300));

  std::uint64_t tx = 0, delivered = 0, dropped = 0;
  for (const auto& node : nodes) {
    tx += node->port(0).counters().tx_packets;
    dropped += node->port(0).counters().dropped_packets;
    delivered += node->received();
  }
  RunOutcome o;
  o.set("events", double(sim.scheduler().executed()));
  o.set("tx_packets", double(tx));
  o.set("delivered", double(delivered));
  o.set("dropped", double(dropped));
  o.set("pending", double(sim.scheduler().pending()));
  return o;
}

/// One self-rescheduling timer chain with RTO-style arm/cancel churn.
struct Chain {
  Scheduler* sched = nullptr;
  Lcg rng{1};
  EventId far{};
  std::uint64_t fires = 0;
  std::uint64_t far_fires = 0;
  std::uint64_t checksum = 0;

  void fire() {
    ++fires;
    checksum = (checksum * 31 +
                static_cast<std::uint64_t>(sched->now().ns())) &
               0xFFFFFFFFULL;
    // RTO pattern: re-arm a far timer that almost never gets to run —
    // a heap insert plus an eager heap cancellation.
    if ((fires & 3) == 0) {
      sched->cancel(far);
      far = sched->schedule(
          Time::millis(150) +
              Time::nanos(static_cast<std::int64_t>(rng.next() % 1000000)),
          [this] { ++far_fires; });
    }
    // Mostly wheel-resident delays; every 64th fire jumps just past the
    // wheel horizon so the heap->wheel boundary is crossed constantly.
    Time delay =
        Time::nanos(1 + static_cast<std::int64_t>(rng.next() % 16000));
    if ((fires & 63) == 0) delay = Time::millis(5);
    sched->schedule(delay, [this] { fire(); });
  }
};

/// Timer churn on a bare Scheduler: no network objects at all.
RunOutcome run_timer_churn(const RunContext& ctx) {
  constexpr std::size_t kChains = 32;

  Scheduler sched;
  std::vector<std::unique_ptr<Chain>> chains;
  chains.reserve(kChains);
  for (std::size_t i = 0; i < kChains; ++i) {
    auto chain = std::make_unique<Chain>();
    chain->sched = &sched;
    chain->rng = Lcg{ctx.seed * 0x9E3779B97F4A7C15ULL + i};
    Chain* raw = chain.get();
    sched.schedule(Time::nanos(static_cast<std::int64_t>(i)),
                   [raw] { raw->fire(); });
    chains.push_back(std::move(chain));
  }
  sched.run_until(Time::millis(400));

  std::uint64_t fires = 0, far_fires = 0, checksum = 0;
  for (const auto& chain : chains) {
    fires += chain->fires;
    far_fires += chain->far_fires;
    checksum ^= chain->checksum;
  }
  RunOutcome o;
  o.set("events", double(sched.executed()));
  o.set("fires", double(fires));
  o.set("far_fires", double(far_fires));
  o.set("checksum", double(checksum));
  o.set("pending", double(sched.pending()));
  return o;
}

}  // namespace

void register_perf_micro(Registry& r) {
  r.add({
      .name = "perf_micro",
      .artefact = "engine hot-path microbenchmark (not a paper artefact)",
      .description = "pure scheduler/link event churn; events_per_second "
                     "sidecar isolates the event core from protocol work",
      .notes = "expected shape: metrics are exact determinism canaries "
               "(identical bytes at any --jobs); events_per_second in the "
               "timing sidecar is the core's throughput trend.",
      .axes = fixed_axes({{"pattern", {"link", "timer"}}}),
      .run =
          [](const RunContext& ctx) {
            const auto wall_start = std::chrono::steady_clock::now();
            RunOutcome o = ctx.params.get("pattern") == "link"
                               ? run_link_churn(ctx)
                               : run_timer_churn(ctx);
            const double wall_secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
            o.set_timing("events_per_second",
                         wall_secs > 0 ? o.get("events") / wall_secs : 0);
            o.set_timing("wall_seconds", wall_secs);
            return o;
          },
      // Every metric is an integer count from a deterministic run:
      // identical code must reproduce identical values, so any movement
      // is a real behaviour change that must refresh the baselines.
      // First matching pattern wins: list the timing aggregates before
      // the exact-match catch-all.
      .tolerances =
          {
              {.pattern = "events_per_second*",
               .warn_pct = 15,
               .fail_pct = 40,
               .direction = Dir::kLowerIsWorse},
              {.pattern = "wall_seconds*",
               .warn_pct = 20,
               .fail_pct = 60,
               .direction = Dir::kHigherIsWorse},
              {.pattern = "*", .warn_pct = 0.1, .fail_pct = 1.0},
          },
  });
}

}  // namespace mmptcp::exp
