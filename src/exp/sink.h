#pragma once

// Result sinks: turn a finished sweep into machine-readable JSON and the
// human-readable text tables the benches always printed (via util/table
// and util/summary).  JSON content depends only on the spec, the scale
// and the outcomes — never on wall-clock time, the host, or the thread
// count — so a sweep is byte-identical at --jobs 1 and --jobs 8.

#include <string>
#include <vector>

#include "exp/json.h"
#include "exp/runner.h"
#include "util/table.h"

namespace mmptcp::exp {

/// Version of the result-document layout (both the sweep JSON and the
/// timing sidecar).  Bump when a field is renamed, removed, or changes
/// meaning; the compare subsystem refuses to diff documents whose
/// versions differ so stale baselines fail loudly instead of silently
/// comparing the wrong thing.  Metric names themselves are part of the
/// stable surface: runs carry them verbatim in first-emitted order.
inline constexpr std::uint64_t kResultSchemaVersion = 2;

/// Full sweep result as a compact JSON document (trailing newline).
/// Top-level fields: schema_version, kind="sweep", experiment, ...,
/// runs, and — when runs carry quantile sketches — an "aggregates"
/// section with per-grid-point sketch merges.  The section is additive
/// (the compare subsystem ignores unknown top-level members), so it
/// needs no schema bump.
std::string to_json(const ExperimentSpec& spec, const Scale& scale,
                    const std::vector<RunRecord>& records);

/// One shard's result (kind="sweep_shard"): the to_json header plus a
/// "shard" section {index, count, runs_total} and, per run, its global
/// expansion "index" and serialised "sketches".  Shard documents are the
/// exact inputs `--merge` needs to rebuild the unsharded to_json output
/// byte-identically; compare refuses them (kind mismatch) so a shard is
/// never diffed against a whole sweep by accident.
std::string to_shard_json(const ExperimentSpec& spec, const Scale& scale,
                          const std::vector<RunRecord>& records,
                          std::size_t shard_index, std::size_t shard_count,
                          std::size_t runs_total);

/// Wall-clock metrics (RunOutcome::timings) as a sidecar JSON document:
/// per-run values plus a per-metric aggregate mean.  Returns an empty
/// string when no run reported timings (nothing to write).
std::string to_timing_json(const ExperimentSpec& spec,
                           const std::vector<RunRecord>& records);

/// One shard's timing sidecar (kind="timing_shard", per-run "index").
/// Merged timing values are only structurally — not byte — comparable to
/// an unsharded sidecar: wall-clock numbers legitimately differ.
std::string to_shard_timing_json(const ExperimentSpec& spec,
                                 const std::vector<RunRecord>& records,
                                 std::size_t shard_index,
                                 std::size_t shard_count,
                                 std::size_t runs_total);

/// One successful run's contribution to the "aggregates" section: the
/// grid point it belongs to (ParamSet::id(); "" when the spec sweeps
/// nothing) and its named sketches in emission order.
struct SketchRun {
  std::string group;
  std::vector<std::pair<std::string, QuantileSketch>> sketches;
};

/// Appends the "aggregates" member to a document under construction:
/// grid points in first-seen order, each holding every sketch name's
/// merge over the point's runs plus the contributing run count.  No-op
/// when no run carries sketches.  `runs` must be in full-expansion order
/// — the whole-sweep and merged-shard paths then perform identical
/// floating-point merge sequences and emit identical bytes.
void append_aggregates_json(JsonWriter& w, const std::vector<SketchRun>& runs);

/// One row per run: axis columns + seed + every metric column.
Table to_table(const std::vector<RunRecord>& records);

/// Mean over seeds per grid point; meaningful when |seeds| > 1.
/// Columns: axis values + per-metric mean.
Table to_aggregate_table(const std::vector<RunRecord>& records);

/// Writes `content` to `path`; throws ConfigError on I/O failure.
void write_file(const std::string& path, const std::string& content);

/// Reads all of `path`; throws ConfigError when it cannot be opened.
std::string read_file(const std::string& path);

}  // namespace mmptcp::exp
