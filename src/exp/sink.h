#pragma once

// Result sinks: turn a finished sweep into machine-readable JSON and the
// human-readable text tables the benches always printed (via util/table
// and util/summary).  JSON content depends only on the spec, the scale
// and the outcomes — never on wall-clock time, the host, or the thread
// count — so a sweep is byte-identical at --jobs 1 and --jobs 8.

#include <string>
#include <vector>

#include "exp/runner.h"
#include "util/table.h"

namespace mmptcp::exp {

/// Version of the result-document layout (both the sweep JSON and the
/// timing sidecar).  Bump when a field is renamed, removed, or changes
/// meaning; the compare subsystem refuses to diff documents whose
/// versions differ so stale baselines fail loudly instead of silently
/// comparing the wrong thing.  Metric names themselves are part of the
/// stable surface: runs carry them verbatim in first-emitted order.
inline constexpr std::uint64_t kResultSchemaVersion = 2;

/// Full sweep result as a compact JSON document (trailing newline).
/// Top-level fields: schema_version, kind="sweep", experiment, ...
std::string to_json(const ExperimentSpec& spec, const Scale& scale,
                    const std::vector<RunRecord>& records);

/// Wall-clock metrics (RunOutcome::timings) as a sidecar JSON document:
/// per-run values plus a per-metric aggregate mean.  Returns an empty
/// string when no run reported timings (nothing to write).
std::string to_timing_json(const ExperimentSpec& spec,
                           const std::vector<RunRecord>& records);

/// One row per run: axis columns + seed + every metric column.
Table to_table(const std::vector<RunRecord>& records);

/// Mean over seeds per grid point; meaningful when |seeds| > 1.
/// Columns: axis values + per-metric mean.
Table to_aggregate_table(const std::vector<RunRecord>& records);

/// Writes `content` to `path`; throws ConfigError on I/O failure.
void write_file(const std::string& path, const std::string& content);

/// Reads all of `path`; throws ConfigError when it cannot be opened.
std::string read_file(const std::string& path);

}  // namespace mmptcp::exp
