#pragma once

// The paper's workload at a configurable scale, shared by the experiment
// registry, the bench wrappers and the examples.  (This layer absorbed
// the old bench/common.{h,cpp} so benches no longer re-implement sweep
// and summary plumbing.)
//
// Every experiment runs at a laptop-friendly scale by default and
// switches to paper scale (k=8, 4:1, 512 hosts) with --full or
// MMPTCP_BENCH_SCALE=full.  Individual knobs (--k, --shorts, --rate,
// ...) override either preset.

#include <string>

#include "util/flags.h"
#include "util/table.h"
#include "workload/scenario.h"

namespace mmptcp::exp {

/// Effective workload scale for one experiment invocation.
struct Scale {
  bool full = false;
  std::uint32_t k = 4;
  std::uint32_t oversubscription = 4;
  std::uint32_t shorts = 1000;
  double rate_per_host = 8.0;
  std::uint64_t short_bytes = 70 * 1024;
  std::uint32_t subflows = 8;
  std::uint64_t seed = 1;
  Time max_sim_time = Time::seconds(120);
};

/// Reads the scale from flags + environment; registers the common flags.
Scale parse_scale(Flags& flags);

/// The paper's Figure-1 scenario at the given scale.
ScenarioConfig paper_scenario(const Scale& scale, Protocol proto,
                              std::uint32_t subflows);

/// Everything the tables report about one finished run.
struct RunResult {
  Summary fct_ms;           ///< short-flow completion times
  Summary long_goodput;     ///< Mb/s per long flow
  double utilization = 0;   ///< network-wide goodput / host capacity
  double completion = 0;    ///< fraction of shorts that completed
  std::uint64_t rtos = 0;   ///< RTOs + SYN timeouts across shorts
  std::uint64_t flows_with_rto = 0;
  std::uint64_t spurious = 0;
  double core_loss = 0;     ///< drop rate at the core layer
  double agg_loss = 0;      ///< drop rate at the aggregation layer
  std::uint64_t ecn_marked = 0;       ///< CE marks across all qdiscs
  std::uint64_t peak_queue_pkts = 0;  ///< peak occupancy, switch ports
  /// Packets whose route fell off a switch's table — a hard canary:
  /// any nonzero value means a routing bug silently vanished traffic.
  std::uint64_t unroutable = 0;
  Time end_time;
  /// Streaming FCT/budget sketches over completed shorts (always filled;
  /// with ScenarioConfig::exact_stats=false they are the only FCT stats).
  FlowSketches short_sketches;
};

/// Builds, runs and summarises one scenario.
RunResult run_scenario(const ScenarioConfig& cfg);

/// Writes the per-flow (flow_id, fct_ms, rtos, syn_timeouts) series of
/// completed short flows to `csv_path`; throws ConfigError when the
/// file cannot be written.  Used by the fig1b/c specs so scatter data
/// survives engine runs.
void write_flow_csv(const Scenario& sc, const std::string& csv_path);

}  // namespace mmptcp::exp
