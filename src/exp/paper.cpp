#include "exp/paper.h"

#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace mmptcp::exp {

Scale parse_scale(Flags& flags) {
  Scale s;
  const char* env = std::getenv("MMPTCP_BENCH_SCALE");
  const bool env_full = env != nullptr && std::string(env) == "full";
  s.full = flags.get_bool("full", env_full,
                          "paper scale: k=8 4:1 FatTree (512 hosts)");
  if (s.full) {
    s.k = 8;
    s.oversubscription = 4;
    s.shorts = 20000;
    s.rate_per_host = 10.0;
    s.max_sim_time = Time::seconds(600);
  }
  s.k = static_cast<std::uint32_t>(flags.get_int("k", s.k, "FatTree k"));
  s.oversubscription = static_cast<std::uint32_t>(flags.get_int(
      "oversub", s.oversubscription, "edge oversubscription ratio"));
  s.shorts = static_cast<std::uint32_t>(
      flags.get_int("shorts", s.shorts, "number of short flows"));
  s.rate_per_host = flags.get_double("rate", s.rate_per_host,
                                     "short-flow arrivals/s per host");
  s.short_bytes = static_cast<std::uint64_t>(flags.get_int(
      "short-bytes", static_cast<std::int64_t>(s.short_bytes),
      "short flow size in bytes"));
  s.subflows = static_cast<std::uint32_t>(
      flags.get_int("subflows", s.subflows, "MPTCP/MMPTCP subflow count"));
  s.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(s.seed), "RNG seed"));
  s.max_sim_time = Time::seconds(
      flags.get_int("max-sim-secs", s.max_sim_time.ns() / 1'000'000'000,
                    "simulated-time budget"));
  return s;
}

ScenarioConfig paper_scenario(const Scale& scale, Protocol proto,
                              std::uint32_t subflows) {
  ScenarioConfig cfg;
  cfg.fat_tree.k = scale.k;
  cfg.fat_tree.oversubscription = scale.oversubscription;
  cfg.transport.protocol = proto;
  cfg.transport.subflows = subflows;
  cfg.short_flow_count = scale.shorts;
  cfg.short_rate_per_host = scale.rate_per_host;
  cfg.short_flow_bytes = scale.short_bytes;
  cfg.seed = scale.seed;
  cfg.max_sim_time = scale.max_sim_time;
  return cfg;
}

RunResult run_scenario(const ScenarioConfig& cfg) {
  Scenario sc(cfg);
  sc.run();
  RunResult r;
  if (cfg.exact_stats) {
    r.fct_ms = sc.short_fct_ms();
  }
  r.short_sketches =
      sc.metrics().short_flow_sketches(cfg.transport.protocol);
  r.long_goodput = sc.long_goodput_mbps();
  r.utilization = sc.network_utilization();
  r.completion = sc.short_completion_ratio();
  r.rtos = sc.short_flow_rtos();
  r.flows_with_rto = sc.short_flows_with_rto();
  r.spurious = sc.total_spurious_retransmits();
  const auto layers = sc.layer_stats();
  if (const auto it = layers.find(LinkLayer::kAggCore); it != layers.end()) {
    r.core_loss = it->second.loss_rate();
  }
  if (const auto it = layers.find(LinkLayer::kEdgeAgg); it != layers.end()) {
    r.agg_loss = it->second.loss_rate();
  }
  r.ecn_marked = sc.ecn_marked_packets();
  r.peak_queue_pkts = sc.peak_switch_queue_packets();
  r.unroutable = sc.network().unroutable_total();
  r.end_time = sc.end_time();
  return r;
}

void write_flow_csv(const Scenario& sc, const std::string& csv_path) {
  const auto shorts = sc.metrics().flows(
      [](const FlowRecord& r) { return !r.long_flow && r.is_complete(); });
  std::FILE* f = std::fopen(csv_path.c_str(), "w");
  require(f != nullptr, "cannot open " + csv_path + " for writing");
  std::fputs("flow_id,fct_ms,rtos,syn_timeouts\n", f);
  for (const auto* rec : shorts) {
    std::fprintf(f, "%u,%.3f,%u,%u\n", rec->flow_id,
                 rec->fct().to_millis(), rec->rto_count,
                 rec->syn_timeouts);
  }
  std::fclose(f);
}

}  // namespace mmptcp::exp
