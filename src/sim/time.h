#pragma once

// Simulated time as a strong type over signed 64-bit nanoseconds.
//
// Nanosecond resolution comfortably covers the dynamics we model: a
// 1500-byte frame takes 120 us at 100 Mb/s and 120 ns at 100 Gb/s, and a
// signed 64-bit count of nanoseconds spans ~292 years of simulated time.

#include <cstdint>
#include <string>

namespace mmptcp {

/// A point in (or span of) simulated time, in integer nanoseconds.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time zero() { return Time(0); }
  static constexpr Time nanos(std::int64_t v) { return Time(v); }
  static constexpr Time micros(std::int64_t v) { return Time(v * 1000); }
  static constexpr Time millis(std::int64_t v) { return Time(v * 1000000); }
  static constexpr Time seconds(std::int64_t v) {
    return Time(v * 1000000000);
  }
  /// From floating-point seconds (rounded to nearest nanosecond).
  static Time from_seconds(double s);
  /// The largest representable time (used as "never").
  static constexpr Time max() { return Time(INT64_MAX); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return double(ns_) * 1e-9; }
  constexpr double to_millis() const { return double(ns_) * 1e-6; }
  constexpr double to_micros() const { return double(ns_) * 1e-3; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ns_ + b.ns_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ns_ - b.ns_); }
  friend constexpr Time operator*(Time a, std::int64_t k) {
    return Time(a.ns_ * k);
  }
  friend constexpr Time operator*(std::int64_t k, Time a) { return a * k; }
  friend constexpr Time operator/(Time a, std::int64_t k) {
    return Time(a.ns_ / k);
  }
  friend constexpr std::int64_t operator/(Time a, Time b) {
    return a.ns_ / b.ns_;
  }
  Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }

  friend constexpr bool operator==(Time a, Time b) { return a.ns_ == b.ns_; }
  friend constexpr bool operator!=(Time a, Time b) { return a.ns_ != b.ns_; }
  friend constexpr bool operator<(Time a, Time b) { return a.ns_ < b.ns_; }
  friend constexpr bool operator<=(Time a, Time b) { return a.ns_ <= b.ns_; }
  friend constexpr bool operator>(Time a, Time b) { return a.ns_ > b.ns_; }
  friend constexpr bool operator>=(Time a, Time b) { return a.ns_ >= b.ns_; }

  /// Human-readable rendering with an auto-selected unit, e.g. "1.5ms".
  std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

/// Serialisation delay of `bytes` at `bits_per_sec` (rounded up to 1 ns).
Time transmission_time(std::uint64_t bytes, std::uint64_t bits_per_sec);

/// Parses a duration literal "<number><unit>" with unit ns/us/ms/s, e.g.
/// "500us", "1.5ms", "2s".  Throws ConfigError on malformed or negative
/// input (flag parsing — the inverse of Time::to_string's rendering).
Time parse_duration(const std::string& text);

}  // namespace mmptcp
