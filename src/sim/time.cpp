#include "sim/time.h"

#include <cctype>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace mmptcp {

Time Time::from_seconds(double s) {
  return Time(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::string Time::to_string() const {
  std::ostringstream os;
  const double a = std::abs(static_cast<double>(ns_));
  os.precision(4);
  if (a >= 1e9) {
    os << to_seconds() << "s";
  } else if (a >= 1e6) {
    os << to_millis() << "ms";
  } else if (a >= 1e3) {
    os << to_micros() << "us";
  } else {
    os << ns_ << "ns";
  }
  return os.str();
}

Time parse_duration(const std::string& text) {
  std::size_t unit_start = 0;
  while (unit_start < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[unit_start])) ||
          text[unit_start] == '.' || text[unit_start] == '+' ||
          text[unit_start] == '-' || text[unit_start] == 'e' ||
          text[unit_start] == 'E')) {
    ++unit_start;
  }
  const std::string number = text.substr(0, unit_start);
  const std::string unit = text.substr(unit_start);
  std::size_t consumed = 0;
  double value = 0;
  try {
    value = std::stod(number, &consumed);
  } catch (const std::exception&) {
    throw ConfigError("bad duration '" + text +
                      "' (expected <number><unit> with unit ns, us, ms or "
                      "s, e.g. 500us, 1.5ms, 2s)");
  }
  require(consumed == number.size() && !number.empty(),
          "bad duration '" + text +
              "' (expected <number><unit> with unit ns, us, ms or s, "
              "e.g. 500us, 1.5ms, 2s)");
  double unit_ns = 0;
  if (unit == "ns") {
    unit_ns = 1;
  } else if (unit == "us") {
    unit_ns = 1e3;
  } else if (unit == "ms") {
    unit_ns = 1e6;
  } else if (unit == "s") {
    unit_ns = 1e9;
  } else if (unit.empty()) {
    throw ConfigError("duration '" + text +
                      "' is missing a unit (append ns, us, ms or s)");
  } else {
    throw ConfigError("bad duration unit '" + unit + "' in '" + text +
                      "' (valid: ns, us, ms, s)");
  }
  require(value >= 0, "duration cannot be negative: " + text);
  require(std::isfinite(value), "duration is not finite: " + text);
  // llround on a value beyond int64 range is undefined behaviour; the
  // simulated clock tops out at ~292 years anyway.
  const double ns = value * unit_ns;
  require(ns < 9.2e18, "duration overflows the 64-bit nanosecond clock: " +
                           text);
  return Time::nanos(static_cast<std::int64_t>(std::llround(ns)));
}

Time transmission_time(std::uint64_t bytes, std::uint64_t bits_per_sec) {
  check(bits_per_sec > 0, "link rate must be positive");
  // ns = bits * 1e9 / rate, computed in __int128 to avoid overflow and
  // rounded up so a transmission never takes zero time.
  const unsigned __int128 bits = static_cast<unsigned __int128>(bytes) * 8;
  const unsigned __int128 num = bits * 1000000000u + (bits_per_sec - 1);
  return Time::nanos(static_cast<std::int64_t>(num / bits_per_sec));
}

}  // namespace mmptcp
