#include "sim/scheduler.h"

#include <algorithm>

namespace mmptcp {

EventId Scheduler::schedule(Time delay, Callback cb) {
  check(!delay.is_negative(), "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(cb));
}

EventId Scheduler::schedule_at(Time at, Callback cb) {
  check(at >= now_, "cannot schedule before the current time");
  check(static_cast<bool>(cb), "cannot schedule an empty callback");
  const std::uint64_t id = next_id_++;
  heap_.push_back(Entry{at, next_seq_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), later);
  return EventId{id};
}

void Scheduler::cancel(EventId id) {
  if (!id.valid()) return;
  // Only mark ids that could still be pending; stale ids are ignored.
  if (id.value < next_id_) cancelled_.insert(id.value);
}

bool Scheduler::pop_next(Entry& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    const auto it = cancelled_.find(e.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(e);
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run_until(Time until) {
  std::uint64_t ran = 0;
  stop_requested_ = false;
  Entry e;
  while (!heap_.empty()) {
    // Peek: the top may be cancelled, so pop through pop_next and push back
    // if it is beyond the horizon.
    if (!pop_next(e)) break;
    if (e.at > until) {
      // Past the horizon: reinsert and stop.
      heap_.push_back(std::move(e));
      std::push_heap(heap_.begin(), heap_.end(), later);
      break;
    }
    now_ = e.at;
    e.cb();
    ++executed_;
    ++ran;
    if (stop_requested_) break;
  }
  if (now_ < until && !stop_requested_) now_ = until;
  return ran;
}

std::uint64_t Scheduler::run() {
  std::uint64_t ran = 0;
  stop_requested_ = false;
  Entry e;
  while (pop_next(e)) {
    now_ = e.at;
    e.cb();
    ++executed_;
    ++ran;
    if (stop_requested_) break;
  }
  return ran;
}

bool Scheduler::step() {
  Entry e;
  if (!pop_next(e)) return false;
  now_ = e.at;
  e.cb();
  ++executed_;
  return true;
}

}  // namespace mmptcp
