#include "sim/scheduler.h"

#include <algorithm>
#include <bit>

namespace mmptcp {

namespace {

/// EventId layout: generation in the high 32 bits, slot+1 in the low 32
/// (so slot 0 still yields a non-zero id).
constexpr std::uint64_t make_id(std::uint32_t slot, std::uint32_t gen) {
  return (std::uint64_t{gen} << 32) | (std::uint64_t{slot} + 1);
}

}  // namespace

Scheduler::Scheduler()
    : wheel_(kWheelBuckets), occupancy_(kWheelBuckets / 64, 0) {}

std::uint32_t Scheduler::alloc_slot() {
  if (free_list_.empty()) {
    nodes_.emplace_back();
    free_list_.push_back(static_cast<std::uint32_t>(nodes_.size() - 1));
  }
  const std::uint32_t slot = free_list_.back();
  free_list_.pop_back();
  return slot;
}

EventId Scheduler::commit(Time at, std::uint32_t slot) {
  const Ref ref{at, next_seq_++, slot};
  const std::uint64_t tick = tick_of(at);
  if (tick - tick_of(now_) < kWheelBuckets) {
    wheel_push(tick, ref);
  } else {
    heap_push(ref);
  }
  return EventId{make_id(slot, nodes_[slot].gen)};
}

void Scheduler::cancel(EventId id) {
  if (!id.valid()) return;
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value) - 1;
  if (slot >= nodes_.size()) return;
  Node& node = nodes_[slot];
  if (node.where == kFree ||
      node.gen != static_cast<std::uint32_t>(id.value >> 32)) {
    return;  // already executed, cancelled, or never issued
  }
  if (node.where == kInHeap) {
    heap_remove(node.pos);
  } else {
    wheel_remove(node.where, node.pos);
  }
  free_node(slot);
}

void Scheduler::free_node(std::uint32_t idx) {
  Node& node = nodes_[idx];
  node.cb.reset();
  node.where = kFree;
  ++node.gen;  // invalidate every outstanding id for this slot
  free_list_.push_back(idx);
}

// ---------------------------------------------------------------------------
// Indexed 4-ary min-heap
// ---------------------------------------------------------------------------

void Scheduler::heap_push(const Ref& ref) {
  nodes_[ref.node].where = kInHeap;
  nodes_[ref.node].pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(ref);
  heap_sift_up(heap_.size() - 1);
}

void Scheduler::heap_remove(std::uint32_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    nodes_[heap_[pos].node].pos = pos;
    heap_.pop_back();
    // The replacement came from the bottom: it may need to move either way.
    heap_sift_down(pos);
    heap_sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

void Scheduler::heap_sift_up(std::size_t i) {
  const Ref moving = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    nodes_[heap_[i].node].pos = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = moving;
  nodes_[moving.node].pos = static_cast<std::uint32_t>(i);
}

void Scheduler::heap_sift_down(std::size_t i) {
  const Ref moving = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    nodes_[heap_[i].node].pos = static_cast<std::uint32_t>(i);
    i = best;
  }
  heap_[i] = moving;
  nodes_[moving.node].pos = static_cast<std::uint32_t>(i);
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

void Scheduler::wheel_push(std::uint64_t tick, const Ref& ref) {
  const auto bucket = static_cast<std::uint32_t>(tick & (kWheelBuckets - 1));
  std::vector<Ref>& entries = wheel_[bucket];
  nodes_[ref.node].where = bucket;
  nodes_[ref.node].pos = static_cast<std::uint32_t>(entries.size());
  entries.push_back(ref);
  occupancy_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
  ++wheel_count_;
}

void Scheduler::wheel_remove(std::uint32_t bucket, std::uint32_t pos) {
  std::vector<Ref>& entries = wheel_[bucket];
  const std::size_t last = entries.size() - 1;
  if (pos != last) {
    entries[pos] = entries[last];
    nodes_[entries[pos].node].pos = pos;
  }
  entries.pop_back();
  if (entries.empty()) {
    occupancy_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  }
  --wheel_count_;
}

std::uint32_t Scheduler::wheel_first_bucket() const {
  // All occupied buckets hold ticks in [tick(now), tick(now) + buckets),
  // so ring order starting at now's bucket is tick order and the first
  // occupied bucket is the earliest.
  const auto start =
      static_cast<std::uint32_t>(tick_of(now_) & (kWheelBuckets - 1));
  std::size_t word = start >> 6;
  std::uint64_t bits = occupancy_[word] & (~std::uint64_t{0} << (start & 63));
  const std::size_t words = occupancy_.size();
  for (std::size_t i = 0; i <= words; ++i) {
    if (bits != 0) {
      return static_cast<std::uint32_t>((word << 6) +
                                        std::countr_zero(bits));
    }
    word = (word + 1) & (words - 1);
    bits = occupancy_[word];
  }
  check(false, "wheel_first_bucket called on an empty wheel");
  return 0;
}

std::uint32_t Scheduler::bucket_min(std::uint32_t bucket) const {
  const std::vector<Ref>& entries = wheel_[bucket];
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < entries.size(); ++i) {
    if (before(entries[i], entries[best])) best = i;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

bool Scheduler::peek(Ref& out) const {
  if (wheel_count_ > 0) {
    const std::uint32_t bucket = wheel_first_bucket();
    out = wheel_[bucket][bucket_min(bucket)];
    // A heap event can still be earlier: far-future events stay in the
    // heap as their time approaches instead of migrating to the wheel.
    if (!heap_.empty() && before(heap_.front(), out)) out = heap_.front();
    return true;
  }
  if (!heap_.empty()) {
    out = heap_.front();
    return true;
  }
  return false;
}

Scheduler::Callback Scheduler::extract(const Ref& ref) {
  Node& node = nodes_[ref.node];
  if (node.where == kInHeap) {
    heap_remove(node.pos);
  } else {
    wheel_remove(node.where, node.pos);
  }
  // Free before running: the callback may schedule (reusing this slot)
  // and pending() must not count the event being executed.
  Callback cb = std::move(node.cb);
  free_node(ref.node);
  return cb;
}

std::uint64_t Scheduler::run_until(Time until) {
  std::uint64_t ran = 0;
  stop_requested_ = false;
  Ref ref;
  while (peek(ref)) {
    if (ref.at > until) break;
    now_ = ref.at;
    Callback cb = extract(ref);
    cb();
    ++executed_;
    ++ran;
    if (stop_requested_) break;
  }
  if (now_ < until && !stop_requested_) now_ = until;
  return ran;
}

std::uint64_t Scheduler::run_window(Time end) {
  std::uint64_t ran = 0;
  stop_requested_ = false;
  Ref ref;
  while (peek(ref)) {
    if (ref.at >= end) break;
    now_ = ref.at;
    Callback cb = extract(ref);
    cb();
    ++executed_;
    ++ran;
    if (stop_requested_) break;
  }
  if (now_ < end && !stop_requested_) now_ = end;
  return ran;
}

std::uint64_t Scheduler::run() {
  std::uint64_t ran = 0;
  stop_requested_ = false;
  Ref ref;
  while (peek(ref)) {
    now_ = ref.at;
    Callback cb = extract(ref);
    cb();
    ++executed_;
    ++ran;
    if (stop_requested_) break;
  }
  return ran;
}

bool Scheduler::step() {
  Ref ref;
  if (!peek(ref)) return false;
  now_ = ref.at;
  Callback cb = extract(ref);
  cb();
  ++executed_;
  return true;
}

}  // namespace mmptcp
