#include "sim/engine.h"

#include <algorithm>

#include "sim/parallel.h"
#include "sim/simulation.h"
#include "util/check.h"

namespace mmptcp {

namespace {

/// Spin briefly, then yield: windows are short, but on oversubscribed
/// hosts (more workers than cores) pure spinning would burn the peer's
/// whole quantum.
template <typename Pred>
void relax_until(const Pred& pred) {
  int spins = 0;
  while (!pred()) {
    if (++spins >= 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

}  // namespace

Engine::Engine(Simulation& sim, Time lookahead, unsigned workers)
    : sim_(sim), lookahead_(lookahead), workers_(std::max(1u, workers)) {
  if (sim_.num_domains() > 0) {
    check(lookahead_ > Time::zero(),
          "parallel engine needs a positive lookahead");
    workers_ = std::min<unsigned>(
        workers_, static_cast<unsigned>(sim_.num_domains()));
    // The claim index (domains plus at most one overshoot fetch_add per
    // thread per epoch) must fit below the epoch bits of claim_.
    check(sim_.num_domains() + 2ull * workers_ < (1ull << kIndexBits),
          "too many domains for the claim-word index field");
  } else {
    workers_ = 1;
  }
}

Engine::~Engine() {
  if (!pool_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    for (std::thread& t : pool_) t.join();
  }
}

void Engine::ensure_pool() {
  if (workers_ <= 1 || !pool_.empty()) return;
  pool_.reserve(workers_ - 1);
  for (unsigned i = 0; i + 1 < workers_; ++i) {
    pool_.emplace_back([this] { worker_main(); });
  }
}

void Engine::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    relax_until([&] {
      return (claim_.load(std::memory_order_acquire) >> kIndexBits) != seen ||
             shutdown_.load(std::memory_order_acquire);
    });
    if (shutdown_.load(std::memory_order_acquire)) return;
    const std::uint64_t epoch =
        claim_.load(std::memory_order_acquire) >> kIndexBits;
    seen = claim_and_run(
        epoch, Time::nanos(window_end_ns_.load(std::memory_order_acquire)));
  }
}

std::uint64_t Engine::claim_and_run(std::uint64_t epoch, Time end) {
  const std::size_t n = sim_.num_domains();
  for (;;) {
    const std::uint64_t word = claim_.fetch_add(1, std::memory_order_acq_rel);
    if ((word >> kIndexBits) != epoch) {
      // Stale claim across a barrier: the main thread saw every domain
      // of `epoch` done, ran the barrier hook and republished claim_
      // before this fetch_add landed, so the claim we just consumed
      // belongs to the *new* window.  Adopt it — the acquire above
      // synchronises with that release publish, ordering us after the
      // hook's insertions — and re-read the new window end (stable:
      // the main thread cannot republish again while this claim's
      // domain is unfinished).  Running it with the old `end` instead
      // would silently skip the domain's new window and race with the
      // hook's heap mutations.
      epoch = word >> kIndexBits;
      end = Time::nanos(window_end_ns_.load(std::memory_order_acquire));
    }
    const std::size_t d = static_cast<std::size_t>(word & kIndexMask);
    if (d >= n) return epoch;
    Scheduler& sched = sim_.domain_scheduler(d);
    {
      par::ScopedDomain scope(&sched, static_cast<int>(d));
      sched.run_window(end);
    }
    domains_done_.fetch_add(1, std::memory_order_release);
  }
}

void Engine::run_domains(Time end) {
  const std::size_t n = sim_.num_domains();
  if (workers_ <= 1) {
    for (std::size_t d = 0; d < n; ++d) {
      Scheduler& sched = sim_.domain_scheduler(d);
      par::ScopedDomain scope(&sched, static_cast<int>(d));
      sched.run_window(end);
    }
    return;
  }
  ensure_pool();
  window_end_ns_.store(end.ns(), std::memory_order_relaxed);
  domains_done_.store(0, std::memory_order_relaxed);
  // Single release store publishes the window: bumps the epoch (waking
  // parked workers) and resets the claim index atomically.
  ++epoch_;
  claim_.store(epoch_ << kIndexBits, std::memory_order_release);
  claim_and_run(epoch_, end);
  relax_until([&] {
    return domains_done_.load(std::memory_order_acquire) >= n;
  });
}

void Engine::run_until(Time until) {
  stopped_ = false;
  Scheduler& control = sim_.control_scheduler();
  const std::size_t n = sim_.num_domains();
  if (n == 0) {
    // Serial collapse: no domains were configured, so every event lives
    // in the control scheduler and the classic inclusive run applies.
    if (hook_) hook_();
    control.run_until(until);
    stopped_ = control.stop_requested();
    if (hook_) hook_();
    return;
  }
  for (;;) {
    if (hook_) hook_();
    Time next = Time::max();
    bool any = false;
    Time t;
    if (control.next_time(t)) {
      next = t;
      any = true;
    }
    for (std::size_t d = 0; d < n; ++d) {
      if (sim_.domain_scheduler(d).next_time(t) && t < next) {
        next = t;
        any = true;
      }
    }
    if (!any || next >= until) {
      control.run_window(until);
      if (control.stop_requested()) {
        // Mirror the mid-loop branch: a stop() in the final control
        // window also ends the run before the domain windows.
        stopped_ = true;
        break;
      }
      run_domains(until);
      break;
    }
    const Time window_end = std::min(next + lookahead_, until);
    control.run_window(window_end);
    if (control.stop_requested()) {
      stopped_ = true;
      break;
    }
    run_domains(window_end);
  }
  if (hook_) hook_();
}

}  // namespace mmptcp
