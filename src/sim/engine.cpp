#include "sim/engine.h"

#include <algorithm>
#include <chrono>

#include "sim/parallel.h"
#include "sim/simulation.h"
#include "util/check.h"

namespace mmptcp {

namespace {

/// Spin briefly, then yield: windows are short, but on oversubscribed
/// hosts (more workers than cores) pure spinning would burn the peer's
/// whole quantum.  Main-thread barrier wait only — workers escalate to
/// relax_or_park so an idle pool costs no CPU.
template <typename Pred>
void relax_until(const Pred& pred) {
  int spins = 0;
  while (!pred()) {
    if (++spins >= 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

std::uint64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

Engine::Engine(Simulation& sim, Time lookahead, unsigned workers)
    : sim_(sim), lookahead_(lookahead), workers_(std::max(1u, workers)) {
  if (sim_.num_domains() > 0) {
    check(lookahead_ > Time::zero(),
          "parallel engine needs a positive lookahead");
    workers_ = std::min<unsigned>(
        workers_, static_cast<unsigned>(sim_.num_domains()));
    // The claim index (active domains plus at most one overshoot
    // fetch_add per thread per epoch) must fit below the count field,
    // and the count (at most num_domains) below the epoch bits.
    check(sim_.num_domains() + 2ull * workers_ < (1ull << kIndexBits),
          "too many domains for the claim-word index field");
  } else {
    workers_ = 1;
  }
}

Engine::~Engine() {
  if (!pool_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    {
      // Empty critical section: a worker past its predicate check but
      // not yet asleep holds park_mu_, so this lock orders the store
      // before its wait and the notify below cannot be lost.
      std::lock_guard<std::mutex> lk(park_mu_);
    }
    park_cv_.notify_all();
    for (std::thread& t : pool_) t.join();
  }
}

void Engine::ensure_pool() {
  if (workers_ <= 1 || !pool_.empty()) return;
  pool_.reserve(workers_ - 1);
  for (unsigned i = 0; i + 1 < workers_; ++i) {
    pool_.emplace_back([this] { worker_main(); });
  }
}

template <typename Pred>
void Engine::relax_or_park(const Pred& pred) {
  for (int spins = 0; spins < 64; ++spins) {
    if (pred()) return;
  }
  for (int yields = 0; yields < 64; ++yields) {
    if (pred()) return;
    std::this_thread::yield();
  }
  // Budget exhausted: park.  The predicate re-check runs under park_mu_,
  // which the publisher also takes (after its claim_ release store), so
  // either we see the new epoch here or the publisher sees parked_ > 0
  // and notifies — a wakeup can never slip between check and sleep.
  std::unique_lock<std::mutex> lk(park_mu_);
  ++parked_;
  park_cv_.wait(lk, pred);
  --parked_;
}

void Engine::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    relax_or_park([&] {
      return (claim_.load(std::memory_order_acquire) >> kEpochShift) != seen ||
             shutdown_.load(std::memory_order_acquire);
    });
    if (shutdown_.load(std::memory_order_acquire)) return;
    const std::uint64_t epoch =
        claim_.load(std::memory_order_acquire) >> kEpochShift;
    seen = claim_and_run(
        epoch, Time::nanos(window_end_ns_.load(std::memory_order_acquire)));
  }
}

std::uint64_t Engine::claim_and_run(std::uint64_t epoch, Time end) {
  for (;;) {
    const std::uint64_t word = claim_.fetch_add(1, std::memory_order_acq_rel);
    if ((word >> kEpochShift) != epoch) {
      // Stale claim across a barrier: the main thread saw every active
      // domain of `epoch` done, ran the barrier hook and republished
      // claim_ before this fetch_add landed, so the claim we just
      // consumed belongs to the *new* window.  Adopt it — the acquire
      // above synchronises with that release publish, ordering us after
      // the hook's insertions and the order_ rewrite — and re-read the
      // new window end (stable: the main thread cannot republish again
      // while this claim's domain is unfinished).  Running it with the
      // old `end` instead would silently truncate the domain's new
      // window and race with the hook's heap mutations.
      epoch = word >> kEpochShift;
      end = Time::nanos(window_end_ns_.load(std::memory_order_acquire));
    }
    const std::size_t count =
        static_cast<std::size_t>((word >> kCountShift) & kFieldMask);
    const std::size_t idx = static_cast<std::size_t>(word & kFieldMask);
    if (idx >= count) return epoch;
    // A sub-count index proves the publisher is still waiting on
    // domains_done_ < count, so order_ is frozen: plain read is safe.
    const std::size_t d = order_[idx];
    Scheduler& sched = sim_.domain_scheduler(d);
    {
      par::ScopedDomain scope(&sched, static_cast<int>(d));
      sched.run_window(end);
    }
    domains_done_.fetch_add(1, std::memory_order_release);
  }
}

void Engine::run_domains(Time end) {
  const std::size_t count = order_.size();
  if (workers_ <= 1) {
    for (const std::size_t d : order_) {
      Scheduler& sched = sim_.domain_scheduler(d);
      par::ScopedDomain scope(&sched, static_cast<int>(d));
      sched.run_window(end);
    }
    return;
  }
  ensure_pool();
  window_end_ns_.store(end.ns(), std::memory_order_relaxed);
  domains_done_.store(0, std::memory_order_relaxed);
  // Single release store publishes the window: bumps the epoch, carries
  // the active-domain count and resets the claim index atomically.
  ++epoch_;
  claim_.store((epoch_ << kEpochShift) |
                   (static_cast<std::uint64_t>(count) << kCountShift),
               std::memory_order_release);
  bool wake;
  {
    // Taken after the claim_ store: any worker that checked its
    // predicate before the store is counted in parked_ here (it holds
    // or held park_mu_ on the way to sleep), so notify reaches it.
    std::lock_guard<std::mutex> lk(park_mu_);
    wake = parked_ > 0;
  }
  if (wake) park_cv_.notify_all();
  claim_and_run(epoch_, end);
  const auto t0 = std::chrono::steady_clock::now();
  relax_until([&] {
    return domains_done_.load(std::memory_order_acquire) >= count;
  });
  stats_.barrier_wait_ns += ns_since(t0);
}

void Engine::run_until(Time until) {
  const auto wall0 = std::chrono::steady_clock::now();
  stopped_ = false;
  Scheduler& control = sim_.control_scheduler();
  const std::size_t n = sim_.num_domains();
  if (n == 0) {
    // Serial collapse: no domains were configured, so every event lives
    // in the control scheduler and the classic inclusive run applies.
    if (hook_) hook_();
    control.run_until(until);
    stopped_ = control.stop_requested();
    if (hook_) hook_();
    stats_.wall_ns += ns_since(wall0);
    return;
  }
  for (;;) {
    if (hook_) hook_();
    Time next = Time::max();
    bool any = false;
    Time t;
    if (control.next_time(t)) {
      next = t;
      any = true;
    }
    for (std::size_t d = 0; d < n; ++d) {
      if (sim_.domain_scheduler(d).next_time(t)) {
        any = true;
        if (t < next) next = t;
      }
    }
    if (!any || next >= until) {
      control.run_window(until);
      if (control.stop_requested()) {
        // Mirror the mid-loop branch: a stop() in the final control
        // window also ends the run before the domain windows.
        stopped_ = true;
        break;
      }
      // Final window: run EVERY domain, quiet or not, so all clocks
      // park exactly at `until` (quiet-skip only applies mid-run).
      order_.resize(n);
      for (std::size_t d = 0; d < n; ++d) order_[d] = d;
      ++stats_.windows;
      stats_.domains_claimed += n;
      run_domains(until);
      break;
    }
    const Time window_end = std::min(next + lookahead_, until);
    control.run_window(window_end);
    if (control.stop_requested()) {
      stopped_ = true;
      break;
    }
    // Quiet-domain skip + cost-ordered claiming.  Probe AFTER the
    // control window so events it scheduled into domains count; keep a
    // domain only when its next event falls inside this window, then
    // order busiest-first (pending count desc, id asc) so the largest
    // domain window starts earliest.  Ordering and skipping change
    // scheduling only — every kept window executes the same events.
    probe_.clear();
    for (std::size_t d = 0; d < n; ++d) {
      Scheduler& sched = sim_.domain_scheduler(d);
      if (sched.next_time(t) && t < window_end) {
        probe_.push_back(Probe{t, sched.pending(), d});
      }
    }
    std::sort(probe_.begin(), probe_.end(),
              [](const Probe& x, const Probe& y) {
                if (x.pending != y.pending) return x.pending > y.pending;
                return x.domain < y.domain;
              });
    order_.clear();
    for (const Probe& p : probe_) order_.push_back(p.domain);
    ++stats_.windows;
    stats_.domains_claimed += order_.size();
    stats_.domains_skipped += n - order_.size();
    // An all-quiet window (the next event was control-only) publishes
    // nothing at all — workers stay parked.
    if (!order_.empty()) run_domains(window_end);
  }
  if (hook_) hook_();
  stats_.wall_ns += ns_since(wall0);
}

}  // namespace mmptcp
