#include "sim/engine.h"

#include <algorithm>

#include "sim/parallel.h"
#include "sim/simulation.h"
#include "util/check.h"

namespace mmptcp {

namespace {

/// Spin briefly, then yield: windows are short, but on oversubscribed
/// hosts (more workers than cores) pure spinning would burn the peer's
/// whole quantum.
template <typename Pred>
void relax_until(const Pred& pred) {
  int spins = 0;
  while (!pred()) {
    if (++spins >= 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

}  // namespace

Engine::Engine(Simulation& sim, Time lookahead, unsigned workers)
    : sim_(sim), lookahead_(lookahead), workers_(std::max(1u, workers)) {
  if (sim_.num_domains() > 0) {
    check(lookahead_ > Time::zero(),
          "parallel engine needs a positive lookahead");
    workers_ = std::min<unsigned>(
        workers_, static_cast<unsigned>(sim_.num_domains()));
  } else {
    workers_ = 1;
  }
}

Engine::~Engine() {
  if (!pool_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    for (std::thread& t : pool_) t.join();
  }
}

void Engine::ensure_pool() {
  if (workers_ <= 1 || !pool_.empty()) return;
  pool_.reserve(workers_ - 1);
  for (unsigned i = 0; i + 1 < workers_; ++i) {
    pool_.emplace_back([this] { worker_main(); });
  }
}

void Engine::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    relax_until([&] {
      return epoch_.load(std::memory_order_acquire) != seen ||
             shutdown_.load(std::memory_order_acquire);
    });
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen = epoch_.load(std::memory_order_acquire);
    claim_and_run(Time::nanos(window_end_ns_.load(std::memory_order_acquire)));
  }
}

void Engine::claim_and_run(Time end) {
  const std::size_t n = sim_.num_domains();
  for (;;) {
    const std::size_t d = next_domain_.fetch_add(1, std::memory_order_relaxed);
    if (d >= n) return;
    Scheduler& sched = sim_.domain_scheduler(d);
    {
      par::ScopedDomain scope(&sched, static_cast<int>(d));
      sched.run_window(end);
    }
    domains_done_.fetch_add(1, std::memory_order_release);
  }
}

void Engine::run_domains(Time end) {
  const std::size_t n = sim_.num_domains();
  if (workers_ <= 1) {
    for (std::size_t d = 0; d < n; ++d) {
      Scheduler& sched = sim_.domain_scheduler(d);
      par::ScopedDomain scope(&sched, static_cast<int>(d));
      sched.run_window(end);
    }
    return;
  }
  ensure_pool();
  window_end_ns_.store(end.ns(), std::memory_order_relaxed);
  next_domain_.store(0, std::memory_order_relaxed);
  domains_done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  claim_and_run(end);
  relax_until([&] {
    return domains_done_.load(std::memory_order_acquire) >= n;
  });
}

void Engine::run_until(Time until) {
  stopped_ = false;
  Scheduler& control = sim_.control_scheduler();
  const std::size_t n = sim_.num_domains();
  if (n == 0) {
    // Serial collapse: no domains were configured, so every event lives
    // in the control scheduler and the classic inclusive run applies.
    if (hook_) hook_();
    control.run_until(until);
    stopped_ = control.stop_requested();
    if (hook_) hook_();
    return;
  }
  for (;;) {
    if (hook_) hook_();
    Time next = Time::max();
    bool any = false;
    Time t;
    if (control.next_time(t)) {
      next = t;
      any = true;
    }
    for (std::size_t d = 0; d < n; ++d) {
      if (sim_.domain_scheduler(d).next_time(t) && t < next) {
        next = t;
        any = true;
      }
    }
    if (!any || next >= until) {
      control.run_window(until);
      run_domains(until);
      break;
    }
    const Time window_end = std::min(next + lookahead_, until);
    control.run_window(window_end);
    if (control.stop_requested()) {
      stopped_ = true;
      break;
    }
    run_domains(window_end);
  }
  if (hook_) hook_();
}

}  // namespace mmptcp
