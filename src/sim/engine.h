#pragma once

// Barrier-synchronous conservative parallel event engine.
//
// The simulation's schedulers (one control + N domain) advance in
// windows.  Each iteration finds T, the earliest pending event across
// all schedulers, and executes every event in [T, T + lookahead) — the
// control scheduler first and single-threaded, then all domains on a
// worker pool.  `lookahead` is the minimum cross-domain propagation
// delay, so an event at time t can only influence another domain at
// t + lookahead or later: everything inside one window is causally
// independent across domains and may run concurrently.
//
// Cross-domain packets and metric mutations are buffered during the
// window (net/link.h outboxes, stats/metrics.h journals) and flushed by
// the barrier hook at the top of every iteration, in a canonical order
// that does not depend on the worker count.  Determinism therefore holds
// by construction: the sequence of windows, the event stream inside each
// domain, and the flush order are identical at any `workers` value —
// threads only change which core executes a given window.

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/time.h"

namespace mmptcp {

class Simulation;

class Engine {
 public:
  /// `lookahead` must be positive when the simulation has domains
  /// configured.  `workers` is the number of threads executing domain
  /// windows (the calling thread is one of them); clamped to the domain
  /// count.
  Engine(Simulation& sim, Time lookahead, unsigned workers);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Invoked at every barrier (and once before the first window and once
  /// after the last): drain cross-domain mailboxes and metric journals.
  void set_barrier_hook(std::function<void()> hook) {
    hook_ = std::move(hook);
  }

  /// Runs events with timestamp strictly below `until`, leaving every
  /// clock at `until` — unless the control scheduler's stop() fired, in
  /// which case the run ends at that event.  With no domains configured
  /// this is exactly `control.run_until(until)` (inclusive, serial).
  void run_until(Time until);

  /// True when the last run_until ended because of a control stop().
  bool stopped() const { return stopped_; }

  unsigned workers() const { return workers_; }

 private:
  void run_domains(Time end);
  /// Claims and runs domains of `epoch`'s window until the claim index
  /// is exhausted; follows the claim word across epochs if a stale
  /// claim lands in a newer window.  Returns the last epoch it
  /// participated in (workers use it as their park key).
  std::uint64_t claim_and_run(std::uint64_t epoch, Time end);
  void worker_main();
  void ensure_pool();

  Simulation& sim_;
  Time lookahead_;
  unsigned workers_;
  std::function<void()> hook_;
  bool stopped_ = false;

  // Worker-pool handshake.  claim_ packs (epoch << kIndexBits) | next
  // domain index into one word: publishing a window is a single release
  // store that simultaneously bumps the epoch (waking parked workers)
  // and resets the claim index.  Because epoch and index travel
  // together, a worker that was preempted across a barrier and
  // fetch_adds a word of a *newer* epoch can detect it and adopt that
  // window (re-reading window_end_ns_) instead of running the claimed
  // domain against a stale window end — see claim_and_run.  Workers
  // count completions in domains_done_; exactly num_domains() claims
  // per epoch carry an index < num_domains(), so the main thread's
  // wait-for-n and reset of domains_done_ cannot observe stragglers.
  static constexpr unsigned kIndexBits = 16;
  static constexpr std::uint64_t kIndexMask = (1ull << kIndexBits) - 1;
  std::vector<std::thread> pool_;
  std::uint64_t epoch_ = 0;  // main thread only; published via claim_
  std::atomic<std::uint64_t> claim_{0};
  std::atomic<std::int64_t> window_end_ns_{0};
  std::atomic<std::size_t> domains_done_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace mmptcp
