#pragma once

// Barrier-synchronous conservative parallel event engine.
//
// The simulation's schedulers (one control + N domain) advance in
// windows.  Each iteration finds T, the earliest pending event across
// all schedulers, and executes every event in [T, T + lookahead) — the
// control scheduler first and single-threaded, then the *active*
// domains on a worker pool.  `lookahead` is the minimum cross-domain
// propagation delay, so an event at time t can only influence another
// domain at t + lookahead or later: everything inside one window is
// causally independent across domains and may run concurrently.
//
// Two scheduling refinements keep fine-grained decompositions (many
// small domains) profitable:
//
//  * Quiet-domain skip.  After the control window runs, each domain is
//    probed once; domains whose next event lies at or after the window
//    end are never claimed.  A skipped domain's clock lags the window
//    frontier, which is safe: it has no events below any prior window
//    end, and cross-domain deliveries use absolute timestamps beyond
//    the last window end.  The final window runs every domain so all
//    clocks park at `until`.
//
//  * Cost-ordered claiming.  Active domains are sorted busiest-first
//    (pending-event count descending, id ascending) before publication,
//    so the longest domain windows start earliest and the barrier wait
//    is bounded by the largest domain, not by unlucky claim order.
//
// Both are pure scheduling policies: they change which thread runs a
// window and when, never what the window executes, so results stay
// byte-identical across worker counts and decomposition granularities.
//
// Cross-domain packets and metric mutations are buffered during the
// window (net/link.h outboxes, stats/metrics.h journals) and flushed by
// the barrier hook at the top of every iteration, in a canonical order
// that does not depend on the worker count.  Determinism therefore holds
// by construction: the sequence of windows, the event stream inside each
// domain, and the flush order are identical at any `workers` value —
// threads only change which core executes a given window.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/time.h"

namespace mmptcp {

class Simulation;

/// Per-run engine telemetry, accumulated across run_until calls.  All
/// counters describe scheduling only — they may differ across machines
/// and thread counts while the simulation results stay byte-identical.
struct EngineStats {
  std::uint64_t windows = 0;          ///< windowed iterations executed
  std::uint64_t domains_claimed = 0;  ///< domain windows actually run
  std::uint64_t domains_skipped = 0;  ///< quiet domains never claimed
  std::uint64_t barrier_wait_ns = 0;  ///< main thread idle at the barrier
  std::uint64_t wall_ns = 0;          ///< wall clock inside run_until
};

class Engine {
 public:
  /// `lookahead` must be positive when the simulation has domains
  /// configured.  `workers` is the number of threads executing domain
  /// windows (the calling thread is one of them); clamped to the domain
  /// count.
  Engine(Simulation& sim, Time lookahead, unsigned workers);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Invoked at every barrier (and once before the first window and once
  /// after the last): drain cross-domain mailboxes and metric journals.
  void set_barrier_hook(std::function<void()> hook) {
    hook_ = std::move(hook);
  }

  /// Runs events with timestamp strictly below `until`, leaving every
  /// clock at `until` — unless the control scheduler's stop() fired, in
  /// which case the run ends at that event.  With no domains configured
  /// this is exactly `control.run_until(until)` (inclusive, serial).
  void run_until(Time until);

  /// True when the last run_until ended because of a control stop().
  bool stopped() const { return stopped_; }

  unsigned workers() const { return workers_; }

  const EngineStats& stats() const { return stats_; }

 private:
  void run_domains(Time end);
  /// Claims and runs entries of `order_` for `epoch`'s window until the
  /// claim index reaches the published count; follows the claim word
  /// across epochs if a stale claim lands in a newer window.  Returns
  /// the last epoch it participated in (workers use it as their park
  /// key).
  std::uint64_t claim_and_run(std::uint64_t epoch, Time end);
  /// Spin, then yield, then park on park_cv_ until `pred` holds.  Worker
  /// threads only — the main thread never parks (it is the one that
  /// would have to ring the bell).
  template <typename Pred>
  void relax_or_park(const Pred& pred);
  void worker_main();
  void ensure_pool();

  Simulation& sim_;
  Time lookahead_;
  unsigned workers_;
  std::function<void()> hook_;
  bool stopped_ = false;
  EngineStats stats_;

  // Worker-pool handshake.  claim_ packs
  //     (epoch << 32) | (active count << 16) | next claim index
  // into one word: publishing a window is a single release store that
  // simultaneously bumps the epoch (waking parked workers), announces
  // how many active domains this window has, and resets the claim
  // index.  Workers fetch_add the low index field and read the slot
  // order_[index]; an index at or beyond the count is an overshoot and
  // the worker retires to wait for the next epoch.  Reading order_
  // without atomics is safe: a sub-count index proves the main thread
  // is still blocked on domains_done_ < count and cannot republish (and
  // so cannot rewrite order_) until this claim completes.
  //
  // Because epoch, count and index travel together, a worker that was
  // preempted across a barrier and fetch_adds a word of a *newer* epoch
  // can detect it and adopt that window — re-reading window_end_ns_ and
  // taking the count from the new word — instead of running the claimed
  // slot against a stale window end; see claim_and_run.  Workers count
  // completions in domains_done_; exactly `count` claims per epoch
  // carry an index below the count, so the main thread's wait-for-count
  // and reset of domains_done_ cannot observe stragglers.
  static constexpr unsigned kIndexBits = 16;
  static constexpr unsigned kCountShift = 16;
  static constexpr unsigned kEpochShift = 32;
  static constexpr std::uint64_t kFieldMask = (1ull << kIndexBits) - 1;
  std::vector<std::thread> pool_;
  std::uint64_t epoch_ = 0;  // main thread only; published via claim_
  std::atomic<std::uint64_t> claim_{0};
  std::atomic<std::int64_t> window_end_ns_{0};
  std::atomic<std::size_t> domains_done_{0};
  std::atomic<bool> shutdown_{false};

  // Parking lot for idle workers.  After a spin/yield budget a worker
  // increments parked_ under park_mu_ and waits on park_cv_ keyed by
  // the claim-word epoch.  The publisher stores claim_ first, then
  // takes park_mu_ to read parked_, so a worker either sees the new
  // epoch before sleeping or is seen by the publisher — no lost wakeup.
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::size_t parked_ = 0;

  // Scratch owned by the main thread between barriers.  order_ holds
  // the active domain ids of the current window, busiest first; workers
  // read it only while holding a sub-count claim (see above).
  std::vector<std::size_t> order_;
  struct Probe {
    Time next;            // earliest pending event
    std::size_t pending;  // queued-event count (cost proxy)
    std::size_t domain;
  };
  std::vector<Probe> probe_;
};

}  // namespace mmptcp
