#pragma once

// Small-buffer-optimised event callback.
//
// The discrete-event hot path schedules millions of tiny closures — a
// port finishing serialisation, a channel delivering a packet, a socket
// timer — whose captures are a couple of pointers or one Packet by
// value.  std::function heap-allocates captures beyond its ~16-byte
// internal buffer and drags a copy-constructibility requirement along;
// EventFn instead stores any nothrow-move-constructible functor of up
// to kInlineBytes inline (sized so a Packet plus a receiver pointer
// fits) and only heap-allocates beyond that.  It is move-only: the
// scheduler never copies events, and move-only captures are useful.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mmptcp {

/// Move-only `void()` callable with inline storage for small captures.
class EventFn {
 public:
  /// Inline capture budget: a Packet (80 bytes) plus a receiver pointer.
  static constexpr std::size_t kInlineBytes = 88;

  EventFn() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule() call site.
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &heap_ops<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  /// In-place assignment from a functor: constructs directly into the
  /// internal storage, so the hot path never relocates the capture.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn& operator=(F&& f) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &heap_ops<D>;
    }
    return *this;
  }

  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// Destroys the held functor, returning to the empty state.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs `dst` from `src`, then destroys `src`.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* src, void* dst) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* s) noexcept {
        delete *std::launder(reinterpret_cast<D**>(s));
      },
  };

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace mmptcp
