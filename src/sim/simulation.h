#pragma once

// Simulation context: the bundle of cross-cutting services (event queue,
// deterministic randomness, logging, tracing) that every component needs.
// Passed by reference — there are no globals, so multiple simulations can
// coexist in one process (the tests rely on this).

#include <cstdint>

#include "sim/scheduler.h"
#include "trace/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace mmptcp {

class TraceRecorder;

/// Owns the scheduler and the master RNG for one simulation run.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1, Logger logger = Logger())
      : rng_(seed), logger_(std::move(logger)) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }

  Time now() const { return scheduler_.now(); }

  /// Master RNG; components should fork their own stream from it once at
  /// construction so later draws do not perturb unrelated components.
  Rng& rng() { return rng_; }

  const Logger& logger() const { return logger_; }

  /// Installs (or clears, with nullptr) the flight recorder.  `channels`
  /// limits which channels components see; must be a subset of what the
  /// recorder was configured with.  Not owned — the caller keeps the
  /// recorder alive for the whole run.
  void set_trace(TraceRecorder* recorder, std::uint32_t channels) {
    trace_ = recorder;
    trace_channels_ = recorder != nullptr ? channels : 0;
  }

  /// The recorder if `channel` is traced, else nullptr.  Components call
  /// this once at construction and cache the pointer, reducing the
  /// disabled-tracing cost on hot paths to a single null check.
  TraceRecorder* trace_for(TraceChannel channel) const {
    return (trace_channels_ & channel) != 0 ? trace_ : nullptr;
  }

 private:
  Scheduler scheduler_;
  Rng rng_;
  Logger logger_;
  TraceRecorder* trace_ = nullptr;
  std::uint32_t trace_channels_ = 0;
};

}  // namespace mmptcp
