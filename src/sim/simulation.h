#pragma once

// Simulation context: the bundle of cross-cutting services (event queue,
// deterministic randomness, logging) that every component needs.  Passed by
// reference — there are no globals, so multiple simulations can coexist in
// one process (the tests rely on this).

#include <cstdint>

#include "sim/scheduler.h"
#include "util/logging.h"
#include "util/rng.h"

namespace mmptcp {

/// Owns the scheduler and the master RNG for one simulation run.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1, Logger logger = Logger())
      : rng_(seed), logger_(std::move(logger)) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }

  Time now() const { return scheduler_.now(); }

  /// Master RNG; components should fork their own stream from it once at
  /// construction so later draws do not perturb unrelated components.
  Rng& rng() { return rng_; }

  const Logger& logger() const { return logger_; }

 private:
  Scheduler scheduler_;
  Rng rng_;
  Logger logger_;
};

}  // namespace mmptcp
