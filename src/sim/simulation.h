#pragma once

// Simulation context: the bundle of cross-cutting services (event queue,
// deterministic randomness, logging, tracing) that every component needs.
// Passed by reference — there are no globals, so multiple simulations can
// coexist in one process (the tests rely on this).

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/parallel.h"
#include "sim/scheduler.h"
#include "trace/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace mmptcp {

class TraceRecorder;

/// Owns the scheduler and the master RNG for one simulation run.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1, Logger logger = Logger())
      : rng_(seed), logger_(std::move(logger)) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// The scheduler of the ambient execution context: inside a domain
  /// window this is that domain's scheduler; everywhere else (build,
  /// control events, serial runs) it is the simulation's own.
  Scheduler& scheduler() {
    return par::tls_scheduler != nullptr ? *par::tls_scheduler : scheduler_;
  }
  const Scheduler& scheduler() const {
    return par::tls_scheduler != nullptr ? *par::tls_scheduler : scheduler_;
  }

  Time now() const { return scheduler().now(); }

  /// Splits event execution into `n` domain schedulers (plus the control
  /// scheduler above).  Call once, before wiring the topology; n >= 2.
  /// When never called, domain_scheduler() collapses to the control
  /// scheduler and everything runs on the exact serial path.
  void configure_domains(std::size_t n) {
    check(domains_.empty(), "domains already configured");
    check(n >= 2, "configure_domains needs at least 2 domains");
    domains_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      domains_.push_back(std::make_unique<Scheduler>());
    }
  }

  std::size_t num_domains() const { return domains_.size(); }

  /// Scheduler that owns domain `d`'s events; the control scheduler when
  /// domains were never configured (serial collapse).
  Scheduler& domain_scheduler(std::size_t d) {
    if (domains_.empty()) return scheduler_;
    check(d < domains_.size(), "domain index out of range");
    return *domains_[d];
  }

  /// The control scheduler (scenario bookkeeping, completion polls),
  /// bypassing the ambient-domain resolution.
  Scheduler& control_scheduler() { return scheduler_; }
  const Scheduler& control_scheduler() const { return scheduler_; }

  /// Events executed across the control scheduler and every domain.
  std::uint64_t total_executed() const {
    std::uint64_t sum = scheduler_.executed();
    for (const auto& d : domains_) sum += d->executed();
    return sum;
  }

  /// Master RNG; components should fork their own stream from it once at
  /// construction so later draws do not perturb unrelated components.
  Rng& rng() { return rng_; }

  const Logger& logger() const { return logger_; }

  /// Installs (or clears, with nullptr) the flight recorder.  `channels`
  /// limits which channels components see; must be a subset of what the
  /// recorder was configured with.  Not owned — the caller keeps the
  /// recorder alive for the whole run.
  void set_trace(TraceRecorder* recorder, std::uint32_t channels) {
    trace_ = recorder;
    trace_channels_ = recorder != nullptr ? channels : 0;
  }

  /// The recorder if `channel` is traced, else nullptr.  Components call
  /// this once at construction and cache the pointer, reducing the
  /// disabled-tracing cost on hot paths to a single null check.
  TraceRecorder* trace_for(TraceChannel channel) const {
    return (trace_channels_ & channel) != 0 ? trace_ : nullptr;
  }

 private:
  Scheduler scheduler_;
  std::vector<std::unique_ptr<Scheduler>> domains_;
  Rng rng_;
  Logger logger_;
  TraceRecorder* trace_ = nullptr;
  std::uint32_t trace_channels_ = 0;
};

}  // namespace mmptcp
