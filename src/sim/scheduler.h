#pragma once

// Discrete-event scheduler.
//
// Events are closures ordered by (time, insertion sequence); the sequence
// tie-break makes same-timestamp execution FIFO and therefore runs fully
// deterministic.  The heap is a std::vector managed with push_heap /
// pop_heap so callbacks can be moved out on pop.  Cancellation is lazy:
// cancelled ids go into a hash set and are skipped at pop time.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.h"
#include "util/check.h"

namespace mmptcp {

/// Opaque handle to a scheduled event (0 is never a valid id).
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

/// Binary-heap discrete-event queue with deterministic ordering.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` from now. Negative delays are rejected.
  EventId schedule(Time delay, Callback cb);

  /// Schedules `cb` at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, Callback cb);

  /// Cancels a pending event; cancelling an already-run or already-cancelled
  /// event is a harmless no-op.
  void cancel(EventId id);

  /// Runs events with timestamp <= `until`; returns the number executed.
  /// The clock ends at `until` (or later if an executed event advanced it).
  std::uint64_t run_until(Time until);

  /// Runs until the queue drains completely.
  std::uint64_t run();

  /// Runs at most one event; returns false when the queue is empty.
  bool step();

  /// Requests that run()/run_until() return after the current event.
  void stop() { stop_requested_ = true; }

  /// Number of live (non-cancelled) pending events.  Cancelling an id
  /// that already executed leaves a stale tombstone until the queue
  /// drains, so this is clamped rather than allowed to underflow.
  std::size_t pending() const {
    return heap_.size() > cancelled_.size() ? heap_.size() - cancelled_.size()
                                            : 0;
  }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    Callback cb;
  };
  // Min-heap ordering: earliest time first, then insertion order.
  static bool later(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  /// Pops the next live entry into `out`; false if the queue is empty.
  bool pop_next(Entry& out);

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace mmptcp
