#pragma once

// Discrete-event scheduler.
//
// Events are closures ordered by (time, insertion sequence); the
// sequence tie-break makes same-timestamp execution FIFO and therefore
// runs fully deterministic.  Two structures back the queue:
//
//  * a hashed timer wheel for the near future — link serialisation,
//    propagation and pacing delays, which dominate the workload.  Each
//    of the kWheelBuckets buckets covers one kTickNanos-wide tick, so
//    insertion and cancellation are O(1) and an occupancy bitmap makes
//    find-next a couple of word scans;
//  * an indexed 4-ary min-heap for everything beyond the wheel horizon
//    (RTO timers, staggered flow starts).
//
// Every event owns a slot in a free-listed node pool; EventIds encode
// (slot, generation), so cancellation is *eager* — the entry is removed
// from its structure immediately (O(1) wheel, O(log n) heap), stale ids
// are rejected by the generation check, and pending() is exact.  The
// callback type is EventFn: captures up to ~88 bytes (a Packet plus a
// receiver pointer) live inline in the node, so the steady-state hot
// path performs no heap allocation at all.

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_fn.h"
#include "sim/time.h"
#include "util/check.h"

namespace mmptcp {

/// Opaque handle to a scheduled event (0 is never a valid id).
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

/// Timer-wheel + indexed-heap discrete-event queue with deterministic
/// ordering and eager cancellation.
class Scheduler {
 public:
  using Callback = EventFn;

  /// Wheel geometry: 4096 buckets of 1.024 us cover a ~4.2 ms horizon,
  /// which holds every serialisation/propagation/queueing delay the
  /// simulated fabrics produce; RTOs, periodic checks and flow starts
  /// overflow the horizon and take the heap path.
  static constexpr unsigned kTickShift = 10;  ///< 2^10 ns per tick
  static constexpr unsigned kWheelBits = 12;  ///< 2^12 buckets
  static constexpr std::size_t kWheelBuckets = std::size_t{1} << kWheelBits;

  Scheduler();

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` from now. Negative delays are rejected.
  /// Templated so the functor is constructed straight into its pool node
  /// — the capture is never relocated between schedule and execution.
  template <typename F>
  EventId schedule(Time delay, F&& cb) {
    dcheck(!delay.is_negative(), "cannot schedule into the past");
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Schedules `cb` at absolute time `at` (must be >= now()).
  template <typename F>
  EventId schedule_at(Time at, F&& cb) {
    dcheck(at >= now_, "cannot schedule before the current time");
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      dcheck(static_cast<bool>(cb), "cannot schedule an empty callback");
    }
    const std::uint32_t slot = alloc_slot();
    nodes_[slot].cb = std::forward<F>(cb);
    return commit(at, slot);
  }

  /// Eagerly removes a pending event; cancelling an already-run or
  /// already-cancelled event is a harmless no-op.
  void cancel(EventId id);

  /// Runs events with timestamp <= `until`; returns the number executed.
  /// The clock ends at `until` (or later if an executed event advanced it).
  std::uint64_t run_until(Time until);

  /// Runs events with timestamp strictly below `end` and leaves the clock
  /// at `end` (unless stop() fired mid-window).  This is the conservative
  /// parallel window primitive: the caller guarantees no event earlier
  /// than `end` can still arrive from outside this scheduler.
  std::uint64_t run_window(Time end);

  /// Timestamp of the earliest pending event; false when the queue is
  /// empty.  Used by the window loop to find the global next event time.
  bool next_time(Time& out) const {
    Ref ref;
    if (!peek(ref)) return false;
    out = ref.at;
    return true;
  }

  /// Runs until the queue drains completely.
  std::uint64_t run();

  /// Runs at most one event; returns false when the queue is empty.
  bool step();

  /// Requests that run()/run_until()/run_window() return after the
  /// current event.
  void stop() { stop_requested_ = true; }
  /// True when the last run broke out early because of stop().
  bool stop_requested() const { return stop_requested_; }

  /// Number of live pending events.  Exact: cancellation removes the
  /// entry immediately, so no tombstones ever inflate or deflate this.
  std::size_t pending() const { return heap_.size() + wheel_count_; }
  std::uint64_t executed() const { return executed_; }
  /// Occupancy split between the two backing structures (trace-layer
  /// self-telemetry: how much of the load the wheel actually absorbs).
  std::size_t wheel_pending() const { return wheel_count_; }
  std::size_t heap_pending() const { return heap_.size(); }

 private:
  /// Where a node's queue entry currently lives.
  static constexpr std::uint32_t kInHeap = 0xFFFFFFFFu;
  static constexpr std::uint32_t kFree = 0xFFFFFFFEu;

  /// Pool slot owning one event's callback and bookkeeping.
  struct Node {
    EventFn cb;
    std::uint32_t gen = 0;     ///< bumped on free; stale ids mismatch
    std::uint32_t pos = 0;     ///< index within heap_ or its bucket
    std::uint32_t where = kFree;  ///< kInHeap, kFree, or bucket index
  };

  /// Queue entry: everything the comparator needs, no callback, so heap
  /// sifts and bucket scans move 24 bytes and never touch the pool.
  struct Ref {
    Time at;
    std::uint64_t seq = 0;
    std::uint32_t node = 0;
  };

  static bool before(const Ref& a, const Ref& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  static std::uint64_t tick_of(Time t) {
    return static_cast<std::uint64_t>(t.ns()) >> kTickShift;
  }

  /// Pops a free pool slot (growing the pool when exhausted).
  std::uint32_t alloc_slot();
  /// Inserts slot's event at `at` into the wheel or heap; returns its id.
  EventId commit(Time at, std::uint32_t slot);
  void free_node(std::uint32_t idx);

  // -- indexed 4-ary heap (far-future events) --
  void heap_push(const Ref& ref);
  void heap_remove(std::uint32_t pos);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);

  // -- timer wheel (near-future events) --
  void wheel_push(std::uint64_t tick, const Ref& ref);
  void wheel_remove(std::uint32_t bucket, std::uint32_t pos);
  /// Earliest occupied bucket at or after now(); wheel must be non-empty.
  std::uint32_t wheel_first_bucket() const;
  /// Index of the earliest (at, seq) entry in `bucket`.
  std::uint32_t bucket_min(std::uint32_t bucket) const;

  /// True if a live event exists; fills `out` with the earliest one.
  bool peek(Ref& out) const;
  /// Removes `ref` (as returned by peek) from its structure and moves
  /// its callback out, freeing the node before execution.
  Callback extract(const Ref& ref);

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_list_;
  std::vector<Ref> heap_;
  std::vector<std::vector<Ref>> wheel_;
  std::vector<std::uint64_t> occupancy_;  ///< one bit per wheel bucket
  std::size_t wheel_count_ = 0;
  Time now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace mmptcp
