#pragma once

// Ambient execution context for domain-decomposed parallel runs.
//
// When the Engine executes a domain's window it pins that domain's
// scheduler (and index) into thread-local state; Simulation::scheduler()
// resolves through it, so every component that schedules "via the
// simulation" — socket timers, port transmit completions, arrival
// rescheduling — lands in the scheduler of the domain it executes in
// without any plumbing changes.  Outside a window (topology build,
// control events, unit tests) the thread-locals are null and the
// simulation's own scheduler is used, which is exactly the serial path.

#include "sim/scheduler.h"

namespace mmptcp::par {

inline thread_local Scheduler* tls_scheduler = nullptr;
inline thread_local int tls_domain = -1;  ///< -1 = control / no domain

/// RAII pin of the ambient (scheduler, domain) for one window.
class ScopedDomain {
 public:
  ScopedDomain(Scheduler* sched, int domain)
      : prev_sched_(tls_scheduler), prev_domain_(tls_domain) {
    tls_scheduler = sched;
    tls_domain = domain;
  }
  ~ScopedDomain() {
    tls_scheduler = prev_sched_;
    tls_domain = prev_domain_;
  }
  ScopedDomain(const ScopedDomain&) = delete;
  ScopedDomain& operator=(const ScopedDomain&) = delete;

 private:
  Scheduler* prev_sched_;
  int prev_domain_;
};

/// Domain the current thread is executing, or -1 when on the control
/// path.  Metrics journaling keys off this.
inline int current_domain() { return tls_domain; }

}  // namespace mmptcp::par
