#pragma once

// Half-open interval set over 64-bit sequence space.
//
// Used by TCP receivers to track out-of-order byte ranges and by MPTCP /
// MMPTCP connections to track delivered data-sequence ranges.  Intervals
// are kept disjoint, sorted, and coalesced, so `first_missing_after()` is
// O(log n) and the common in-order case touches one map node.

#include <cstdint>
#include <map>
#include <string>

namespace mmptcp {

/// Ordered set of disjoint half-open intervals [lo, hi) over uint64.
class IntervalSet {
 public:
  /// Inserts [lo, hi), merging with any overlapping or adjacent intervals.
  /// Returns the number of *new* units covered (0 if fully present already).
  std::uint64_t insert(std::uint64_t lo, std::uint64_t hi);

  /// True if every unit of [lo, hi) is present. Empty ranges are contained.
  bool contains(std::uint64_t lo, std::uint64_t hi) const;

  /// True if any unit of [lo, hi) is present.
  bool intersects(std::uint64_t lo, std::uint64_t hi) const;

  /// Smallest value >= from that is NOT covered by the set.
  std::uint64_t first_missing_after(std::uint64_t from) const;

  /// Removes [lo, hi) from the set; returns the number of units removed.
  std::uint64_t erase(std::uint64_t lo, std::uint64_t hi);

  /// Total number of units covered.
  std::uint64_t covered() const { return covered_; }

  /// Number of disjoint intervals.
  std::size_t interval_count() const { return intervals_.size(); }

  bool empty() const { return intervals_.empty(); }
  void clear();

  /// Debug rendering, e.g. "[0,10) [20,25)".
  std::string to_string() const;

  /// Iteration over the underlying map (lo -> hi), for tests and stats.
  auto begin() const { return intervals_.begin(); }
  auto end() const { return intervals_.end(); }

 private:
  std::map<std::uint64_t, std::uint64_t> intervals_;  // lo -> hi
  std::uint64_t covered_ = 0;
};

}  // namespace mmptcp
