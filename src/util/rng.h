#pragma once

// Deterministic random number generation.
//
// The simulator must produce bit-identical runs for a given master seed on
// every platform, so we implement xoshiro256++ directly instead of relying
// on standard-library distributions (whose outputs are
// implementation-defined).  Components obtain independent streams via
// `fork()`, which derives a child seed from the parent stream; this keeps
// results stable when one component draws more or fewer numbers.

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mmptcp {

/// xoshiro256++ pseudo-random generator with deterministic, portable output.
class Rng {
 public:
  /// Seeds the generator; any 64-bit value (including 0) is acceptable.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the state from `seed` via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Derives an independent child generator (stable stream splitting).
  Rng fork();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with probability `p` in [0, 1].
  bool bernoulli(double p);

  /// Uniformly shuffles `items` in place (Fisher-Yates).
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mmptcp
