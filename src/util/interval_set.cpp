#include "util/interval_set.h"

#include <sstream>

#include "util/check.h"

namespace mmptcp {

std::uint64_t IntervalSet::insert(std::uint64_t lo, std::uint64_t hi) {
  check(lo <= hi, "IntervalSet::insert requires lo <= hi");
  if (lo == hi) return 0;

  std::uint64_t new_lo = lo;
  std::uint64_t new_hi = hi;
  std::uint64_t added = hi - lo;

  // Find the first interval whose lo could interact: start from the
  // predecessor of `lo` (it may cover or touch us).
  auto it = intervals_.upper_bound(lo);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {  // overlaps or touches from the left
      new_lo = prev->first;
      if (prev->second > new_hi) new_hi = prev->second;
      added -= std::min(prev->second, hi) - std::max(prev->first, lo);
      it = intervals_.erase(prev);
    }
  }
  // Absorb all intervals starting within [new_lo, new_hi].
  while (it != intervals_.end() && it->first <= new_hi) {
    if (it->second > new_hi) {
      added -= (hi > it->first) ? hi - it->first : 0;
      new_hi = it->second;
    } else {
      const std::uint64_t olo = std::max(it->first, lo);
      const std::uint64_t ohi = std::min(it->second, hi);
      if (ohi > olo) added -= ohi - olo;
    }
    it = intervals_.erase(it);
  }
  intervals_.emplace(new_lo, new_hi);
  covered_ += added;
  return added;
}

bool IntervalSet::contains(std::uint64_t lo, std::uint64_t hi) const {
  check(lo <= hi, "IntervalSet::contains requires lo <= hi");
  if (lo == hi) return true;
  auto it = intervals_.upper_bound(lo);
  if (it == intervals_.begin()) return false;
  const auto& prev = *std::prev(it);
  return prev.first <= lo && prev.second >= hi;
}

bool IntervalSet::intersects(std::uint64_t lo, std::uint64_t hi) const {
  check(lo <= hi, "IntervalSet::intersects requires lo <= hi");
  if (lo == hi) return false;
  auto it = intervals_.upper_bound(lo);
  if (it != intervals_.begin()) {
    const auto& prev = *std::prev(it);
    if (prev.second > lo) return true;
  }
  return it != intervals_.end() && it->first < hi;
}

std::uint64_t IntervalSet::first_missing_after(std::uint64_t from) const {
  auto it = intervals_.upper_bound(from);
  if (it == intervals_.begin()) return from;
  const auto& prev = *std::prev(it);
  return (prev.second > from) ? prev.second : from;
}

std::uint64_t IntervalSet::erase(std::uint64_t lo, std::uint64_t hi) {
  check(lo <= hi, "IntervalSet::erase requires lo <= hi");
  if (lo == hi) return 0;
  std::uint64_t removed = 0;

  auto it = intervals_.upper_bound(lo);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > lo) {
      // prev overlaps [lo, hi): split / trim it.
      const std::uint64_t plo = prev->first;
      const std::uint64_t phi = prev->second;
      intervals_.erase(prev);
      if (plo < lo) intervals_.emplace(plo, lo);
      if (phi > hi) intervals_.emplace(hi, phi);
      removed += std::min(phi, hi) - lo;
      it = intervals_.upper_bound(lo);
    }
  }
  while (it != intervals_.end() && it->first < hi) {
    const std::uint64_t ilo = it->first;
    const std::uint64_t ihi = it->second;
    it = intervals_.erase(it);
    if (ihi > hi) {
      intervals_.emplace(hi, ihi);
      removed += hi - ilo;
    } else {
      removed += ihi - ilo;
    }
  }
  covered_ -= removed;
  return removed;
}

void IntervalSet::clear() {
  intervals_.clear();
  covered_ = 0;
}

std::string IntervalSet::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [lo, hi] : intervals_) {
    if (!first) os << ' ';
    os << '[' << lo << ',' << hi << ')';
    first = false;
  }
  return os.str();
}

}  // namespace mmptcp
