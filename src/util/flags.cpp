#include "util/flags.h"

#include <sstream>

#include "util/check.h"

namespace mmptcp {

namespace {
std::vector<std::string> to_vector(int argc, const char* const* argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) out.emplace_back(argv[i]);
  return out;
}
}  // namespace

Flags::Flags(int argc, const char* const* argv)
    : Flags(to_vector(argc, argv)) {}

Flags::Flags(std::vector<std::string> args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      values_[body] = args[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
  for (const auto& [k, _] : values_) consumed_[k] = false;
}

std::optional<std::string> Flags::raw(const std::string& name) {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def,
                            const std::string& help) {
  described_.push_back({name, std::to_string(def), help});
  auto v = raw(name);
  if (!v) return def;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects an integer, got '" + *v +
                      "'");
  }
}

double Flags::get_double(const std::string& name, double def,
                         const std::string& help) {
  described_.push_back({name, std::to_string(def), help});
  auto v = raw(name);
  if (!v) return def;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects a number, got '" + *v +
                      "'");
  }
}

std::string Flags::get_string(const std::string& name, std::string def,
                              const std::string& help) {
  described_.push_back({name, def, help});
  auto v = raw(name);
  return v ? *v : def;
}

bool Flags::get_bool(const std::string& name, bool def,
                     const std::string& help) {
  described_.push_back({name, def ? "true" : "false", help});
  auto v = raw(name);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw ConfigError("flag --" + name + " expects a boolean, got '" + *v + "'");
}

const std::vector<std::string>& Flags::positionals() {
  positionals_read_ = true;
  return positionals_;
}

bool Flags::help_requested() const { return values_.count("help") > 0; }

std::string Flags::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& d : described_) {
    os << "  --" << d.name << " (default " << d.def << ")";
    if (!d.help.empty()) os << "  " << d.help;
    os << "\n";
  }
  return os.str();
}

std::vector<std::string> Flags::unknown() const {
  std::vector<std::string> out;
  for (const auto& [name, used] : consumed_) {
    if (!used && name != "help") out.push_back(name);
  }
  return out;
}

void Flags::check_unknown() const {
  const auto u = unknown();
  if (!u.empty()) {
    std::string msg = "unknown flag(s):";
    for (const auto& n : u) msg += " --" + n;
    throw ConfigError(msg);
  }
  if (!positionals_.empty() && !positionals_read_) {
    std::string msg = "unexpected positional argument(s):";
    for (const auto& p : positionals_) msg += " " + p;
    throw ConfigError(msg);
  }
}

}  // namespace mmptcp
