#pragma once

// Lightweight leveled logging.
//
// The simulator is hot-path sensitive, so logging is a per-Logger runtime
// level check plus lazily-formatted messages: the format lambda only runs
// when the level is enabled.  There is no global mutable logger; components
// receive a Logger (usually from Simulation) by value — it is a cheap
// handle onto a shared sink.

#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

namespace mmptcp {

enum class LogLevel : int { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Parses "off|error|warn|info|debug|trace" (throws ConfigError otherwise).
LogLevel parse_log_level(const std::string& text);
std::string to_string(LogLevel level);

/// Shared destination for log output (stderr by default).  write() is
/// line-atomic under a mutex: sweep worker threads share one sink, and
/// interleaved half-lines would be unreadable.
class LogSink {
 public:
  explicit LogSink(std::ostream* out = nullptr);
  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  std::mutex mutex_;
  std::ostream* out_;
};

/// Cheap handle combining a sink, a component name, and a level threshold.
class Logger {
 public:
  Logger() = default;
  Logger(std::shared_ptr<LogSink> sink, std::string component, LogLevel level)
      : sink_(std::move(sink)), component_(std::move(component)),
        level_(level) {}

  bool enabled(LogLevel level) const {
    return sink_ && static_cast<int>(level) <= static_cast<int>(level_);
  }

  /// Logs `make_message()` iff `level` is enabled (lazy formatting).
  template <typename Fn>
  void log(LogLevel level, Fn&& make_message) const {
    if (enabled(level)) sink_->write(level, component_, make_message());
  }

  /// Derives a logger for a sub-component (same sink and level).
  Logger child(const std::string& name) const {
    return Logger(sink_, component_.empty() ? name : component_ + "." + name,
                  level_);
  }

  LogLevel level() const { return level_; }

 private:
  std::shared_ptr<LogSink> sink_;
  std::string component_;
  LogLevel level_ = LogLevel::kOff;
};

/// Convenience factory: logger writing to stderr at `level`.
Logger make_stderr_logger(LogLevel level, const std::string& component = "");

}  // namespace mmptcp
