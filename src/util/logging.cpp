#include "util/logging.h"

#include <iostream>

#include "util/check.h"

namespace mmptcp {

LogLevel parse_log_level(const std::string& text) {
  if (text == "off") return LogLevel::kOff;
  if (text == "error") return LogLevel::kError;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "info") return LogLevel::kInfo;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "trace") return LogLevel::kTrace;
  throw ConfigError("unknown log level '" + text + "'");
}

std::string to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "off";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "?";
}

LogSink::LogSink(std::ostream* out) : out_(out ? out : &std::cerr) {}

void LogSink::write(LogLevel level, const std::string& component,
                    const std::string& message) {
  std::ostringstream line;
  line << '[' << to_string(level) << "] ";
  if (!component.empty()) line << component << ": ";
  line << message << '\n';
  const std::lock_guard<std::mutex> lock(mutex_);
  (*out_) << line.str();
}

Logger make_stderr_logger(LogLevel level, const std::string& component) {
  return Logger(std::make_shared<LogSink>(), component, level);
}

}  // namespace mmptcp
