#include "util/summary.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace mmptcp {

void Summary::add(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
  sum_ += value;
  const double delta = value - mean_run_;
  mean_run_ += delta / static_cast<double>(samples_.size());
  m2_run_ += delta * (value - mean_run_);
}

void Summary::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

void Summary::merge(const Summary& other) {
  if (other.samples_.empty()) return;
  const double na = static_cast<double>(samples_.size());
  const double nb = static_cast<double>(other.samples_.size());
  if (samples_.empty()) {
    mean_run_ = other.mean_run_;
    m2_run_ = other.m2_run_;
  } else {
    const double delta = other.mean_run_ - mean_run_;
    mean_run_ += delta * nb / (na + nb);
    m2_run_ += other.m2_run_ + delta * delta * na * nb / (na + nb);
  }
  sum_ += other.sum_;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_valid_ = false;
}

double Summary::mean() const {
  return samples_.empty() ? 0.0 : mean_run_;
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  return std::sqrt(m2_run_ / static_cast<double>(samples_.size() - 1));
}

void Summary::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Summary::min() const {
  check(!samples_.empty(), "Summary::min on empty summary");
  ensure_sorted();
  return sorted_.front();
}

double Summary::max() const {
  check(!samples_.empty(), "Summary::max on empty summary");
  ensure_sorted();
  return sorted_.back();
}

double Summary::percentile(double p) const {
  check(!samples_.empty(), "Summary::percentile on empty summary");
  check(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::size_t Summary::count_above(double threshold) const {
  ensure_sorted();
  return static_cast<std::size_t>(
      sorted_.end() -
      std::upper_bound(sorted_.begin(), sorted_.end(), threshold));
}

std::vector<std::size_t> Summary::histogram(double lo, double hi,
                                            std::size_t bins) const {
  check(bins > 0, "histogram needs at least one bin");
  check(hi > lo, "histogram needs hi > lo");
  std::vector<std::size_t> out(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : samples_) {
    double idx = (v - lo) / width;
    std::size_t b;
    if (idx < 0) {
      b = 0;
    } else if (idx >= static_cast<double>(bins)) {
      b = bins - 1;
    } else {
      b = static_cast<std::size_t>(idx);
    }
    ++out[b];
  }
  return out;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os.precision(4);
  if (samples_.empty()) {
    os << "n=0";
    return os.str();
  }
  os << "n=" << count() << " mean=" << mean() << " sd=" << stddev()
     << " p50=" << percentile(50) << " p99=" << percentile(99)
     << " max=" << max();
  return os.str();
}

}  // namespace mmptcp
