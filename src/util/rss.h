#pragma once

// Peak resident set size of the current process, for the timing sidecar
// of memory-sensitive specs (scale_sweep's flat-memory gate).

#include <sys/resource.h>

namespace mmptcp {

/// Peak RSS in MiB, 0 when the platform cannot report it.  The value is
/// a per-process high-water mark — it only ever grows — so an honest
/// per-grid-point comparison must run each point in its own process
/// (e.g. separate invocations with --set shorts=<n>); within one sweep
/// every later run reports at least the earlier runs' peak.
inline double peak_rss_mb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
#endif
}

}  // namespace mmptcp
