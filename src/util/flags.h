#pragma once

// Minimal command-line flag parser for examples and benchmarks.
//
// Accepts `--name=value`, `--name value` and boolean `--name` forms,
// plus trailing positional tokens (read via positionals()).  Every
// flag read through get_*() is recorded with its default so `help()` can
// print an accurate usage table.  Unknown flags — and positionals the
// program never asked for — are detected by `check_unknown()` once all
// gets have been performed.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mmptcp {

/// Tiny declarative CLI flag reader (no global state).
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// Construct from a pre-split list (useful in tests).
  explicit Flags(std::vector<std::string> args);

  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help = "");
  double get_double(const std::string& name, double def,
                    const std::string& help = "");
  std::string get_string(const std::string& name, std::string def,
                         const std::string& help = "");
  /// A bare `--name` or `--name=true` yields true.
  bool get_bool(const std::string& name, bool def,
                const std::string& help = "");

  /// Non-flag tokens in command-line order (tokens that neither start
  /// with "--" nor bind as the value of a preceding flag).  Reading
  /// them marks them consumed; unread positionals make check_unknown()
  /// throw, so `--run smoke stray.json` still fails loudly.
  const std::vector<std::string>& positionals();

  /// True when `--help` was passed.
  bool help_requested() const;

  /// Usage text listing every flag read so far with default and help string.
  std::string help(const std::string& program) const;

  /// Names of flags present on the command line but never read.
  std::vector<std::string> unknown() const;

  /// Throws ConfigError if any unread flags remain (call after all gets).
  void check_unknown() const;

 private:
  std::optional<std::string> raw(const std::string& name);

  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positionals_;
  bool positionals_read_ = false;
  struct Described {
    std::string name, def, help;
  };
  std::vector<Described> described_;
};

}  // namespace mmptcp
