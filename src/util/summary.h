#pragma once

// Descriptive statistics used throughout the benchmarks and tests:
// streaming mean/variance (Welford) plus an exact sample store for
// percentiles and histograms.  Sample counts in this project are at most a
// few hundred thousand, so storing doubles is fine.

#include <cstdint>
#include <string>
#include <vector>

namespace mmptcp {

/// Collects samples; computes mean, stddev, percentiles, histogram.
class Summary {
 public:
  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  /// Sample (n-1) standard deviation; 0 when fewer than 2 samples.
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile by linear interpolation; p in [0, 100].
  double percentile(double p) const;
  /// The 99.9th percentile (tail-of-the-tail shorthand).
  double p999() const { return percentile(99.9); }

  /// Count-weighted merge: afterwards this summary describes the union of
  /// both sample sets, with mean/stddev combined by the parallel Welford
  /// formula (numerically robust for shards of any relative size).
  void merge(const Summary& other);

  /// Number of samples with value > threshold.
  std::size_t count_above(double threshold) const;

  /// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
  /// are clamped into the first/last bucket.
  std::vector<std::size_t> histogram(double lo, double hi,
                                     std::size_t bins) const;

  /// One-line rendering: "n=.. mean=.. sd=.. p50=.. p99=.. max=..".
  std::string to_string() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
  // Welford running moments (kept for numerical robustness of stddev).
  double mean_run_ = 0;
  double m2_run_ = 0;
};

}  // namespace mmptcp
