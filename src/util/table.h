#pragma once

// Aligned plain-text table printer used by the benchmark harnesses to emit
// the rows/series the paper reports.  Cells are strings; numeric helpers
// format with fixed precision so columns line up.

#include <cstdint>
#include <string>
#include <vector>

namespace mmptcp {

/// Builds and renders a fixed-column text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment, a header underline, and 2-space gaps.
  std::string to_string() const;

  /// Renders as CSV (no alignment padding).
  std::string to_csv() const;

  /// Formats `v` with `digits` decimal places.
  static std::string num(double v, int digits = 2);
  static std::string num(std::int64_t v);
  static std::string num(std::uint64_t v);
  /// Formats a ratio as a percentage string like "3.42%".
  static std::string pct(double ratio, int digits = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmptcp
