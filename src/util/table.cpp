#include "util/table.h"

#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace mmptcp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "row width does not match header count");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }
std::string Table::num(std::uint64_t v) { return std::to_string(v); }

std::string Table::pct(double ratio, int digits) {
  return num(ratio * 100.0, digits) + "%";
}

}  // namespace mmptcp
