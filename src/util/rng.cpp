#include "util/rng.h"

#include <cmath>

namespace mmptcp {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork() { return Rng(next() ^ 0xa5a5a5a55a5a5a5aULL); }

std::uint64_t Rng::uniform(std::uint64_t bound) {
  check(bound > 0, "Rng::uniform bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % bound;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  check(lo <= hi, "Rng::uniform_range requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? next() : uniform(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::uniform01() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  check(mean > 0.0, "Rng::exponential mean must be positive");
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  check(p >= 0.0 && p <= 1.0, "Rng::bernoulli p must be in [0,1]");
  return uniform01() < p;
}

}  // namespace mmptcp
