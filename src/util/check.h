#pragma once

// Runtime invariant checking for the simulator.
//
// `check()` is used for conditions that must hold even in release builds
// (protocol and engine invariants whose violation would silently corrupt
// results); it throws so tests can assert on violations.  `require()` is
// the same idea for user-supplied configuration.

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mmptcp {

/// Error thrown when an internal invariant is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Error thrown when a caller supplies invalid configuration.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] inline void fail_check(std::string_view msg,
                                    const std::source_location& loc) {
  throw InvariantError(std::string(loc.file_name()) + ":" +
                       std::to_string(loc.line()) + ": invariant violated: " +
                       std::string(msg));
}
[[noreturn]] inline void fail_require(std::string_view msg,
                                      const std::source_location& loc) {
  throw ConfigError(std::string(loc.file_name()) + ":" +
                    std::to_string(loc.line()) + ": bad configuration: " +
                    std::string(msg));
}
}  // namespace detail

/// Abort (by throwing InvariantError) if an internal invariant is violated.
inline void check(bool cond, std::string_view msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) detail::fail_check(msg, loc);
}

/// Debug-only variant of check() for per-event hot paths (scheduler
/// inserts, ECMP selection, qdisc admission): the same contract in debug
/// builds, an empty inline function in release (NDEBUG) builds so the
/// optimizer deletes the condition.  The condition must therefore be
/// side-effect free; keep check() at setup and API boundaries.
#ifdef NDEBUG
inline void dcheck(bool, std::string_view,
                   std::source_location = std::source_location::current()) {}
#else
inline void dcheck(bool cond, std::string_view msg,
                   std::source_location loc = std::source_location::current()) {
  if (!cond) detail::fail_check(msg, loc);
}
#endif

/// Abort (by throwing ConfigError) if user-supplied configuration is invalid.
inline void require(
    bool cond, std::string_view msg,
    std::source_location loc = std::source_location::current()) {
  if (!cond) detail::fail_require(msg, loc);
}

}  // namespace mmptcp
