#pragma once

// Output-queued switch with pluggable routing.
//
// The Router strategy returns the egress port index for a packet; ECMP
// choice happens inside the router (it sees the whole packet, including the
// per-packet randomised source port that packet scatter relies on).
// Optionally the switch models a shared-memory buffer: all its ports draw
// from one SharedBufferPool, reproducing the buffer-pressure coupling the
// paper attributes to commodity shared-memory switches.

#include <memory>

#include "net/node.h"
#include "net/queue.h"

namespace mmptcp {

class Switch;

/// Routing strategy: maps a packet to an egress port of `sw`.
class Router {
 public:
  virtual ~Router() = default;
  virtual std::size_t route(const Switch& sw, const Packet& pkt) const = 0;
};

/// A switch forwarding packets according to its Router.
class Switch : public Node {
 public:
  Switch(Simulation& sim, NodeId id, std::string name);

  /// Installs the routing strategy (must happen before traffic flows).
  void set_router(std::unique_ptr<Router> router);

  /// Enables the shared-memory buffer model for all ports added afterwards.
  void enable_shared_buffer(std::uint64_t capacity_bytes, double alpha);

  SharedBufferPool* shared_buffer() { return pool_.get(); }

  /// Per-switch ECMP hash salt (derived deterministically from the node id).
  std::uint64_t salt() const { return salt_; }

  void receive(Packet pkt, std::size_t in_port) override;

  /// Packets that arrived with no route (counted, then dropped).
  std::uint64_t unroutable() const { return unroutable_; }

 private:
  std::unique_ptr<Router> router_;
  std::unique_ptr<SharedBufferPool> pool_;
  std::uint64_t salt_;
  std::uint64_t unroutable_ = 0;
};

}  // namespace mmptcp
