#pragma once

// Egress ports and unidirectional channels.
//
// A Port owns the queueing discipline and the transmitter state machine of
// one network interface: store-and-forward, one packet serialising at a
// time at the channel rate.  The discipline is pluggable (net/qdisc/):
// drop-tail by default, ECN-marking or strict-priority when the topology
// asks for them.  A Channel carries fully-serialised packets to the peer
// node after a fixed propagation delay; the packet travels inside the
// scheduler event itself (EventFn stores a Packet-sized capture inline),
// so delivery allocates nothing and needs no side queue.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/queue.h"
#include "sim/scheduler.h"
#include "util/logging.h"

namespace mmptcp {

class Node;
class Simulation;
class TraceRecorder;

/// Where a link sits in the datacenter hierarchy (for loss accounting).
enum class LinkLayer : std::uint8_t {
  kHostEdge,     ///< host <-> edge(ToR) links
  kEdgeAgg,      ///< edge <-> aggregation links ("aggregation layer")
  kAggCore,      ///< aggregation <-> core links ("core layer")
  kOther,
};

std::string to_string(LinkLayer layer);

/// Monotonic counters exposed by every port (read by the stats module).
struct PortCounters {
  std::uint64_t enqueued_packets = 0;
  std::uint64_t enqueued_bytes = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t injected_drops = 0;  ///< test-hook forced drops
};

class Channel;

/// Buffer of cross-domain deliveries emitted by one source domain during
/// one parallel window.  Single-writer (only that domain's worker posts)
/// and drained by the barrier: entries from every outbox are sorted by
/// (arrival time, source domain, emission seq) and inserted into the
/// destination schedulers in that canonical order, so event sequence
/// numbers — and therefore the whole run — do not depend on the worker
/// count.
class CrossDomainOutbox {
 public:
  struct Entry {
    Time at;                    ///< arrival time at the destination
    std::uint64_t seq = 0;      ///< source-domain emission order
    Channel* channel = nullptr;
    Packet pkt;
  };

  void post(Time at, Channel* channel, const Packet& pkt) {
    entries_.push_back(Entry{at, next_seq_++, channel, pkt});
  }

  std::vector<Entry>& entries() { return entries_; }
  void clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

/// Unidirectional wire: fixed rate (modelled at the Port) and delay.
class Channel {
 public:
  /// `sched` is the scheduler arrivals are inserted into — the receiving
  /// node's domain scheduler in parallel runs.
  Channel(Scheduler& sched, Time propagation_delay);

  /// Sets the receiving node and its ingress port index (wiring step).
  void attach_sink(Node* dst, std::size_t dst_port);

  /// Marks this channel as crossing domains: deliveries are buffered in
  /// `outbox` (arrival times read off the emitting side's `src_sched`)
  /// and inserted at the next barrier instead of being scheduled
  /// directly.
  void make_cross_domain(const Scheduler& src_sched,
                         CrossDomainOutbox* outbox) {
    src_sched_ = &src_sched;
    outbox_ = outbox;
  }
  bool cross_domain() const { return outbox_ != nullptr; }

  /// Accepts a fully-serialised packet; delivers it after the delay.
  void deliver(Packet pkt);

  /// Barrier-time insertion of a delivery buffered by deliver().
  void deliver_at(Time at, const Packet& pkt);

  Time propagation_delay() const { return delay_; }
  Node* sink() const { return dst_; }

 private:
  Scheduler& sched_;
  Time delay_;
  Node* dst_ = nullptr;
  std::size_t dst_port_ = 0;
  const Scheduler* src_sched_ = nullptr;  ///< set on cross-domain channels
  CrossDomainOutbox* outbox_ = nullptr;
};

/// Egress interface: queue + serialising transmitter feeding a Channel.
class Port {
 public:
  /// Called on every drop with the dropped packet (optional, for tests).
  using DropFilter = std::function<bool(const Packet&, std::uint64_t index)>;

  /// Takes the Simulation (not just its scheduler) so the port can pick
  /// up the cross-cutting services: the flight recorder's queue channel
  /// and the qdisc component logger.  `sched` is the owning node's
  /// domain scheduler, where transmit-completion events run.
  Port(Simulation& sim, Scheduler& sched, std::string name,
       std::uint64_t rate_bps, QueueLimits limits, Channel* out,
       LinkLayer layer, SharedBufferPool* pool = nullptr,
       QdiscConfig qdisc = QdiscConfig{});

  /// Enqueues for transmission; drops (and counts) when the queue is full
  /// or the injected drop filter matches.  By value: callers that own
  /// their copy (every forwarding hop) move it straight into the qdisc.
  void enqueue(Packet pkt);

  const PortCounters& counters() const { return counters_; }
  LinkLayer layer() const { return layer_; }
  std::uint64_t rate_bps() const { return rate_bps_; }
  const std::string& name() const { return name_; }
  std::size_t queue_packets() const { return queue_->size_packets(); }
  std::uint64_t queue_bytes() const { return queue_->size_bytes(); }
  /// The installed queueing discipline (marks, peak occupancy, bands).
  const Qdisc& qdisc() const { return *queue_; }

  /// Test hook: every would-be-enqueued packet is offered to `filter`;
  /// returning true forces a drop.  Pass nullptr to clear.
  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }

 private:
  void maybe_start_tx();
  void on_tx_done();

  Scheduler& sched_;
  std::string name_;
  std::uint64_t rate_bps_;
  std::unique_ptr<Qdisc> queue_;
  Channel* out_;
  LinkLayer layer_;
  TraceRecorder* trace_;          ///< queue channel, or null (cached once)
  std::uint64_t traced_marks_ = 0;  ///< qdisc mark count already traced
  Logger log_;
  PortCounters counters_;
  DropFilter drop_filter_;
  std::uint64_t offer_index_ = 0;  ///< packets offered so far (for filters)
  bool transmitting_ = false;
  Packet in_tx_{};
};

}  // namespace mmptcp
