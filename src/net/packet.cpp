#include "net/packet.h"

#include <sstream>

namespace mmptcp {

std::string Packet::to_string() const {
  std::ostringstream os;
  os << src.to_string() << ':' << sport << ">" << dst.to_string() << ':'
     << dport;
  if (is_syn()) os << " SYN";
  if (has(pkt_flags::kJoin)) os << " JOIN";
  if (has(pkt_flags::kFin)) os << " FIN";
  if (has(pkt_flags::kDataFin)) os << " DFIN";
  if (has(pkt_flags::kPs)) os << " PS";
  if (ect()) os << " ECT";
  if (ce()) os << " CE";
  if (ece()) os << " ECE";
  os << " sf=" << int(subflow) << " seq=" << seq << " ack=" << ack
     << " len=" << payload;
  if (has(pkt_flags::kDss)) {
    os << " dseq=" << data_seq << " dack=" << data_ack;
  }
  os << " tok=" << token << " flow=" << flow_id;
  return os.str();
}

}  // namespace mmptcp
