#include "net/host.h"

#include "net/ecmp.h"

namespace mmptcp {

Host::Host(Simulation& sim, NodeId id, std::string name, Addr addr)
    : Node(sim, id, std::move(name)), addr_(addr), rng_(sim.rng().fork()) {}

void Host::send(Packet pkt) {
  dcheck(port_count() > 0, "host has no NIC attached");
  const std::size_t nic = pick_nic(pkt);
  port(nic).enqueue(std::move(pkt));
}

std::size_t Host::pick_nic(const Packet& pkt) const {
  if (port_count() == 1) return 0;
  if (nic_selector_) return nic_selector_(pkt) % port_count();
  // Default: hash the tuple so distinct (sub)flows — and sprayed packets —
  // spread across NICs while a fixed tuple stays on one NIC.
  return ecmp_select(0x5eedu, pkt.src, pkt.dst, pkt.sport, pkt.dport,
                     port_count());
}

void Host::register_token(std::uint32_t token, Endpoint* ep) {
  check(ep != nullptr, "cannot register a null endpoint");
  const auto [it, inserted] = by_token_.emplace(token, ep);
  (void)it;
  check(inserted, "token already registered on this host");
}

void Host::unregister_token(std::uint32_t token) { by_token_.erase(token); }

void Host::listen(std::uint16_t port, AcceptHandler handler) {
  check(static_cast<bool>(handler), "listener handler cannot be empty");
  const auto [it, inserted] = listeners_.emplace(port, std::move(handler));
  (void)it;
  check(inserted, "port already has a listener");
}

void Host::unlisten(std::uint16_t port) { listeners_.erase(port); }

std::uint32_t Host::next_token() {
  ++token_counter_;
  check(token_counter_ < (1u << 18), "per-host token space exhausted");
  return (static_cast<std::uint32_t>(id()) + 1u) * (1u << 18) + token_counter_;
}

std::uint16_t Host::ephemeral_port() {
  if (next_ephemeral_ == 0) next_ephemeral_ = 49152;  // wrapped
  return next_ephemeral_++;
}

void Host::receive(Packet pkt, std::size_t /*in_port*/) {
  if (pkt.dst != addr_) {
    ++demux_misses_;  // misrouted packet; routers are tested against this
    return;
  }
  if (const auto it = by_token_.find(pkt.token); it != by_token_.end()) {
    ++delivered_packets_;
    it->second->handle_packet(pkt);
    return;
  }
  if (pkt.is_syn()) {
    if (const auto it = listeners_.find(pkt.dport); it != listeners_.end()) {
      ++delivered_packets_;
      it->second(pkt);
      return;
    }
  }
  ++demux_misses_;
}

}  // namespace mmptcp
