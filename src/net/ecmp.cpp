#include "net/ecmp.h"

#include "util/check.h"

namespace mmptcp {

namespace {
// Finalizer from MurmurHash3 / splitmix64: cheap and well mixed.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t ecmp_hash(std::uint64_t salt, Addr src, Addr dst,
                        std::uint16_t sport, std::uint16_t dport) {
  std::uint64_t h = salt ^ 0x9e3779b97f4a7c15ULL;
  h = mix64(h ^ (std::uint64_t(src.raw) << 32 | dst.raw));
  h = mix64(h ^ (std::uint64_t(sport) << 16 | dport));
  return h;
}

std::size_t ecmp_select(std::uint64_t salt, Addr src, Addr dst,
                        std::uint16_t sport, std::uint16_t dport,
                        std::size_t n) {
  dcheck(n > 0, "ecmp_select needs at least one candidate");
  return static_cast<std::size_t>(ecmp_hash(salt, src, dst, sport, dport) % n);
}

}  // namespace mmptcp
