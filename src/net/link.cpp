#include "net/link.h"

#include "net/node.h"
#include "sim/simulation.h"
#include "trace/recorder.h"

namespace mmptcp {

std::string to_string(LinkLayer layer) {
  switch (layer) {
    case LinkLayer::kHostEdge: return "host-edge";
    case LinkLayer::kEdgeAgg: return "edge-agg";
    case LinkLayer::kAggCore: return "agg-core";
    case LinkLayer::kOther: return "other";
  }
  return "?";
}

Channel::Channel(Scheduler& sched, Time propagation_delay)
    : sched_(sched), delay_(propagation_delay) {
  check(!delay_.is_negative(), "propagation delay cannot be negative");
}

void Channel::attach_sink(Node* dst, std::size_t dst_port) {
  check(dst_ == nullptr, "channel sink already attached");
  check(dst != nullptr, "channel sink cannot be null");
  dst_ = dst;
  dst_port_ = dst_port;
}

void Channel::deliver(Packet pkt) {
  dcheck(dst_ != nullptr, "channel has no sink attached");
  if (outbox_ != nullptr) {
    // Crossing domains: buffer with the arrival time stamped off the
    // emitting domain's clock; the barrier inserts it canonically.
    outbox_->post(src_sched_->now() + delay_, this, pkt);
    return;
  }
  auto arrival = [this, pkt] { dst_->receive(pkt, dst_port_); };
  // Delivery is the hottest event in the simulator: if Packet grows past
  // the EventFn inline budget this becomes a per-packet heap allocation,
  // so fail the build instead of silently losing the zero-alloc path.
  static_assert(sizeof(arrival) <= EventFn::kInlineBytes,
                "packet delivery capture must stay inline; grow "
                "EventFn::kInlineBytes alongside Packet");
  sched_.schedule(delay_, std::move(arrival));
}

void Channel::deliver_at(Time at, const Packet& pkt) {
  dcheck(dst_ != nullptr, "channel has no sink attached");
  auto arrival = [this, pkt] { dst_->receive(pkt, dst_port_); };
  sched_.schedule_at(at, std::move(arrival));
}

Port::Port(Simulation& sim, Scheduler& sched, std::string name,
           std::uint64_t rate_bps, QueueLimits limits, Channel* out,
           LinkLayer layer, SharedBufferPool* pool, QdiscConfig qdisc)
    : sched_(sched), name_(std::move(name)), rate_bps_(rate_bps),
      queue_(make_qdisc(qdisc, limits, pool)), out_(out), layer_(layer),
      trace_(sim.trace_for(kTraceQueue)),
      log_(sim.logger().child("qdisc")) {
  check(rate_bps_ > 0, "port rate must be positive");
  check(out_ != nullptr, "port needs an output channel");
  queue_->set_clock(&sched_);
}

void Port::enqueue(Packet pkt) {
  const std::uint64_t index = offer_index_++;
  const std::uint64_t bytes = pkt.size_bytes();
  const auto flow = pkt.flow_id;
  if (drop_filter_ && drop_filter_(pkt, index)) {
    ++counters_.injected_drops;
    ++counters_.dropped_packets;
    counters_.dropped_bytes += bytes;
    return;
  }
  if (!queue_->try_push(std::move(pkt))) {
    ++counters_.dropped_packets;
    counters_.dropped_bytes += bytes;
    if (trace_ != nullptr) {
      trace_->queue_event(sched_.now(), name_, "drop", queue_->size_packets());
    }
    log_.log(LogLevel::kDebug, [&] {
      return name_ + ": dropped flow " + std::to_string(flow) +
             " packet at depth " + std::to_string(queue_->size_packets());
    });
    return;
  }
  ++counters_.enqueued_packets;
  counters_.enqueued_bytes += bytes;
  if (trace_ != nullptr && queue_->marked_packets() != traced_marks_) {
    traced_marks_ = queue_->marked_packets();
    trace_->queue_event(sched_.now(), name_, "mark", queue_->size_packets());
  }
  maybe_start_tx();
}

void Port::maybe_start_tx() {
  if (transmitting_ || queue_->empty()) return;
  [[maybe_unused]] const bool popped = queue_->pop_into(in_tx_);
  dcheck(popped, "queue reported non-empty but pop failed");
  transmitting_ = true;
  sched_.schedule(transmission_time(in_tx_.size_bytes(), rate_bps_),
                  [this] { on_tx_done(); });
}

void Port::on_tx_done() {
  ++counters_.tx_packets;
  counters_.tx_bytes += in_tx_.size_bytes();
  out_->deliver(in_tx_);
  transmitting_ = false;
  maybe_start_tx();
}

}  // namespace mmptcp
