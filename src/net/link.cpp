#include "net/link.h"

#include "net/node.h"

namespace mmptcp {

std::string to_string(LinkLayer layer) {
  switch (layer) {
    case LinkLayer::kHostEdge: return "host-edge";
    case LinkLayer::kEdgeAgg: return "edge-agg";
    case LinkLayer::kAggCore: return "agg-core";
    case LinkLayer::kOther: return "other";
  }
  return "?";
}

Channel::Channel(Scheduler& sched, Time propagation_delay)
    : sched_(sched), delay_(propagation_delay) {
  check(!delay_.is_negative(), "propagation delay cannot be negative");
}

void Channel::attach_sink(Node* dst, std::size_t dst_port) {
  check(dst_ == nullptr, "channel sink already attached");
  check(dst != nullptr, "channel sink cannot be null");
  dst_ = dst;
  dst_port_ = dst_port;
}

void Channel::deliver(Packet pkt) {
  check(dst_ != nullptr, "channel has no sink attached");
  auto arrival = [this, pkt] { dst_->receive(pkt, dst_port_); };
  // Delivery is the hottest event in the simulator: if Packet grows past
  // the EventFn inline budget this becomes a per-packet heap allocation,
  // so fail the build instead of silently losing the zero-alloc path.
  static_assert(sizeof(arrival) <= EventFn::kInlineBytes,
                "packet delivery capture must stay inline; grow "
                "EventFn::kInlineBytes alongside Packet");
  sched_.schedule(delay_, std::move(arrival));
}

Port::Port(Scheduler& sched, std::string name, std::uint64_t rate_bps,
           QueueLimits limits, Channel* out, LinkLayer layer,
           SharedBufferPool* pool, QdiscConfig qdisc)
    : sched_(sched), name_(std::move(name)), rate_bps_(rate_bps),
      queue_(make_qdisc(qdisc, limits, pool)), out_(out), layer_(layer) {
  check(rate_bps_ > 0, "port rate must be positive");
  check(out_ != nullptr, "port needs an output channel");
}

void Port::enqueue(const Packet& pkt) {
  const std::uint64_t index = offer_index_++;
  if (drop_filter_ && drop_filter_(pkt, index)) {
    ++counters_.injected_drops;
    ++counters_.dropped_packets;
    counters_.dropped_bytes += pkt.size_bytes();
    return;
  }
  if (!queue_->try_push(pkt)) {
    ++counters_.dropped_packets;
    counters_.dropped_bytes += pkt.size_bytes();
    return;
  }
  ++counters_.enqueued_packets;
  counters_.enqueued_bytes += pkt.size_bytes();
  maybe_start_tx();
}

void Port::maybe_start_tx() {
  if (transmitting_ || queue_->empty()) return;
  check(queue_->pop_into(in_tx_), "queue reported non-empty but pop failed");
  transmitting_ = true;
  sched_.schedule(transmission_time(in_tx_.size_bytes(), rate_bps_),
                  [this] { on_tx_done(); });
}

void Port::on_tx_done() {
  ++counters_.tx_packets;
  counters_.tx_bytes += in_tx_.size_bytes();
  out_->deliver(in_tx_);
  transmitting_ = false;
  maybe_start_tx();
}

}  // namespace mmptcp
