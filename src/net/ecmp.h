#pragma once

// Hash-based ECMP path selection (RFC 2992 style).
//
// Switches hash the flow 5-tuple together with a per-switch salt and pick
// one of the candidate next hops.  The salt models vendor-specific hash
// seeds: without it, every switch would make correlated choices and the
// topology would behave like a single-path network.  Packet scatter works
// by randomising the source port per packet, which decorrelates the hash
// input at every hop.

#include <cstdint>

#include "net/address.h"

namespace mmptcp {

/// 64-bit mix of the flow tuple and a per-switch salt.
std::uint64_t ecmp_hash(std::uint64_t salt, Addr src, Addr dst,
                        std::uint16_t sport, std::uint16_t dport);

/// Picks an index in [0, n) for the given tuple; n must be > 0.
std::size_t ecmp_select(std::uint64_t salt, Addr src, Addr dst,
                        std::uint16_t sport, std::uint16_t dport,
                        std::size_t n);

}  // namespace mmptcp
