#pragma once

// Egress queueing disciplines.
//
// DropTailQueue is the workhorse (the paper's ns-3 setup uses drop-tail
// ports).  SharedBufferPool models the shared-memory switch fabric the
// paper calls out as a cause of buffer pressure during incast: ports on the
// same switch compete for one byte pool under a Dynamic-Threshold (DT)
// admission rule (Choudhury & Hahne), so a hot port can starve its
// siblings — exactly the effect MMPTCP's packet scatter is meant to dodge.

#include <cstdint>
#include <deque>
#include <optional>

#include "net/packet.h"
#include "util/check.h"

namespace mmptcp {

/// Limits for a drop-tail queue; either bound may be disabled with 0.
struct QueueLimits {
  std::uint32_t max_packets = 100;  ///< 0 = unlimited
  std::uint64_t max_bytes = 0;      ///< 0 = unlimited
};

/// Per-switch shared buffer pool with Dynamic-Threshold admission.
class SharedBufferPool {
 public:
  /// `alpha` scales the per-port threshold: threshold = alpha * free bytes.
  SharedBufferPool(std::uint64_t capacity_bytes, double alpha);

  /// True if a port currently holding `port_bytes` may admit `size` more.
  bool admits(std::uint64_t port_bytes, std::uint32_t size) const;

  /// Records bytes entering / leaving the pool.
  void on_enqueue(std::uint32_t size);
  void on_dequeue(std::uint32_t size);

  std::uint64_t used() const { return used_; }
  std::uint64_t capacity() const { return capacity_; }

 private:
  std::uint64_t capacity_;
  double alpha_;
  std::uint64_t used_ = 0;
};

/// FIFO drop-tail queue with optional shared-buffer admission.
class DropTailQueue {
 public:
  explicit DropTailQueue(QueueLimits limits = QueueLimits{},
                         SharedBufferPool* pool = nullptr);

  /// Attempts to enqueue; returns false (drop) when any bound is exceeded.
  bool try_push(const Packet& pkt);

  /// Removes and returns the head; nullopt when empty.
  std::optional<Packet> pop();

  bool empty() const { return packets_.empty(); }
  std::size_t size_packets() const { return packets_.size(); }
  std::uint64_t size_bytes() const { return bytes_; }
  const QueueLimits& limits() const { return limits_; }

 private:
  QueueLimits limits_;
  SharedBufferPool* pool_;  // not owned; may be null
  std::deque<Packet> packets_;
  std::uint64_t bytes_ = 0;
};

}  // namespace mmptcp
