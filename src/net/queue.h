#pragma once

// Drop-tail discipline and the shared-memory buffer pool.
//
// DropTailQueue is the workhorse (the paper's ns-3 setup uses drop-tail
// ports), now one Qdisc implementation among several — see net/qdisc/.
// SharedBufferPool models the shared-memory switch fabric the paper calls
// out as a cause of buffer pressure during incast: ports on the same
// switch compete for one byte pool under a Dynamic-Threshold (DT)
// admission rule (Choudhury & Hahne), so a hot port can starve its
// siblings — exactly the effect MMPTCP's packet scatter is meant to dodge.

#include <cstdint>
#include <optional>

#include "net/packet.h"
#include "net/qdisc/packet_ring.h"
#include "net/qdisc/qdisc.h"
#include "util/check.h"

namespace mmptcp {

/// Per-switch shared buffer pool with Dynamic-Threshold admission.
class SharedBufferPool {
 public:
  /// `alpha` scales the per-port threshold: threshold = alpha * free bytes.
  SharedBufferPool(std::uint64_t capacity_bytes, double alpha);

  /// True if a port currently holding `port_bytes` may admit `size` more.
  bool admits(std::uint64_t port_bytes, std::uint32_t size) const;

  /// Records bytes entering / leaving the pool.
  void on_enqueue(std::uint32_t size);
  void on_dequeue(std::uint32_t size);

  std::uint64_t used() const { return used_; }
  std::uint64_t capacity() const { return capacity_; }

 private:
  std::uint64_t capacity_;
  double alpha_;
  std::uint64_t used_ = 0;
};

/// FIFO drop-tail queue with optional shared-buffer admission.
class DropTailQueue final : public Qdisc {
 public:
  explicit DropTailQueue(QueueLimits limits = QueueLimits{},
                         SharedBufferPool* pool = nullptr);

 protected:
  void do_push(Packet&& pkt) override;
  Packet do_pop() override;

 private:
  PacketRing packets_;
};

}  // namespace mmptcp
