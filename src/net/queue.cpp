#include "net/queue.h"

namespace mmptcp {

SharedBufferPool::SharedBufferPool(std::uint64_t capacity_bytes, double alpha)
    : capacity_(capacity_bytes), alpha_(alpha) {
  require(capacity_bytes > 0, "shared buffer capacity must be positive");
  require(alpha > 0.0, "shared buffer alpha must be positive");
}

bool SharedBufferPool::admits(std::uint64_t port_bytes,
                              std::uint32_t size) const {
  if (used_ + size > capacity_) return false;
  const double threshold = alpha_ * static_cast<double>(capacity_ - used_);
  return static_cast<double>(port_bytes) + size <= threshold;
}

void SharedBufferPool::on_enqueue(std::uint32_t size) { used_ += size; }

void SharedBufferPool::on_dequeue(std::uint32_t size) {
  check(used_ >= size, "shared buffer accounting underflow");
  used_ -= size;
}

DropTailQueue::DropTailQueue(QueueLimits limits, SharedBufferPool* pool)
    : Qdisc(limits, pool, /*uses_default_admission=*/true) {}

void DropTailQueue::do_push(Packet&& pkt) { packets_.push_back(pkt); }

Packet DropTailQueue::do_pop() { return packets_.pop_front(); }

}  // namespace mmptcp
