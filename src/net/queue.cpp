#include "net/queue.h"

namespace mmptcp {

SharedBufferPool::SharedBufferPool(std::uint64_t capacity_bytes, double alpha)
    : capacity_(capacity_bytes), alpha_(alpha) {
  require(capacity_bytes > 0, "shared buffer capacity must be positive");
  require(alpha > 0.0, "shared buffer alpha must be positive");
}

bool SharedBufferPool::admits(std::uint64_t port_bytes,
                              std::uint32_t size) const {
  if (used_ + size > capacity_) return false;
  const double threshold = alpha_ * static_cast<double>(capacity_ - used_);
  return static_cast<double>(port_bytes) + size <= threshold;
}

void SharedBufferPool::on_enqueue(std::uint32_t size) { used_ += size; }

void SharedBufferPool::on_dequeue(std::uint32_t size) {
  check(used_ >= size, "shared buffer accounting underflow");
  used_ -= size;
}

DropTailQueue::DropTailQueue(QueueLimits limits, SharedBufferPool* pool)
    : limits_(limits), pool_(pool) {}

bool DropTailQueue::try_push(const Packet& pkt) {
  const std::uint32_t size = pkt.size_bytes();
  if (limits_.max_packets != 0 && packets_.size() >= limits_.max_packets) {
    return false;
  }
  if (limits_.max_bytes != 0 && bytes_ + size > limits_.max_bytes) {
    return false;
  }
  if (pool_ != nullptr && !pool_->admits(bytes_, size)) {
    return false;
  }
  packets_.push_back(pkt);
  bytes_ += size;
  if (pool_ != nullptr) pool_->on_enqueue(size);
  return true;
}

std::optional<Packet> DropTailQueue::pop() {
  if (packets_.empty()) return std::nullopt;
  Packet pkt = packets_.front();
  packets_.pop_front();
  bytes_ -= pkt.size_bytes();
  if (pool_ != nullptr) pool_->on_dequeue(pkt.size_bytes());
  return pkt;
}

}  // namespace mmptcp
