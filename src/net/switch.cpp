#include "net/switch.h"

namespace mmptcp {

namespace {
std::uint64_t salt_for(NodeId id) {
  // splitmix64 of the node id: stable across runs, distinct across switches.
  std::uint64_t z = static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Switch::Switch(Simulation& sim, NodeId id, std::string name)
    : Node(sim, id, std::move(name)), salt_(salt_for(id)) {}

void Switch::set_router(std::unique_ptr<Router> router) {
  check(router != nullptr, "router cannot be null");
  router_ = std::move(router);
}

void Switch::enable_shared_buffer(std::uint64_t capacity_bytes, double alpha) {
  check(port_count() == 0, "enable shared buffer before adding ports");
  pool_ = std::make_unique<SharedBufferPool>(capacity_bytes, alpha);
}

void Switch::receive(Packet pkt, std::size_t /*in_port*/) {
  dcheck(router_ != nullptr, "switch has no router installed");
  const std::size_t out = router_->route(*this, pkt);
  if (out >= port_count()) {
    ++unroutable_;
    return;
  }
  port(out).enqueue(std::move(pkt));
}

}  // namespace mmptcp
