#include "net/node.h"

namespace mmptcp {

Node::Node(Simulation& sim, NodeId id, std::string name)
    : sim_(sim), id_(id), name_(std::move(name)) {}

std::size_t Node::add_port(std::uint64_t rate_bps, QueueLimits limits,
                           Channel* out, LinkLayer layer,
                           SharedBufferPool* pool, QdiscConfig qdisc) {
  ports_.push_back(std::make_unique<Port>(
      sim_, sim_.domain_scheduler(domain_),
      name_ + "/p" + std::to_string(ports_.size()),
      rate_bps, limits, out, layer, pool, qdisc));
  return ports_.size() - 1;
}

}  // namespace mmptcp
