#pragma once

// The simulated packet.
//
// One struct models every segment we need: plain TCP, MPTCP (DSS data
// sequence mapping, token-based join) and MMPTCP packet-scatter segments.
// Packets carry no payload bytes — only the byte *count* — since the
// simulation's correctness properties are defined over sequence ranges.
// Packets are small value types passed by value; no heap allocation.

#include <cstdint>
#include <string>

#include "net/address.h"

namespace mmptcp {

/// Bit flags carried in a segment header.
namespace pkt_flags {
inline constexpr std::uint8_t kSyn = 1u << 0;      ///< connection/subflow open
inline constexpr std::uint8_t kFin = 1u << 1;      ///< sender is done
inline constexpr std::uint8_t kJoin = 1u << 2;     ///< MPTCP MP_JOIN subflow SYN
inline constexpr std::uint8_t kDss = 1u << 3;      ///< carries data-seq mapping
inline constexpr std::uint8_t kPs = 1u << 4;       ///< packet-scatter sprayed
inline constexpr std::uint8_t kDataFin = 1u << 5;  ///< connection-level FIN
inline constexpr std::uint8_t kDsack = 1u << 6;    ///< ACK of duplicate data
}  // namespace pkt_flags

/// ECN codepoint bits (a separate field: `flags` is nearly full and these
/// model the IP header's ECN field plus the TCP ECE echo).
namespace ecn_bits {
inline constexpr std::uint8_t kEct = 1u << 0;  ///< ECN-capable transport
inline constexpr std::uint8_t kCe = 1u << 1;   ///< congestion experienced
inline constexpr std::uint8_t kEce = 1u << 2;  ///< receiver echoes CE (ACKs)
}  // namespace ecn_bits

/// A simulated TCP/MPTCP segment.
struct Packet {
  Addr src;
  Addr dst;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint8_t flags = 0;
  std::uint8_t subflow = 0;   ///< subflow index within the connection
  std::uint32_t token = 0;    ///< connection token used for demultiplexing
  std::uint64_t seq = 0;      ///< subflow-level sequence (first payload byte)
  std::uint64_t ack = 0;      ///< subflow-level cumulative ACK
  std::uint32_t payload = 0;  ///< number of application bytes carried
  std::uint64_t data_seq = 0; ///< connection-level sequence (DSS mapping)
  std::uint64_t data_ack = 0; ///< connection-level cumulative ACK
  std::uint64_t dsack_seq = 0; ///< duplicate segment's seq (with kDsack)
  std::uint32_t flow_id = 0;  ///< simulation-wide flow id (tracing/stats)
  std::uint8_t ecn = 0;       ///< ECN codepoints (see ecn_bits)

  /// IP + TCP header bytes for every segment.
  static constexpr std::uint32_t kBaseHeaderBytes = 40;
  /// Extra bytes when a DSS (data sequence signal) option is present.
  static constexpr std::uint32_t kDssOptionBytes = 20;

  bool has(std::uint8_t flag) const { return (flags & flag) != 0; }
  bool is_syn() const { return has(pkt_flags::kSyn); }
  bool is_data() const { return payload > 0; }
  bool ect() const { return (ecn & ecn_bits::kEct) != 0; }
  bool ce() const { return (ecn & ecn_bits::kCe) != 0; }
  bool ece() const { return (ecn & ecn_bits::kEce) != 0; }

  /// Size on the wire, used for serialisation delay and queue occupancy.
  std::uint32_t size_bytes() const {
    return kBaseHeaderBytes + (has(pkt_flags::kDss) ? kDssOptionBytes : 0) +
           payload;
  }

  /// Compact human-readable rendering for logs and test failures.
  std::string to_string() const;
};

}  // namespace mmptcp
