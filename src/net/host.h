#pragma once

// End host: NIC selection on send, connection demultiplexing on receive.
//
// Demux is token-based (MPTCP-style): every connection carries a 32-bit
// token in each segment, so MMPTCP's per-packet source-port randomisation
// never confuses the receiver.  SYNs without a known token go to the
// listener registered on the destination port, which creates the
// server-side endpoint.  Multi-homed hosts (dual-homed FatTree) pick the
// NIC by hashing the packet's ports, so sprayed packets use all NICs.

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/node.h"

namespace mmptcp {

/// Transport endpoint interface implemented by sockets / connections.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void handle_packet(const Packet& pkt) = 0;
};

/// A server-side accept callback; receives the SYN that opened the flow.
using AcceptHandler = std::function<void(const Packet& syn)>;

/// An end host with one or more NICs.
class Host : public Node {
 public:
  Host(Simulation& sim, NodeId id, std::string name, Addr addr);

  Addr addr() const { return addr_; }

  /// Transmits via the selected NIC (all host ports are NICs).
  void send(Packet pkt);

  /// Per-host random stream, forked from the master RNG at construction.
  /// Runtime draws (MMPTCP's per-subflow port randomisation) use this
  /// instead of the master so parallel domains never share an RNG.
  Rng& rng() { return rng_; }

  /// Registers/unregisters the endpoint owning `token`.
  void register_token(std::uint32_t token, Endpoint* ep);
  void unregister_token(std::uint32_t token);

  /// Installs an accept handler for SYNs addressed to `port`.
  void listen(std::uint16_t port, AcceptHandler handler);
  void unlisten(std::uint16_t port);

  /// Allocates a connection token unique within this simulation
  /// (host id in the high bits, per-host counter in the low bits).
  std::uint32_t next_token();

  /// Allocates an ephemeral source port (demux never depends on it).
  std::uint16_t ephemeral_port();

  void receive(Packet pkt, std::size_t in_port) override;

  /// Packets that matched no endpoint or listener (late segments etc.).
  std::uint64_t demux_misses() const { return demux_misses_; }
  /// Packets delivered to some endpoint or listener.
  std::uint64_t delivered_packets() const { return delivered_packets_; }

  /// Overrides NIC selection (rarely needed; default hashes the ports).
  using NicSelector = std::function<std::size_t(const Packet&)>;
  void set_nic_selector(NicSelector sel) { nic_selector_ = std::move(sel); }

 private:
  std::size_t pick_nic(const Packet& pkt) const;

  Addr addr_;
  Rng rng_;
  std::unordered_map<std::uint32_t, Endpoint*> by_token_;
  std::unordered_map<std::uint16_t, AcceptHandler> listeners_;
  NicSelector nic_selector_;
  std::uint32_t token_counter_ = 0;
  std::uint16_t next_ephemeral_ = 49152;
  std::uint64_t demux_misses_ = 0;
  std::uint64_t delivered_packets_ = 0;
};

}  // namespace mmptcp
