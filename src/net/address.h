#pragma once

// Network addressing.
//
// Addresses are opaque 32-bit values; the FatTree topology packs
// (pod, switch, host) into them following the Al-Fares addressing scheme so
// that switches can route algorithmically and end hosts can derive the
// number of equal-cost paths to a peer (used by MMPTCP's dynamic dup-ACK
// threshold).  The packing lives in topo/fat_tree.h; this header only
// defines the opaque value type.

#include <cstdint>
#include <functional>
#include <string>

namespace mmptcp {

/// Opaque network address (IPv4-like 32-bit value).
struct Addr {
  std::uint32_t raw = 0;

  friend bool operator==(Addr a, Addr b) { return a.raw == b.raw; }
  friend bool operator!=(Addr a, Addr b) { return a.raw != b.raw; }
  friend bool operator<(Addr a, Addr b) { return a.raw < b.raw; }

  /// Dotted rendering of the four bytes, e.g. "10.2.1.3".
  std::string to_string() const {
    return std::to_string(raw >> 24) + "." + std::to_string((raw >> 16) & 0xff) +
           "." + std::to_string((raw >> 8) & 0xff) + "." +
           std::to_string(raw & 0xff);
  }
};

}  // namespace mmptcp

template <>
struct std::hash<mmptcp::Addr> {
  std::size_t operator()(mmptcp::Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.raw);
  }
};
