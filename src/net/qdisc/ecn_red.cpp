#include "net/qdisc/ecn_red.h"

#include "util/check.h"

namespace mmptcp {

EcnRedQueue::EcnRedQueue(QueueLimits limits,
                         std::uint32_t mark_threshold_packets,
                         SharedBufferPool* pool)
    : Qdisc(limits, pool, /*uses_default_admission=*/true),
      threshold_(mark_threshold_packets) {
  require(threshold_ > 0, "ECN marking threshold must be positive");
}

void EcnRedQueue::do_push(Packet&& pkt) {
  if (pkt.ect() && packets_.size() >= threshold_) {
    pkt.ecn |= ecn_bits::kCe;
    note_marked();
  }
  packets_.push_back(pkt);
}

Packet EcnRedQueue::do_pop() { return packets_.pop_front(); }

}  // namespace mmptcp
