#include "net/qdisc/ecn_red.h"

#include "util/check.h"

namespace mmptcp {

EcnRedQueue::EcnRedQueue(QueueLimits limits,
                         std::uint32_t mark_threshold_packets,
                         SharedBufferPool* pool,
                         std::uint64_t mark_threshold_bytes)
    : Qdisc(limits, pool, /*uses_default_admission=*/true),
      threshold_(mark_threshold_packets),
      threshold_bytes_(mark_threshold_bytes) {
  require(threshold_ > 0, "ECN marking threshold must be positive");
}

void EcnRedQueue::do_push(Packet&& pkt) {
  // size_bytes() still excludes `pkt` here: the base accounts after the
  // push, so both thresholds compare the queue the arrival *found* —
  // byte mode marks exactly when packet mode would for equal-size
  // segments with K_bytes = K * size.
  const bool over_bytes =
      threshold_bytes_ != 0 && size_bytes() >= threshold_bytes_;
  if (pkt.ect() && (packets_.size() >= threshold_ || over_bytes)) {
    pkt.ecn |= ecn_bits::kCe;
    note_marked();
  }
  packets_.push_back(pkt);
}

Packet EcnRedQueue::do_pop() { return packets_.pop_front(); }

}  // namespace mmptcp
